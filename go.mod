module github.com/oraql/go-oraql

go 1.22
