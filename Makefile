GO ?= go

.PHONY: tier1 vet build test race bench bench-compile check

# tier1 is the gate the roadmap pins: it must stay green.
tier1: build test

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench smoke-runs the probing benchmarks (1 iteration each); use
# scripts/bench_probe.sh to record a BENCH_probe.json baseline.
bench:
	$(GO) test -run '^$$' -bench 'Probe_(Sequential|Parallel)' -benchtime=1x .

# bench-compile smoke-runs the analysis-cache compile benchmark; use
# scripts/bench_compile.sh to record a BENCH_compile.json baseline.
bench-compile:
	$(GO) test -run '^$$' -bench 'Compile_AnalysisCache' -benchtime=1x .

check: vet tier1 race bench bench-compile
