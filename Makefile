GO ?= go

.PHONY: tier1 vet build test race bench bench-compile bench-serve bench-diskcache bench-cluster bench-warehouse cluster-smoke serve-smoke campaign-smoke warehouse-smoke fuzz fuzz-smoke check

# tier1 is the gate the roadmap pins: it must stay green.
tier1: build test

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race runs once per GOMAXPROCS value: one core catches lost wakeups
# the scheduler hides, several catch real races in the parallel pass
# scheduler.
race:
	GOMAXPROCS=1 $(GO) test -race ./...
	GOMAXPROCS=4 $(GO) test -race ./...

# bench smoke-runs the probing benchmarks (1 iteration each); use
# scripts/bench_probe.sh to record a BENCH_probe.json baseline.
bench:
	$(GO) test -run '^$$' -bench 'Probe_(Sequential|Parallel)' -benchtime=1x .

# bench-compile smoke-runs the compile benchmarks (analysis cache and
# the 1/2/4/8-worker parallel scheduler); use scripts/bench_compile.sh
# to record a BENCH_compile.json baseline.
bench-compile:
	$(GO) test -run '^$$' -bench 'Compile_AnalysisCache|Compile_Workers' -benchtime=1x .

# bench-serve smoke-runs the oraql-serve latency benchmark; use
# scripts/bench_serve.sh to record a BENCH_serve.json baseline.
bench-serve:
	$(GO) test -run '^$$' -bench 'Serve_Compile' -benchtime=1x .

# bench-diskcache records BENCH_diskcache.json and doubles as the CI
# cross-process warm-start smoke: cold/warm `oraql sweep` from two
# processes over one -cache-dir (byte-identical, >=5x), then the
# seeded reprobe of an edited program (strictly fewer compiles, same
# convictions).
bench-diskcache:
	scripts/bench_diskcache.sh

# bench-cluster records BENCH_cluster.json and doubles as the CI
# cluster smoke: 1/2/4-process fleets over a shared -cache-dir (warm
# sweep fully deduplicated fleet-wide, byte-identical), then the
# peer-kill degradation leg on distinct dirs (SIGKILL one of two
# peered instances mid-sweep; the survivor completes identically).
bench-cluster:
	scripts/bench_cluster.sh

# bench-warehouse records BENCH_warehouse.json and doubles as the CI
# warehouse smoke: 500-finding ingest throughput with idempotent
# re-ingest, two racing ingest processes over one shared directory
# (exactly one record per unique finding), query latency with
# byte-identical answers, and the scripted forensics campaign's
# cross-worker byte-identity.
bench-warehouse:
	scripts/bench_warehouse.sh

# warehouse-smoke runs the warehouse store, query, and CPG-export
# suites under the race detector (racing writers share a directory).
warehouse-smoke:
	$(GO) test -race -count=1 ./internal/warehouse/...

# cluster-smoke runs the in-process cluster/batch/retry suites under
# the race detector: peer forwarding, breaker trips, fault-injected
# transports, batch dedup, and the client retry policy.
cluster-smoke:
	$(GO) test -race -count=1 -run 'Cluster|Batch|Retry' ./internal/service/...

# serve-smoke mirrors the CI serve job: build the server, drive every
# endpoint with the checked-in example, assert the cache hit on
# /metrics, and check the SIGTERM drain.
serve-smoke:
	scripts/serve_smoke.sh

# campaign-smoke mirrors the CI campaign job: every example campaign
# through `oraql run` (cross-worker byte-identity for the scripted
# default probe), the -max-steps sandbox, and one campaign through a
# live oraql-serve with -cache-dir via POST /v1/campaign.
campaign-smoke:
	scripts/campaign_smoke.sh

# fuzz-smoke mirrors the CI fuzz job: a 200-program differential
# campaign, the fault-injection triage self-test, and 30s of each
# native fuzz target.
fuzz-smoke:
	$(GO) run ./cmd/oraql-fuzz -n 200 -seed 1 -v
	$(GO) run ./cmd/oraql-fuzz -inject -n 10 -seed 1 -v
	$(GO) test ./internal/irtext -fuzz FuzzIRTextRoundtrip -fuzztime 30s -run '^$$'
	$(GO) test ./internal/irtext -fuzz FuzzParseNoPanic -fuzztime 30s -run '^$$'
	$(GO) test ./internal/difftest -fuzz FuzzDifferential -fuzztime 30s -run '^$$'

# fuzz runs an open-ended differential campaign; tune N/SEED/ARGS.
N ?= 1000
SEED ?= 1
fuzz:
	$(GO) run ./cmd/oraql-fuzz -n $(N) -seed $(SEED) -v $(ARGS)

check: vet tier1 race bench bench-compile bench-serve bench-diskcache warehouse-smoke bench-warehouse serve-smoke campaign-smoke
