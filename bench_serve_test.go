package goraql

// Serve benchmarks: throughput and latency percentiles of the
// /v1/compile endpoint under concurrent clients, cold (every request a
// distinct program, so every request compiles) and warm (one shared
// program, so all but the first request hit the cross-request result
// cache). scripts/bench_serve.sh records the numbers into
// BENCH_serve.json:
//
//	go test -run '^$' -bench Serve_Compile -benchtime=1x .

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sort"
	"sync"
	"testing"
	"time"

	"github.com/oraql/go-oraql/internal/service"
	"github.com/oraql/go-oraql/internal/service/client"
)

// benchProgram renders a distinct-but-equivalent program per seed, so
// cold-cache runs compile fresh modules of identical shape.
func benchProgram(seed int) string {
	return fmt.Sprintf(`int main() {
	double a[16];
	for (int z = 0; z < 16; z++) { a[z] = (double)(z + %d); }
	int m[4];
	for (int z = 0; z < 4; z++) { m[z] = z; }
	double* p = a + m[2];
	a[2] = 1.0;
	p[0] = 3.0;
	double s = 0.0;
	for (int z = 0; z < 16; z++) { s = s + a[z]; }
	print("sum ", s, "\n");
	return 0;
}
`, seed)
}

const serveBenchRequestsPerClient = 8

func benchServeCompile(b *testing.B, clients int, warm bool) {
	for iter := 0; iter < b.N; iter++ {
		svc := service.New(service.Config{CacheEntries: 4096})
		ts := httptest.NewServer(svc)
		cl := client.New(ts.URL)
		ctx := context.Background()

		if warm {
			// Populate the cache so every measured request hits it.
			if _, err := cl.Compile(ctx, &service.CompileRequest{
				Program: service.ProgramSpec{Source: benchProgram(0), SourceFile: "bench.mc"},
			}); err != nil {
				b.Fatal(err)
			}
		}

		var (
			wg        sync.WaitGroup
			mu        sync.Mutex
			latencies []time.Duration
			firstErr  error
		)
		start := time.Now()
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				local := make([]time.Duration, 0, serveBenchRequestsPerClient)
				for r := 0; r < serveBenchRequestsPerClient; r++ {
					seed := 0 // warm: every client reuses the cached program
					if !warm {
						seed = 1 + c*serveBenchRequestsPerClient + r
					}
					req := &service.CompileRequest{
						Program: service.ProgramSpec{Source: benchProgram(seed), SourceFile: "bench.mc"},
					}
					t0 := time.Now()
					resp, err := cl.Compile(ctx, req)
					local = append(local, time.Since(t0))
					if err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						mu.Unlock()
						return
					}
					if warm && !resp.Cached {
						mu.Lock()
						if firstErr == nil {
							firstErr = fmt.Errorf("warm request missed the cache")
						}
						mu.Unlock()
						return
					}
				}
				mu.Lock()
				latencies = append(latencies, local...)
				mu.Unlock()
			}(c)
		}
		wg.Wait()
		elapsed := time.Since(start)
		shutCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
		err := svc.Shutdown(shutCtx)
		cancel()
		ts.Close()
		if firstErr != nil {
			b.Fatal(firstErr)
		}
		if err != nil {
			b.Fatalf("shutdown: %v", err)
		}

		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		pct := func(p float64) time.Duration {
			idx := int(p * float64(len(latencies)-1))
			return latencies[idx]
		}
		b.ReportMetric(float64(pct(0.50).Microseconds())/1000, "p50-ms")
		b.ReportMetric(float64(pct(0.99).Microseconds())/1000, "p99-ms")
		b.ReportMetric(float64(len(latencies))/elapsed.Seconds(), "req/s")
	}
}

func BenchmarkServe_Compile(b *testing.B) {
	for _, clients := range []int{1, 4, 16} {
		for _, mode := range []string{"cold", "warm"} {
			b.Run(fmt.Sprintf("c%d_%s", clients, mode), func(b *testing.B) {
				benchServeCompile(b, clients, mode == "warm")
			})
		}
	}
}
