// Command oraql-fuzz is the differential-fuzzing front end: it
// generates UB-free minic programs, compiles each one at O0 and under
// every AA configuration of the O1/O3 matrix, and compares the
// interpreter outputs. Any divergence is a miscompile; with -triage
// (default on) it is automatically bisected to the first guilty pass,
// delta-debugged to a minimal reproducer, and — in -inject mode — to
// the minimal set of guilty optimistic alias responses.
//
// Usage:
//
//	oraql-fuzz [-n N] [-seed S] [-j N] [-stmts N] [-corpus dir] [-json file]
//	           [-cache-dir DIR] [-cache-max-mb N] [-seed-from-warehouse]
//	oraql-fuzz -inject [-n N] ...   # fault-injection self-test
//
// With -cache-dir, every oracle compilation is backed by the shared
// persistent store: re-running a seed range (or sharing the directory
// with oraql/oraql-opt/oraql-serve) starts warm. The oracle's verdict
// is unaffected — ORAQL-active variants bypass the cache. Divergences
// (and their triage artifacts) are additionally filed in the forensics
// warehouse inside the same directory; -seed-from-warehouse reorders
// generation so seeds that diverged in past campaigns run first.
//
// In the default (clean) mode the exit status is 0 only when the whole
// campaign is divergence-free: any hit means the compiler at head
// miscompiles a generated program. In -inject mode the logic flips —
// the deliberately unsound fully-optimistic responder MUST produce a
// divergence and the triage MUST pin it, otherwise the harness itself
// has rotted and the run fails.
//
// Exit codes: 0 success, 1 operational failure (including divergences
// in clean mode), 2 usage error. Any -json usage additionally switches
// failures to the shared JSON error envelope on stderr.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/oraql/go-oraql/internal/cliutil"
	"github.com/oraql/go-oraql/internal/difftest"
	"github.com/oraql/go-oraql/internal/progen"
	"github.com/oraql/go-oraql/internal/warehouse"

	// Registered for -list: app configs (and, transitively, the probing
	// strategies); the fuzzing path itself does not consume them.
	_ "github.com/oraql/go-oraql/internal/apps"
)

func main() {
	argv := os.Args[1:]
	err := run(argv, os.Stdout, os.Stderr)
	os.Exit(cliutil.Report(os.Stderr, "oraql-fuzz", cliutil.WantsJSON(argv), err))
}

func run(argv []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("oraql-fuzz", flag.ContinueOnError)
	fs.SetOutput(stderr)
	n := fs.Int("n", 100, "number of programs to generate")
	seed := fs.Int64("seed", 1, "first generator seed; programs use [seed, seed+n)")
	workers := fs.Int("j", 0, "parallel workers (0 = GOMAXPROCS)")
	stmts := fs.Int("stmts", 0, "statements per generated program (0 = generator default)")
	grammar := fs.String("grammar", "default", "registered grammar profile (see -list)")
	list := fs.Bool("list", false, "list registered grammar profiles, strategies, AA chains, and app configs, then exit")
	corpus := fs.String("corpus", "", "directory receiving diverging sources, reproducers, and JSON reports")
	cacheDir := fs.String("cache-dir", "", "persistent compile cache directory shared across campaigns and processes (empty = no persistence)")
	cacheMaxMB := fs.Int("cache-max-mb", 0, "size cap for -cache-dir in MiB (0 = 512)")
	jsonOut := fs.String("json", "", "write the campaign summary as JSON to this file (- = stdout)")
	inject := fs.Bool("inject", false, "fault-injection mode: run the unsound fully-optimistic responder and demand a triaged divergence")
	triage := fs.Bool("triage", true, "triage divergences (reduce source, bisect pipeline and queries)")
	seedFromWH := fs.Bool("seed-from-warehouse", false, "order generation toward seeds that historically diverged (requires -cache-dir)")
	maxDiv := fs.Int("max-div", 0, "stop after this many divergences (0 = default)")
	verbose := fs.Bool("v", false, "log progress to stderr")
	if err := fs.Parse(argv); err != nil {
		return cliutil.WrapUsage(err)
	}
	if fs.NArg() > 0 {
		return cliutil.Usagef("unexpected arguments: %v", fs.Args())
	}
	if *list {
		cliutil.PrintRegistries(stdout)
		return nil
	}
	gen, err := progen.GrammarByName(*grammar, *stmts)
	if err != nil {
		return cliutil.WrapUsage(err)
	}

	cache, err := cliutil.OpenCache(*cacheDir, *cacheMaxMB)
	if err != nil {
		return err
	}
	opts := difftest.FuzzOptions{
		N:              *n,
		Seed:           *seed,
		Workers:        *workers,
		Cache:          cache,
		Gen:            gen,
		Grammar:        *grammar,
		Triage:         *triage,
		MaxDivergences: *maxDiv,
		CorpusDir:      *corpus,
	}
	if *verbose {
		opts.Log = stderr
	}
	if *seedFromWH {
		w := warehouse.Open(cache)
		if w == nil {
			return cliutil.Usagef("-seed-from-warehouse requires -cache-dir")
		}
		opts.PrioritySeeds = w.Load().DivergentSeeds(*grammar)
		if *verbose {
			fmt.Fprintf(stderr, "oraql-fuzz: %d historically divergent seeds prioritized from the warehouse\n", len(opts.PrioritySeeds))
		}
	}
	if *inject {
		opts.Variants = []difftest.Variant{difftest.InjectVariant()}
	}

	res, err := difftest.Fuzz(opts)
	if err != nil {
		return err
	}
	if err := emit(res, *jsonOut, stdout); err != nil {
		return err
	}

	fmt.Fprintf(stdout, "oraql-fuzz: %d programs x %d variants: %d divergences, %d harness errors\n",
		res.Programs, res.Variants, len(res.Divergences), len(res.Errors))
	for _, e := range res.Errors {
		fmt.Fprintln(stderr, "harness error:", e)
	}
	if len(res.Errors) > 0 {
		return fmt.Errorf("%d harness errors", len(res.Errors))
	}
	if *inject {
		return checkInject(res, stdout)
	}
	for _, d := range res.Divergences {
		fmt.Fprintf(stdout, "MISCOMPILE seed=%d variant=%s ref=%q got=%q\n", d.Seed, d.Variant, d.Ref, d.Got)
		if d.Triage != nil {
			fmt.Fprintf(stdout, "  first guilty pass: %q (position %d), %d-line reproducer\n",
				d.Triage.Pass, d.Triage.PassIndex, d.Triage.ReproLines)
		}
	}
	if len(res.Divergences) > 0 {
		return fmt.Errorf("%d divergences — the compiler miscompiles generated programs", len(res.Divergences))
	}
	return nil
}

// checkInject validates the fault-injection self-test: the unsound
// responder must diverge and the triage must fully explain it.
func checkInject(res *difftest.FuzzResult, stdout io.Writer) error {
	if len(res.Divergences) == 0 {
		return fmt.Errorf("inject mode: the fully-optimistic responder produced no divergence in %d programs; the oracle cannot detect miscompiles", res.Programs)
	}
	for _, d := range res.Divergences {
		if d.Triage == nil {
			return fmt.Errorf("inject mode: seed %d diverged but triage failed: %s", d.Seed, d.TriageErr)
		}
		if d.Triage.Pass == "" || len(d.Triage.Queries) == 0 {
			return fmt.Errorf("inject mode: seed %d triage incomplete: pass=%q queries=%d",
				d.Seed, d.Triage.Pass, len(d.Triage.Queries))
		}
		fmt.Fprintf(stdout, "inject seed=%d: pass %q (position %d), %d guilty queries, %d-line reproducer\n",
			d.Seed, d.Triage.Pass, d.Triage.PassIndex, len(d.Triage.Queries), d.Triage.ReproLines)
		for _, q := range d.Triage.Queries {
			fmt.Fprintf(stdout, "  query #%d in %s/%s: %s vs %s\n", q.Index, q.Pass, q.Func, q.A, q.B)
		}
	}
	fmt.Fprintln(stdout, "inject mode: all divergences detected and triaged — oracle healthy")
	return nil
}

// emit writes the JSON campaign summary when requested.
func emit(res *difftest.FuzzResult, dest string, stdout io.Writer) error {
	if dest == "" {
		return nil
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if dest == "-" {
		_, err = stdout.Write(data)
		return err
	}
	return os.WriteFile(dest, data, 0o644)
}
