package main

import (
	"io"
	"testing"

	"github.com/oraql/go-oraql/internal/cliutil"
)

func TestFailurePaths(t *testing.T) {
	cases := []struct {
		name string
		argv []string
		want int
	}{
		{"bad flag", []string{"-definitely-not-a-flag"}, cliutil.ExitUsage},
		{"unexpected positional", []string{"extra"}, cliutil.ExitUsage},
		{"bad n value", []string{"-n", "many"}, cliutil.ExitUsage},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := run(tc.argv, io.Discard, io.Discard)
			if err == nil {
				t.Fatal("expected an error")
			}
			if got := cliutil.ExitCode(err); got != tc.want {
				t.Fatalf("exit code = %d, want %d (err: %v)", got, tc.want, err)
			}
		})
	}
}

func TestTinyCleanCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles a variant matrix")
	}
	// One generated program across the full variant matrix: must be
	// divergence-free at head and exit 0.
	if err := run([]string{"-n", "1", "-seed", "7"}, io.Discard, io.Discard); err != nil {
		t.Fatalf("clean campaign: %v", err)
	}
}
