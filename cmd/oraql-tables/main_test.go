package main

import (
	"io"
	"strings"
	"testing"

	"github.com/oraql/go-oraql/internal/cliutil"
)

func TestFailurePaths(t *testing.T) {
	cases := []struct {
		name string
		argv []string
		want int
	}{
		{"bad flag", []string{"-definitely-not-a-flag"}, cliutil.ExitUsage},
		{"unexpected positional", []string{"fig4"}, cliutil.ExitUsage},
		{"unknown table", []string{"-table", "fig99"}, cliutil.ExitUsage},
		{"unknown config", []string{"-table", "fig4", "-configs", "no-such-config"}, cliutil.ExitFailure},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := run(tc.argv, io.Discard, io.Discard)
			if err == nil {
				t.Fatal("expected an error")
			}
			if got := cliutil.ExitCode(err); got != tc.want {
				t.Fatalf("exit code = %d, want %d (err: %v)", got, tc.want, err)
			}
		})
	}
}

func TestFig5IsStatic(t *testing.T) {
	// fig5 renders without probing anything, so it must stay cheap.
	var out strings.Builder
	if err := run([]string{"-table", "fig5"}, &out, io.Discard); err != nil {
		t.Fatalf("fig5: %v", err)
	}
	if out.Len() == 0 {
		t.Fatal("fig5 printed nothing")
	}
}
