// Command oraql-tables regenerates the paper's tables and figures from
// live runs of the evaluation:
//
//	oraql-tables               # everything
//	oraql-tables -table fig4   # one table: fig3|fig4|fig5|fig6|fig7|runtime|effort|timing
//	oraql-tables -configs a,b  # restrict to a config subset
//	oraql-tables -table warehouse -cache-dir D   # forensics corpus recurrences
//
// Exit codes: 0 success, 1 operational failure, 2 usage error. With
// -json, failures are printed as the shared JSON error envelope.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/oraql/go-oraql/internal/cliutil"
	"github.com/oraql/go-oraql/internal/report"
	"github.com/oraql/go-oraql/internal/warehouse"
)

var tables = map[string]bool{"all": true, "fig3": true, "fig4": true, "fig5": true,
	"fig6": true, "fig7": true, "runtime": true, "effort": true, "timing": true,
	"warehouse": true}

func main() {
	argv := os.Args[1:]
	err := run(argv, os.Stdout, os.Stderr)
	os.Exit(cliutil.Report(os.Stderr, "oraql-tables", cliutil.WantsJSON(argv), err))
}

func run(argv []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("oraql-tables", flag.ContinueOnError)
	fs.SetOutput(stderr)
	table := fs.String("table", "all", "which table to print (fig3|fig4|fig5|fig6|fig7|runtime|effort|timing|warehouse|all)")
	configs := fs.String("configs", "", "comma-separated config ids (default: all)")
	cacheDir := fs.String("cache-dir", "", "persistent store holding the forensics warehouse (for -table warehouse)")
	cacheMaxMB := fs.Int("cache-max-mb", 0, "size cap for -cache-dir in MiB (0 = 512)")
	verbose := fs.Bool("v", false, "verbose driver log")
	fs.Bool("json", false, "emit failures as the shared JSON error envelope")
	if err := fs.Parse(argv); err != nil {
		return cliutil.WrapUsage(err)
	}
	if fs.NArg() > 0 {
		return cliutil.Usagef("unexpected arguments: %v", fs.Args())
	}
	if !tables[*table] {
		return cliutil.Usagef("unknown table %q (fig3|fig4|fig5|fig6|fig7|runtime|effort|timing|warehouse|all)", *table)
	}

	// The warehouse table reads the persisted corpus instead of running
	// experiments, so it never joins "all".
	if *table == "warehouse" {
		cache, err := cliutil.OpenCache(*cacheDir, *cacheMaxMB)
		if err != nil {
			return err
		}
		w := warehouse.Open(cache)
		if w == nil {
			return cliutil.Usagef("-table warehouse requires -cache-dir")
		}
		fmt.Fprintln(stdout, report.WarehouseTable(w.Load()))
		return nil
	}

	var ids []string
	if *configs != "" {
		ids = strings.Split(*configs, ",")
	}
	var logW io.Writer = io.Discard
	if *verbose {
		logW = stderr
	}

	if *table == "fig5" {
		fmt.Fprintln(stdout, report.Fig5())
		return nil
	}

	exps, err := report.RunAll(ids, logW)
	if err != nil {
		return err
	}
	report.SortByFig4Order(exps)

	show := func(name string) bool { return *table == "all" || *table == name }
	if show("fig4") {
		fmt.Fprintln(stdout, report.Fig4(exps, true))
	}
	if show("fig5") {
		fmt.Fprintln(stdout, report.Fig5())
	}
	if show("fig6") {
		fmt.Fprintln(stdout, report.Fig6(exps))
	}
	if show("fig7") {
		for _, e := range exps {
			if e.Probe.Final.Compile.Device != nil {
				fmt.Fprintln(stdout, report.Fig7(e))
			}
		}
	}
	if show("fig3") {
		for _, e := range exps {
			s := e.Probe.Final.Compile.ORAQLStats()
			if s.UniquePessimistic > 0 {
				fmt.Fprintln(stdout, report.Fig3(e))
			}
		}
	}
	if show("runtime") {
		fmt.Fprintln(stdout, report.Runtime(exps))
	}
	if show("effort") {
		fmt.Fprintln(stdout, report.ProbingEffort(exps))
	}
	if show("timing") {
		fmt.Fprintln(stdout, report.PassTiming(exps))
	}
	return nil
}
