// Command oraql-tables regenerates the paper's tables and figures from
// live runs of the evaluation:
//
//	oraql-tables               # everything
//	oraql-tables -table fig4   # one table: fig3|fig4|fig5|fig6|fig7|runtime|effort|timing
//	oraql-tables -configs a,b  # restrict to a config subset
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/oraql/go-oraql/internal/report"
)

func main() {
	table := flag.String("table", "all", "which table to print (fig3|fig4|fig5|fig6|fig7|runtime|effort|timing|all)")
	configs := flag.String("configs", "", "comma-separated config ids (default: all)")
	verbose := flag.Bool("v", false, "verbose driver log")
	flag.Parse()

	var ids []string
	if *configs != "" {
		ids = strings.Split(*configs, ",")
	}
	var logW io.Writer = io.Discard
	if *verbose {
		logW = os.Stderr
	}

	if *table == "fig5" {
		fmt.Println(report.Fig5())
		return
	}

	exps, err := report.RunAll(ids, logW)
	if err != nil {
		fmt.Fprintln(os.Stderr, "oraql-tables:", err)
		os.Exit(1)
	}
	report.SortByFig4Order(exps)

	show := func(name string) bool { return *table == "all" || *table == name }
	if show("fig4") {
		fmt.Println(report.Fig4(exps, true))
	}
	if show("fig5") {
		fmt.Println(report.Fig5())
	}
	if show("fig6") {
		fmt.Println(report.Fig6(exps))
	}
	if show("fig7") {
		for _, e := range exps {
			if e.Probe.Final.Compile.Device != nil {
				fmt.Println(report.Fig7(e))
			}
		}
	}
	if show("fig3") {
		for _, e := range exps {
			s := e.Probe.Final.Compile.ORAQLStats()
			if s.UniquePessimistic > 0 {
				fmt.Println(report.Fig3(e))
			}
		}
	}
	if show("runtime") {
		fmt.Println(report.Runtime(exps))
	}
	if show("effort") {
		fmt.Println(report.ProbingEffort(exps))
	}
	if show("timing") {
		fmt.Println(report.PassTiming(exps))
	}
}
