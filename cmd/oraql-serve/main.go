// Command oraql-serve runs the compile-and-probe service: an
// HTTP/JSON server exposing the repo's workloads — synchronous
// compilation (POST /v1/compile, cached across requests), and
// asynchronous probe, differential-fuzzing, and scripted campaigns
// (POST /v1/probe, POST /v1/fuzz, POST /v1/campaign, polled via GET
// /v1/jobs/{id} and streamed via GET /v1/jobs/{id}/events) — with
// registry introspection on GET /v1/registry, Prometheus-text metrics
// on GET /metrics, and a health probe on GET /healthz.
//
// Campaign scripts run sandboxed: the interpreter has no filesystem,
// exec, or network bindings, and every job is bounded by
// -campaign-max-steps and -campaign-timeout (requests may lower the
// step budget, never raise it).
//
// Usage:
//
//	oraql-serve [-addr :8347] [-workers N] [-compile-workers N]
//	            [-queue N] [-cache-entries N] [-request-timeout 60s]
//	            [-cache-dir DIR] [-cache-max-mb N] [-quiet]
//	            [-campaign-max-steps N] [-campaign-timeout 10m]
//	            [-self URL -peers URL,URL,...] [-peer-timeout 2s]
//
// With -cache-dir, compile results and probe campaign state persist in
// a content-addressed store shared safely by any number of serve
// instances (and the oraql/oraql-opt CLIs) pointing at the same
// directory: restarts and sibling instances start warm.
//
// With -peers, instances without a shared directory still behave as
// one cache: every instance must be started with the same node set
// (its own -self plus the others as -peers), over which all of them
// build the same consistent-hash ring. A cache miss on a key owned by
// a peer is first fetched from that peer (GET /v1/artifact/{key})
// before compiling locally; peer failures degrade to local compiles
// behind a per-peer circuit breaker. -peers composes with -cache-dir.
//
// SIGINT/SIGTERM trigger a graceful shutdown: the listener stops, the
// job queue drains (queued jobs are cancelled without running), and
// in-flight jobs have their contexts cancelled, which stops their
// compilations mid-pipeline.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/oraql/go-oraql/internal/cliutil"
	"github.com/oraql/go-oraql/internal/service"
)

func main() {
	argv := os.Args[1:]
	err := run(argv, os.Stdout, os.Stderr)
	os.Exit(cliutil.Report(os.Stderr, "oraql-serve", cliutil.WantsJSON(argv), err))
}

func run(argv []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("oraql-serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8347", "listen address")
	workers := fs.Int("workers", 0, "job worker pool size (0 = NumCPU)")
	queue := fs.Int("queue", 64, "bounded job queue size")
	cacheEntries := fs.Int("cache-entries", 128, "compile result cache capacity")
	compileWorkers := fs.Int("compile-workers", 0, "per-function parallelism inside each compilation (0 = GOMAXPROCS split over the job workers)")
	reqTimeout := fs.Duration("request-timeout", 60*time.Second, "synchronous request deadline")
	cacheDir := fs.String("cache-dir", "", "persistent cache directory shared across instances and restarts (empty = memory-only)")
	cacheMaxMB := fs.Int("cache-max-mb", 0, "size cap for -cache-dir in MiB before GC evicts cold entries (0 = 512)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget")
	campaignSteps := fs.Int64("campaign-max-steps", 0, "instruction budget per campaign script (0 = package default; requests can lower it, never raise it)")
	campaignTimeout := fs.Duration("campaign-timeout", 0, "wall-clock limit per campaign script (0 = 10m)")
	self := fs.String("self", "", "this instance's base URL as peers reach it (required with -peers)")
	peers := fs.String("peers", "", "comma-separated peer base URLs; enables peer-forwarding cluster mode")
	peerTimeout := fs.Duration("peer-timeout", 0, "deadline per peer artifact fetch (0 = 2s)")
	peerCooldown := fs.Duration("peer-cooldown", 0, "base circuit-breaker cooldown after a peer failure, doubling per consecutive failure (0 = 1s)")
	quiet := fs.Bool("quiet", false, "suppress the structured request log")
	fs.Bool("json", false, "emit failures as the shared JSON error envelope")
	if err := fs.Parse(argv); err != nil {
		return cliutil.WrapUsage(err)
	}
	if fs.NArg() > 0 {
		return cliutil.Usagef("unexpected arguments: %v", fs.Args())
	}

	var peerList []string
	for _, p := range strings.Split(*peers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peerList = append(peerList, p)
		}
	}
	if len(peerList) > 0 && *self == "" {
		return cliutil.Usagef("-peers requires -self: every instance must know its own base URL for the ring to agree fleet-wide")
	}

	var logW io.Writer = stderr
	if *quiet {
		logW = nil
	}
	cache, err := cliutil.OpenCache(*cacheDir, *cacheMaxMB)
	if err != nil {
		return err
	}
	svc := service.New(service.Config{
		Workers:        *workers,
		QueueSize:      *queue,
		CacheEntries:   *cacheEntries,
		CompileWorkers: *compileWorkers,
		RequestTimeout: *reqTimeout,
		Cache:          cache,
		Log:            logW,

		CampaignMaxSteps: *campaignSteps,
		CampaignTimeout:  *campaignTimeout,

		Self:         *self,
		Peers:        peerList,
		PeerTimeout:  *peerTimeout,
		PeerCooldown: *peerCooldown,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: svc}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(stderr, "oraql-serve: listening on %s (workers=%d compile-workers=%d queue=%d cache=%d)\n",
		*addr, svc.Workers(), svc.CompileWorkers(), *queue, *cacheEntries)
	if len(peerList) > 0 {
		fmt.Fprintf(stderr, "oraql-serve: cluster mode self=%s peers=%s\n", *self, strings.Join(peerList, ","))
	}

	select {
	case sig := <-sigCh:
		fmt.Fprintf(stderr, "oraql-serve: %v: draining\n", sig)
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Drain the service first: queued jobs are cancelled, in-flight
	// pipeline work is stopped via context, and long-lived event
	// streams terminate — then the listener can shut down gracefully
	// without waiting on them.
	if err := svc.Shutdown(ctx); err != nil {
		return err
	}
	if err := httpSrv.Shutdown(ctx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	fmt.Fprintln(stderr, "oraql-serve: drained cleanly")
	return nil
}
