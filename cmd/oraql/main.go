// Command oraql is the ORAQL probing driver CLI: it runs the full
// workflow (baseline, fully-optimistic attempt, bisection) on a
// benchmark configuration or a standalone minic source file and
// reports the locally maximal optimistic sequence.
//
// Usage:
//
//	oraql list
//	oraql probe <config-id> [-strategy chunked|freq] [-j N] [-v]
//	oraql probe -file prog.mc [-model seq|openmp|tasks|mpi|offload] [-fortran] [-views]
//	oraql report <config-id>        # Fig. 3-style pessimistic dump
//	oraql run <config-id>           # baseline compile+run only
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/oraql/go-oraql/internal/apps"
	"github.com/oraql/go-oraql/internal/driver"
	"github.com/oraql/go-oraql/internal/irinterp"
	"github.com/oraql/go-oraql/internal/minic"
	"github.com/oraql/go-oraql/internal/oraql"
	"github.com/oraql/go-oraql/internal/pipeline"
	"github.com/oraql/go-oraql/internal/report"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "list":
		err = cmdList()
	case "probe":
		err = cmdProbe(args)
	case "report":
		err = cmdReport(args)
	case "run":
		err = cmdRun(args)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "oraql:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  oraql list
  oraql probe <config-id> [-strategy chunked|freq] [-j N] [-no-exe-cache] [-v]
  oraql probe -file prog.mc [-model seq|openmp|tasks|mpi|offload] [-fortran] [-views] [-target sub]
  oraql report <config-id>
  oraql run <config-id>`)
}

func cmdList() error {
	fmt.Printf("%-22s %-14s %-22s %s\n", "ID", "BENCHMARK", "MODEL", "SOURCE")
	for _, c := range apps.All() {
		fmt.Printf("%-22s %-14s %-22s %s\n", c.ID, c.Benchmark, c.ModelLabel, c.SourceFiles)
	}
	return nil
}

func buildSpec(args []string) (*driver.BenchSpec, error) {
	fs := flag.NewFlagSet("probe", flag.ContinueOnError)
	file := fs.String("file", "", "standalone minic source file instead of a config id")
	model := fs.String("model", "seq", "parallel model for -file (seq|openmp|tasks|mpi|offload)")
	fortran := fs.Bool("fortran", false, "Fortran dialect (descriptor arrays, no TBAA) for -file")
	views := fs.Bool("views", false, "Kokkos/Thrust-style boxed heap arrays for -file")
	target := fs.String("target", "", "-opt-aa-target substring (restrict ORAQL to a target)")
	strategy := fs.String("strategy", "chunked", "bisection strategy (chunked|freq)")
	workers := fs.Int("j", 0, "probing worker pool size (0 = NumCPU, 1 = sequential)")
	noCache := fs.Bool("no-exe-cache", false, "disable the executable-hash test cache")
	ranks := fs.Int("ranks", 1, "simulated MPI ranks")
	verbose := fs.Bool("v", false, "verbose driver log")

	var id string
	if len(args) > 0 && args[0][0] != '-' {
		id, args = args[0], args[1:]
	}
	if err := fs.Parse(args); err != nil {
		return nil, err
	}

	var spec *driver.BenchSpec
	switch {
	case *file != "":
		src, err := os.ReadFile(*file)
		if err != nil {
			return nil, err
		}
		models := map[string]minic.Model{"seq": minic.ModelSeq, "openmp": minic.ModelOpenMP,
			"tasks": minic.ModelTasks, "mpi": minic.ModelMPI, "offload": minic.ModelOffload}
		m, ok := models[*model]
		if !ok {
			return nil, fmt.Errorf("unknown model %q", *model)
		}
		d := minic.DialectC
		if *fortran {
			d = minic.DialectFortran
		}
		spec = &driver.BenchSpec{
			Name: *file,
			Compile: pipeline.Config{
				Source: string(src), SourceFile: *file,
				Frontend: minic.Options{Dialect: d, Model: m, Views: *views},
			},
			Run:   irinterp.Options{NumRanks: *ranks},
			ORAQL: oraql.Options{Target: *target},
		}
	case id != "":
		cfg := apps.ByID(id)
		if cfg == nil {
			return nil, fmt.Errorf("unknown configuration %q (try `oraql list`)", id)
		}
		spec = cfg.Spec()
	default:
		return nil, fmt.Errorf("need a config id or -file")
	}
	if *strategy == "freq" {
		spec.Strategy = driver.FreqSpace
	}
	spec.Workers = *workers
	spec.DisableExeCache = *noCache
	var logW io.Writer = io.Discard
	if *verbose {
		logW = os.Stderr
	}
	spec.Log = logW
	return spec, nil
}

func cmdProbe(args []string) error {
	spec, err := buildSpec(args)
	if err != nil {
		return err
	}
	spec.Log = os.Stderr
	res, err := driver.Probe(spec)
	if err != nil {
		return err
	}
	s := res.Final.Compile.ORAQLStats()
	fmt.Printf("configuration:        %s\n", spec.Name)
	fmt.Printf("fully optimistic:     %v\n", res.FullyOptimistic)
	fmt.Printf("optimistic queries:   %d unique, %d cached\n", s.UniqueOptimistic, s.CachedOptimistic)
	fmt.Printf("pessimistic queries:  %d unique, %d cached\n", s.UniquePessimistic, s.CachedPessimistic)
	fmt.Printf("no-alias responses:   %d original -> %d ORAQL\n",
		res.Baseline.Compile.NoAliasTotal(), res.Final.Compile.NoAliasTotal())
	fmt.Printf("probing effort:       %d compiles, %d tests (+%d from exe cache)\n",
		res.Compiles, res.TestsRun, res.TestsCached)
	if res.TestsSpeculated > 0 {
		fmt.Printf("speculation:          %d tests prefetched, %d wasted\n",
			res.TestsSpeculated, res.TestsWasted)
	}
	aas := res.Final.Compile.AAStats()
	fmt.Printf("aa query cache:       %d hits, %d misses (%.1f%% hit rate), %d flushes\n",
		aas.CacheHits, aas.CacheMisses, 100*aas.CacheHitRate(), aas.CacheFlushes)
	fmt.Printf("instructions:         %d original -> %d ORAQL\n",
		res.Baseline.Run.Instrs, res.Final.Run.Instrs)
	if len(res.FinalSeq) > 0 {
		fmt.Printf("final -opt-aa-seq:    %s\n", res.FinalSeq)
	}
	return nil
}

func cmdReport(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("report needs a config id")
	}
	cfg := apps.ByID(args[0])
	if cfg == nil {
		return fmt.Errorf("unknown configuration %q", args[0])
	}
	e, err := report.Run(cfg, io.Discard)
	if err != nil {
		return err
	}
	fmt.Print(report.Fig3(e))
	return nil
}

func cmdRun(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("run needs a config id")
	}
	cfg := apps.ByID(args[0])
	if cfg == nil {
		return fmt.Errorf("unknown configuration %q", args[0])
	}
	cr, err := pipeline.Compile(pipeline.Config{
		Name: cfg.ID, Source: cfg.Source, SourceFile: cfg.SourceName, Frontend: cfg.Frontend,
	})
	if err != nil {
		return err
	}
	rr, err := irinterp.Run(cr.Program, cfg.Run)
	if err != nil {
		return err
	}
	fmt.Print(rr.Stdout)
	fmt.Fprintf(os.Stderr, "[%d instructions, %d cycles]\n", rr.Instrs, rr.Cycles)
	return nil
}
