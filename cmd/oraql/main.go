// Command oraql is the ORAQL probing driver CLI: it runs the full
// workflow (baseline, fully-optimistic attempt, bisection) on a
// benchmark configuration or a standalone minic source file and
// reports the locally maximal optimistic sequence — either locally or
// against an oraql-serve instance (-server).
//
// Usage:
//
//	oraql list
//	oraql probe <config-id> [-strategy chunked|freq|bayes] [-j N] [-v] [-json]
//	oraql probe -file prog.mc [-model seq|openmp|tasks|mpi|offload] [-fortran] [-views]
//	oraql probe <config-id> -server http://localhost:8347   # same probe, remotely
//	oraql report <config-id>        # Fig. 3-style pessimistic dump
//	oraql run <config-id>           # baseline compile+run only
//	oraql run <script.oraql>        # scripted campaign (see internal/campaign)
//
// Exit codes: 0 success, 1 operational failure, 2 usage error. With
// -json, failures are printed as the shared JSON error envelope.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"github.com/oraql/go-oraql/internal/apps"
	"github.com/oraql/go-oraql/internal/campaign"
	"github.com/oraql/go-oraql/internal/cliutil"
	"github.com/oraql/go-oraql/internal/driver"
	"github.com/oraql/go-oraql/internal/irinterp"
	"github.com/oraql/go-oraql/internal/minic"
	"github.com/oraql/go-oraql/internal/oraql"
	"github.com/oraql/go-oraql/internal/pipeline"
	"github.com/oraql/go-oraql/internal/report"
	"github.com/oraql/go-oraql/internal/service"
	"github.com/oraql/go-oraql/internal/service/client"

	// Registered for `list -grammars`; probing does not consume it.
	_ "github.com/oraql/go-oraql/internal/progen"
)

func main() {
	argv := os.Args[1:]
	err := run(argv, os.Stdout, os.Stderr)
	os.Exit(cliutil.Report(os.Stderr, "oraql", cliutil.WantsJSON(argv), err))
}

func run(argv []string, stdout, stderr io.Writer) error {
	if len(argv) < 1 {
		usage(stderr)
		return cliutil.Usagef("missing subcommand")
	}
	cmd, args := argv[0], argv[1:]
	switch cmd {
	case "list":
		return cmdList(args, stdout)
	case "probe":
		return cmdProbe(args, stdout, stderr)
	case "report":
		return cmdReport(args, stdout)
	case "run":
		return cmdRun(args, stdout, stderr)
	case "sweep":
		return cmdSweep(args, stdout, stderr)
	case "warehouse":
		return cmdWarehouse(args, stdout, stderr)
	default:
		usage(stderr)
		return cliutil.Usagef("unknown subcommand %q", cmd)
	}
}

func usage(w io.Writer) {
	fmt.Fprintln(w, `usage:
  oraql list
  oraql probe <config-id> [-strategy chunked|freq|bayes] [-j N] [-no-exe-cache] [-v] [-json]
  oraql probe -file prog.mc [-model seq|openmp|tasks|mpi|offload] [-fortran] [-views] [-target sub]
  oraql probe ... -server http://host:8347 [-poll 250ms]
  oraql report <config-id>
  oraql run <config-id>
  oraql run <script.oraql> [-j N] [-cache-dir DIR] [-max-steps N] [-timeout D] [-v] [-json]
  oraql run <script.oraql> -server http://host:8347   # sandboxed POST /v1/campaign
  oraql sweep [config-id ...] [-cache-dir DIR] [-json]
  oraql warehouse stats|query|export|ingest -cache-dir DIR [...]
  oraql warehouse query -cache-dir DIR [-by pass|shape|func|grammar] [-kind K] [-app A]
  oraql warehouse export <config-id>|-file prog.mc [-cache-dir DIR] [-compile-j N]
  oraql warehouse ingest -cache-dir DIR [-grammar G] report.json...`)
}

func cmdList(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("list", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	all := fs.Bool("all", false, "print every registry: strategies, AA analyses/chains, app configs, grammar profiles")
	strategies := fs.Bool("strategies", false, "print registered probing strategies")
	chains := fs.Bool("chains", false, "print registered AA analyses and chain orders")
	grammars := fs.Bool("grammars", false, "print registered fuzz-grammar profiles")
	if err := fs.Parse(args); err != nil {
		return cliutil.WrapUsage(err)
	}
	var kinds []string
	if *strategies {
		kinds = append(kinds, "strategy")
	}
	if *chains {
		kinds = append(kinds, "aa-analysis", "aa-chain")
	}
	if *grammars {
		kinds = append(kinds, "grammar")
	}
	switch {
	case *all:
		cliutil.PrintRegistries(stdout)
	case len(kinds) > 0:
		cliutil.PrintRegistries(stdout, kinds...)
	default:
		fmt.Fprintf(stdout, "%-22s %-14s %-22s %s\n", "ID", "BENCHMARK", "MODEL", "SOURCE")
		for _, c := range apps.All() {
			fmt.Fprintf(stdout, "%-22s %-14s %-22s %s\n", c.ID, c.Benchmark, c.ModelLabel, c.SourceFiles)
		}
	}
	return nil
}

// probeArgs is the parsed `oraql probe` invocation, kept in wire-able
// form so the same invocation can run locally or against a server.
type probeArgs struct {
	id      string
	file    string
	source  string
	model   string
	fortran bool
	views   bool
	target  string

	strategy string
	workers  int
	noCache  bool
	cacheDir string
	ranks    int
	verbose  bool
	jsonOut  bool

	server string
	poll   time.Duration
}

func parseProbeArgs(args []string) (*probeArgs, error) {
	pa := &probeArgs{}
	fs := flag.NewFlagSet("probe", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	fs.StringVar(&pa.file, "file", "", "standalone minic source file instead of a config id")
	fs.StringVar(&pa.model, "model", "seq", "parallel model for -file (seq|openmp|tasks|mpi|offload)")
	fs.BoolVar(&pa.fortran, "fortran", false, "Fortran dialect (descriptor arrays, no TBAA) for -file")
	fs.BoolVar(&pa.views, "views", false, "Kokkos/Thrust-style boxed heap arrays for -file")
	fs.StringVar(&pa.target, "target", "", "-opt-aa-target substring (restrict ORAQL to a target)")
	fs.StringVar(&pa.strategy, "strategy", "chunked", "bisection strategy by registered name (`oraql list -strategies`)")
	fs.IntVar(&pa.workers, "j", 0, "probing worker pool size (0 = NumCPU, 1 = sequential)")
	fs.BoolVar(&pa.noCache, "no-exe-cache", false, "disable the executable-hash test cache")
	fs.StringVar(&pa.cacheDir, "cache-dir", "", "persistent cache directory: compile artifacts and campaign state survive across processes (local mode only)")
	fs.IntVar(&pa.ranks, "ranks", 1, "simulated MPI ranks")
	fs.BoolVar(&pa.verbose, "v", false, "verbose driver log")
	fs.BoolVar(&pa.jsonOut, "json", false, "print the probe result as JSON (and failures as the JSON envelope)")
	fs.StringVar(&pa.server, "server", "", "probe against this oraql-serve address instead of locally")
	fs.DurationVar(&pa.poll, "poll", 250*time.Millisecond, "job poll interval in -server mode")

	if len(args) > 0 && args[0][0] != '-' {
		pa.id, args = args[0], args[1:]
	}
	if err := fs.Parse(args); err != nil {
		return nil, cliutil.WrapUsage(err)
	}
	if _, err := driver.StrategyByName(pa.strategy); err != nil {
		return nil, cliutil.WrapUsage(err)
	}
	switch {
	case pa.file != "":
		src, err := os.ReadFile(pa.file)
		if err != nil {
			return nil, err
		}
		pa.source = string(src)
	case pa.id == "":
		return nil, cliutil.Usagef("need a config id or -file")
	}
	return pa, nil
}

// spec builds the local driver spec for the parsed invocation.
func (pa *probeArgs) spec() (*driver.BenchSpec, error) {
	var spec *driver.BenchSpec
	if pa.file != "" {
		models := map[string]minic.Model{"seq": minic.ModelSeq, "openmp": minic.ModelOpenMP,
			"tasks": minic.ModelTasks, "mpi": minic.ModelMPI, "offload": minic.ModelOffload}
		m, ok := models[pa.model]
		if !ok {
			return nil, cliutil.Usagef("unknown model %q", pa.model)
		}
		d := minic.DialectC
		if pa.fortran {
			d = minic.DialectFortran
		}
		spec = &driver.BenchSpec{
			Name: pa.file,
			Compile: pipeline.Config{
				Source: pa.source, SourceFile: pa.file,
				Frontend: minic.Options{Dialect: d, Model: m, Views: pa.views},
			},
			Run:   irinterp.Options{NumRanks: pa.ranks},
			ORAQL: oraql.Options{Target: pa.target},
		}
	} else {
		cfg := apps.ByID(pa.id)
		if cfg == nil {
			return nil, fmt.Errorf("unknown configuration %q (try `oraql list`)", pa.id)
		}
		spec = cfg.Spec()
	}
	strat, err := driver.StrategyByName(pa.strategy)
	if err != nil {
		return nil, cliutil.WrapUsage(err)
	}
	spec.Strategy = strat
	spec.Workers = pa.workers
	spec.DisableExeCache = pa.noCache
	if pa.cacheDir != "" {
		cache, err := cliutil.OpenCache(pa.cacheDir, 0)
		if err != nil {
			return nil, err
		}
		spec.Cache = cache
	}
	return spec, nil
}

// request builds the wire form for -server mode.
func (pa *probeArgs) request() *service.ProbeRequest {
	req := &service.ProbeRequest{
		Strategy:        pa.strategy,
		Workers:         pa.workers,
		Target:          pa.target,
		DisableExeCache: pa.noCache,
	}
	if pa.file != "" {
		req.Program = service.ProgramSpec{
			Source: pa.source, SourceFile: pa.file,
			Model: pa.model, Fortran: pa.fortran, Views: pa.views, Ranks: pa.ranks,
		}
	} else {
		req.Program = service.ProgramSpec{ConfigID: pa.id}
	}
	return req
}

func cmdProbe(args []string, stdout, stderr io.Writer) error {
	pa, err := parseProbeArgs(args)
	if err != nil {
		return err
	}
	if pa.server != "" {
		return probeViaServer(pa, stdout, stderr)
	}
	spec, err := pa.spec()
	if err != nil {
		return err
	}
	spec.Log = stderr
	res, err := driver.Probe(spec)
	if err != nil {
		return err
	}
	return emitProbe(report.NewProbeJSON(res), pa.jsonOut, stdout)
}

// probeViaServer submits the same probe to an oraql-serve instance,
// waits for the job, and prints the identical summary.
func probeViaServer(pa *probeArgs, stdout, stderr io.Writer) error {
	ctx := context.Background()
	cl := client.New(pa.server)
	info, err := cl.Probe(ctx, pa.request())
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "oraql: submitted %s to %s\n", info.ID, pa.server)
	if pa.verbose {
		// Stream progress lines while waiting; best-effort.
		evCtx, evCancel := context.WithCancel(ctx)
		defer evCancel()
		go func() { _ = cl.Events(evCtx, info.ID, stderr) }()
	}
	info, err = cl.Wait(ctx, info.ID, pa.poll)
	if err != nil {
		return err
	}
	if info.State != service.JobDone {
		return fmt.Errorf("job %s %s: %s", info.ID, info.State, info.Error)
	}
	var p report.ProbeJSON
	if err := json.Unmarshal(info.Result, &p); err != nil {
		return fmt.Errorf("decode job result: %w", err)
	}
	return emitProbe(&p, pa.jsonOut, stdout)
}

// emitProbe prints the probe outcome, as JSON or as the classic
// summary — identical for local and -server runs.
func emitProbe(p *report.ProbeJSON, jsonOut bool, stdout io.Writer) error {
	if jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(p)
	}
	fmt.Fprintf(stdout, "configuration:        %s\n", p.Name)
	fmt.Fprintf(stdout, "fully optimistic:     %v\n", p.FullyOptimistic)
	fmt.Fprintf(stdout, "optimistic queries:   %d unique, %d cached\n", p.ORAQL.UniqueOptimistic, p.ORAQL.CachedOptimistic)
	fmt.Fprintf(stdout, "pessimistic queries:  %d unique, %d cached\n", p.ORAQL.UniquePessimistic, p.ORAQL.CachedPessimistic)
	fmt.Fprintf(stdout, "no-alias responses:   %d original -> %d ORAQL\n", p.NoAliasOrig, p.NoAliasORAQL)
	fmt.Fprintf(stdout, "probing effort:       %d compiles, %d tests (+%d from exe cache)\n",
		p.Compiles, p.TestsRun, p.TestsCached)
	if p.TestsDisk > 0 {
		fmt.Fprintf(stdout, "persistent campaign:  %d test verdicts replayed from disk\n", p.TestsDisk)
	}
	if p.TestsSpeculated > 0 {
		fmt.Fprintf(stdout, "speculation:          %d tests prefetched, %d wasted\n",
			p.TestsSpeculated, p.TestsWasted)
	}
	fmt.Fprintf(stdout, "aa query cache:       %d hits, %d misses (%.1f%% hit rate), %d flushes\n",
		p.AA.CacheHits, p.AA.CacheMisses, 100*p.AA.CacheHitRate(), p.AA.CacheFlushes)
	fmt.Fprintf(stdout, "instructions:         %d original -> %d ORAQL\n", p.InstrsOrig, p.InstrsORAQL)
	if p.FinalSeq != "" {
		fmt.Fprintf(stdout, "final -opt-aa-seq:    %s\n", p.FinalSeq)
	}
	return nil
}

func cmdReport(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("report", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	fs.Bool("json", false, "emit failures as the shared JSON error envelope")
	if err := fs.Parse(args); err != nil {
		return cliutil.WrapUsage(err)
	}
	if fs.NArg() < 1 {
		return cliutil.Usagef("report needs a config id")
	}
	cfg := apps.ByID(fs.Arg(0))
	if cfg == nil {
		return fmt.Errorf("unknown configuration %q", fs.Arg(0))
	}
	e, err := report.Run(cfg, io.Discard)
	if err != nil {
		return err
	}
	fmt.Fprint(stdout, report.Fig3(e))
	return nil
}

func cmdRun(args []string, stdout, stderr io.Writer) error {
	var target string
	if len(args) > 0 && args[0][0] != '-' {
		target, args = args[0], args[1:]
	}
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	workers := fs.Int("j", 0, "default worker budget for probe/sweep/fuzz calls in the script (0 = package defaults)")
	cacheDir := fs.String("cache-dir", "", "persistent compile cache directory backing every scripted compilation and probe")
	cacheMaxMB := fs.Int("cache-max-mb", 0, "size cap for -cache-dir in MiB (0 = 512)")
	maxSteps := fs.Int64("max-steps", 0, "interpreter instruction budget (0 = default)")
	timeout := fs.Duration("timeout", 0, "campaign wall-clock limit (0 = none locally, server cap in -server mode)")
	server := fs.String("server", "", "run the campaign on this oraql-serve instance instead of locally")
	poll := fs.Duration("poll", 250*time.Millisecond, "job poll interval in -server mode")
	verbose := fs.Bool("v", false, "stream probe/fuzz progress to stderr")
	jsonOut := fs.Bool("json", false, "print the campaign's return value as JSON (and failures as the JSON envelope)")
	if err := fs.Parse(args); err != nil {
		return cliutil.WrapUsage(err)
	}
	if target == "" {
		return cliutil.Usagef("run needs a config id or a .oraql script path")
	}
	if strings.HasSuffix(target, ".oraql") {
		ca := &campaignArgs{
			path: target, workers: *workers, cacheDir: *cacheDir, cacheMaxMB: *cacheMaxMB,
			maxSteps: *maxSteps, timeout: *timeout, server: *server, poll: *poll,
			verbose: *verbose, jsonOut: *jsonOut,
		}
		return cmdCampaign(ca, stdout, stderr)
	}
	cfg := apps.ByID(target)
	if cfg == nil {
		return fmt.Errorf("unknown configuration %q", target)
	}
	cr, err := pipeline.Compile(pipeline.Config{
		Name: cfg.ID, Source: cfg.Source, SourceFile: cfg.SourceName, Frontend: cfg.Frontend,
	})
	if err != nil {
		return err
	}
	rr, err := irinterp.Run(cr.Program, cfg.Run)
	if err != nil {
		return err
	}
	fmt.Fprint(stdout, rr.Stdout)
	fmt.Fprintf(stderr, "[%d instructions, %d cycles]\n", rr.Instrs, rr.Cycles)
	return nil
}

// campaignArgs is one `oraql run <script.oraql>` invocation.
type campaignArgs struct {
	path       string
	workers    int
	cacheDir   string
	cacheMaxMB int
	maxSteps   int64
	timeout    time.Duration
	server     string
	poll       time.Duration
	verbose    bool
	jsonOut    bool
}

// cmdCampaign executes a .oraql campaign script, locally or against
// an oraql-serve instance. print() output goes to stdout; the
// script's return value is printed as JSON when non-nil (always with
// -json, where nil prints as null).
func cmdCampaign(ca *campaignArgs, stdout, stderr io.Writer) error {
	src, err := os.ReadFile(ca.path)
	if err != nil {
		return err
	}
	if ca.server != "" {
		return campaignViaServer(ca, string(src), stdout, stderr)
	}
	cache, err := cliutil.OpenCache(ca.cacheDir, ca.cacheMaxMB)
	if err != nil {
		return err
	}
	opts := campaign.Options{
		Out:      stdout,
		Workers:  ca.workers,
		Cache:    cache,
		MaxSteps: ca.maxSteps,
		Timeout:  ca.timeout,
	}
	if ca.verbose {
		opts.Log = stderr
	}
	res, err := campaign.Run(string(src), opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "campaign: %s done (%d steps)\n", ca.path, res.Steps)
	return emitCampaignValue(res.Value, ca.jsonOut, stdout)
}

// campaignViaServer posts the script body to POST /v1/campaign and
// waits for the job, streaming events with -v.
func campaignViaServer(ca *campaignArgs, src string, stdout, stderr io.Writer) error {
	ctx := context.Background()
	cl := client.New(ca.server)
	info, err := cl.Campaign(ctx, &service.CampaignRequest{
		Script:   src,
		Workers:  ca.workers,
		MaxSteps: ca.maxSteps,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "oraql: submitted %s (script sha256 %s) to %s\n", info.ID, info.ScriptSHA256, ca.server)
	if ca.verbose {
		evCtx, evCancel := context.WithCancel(ctx)
		defer evCancel()
		go func() { _ = cl.Events(evCtx, info.ID, stderr) }()
	}
	info, err = cl.Wait(ctx, info.ID, ca.poll)
	if err != nil {
		return err
	}
	if info.State != service.JobDone {
		return fmt.Errorf("job %s %s: %s", info.ID, info.State, info.Error)
	}
	var res service.CampaignResult
	if err := json.Unmarshal(info.Result, &res); err != nil {
		return fmt.Errorf("decode job result: %w", err)
	}
	fmt.Fprintf(stderr, "campaign: %s done (%d steps)\n", ca.path, res.Steps)
	var value any
	if err := json.Unmarshal(res.Value, &value); err != nil {
		return fmt.Errorf("decode campaign value: %w", err)
	}
	return emitCampaignValue(value, ca.jsonOut, stdout)
}

func emitCampaignValue(value any, jsonOut bool, stdout io.Writer) error {
	if value == nil && !jsonOut {
		return nil
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(value)
}
