package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/oraql/go-oraql/internal/apps"
	"github.com/oraql/go-oraql/internal/cliutil"
	"github.com/oraql/go-oraql/internal/difftest"
	"github.com/oraql/go-oraql/internal/pipeline"
	"github.com/oraql/go-oraql/internal/warehouse"
)

// cmdWarehouse dispatches the forensics-warehouse subcommands. Every
// one operates on the warehouse layered over -cache-dir, the same
// store probes and fuzz campaigns ingest into automatically.
func cmdWarehouse(args []string, stdout, stderr io.Writer) error {
	if len(args) < 1 {
		return cliutil.Usagef("warehouse needs a subcommand: ingest | query | export | stats")
	}
	sub, rest := args[0], args[1:]
	switch sub {
	case "ingest":
		return cmdWarehouseIngest(rest, stdout)
	case "query":
		return cmdWarehouseQuery(rest, stdout)
	case "export":
		return cmdWarehouseExport(rest, stdout, stderr)
	case "stats":
		return cmdWarehouseStats(rest, stdout)
	default:
		return cliutil.Usagef("unknown warehouse subcommand %q (ingest | query | export | stats)", sub)
	}
}

// openWarehouse opens the store under dir; an empty dir is a usage
// error because every warehouse operation needs a corpus.
func openWarehouse(dir string, maxMB int) (*warehouse.Store, error) {
	if dir == "" {
		return nil, cliutil.Usagef("warehouse needs -cache-dir")
	}
	cache, err := cliutil.OpenCache(dir, maxMB)
	if err != nil {
		return nil, err
	}
	return warehouse.Open(cache), nil
}

// cmdWarehouseIngest replays archived fuzz-report JSON (a difftest
// FuzzResult or a single Report, as written by -corpus-dir) into the
// corpus. Re-ingesting a file is a no-op by content addressing.
func cmdWarehouseIngest(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("warehouse ingest", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	cacheDir := fs.String("cache-dir", "", "warehouse directory (shared with probes and fuzz campaigns)")
	cacheMaxMB := fs.Int("cache-max-mb", 0, "size cap in MiB (0 = 512)")
	grammar := fs.String("grammar", "", "grammar profile label to record on the findings")
	fs.Bool("json", false, "emit failures as the shared JSON error envelope")
	if err := fs.Parse(args); err != nil {
		return cliutil.WrapUsage(err)
	}
	if fs.NArg() < 1 {
		return cliutil.Usagef("warehouse ingest needs report JSON files")
	}
	w, err := openWarehouse(*cacheDir, *cacheMaxMB)
	if err != nil {
		return err
	}
	filed, reports := 0, 0
	for _, path := range fs.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		batch, err := decodeReports(data)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		n, err := difftest.IngestReports(w, *grammar, batch)
		filed += n
		reports += len(batch)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	}
	fmt.Fprintf(stdout, "ingested %d reports: %d new records, %d total in corpus\n",
		reports, filed, w.Load().Len())
	return nil
}

// decodeReports accepts either a FuzzResult envelope or a bare Report.
func decodeReports(data []byte) ([]*difftest.Report, error) {
	var res difftest.FuzzResult
	if err := json.Unmarshal(data, &res); err == nil && len(res.Divergences) > 0 {
		return res.Divergences, nil
	}
	var rep difftest.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("neither a fuzz result nor a report: %w", err)
	}
	if rep.Seed == 0 && rep.Source == "" {
		return nil, fmt.Errorf("no divergences found in input")
	}
	return []*difftest.Report{&rep}, nil
}

// cmdWarehouseQuery answers the cross-campaign recurrence question:
// which pass/shape/function/grammar recurs, over which apps. Output is
// deterministic JSON — byte-identical across runs and processes.
func cmdWarehouseQuery(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("warehouse query", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	cacheDir := fs.String("cache-dir", "", "warehouse directory")
	cacheMaxMB := fs.Int("cache-max-mb", 0, "size cap in MiB (0 = 512)")
	by := fs.String("by", "pass", "grouping dimension: pass | shape | func | grammar")
	kind := fs.String("kind", "", "restrict to one record kind: probe | fuzz | triage")
	app := fs.String("app", "", "restrict to one app config")
	grammar := fs.String("grammar", "", "restrict to one grammar profile")
	fs.Bool("json", false, "emit failures as the shared JSON error envelope (output is always JSON)")
	if err := fs.Parse(args); err != nil {
		return cliutil.WrapUsage(err)
	}
	w, err := openWarehouse(*cacheDir, *cacheMaxMB)
	if err != nil {
		return err
	}
	rows := w.Load().Query(warehouse.QueryOptions{
		Kind: *kind, App: *app, Grammar: *grammar, By: *by,
	})
	data, err := warehouse.MarshalRecurrences(rows)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "%s\n", data)
	return nil
}

// cmdWarehouseExport compiles a configuration (or a standalone file)
// and prints its code property graph, annotated with the corpus's
// per-shape verdict history. The export is byte-identical for every
// -compile-j value and across processes.
func cmdWarehouseExport(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("warehouse export", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	cacheDir := fs.String("cache-dir", "", "warehouse directory supplying verdict history (optional)")
	cacheMaxMB := fs.Int("cache-max-mb", 0, "size cap in MiB (0 = 512)")
	file := fs.String("file", "", "standalone minic source file instead of a config id")
	compileJ := fs.Int("compile-j", 0, "per-function compile parallelism (0 = GOMAXPROCS); the graph is identical for every value")
	aliasPairs := fs.Int("alias-pairs", 0, "per-function access cap for ALIAS edges (0 = default, -1 = none)")
	fs.Bool("json", false, "emit failures as the shared JSON error envelope (output is always JSON)")
	if err := fs.Parse(args); err != nil {
		return cliutil.WrapUsage(err)
	}
	cfg := pipeline.Config{CompileWorkers: *compileJ}
	switch {
	case *file != "":
		src, err := os.ReadFile(*file)
		if err != nil {
			return err
		}
		cfg.Name, cfg.Source, cfg.SourceFile = *file, string(src), *file
	case fs.NArg() >= 1:
		app := apps.ByID(fs.Arg(0))
		if app == nil {
			return fmt.Errorf("unknown configuration %q (try `oraql list`)", fs.Arg(0))
		}
		cfg.Name, cfg.Source, cfg.SourceFile, cfg.Frontend = app.ID, app.Source, app.SourceName, app.Frontend
	default:
		return cliutil.Usagef("warehouse export needs a config id or -file")
	}
	cr, err := pipeline.Compile(cfg)
	if err != nil {
		return err
	}
	opts := warehouse.CPGOptions{
		Records:       cr.Records(),
		MaxAliasPairs: *aliasPairs,
	}
	if *cacheDir != "" {
		cache, err := cliutil.OpenCache(*cacheDir, *cacheMaxMB)
		if err != nil {
			return err
		}
		if w := warehouse.Open(cache); w != nil {
			opts.History = w.Load().ShapePriors()
		}
	}
	g := warehouse.ExportCPG(cr.Host.Module, opts)
	data, err := warehouse.MarshalGraph(g)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "%s\n", data)
	nodes, edges := g.CountByKind()
	var nTotal, eTotal int
	for _, n := range nodes {
		nTotal += n
	}
	for _, n := range edges {
		eTotal += n
	}
	fmt.Fprintf(stderr, "cpg: %s: %d nodes, %d edges (%v)\n", cfg.Name, nTotal, eTotal, g.EdgeKinds())
	return nil
}

// cmdWarehouseStats prints the corpus overview.
func cmdWarehouseStats(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("warehouse stats", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	cacheDir := fs.String("cache-dir", "", "warehouse directory")
	cacheMaxMB := fs.Int("cache-max-mb", 0, "size cap in MiB (0 = 512)")
	jsonOut := fs.Bool("json", false, "print stats as JSON")
	if err := fs.Parse(args); err != nil {
		return cliutil.WrapUsage(err)
	}
	w, err := openWarehouse(*cacheDir, *cacheMaxMB)
	if err != nil {
		return err
	}
	st := w.Load().Stats()
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(st)
	}
	fmt.Fprintf(stdout, "records:      %d (%d probe, %d fuzz, %d triage)\n", st.Records, st.Probes, st.Fuzz, st.Triage)
	fmt.Fprintf(stdout, "divergent:    %d\n", st.Divergent)
	fmt.Fprintf(stdout, "apps:         %d\n", st.Apps)
	fmt.Fprintf(stdout, "guilty passes:%d distinct\n", st.Passes)
	fmt.Fprintf(stdout, "query shapes: %d distinct\n", st.Shapes)
	fmt.Fprintf(stdout, "functions:    %d distinct content hashes\n", st.Funcs)
	fmt.Fprintf(stdout, "verdicts:     %d optimistic, %d pessimistic\n", st.Opt, st.Pess)
	return nil
}
