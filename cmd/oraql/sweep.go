package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"time"

	"github.com/oraql/go-oraql/internal/apps"
	"github.com/oraql/go-oraql/internal/cliutil"
	"github.com/oraql/go-oraql/internal/diskcache"
	"github.com/oraql/go-oraql/internal/pipeline"
	"github.com/oraql/go-oraql/internal/report"
	"github.com/oraql/go-oraql/internal/service"
	"github.com/oraql/go-oraql/internal/service/client"
)

// sweepEntry is one configuration's compile outcome.
type sweepEntry struct {
	ID        string  `json:"id"`
	ExeHash   string  `json:"exe_hash"`
	CompileMS float64 `json:"compile_ms"`
	DiskHits  int     `json:"disk_hits"`
	// Cached reports a server-side cache hit (-server mode only).
	Cached bool `json:"cached,omitempty"`
}

// sweepResult is the `oraql sweep` JSON document: one process's
// compile pass over the benchmark matrix, with the persistent-store
// counters when a cache dir was used. The cross-process benchmark
// (scripts/bench_diskcache.sh) diffs two of these — one cold, one warm
// from a separate process — on exe hashes and total time.
type sweepResult struct {
	Configs  []sweepEntry        `json:"configs"`
	TotalMS  float64             `json:"total_ms"`
	CacheDir string              `json:"cache_dir,omitempty"`
	Disk     *diskcache.Counters `json:"disk,omitempty"`
	// Server/Unique describe a -server sweep: the instance the batch
	// went to and how many distinct content keys it deduplicated to.
	Server string `json:"server,omitempty"`
	Unique int    `json:"unique,omitempty"`
}

// cmdSweep compiles every benchmark configuration (or the ones named
// as arguments) in-process and reports per-config exe hashes and
// timings.
func cmdSweep(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	cacheDir := fs.String("cache-dir", "", "persistent compile cache directory (empty = cold every time)")
	cacheMaxMB := fs.Int("cache-max-mb", 0, "size cap for -cache-dir in MiB (0 = 512)")
	workers := fs.Int("compile-workers", 0, "per-function parallelism per compilation (0 = GOMAXPROCS)")
	server := fs.String("server", "", "sweep against this oraql-serve instance in one POST /v1/compile/batch instead of compiling locally")
	jsonOut := fs.Bool("json", false, "print the sweep result as JSON")
	if err := fs.Parse(args); err != nil {
		return cliutil.WrapUsage(err)
	}
	if *server != "" && *cacheDir != "" {
		return cliutil.Usagef("-server and -cache-dir are mutually exclusive: the server owns its own cache")
	}

	configs := apps.All()
	if fs.NArg() > 0 {
		configs = configs[:0:0]
		for _, id := range fs.Args() {
			cfg := apps.ByID(id)
			if cfg == nil {
				return fmt.Errorf("unknown configuration %q (try `oraql list`)", id)
			}
			configs = append(configs, cfg)
		}
	}

	if *server != "" {
		res, err := sweepServer(*server, configs)
		if err != nil {
			return err
		}
		return printSweep(res, *jsonOut, stdout, stderr)
	}

	cache, err := cliutil.OpenCache(*cacheDir, *cacheMaxMB)
	if err != nil {
		return err
	}

	res := sweepResult{CacheDir: *cacheDir}
	start := time.Now()
	for _, app := range configs {
		cfg := pipeline.Config{
			Name: app.ID, Source: app.Source, SourceFile: app.SourceName,
			Frontend: app.Frontend, CompileWorkers: *workers, DiskCache: cache,
		}
		t0 := time.Now()
		cr, err := pipeline.Compile(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", app.ID, err)
		}
		res.Configs = append(res.Configs, sweepEntry{
			ID:        app.ID,
			ExeHash:   cr.ExeHash(),
			CompileMS: float64(time.Since(t0).Microseconds()) / 1000,
			DiskHits:  cr.DiskHits(),
		})
	}
	res.TotalMS = float64(time.Since(start).Microseconds()) / 1000
	if cache != nil {
		c := cache.Counters()
		res.Disk = &c
	}
	return printSweep(&res, *jsonOut, stdout, stderr)
}

// sweepServer resolves the whole matrix in one POST /v1/compile/batch:
// the server deduplicates by content hash and serves repeats from its
// fleet-wide cache, so a warm sweep costs zero compilations.
func sweepServer(server string, configs []*apps.Config) (*sweepResult, error) {
	items := make([]service.CompileRequest, len(configs))
	for i, app := range configs {
		items[i] = service.CompileRequest{Program: service.ProgramSpec{ConfigID: app.ID}}
	}
	cl := client.New(server)
	start := time.Now()
	batch, err := cl.CompileBatch(context.Background(), &service.BatchCompileRequest{Items: items})
	if err != nil {
		return nil, fmt.Errorf("batch sweep against %s: %w", server, err)
	}
	if len(batch.Items) != len(configs) {
		return nil, fmt.Errorf("server answered %d items for %d configs", len(batch.Items), len(configs))
	}
	res := &sweepResult{Server: cl.Base, Unique: batch.Unique}
	for i, item := range batch.Items {
		if item.Response == nil {
			return nil, fmt.Errorf("%s: server: %s (HTTP %d)", configs[i].ID, item.Error, item.Code)
		}
		var cj report.CompileJSON
		if err := json.Unmarshal(item.Response.Result, &cj); err != nil {
			return nil, fmt.Errorf("%s: decode server result: %w", configs[i].ID, err)
		}
		res.Configs = append(res.Configs, sweepEntry{
			ID:        configs[i].ID,
			ExeHash:   cj.ExeHash,
			CompileMS: item.Response.CompileMS,
			Cached:    item.Response.Cached,
		})
	}
	res.TotalMS = float64(time.Since(start).Microseconds()) / 1000
	return res, nil
}

func printSweep(res *sweepResult, jsonOut bool, stdout, stderr io.Writer) error {
	if jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(res)
	}
	fmt.Fprintf(stdout, "%-22s %-18s %10s %10s\n", "ID", "EXE HASH", "MS", "DISK HITS")
	for _, e := range res.Configs {
		hash := e.ExeHash
		if len(hash) > 16 {
			hash = hash[:16]
		}
		hits := fmt.Sprintf("%d", e.DiskHits)
		if e.Cached {
			hits = "cached"
		}
		fmt.Fprintf(stdout, "%-22s %-18s %10.2f %10s\n", e.ID, hash, e.CompileMS, hits)
	}
	fmt.Fprintf(stdout, "total: %.2fms over %d configs\n", res.TotalMS, len(res.Configs))
	if res.Server != "" {
		fmt.Fprintf(stderr, "server %s: %d items deduplicated to %d unique keys\n",
			res.Server, len(res.Configs), res.Unique)
	}
	if res.Disk != nil {
		fmt.Fprintf(stderr, "disk cache: %d hits / %d misses, %d puts, %d evictions\n",
			res.Disk.Hits, res.Disk.Misses, res.Disk.Puts, res.Disk.Evictions)
	}
	return nil
}
