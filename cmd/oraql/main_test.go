package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/oraql/go-oraql/internal/cliutil"
)

// TestFailurePaths pins the shared exit-code contract: 2 for caller
// mistakes (flags, subcommands, missing arguments), 1 for operational
// failures (unknown configurations, I/O).
func TestFailurePaths(t *testing.T) {
	cases := []struct {
		name string
		argv []string
		want int
	}{
		{"no subcommand", nil, cliutil.ExitUsage},
		{"unknown subcommand", []string{"frobnicate"}, cliutil.ExitUsage},
		{"probe without target", []string{"probe"}, cliutil.ExitUsage},
		{"probe bad flag", []string{"probe", "-definitely-not-a-flag"}, cliutil.ExitUsage},
		{"probe bad strategy", []string{"probe", "lulesh-seq", "-strategy", "dowsing"}, cliutil.ExitUsage},
		{"probe unknown config", []string{"probe", "no-such-config"}, cliutil.ExitFailure},
		{"probe missing file", []string{"probe", "-file", "/nonexistent/prog.mc"}, cliutil.ExitFailure},
		{"probe bad model", []string{"probe", "-file", "main.go", "-model", "warp"}, cliutil.ExitUsage},
		{"report without id", []string{"report"}, cliutil.ExitUsage},
		{"report unknown config", []string{"report", "no-such-config"}, cliutil.ExitFailure},
		{"run without id", []string{"run"}, cliutil.ExitUsage},
		{"run unknown config", []string{"run", "no-such-config"}, cliutil.ExitFailure},
		{"run missing script", []string{"run", "/nonexistent/campaign.oraql"}, cliutil.ExitFailure},
		{"run script bad flag", []string{"run", "x.oraql", "-definitely-not-a-flag"}, cliutil.ExitUsage},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := run(tc.argv, io.Discard, io.Discard)
			if err == nil {
				t.Fatal("expected an error")
			}
			if got := cliutil.ExitCode(err); got != tc.want {
				t.Fatalf("exit code = %d, want %d (err: %v)", got, tc.want, err)
			}
		})
	}
}

func TestListSucceeds(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"list"}, &out, io.Discard); err != nil {
		t.Fatalf("list: %v", err)
	}
	if !strings.Contains(out.String(), "BENCHMARK") {
		t.Fatalf("list output missing header: %q", out.String())
	}
}

// TestRunCampaignScript pins the `oraql run <script.oraql>` surface:
// print() goes to stdout, the return value prints as indented JSON,
// and script errors carry their line number.
func TestRunCampaignScript(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "smoke.oraql")
	src := "print(\"hello\", 1 + 2)\nreturn {n: len(strategies())}\n"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errw strings.Builder
	if err := run([]string{"run", path, "-json"}, &out, &errw); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "hello 3") {
		t.Errorf("stdout missing print output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), `"n": 4`) {
		t.Errorf("stdout missing JSON return value:\n%s", out.String())
	}
	if !strings.Contains(errw.String(), "done") {
		t.Errorf("stderr missing completion line:\n%s", errw.String())
	}

	bad := filepath.Join(dir, "bad.oraql")
	if err := os.WriteFile(bad, []byte("let x = \nprobe()\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"run", bad}, io.Discard, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "line") {
		t.Fatalf("want a line-numbered script error, got %v", err)
	}
}

// TestRunCampaignMaxSteps pins the -max-steps budget on the CLI path.
func TestRunCampaignMaxSteps(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spin.oraql")
	if err := os.WriteFile(path, []byte("while true { let x = 1 }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"run", path, "-max-steps", "5000"}, io.Discard, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "instruction budget") {
		t.Fatalf("want an instruction-budget error, got %v", err)
	}
}

func TestProbeBadModelUsesSourceBeforeModelCheck(t *testing.T) {
	// -model validation happens after the file read, so use a file that
	// exists; main_test.go itself is fine — the model check fires first
	// in spec construction.
	err := run([]string{"probe", "-file", "main_test.go", "-model", "warp"}, io.Discard, io.Discard)
	if !cliutil.IsUsage(err) {
		t.Fatalf("want usage error, got %v", err)
	}
}
