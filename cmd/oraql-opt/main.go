// Command oraql-opt is the single-compilation tool (the opt/clang
// analogue): it compiles one minic source file through the -O3
// pipeline with an optional ORAQL response sequence and prints IR,
// statistics, and ORAQL dump output.
//
// Usage:
//
//	oraql-opt prog.mc [-opt-aa-seq "1 0 1"] [-opt-aa-seq @file]
//	         [-opt-aa-target gpu] [-opt-aa-dump-pessimistic ...]
//	         [-stats] [-time-passes] [-print-ir] [-debug-pass] [-run] [-O1]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/oraql/go-oraql/internal/irinterp"
	"github.com/oraql/go-oraql/internal/irtext"
	"github.com/oraql/go-oraql/internal/minic"
	"github.com/oraql/go-oraql/internal/oraql"
	"github.com/oraql/go-oraql/internal/pipeline"
)

func main() {
	fs := flag.NewFlagSet("oraql-opt", flag.ExitOnError)
	seqStr := fs.String("opt-aa-seq", "", `ORAQL response sequence ("1 0 ...", or @file); empty enables the pass fully optimistic`)
	useORAQL := fs.Bool("opt-aa", false, "enable the ORAQL pass (implied by -opt-aa-seq/-opt-aa-dump-*)")
	target := fs.String("opt-aa-target", "", "restrict ORAQL to modules whose target contains this substring")
	dumpFirst := fs.Bool("opt-aa-dump-first", false, "dump first (non-cached) queries")
	dumpCached := fs.Bool("opt-aa-dump-cached", false, "dump cached queries")
	dumpOpt := fs.Bool("opt-aa-dump-optimistic", false, "dump optimistically answered queries")
	dumpPess := fs.Bool("opt-aa-dump-pessimistic", false, "dump pessimistically answered queries")
	model := fs.String("model", "seq", "parallel model (seq|openmp|tasks|mpi|offload)")
	fortran := fs.Bool("fortran", false, "Fortran dialect")
	views := fs.Bool("views", false, "boxed heap arrays (Kokkos/Thrust views)")
	o1 := fs.Bool("O1", false, "use the reduced O1 pipeline")
	o0 := fs.Bool("O0", false, "frontend output only (no optimization)")
	full := fs.Bool("full-aa", false, "enable the CFL points-to analyses in the chain")
	stats := fs.Bool("stats", false, "print pass statistics (-mllvm -stats analogue)")
	timePasses := fs.Bool("time-passes", false, "print per-pass wall time, run counts, and analysis cache counters")
	noAnalysisCache := fs.Bool("disable-analysis-cache", false, "recompute every analysis on every pass run (force-invalidate mode)")
	printIR := fs.Bool("print-ir", false, "print optimized IR")
	debugPass := fs.Bool("debug-pass", false, "print pass executions (-debug-pass=Executions analogue)")
	run := fs.Bool("run", false, "run the compiled program on the simulated machine")
	ranks := fs.Int("ranks", 1, "simulated MPI ranks for -run")

	if len(os.Args) < 2 {
		fs.Usage()
		os.Exit(2)
	}
	file := os.Args[1]
	if err := fs.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}

	src, err := os.ReadFile(file)
	check(err)

	models := map[string]minic.Model{"seq": minic.ModelSeq, "openmp": minic.ModelOpenMP,
		"tasks": minic.ModelTasks, "mpi": minic.ModelMPI, "offload": minic.ModelOffload}
	m, ok := models[*model]
	if !ok {
		check(fmt.Errorf("unknown model %q", *model))
	}
	d := minic.DialectC
	if *fortran {
		d = minic.DialectFortran
	}

	cfg := pipeline.Config{
		Name: file, Source: string(src), SourceFile: file,
		Frontend:             minic.Options{Dialect: d, Model: m, Views: *views},
		FullAAChain:          *full,
		DebugPassExec:        *debugPass,
		DisableAnalysisCache: *noAnalysisCache,
	}
	if strings.HasSuffix(file, ".ir") {
		// Textual-IR input: bypass the frontend.
		mod, err := irtext.Parse(string(src))
		check(err)
		cfg.Module = mod
	}
	if *o1 {
		cfg.OptLevel = 1
	}
	if *o0 {
		cfg.OptLevel = -1
	}
	dump := oraql.DumpFlags{First: *dumpFirst, Cached: *dumpCached, Optimistic: *dumpOpt, Pessimistic: *dumpPess}
	if *useORAQL || *seqStr != "" || dump.Any() {
		seq, err := oraql.ParseSeq(*seqStr)
		check(err)
		cfg.ORAQL = &oraql.Options{Seq: seq, Target: *target, Dump: dump, Out: os.Stderr}
	}

	cr, err := pipeline.Compile(cfg)
	check(err)

	if *printIR {
		fmt.Print(cr.Host.Module.String())
		if cr.Device != nil {
			fmt.Print(cr.Device.Module.String())
		}
	}
	if *stats {
		fmt.Println("=== host statistics ===")
		cr.Host.Pass.Print(os.Stdout)
		if cr.Device != nil {
			fmt.Println("=== device statistics ===")
			cr.Device.Pass.Print(os.Stdout)
		}
		s := cr.ORAQLStats()
		if cfg.ORAQL != nil {
			fmt.Printf("%8d oraql - Number of unique optimistic responses\n", s.UniqueOptimistic)
			fmt.Printf("%8d oraql - Number of cached optimistic responses\n", s.CachedOptimistic)
			fmt.Printf("%8d oraql - Number of unique pessimistic responses\n", s.UniquePessimistic)
			fmt.Printf("%8d oraql - Number of cached pessimistic responses\n", s.CachedPessimistic)
		}
		aas := cr.AAStats()
		fmt.Printf("%8d aa - Number of memoized query cache hits\n", aas.CacheHits)
		fmt.Printf("%8d aa - Number of memoized query cache misses\n", aas.CacheMisses)
		fmt.Printf("%8d aa - Number of query cache invalidations\n", aas.CacheFlushes)
		fmt.Printf("%8d aa - Number of scoped (per-function) cache flushes\n", aas.CacheScopedFlushes)
	}
	if *timePasses {
		cr.Timing().Print(os.Stdout, cr.AnalysisStats())
	}
	fmt.Fprintf(os.Stderr, "exe hash: %s\n", cr.ExeHash())
	if *run {
		rr, err := irinterp.Run(cr.Program, irinterp.Options{NumRanks: *ranks})
		check(err)
		fmt.Print(rr.Stdout)
		fmt.Fprintf(os.Stderr, "[%d instructions, %d cycles]\n", rr.Instrs, rr.Cycles)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "oraql-opt:", err)
		os.Exit(1)
	}
}
