// Command oraql-opt is the single-compilation tool (the opt/clang
// analogue): it compiles one minic source file through the -O3
// pipeline with an optional ORAQL response sequence and prints IR,
// statistics, and ORAQL dump output.
//
// Usage:
//
//	oraql-opt prog.mc [-opt-aa-seq "1 0 1"] [-opt-aa-seq @file]
//	         [-opt-aa-target gpu] [-opt-aa-dump-pessimistic ...]
//	         [-stats] [-time-passes] [-print-ir] [-debug-pass] [-run] [-O1]
//	         [-cache-dir DIR] [-cache-max-mb N]
//
// Exit codes: 0 success, 1 operational failure, 2 usage error. With
// -json, failures are printed as the shared JSON error envelope.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/oraql/go-oraql/internal/cliutil"
	"github.com/oraql/go-oraql/internal/irinterp"
	"github.com/oraql/go-oraql/internal/irtext"
	"github.com/oraql/go-oraql/internal/minic"
	"github.com/oraql/go-oraql/internal/oraql"
	"github.com/oraql/go-oraql/internal/pipeline"

	// Registered for -list: app configs + strategies and grammar
	// profiles; single compilations only consume the AA registries.
	_ "github.com/oraql/go-oraql/internal/apps"
	_ "github.com/oraql/go-oraql/internal/progen"
)

func main() {
	argv := os.Args[1:]
	err := run(argv, os.Stdout, os.Stderr)
	os.Exit(cliutil.Report(os.Stderr, "oraql-opt", cliutil.WantsJSON(argv), err))
}

func run(argv []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("oraql-opt", flag.ContinueOnError)
	fs.SetOutput(stderr)
	seqStr := fs.String("opt-aa-seq", "", `ORAQL response sequence ("1 0 ...", or @file); empty enables the pass fully optimistic`)
	useORAQL := fs.Bool("opt-aa", false, "enable the ORAQL pass (implied by -opt-aa-seq/-opt-aa-dump-*)")
	target := fs.String("opt-aa-target", "", "restrict ORAQL to modules whose target contains this substring")
	dumpFirst := fs.Bool("opt-aa-dump-first", false, "dump first (non-cached) queries")
	dumpCached := fs.Bool("opt-aa-dump-cached", false, "dump cached queries")
	dumpOpt := fs.Bool("opt-aa-dump-optimistic", false, "dump optimistically answered queries")
	dumpPess := fs.Bool("opt-aa-dump-pessimistic", false, "dump pessimistically answered queries")
	model := fs.String("model", "seq", "parallel model (seq|openmp|tasks|mpi|offload)")
	fortran := fs.Bool("fortran", false, "Fortran dialect")
	views := fs.Bool("views", false, "boxed heap arrays (Kokkos/Thrust views)")
	o1 := fs.Bool("O1", false, "use the reduced O1 pipeline")
	o0 := fs.Bool("O0", false, "frontend output only (no optimization)")
	full := fs.Bool("full-aa", false, "enable the CFL points-to analyses in the chain (same as -aa-chain full)")
	aaChain := fs.String("aa-chain", "", `alias-analysis chain: a registered name ("default", "full") or a comma-separated analysis list (see -list)`)
	stats := fs.Bool("stats", false, "print pass statistics (-mllvm -stats analogue)")
	timePasses := fs.Bool("time-passes", false, "print per-pass wall time, run counts, and analysis cache counters")
	noAnalysisCache := fs.Bool("disable-analysis-cache", false, "recompute every analysis on every pass run (force-invalidate mode)")
	compileWorkers := fs.Int("compile-workers", 0, "per-function pass parallelism (0 = GOMAXPROCS, 1 = sequential; output is identical for every value)")
	cacheDir := fs.String("cache-dir", "", "persistent compile cache directory shared across processes (empty = no persistence; output is byte-identical warm or cold)")
	cacheMaxMB := fs.Int("cache-max-mb", 0, "size cap for -cache-dir in MiB before GC evicts cold entries (0 = 512)")
	printIR := fs.Bool("print-ir", false, "print optimized IR")
	debugPass := fs.Bool("debug-pass", false, "print pass executions (-debug-pass=Executions analogue)")
	runProg := fs.Bool("run", false, "run the compiled program on the simulated machine")
	ranks := fs.Int("ranks", 1, "simulated MPI ranks for -run")
	fs.Bool("json", false, "emit failures as the shared JSON error envelope")

	if len(argv) >= 1 && argv[0] == "-list" {
		cliutil.PrintRegistries(stdout)
		return nil
	}
	if len(argv) < 1 {
		fs.Usage()
		return cliutil.Usagef("missing input file (or -list)")
	}
	file := argv[0]
	if err := fs.Parse(argv[1:]); err != nil {
		return cliutil.WrapUsage(err)
	}

	src, err := os.ReadFile(file)
	if err != nil {
		return err
	}

	models := map[string]minic.Model{"seq": minic.ModelSeq, "openmp": minic.ModelOpenMP,
		"tasks": minic.ModelTasks, "mpi": minic.ModelMPI, "offload": minic.ModelOffload}
	m, ok := models[*model]
	if !ok {
		return cliutil.Usagef("unknown model %q", *model)
	}
	d := minic.DialectC
	if *fortran {
		d = minic.DialectFortran
	}

	cfg := pipeline.Config{
		Name: file, Source: string(src), SourceFile: file,
		Frontend:             minic.Options{Dialect: d, Model: m, Views: *views},
		FullAAChain:          *full,
		AAChain:              *aaChain,
		DebugPassExec:        *debugPass,
		DisableAnalysisCache: *noAnalysisCache,
		CompileWorkers:       *compileWorkers,
	}
	if strings.HasSuffix(file, ".ir") {
		// Textual-IR input: bypass the frontend.
		mod, err := irtext.Parse(string(src))
		if err != nil {
			return err
		}
		cfg.Module = mod
	}
	if *o1 {
		cfg.OptLevel = 1
	}
	if *o0 {
		cfg.OptLevel = -1
	}
	cache, err := cliutil.OpenCache(*cacheDir, *cacheMaxMB)
	if err != nil {
		return err
	}
	cfg.DiskCache = cache
	dump := oraql.DumpFlags{First: *dumpFirst, Cached: *dumpCached, Optimistic: *dumpOpt, Pessimistic: *dumpPess}
	if *useORAQL || *seqStr != "" || dump.Any() {
		seq, err := oraql.ParseSeq(*seqStr)
		if err != nil {
			return cliutil.WrapUsage(err)
		}
		cfg.ORAQL = &oraql.Options{Seq: seq, Target: *target, Dump: dump, Out: stderr}
	}

	cr, err := pipeline.Compile(cfg)
	if err != nil {
		return err
	}

	if *printIR {
		fmt.Fprint(stdout, cr.Host.Module.String())
		if cr.Device != nil {
			fmt.Fprint(stdout, cr.Device.Module.String())
		}
	}
	if *stats {
		fmt.Fprintln(stdout, "=== host statistics ===")
		cr.Host.Pass.Print(stdout)
		if cr.Device != nil {
			fmt.Fprintln(stdout, "=== device statistics ===")
			cr.Device.Pass.Print(stdout)
		}
		s := cr.ORAQLStats()
		if cfg.ORAQL != nil {
			fmt.Fprintf(stdout, "%8d oraql - Number of unique optimistic responses\n", s.UniqueOptimistic)
			fmt.Fprintf(stdout, "%8d oraql - Number of cached optimistic responses\n", s.CachedOptimistic)
			fmt.Fprintf(stdout, "%8d oraql - Number of unique pessimistic responses\n", s.UniquePessimistic)
			fmt.Fprintf(stdout, "%8d oraql - Number of cached pessimistic responses\n", s.CachedPessimistic)
		}
		aas := cr.AAStats()
		fmt.Fprintf(stdout, "%8d aa - Number of memoized query cache hits\n", aas.CacheHits)
		fmt.Fprintf(stdout, "%8d aa - Number of memoized query cache misses\n", aas.CacheMisses)
		fmt.Fprintf(stdout, "%8d aa - Number of query cache invalidations\n", aas.CacheFlushes)
		fmt.Fprintf(stdout, "%8d aa - Number of scoped (per-function) cache flushes\n", aas.CacheScopedFlushes)
	}
	if *timePasses {
		cr.Timing().Print(stdout, cr.AnalysisStats())
	}
	fmt.Fprintf(stderr, "exe hash: %s\n", cr.ExeHash())
	if cache != nil {
		c := cache.Counters()
		fmt.Fprintf(stderr, "disk cache: %d function hits, %d store hits / %d misses, %d puts\n",
			cr.DiskHits(), c.Hits, c.Misses, c.Puts)
	}
	if *runProg {
		rr, err := irinterp.Run(cr.Program, irinterp.Options{NumRanks: *ranks})
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, rr.Stdout)
		fmt.Fprintf(stderr, "[%d instructions, %d cycles]\n", rr.Instrs, rr.Cycles)
	}
	return nil
}
