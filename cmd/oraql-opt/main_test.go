package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/oraql/go-oraql/internal/cliutil"
)

func TestFailurePaths(t *testing.T) {
	cases := []struct {
		name string
		argv []string
		want int
	}{
		{"no input file", nil, cliutil.ExitUsage},
		{"bad flag", []string{"prog.mc", "-definitely-not-a-flag"}, cliutil.ExitUsage},
		{"missing file", []string{"/nonexistent/prog.mc"}, cliutil.ExitFailure},
		{"unknown model", []string{"main_test.go", "-model", "warp"}, cliutil.ExitUsage},
		{"bad seq", []string{"main_test.go", "-opt-aa-seq", "maybe"}, cliutil.ExitUsage},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := run(tc.argv, io.Discard, io.Discard)
			if err == nil {
				t.Fatal("expected an error")
			}
			if got := cliutil.ExitCode(err); got != tc.want {
				t.Fatalf("exit code = %d, want %d (err: %v)", got, tc.want, err)
			}
		})
	}
}

func TestCompileAndRun(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "prog.mc")
	src := `int main() {
	int x = 40;
	int y = 2;
	print(x + y, "\n");
	return 0;
}
`
	if err := os.WriteFile(file, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errW strings.Builder
	if err := run([]string{file, "-run"}, &out, &errW); err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, errW.String())
	}
	if !strings.Contains(out.String(), "42") {
		t.Fatalf("program output = %q, want 42", out.String())
	}
	if !strings.Contains(errW.String(), "exe hash:") {
		t.Fatalf("stderr missing exe hash: %q", errW.String())
	}
}
