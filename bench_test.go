package goraql

// The benchmark harness regenerates every table and figure of the
// paper's evaluation (see DESIGN.md's experiment index):
//
//	go test -bench=Fig4 -benchmem          # Fig. 4 rows
//	go test -bench=. -benchmem             # everything
//
// Each benchmark runs the full ORAQL workflow (baseline compile+run,
// fully optimistic attempt, bisection) and reports the headline
// numbers as custom metrics, so the paper's shape is visible straight
// from the bench output: pessimistic-query counts, the no-alias
// growth, and the dynamic-instruction deltas.

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"testing"

	"github.com/oraql/go-oraql/internal/apps"
	"github.com/oraql/go-oraql/internal/diskcache"
	"github.com/oraql/go-oraql/internal/driver"
	"github.com/oraql/go-oraql/internal/oraql"
	"github.com/oraql/go-oraql/internal/report"
)

// probeOnce runs the ORAQL workflow for a configuration.
func probeOnce(b *testing.B, id string) *report.Experiment {
	b.Helper()
	cfg := apps.ByID(id)
	if cfg == nil {
		b.Fatalf("unknown config %q", id)
	}
	e, err := report.Run(cfg, io.Discard)
	if err != nil {
		b.Fatalf("probe %s: %v", id, err)
	}
	return e
}

func reportFig4Metrics(b *testing.B, e *report.Experiment) {
	s := e.Probe.Final.Compile.ORAQLStats()
	orig := e.Probe.Baseline.Compile.NoAliasTotal()
	fin := e.Probe.Final.Compile.NoAliasTotal()
	b.ReportMetric(float64(s.UniqueOptimistic), "opt-unique")
	b.ReportMetric(float64(s.CachedOptimistic), "opt-cached")
	b.ReportMetric(float64(s.UniquePessimistic), "pess-unique")
	b.ReportMetric(float64(s.CachedPessimistic), "pess-cached")
	if orig > 0 {
		b.ReportMetric(100*float64(fin-orig)/float64(orig), "noalias-growth-%")
	}
	b.ReportMetric(100*e.Probe.Final.Compile.AAStats().CacheHitRate(), "aa-cache-hit-%")
}

// BenchmarkFig4_QueryStats regenerates the Fig. 4 table: one sub-bench
// per configuration, reporting the query statistics as metrics.
func BenchmarkFig4_QueryStats(b *testing.B) {
	for _, cfg := range apps.All() {
		cfg := cfg
		b.Run(cfg.ID, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e := probeOnce(b, cfg.ID)
				reportFig4Metrics(b, e)
			}
		})
	}
}

// BenchmarkFig3_PessimisticDump regenerates the Fig. 3 report for the
// TestSNAP OpenMP configuration (query dump with pass attribution and
// source locations).
func BenchmarkFig3_PessimisticDump(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := probeOnce(b, "testsnap-openmp")
		dump := report.Fig3(e)
		if len(dump) == 0 {
			b.Fatal("empty dump")
		}
		b.ReportMetric(float64(e.Probe.Final.Compile.ORAQLStats().UniquePessimistic), "pess-unique")
	}
}

// BenchmarkFig6_PassStats regenerates the Fig. 6 deltas for the
// configurations the paper quotes, reporting the headline counters.
func BenchmarkFig6_PassStats(b *testing.B) {
	rows := []struct {
		id, pass, stat, metric string
	}{
		{"quicksilver-openmp", "Loop Deletion", "# deleted loops", "deleted-loops"},
		{"quicksilver-openmp", "Dead Store Elimination", "# stores deleted", "stores-deleted"},
		{"minife-openmp", "Loop Vectorizer", "# vector instructions generated", "vector-instrs"},
		{"minigmg-ompif", "Loop Vectorizer", "# vectorized loops", "vectorized-loops"},
		{"minigmg-omptask", "Loop Vectorizer", "# vectorized loops", "vectorized-loops"},
		{"minigmg-sse", "Loop Vectorizer", "# vectorized loops", "vectorized-loops"},
		{"testsnap-fortran", "Loop Invariant Code Motion", "# loads hoisted or sunk", "loads-hoisted"},
	}
	for _, row := range rows {
		row := row
		b.Run(row.id+"/"+row.metric, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e := probeOnce(b, row.id)
				base := e.Probe.Baseline.Compile.Host.Pass.Get(row.pass, row.stat)
				fin := e.Probe.Final.Compile.Host.Pass.Get(row.pass, row.stat)
				if e.Probe.Baseline.Compile.Device != nil {
					base += e.Probe.Baseline.Compile.Device.Pass.Get(row.pass, row.stat)
					fin += e.Probe.Final.Compile.Device.Pass.Get(row.pass, row.stat)
				}
				b.ReportMetric(float64(base), row.metric+"-orig")
				b.ReportMetric(float64(fin), row.metric+"-oraql")
			}
		})
	}
}

// BenchmarkFig7_KernelStats regenerates the per-kernel register and
// stack-frame deltas of the TestSNAP Kokkos-CUDA device compilation.
func BenchmarkFig7_KernelStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := probeOnce(b, "testsnap-kokkos-cuda")
		base := e.Probe.Baseline.Compile.Device
		fin := e.Probe.Final.Compile.Device
		if base == nil || fin == nil {
			b.Fatal("no device compilation")
		}
		changed := 0
		kernels := 0
		for _, bf := range base.Code.Funcs {
			if !bf.IsKernel {
				continue
			}
			kernels++
			for _, ff := range fin.Code.Funcs {
				if ff.Name == bf.Name && (ff.RegsUsed != bf.RegsUsed || ff.StackBytes != bf.StackBytes) {
					changed++
				}
			}
		}
		b.ReportMetric(float64(kernels), "kernels")
		b.ReportMetric(float64(changed), "kernels-changed")
	}
}

// runtimeBench reports original-vs-ORAQL dynamic instruction deltas
// (the perf numbers quoted in Section V's text).
func runtimeBench(b *testing.B, id string) {
	for i := 0; i < b.N; i++ {
		e := probeOnce(b, id)
		orig := e.Probe.Baseline.Run.Instrs
		fin := e.Probe.Final.Run.Instrs
		b.ReportMetric(float64(orig), "instrs-orig")
		b.ReportMetric(float64(fin), "instrs-oraql")
		if orig > 0 {
			b.ReportMetric(100*float64(fin-orig)/float64(orig), "instr-delta-%")
		}
	}
}

// BenchmarkRuntime_TestSNAPSeq: Section V-A(a), instructions -1.2%.
func BenchmarkRuntime_TestSNAPSeq(b *testing.B) { runtimeBench(b, "testsnap-seq") }

// BenchmarkRuntime_TestSNAPOpenMP: Section V-A(b), instructions -8%.
func BenchmarkRuntime_TestSNAPOpenMP(b *testing.B) { runtimeBench(b, "testsnap-openmp") }

// BenchmarkRuntime_TestSNAPFortran: Section V-A(d), 5% end-to-end.
func BenchmarkRuntime_TestSNAPFortran(b *testing.B) { runtimeBench(b, "testsnap-fortran") }

// BenchmarkRuntime_LULESH: Section V-E, times barely affected → we
// report the instruction deltas for all three variants.
func BenchmarkRuntime_LULESH(b *testing.B) {
	for _, id := range []string{"lulesh-seq", "lulesh-openmp", "lulesh-mpi"} {
		id := id
		b.Run(id, func(b *testing.B) { runtimeBench(b, id) })
	}
}

// BenchmarkRuntime_MiniGMG: Section V-G, ompif ~8% speedup, sse flat.
func BenchmarkRuntime_MiniGMG(b *testing.B) {
	for _, id := range []string{"minigmg-ompif", "minigmg-omptask", "minigmg-sse"} {
		id := id
		b.Run(id, func(b *testing.B) { runtimeBench(b, id) })
	}
}

// BenchmarkRuntime_GridMiniKernel: Section V-C, device kernel time
// under the occupancy model.
func BenchmarkRuntime_GridMiniKernel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := probeOnce(b, "gridmini-offload")
		bi := e.Probe.Baseline.Run.DeviceInstrs
		fi := e.Probe.Final.Run.DeviceInstrs
		b.ReportMetric(float64(bi), "dev-instrs-orig")
		b.ReportMetric(float64(fi), "dev-instrs-oraql")
	}
}

// BenchmarkProbing_Strategies is the Section IV-B ablation: chunked vs
// frequency-space bisection, with and without the executable cache.
func BenchmarkProbing_Strategies(b *testing.B) {
	cfg := apps.ByID("lulesh-seq")
	variants := []struct {
		name     string
		strategy driver.Strategy
		noCache  bool
	}{
		{"chunked", driver.Chunked, false},
		{"chunked-nocache", driver.Chunked, true},
		{"freqspace", driver.FreqSpace, false},
		{"freqspace-nocache", driver.FreqSpace, true},
	}
	for _, v := range variants {
		v := v
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				spec := cfg.Spec()
				spec.Strategy = v.strategy
				spec.DisableExeCache = v.noCache
				res, err := driver.Probe(spec)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Compiles), "compiles")
				b.ReportMetric(float64(res.TestsRun), "tests-run")
				b.ReportMetric(float64(res.TestsCached), "tests-cached")
			}
		})
	}
}

// probeWorkers runs the full probing workflow over a suite of
// configurations with a fixed worker-pool size, reporting aggregate
// effort metrics. BenchmarkProbe_Sequential vs BenchmarkProbe_Parallel
// is the wall-clock comparison of the speculative parallel driver;
// scripts/bench_probe.sh records both into BENCH_probe.json.
func probeWorkers(b *testing.B, workers int) {
	ids := []string{"lulesh-seq", "testsnap-openmp", "minigmg-sse", "quicksilver-openmp"}
	for i := 0; i < b.N; i++ {
		var compiles, spec, wasted, hits, misses int64
		for _, id := range ids {
			cfg := apps.ByID(id)
			s := cfg.Spec()
			s.Workers = workers
			res, err := driver.Probe(s)
			if err != nil {
				b.Fatal(err)
			}
			compiles += int64(res.Compiles)
			spec += int64(res.TestsSpeculated)
			wasted += int64(res.TestsWasted)
			aas := res.Final.Compile.AAStats()
			hits += aas.CacheHits
			misses += aas.CacheMisses
		}
		b.ReportMetric(float64(compiles), "compiles")
		b.ReportMetric(float64(spec), "tests-speculated")
		b.ReportMetric(float64(wasted), "tests-wasted")
		if hits+misses > 0 {
			b.ReportMetric(100*float64(hits)/float64(hits+misses), "aa-cache-hit-%")
		}
	}
}

// BenchmarkProbe_Sequential probes with a single worker — the paper's
// strictly sequential driver.
func BenchmarkProbe_Sequential(b *testing.B) { probeWorkers(b, 1) }

// BenchmarkProbe_Parallel probes with a worker pool (at least 4; more
// when the machine has the cores), speculating on likely candidates.
// The discovered sequences are bit-identical to the sequential run.
func BenchmarkProbe_Parallel(b *testing.B) {
	workers := runtime.NumCPU()
	if workers < 4 {
		workers = 4
	}
	probeWorkers(b, workers)
}

// benchConvictions fingerprints a probe's conviction set, sorted, one
// "pass|func|a|b" descriptor per line.
func benchConvictions(res *driver.Result) string {
	var out []string
	for _, rec := range res.GuiltyQueries() {
		a, b := rec.LocDescriptions()
		out = append(out, fmt.Sprintf("%s|%s|%s|%s", rec.Pass, rec.Func, a, b))
	}
	sort.Strings(out)
	return strings.Join(out, "\n")
}

// BenchmarkProbe_StrategyMatrix is the probing-strategy shoot-out over
// every app configuration: chunked, freq, and bayes, each cold and
// seeded. "Seeded" means a prior chunked campaign populated a fresh
// disk cache (verdict history + failure priors), the situation a
// re-probe of an unchanged or lightly edited program sees; the seeding
// run is excluded from the timing. scripts/bench_probe.sh lifts the
// matrix into BENCH_probe.json and checks the headline claim: seeded
// bayes beats cold chunked and cold freq on compiles and wall clock on
// every configuration.
//
// Conviction identity is enforced inline for the seeded runs of the
// prefix-context strategies (chunked, bayes): their conviction sets
// must match the seeding chunked campaign exactly. freq is exempt — it
// convicts a documented superset (see TestStrategyConformance).
func BenchmarkProbe_StrategyMatrix(b *testing.B) {
	for _, strat := range []driver.Strategy{driver.Chunked, driver.FreqSpace, driver.Bayes} {
		for _, mode := range []string{"cold", "seeded"} {
			for _, cfg := range apps.All() {
				strat, mode, cfg := strat, mode, cfg
				b.Run(fmt.Sprintf("%s/%s/%s", strat.Name(), mode, cfg.ID), func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						var cache *diskcache.Store
						var want string
						seeded := mode == "seeded"
						if seeded {
							b.StopTimer()
							c, err := diskcache.Open(b.TempDir())
							if err != nil {
								b.Fatal(err)
							}
							seed := cfg.Spec()
							seed.Strategy = driver.Chunked
							seed.Workers = 1
							seed.Cache = c
							sres, err := driver.Probe(seed)
							if err != nil {
								b.Fatal(err)
							}
							want = benchConvictions(sres)
							cache = c
							b.StartTimer()
						}
						spec := cfg.Spec()
						spec.Strategy = strat
						spec.Workers = 1
						spec.Cache = cache
						res, err := driver.Probe(spec)
						if err != nil {
							b.Fatal(err)
						}
						b.ReportMetric(float64(res.Compiles), "compiles")
						b.ReportMetric(float64(len(res.GuiltyQueries())), "convictions")
						if seeded && strat.Name() != "freq" {
							if got := benchConvictions(res); got != want {
								b.Fatalf("conviction set differs from chunked:\n got: %q\nwant: %q", got, want)
							}
						}
					}
				})
			}
		}
	}
}

// BenchmarkAblation_ChainPosition measures how many queries reach
// ORAQL when the costly CFL analyses are enabled ahead of it (the
// "new trade-off" discussion of Section I's use case 2).
func BenchmarkAblation_ChainPosition(b *testing.B) {
	for _, full := range []bool{false, true} {
		name := "default-chain"
		if full {
			name = "with-cfl-analyses"
		}
		full := full
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := apps.ByID("quicksilver-openmp")
				spec := cfg.Spec()
				spec.Compile.FullAAChain = full
				res, err := driver.Probe(spec)
				if err != nil {
					b.Fatal(err)
				}
				s := res.Final.Compile.ORAQLStats()
				b.ReportMetric(float64(s.Unique()), "residual-queries")
			}
		})
	}
}

// BenchmarkCompileOnly measures raw compilation throughput of the -O3
// pipeline over the whole suite (no probing).
func BenchmarkCompileOnly(b *testing.B) {
	cfgs := apps.All()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range cfgs {
			cc := c.Spec().Compile
			cc.Name = c.ID
			if _, err := CompileSource(cc); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(len(cfgs)), "configs")
}

// BenchmarkCompile_AnalysisCache measures the compile-time effect of
// the analysis manager's lazy cache: every configuration is compiled
// once with cached analyses and once force-invalidated (each pass
// recomputes CFG info and MemorySSA from scratch), reporting the cache
// hit rate as a metric. scripts/bench_compile.sh records both modes
// into BENCH_compile.json.
func BenchmarkCompile_AnalysisCache(b *testing.B) {
	modes := []struct {
		name    string
		disable bool
	}{{"cached", false}, {"forced", true}}
	for _, c := range apps.All() {
		c := c
		for _, mode := range modes {
			mode := mode
			b.Run(c.ID+"/"+mode.name, func(b *testing.B) {
				var hits, misses int64
				for i := 0; i < b.N; i++ {
					cc := c.Spec().Compile
					cc.Name = c.ID
					cc.DisableAnalysisCache = mode.disable
					cr, err := CompileSource(cc)
					if err != nil {
						b.Fatal(err)
					}
					hits, misses = 0, 0
					for _, as := range cr.AnalysisStats() {
						hits += as.Hits
						misses += as.Misses
					}
				}
				b.ReportMetric(float64(hits), "analysis-hits")
				b.ReportMetric(float64(misses), "analysis-misses")
				if hits+misses > 0 {
					b.ReportMetric(100*float64(hits)/float64(hits+misses), "analysis-hit-%")
				}
			})
		}
	}
}

// BenchmarkCompile_Workers measures the per-function parallel pass
// scheduler: every configuration compiled at 1, 2, 4, and 8 workers,
// cold (force-invalidated analyses) and warm (cached). The output is
// byte-identical at every width (see TestCompileDeterministicAcrossWorkers);
// this benchmark records what the width buys in wall time, which
// scripts/bench_compile.sh lifts into BENCH_compile.json. Speedup is
// bounded by GOMAXPROCS — on a single-core host all widths tie.
func BenchmarkCompile_Workers(b *testing.B) {
	modes := []struct {
		name    string
		disable bool
	}{{"warm", false}, {"cold", true}}
	for _, c := range apps.All() {
		c := c
		for _, workers := range []int{1, 2, 4, 8} {
			workers := workers
			for _, mode := range modes {
				mode := mode
				b.Run(fmt.Sprintf("%s/w%d/%s", c.ID, workers, mode.name), func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						cc := c.Spec().Compile
						cc.Name = c.ID
						cc.CompileWorkers = workers
						cc.DisableAnalysisCache = mode.disable
						if _, err := CompileSource(cc); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}
}

// BenchmarkAblation_BlockingChain is the Section VIII dual experiment:
// block the entire conservative analysis chain (ModeBlocking, empty
// sequence) and measure what the existing analyses were buying.
func BenchmarkAblation_BlockingChain(b *testing.B) {
	cfg := apps.ByID("testsnap-seq")
	for i := 0; i < b.N; i++ {
		cc := cfg.Spec().Compile
		cc.Name = "blocked"
		base, err := CompileSource(cc)
		if err != nil {
			b.Fatal(err)
		}
		baseRun, err := RunProgram(base.Program, cfg.Run)
		if err != nil {
			b.Fatal(err)
		}
		cc.ORAQL = &ORAQLOptions{Mode: oraql.ModeBlocking}
		blocked, err := CompileSource(cc)
		if err != nil {
			b.Fatal(err)
		}
		blockedRun, err := RunProgram(blocked.Program, cfg.Run)
		if err != nil {
			b.Fatal(err)
		}
		// Compare outputs with the configuration's volatile-field masks
		// (the simulated clock differs across binaries by design).
		spec := cfg.Spec()
		spec.Verify.References = []string{baseRun.Stdout}
		if err := spec.Verify.Compile(); err != nil {
			b.Fatal(err)
		}
		if v := spec.Verify.Check(blockedRun.Stdout, nil); !v.OK {
			b.Fatalf("blocking changed semantics: %s", v.Diff)
		}
		b.ReportMetric(float64(baseRun.Instrs), "instrs-default-aa")
		b.ReportMetric(float64(blockedRun.Instrs), "instrs-no-aa")
		b.ReportMetric(100*float64(blockedRun.Instrs-baseRun.Instrs)/float64(baseRun.Instrs), "aa-value-%")
	}
}
