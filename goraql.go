// Package goraql is the public API of go-oraql, a reproduction of
// "ORAQL — Optimistic Responses to Alias Queries in LLVM" (Hückelheim
// & Doerfert, ICPP 2023) as a self-contained Go library.
//
// The package bundles a small optimizing compiler (the minic frontend,
// an SSA IR, an alias-analysis manager with seven conservative
// analyses, an -O3-style pass pipeline, and a virtual-ISA backend), a
// deterministic simulated machine to run compiled programs on, and the
// ORAQL tooling itself: the optimistic alias-response pass, the
// bisection-probing driver, and the verification harness.
//
// Quick start:
//
//	spec := &goraql.ProbeSpec{
//	    Name:    "demo",
//	    Compile: goraql.CompileConfig{Source: src},
//	}
//	res, err := goraql.Probe(spec)
//	// res.FullyOptimistic, res.FinalSeq, res.Final.Compile.ORAQLStats() ...
//
// The sixteen benchmark configurations of the paper's Fig. 4 are
// available through Benchmarks and BenchmarkByID.
package goraql

import (
	"context"
	"io"

	"github.com/oraql/go-oraql/internal/aa"
	"github.com/oraql/go-oraql/internal/analysis"
	"github.com/oraql/go-oraql/internal/apps"
	"github.com/oraql/go-oraql/internal/driver"
	"github.com/oraql/go-oraql/internal/ir"
	"github.com/oraql/go-oraql/internal/irinterp"
	"github.com/oraql/go-oraql/internal/minic"
	"github.com/oraql/go-oraql/internal/oraql"
	"github.com/oraql/go-oraql/internal/passes"
	"github.com/oraql/go-oraql/internal/pipeline"
	"github.com/oraql/go-oraql/internal/report"
	"github.com/oraql/go-oraql/internal/verify"
)

// Frontend configuration.
type (
	// FrontendOptions selects the source dialect and parallel model.
	FrontendOptions = minic.Options
	// Dialect is the source-language flavour (C or Fortran-style).
	Dialect = minic.Dialect
	// Model is the parallel programming model lowering.
	Model = minic.Model
)

// Frontend dialects and models.
const (
	DialectC       = minic.DialectC
	DialectFortran = minic.DialectFortran

	ModelSeq     = minic.ModelSeq
	ModelOpenMP  = minic.ModelOpenMP
	ModelTasks   = minic.ModelTasks
	ModelMPI     = minic.ModelMPI
	ModelOffload = minic.ModelOffload
)

// Compilation types.
type (
	// CompileConfig describes one compilation (source, frontend
	// options, optional ORAQL options).
	CompileConfig = pipeline.Config
	// Compilation is the result of CompileSource.
	Compilation = pipeline.CompileResult
	// Module is an IR translation unit.
	Module = ir.Module
)

// CompileSource compiles a minic source text through the full -O3
// pipeline; cfg.ORAQL (optional) installs the ORAQL pass with the
// given response sequence.
func CompileSource(cfg CompileConfig) (*Compilation, error) {
	return pipeline.Compile(cfg)
}

// CompileSourceContext is CompileSource with cancellation: ctx is
// checked before the frontend, between pass executions, and before
// codegen.
func CompileSourceContext(ctx context.Context, cfg CompileConfig) (*Compilation, error) {
	return pipeline.CompileContext(ctx, cfg)
}

// Execution types.
type (
	// RunOptions configures the simulated machine.
	RunOptions = irinterp.Options
	// RunResult is the outcome of a simulated run.
	RunResult = irinterp.Result
	// Program is a compiled host(+device) module pair.
	Program = irinterp.Program
)

// RunProgram executes a compiled program on the simulated machine.
func RunProgram(p *Program, opts RunOptions) (*RunResult, error) {
	return irinterp.Run(p, opts)
}

// ORAQL pass types.
type (
	// ORAQLOptions configures the ORAQL responder (sequence, target
	// filter, dump flags).
	ORAQLOptions = oraql.Options
	// Seq is an ORAQL response sequence ("1" optimistic, "0"
	// pessimistic).
	Seq = oraql.Seq
	// ORAQLStats are the pass counters (unique/cached x
	// optimistic/pessimistic).
	ORAQLStats = oraql.Stats
	// QueryRecord describes one unique ORAQL query.
	QueryRecord = oraql.QueryRecord
)

// ParseSeq parses "-opt-aa-seq" syntax ("1 0 1 ...", or "@file").
func ParseSeq(s string) (Seq, error) { return oraql.ParseSeq(s) }

// Probing driver types.
type (
	// ProbeSpec is a benchmark specification for the probing driver.
	ProbeSpec = driver.BenchSpec
	// ProbeResult is the full probing outcome.
	ProbeResult = driver.Result
	// Strategy is a registered bisection strategy
	// (ProbeSpec.Strategy); StrategyByName resolves one from its
	// registered name.
	Strategy = driver.Strategy
	// VerifySpec configures output verification.
	VerifySpec = verify.Spec
)

// Built-in bisection strategies. Linear is the one-query-at-a-time
// diagnostic baseline.
var (
	Chunked   = driver.Chunked
	FreqSpace = driver.FreqSpace
	Linear    = driver.Linear
)

// StrategyByName resolves a registered probing strategy ("chunked",
// "freq", "linear", or anything registered by an importing package).
func StrategyByName(name string) (Strategy, error) { return driver.StrategyByName(name) }

// Probe runs the full ORAQL workflow: baseline, fully-optimistic
// attempt, and bisection to a locally maximal optimistic sequence.
func Probe(spec *ProbeSpec) (*ProbeResult, error) { return driver.Probe(spec) }

// ProbeContext is Probe with cancellation: the decision loop,
// speculative workers, and every compilation observe ctx.
func ProbeContext(ctx context.Context, spec *ProbeSpec) (*ProbeResult, error) {
	return driver.ProbeContext(ctx, spec)
}

// Alias-analysis extension points.
type (
	// AliasAnalysis is the interface custom analyses implement to join
	// the manager chain.
	AliasAnalysis = aa.Analysis
	// AliasResult is the four-valued query answer.
	AliasResult = aa.Result
	// MemLoc is one side of an alias query.
	MemLoc = aa.MemLoc
	// QueryCtx carries the requesting pass and function.
	QueryCtx = aa.QueryCtx
	// AAStats are the manager's query statistics, including the
	// memoized query-cache hit/miss/flush counters.
	AAStats = aa.Stats
)

// Alias results.
const (
	MayAlias     = aa.MayAlias
	NoAlias      = aa.NoAlias
	PartialAlias = aa.PartialAlias
	MustAlias    = aa.MustAlias
)

// Pass-manager instrumentation types.
type (
	// PassTiming is the per-pass execution accounting of one
	// compilation (-time-passes): runs, changed runs, wall time.
	PassTiming = passes.Timing
	// PreservedAnalyses is the per-pass declaration of which analyses
	// survive it (the new-pass-manager invalidation protocol).
	PreservedAnalyses = analysis.PreservedAnalyses
	// AnalysisStats are the analysis manager's per-analysis cache
	// counters (hits, misses, invalidations).
	AnalysisStats = analysis.Stats
)

// Benchmark registry (the paper's Fig. 4 configurations).
type (
	// Benchmark is one evaluation configuration.
	Benchmark = apps.Config
	// Experiment is a probed configuration with its results.
	Experiment = report.Experiment
)

// Benchmarks returns all sixteen configurations in Fig. 4 row order.
func Benchmarks() []*Benchmark { return apps.All() }

// BenchmarkByID returns a configuration by its stable id (e.g.
// "testsnap-openmp"), or nil.
func BenchmarkByID(id string) *Benchmark { return apps.ByID(id) }

// RunBenchmark probes one benchmark configuration.
func RunBenchmark(b *Benchmark, log io.Writer) (*Experiment, error) {
	return report.Run(b, log)
}

// Table renderers for the paper's figures.
var (
	// Fig4Table renders the alias-query statistics table.
	Fig4Table = report.Fig4
	// Fig6Table renders the pass-statistic deltas.
	Fig6Table = report.Fig6
	// Fig7Table renders per-kernel register/stack changes.
	Fig7Table = report.Fig7
	// Fig3Dump renders the pessimistic-query report.
	Fig3Dump = report.Fig3
	// RuntimeTable renders the dynamic-execution comparison.
	RuntimeTable = report.Runtime
)
