package goraql

import (
	"io"
	"strings"
	"testing"
)

// TestPublicAPICompileRunProbe exercises the full public surface the
// way the README's quickstart does.
func TestPublicAPICompileRunProbe(t *testing.T) {
	src := `
int main() {
	double a[8];
	for (int i = 0; i < 8; i++) {
		a[i] = (double)i;
	}
	print("sum ", checksum(a, 8), "\n");
	return 0;
}`
	c, err := CompileSource(CompileConfig{Name: "api", Source: src, SourceFile: "api.mc"})
	if err != nil {
		t.Fatal(err)
	}
	r, err := RunProgram(c.Program, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(r.Stdout, "sum ") {
		t.Errorf("stdout = %q", r.Stdout)
	}

	res, err := Probe(&ProbeSpec{Name: "api", Compile: CompileConfig{Source: src, SourceFile: "api.mc"}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.FullyOptimistic {
		t.Error("trivial program should be fully optimistic")
	}
}

func TestPublicAPISequences(t *testing.T) {
	seq, err := ParseSeq("1 0")
	if err != nil || len(seq) != 2 || !seq[0] || seq[1] {
		t.Fatalf("ParseSeq: %v %v", seq, err)
	}
	if seq.String() != "1 0" {
		t.Errorf("String = %q", seq.String())
	}
}

func TestBenchmarkRegistry(t *testing.T) {
	all := Benchmarks()
	if len(all) != 16 {
		t.Fatalf("expected the 16 Fig. 4 configurations, got %d", len(all))
	}
	if BenchmarkByID("testsnap-openmp") == nil || BenchmarkByID("nope") != nil {
		t.Error("BenchmarkByID")
	}
	benches := map[string]int{}
	for _, c := range all {
		benches[c.Benchmark]++
	}
	want := map[string]int{
		"TestSNAP": 4, "XSBench": 3, "GridMini": 1, "Quicksilver": 1,
		"LULESH": 3, "MiniFE": 1, "MiniGMG": 3,
	}
	for b, n := range want {
		if benches[b] != n {
			t.Errorf("%s has %d configs, want %d", b, benches[b], n)
		}
	}
}

func TestRunBenchmarkAndTables(t *testing.T) {
	e, err := RunBenchmark(BenchmarkByID("xsbench-seq"), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	fig4 := Fig4Table([]*Experiment{e}, true)
	if !strings.Contains(fig4, "XSBench") {
		t.Errorf("Fig4 table:\n%s", fig4)
	}
	fig3 := Fig3Dump(e)
	if !strings.Contains(fig3, "Pessimistic query") {
		t.Errorf("Fig3 dump:\n%s", fig3)
	}
	rt := RuntimeTable([]*Experiment{e})
	if !strings.Contains(rt, "# executed instructions") {
		t.Errorf("runtime table:\n%s", rt)
	}
}

func TestAliasResultConstants(t *testing.T) {
	if NoAlias.String() != "no-alias" || MayAlias.String() != "may-alias" {
		t.Error("re-exported alias results broken")
	}
}
