// Package analysis is the per-function analysis manager, modelled on
// LLVM's new-pass-manager AnalysisManager/PreservedAnalyses protocol:
// registered analyses are computed lazily, cached per function, and
// dropped only when a transformation pass declares it did not preserve
// them. The probing driver recompiles each application hundreds of
// times, so keeping dominator trees, loop forests and the MemorySSA
// walker alive across the passes that do not touch the CFG is the
// single largest compile-time lever the pipeline has (paper §VIII
// names compile/probe cost as the main obstacle to adoption).
//
// The manager is generic: it knows nothing about concrete analyses.
// The passes package registers the CFG info, the MemorySSA walker, and
// an invalidation hook that scopes the alias-query cache to the
// function that actually changed.
package analysis

import (
	"sort"

	"github.com/oraql/go-oraql/internal/ir"
)

// Key identifies one registered analysis.
type Key string

// The analyses the default pipeline registers. They live here (not in
// the passes package) so PreservedAnalyses constructors can name them
// without an import cycle.
const (
	// CFGKey is the control-flow-graph analysis (preds, RPO, dominator
	// tree, natural loops) — cfg.Info.
	CFGKey Key = "cfg"
	// MemSSAKey is the MemorySSA clobber walker — mssa.Walker.
	MemSSAKey Key = "memory-ssa"
	// AAQueryCacheKey stands for the alias-analysis manager's memoized
	// query cache. It has no Build function; it is registered only so
	// invalidation can be scoped to the changed function through an
	// OnInvalidate hook.
	AAQueryCacheKey Key = "aa-query-cache"
)

// PreservedAnalyses is a transformation pass's declaration of which
// analyses remain valid after it ran, the return-value protocol of
// LLVM's new pass manager. The zero value preserves nothing.
type PreservedAnalyses struct {
	all  bool
	keys map[Key]bool
}

// All declares that every analysis is preserved — the return value of
// a pass that did not change the function.
func All() PreservedAnalyses { return PreservedAnalyses{all: true} }

// None declares that no analysis survives — the return value of a pass
// that restructured the CFG.
func None() PreservedAnalyses { return PreservedAnalyses{} }

// Some declares that exactly the named analyses are preserved.
func Some(keys ...Key) PreservedAnalyses {
	pa := PreservedAnalyses{keys: make(map[Key]bool, len(keys))}
	for _, k := range keys {
		pa.keys[k] = true
	}
	return pa
}

// CFGOnly declares that the function's instructions changed but its
// block structure did not: CFG-derived analyses survive, everything
// else (in particular the alias-query cache) is invalidated. This is
// the set EarlyCSE, GVN, DSE, LICM and Sink return.
func CFGOnly() PreservedAnalyses { return Some(CFGKey) }

// PreservesAll reports whether every analysis is preserved (i.e. the
// pass made no change it needs to announce).
func (pa PreservedAnalyses) PreservesAll() bool { return pa.all }

// Preserves reports whether the analysis k is declared preserved.
func (pa PreservedAnalyses) Preserves(k Key) bool { return pa.all || pa.keys[k] }

// Intersect returns the preservation set kept by both pa and o — the
// combination rule for a pass that ran two sub-passes.
func (pa PreservedAnalyses) Intersect(o PreservedAnalyses) PreservedAnalyses {
	if pa.all {
		return o
	}
	if o.all {
		return pa
	}
	out := PreservedAnalyses{keys: map[Key]bool{}}
	for k := range pa.keys {
		if o.keys[k] {
			out.keys[k] = true
		}
	}
	return out
}

// Registration describes one function analysis.
type Registration struct {
	Key Key

	// Build computes the result for fn. It may fetch dependencies
	// through the manager (which caches them). Nil for marker
	// registrations that exist only for their OnInvalidate hook.
	Build func(m *Manager, fn *ir.Func) any

	// PreservedWith lists keys whose joint preservation keeps this
	// analysis valid even when its own key is not named: a stateless
	// view over its dependencies, like the MemorySSA walker over the
	// CFG, is exactly as fresh as they are.
	PreservedWith []Key

	// OnInvalidate, when non-nil, runs whenever the analysis is
	// invalidated for fn — the scoped-flush hook for state held outside
	// the manager (the AA query cache).
	OnInvalidate func(fn *ir.Func)
}

// Stats counts cache traffic for one registered analysis.
type Stats struct {
	Key           Key
	Hits          int64
	Misses        int64
	Invalidations int64
}

// Manager lazily computes and caches analyses per function.
// It is not safe for concurrent use; each compilation owns one.
type Manager struct {
	regs     []*Registration
	byKey    map[Key]*Registration
	cache    map[*ir.Func]map[Key]any
	stats    map[Key]*Stats
	cacheOff bool
}

// NewManager returns an empty manager.
func NewManager() *Manager {
	return &Manager{
		byKey: map[Key]*Registration{},
		cache: map[*ir.Func]map[Key]any{},
		stats: map[Key]*Stats{},
	}
}

// Register adds an analysis. Registering a key twice replaces the
// earlier registration (used by tests to stub builders).
func (m *Manager) Register(r Registration) {
	if old, ok := m.byKey[r.Key]; ok {
		*old = r
		return
	}
	reg := &r
	m.regs = append(m.regs, reg)
	m.byKey[r.Key] = reg
	m.stats[r.Key] = &Stats{Key: r.Key}
}

// SetCaching enables or disables result caching. Disabled, every Get
// recomputes and Invalidate treats every non-All preservation set as
// None — the force-invalidate mode the transparency tests compare
// against.
func (m *Manager) SetCaching(enabled bool) {
	m.cacheOff = !enabled
	if !enabled {
		m.cache = map[*ir.Func]map[Key]any{}
	}
}

// Caching reports whether results are being cached.
func (m *Manager) Caching() bool { return !m.cacheOff }

// Get returns the analysis k for fn, computing and caching it on a
// miss. It panics on an unregistered key or a marker registration
// without a Build function — both are programming errors.
func (m *Manager) Get(k Key, fn *ir.Func) any {
	reg, ok := m.byKey[k]
	if !ok || reg.Build == nil {
		panic("analysis: Get of unregistered or marker analysis " + string(k))
	}
	st := m.stats[k]
	if !m.cacheOff {
		if res, ok := m.cache[fn][k]; ok {
			st.Hits++
			return res
		}
	}
	st.Misses++
	res := reg.Build(m, fn)
	if !m.cacheOff {
		bucket := m.cache[fn]
		if bucket == nil {
			bucket = map[Key]any{}
			m.cache[fn] = bucket
		}
		bucket[k] = res
	}
	return res
}

// preserved decides whether registration reg survives pa.
func preserved(reg *Registration, pa PreservedAnalyses) bool {
	if pa.Preserves(reg.Key) {
		return true
	}
	if len(reg.PreservedWith) == 0 {
		return false
	}
	for _, dep := range reg.PreservedWith {
		if !pa.Preserves(dep) {
			return false
		}
	}
	return true
}

// Invalidate drops every analysis for fn that pa does not preserve and
// fires the OnInvalidate hooks of the dropped ones. With caching
// disabled, any pa short of All() invalidates everything, so declared
// preservation sets are never trusted — the reference behaviour the
// differential tests compare the cache against.
func (m *Manager) Invalidate(fn *ir.Func, pa PreservedAnalyses) {
	if pa.PreservesAll() {
		return
	}
	for _, reg := range m.regs {
		if !m.cacheOff && preserved(reg, pa) {
			continue
		}
		if bucket := m.cache[fn]; bucket != nil {
			if _, had := bucket[reg.Key]; had {
				delete(bucket, reg.Key)
				m.stats[reg.Key].Invalidations++
			}
		}
		if reg.OnInvalidate != nil {
			reg.OnInvalidate(fn)
		}
	}
}

// StatsFor returns the cache counters of one analysis (zero value if
// never registered).
func (m *Manager) StatsFor(k Key) Stats {
	if s, ok := m.stats[k]; ok {
		return *s
	}
	return Stats{Key: k}
}

// Snapshot returns the counters of every registered analysis with a
// Build function, sorted by key for deterministic output.
func (m *Manager) Snapshot() []Stats {
	out := make([]Stats, 0, len(m.regs))
	for _, r := range m.regs {
		if r.Build == nil {
			continue
		}
		out = append(out, *m.stats[r.Key])
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}
