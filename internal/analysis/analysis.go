// Package analysis is the per-function analysis manager, modelled on
// LLVM's new-pass-manager AnalysisManager/PreservedAnalyses protocol:
// registered analyses are computed lazily, cached per function, and
// dropped only when a transformation pass declares it did not preserve
// them. The probing driver recompiles each application hundreds of
// times, so keeping dominator trees, loop forests and the MemorySSA
// walker alive across the passes that do not touch the CFG is the
// single largest compile-time lever the pipeline has (paper §VIII
// names compile/probe cost as the main obstacle to adoption).
//
// The manager is generic: it knows nothing about concrete analyses.
// The passes package registers the CFG info, the MemorySSA walker, and
// an invalidation hook that scopes the alias-query cache to the
// function that actually changed.
package analysis

import (
	"sort"
	"sync"
	"sync/atomic"

	"github.com/oraql/go-oraql/internal/ir"
)

// Key identifies one registered analysis.
type Key string

// The analyses the default pipeline registers. They live here (not in
// the passes package) so PreservedAnalyses constructors can name them
// without an import cycle.
const (
	// CFGKey is the control-flow-graph analysis (preds, RPO, dominator
	// tree, natural loops) — cfg.Info.
	CFGKey Key = "cfg"
	// MemSSAKey is the MemorySSA clobber walker — mssa.Walker.
	MemSSAKey Key = "memory-ssa"
	// AAQueryCacheKey stands for the alias-analysis manager's memoized
	// query cache. It has no Build function; it is registered only so
	// invalidation can be scoped to the changed function through an
	// OnInvalidate hook.
	AAQueryCacheKey Key = "aa-query-cache"
)

// PreservedAnalyses is a transformation pass's declaration of which
// analyses remain valid after it ran, the return-value protocol of
// LLVM's new pass manager. The zero value preserves nothing.
type PreservedAnalyses struct {
	all  bool
	keys map[Key]bool
}

// All declares that every analysis is preserved — the return value of
// a pass that did not change the function.
func All() PreservedAnalyses { return PreservedAnalyses{all: true} }

// None declares that no analysis survives — the return value of a pass
// that restructured the CFG.
func None() PreservedAnalyses { return PreservedAnalyses{} }

// Some declares that exactly the named analyses are preserved.
func Some(keys ...Key) PreservedAnalyses {
	pa := PreservedAnalyses{keys: make(map[Key]bool, len(keys))}
	for _, k := range keys {
		pa.keys[k] = true
	}
	return pa
}

// CFGOnly declares that the function's instructions changed but its
// block structure did not: CFG-derived analyses survive, everything
// else (in particular the alias-query cache) is invalidated. This is
// the set EarlyCSE, GVN, DSE, LICM and Sink return.
func CFGOnly() PreservedAnalyses { return Some(CFGKey) }

// PreservesAll reports whether every analysis is preserved (i.e. the
// pass made no change it needs to announce).
func (pa PreservedAnalyses) PreservesAll() bool { return pa.all }

// Preserves reports whether the analysis k is declared preserved.
func (pa PreservedAnalyses) Preserves(k Key) bool { return pa.all || pa.keys[k] }

// Intersect returns the preservation set kept by both pa and o — the
// combination rule for a pass that ran two sub-passes.
func (pa PreservedAnalyses) Intersect(o PreservedAnalyses) PreservedAnalyses {
	if pa.all {
		return o
	}
	if o.all {
		return pa
	}
	out := PreservedAnalyses{keys: map[Key]bool{}}
	for k := range pa.keys {
		if o.keys[k] {
			out.keys[k] = true
		}
	}
	return out
}

// Registration describes one function analysis.
type Registration struct {
	Key Key

	// Build computes the result for fn. It may fetch dependencies
	// through the manager (which caches them). Nil for marker
	// registrations that exist only for their OnInvalidate hook.
	Build func(m *Manager, fn *ir.Func) any

	// PreservedWith lists keys whose joint preservation keeps this
	// analysis valid even when its own key is not named: a stateless
	// view over its dependencies, like the MemorySSA walker over the
	// CFG, is exactly as fresh as they are.
	PreservedWith []Key

	// OnInvalidate, when non-nil, runs whenever the analysis is
	// invalidated for fn — the scoped-flush hook for state held outside
	// the manager (the AA query cache).
	OnInvalidate func(fn *ir.Func)
}

// Stats counts cache traffic for one registered analysis.
type Stats struct {
	Key           Key
	Hits          int64
	Misses        int64
	Invalidations int64
}

// counters is the internal, atomically-updated form of Stats.
type counters struct {
	hits, misses, invalidations atomic.Int64
}

func (c *counters) snapshot(k Key) Stats {
	return Stats{Key: k, Hits: c.hits.Load(), Misses: c.misses.Load(),
		Invalidations: c.invalidations.Load()}
}

// funcEntries is one function's cached results. Each function has its
// own lock: the parallel pass manager runs at most one worker per
// function, so entries of different functions are accessed without
// contention, while Invalidate of one function cannot block queries of
// another. The lock is never held across a Build call, because builds
// re-enter Get for their dependencies (MemorySSA fetches the CFG).
type funcEntries struct {
	mu   sync.Mutex
	vals map[Key]any
}

// Manager lazily computes and caches analyses per function.
//
// Registration (Register, SetCaching) is setup-time configuration and
// must happen before analyses are queried. Get and Invalidate are safe
// for concurrent use across functions; per function they assume the
// single-writer discipline of the pass manager (one worker owns a
// function at a time, pass barriers establish happens-before between
// owners).
type Manager struct {
	regs     []*Registration
	byKey    map[Key]*Registration
	stats    map[Key]*counters
	cacheOff atomic.Bool

	// mu guards the entries map itself; the funcEntries it holds are
	// never removed, so a looked-up value stays valid without it.
	mu      sync.RWMutex
	entries map[*ir.Func]*funcEntries
}

// NewManager returns an empty manager.
func NewManager() *Manager {
	return &Manager{
		byKey:   map[Key]*Registration{},
		entries: map[*ir.Func]*funcEntries{},
		stats:   map[Key]*counters{},
	}
}

// Register adds an analysis. Registering a key twice replaces the
// earlier registration (used by tests to stub builders).
func (m *Manager) Register(r Registration) {
	if old, ok := m.byKey[r.Key]; ok {
		*old = r
		return
	}
	reg := &r
	m.regs = append(m.regs, reg)
	m.byKey[r.Key] = reg
	m.stats[r.Key] = &counters{}
}

// SetCaching enables or disables result caching. Disabled, every Get
// recomputes and Invalidate treats every non-All preservation set as
// None — the force-invalidate mode the transparency tests compare
// against.
func (m *Manager) SetCaching(enabled bool) {
	m.cacheOff.Store(!enabled)
	if !enabled {
		m.mu.Lock()
		m.entries = map[*ir.Func]*funcEntries{}
		m.mu.Unlock()
	}
}

// Caching reports whether results are being cached.
func (m *Manager) Caching() bool { return !m.cacheOff.Load() }

// entriesFor returns fn's entry set, creating it on first use.
func (m *Manager) entriesFor(fn *ir.Func) *funcEntries {
	m.mu.RLock()
	e := m.entries[fn]
	m.mu.RUnlock()
	if e != nil {
		return e
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if e = m.entries[fn]; e == nil {
		e = &funcEntries{vals: map[Key]any{}}
		m.entries[fn] = e
	}
	return e
}

// Get returns the analysis k for fn, computing and caching it on a
// miss. It panics on an unregistered key or a marker registration
// without a Build function — both are programming errors.
func (m *Manager) Get(k Key, fn *ir.Func) any {
	reg, ok := m.byKey[k]
	if !ok || reg.Build == nil {
		panic("analysis: Get of unregistered or marker analysis " + string(k))
	}
	st := m.stats[k]
	cacheOff := m.cacheOff.Load()
	var e *funcEntries
	if !cacheOff {
		e = m.entriesFor(fn)
		e.mu.Lock()
		res, ok := e.vals[k]
		e.mu.Unlock()
		if ok {
			st.hits.Add(1)
			return res
		}
	}
	st.misses.Add(1)
	res := reg.Build(m, fn)
	if !cacheOff {
		e.mu.Lock()
		e.vals[k] = res
		e.mu.Unlock()
	}
	return res
}

// preserved decides whether registration reg survives pa.
func preserved(reg *Registration, pa PreservedAnalyses) bool {
	if pa.Preserves(reg.Key) {
		return true
	}
	if len(reg.PreservedWith) == 0 {
		return false
	}
	for _, dep := range reg.PreservedWith {
		if !pa.Preserves(dep) {
			return false
		}
	}
	return true
}

// Invalidate drops every analysis for fn that pa does not preserve and
// fires the OnInvalidate hooks of the dropped ones. With caching
// disabled, any pa short of All() invalidates everything, so declared
// preservation sets are never trusted — the reference behaviour the
// differential tests compare the cache against.
func (m *Manager) Invalidate(fn *ir.Func, pa PreservedAnalyses) {
	if pa.PreservesAll() {
		return
	}
	cacheOff := m.cacheOff.Load()
	e := m.entriesFor(fn)
	for _, reg := range m.regs {
		if !cacheOff && preserved(reg, pa) {
			continue
		}
		e.mu.Lock()
		_, had := e.vals[reg.Key]
		delete(e.vals, reg.Key)
		e.mu.Unlock()
		if had {
			m.stats[reg.Key].invalidations.Add(1)
		}
		if reg.OnInvalidate != nil {
			reg.OnInvalidate(fn)
		}
	}
}

// StatsFor returns the cache counters of one analysis (zero value if
// never registered).
func (m *Manager) StatsFor(k Key) Stats {
	if s, ok := m.stats[k]; ok {
		return s.snapshot(k)
	}
	return Stats{Key: k}
}

// Snapshot returns the counters of every registered analysis with a
// Build function, sorted by key for deterministic output.
func (m *Manager) Snapshot() []Stats {
	out := make([]Stats, 0, len(m.regs))
	for _, r := range m.regs {
		if r.Build == nil {
			continue
		}
		out = append(out, m.stats[r.Key].snapshot(r.Key))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}
