package analysis

import (
	"testing"

	"github.com/oraql/go-oraql/internal/ir"
)

func twoFuncs() (*ir.Func, *ir.Func) {
	m := ir.NewModule("t")
	f, fb := ir.NewFunc(m, "f", ir.Void)
	fb.Ret(nil)
	g, gb := ir.NewFunc(m, "g", ir.Void)
	gb.Ret(nil)
	return f, g
}

func TestPreservedAnalysesSets(t *testing.T) {
	if !All().PreservesAll() || !All().Preserves(CFGKey) {
		t.Error("All must preserve everything")
	}
	if None().PreservesAll() || None().Preserves(CFGKey) {
		t.Error("None must preserve nothing")
	}
	pa := CFGOnly()
	if pa.PreservesAll() || !pa.Preserves(CFGKey) || pa.Preserves(AAQueryCacheKey) {
		t.Errorf("CFGOnly must preserve exactly the CFG")
	}
	both := Some(CFGKey, MemSSAKey).Intersect(CFGOnly())
	if !both.Preserves(CFGKey) || both.Preserves(MemSSAKey) {
		t.Error("Intersect must keep only jointly preserved keys")
	}
	if x := All().Intersect(CFGOnly()); !x.Preserves(CFGKey) || x.Preserves(MemSSAKey) {
		t.Error("All is the Intersect identity")
	}
}

func TestManagerCachesPerFunction(t *testing.T) {
	f, g := twoFuncs()
	m := NewManager()
	builds := 0
	m.Register(Registration{Key: CFGKey, Build: func(*Manager, *ir.Func) any {
		builds++
		return builds
	}})

	if m.Get(CFGKey, f) != 1 || m.Get(CFGKey, f) != 1 {
		t.Error("second Get must be served from the cache")
	}
	if m.Get(CFGKey, g) != 2 {
		t.Error("distinct functions must not share results")
	}
	s := m.StatsFor(CFGKey)
	if s.Hits != 1 || s.Misses != 2 {
		t.Errorf("hits/misses = %d/%d, want 1/2", s.Hits, s.Misses)
	}
}

func TestManagerInvalidationScope(t *testing.T) {
	f, g := twoFuncs()
	m := NewManager()
	builds := 0
	m.Register(Registration{Key: CFGKey, Build: func(*Manager, *ir.Func) any {
		builds++
		return builds
	}})
	m.Get(CFGKey, f)
	m.Get(CFGKey, g)

	// Invalidating f must not touch g's entry.
	m.Invalidate(f, None())
	if m.Get(CFGKey, g) != 2 {
		t.Error("g's entry must survive f's invalidation")
	}
	if m.Get(CFGKey, f) != 3 {
		t.Error("f's entry must have been dropped")
	}
	if s := m.StatsFor(CFGKey); s.Invalidations != 1 {
		t.Errorf("Invalidations = %d, want 1", s.Invalidations)
	}
	// A preserving set drops nothing.
	m.Invalidate(f, CFGOnly())
	if m.Get(CFGKey, f) != 3 {
		t.Error("preserved analysis must survive")
	}
	// All() is a no-op by definition.
	m.Invalidate(f, All())
	if m.Get(CFGKey, f) != 3 {
		t.Error("All must invalidate nothing")
	}
}

func TestManagerPreservedWith(t *testing.T) {
	f, _ := twoFuncs()
	m := NewManager()
	m.Register(Registration{Key: CFGKey, Build: func(*Manager, *ir.Func) any { return "cfg" }})
	walks := 0
	m.Register(Registration{
		Key:           MemSSAKey,
		PreservedWith: []Key{CFGKey},
		Build: func(am *Manager, fn *ir.Func) any {
			walks++
			return am.Get(CFGKey, fn).(string) + "+walker"
		},
	})
	if m.Get(MemSSAKey, f) != "cfg+walker" {
		t.Fatal("dependent build")
	}
	// CFGOnly preserves the walker transitively (stateless over the CFG).
	m.Invalidate(f, CFGOnly())
	m.Get(MemSSAKey, f)
	if walks != 1 {
		t.Errorf("walker rebuilt %d times, want 1 (preserved with its deps)", walks)
	}
	// None drops it.
	m.Invalidate(f, None())
	m.Get(MemSSAKey, f)
	if walks != 2 {
		t.Errorf("walker rebuilt %d times, want 2 after None()", walks)
	}
}

func TestManagerOnInvalidateHook(t *testing.T) {
	f, g := twoFuncs()
	m := NewManager()
	var flushed []*ir.Func
	m.Register(Registration{Key: AAQueryCacheKey, OnInvalidate: func(fn *ir.Func) {
		flushed = append(flushed, fn)
	}})
	m.Invalidate(f, CFGOnly())
	m.Invalidate(g, None())
	m.Invalidate(g, All())
	m.Invalidate(g, Some(AAQueryCacheKey))
	if len(flushed) != 2 || flushed[0] != f || flushed[1] != g {
		t.Errorf("hook fired for %v, want [f g]", flushed)
	}
}

func TestManagerForceInvalidateMode(t *testing.T) {
	f, _ := twoFuncs()
	m := NewManager()
	builds := 0
	m.Register(Registration{Key: CFGKey, Build: func(*Manager, *ir.Func) any {
		builds++
		return builds
	}})
	hookFired := 0
	m.Register(Registration{Key: AAQueryCacheKey, OnInvalidate: func(*ir.Func) { hookFired++ }})
	m.SetCaching(false)
	if m.Caching() {
		t.Fatal("caching must report disabled")
	}
	m.Get(CFGKey, f)
	m.Get(CFGKey, f)
	if builds != 2 {
		t.Errorf("disabled cache must rebuild every Get, built %d", builds)
	}
	// Declared preservation is not trusted: CFGOnly still fires the hook.
	m.Invalidate(f, CFGOnly())
	if hookFired != 1 {
		t.Error("force mode must invalidate everything on any change")
	}
	// But All() (nothing changed) is still a no-op.
	m.Invalidate(f, All())
	if hookFired != 1 {
		t.Error("All must stay a no-op in force mode")
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	f, _ := twoFuncs()
	m := NewManager()
	m.Register(Registration{Key: MemSSAKey, Build: func(*Manager, *ir.Func) any { return 1 }})
	m.Register(Registration{Key: CFGKey, Build: func(*Manager, *ir.Func) any { return 2 }})
	m.Register(Registration{Key: AAQueryCacheKey}) // marker: excluded
	m.Get(CFGKey, f)
	snap := m.Snapshot()
	if len(snap) != 2 || snap[0].Key != CFGKey || snap[1].Key != MemSSAKey {
		t.Errorf("snapshot = %+v, want [cfg memory-ssa]", snap)
	}
	if snap[0].Misses != 1 {
		t.Errorf("cfg misses = %d, want 1", snap[0].Misses)
	}
}
