package report

import (
	"time"

	"github.com/oraql/go-oraql/internal/aa"
	"github.com/oraql/go-oraql/internal/driver"
	"github.com/oraql/go-oraql/internal/pipeline"
)

// This file is the JSON form of the paper tables: the same numbers
// Fig3/Fig4/ProbingEffort render as text, encoded as structures the
// oraql-serve API returns and the -server CLI mode decodes.

// ORAQLStatsJSON is the pass-counter quadrant of Fig. 4.
type ORAQLStatsJSON struct {
	UniqueOptimistic  int `json:"unique_optimistic"`
	CachedOptimistic  int `json:"cached_optimistic"`
	UniquePessimistic int `json:"unique_pessimistic"`
	CachedPessimistic int `json:"cached_pessimistic"`
}

// PassTimeJSON is one -time-passes row.
type PassTimeJSON struct {
	Pass    string  `json:"pass"`
	Runs    int64   `json:"runs"`
	Changed int64   `json:"changed"`
	WallMS  float64 `json:"wall_ms"`
}

// AnalysisStatsJSON is one analysis manager cache-counter row.
type AnalysisStatsJSON struct {
	Analysis      string `json:"analysis"`
	Hits          int64  `json:"hits"`
	Misses        int64  `json:"misses"`
	Invalidations int64  `json:"invalidations"`
}

// TargetJSON is the per-module (host or device) compilation outcome.
type TargetJSON struct {
	Name          string `json:"name"`
	IR            string `json:"ir,omitempty"`
	MachineInstrs int    `json:"machine_instrs"`
	Spills        int    `json:"spills"`
}

// CompileJSON is the API encoding of one pipeline.CompileResult.
type CompileJSON struct {
	ExeHash  string              `json:"exe_hash"`
	Host     *TargetJSON         `json:"host"`
	Device   *TargetJSON         `json:"device,omitempty"`
	ORAQL    *ORAQLStatsJSON     `json:"oraql,omitempty"`
	AA       *aa.Stats           `json:"aa"`
	Timing   []PassTimeJSON      `json:"timing,omitempty"`
	Analysis []AnalysisStatsJSON `json:"analysis,omitempty"`
}

// NewCompileJSON encodes a compilation; withIR additionally embeds the
// optimized textual IR of every target (large, so opt-in per request).
func NewCompileJSON(cr *pipeline.CompileResult, withIR bool, hadORAQL bool) *CompileJSON {
	target := func(t *pipeline.TargetStats) *TargetJSON {
		if t == nil {
			return nil
		}
		out := &TargetJSON{Name: t.Module.Name,
			MachineInstrs: t.Code.MachineInstrs, Spills: t.Code.Spills}
		if withIR {
			out.IR = t.Module.String()
		}
		return out
	}
	out := &CompileJSON{
		ExeHash: cr.ExeHash(),
		Host:    target(cr.Host),
		Device:  target(cr.Device),
		AA:      cr.AAStats(),
	}
	if hadORAQL {
		s := cr.ORAQLStats()
		out.ORAQL = &ORAQLStatsJSON{
			UniqueOptimistic: s.UniqueOptimistic, CachedOptimistic: s.CachedOptimistic,
			UniquePessimistic: s.UniquePessimistic, CachedPessimistic: s.CachedPessimistic,
		}
	}
	for _, pt := range cr.Timing().Entries() {
		out.Timing = append(out.Timing, PassTimeJSON{
			Pass: pt.Pass, Runs: pt.Runs, Changed: pt.Changed,
			WallMS: float64(pt.Wall) / float64(time.Millisecond),
		})
	}
	for _, as := range cr.AnalysisStats() {
		out.Analysis = append(out.Analysis, AnalysisStatsJSON{
			Analysis: string(as.Key), Hits: as.Hits, Misses: as.Misses,
			Invalidations: as.Invalidations,
		})
	}
	return out
}

// QueryJSON is one Fig. 3 row: a pessimistically answered (guilty)
// alias query of the final verified compilation.
type QueryJSON struct {
	Index     int    `json:"index"`
	Pass      string `json:"pass"`
	Func      string `json:"func"`
	A         string `json:"a"`
	B         string `json:"b"`
	CacheHits int    `json:"cache_hits"`
}

// ProbeJSON is the API encoding of one driver.Result: the probing
// outcome (Fig. 4 row), effort counters, runtime deltas, and the
// Fig. 3 guilty-query dump.
type ProbeJSON struct {
	Name            string `json:"name"`
	FullyOptimistic bool   `json:"fully_optimistic"`
	FinalSeq        string `json:"final_seq"`
	ExeHash         string `json:"exe_hash"`

	ORAQL *ORAQLStatsJSON `json:"oraql"`
	AA    *aa.Stats       `json:"aa"`

	NoAliasOrig  int64 `json:"no_alias_orig"`
	NoAliasORAQL int64 `json:"no_alias_oraql"`
	InstrsOrig   int64 `json:"instrs_orig"`
	InstrsORAQL  int64 `json:"instrs_oraql"`

	Compiles        int `json:"compiles"`
	TestsRun        int `json:"tests_run"`
	TestsCached     int `json:"tests_cached"`
	TestsDisk       int `json:"tests_disk,omitempty"`
	TestsSpeculated int `json:"tests_speculated"`
	TestsWasted     int `json:"tests_wasted"`

	GuiltyQueries []QueryJSON `json:"guilty_queries,omitempty"`
}

// NewProbeJSON encodes a probing outcome.
func NewProbeJSON(res *driver.Result) *ProbeJSON {
	s := res.Final.Compile.ORAQLStats()
	out := &ProbeJSON{
		Name:            res.Spec.Name,
		FullyOptimistic: res.FullyOptimistic,
		FinalSeq:        res.FinalSeq.String(),
		ExeHash:         res.Final.Compile.ExeHash(),
		ORAQL: &ORAQLStatsJSON{
			UniqueOptimistic: s.UniqueOptimistic, CachedOptimistic: s.CachedOptimistic,
			UniquePessimistic: s.UniquePessimistic, CachedPessimistic: s.CachedPessimistic,
		},
		AA:              res.Final.Compile.AAStats(),
		NoAliasOrig:     res.Baseline.Compile.NoAliasTotal(),
		NoAliasORAQL:    res.Final.Compile.NoAliasTotal(),
		InstrsOrig:      res.Baseline.Run.Instrs,
		InstrsORAQL:     res.Final.Run.Instrs,
		Compiles:        res.Compiles,
		TestsRun:        res.TestsRun,
		TestsCached:     res.TestsCached,
		TestsDisk:       res.TestsDisk,
		TestsSpeculated: res.TestsSpeculated,
		TestsWasted:     res.TestsWasted,
	}
	for _, rec := range res.GuiltyQueries() {
		a, b := rec.LocDescriptions()
		out.GuiltyQueries = append(out.GuiltyQueries, QueryJSON{
			Index: rec.Index, Pass: rec.Pass, Func: rec.Func,
			A: a, B: b, CacheHits: rec.CacheHits,
		})
	}
	return out
}
