// Package report runs the evaluation and renders the paper's tables
// and figures from live measurements: Fig. 4 (alias-query statistics),
// Fig. 5 (substrate versions), Fig. 6 (pass-statistic deltas), Fig. 7
// (per-kernel register/stack changes), the Fig. 3 pessimistic-query
// dump, and the runtime comparisons quoted in the text of Section V.
package report

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"github.com/oraql/go-oraql/internal/apps"
	"github.com/oraql/go-oraql/internal/codegen"
	"github.com/oraql/go-oraql/internal/driver"
	"github.com/oraql/go-oraql/internal/ir"
	"github.com/oraql/go-oraql/internal/passes"
)

// Experiment bundles one configuration's probing outcome.
type Experiment struct {
	Config *apps.Config
	Probe  *driver.Result
}

// Run probes the given configuration.
func Run(cfg *apps.Config, log io.Writer) (*Experiment, error) {
	spec := cfg.Spec()
	spec.Log = log
	res, err := driver.Probe(spec)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", cfg.ID, err)
	}
	return &Experiment{Config: cfg, Probe: res}, nil
}

// RunAll probes every registered configuration (or the named subset).
func RunAll(ids []string, log io.Writer) ([]*Experiment, error) {
	cfgs := apps.All()
	if len(ids) > 0 {
		cfgs = nil
		for _, id := range ids {
			c := apps.ByID(id)
			if c == nil {
				return nil, fmt.Errorf("unknown configuration %q", id)
			}
			cfgs = append(cfgs, c)
		}
	}
	var out []*Experiment
	for _, c := range cfgs {
		e, err := Run(c, log)
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	return out, nil
}

// table is a minimal column formatter.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteString("\n")
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
	return sb.String()
}

func pct(oraql, orig int64) string {
	if orig == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", 100*float64(oraql-orig)/float64(orig))
}

// Fig4 renders the alias-query statistics table (measured), with the
// paper's published counts alongside for EXPERIMENTS.md.
func Fig4(exps []*Experiment, withPaper bool) string {
	t := &table{header: []string{
		"Benchmark", "Programming Model", "Source Files",
		"OptU", "OptC", "PessU", "PessC", "NA-Orig", "NA-ORAQL", "Delta", "AA$-Hit",
	}}
	if withPaper {
		t.header = append(t.header, "paper:PessU", "paper:Delta")
	}
	for _, e := range exps {
		s := e.Probe.Final.Compile.ORAQLStats()
		orig := e.Probe.Baseline.Compile.NoAliasTotal()
		final := e.Probe.Final.Compile.NoAliasTotal()
		row := []string{
			e.Config.Benchmark, e.Config.ModelLabel, e.Config.SourceFiles,
			fmt.Sprint(s.UniqueOptimistic), fmt.Sprint(s.CachedOptimistic),
			fmt.Sprint(s.UniquePessimistic), fmt.Sprint(s.CachedPessimistic),
			fmt.Sprint(orig), fmt.Sprint(final), pct(final, orig),
			fmt.Sprintf("%.1f%%", 100*e.Probe.Final.Compile.AAStats().CacheHitRate()),
		}
		if withPaper {
			p := e.Config.Paper
			row = append(row, fmt.Sprint(p.PessUnique),
				pct(int64(p.NoAliasORAQL), int64(p.NoAliasOrig)))
		}
		t.add(row...)
	}
	return "Fig. 4 — Alias query statistics (measured on the go-oraql substrate)\n" + t.String()
}

// Fig5 renders the substrate-version table, the analogue of the
// paper's software-version listing.
func Fig5() string {
	t := &table{header: []string{"Component", "Version"}}
	t.add("go-oraql substrate", Version)
	t.add("IR / pass pipeline", "O3 v"+Version)
	t.add("alias analyses", "basic, scoped-noalias, tbaa, argattr, globals (+cfl-anders, cfl-steens opt-in)")
	t.add("simulated CPU", codegen.X86.Name)
	t.add("simulated GPU", codegen.GPUSim.Name)
	return "Fig. 5 — Software versions (substrate components)\n" + t.String()
}

// Version is the substrate version stamped into Fig. 5.
const Version = "1.0.0"

// fig6Selections lists the (pass, statistic) pairs the paper's Fig. 6
// quotes; Fig6 prints every selected counter that moved, per config.
var fig6Selections = []struct{ Pass, Stat string }{
	{"asm printer", "# machine instructions generated"},
	{"Early CSE", "# instructions eliminated"},
	{"Global Value Numbering", "# loads deleted"},
	{"Loop Invariant Code Motion", "# loads hoisted or sunk"},
	{"Loop Deletion", "# deleted loops"},
	{"Dead Store Elimination", "# stores deleted"},
	{"register allocation", "# register spills inserted"},
	{"SLP Vectorizer", "# vector instructions generated"},
	{"Loop Vectorizer", "# vectorized loops"},
	{"Loop Vectorizer", "# vector instructions generated"},
}

func statOf(reg *passes.StatsRegistry, pass, stat string) int64 {
	return reg.Get(pass, stat)
}

// Fig6 renders the interesting pass-statistic deltas between the
// original and ORAQL compilations.
func Fig6(exps []*Experiment) string {
	t := &table{header: []string{"Benchmark", "Pass", "Property", "Original", "ORAQL", "Delta"}}
	for _, e := range exps {
		base := e.Probe.Baseline.Compile
		fin := e.Probe.Final.Compile
		for _, sel := range fig6Selections {
			var o, n int64
			o += statOf(base.Host.Pass, sel.Pass, sel.Stat)
			n += statOf(fin.Host.Pass, sel.Pass, sel.Stat)
			if base.Device != nil {
				o += statOf(base.Device.Pass, sel.Pass, sel.Stat)
				n += statOf(fin.Device.Pass, sel.Pass, sel.Stat)
			}
			if o == n || (o == 0 && n == 0) {
				continue
			}
			t.add(e.Config.ID, sel.Pass, sel.Stat, fmt.Sprint(o), fmt.Sprint(n), pct(n, o))
		}
	}
	return "Fig. 6 — LLVM-style statistics, original vs ORAQL compilation\n" + t.String()
}

// Fig7 renders the per-kernel register / stack-frame changes of the
// device compilation (TestSNAP Kokkos-CUDA in the paper).
func Fig7(e *Experiment) string {
	t := &table{header: []string{"Id", "Kernel", "#regs orig", "#stack orig", "#regs ORAQL", "#stack ORAQL", "d-regs", "d-stack"}}
	base := e.Probe.Baseline.Compile.Device
	fin := e.Probe.Final.Compile.Device
	if base == nil || fin == nil {
		return "Fig. 7 — (no device compilation in " + e.Config.ID + ")\n"
	}
	id := 0
	for _, bf := range base.Code.Funcs {
		if !bf.IsKernel {
			continue
		}
		var ff *codegen.FuncStats
		for i := range fin.Code.Funcs {
			if fin.Code.Funcs[i].Name == bf.Name {
				ff = &fin.Code.Funcs[i]
				break
			}
		}
		if ff == nil {
			continue
		}
		id++
		t.add(fmt.Sprint(id), bf.Name,
			fmt.Sprint(bf.RegsUsed), fmt.Sprint(bf.StackBytes),
			fmt.Sprint(ff.RegsUsed), fmt.Sprint(ff.StackBytes),
			pct(int64(ff.RegsUsed), int64(bf.RegsUsed)),
			pct(ff.StackBytes, bf.StackBytes))
	}
	return fmt.Sprintf("Fig. 7 — Per-kernel static properties (%s device compilation)\n%s", e.Config.ID, t.String())
}

// OccupancyRegBudget is the register budget of the occupancy model: a
// kernel using more registers than this loses occupancy 1/regs-wise,
// the mechanism behind the paper's GridMini kernel slowdown.
const OccupancyRegBudget = 24.0

// KernelTime converts device cycles + register usage into the modeled
// kernel time (arbitrary units).
func KernelTime(cycles int64, regs int) float64 {
	occ := 1.0
	if float64(regs) > OccupancyRegBudget {
		occ = OccupancyRegBudget / float64(regs)
	}
	return float64(cycles) / occ
}

// Runtime renders the dynamic-execution comparison: executed
// instructions, cycle cost, and (for offload configs) modeled kernel
// time, original vs ORAQL — the numbers quoted in the running text of
// Section V.
func Runtime(exps []*Experiment) string {
	t := &table{header: []string{"Benchmark", "Metric", "Original", "ORAQL", "Delta"}}
	for _, e := range exps {
		b := e.Probe.Baseline.Run
		f := e.Probe.Final.Run
		t.add(e.Config.ID, "# executed instructions", fmt.Sprint(b.Instrs), fmt.Sprint(f.Instrs), pct(f.Instrs, b.Instrs))
		t.add(e.Config.ID, "cycles (cost model)", fmt.Sprint(b.Cycles), fmt.Sprint(f.Cycles), pct(f.Cycles, b.Cycles))
		if b.DeviceInstrs > 0 {
			t.add(e.Config.ID, "device instructions", fmt.Sprint(b.DeviceInstrs), fmt.Sprint(f.DeviceInstrs), pct(f.DeviceInstrs, b.DeviceInstrs))
			bt := modeledKernelTime(e, true)
			ft := modeledKernelTime(e, false)
			t.add(e.Config.ID, "kernel time (occupancy model)", fmt.Sprintf("%.0f", bt), fmt.Sprintf("%.0f", ft),
				fmt.Sprintf("%+.1f%%", 100*(ft-bt)/bt))
		}
	}
	return "Runtime comparison — original vs (almost) perfect alias information\n" + t.String()
}

// modeledKernelTime sums KernelTime over launched kernels.
func modeledKernelTime(e *Experiment, baseline bool) float64 {
	out := e.Probe.Final
	if baseline {
		out = e.Probe.Baseline
	}
	code := out.Compile.Device
	if code == nil {
		return 0
	}
	regs := map[string]int{}
	for _, f := range code.Code.Funcs {
		regs[f.Name] = f.RegsUsed
	}
	total := 0.0
	names := out.Run.KernelNames()
	for _, k := range names {
		total += KernelTime(out.Run.KernelCycles[k], regs[k])
	}
	return total
}

// ProbingEffort renders the driver-side counters (compiles, tests run,
// tests skipped via the executable hash cache, speculative tests of the
// parallel driver).
func ProbingEffort(exps []*Experiment) string {
	t := &table{header: []string{"Benchmark", "Compiles", "Tests run", "Tests cached",
		"Speculated", "Wasted", "Final seq len", "Pess in seq"}}
	for _, e := range exps {
		t.add(e.Config.ID,
			fmt.Sprint(e.Probe.Compiles), fmt.Sprint(e.Probe.TestsRun), fmt.Sprint(e.Probe.TestsCached),
			fmt.Sprint(e.Probe.TestsSpeculated), fmt.Sprint(e.Probe.TestsWasted),
			fmt.Sprint(len(e.Probe.FinalSeq)), fmt.Sprint(e.Probe.FinalSeq.CountPessimistic()))
	}
	return "Probing effort (paper Section IV-B mechanisms)\n" + t.String()
}

// PassTiming renders the -time-passes view of each configuration's
// final compilation: total pipeline wall time, the most expensive
// pass, and the analysis manager's cache economy.
func PassTiming(exps []*Experiment) string {
	t := &table{header: []string{"Benchmark", "Pipeline ms", "Hottest pass", "Pass runs",
		"Analysis hits", "Analysis misses", "Hit rate"}}
	for _, e := range exps {
		tm := e.Probe.Final.Compile.Timing()
		entries := tm.Entries()
		hottest := "-"
		var runs int64
		if len(entries) > 0 {
			hottest = entries[0].Pass
		}
		for _, pt := range entries {
			runs += pt.Runs
		}
		var hits, misses int64
		for _, as := range e.Probe.Final.Compile.AnalysisStats() {
			hits += as.Hits
			misses += as.Misses
		}
		rate := "n/a"
		if hits+misses > 0 {
			rate = fmt.Sprintf("%.1f%%", 100*float64(hits)/float64(hits+misses))
		}
		t.add(e.Config.ID, fmt.Sprintf("%.2f", float64(tm.Total().Microseconds())/1000),
			hottest, fmt.Sprint(runs), fmt.Sprint(hits), fmt.Sprint(misses), rate)
	}
	return "Pass timing (-time-passes analogue, final compilation per config)\n" + t.String()
}

// Fig3 renders the pessimistic-query dump of a configuration in the
// style of the paper's Fig. 3.
func Fig3(e *Experiment) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Fig. 3 — Pessimistically answered queries (%s)\n", e.Config.ID)
	n := 0
	for _, rec := range e.Probe.Final.Compile.Records() {
		if rec.Optimistic {
			continue
		}
		n++
		fmt.Fprintf(&sb, "Executing Pass '%s' on Function '%s'...\n", rec.Pass, rec.Func)
		fmt.Fprintf(&sb, "[ORAQL] Pessimistic query [Cached 0]\n")
		fmt.Fprintf(&sb, "[ORAQL] - %s [%s]\n", describePtr(rec.A.Ptr), rec.A.Size)
		fmt.Fprintf(&sb, "[ORAQL] - %s [%s]\n", describePtr(rec.B.Ptr), rec.B.Size)
		fmt.Fprintf(&sb, "[ORAQL] Scope: %s\n", rec.Func)
		la, lb := srcLocOf(rec.A.Ptr, rec.A.Instr), srcLocOf(rec.B.Ptr, rec.B.Instr)
		if la != "" || lb != "" {
			fmt.Fprintf(&sb, "[ORAQL] LocA: %s\n[ORAQL] LocB: %s\n", la, lb)
		}
		fmt.Fprintf(&sb, "[ORAQL] (served from cache %d more times)\n", rec.CacheHits)
	}
	if n == 0 {
		sb.WriteString("(configuration verified fully optimistic: no pessimistic queries)\n")
	}
	return sb.String()
}

// describePtr renders the pointer's defining instruction (Fig. 3 shows
// the full IR of both sides).
func describePtr(v ir.Value) string {
	if in, ok := v.(*ir.Instr); ok {
		return in.String()
	}
	return fmt.Sprintf("%s %s", v.Type(), v.Ident())
}

// srcLocOf extracts the best available source location of a query side.
func srcLocOf(ptr ir.Value, access *ir.Instr) string {
	if in, ok := ptr.(*ir.Instr); ok && in.Loc.IsValid() {
		return in.Loc.String()
	}
	if access != nil && access.Loc.IsValid() {
		return access.Loc.String()
	}
	return ""
}

// SortByFig4Order orders experiments by the registry (Fig. 4) order.
func SortByFig4Order(exps []*Experiment) {
	order := map[string]int{}
	for i, c := range apps.All() {
		order[c.ID] = i
	}
	sort.SliceStable(exps, func(i, j int) bool {
		return order[exps[i].Config.ID] < order[exps[j].Config.ID]
	})
}
