package report

import (
	"fmt"
	"testing"
)

// TestFullEvaluation runs the entire evaluation and renders every
// table; -v shows the measured tables for eyeballing against the
// paper.
func TestFullEvaluation(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation in short mode")
	}
	exps, err := RunAll(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	SortByFig4Order(exps)
	fmt.Println(Fig4(exps, true))
	fmt.Println(Fig5())
	fmt.Println(Fig6(exps))
	for _, e := range exps {
		if e.Config.ID == "testsnap-kokkos-cuda" {
			fmt.Println(Fig7(e))
		}
		if e.Config.ID == "testsnap-openmp" {
			fmt.Println(Fig3(e))
		}
	}
	fmt.Println(Runtime(exps))
	fmt.Println(ProbingEffort(exps))
	fmt.Println(PassTiming(exps))
}
