package report

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// TriageArtifactID derives the stable content-addressed handle of a
// triage artifact: the sha256 of the minimized reproducer plus the
// configuration (variant/app) it diverged under, length-prefixed so
// the pair cannot be forged by moving bytes across the boundary. The
// same handle names the artifact in warehouse records, fuzz JSON
// reports, and /events log lines, so a finding can be chased across
// all three without a join table.
func TriageArtifactID(reproducer, config string) string {
	h := sha256.New()
	fmt.Fprintf(h, "%d:%s|%d:%s", len(config), config, len(reproducer), reproducer)
	return hex.EncodeToString(h.Sum(nil))
}
