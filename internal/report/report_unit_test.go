package report

import (
	"strings"
	"testing"
)

func TestPct(t *testing.T) {
	if got := pct(150, 100); got != "+50.0%" {
		t.Errorf("pct = %q", got)
	}
	if got := pct(50, 100); got != "-50.0%" {
		t.Errorf("pct = %q", got)
	}
	if got := pct(5, 0); got != "n/a" {
		t.Errorf("pct(x, 0) = %q", got)
	}
}

func TestTableAlignment(t *testing.T) {
	tab := &table{header: []string{"A", "LongHeader"}}
	tab.add("wide-cell", "x")
	out := tab.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("table has %d lines", len(lines))
	}
	if len(lines[0]) != len(lines[1]) {
		t.Error("header and separator must align")
	}
	if !strings.Contains(lines[2], "wide-cell") {
		t.Error("row content missing")
	}
}

func TestKernelTimeOccupancyModel(t *testing.T) {
	// Under the budget: time == cycles.
	if got := KernelTime(1000, int(OccupancyRegBudget)); got != 1000 {
		t.Errorf("at-budget kernel time = %v", got)
	}
	// Over the budget: time scales by regs/budget.
	over := KernelTime(1000, int(OccupancyRegBudget*2))
	if over != 2000 {
		t.Errorf("double-pressure kernel time = %v, want 2000", over)
	}
	if KernelTime(1000, 1) != 1000 {
		t.Error("tiny kernels must not be rewarded beyond full occupancy")
	}
}

func TestFig5Static(t *testing.T) {
	out := Fig5()
	for _, want := range []string{"go-oraql substrate", Version, "x86_64", "gpu-sim"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig5 missing %q:\n%s", want, out)
		}
	}
}
