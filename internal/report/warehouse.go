package report

import (
	"fmt"
	"strings"

	"github.com/oraql/go-oraql/internal/warehouse"
)

// WarehouseTable renders the forensics corpus as the evaluation-table
// view: corpus totals, then the cross-campaign recurrences by query
// shape and by guilty pass — the "which pass/query shapes recur across
// apps?" answer in the same tabular style as the paper tables. The
// rows come straight from Manifest.Query, so the table is
// byte-identical for any worker count or process split that produced
// the corpus.
func WarehouseTable(m *warehouse.Manifest) string {
	st := m.Stats()
	var b strings.Builder
	fmt.Fprintf(&b, "Forensics warehouse: %d records (%d probe, %d fuzz, %d triage), %d divergent\n",
		st.Records, st.Probes, st.Fuzz, st.Triage, st.Divergent)
	fmt.Fprintf(&b, "corpus spans %d apps, %d guilty passes, %d query shapes, %d functions; %d optimistic / %d pessimistic verdicts\n",
		st.Apps, st.Passes, st.Shapes, st.Funcs, st.Opt, st.Pess)

	shapes := &table{header: []string{"Query shape", "Apps", "Records", "Opt", "Pess"}}
	for _, r := range m.Query(warehouse.QueryOptions{By: "shape"}) {
		shapes.add(r.Key, fmt.Sprint(len(r.Apps)), fmt.Sprint(r.Records),
			fmt.Sprint(r.Opt), fmt.Sprint(r.Pess))
	}
	b.WriteString("\nRecurrence by query shape (widest first)\n")
	b.WriteString(shapes.String())

	passes := &table{header: []string{"Guilty pass", "Apps", "Records"}}
	for _, r := range m.Query(warehouse.QueryOptions{By: "pass"}) {
		passes.add(r.Key, fmt.Sprint(len(r.Apps)), fmt.Sprint(r.Records))
	}
	b.WriteString("\nRecurrence by guilty pass (passes convicted by at least one campaign)\n")
	b.WriteString(passes.String())
	return b.String()
}
