// Package client is the Go client for the oraql-serve HTTP API: the
// `oraql probe -server` mode and the serve-smoke/bench tooling talk to
// the service through it.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"time"

	"github.com/oraql/go-oraql/internal/service"
)

// RetryPolicy governs retries of idempotent requests. Only GETs are
// ever retried: a POST that failed mid-flight may have side effects
// (a submitted job, a compilation already running), so resubmitting it
// is the caller's decision, never the transport's. Retryable failures
// are network errors and 502/503/504 replies — a fleet instance that
// is draining, queue-full, or mid-restart answers 503, and the retry
// (with jittered exponential backoff) usually lands after the blip or
// on a healthier instance behind the same load balancer.
type RetryPolicy struct {
	// MaxAttempts is the total try budget, first attempt included
	// (default 3).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; it doubles per
	// retry (default 50ms).
	BaseDelay time.Duration
	// MaxDelay caps the backoff growth (default 2s).
	MaxDelay time.Duration

	// Test seams (nil = real clock/rand).
	sleep  func(time.Duration)
	jitter func(n int64) int64
}

func (p *RetryPolicy) attempts() int {
	if p == nil || p.MaxAttempts <= 0 {
		return 3
	}
	return p.MaxAttempts
}

// backoffFor sleeps the jittered exponential backoff before retry
// number retry (0-based): uniform in [d/2, d] with d = Base<<retry
// capped at MaxDelay, so a thundering herd of retries desynchronizes.
func (p *RetryPolicy) backoffFor(retry int) {
	base, cap_, sleep, jitter := 50*time.Millisecond, 2*time.Second, time.Sleep, rand.Int63n
	if p != nil {
		if p.BaseDelay > 0 {
			base = p.BaseDelay
		}
		if p.MaxDelay > 0 {
			cap_ = p.MaxDelay
		}
		if p.sleep != nil {
			sleep = p.sleep
		}
		if p.jitter != nil {
			jitter = p.jitter
		}
	}
	d := base << retry
	if d > cap_ || d <= 0 {
		d = cap_
	}
	sleep(d/2 + time.Duration(jitter(int64(d/2)+1)))
}

// retryableStatus reports whether an HTTP status is worth a retry.
func retryableStatus(code int) bool {
	return code == http.StatusBadGateway || code == http.StatusServiceUnavailable || code == http.StatusGatewayTimeout
}

// Client talks to one oraql-serve instance.
type Client struct {
	// Base is the server address, e.g. "http://localhost:8347".
	Base string
	// HTTP overrides the transport (default http.DefaultClient).
	HTTP *http.Client
	// Retry, when non-nil, enables retries of idempotent requests.
	Retry *RetryPolicy
}

// New returns a client for the given base URL; a bare host:port is
// taken as http.
func New(base string) *Client {
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return &Client{Base: strings.TrimRight(base, "/")}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// do issues one request and decodes the JSON reply into out,
// translating non-2xx replies into the server's error envelope.
// Idempotent requests (GETs) are retried per c.Retry; everything else
// gets exactly one attempt.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var payload []byte
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return err
		}
		payload = data
	}
	attempts := 1
	if c.Retry != nil && method == http.MethodGet {
		attempts = c.Retry.attempts()
	}
	var err error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			c.Retry.backoffFor(attempt - 1)
			if ctx.Err() != nil {
				return err // the pre-backoff failure, not the cancellation
			}
		}
		var retryable bool
		retryable, err = c.doOnce(ctx, method, path, payload, out)
		if err == nil || !retryable || ctx.Err() != nil {
			return err
		}
	}
	return err
}

// doOnce is one request/response exchange. retryable marks failures a
// fresh attempt could fix (transport errors, 502/503/504).
func (c *Client) doOnce(ctx context.Context, method, path string, payload []byte, out any) (retryable bool, err error) {
	var rd io.Reader
	if payload != nil {
		rd = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.Base+path, rd)
	if err != nil {
		return false, err
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return true, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return true, err
	}
	if resp.StatusCode/100 != 2 {
		var envelope service.ErrorResponse
		if json.Unmarshal(data, &envelope) == nil && envelope.Error != "" {
			return retryableStatus(resp.StatusCode), fmt.Errorf("server: %s (HTTP %d)", envelope.Error, resp.StatusCode)
		}
		return retryableStatus(resp.StatusCode), fmt.Errorf("server: HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(data)))
	}
	if out == nil {
		return false, nil
	}
	return false, json.Unmarshal(data, out)
}

// Compile runs a synchronous compilation.
func (c *Client) Compile(ctx context.Context, req *service.CompileRequest) (*service.CompileResponse, error) {
	var out service.CompileResponse
	if err := c.do(ctx, http.MethodPost, "/v1/compile", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// CompileBatch resolves a list of compile requests in one round trip;
// the server deduplicates items by content hash and returns per-item
// results in request order.
func (c *Client) CompileBatch(ctx context.Context, req *service.BatchCompileRequest) (*service.BatchCompileResponse, error) {
	var out service.BatchCompileResponse
	if err := c.do(ctx, http.MethodPost, "/v1/compile/batch", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Artifact fetches a cached compile response by its result-cache key
// ("<module-hash>:<config-hash>") without triggering a compilation.
// A 404 (no artifact) comes back as an error carrying the envelope.
func (c *Client) Artifact(ctx context.Context, key string) (*service.CompileResponse, error) {
	var out service.CompileResponse
	if err := c.do(ctx, http.MethodGet, "/v1/artifact/"+key, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Probe submits a probe campaign and returns the queued job.
func (c *Client) Probe(ctx context.Context, req *service.ProbeRequest) (*service.JobInfo, error) {
	var out service.JobInfo
	if err := c.do(ctx, http.MethodPost, "/v1/probe", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Fuzz submits a fuzzing campaign and returns the queued job.
func (c *Client) Fuzz(ctx context.Context, req *service.FuzzRequest) (*service.JobInfo, error) {
	var out service.JobInfo
	if err := c.do(ctx, http.MethodPost, "/v1/fuzz", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Campaign submits a scripted campaign and returns the queued job.
func (c *Client) Campaign(ctx context.Context, req *service.CampaignRequest) (*service.JobInfo, error) {
	var out service.JobInfo
	if err := c.do(ctx, http.MethodPost, "/v1/campaign", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Warehouse runs one synchronous forensics operation (stats, query,
// export) against the server's warehouse corpus.
func (c *Client) Warehouse(ctx context.Context, req *service.WarehouseRequest) (*service.WarehouseResponse, error) {
	var out service.WarehouseResponse
	if err := c.do(ctx, http.MethodPost, "/v1/warehouse", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Registry lists the registered extension points.
func (c *Client) Registry(ctx context.Context) ([]service.RegistryInfo, error) {
	var out []service.RegistryInfo
	if err := c.do(ctx, http.MethodGet, "/v1/registry", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Job polls one job's status.
func (c *Client) Job(ctx context.Context, id string) (*service.JobInfo, error) {
	var out service.JobInfo
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Cancel cancels a queued or running job.
func (c *Client) Cancel(ctx context.Context, id string) (*service.JobInfo, error) {
	var out service.JobInfo
	if err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Wait polls a job until it reaches a terminal state.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (*service.JobInfo, error) {
	if poll <= 0 {
		poll = 250 * time.Millisecond
	}
	for {
		info, err := c.Job(ctx, id)
		if err != nil {
			return nil, err
		}
		if info.Terminal() {
			return info, nil
		}
		select {
		case <-time.After(poll):
		case <-ctx.Done():
			return info, ctx.Err()
		}
	}
}

// Events streams a job's progress lines to w until the job finishes
// or ctx is cancelled.
func (c *Client) Events(ctx context.Context, id string, w io.Writer) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("server: HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(data)))
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		fmt.Fprintln(w, sc.Text())
	}
	return sc.Err()
}

// Metrics scrapes the Prometheus text endpoint.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	return string(data), err
}

// Health polls /healthz.
func (c *Client) Health(ctx context.Context) (*service.HealthResponse, error) {
	var out service.HealthResponse
	// /healthz answers 503 while draining but still encodes the body;
	// decode manually to keep the info.
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/healthz", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}
