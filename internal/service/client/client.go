// Package client is the Go client for the oraql-serve HTTP API: the
// `oraql probe -server` mode and the serve-smoke/bench tooling talk to
// the service through it.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"github.com/oraql/go-oraql/internal/service"
)

// Client talks to one oraql-serve instance.
type Client struct {
	// Base is the server address, e.g. "http://localhost:8347".
	Base string
	// HTTP overrides the transport (default http.DefaultClient).
	HTTP *http.Client
}

// New returns a client for the given base URL; a bare host:port is
// taken as http.
func New(base string) *Client {
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return &Client{Base: strings.TrimRight(base, "/")}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// do issues one request and decodes the JSON reply into out,
// translating non-2xx replies into the server's error envelope.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.Base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		var envelope service.ErrorResponse
		if json.Unmarshal(data, &envelope) == nil && envelope.Error != "" {
			return fmt.Errorf("server: %s (HTTP %d)", envelope.Error, resp.StatusCode)
		}
		return fmt.Errorf("server: HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(data)))
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// Compile runs a synchronous compilation.
func (c *Client) Compile(ctx context.Context, req *service.CompileRequest) (*service.CompileResponse, error) {
	var out service.CompileResponse
	if err := c.do(ctx, http.MethodPost, "/v1/compile", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Probe submits a probe campaign and returns the queued job.
func (c *Client) Probe(ctx context.Context, req *service.ProbeRequest) (*service.JobInfo, error) {
	var out service.JobInfo
	if err := c.do(ctx, http.MethodPost, "/v1/probe", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Fuzz submits a fuzzing campaign and returns the queued job.
func (c *Client) Fuzz(ctx context.Context, req *service.FuzzRequest) (*service.JobInfo, error) {
	var out service.JobInfo
	if err := c.do(ctx, http.MethodPost, "/v1/fuzz", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Campaign submits a scripted campaign and returns the queued job.
func (c *Client) Campaign(ctx context.Context, req *service.CampaignRequest) (*service.JobInfo, error) {
	var out service.JobInfo
	if err := c.do(ctx, http.MethodPost, "/v1/campaign", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Registry lists the registered extension points.
func (c *Client) Registry(ctx context.Context) ([]service.RegistryInfo, error) {
	var out []service.RegistryInfo
	if err := c.do(ctx, http.MethodGet, "/v1/registry", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Job polls one job's status.
func (c *Client) Job(ctx context.Context, id string) (*service.JobInfo, error) {
	var out service.JobInfo
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Cancel cancels a queued or running job.
func (c *Client) Cancel(ctx context.Context, id string) (*service.JobInfo, error) {
	var out service.JobInfo
	if err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Wait polls a job until it reaches a terminal state.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (*service.JobInfo, error) {
	if poll <= 0 {
		poll = 250 * time.Millisecond
	}
	for {
		info, err := c.Job(ctx, id)
		if err != nil {
			return nil, err
		}
		if info.Terminal() {
			return info, nil
		}
		select {
		case <-time.After(poll):
		case <-ctx.Done():
			return info, ctx.Err()
		}
	}
}

// Events streams a job's progress lines to w until the job finishes
// or ctx is cancelled.
func (c *Client) Events(ctx context.Context, id string, w io.Writer) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("server: HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(data)))
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		fmt.Fprintln(w, sc.Text())
	}
	return sc.Err()
}

// Metrics scrapes the Prometheus text endpoint.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	return string(data), err
}

// Health polls /healthz.
func (c *Client) Health(ctx context.Context) (*service.HealthResponse, error) {
	var out service.HealthResponse
	// /healthz answers 503 while draining but still encodes the body;
	// decode manually to keep the info.
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/healthz", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}
