package client

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/oraql/go-oraql/internal/service"
)

// flakyServer answers failStatus for the first fail requests on every
// path, then succeeds.
func flakyServer(t *testing.T, fail int, failStatus int) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= int64(fail) {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(failStatus)
			w.Write([]byte(`{"error":"queue full","code":503}`))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		switch {
		case strings.HasPrefix(r.URL.Path, "/v1/artifact/"):
			w.Write([]byte(`{"cached":true,"module_hash":"m","config_hash":"c","compile_ms":1,"result":{}}`))
		default:
			w.Write([]byte(`{"id":"j1","kind":"probe","state":"queued","created":"2026-01-01T00:00:00Z"}`))
		}
	}))
	t.Cleanup(srv.Close)
	return srv, &calls
}

// testPolicy records backoff delays instead of sleeping.
func testPolicy(maxAttempts int, slept *[]time.Duration) *RetryPolicy {
	return &RetryPolicy{
		MaxAttempts: maxAttempts,
		BaseDelay:   40 * time.Millisecond,
		MaxDelay:    time.Second,
		sleep:       func(d time.Duration) { *slept = append(*slept, d) },
		jitter:      func(n int64) int64 { return n / 2 },
	}
}

// A GET that hits 503s is retried with backoff until it succeeds.
func TestRetryGetOn503(t *testing.T) {
	srv, calls := flakyServer(t, 2, http.StatusServiceUnavailable)
	var slept []time.Duration
	c := New(srv.URL)
	c.Retry = testPolicy(4, &slept)
	resp, err := c.Artifact(context.Background(), "m:c")
	if err != nil {
		t.Fatalf("Artifact after retries: %v", err)
	}
	if !resp.Cached || resp.ModuleHash != "m" {
		t.Fatalf("unexpected artifact: %+v", resp)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want 3", got)
	}
	if len(slept) != 2 {
		t.Fatalf("%d backoffs recorded, want 2: %v", len(slept), slept)
	}
}

// Backoff doubles per retry and stays inside the jitter envelope
// [d/2, d] for d = Base<<retry.
func TestRetryBackoffJitterBounds(t *testing.T) {
	srv, _ := flakyServer(t, 3, http.StatusBadGateway)
	var slept []time.Duration
	c := New(srv.URL)
	c.Retry = testPolicy(4, &slept)
	c.Retry.jitter = nil // real jitter: verify the bounds hold
	if _, err := c.Artifact(context.Background(), "m:c"); err != nil {
		t.Fatalf("Artifact: %v", err)
	}
	base := c.Retry.BaseDelay
	if len(slept) != 3 {
		t.Fatalf("%d backoffs, want 3", len(slept))
	}
	for i, d := range slept {
		lo, hi := (base<<i)/2, base<<i
		if d < lo || d > hi+time.Millisecond {
			t.Fatalf("backoff %d = %v outside [%v, %v]", i, d, lo, hi)
		}
	}
}

// A network failure (connection refused) on a GET is retried too.
func TestRetryGetOnNetworkError(t *testing.T) {
	srv, calls := flakyServer(t, 0, 0)
	dead := httptest.NewServer(http.HandlerFunc(nil))
	dead.Close() // refused from now on
	var slept []time.Duration
	hop := 0
	c := New(dead.URL)
	c.Retry = testPolicy(3, &slept)
	// Redirect to the live server after the first refused attempt by
	// swapping Base inside the sleep seam (the retry loop re-reads it
	// via doOnce's request build).
	c.Retry.sleep = func(d time.Duration) {
		slept = append(slept, d)
		if hop == 0 {
			c.Base = srv.URL
			hop++
		}
	}
	if _, err := c.Artifact(context.Background(), "m:c"); err != nil {
		t.Fatalf("Artifact after failover: %v", err)
	}
	if calls.Load() != 1 || len(slept) != 1 {
		t.Fatalf("calls=%d slept=%d, want 1 and 1", calls.Load(), len(slept))
	}
}

// Non-idempotent POSTs are never retried, even on 503 queue-full with
// a retry policy configured: the server must see exactly one attempt.
func TestNoRetryPostOn503(t *testing.T) {
	srv, calls := flakyServer(t, 100, http.StatusServiceUnavailable)
	var slept []time.Duration
	c := New(srv.URL)
	c.Retry = testPolicy(5, &slept)
	_, err := c.Probe(context.Background(), &service.ProbeRequest{})
	if err == nil || !strings.Contains(err.Error(), "queue full") {
		t.Fatalf("expected the 503 envelope, got %v", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d POST attempts, want exactly 1", got)
	}
	if len(slept) != 0 {
		t.Fatalf("POST slept %v; must not back off", slept)
	}
}

// Non-retryable statuses (404) stop a GET immediately.
func TestNoRetryGetOn404(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusNotFound)
		w.Write([]byte(`{"error":"no artifact","code":404}`))
	}))
	t.Cleanup(srv.Close)
	var slept []time.Duration
	c := New(srv.URL)
	c.Retry = testPolicy(5, &slept)
	if _, err := c.Artifact(context.Background(), "nope"); err == nil {
		t.Fatal("expected an error")
	}
	if calls.Load() != 1 || len(slept) != 0 {
		t.Fatalf("calls=%d slept=%d; 404 must not retry", calls.Load(), len(slept))
	}
}

// Cancellation between attempts stops the retry loop.
func TestRetryStopsOnCancel(t *testing.T) {
	srv, calls := flakyServer(t, 100, http.StatusServiceUnavailable)
	ctx, cancel := context.WithCancel(context.Background())
	var slept []time.Duration
	c := New(srv.URL)
	c.Retry = testPolicy(10, &slept)
	c.Retry.sleep = func(d time.Duration) {
		slept = append(slept, d)
		cancel()
	}
	_, err := c.Artifact(ctx, "m:c")
	if err == nil {
		t.Fatal("expected an error")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d attempts after cancel, want 1", got)
	}
}
