// Package service is the oraql-serve subsystem: an HTTP/JSON service
// (stdlib only) exposing the repo's three core workloads — one-shot
// compilation, ORAQL probe campaigns, and differential-fuzzing
// campaigns — backed by a bounded job queue with a reusable worker
// pool, a cross-request compile-result cache keyed by (module-hash,
// config-hash), per-request deadlines and cancellation threaded down
// into the pipeline, Prometheus-text metrics, and graceful shutdown
// that drains the queue and cancels in-flight jobs.
//
// Synchronous endpoint:
//
//	POST /v1/compile       program + options -> stats, timing, IR
//
// Asynchronous job endpoints (POST returns a job id):
//
//	POST /v1/probe         program + probe options -> probe job
//	POST /v1/fuzz          campaign options -> fuzz job
//	POST /v1/campaign      .oraql script body -> scripted campaign job
//	GET  /v1/jobs/{id}          poll status/result
//	GET  /v1/jobs/{id}/events   stream progress lines
//	DELETE /v1/jobs/{id}        cancel
//
// Campaign scripts run sandboxed: the interpreter has no filesystem
// or exec bindings at all, and the server enforces an instruction
// budget and a wall-clock limit on every script. The script's sha256
// is recorded in the job and exported in /metrics.
//
// Forensics warehouse (synchronous, over the shared -cache-dir):
//
//	GET  /v1/warehouse     corpus stats
//	POST /v1/warehouse     {op: stats|query|export, ...} -> result
//
// Observability:
//
//	GET /v1/registry       registered strategies/chains/configs/grammars
//	GET /metrics           Prometheus text format
//	GET /healthz           liveness + queue headroom
package service

import (
	"encoding/json"
	"time"
)

// ProgramSpec selects the program of a compile or probe request:
// either an inline minic source or the id of a registered benchmark
// configuration (`oraql list`).
type ProgramSpec struct {
	// ConfigID names a registered benchmark configuration; when set,
	// every other field is ignored.
	ConfigID string `json:"config_id,omitempty"`

	// Source is inline minic source text.
	Source     string `json:"source,omitempty"`
	SourceFile string `json:"source_file,omitempty"`
	// Model is the parallel model: seq (default), openmp, tasks, mpi,
	// offload.
	Model string `json:"model,omitempty"`
	// Fortran selects the Fortran dialect (descriptor arrays, no TBAA).
	Fortran bool `json:"fortran,omitempty"`
	// Views lowers arrays as Kokkos/Thrust-style boxed heap views.
	Views bool `json:"views,omitempty"`
	// Ranks is the simulated MPI rank count for runs (default 1).
	Ranks int `json:"ranks,omitempty"`
}

// CompileOptions tunes one /v1/compile compilation.
type CompileOptions struct {
	// OptLevel: 0 = default (-O3), 1 = -O1, -1 = frontend output only.
	OptLevel int `json:"opt_level,omitempty"`
	// FullAAChain additionally enables the CFL points-to analyses.
	FullAAChain bool `json:"full_aa_chain,omitempty"`
	// AAChain selects the alias-analysis chain by registered name
	// ("default", "full") or as a comma-separated analysis list; takes
	// precedence over FullAAChain. GET /v1/registry lists the names.
	AAChain string `json:"aa_chain,omitempty"`
	// DisableAAQueryCache / DisableAnalysisCache are the ablation knobs.
	DisableAAQueryCache  bool `json:"disable_aa_query_cache,omitempty"`
	DisableAnalysisCache bool `json:"disable_analysis_cache,omitempty"`
	// ORAQL enables the ORAQL responder; Seq is the response sequence
	// in -opt-aa-seq syntax ("1 0 1 ..."), Target the module filter.
	ORAQL  bool   `json:"oraql,omitempty"`
	Seq    string `json:"seq,omitempty"`
	Target string `json:"target,omitempty"`
	// WithIR embeds the optimized textual IR in the response.
	WithIR bool `json:"with_ir,omitempty"`
}

// CompileRequest is the /v1/compile body.
type CompileRequest struct {
	Program ProgramSpec    `json:"program"`
	Options CompileOptions `json:"options"`
}

// CompileResponse is the /v1/compile reply.
type CompileResponse struct {
	// Cached reports whether the reply was served from the
	// cross-request result cache.
	Cached bool `json:"cached"`
	// ModuleHash/ConfigHash form the result-cache key.
	ModuleHash string `json:"module_hash"`
	ConfigHash string `json:"config_hash"`
	// CompileMS is the wall time of the compilation that produced the
	// entry (not of this request when Cached).
	CompileMS float64 `json:"compile_ms"`
	// Result carries the stats/timing/IR encoding from internal/report.
	Result json.RawMessage `json:"result"`
}

// BatchCompileRequest is the /v1/compile/batch body: a list of compile
// requests resolved in one round trip. Items sharing a content hash
// are deduplicated server-side and compiled once.
type BatchCompileRequest struct {
	Items []CompileRequest `json:"items"`
}

// BatchCompileItem is one per-item outcome, in request order. Exactly
// one of Response and Error is set; Code carries the HTTP status the
// item would have received from /v1/compile.
type BatchCompileItem struct {
	Response *CompileResponse `json:"response,omitempty"`
	Error    string           `json:"error,omitempty"`
	Code     int              `json:"code,omitempty"`
}

// BatchCompileResponse is the /v1/compile/batch reply.
type BatchCompileResponse struct {
	Items []BatchCompileItem `json:"items"`
	// Unique counts the distinct content keys in the batch — the
	// compilations the batch could cost at most, before the caches.
	Unique int `json:"unique"`
}

// ProbeRequest is the /v1/probe body; the reply is a JobInfo.
type ProbeRequest struct {
	Program ProgramSpec `json:"program"`
	// Strategy is the bisection strategy by registered name: chunked
	// (default), freq, or linear. GET /v1/registry lists the names.
	Strategy string `json:"strategy,omitempty"`
	// AAChain selects the alias-analysis chain for every probe
	// compilation (registered name or comma-separated analysis list).
	AAChain string `json:"aa_chain,omitempty"`
	// Workers bounds the speculative probing pool (0 = NumCPU).
	Workers int `json:"workers,omitempty"`
	// MaxTests bounds probing effort (0 = no bound).
	MaxTests int `json:"max_tests,omitempty"`
	// Target restricts ORAQL to matching modules (-opt-aa-target).
	Target string `json:"target,omitempty"`
	// DisableExeCache turns off the executable-hash test cache.
	DisableExeCache bool `json:"disable_exe_cache,omitempty"`
}

// FuzzRequest is the /v1/fuzz body; the reply is a JobInfo.
type FuzzRequest struct {
	// N is the number of generated programs (default 100).
	N int `json:"n,omitempty"`
	// Seed is the first generator seed (default 1).
	Seed int64 `json:"seed,omitempty"`
	// Workers bounds the campaign pool (0 = GOMAXPROCS).
	Workers int `json:"workers,omitempty"`
	// Stmts is the statements-per-program knob (0 = generator default).
	Stmts int `json:"stmts,omitempty"`
	// Grammar selects a registered program-generator grammar profile
	// (default, scalar, no-pointers, sequential, parallel-heavy, ...).
	Grammar string `json:"grammar,omitempty"`
	// Inject runs the fault-injection self-test variant.
	Inject bool `json:"inject,omitempty"`
	// NoTriage skips divergence triage (triage is on by default).
	NoTriage bool `json:"no_triage,omitempty"`
	// MaxDivergences stops the campaign early (0 = difftest default).
	MaxDivergences int `json:"max_divergences,omitempty"`
}

// CampaignRequest is the /v1/campaign body; the reply is a JobInfo.
// The script runs sandboxed: no filesystem or exec bindings exist,
// and the server clamps MaxSteps and the wall clock.
type CampaignRequest struct {
	// Script is the .oraql campaign script body.
	Script string `json:"script"`
	// Workers is the default worker budget for probe/sweep/fuzz calls
	// that do not set their own (0 = the packages' defaults).
	Workers int `json:"workers,omitempty"`
	// MaxSteps lowers the server's instruction budget for this script
	// (0 = server default; values above the server cap are clamped).
	MaxSteps int64 `json:"max_steps,omitempty"`
}

// CampaignResult is the result payload of a finished campaign job.
type CampaignResult struct {
	// Value is the script's top-level return value.
	Value json.RawMessage `json:"value"`
	// Steps is the instruction-budget units the script consumed.
	Steps int64 `json:"steps"`
	// ScriptSHA256 identifies the executed script body.
	ScriptSHA256 string `json:"script_sha256"`
}

// WarehouseRequest is the POST /v1/warehouse body: one synchronous
// forensics operation against the corpus accumulated in the server's
// shared persistent store.
type WarehouseRequest struct {
	// Op selects the operation: stats (default), query, export.
	Op string `json:"op,omitempty"`

	// Query filters and grouping (op "query").
	Kind    string `json:"kind,omitempty"`    // probe | fuzz | triage
	App     string `json:"app,omitempty"`     // restrict to one app config
	Grammar string `json:"grammar,omitempty"` // restrict to one grammar profile
	By      string `json:"by,omitempty"`      // pass | shape | func | grammar

	// Program is the module to export as a code property graph (op
	// "export"); AliasPairs caps per-function ALIAS edges (0 = default,
	// -1 = none).
	Program    ProgramSpec `json:"program,omitempty"`
	AliasPairs int         `json:"alias_pairs,omitempty"`
}

// WarehouseResponse is the /v1/warehouse reply. Result carries the
// op's payload: warehouse.Stats for stats, []warehouse.Recurrence for
// query, a warehouse.Graph for export — always deterministic bytes
// for a given corpus and program.
type WarehouseResponse struct {
	Op      string          `json:"op"`
	Records int             `json:"records"`
	Result  json.RawMessage `json:"result"`
}

// RegistryInfo is one entry of the /v1/registry reply.
type RegistryInfo struct {
	Kind        string `json:"kind"`
	Description string `json:"description"`
	Entries     []RegistryEntry `json:"entries"`
}

// RegistryEntry is one registered extension point.
type RegistryEntry struct {
	Name        string `json:"name"`
	Description string `json:"description"`
}

// Job states.
const (
	JobQueued   = "queued"
	JobRunning  = "running"
	JobDone     = "done"
	JobFailed   = "failed"
	JobCanceled = "canceled"
)

// JobInfo is the wire form of an asynchronous job.
type JobInfo struct {
	ID      string `json:"id"`
	Kind    string `json:"kind"` // probe | fuzz | campaign
	State   string `json:"state"`
	Created time.Time `json:"created"`
	Started time.Time `json:"started,omitempty"`
	Finished time.Time `json:"finished,omitempty"`
	// Error is set for failed/canceled jobs.
	Error string `json:"error,omitempty"`
	// ScriptSHA256 identifies the script body of campaign jobs.
	ScriptSHA256 string `json:"script_sha256,omitempty"`
	// Result is the job's JSON payload once done: a report.ProbeJSON
	// for probe jobs, a difftest.FuzzResult for fuzz jobs, a
	// CampaignResult for campaign jobs.
	Result json.RawMessage `json:"result,omitempty"`
}

// Terminal reports whether the job has reached a final state.
func (j *JobInfo) Terminal() bool {
	return j.State == JobDone || j.State == JobFailed || j.State == JobCanceled
}

// ErrorResponse is the uniform JSON error envelope of every endpoint.
type ErrorResponse struct {
	Error string `json:"error"`
	Code  int    `json:"code"`
}

// HealthResponse is the /healthz reply.
type HealthResponse struct {
	OK           bool  `json:"ok"`
	Draining     bool  `json:"draining"`
	QueueDepth   int   `json:"queue_depth"`
	QueueCap     int   `json:"queue_cap"`
	JobsInflight int64 `json:"jobs_inflight"`
}
