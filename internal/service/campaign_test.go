package service_test

// End-to-end tests of POST /v1/campaign: scripted campaigns run as
// sandboxed async jobs with streamed events, cancellation, and
// server-enforced instruction and wall-clock limits.

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"github.com/oraql/go-oraql/internal/service"
)

func waitDone(t *testing.T, cl interface {
	Wait(ctx context.Context, id string, poll time.Duration) (*service.JobInfo, error)
}, id string) *service.JobInfo {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	info, err := cl.Wait(ctx, id, 20*time.Millisecond)
	if err != nil {
		t.Fatalf("wait %s: %v", id, err)
	}
	return info
}

// TestCampaignEndToEnd runs a scripted probe campaign through the
// service and checks the result payload, the script hash in the job
// record, the streamed events, and the /metrics exposition.
func TestCampaignEndToEnd(t *testing.T) {
	_, cl, stop := newTestServer(t, service.Config{})
	defer stop()
	ctx := context.Background()

	script := `
		let r = probe({config: "minigmg-sse"})
		print("final seq:", r.final_seq)
		return {hash: r.exe_hash, optimistic: r.fully_optimistic}
	`
	sum := sha256.Sum256([]byte(script))
	wantSHA := hex.EncodeToString(sum[:])

	j, err := cl.Campaign(ctx, &service.CampaignRequest{Script: script})
	if err != nil {
		t.Fatalf("submit campaign: %v", err)
	}
	if j.Kind != "campaign" {
		t.Errorf("job kind = %q, want campaign", j.Kind)
	}
	if j.ScriptSHA256 != wantSHA {
		t.Errorf("job script sha = %q, want %q", j.ScriptSHA256, wantSHA)
	}

	info := waitDone(t, cl, j.ID)
	if info.State != service.JobDone {
		t.Fatalf("job state = %s (err %q)", info.State, info.Error)
	}
	if info.ScriptSHA256 != wantSHA {
		t.Errorf("finished job script sha = %q, want %q", info.ScriptSHA256, wantSHA)
	}
	var res service.CampaignResult
	if err := json.Unmarshal(info.Result, &res); err != nil {
		t.Fatalf("decode campaign result: %v", err)
	}
	if res.ScriptSHA256 != wantSHA {
		t.Errorf("result script sha = %q, want %q", res.ScriptSHA256, wantSHA)
	}
	if res.Steps == 0 {
		t.Error("campaign consumed zero steps")
	}
	var value map[string]any
	if err := json.Unmarshal(res.Value, &value); err != nil {
		t.Fatalf("decode campaign value: %v", err)
	}
	if value["optimistic"] != true {
		t.Errorf("minigmg-sse should probe fully optimistic, got %v", value)
	}
	if s, _ := value["hash"].(string); s == "" {
		t.Errorf("campaign value carries no exe hash: %v", value)
	}

	// Streamed events include the script's print() output.
	var events bytes.Buffer
	if err := cl.Events(ctx, j.ID, &events); err != nil {
		t.Fatalf("events: %v", err)
	}
	if !strings.Contains(events.String(), "final seq:") {
		t.Errorf("event stream missing print output:\n%s", events.String())
	}

	// The script hash and the kind-labeled job series are exported.
	text, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`oraql_campaign_scripts_total{sha256="` + wantSHA + `"} 1`,
		`oraql_jobs_total{kind="campaign",state="done"} 1`,
		`oraql_jobs_inflight{kind="campaign"} 0`,
		`oraql_jobs_inflight{kind="probe"} 0`,
		`oraql_jobs_inflight{kind="fuzz"} 0`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestCampaignSyntaxError pins the 400 path: a script that does not
// parse is rejected synchronously, with a line number, and never
// becomes a job.
func TestCampaignSyntaxError(t *testing.T) {
	_, cl, stop := newTestServer(t, service.Config{})
	defer stop()
	_, err := cl.Campaign(context.Background(), &service.CampaignRequest{Script: "let = 3"})
	if err == nil || !strings.Contains(err.Error(), "line 1") {
		t.Fatalf("got %v, want a line-1 syntax error", err)
	}
	if _, err := cl.Campaign(context.Background(), &service.CampaignRequest{}); err == nil ||
		!strings.Contains(err.Error(), "empty script") {
		t.Fatalf("got %v, want empty-script rejection", err)
	}
}

// TestCampaignInstructionLimit pins the sandbox budget: a runaway
// loop fails the job with a budget error instead of pinning a worker.
func TestCampaignInstructionLimit(t *testing.T) {
	_, cl, stop := newTestServer(t, service.Config{CampaignMaxSteps: 5_000})
	defer stop()
	j, err := cl.Campaign(context.Background(), &service.CampaignRequest{
		Script: "while true { let x = 1 }",
	})
	if err != nil {
		t.Fatal(err)
	}
	info := waitDone(t, cl, j.ID)
	if info.State != service.JobFailed || !strings.Contains(info.Error, "instruction budget") {
		t.Fatalf("state=%s err=%q, want failed with budget error", info.State, info.Error)
	}
}

// TestCampaignRequestCannotRaiseBudget: a request asking for more
// steps than the server cap is clamped to the cap.
func TestCampaignRequestCannotRaiseBudget(t *testing.T) {
	_, cl, stop := newTestServer(t, service.Config{CampaignMaxSteps: 2_000})
	defer stop()
	j, err := cl.Campaign(context.Background(), &service.CampaignRequest{
		Script:   "while true { let x = 1 }",
		MaxSteps: 1 << 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	info := waitDone(t, cl, j.ID)
	if info.State != service.JobFailed || !strings.Contains(info.Error, "instruction budget") {
		t.Fatalf("state=%s err=%q, want clamped budget failure", info.State, info.Error)
	}
}

// TestCampaignWallClockLimit pins the time sandbox: a script that
// stays under the step budget but over the wall clock is killed.
func TestCampaignWallClockLimit(t *testing.T) {
	_, cl, stop := newTestServer(t, service.Config{
		CampaignTimeout:  50 * time.Millisecond,
		CampaignMaxSteps: 1 << 40,
	})
	defer stop()
	j, err := cl.Campaign(context.Background(), &service.CampaignRequest{
		Script: "while true { let x = 1 }",
	})
	if err != nil {
		t.Fatal(err)
	}
	info := waitDone(t, cl, j.ID)
	if info.State != service.JobFailed || !strings.Contains(info.Error, "wall-clock limit") {
		t.Fatalf("state=%s err=%q, want wall-clock failure", info.State, info.Error)
	}
}

// TestCampaignCancel cancels a long-running scripted campaign via
// DELETE /v1/jobs/{id} and expects the canceled terminal state.
func TestCampaignCancel(t *testing.T) {
	_, cl, stop := newTestServer(t, service.Config{})
	defer stop()
	ctx := context.Background()
	j, err := cl.Campaign(ctx, &service.CampaignRequest{
		// Effectively unbounded work: sweep all configs many times.
		Script: "for i in range(1000) { sweep({}) }",
	})
	if err != nil {
		t.Fatal(err)
	}
	// Give it a moment to start, then cancel.
	deadline := time.Now().Add(10 * time.Second)
	for {
		info, err := cl.Job(ctx, j.ID)
		if err != nil {
			t.Fatal(err)
		}
		if info.State == service.JobRunning || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, err := cl.Cancel(ctx, j.ID); err != nil {
		t.Fatal(err)
	}
	info := waitDone(t, cl, j.ID)
	if info.State != service.JobCanceled {
		t.Fatalf("state = %s (err %q), want canceled", info.State, info.Error)
	}
}

// TestCampaignSandboxSurface asserts the sandbox is structural: the
// interpreter exposes no filesystem, exec, or network bindings.
func TestCampaignSandboxSurface(t *testing.T) {
	_, cl, stop := newTestServer(t, service.Config{})
	defer stop()
	for _, name := range []string{"open", "read_file", "write_file", "exec", "system", "http_get", "env"} {
		j, err := cl.Campaign(context.Background(), &service.CampaignRequest{
			Script: name + "()",
		})
		if err != nil {
			t.Fatal(err)
		}
		info := waitDone(t, cl, j.ID)
		if info.State != service.JobFailed || !strings.Contains(info.Error, "undefined name") {
			t.Fatalf("%s(): state=%s err=%q, want undefined-name failure", name, info.State, info.Error)
		}
	}
}

// TestCampaignScriptDefinedStrategy runs a register_strategy campaign
// through the service: a .oraql-defined probing strategy drives a
// probe end-to-end inside the job sandbox and must agree with the
// compiled-in linear strategy byte-for-byte.
func TestCampaignScriptDefinedStrategy(t *testing.T) {
	_, cl, stop := newTestServer(t, service.Config{})
	defer stop()
	ctx := context.Background()

	script := `
		register_strategy("svc-linear", fn(n) {
			let decided = []
			for i in range(n) {
				decided = append(decided, false)
			}
			for i in range(n) {
				let cand = []
				for j in range(n) {
					if j == i {
						cand = append(cand, true)
					} else {
						cand = append(cand, decided[j])
					}
				}
				if probe_test(probe_pad(cand)) {
					decided[i] = true
				}
			}
			return decided
		})
		let mine = probe({config: "minife-openmp", strategy: "svc-linear"})
		let ref = probe({config: "minife-openmp", strategy: "linear"})
		return {
			same_exe: mine.exe_hash == ref.exe_hash,
			same_seq: mine.final_seq == ref.final_seq,
			guilty: len(mine.guilty_queries),
		}
	`
	j, err := cl.Campaign(ctx, &service.CampaignRequest{Script: script})
	if err != nil {
		t.Fatalf("submit campaign: %v", err)
	}
	info := waitDone(t, cl, j.ID)
	if info.State != service.JobDone {
		t.Fatalf("job state = %s (err %q)", info.State, info.Error)
	}
	var res service.CampaignResult
	if err := json.Unmarshal(info.Result, &res); err != nil {
		t.Fatalf("decode campaign result: %v", err)
	}
	var value map[string]any
	if err := json.Unmarshal(res.Value, &value); err != nil {
		t.Fatalf("decode campaign value: %v", err)
	}
	if value["same_exe"] != true || value["same_seq"] != true {
		t.Errorf("script-defined strategy diverged from compiled-in linear: %v", value)
	}
	// The strategy must actually have run: minife-openmp convicts, so
	// the fully-optimistic fast path cannot have skipped Solve.
	if g, _ := value["guilty"].(float64); g < 1 {
		t.Errorf("minife-openmp should convict at least one query: %v", value)
	}

	// The registration is job-scoped: a later campaign on the same
	// server must not see it.
	j2, err := cl.Campaign(ctx, &service.CampaignRequest{
		Script: `probe({config: "minife-openmp", strategy: "svc-linear"})`,
	})
	if err != nil {
		t.Fatal(err)
	}
	info2 := waitDone(t, cl, j2.ID)
	if info2.State != service.JobFailed || !strings.Contains(info2.Error, "unknown strategy") {
		t.Fatalf("state=%s err=%q, want unknown-strategy failure (overlay leaked?)", info2.State, info2.Error)
	}
}

// TestRegistryEndpoint checks GET /v1/registry lists every extension
// point with its entries.
func TestRegistryEndpoint(t *testing.T) {
	_, cl, stop := newTestServer(t, service.Config{})
	defer stop()
	regs, err := cl.Registry(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	byKind := map[string]int{}
	for _, r := range regs {
		byKind[r.Kind] = len(r.Entries)
	}
	for kind, min := range map[string]int{
		"strategy": 3, "aa-analysis": 7, "aa-chain": 2, "app-config": 10, "grammar": 5,
	} {
		if byKind[kind] < min {
			t.Errorf("registry kind %q has %d entries, want >= %d (all: %v)", kind, byKind[kind], min, byKind)
		}
	}
}
