package service_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/oraql/go-oraql/internal/report"
	"github.com/oraql/go-oraql/internal/service"
	"github.com/oraql/go-oraql/internal/service/client"
)

// progSum is a tiny deterministic program with array traffic.
const progSum = `int main() {
	double a[8];
	for (int z = 0; z < 8; z++) { a[z] = (double)z; }
	double s = 0.0;
	for (int z = 0; z < 8; z++) { s = s + a[z]; }
	print(s, "\n");
	return 0;
}
`

// progPtr carries a may-alias pointer pair so probing has queries to
// bisect over.
const progPtr = `int main() {
	double a[8];
	for (int z = 0; z < 8; z++) { a[z] = (double)z; }
	int m[4];
	for (int z = 0; z < 4; z++) { m[z] = z; }
	double* p = a + m[2];
	a[2] = 1.0;
	p[0] = 3.0;
	print("v ", a[2], "\n");
	return 0;
}
`

func newTestServer(t *testing.T, cfg service.Config) (*service.Server, *client.Client, func()) {
	t.Helper()
	svc := service.New(cfg)
	ts := httptest.NewServer(svc)
	cl := client.New(ts.URL)
	stop := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := svc.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		ts.Close()
	}
	return svc, cl, stop
}

func compileReq(source string, opts service.CompileOptions) *service.CompileRequest {
	return &service.CompileRequest{
		Program: service.ProgramSpec{Source: source, SourceFile: "test.mc"},
		Options: opts,
	}
}

// metricValue extracts one plain counter/gauge sample from the
// Prometheus text exposition.
func metricValue(t *testing.T, text, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		rest, ok := strings.CutPrefix(line, name+" ")
		if !ok {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
		if err != nil {
			t.Fatalf("parse %s sample %q: %v", name, line, err)
		}
		return v
	}
	t.Fatalf("metric %s not found in:\n%s", name, text)
	return 0
}

func exeHash(t *testing.T, resp *service.CompileResponse) string {
	t.Helper()
	var cj report.CompileJSON
	if err := json.Unmarshal(resp.Result, &cj); err != nil {
		t.Fatalf("decode compile result: %v", err)
	}
	if cj.ExeHash == "" {
		t.Fatal("compile result has no exe hash")
	}
	return cj.ExeHash
}

// TestCompileCacheHit pins the cross-request cache: an identical
// resubmission is served from cache (Cached=true, identical payload)
// and the hit is observable as a /metrics counter delta.
func TestCompileCacheHit(t *testing.T) {
	_, cl, stop := newTestServer(t, service.Config{})
	defer stop()
	ctx := context.Background()

	before, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	hits0 := metricValue(t, before, "oraql_result_cache_hits_total")

	req := compileReq(progSum, service.CompileOptions{})
	first, err := cl.Compile(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("first compilation must not be a cache hit")
	}

	second, err := cl.Compile(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("identical resubmission must be served from cache")
	}
	if !bytes.Equal(first.Result, second.Result) {
		t.Fatal("cached result payload differs from the original")
	}
	if first.ModuleHash != second.ModuleHash || first.ConfigHash != second.ConfigHash {
		t.Fatalf("cache key changed: %s:%s vs %s:%s",
			first.ModuleHash, first.ConfigHash, second.ModuleHash, second.ConfigHash)
	}

	after, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	hits1 := metricValue(t, after, "oraql_result_cache_hits_total")
	if hits1 < hits0+1 {
		t.Fatalf("cache hit counter did not advance: %v -> %v", hits0, hits1)
	}
	if compiles := metricValue(t, after, "oraql_compiles_total"); compiles < 1 {
		t.Fatalf("compiles_total = %v, want >= 1", compiles)
	}
	// The AA query cache counters of the real compilation must surface.
	if lookups := metricValue(t, after, "oraql_aa_query_cache_lookups_total"); lookups == 0 {
		t.Fatal("aa query cache lookups not lifted into service metrics")
	}

	// Different options miss the cache: the key covers the config hash.
	third, err := cl.Compile(ctx, compileReq(progSum, service.CompileOptions{OptLevel: 1}))
	if err != nil {
		t.Fatal(err)
	}
	if third.Cached {
		t.Fatal("different options must not hit the cache")
	}
	if third.ConfigHash == first.ConfigHash {
		t.Fatal("config hash must depend on the options")
	}
}

// TestConcurrentStress drives >=32 mixed requests (compiles, cache
// hits, probe campaigns, cancellations) concurrently, asserts every
// request observed a deterministic result, and that the service drains
// cleanly afterwards. Run under -race this is the data-race oracle for
// the shared caches, metrics, and the job store.
func TestConcurrentStress(t *testing.T) {
	_, cl, stop := newTestServer(t, service.Config{QueueSize: 128})
	defer stop()
	ctx := context.Background()

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		hashes   = map[string]map[string]bool{} // program -> set of exe hashes
		seqs     = map[string]bool{}            // probe final_seq values
		canceled int
	)
	fail := func(format string, args ...any) {
		mu.Lock()
		defer mu.Unlock()
		t.Errorf(format, args...)
	}

	programs := map[string]string{"sum": progSum, "ptr": progPtr}

	// 16 compile clients over two programs: 8 first-compiles + repeats
	// that should largely be cache hits; all must agree on the exe hash.
	for i := 0; i < 16; i++ {
		name := "sum"
		if i%2 == 1 {
			name = "ptr"
		}
		src := programs[name]
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := cl.Compile(ctx, compileReq(src, service.CompileOptions{}))
			if err != nil {
				fail("compile %s: %v", name, err)
				return
			}
			h := exeHashQuiet(resp)
			mu.Lock()
			if hashes[name] == nil {
				hashes[name] = map[string]bool{}
			}
			hashes[name][h] = true
			mu.Unlock()
		}()
	}

	// 8 probe clients on the pointer program: every campaign must reach
	// the same locally-maximal sequence.
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			info, err := cl.Probe(ctx, &service.ProbeRequest{
				Program: service.ProgramSpec{Source: progPtr, SourceFile: "ptr.mc"},
			})
			if err != nil {
				fail("probe submit: %v", err)
				return
			}
			info, err = cl.Wait(ctx, info.ID, 10*time.Millisecond)
			if err != nil {
				fail("probe wait: %v", err)
				return
			}
			if info.State != service.JobDone {
				fail("probe job %s: state %s (%s)", info.ID, info.State, info.Error)
				return
			}
			var p report.ProbeJSON
			if err := json.Unmarshal(info.Result, &p); err != nil {
				fail("probe result decode: %v", err)
				return
			}
			mu.Lock()
			seqs[p.FinalSeq] = true
			mu.Unlock()
		}()
	}

	// 8 cancel clients: submit a long fuzz campaign and cancel it
	// immediately; the job must reach a terminal state either way.
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			info, err := cl.Fuzz(ctx, &service.FuzzRequest{N: 500, Workers: 1})
			if err != nil {
				fail("fuzz submit: %v", err)
				return
			}
			if _, err := cl.Cancel(ctx, info.ID); err != nil {
				fail("fuzz cancel: %v", err)
				return
			}
			info, err = cl.Wait(ctx, info.ID, 10*time.Millisecond)
			if err != nil {
				fail("fuzz wait: %v", err)
				return
			}
			if !info.Terminal() {
				fail("fuzz job %s not terminal after cancel: %s", info.ID, info.State)
				return
			}
			if info.State == service.JobFailed {
				fail("fuzz job %s failed rather than canceled: %s", info.ID, info.Error)
				return
			}
			if info.State == service.JobCanceled {
				mu.Lock()
				canceled++
				mu.Unlock()
			}
		}()
	}

	wg.Wait()

	for name, set := range hashes {
		if len(set) != 1 {
			t.Errorf("program %s produced %d distinct exe hashes: %v", name, len(set), set)
		}
	}
	if len(seqs) != 1 {
		t.Errorf("probing was nondeterministic: %d distinct final sequences: %v", len(seqs), seqs)
	}
	if canceled == 0 {
		t.Log("note: every cancel raced a completed campaign (unlikely but legal)")
	}

	// Clean drain with nothing left in flight happens in stop(); health
	// must still be OK here.
	h, err := cl.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !h.OK || h.Draining {
		t.Fatalf("health after stress: %+v", h)
	}
}

func exeHashQuiet(resp *service.CompileResponse) string {
	var cj report.CompileJSON
	if json.Unmarshal(resp.Result, &cj) != nil {
		return "undecodable"
	}
	return cj.ExeHash
}

// TestShutdownCancelsInflight submits a long-running campaign, waits
// until it is running, and verifies that Shutdown both returns before
// the campaign could finish on its own and leaves the job canceled —
// i.e. the context reached the workers mid-pipeline.
func TestShutdownCancelsInflight(t *testing.T) {
	svc := service.New(service.Config{Workers: 1, QueueSize: 4})
	ts := httptest.NewServer(svc)
	defer ts.Close()
	cl := client.New(ts.URL)
	ctx := context.Background()

	// A 5000-program campaign takes far longer than this whole test.
	info, err := cl.Fuzz(ctx, &service.FuzzRequest{N: 5000, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		cur, err := cl.Job(ctx, info.ID)
		if err != nil {
			t.Fatal(err)
		}
		if cur.State == service.JobRunning {
			break
		}
		if cur.Terminal() {
			t.Fatalf("job finished before shutdown could interrupt it: %s", cur.State)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never started: %s", cur.State)
		}
		time.Sleep(5 * time.Millisecond)
	}

	start := time.Now()
	sctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if err := svc.Shutdown(sctx); err != nil {
		t.Fatalf("shutdown did not drain: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 20*time.Second {
		t.Fatalf("shutdown took %v; cancellation did not reach the campaign", elapsed)
	}

	cur, err := cl.Job(ctx, info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if cur.State != service.JobCanceled {
		t.Fatalf("in-flight job state after shutdown = %s (%s), want canceled", cur.State, cur.Error)
	}
	if !svc.Draining() {
		t.Fatal("Draining() must report true after Shutdown")
	}

	// Draining service refuses new work.
	if _, err := cl.Compile(ctx, compileReq(progSum, service.CompileOptions{})); err == nil {
		t.Fatal("compile on a draining service must fail")
	}
	h, err := cl.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.OK || !h.Draining {
		t.Fatalf("health while draining: %+v", h)
	}
}

// TestShutdownCancelsQueued verifies queued-but-never-started jobs are
// drained to canceled.
func TestShutdownCancelsQueued(t *testing.T) {
	svc := service.New(service.Config{Workers: 1, QueueSize: 8})
	ts := httptest.NewServer(svc)
	defer ts.Close()
	cl := client.New(ts.URL)
	ctx := context.Background()

	// Occupy the single worker, then queue behind it.
	blocker, err := cl.Fuzz(ctx, &service.FuzzRequest{N: 5000, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	queued, err := cl.Fuzz(ctx, &service.FuzzRequest{N: 5000, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	sctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if err := svc.Shutdown(sctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	for _, id := range []string{blocker.ID, queued.ID} {
		cur, err := cl.Job(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if cur.State != service.JobCanceled {
			t.Errorf("job %s state = %s, want canceled", id, cur.State)
		}
	}
}

// TestJobEvents streams a probe job's progress lines.
func TestJobEvents(t *testing.T) {
	_, cl, stop := newTestServer(t, service.Config{})
	defer stop()
	ctx := context.Background()

	info, err := cl.Probe(ctx, &service.ProbeRequest{
		Program: service.ProgramSpec{Source: progPtr, SourceFile: "ptr.mc"},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := cl.Events(ctx, info.ID, &buf); err != nil {
		t.Fatalf("events: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, info.ID+": started") {
		t.Fatalf("event stream missing start line:\n%s", out)
	}
	if !strings.Contains(out, info.ID+": done") {
		t.Fatalf("event stream missing terminal line:\n%s", out)
	}
}

// TestRequestErrors pins the HTTP error contract.
func TestRequestErrors(t *testing.T) {
	_, cl, stop := newTestServer(t, service.Config{})
	defer stop()
	ctx := context.Background()
	base := cl.Base

	post := func(path, body string) (int, string) {
		resp, err := http.Post(base+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(data)
	}

	cases := []struct {
		name string
		path string
		body string
		want int
	}{
		{"malformed json", "/v1/compile", "{", http.StatusBadRequest},
		{"unknown field", "/v1/compile", `{"nope": 1}`, http.StatusBadRequest},
		{"empty program", "/v1/compile", `{}`, http.StatusBadRequest},
		{"unknown config", "/v1/compile", `{"program":{"config_id":"no-such"}}`, http.StatusBadRequest},
		{"unknown model", "/v1/compile", `{"program":{"source":"int main() { return 0; }","model":"warp"}}`, http.StatusBadRequest},
		{"syntax error", "/v1/compile", `{"program":{"source":"int main( {"}}`, http.StatusUnprocessableEntity},
		{"probe unknown strategy", "/v1/probe", fmt.Sprintf(`{"program":{"source":%q},"strategy":"dowsing"}`, progSum), http.StatusBadRequest},
		{"fuzz malformed", "/v1/fuzz", "[", http.StatusBadRequest},
	}
	for _, tc := range cases {
		code, body := post(tc.path, tc.body)
		if code != tc.want {
			t.Errorf("%s: HTTP %d, want %d (%s)", tc.name, code, tc.want, body)
			continue
		}
		var env service.ErrorResponse
		if err := json.Unmarshal([]byte(body), &env); err != nil || env.Error == "" || env.Code != tc.want {
			t.Errorf("%s: not the uniform error envelope: %s", tc.name, body)
		}
	}

	if _, err := cl.Job(ctx, "probe-999999"); err == nil {
		t.Error("polling an unknown job must fail")
	}
	if _, err := cl.Cancel(ctx, "fuzz-999999"); err == nil {
		t.Error("cancelling an unknown job must fail")
	}
}

// TestRequestTimeout pins the 504 mapping for compilations that exceed
// the per-request deadline.
func TestRequestTimeout(t *testing.T) {
	_, cl, stop := newTestServer(t, service.Config{RequestTimeout: time.Nanosecond})
	defer stop()
	_, err := cl.Compile(context.Background(), compileReq(progSum, service.CompileOptions{}))
	if err == nil {
		t.Fatal("expected a timeout failure")
	}
	if !strings.Contains(err.Error(), "504") {
		t.Fatalf("error should carry HTTP 504: %v", err)
	}
}

// TestQueueFull pins the 503 on a saturated bounded queue.
func TestQueueFull(t *testing.T) {
	svc := service.New(service.Config{Workers: 1, QueueSize: 1})
	ts := httptest.NewServer(svc)
	defer ts.Close()
	cl := client.New(ts.URL)
	ctx := context.Background()

	// Occupy the worker...
	running, err := cl.Fuzz(ctx, &service.FuzzRequest{N: 5000, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		cur, err := cl.Job(ctx, running.ID)
		if err != nil {
			t.Fatal(err)
		}
		if cur.State == service.JobRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("blocker never started: %s", cur.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// ...fill the queue...
	if _, err := cl.Fuzz(ctx, &service.FuzzRequest{N: 5000, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	// ...and the next submission must bounce with 503.
	_, err = cl.Fuzz(ctx, &service.FuzzRequest{N: 1})
	if err == nil || !strings.Contains(err.Error(), "503") {
		t.Fatalf("saturated queue should reject with 503, got %v", err)
	}

	sctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if err := svc.Shutdown(sctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}
