package service

// Cluster mode: N serve instances behave as one cache.
//
// Every instance is configured with the same node list (its own base
// URL plus its peers'), over which it builds a consistent-hash ring:
// ringReplicas virtual points per node, a key owned by the first point
// clockwise from its hash. All instances agree on ownership without
// any coordination, and adding a node only moves ~1/N of the keyspace.
//
// A cache miss on a non-owner first asks the owner for its cached
// response (GET /v1/artifact/{key}) before compiling locally, so each
// unique key is compiled roughly once fleet-wide even without a shared
// cache directory. Peer fetches are strictly an optimization: every
// failure — connection refused, timeout, hang, bad payload — degrades
// to a local compile, and a per-peer circuit breaker (doubling cooldown
// on consecutive failures) keeps a dead peer from taxing every miss
// with a timeout.

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// PeerTransport fetches one cached artifact from one peer instance.
// ok=false with a nil error is a clean miss (the peer is healthy but
// has no entry); a non-nil error is a transport failure and trips the
// peer's breaker. Tests inject faulty implementations to drive the
// degradation paths deterministically.
type PeerTransport interface {
	Fetch(ctx context.Context, peerBase, key string) (resp *CompileResponse, ok bool, err error)
}

// httpPeerTransport is the production transport: one GET per fetch on
// a shared client; the per-fetch context carries the timeout.
type httpPeerTransport struct {
	client *http.Client
}

func (t *httpPeerTransport) Fetch(ctx context.Context, peerBase, key string) (*CompileResponse, bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peerBase+"/v1/artifact/"+key, nil)
	if err != nil {
		return nil, false, err
	}
	res, err := t.client.Do(req)
	if err != nil {
		return nil, false, err
	}
	defer func() {
		_, _ = io.Copy(io.Discard, io.LimitReader(res.Body, 1<<20))
		res.Body.Close()
	}()
	switch res.StatusCode {
	case http.StatusOK:
		var resp CompileResponse
		if err := json.NewDecoder(res.Body).Decode(&resp); err != nil {
			return nil, false, fmt.Errorf("decode artifact: %w", err)
		}
		return &resp, true, nil
	case http.StatusNotFound:
		return nil, false, nil
	default:
		return nil, false, fmt.Errorf("artifact fetch: peer returned %d", res.StatusCode)
	}
}

// ringReplicas is the virtual-point count per node; 64 keeps the key
// distribution within a few percent of uniform for small fleets.
const ringReplicas = 64

type ringPoint struct {
	hash uint64
	node string
}

// buildRing places ringReplicas points per node on the hash circle.
func buildRing(nodes []string) []ringPoint {
	ring := make([]ringPoint, 0, len(nodes)*ringReplicas)
	for _, n := range nodes {
		for i := 0; i < ringReplicas; i++ {
			ring = append(ring, ringPoint{hash: ringHash(fmt.Sprintf("%s#%d", n, i)), node: n})
		}
	}
	sort.Slice(ring, func(i, j int) bool {
		if ring[i].hash != ring[j].hash {
			return ring[i].hash < ring[j].hash
		}
		return ring[i].node < ring[j].node // deterministic on the (rare) collision
	})
	return ring
}

func ringHash(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.LittleEndian.Uint64(sum[:8])
}

// ringOwner returns the node owning key: the first point at or after
// the key's hash, wrapping to the ring's start.
func ringOwner(ring []ringPoint, key string) string {
	if len(ring) == 0 {
		return ""
	}
	h := ringHash(key)
	i := sort.Search(len(ring), func(i int) bool { return ring[i].hash >= h })
	if i == len(ring) {
		i = 0
	}
	return ring[i].node
}

// normalizeNode canonicalizes a node URL so "http://a:1/" and
// "http://a:1" build identical rings on every instance.
func normalizeNode(u string) string {
	return strings.TrimRight(strings.TrimSpace(u), "/")
}

// OwnerForRequest computes which node of a fleet owns a compile
// request's cache key, given the node list every instance was
// configured with. Exported so cluster tests (and operators debugging
// placement) can predict where a request's artifact lives.
func OwnerForRequest(nodes []string, req *CompileRequest) string {
	normalized := make([]string, len(nodes))
	for i, n := range nodes {
		normalized[i] = normalizeNode(n)
	}
	moduleHash, configHash := cacheKeys(req)
	return ringOwner(buildRing(normalized), moduleHash+":"+configHash)
}

// peerState is one peer's circuit breaker.
type peerState struct {
	failures     int
	trippedUntil time.Time
}

// cluster is a Server's view of the fleet: the ring plus per-peer
// breaker state.
type cluster struct {
	self      string
	peers     []string // normalized, self excluded
	ring      []ringPoint
	transport PeerTransport
	timeout   time.Duration
	cooldown  time.Duration

	mu    sync.Mutex
	state map[string]*peerState
}

// peerCooldownMax caps the doubling breaker cooldown.
const peerCooldownMax = 30 * time.Second

func newCluster(self string, peers []string, timeout, cooldown time.Duration, transport PeerTransport) *cluster {
	self = normalizeNode(self)
	nodes := []string{self}
	var others []string
	for _, p := range peers {
		p = normalizeNode(p)
		if p == "" || p == self {
			continue
		}
		nodes = append(nodes, p)
		others = append(others, p)
	}
	if transport == nil {
		transport = &httpPeerTransport{client: &http.Client{}}
	}
	return &cluster{
		self:      self,
		peers:     others,
		ring:      buildRing(nodes),
		transport: transport,
		timeout:   timeout,
		cooldown:  cooldown,
		state:     map[string]*peerState{},
	}
}

func (c *cluster) owner(key string) string {
	return ringOwner(c.ring, key)
}

// available reports whether peer's breaker admits a fetch right now.
func (c *cluster) available(peer string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.state[peer]
	return st == nil || time.Now().After(st.trippedUntil)
}

// failure books one transport failure: the cooldown doubles with each
// consecutive failure so a dead peer costs one timeout per cooldown
// window, not one per miss.
func (c *cluster) failure(peer string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.state[peer]
	if st == nil {
		st = &peerState{}
		c.state[peer] = st
	}
	st.failures++
	d := c.cooldown << (st.failures - 1)
	if d > peerCooldownMax || d <= 0 {
		d = peerCooldownMax
	}
	st.trippedUntil = time.Now().Add(d)
}

// success resets peer's breaker; a clean miss counts — the peer spoke.
func (c *cluster) success(peer string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.state, peer)
}

// tripped snapshots every peer's breaker state for /metrics.
func (c *cluster) tripped() map[string]bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]bool, len(c.peers))
	now := time.Now()
	for _, p := range c.peers {
		st := c.state[p]
		out[p] = st != nil && now.Before(st.trippedUntil)
	}
	return out
}

// peerFetch asks the ring owner of key for its cached response. ok
// only on a validated hit; a miss, a tripped breaker, self-ownership,
// or any transport failure all degrade to compiling locally.
func (s *Server) peerFetch(ctx context.Context, key string) (*CompileResponse, bool) {
	c := s.cluster
	if c == nil {
		return nil, false
	}
	owner := c.owner(key)
	if owner == c.self || !c.available(owner) {
		return nil, false
	}
	s.met.observePeer(owner, peerForward)
	fctx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	resp, ok, err := c.transport.Fetch(fctx, owner, key)
	if err != nil {
		c.failure(owner)
		s.met.observePeer(owner, peerFailure)
		s.logf("peer-fetch key=%s peer=%s err=%q", key, owner, err)
		return nil, false
	}
	c.success(owner)
	if !ok || resp == nil || resp.Result == nil || resp.ModuleHash+":"+resp.ConfigHash != key {
		s.met.observePeer(owner, peerMiss)
		return nil, false
	}
	s.met.observePeer(owner, peerHit)
	return resp, true
}
