package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"github.com/oraql/go-oraql/internal/aa"
	"github.com/oraql/go-oraql/internal/apps"
	"github.com/oraql/go-oraql/internal/difftest"
	"github.com/oraql/go-oraql/internal/driver"
	"github.com/oraql/go-oraql/internal/minic"
	"github.com/oraql/go-oraql/internal/oraql"
	"github.com/oraql/go-oraql/internal/pipeline"
	"github.com/oraql/go-oraql/internal/progen"
)

var models = map[string]minic.Model{
	"":        minic.ModelSeq,
	"seq":     minic.ModelSeq,
	"openmp":  minic.ModelOpenMP,
	"tasks":   minic.ModelTasks,
	"mpi":     minic.ModelMPI,
	"offload": minic.ModelOffload,
}

// frontend translates the wire program spec into frontend options.
func (p *ProgramSpec) frontend() (minic.Options, error) {
	m, ok := models[p.Model]
	if !ok {
		return minic.Options{}, badRequestf("unknown model %q", p.Model)
	}
	d := minic.DialectC
	if p.Fortran {
		d = minic.DialectFortran
	}
	return minic.Options{Dialect: d, Model: m, Views: p.Views}, nil
}

// compileConfig translates a compile request into a pipeline config.
func compileConfig(req *CompileRequest) (pipeline.Config, error) {
	var cfg pipeline.Config
	switch {
	case req.Program.ConfigID != "":
		app := apps.ByID(req.Program.ConfigID)
		if app == nil {
			return cfg, badRequestf("unknown configuration %q", req.Program.ConfigID)
		}
		cfg = pipeline.Config{
			Name: app.ID, Source: app.Source, SourceFile: app.SourceName,
			Frontend: app.Frontend,
		}
	case req.Program.Source != "":
		fe, err := req.Program.frontend()
		if err != nil {
			return cfg, err
		}
		name := req.Program.SourceFile
		if name == "" {
			name = "request.mc"
		}
		cfg = pipeline.Config{
			Name: name, Source: req.Program.Source, SourceFile: name, Frontend: fe,
		}
	default:
		return cfg, badRequestf("program needs config_id or source")
	}

	o := req.Options
	cfg.OptLevel = o.OptLevel
	cfg.FullAAChain = o.FullAAChain
	cfg.AAChain = o.AAChain
	cfg.DisableAAQueryCache = o.DisableAAQueryCache
	cfg.DisableAnalysisCache = o.DisableAnalysisCache
	if o.ORAQL || o.Seq != "" {
		seq, err := oraql.ParseSeq(o.Seq)
		if err != nil {
			return cfg, badRequestf("bad seq: %v", err)
		}
		cfg.ORAQL = &oraql.Options{Seq: seq, Target: o.Target}
	}
	return cfg, nil
}

// probeSpec translates a probe request into a driver benchmark spec.
func probeSpec(req *ProbeRequest) (*driver.BenchSpec, error) {
	var spec *driver.BenchSpec
	switch {
	case req.Program.ConfigID != "":
		app := apps.ByID(req.Program.ConfigID)
		if app == nil {
			return nil, badRequestf("unknown configuration %q", req.Program.ConfigID)
		}
		spec = app.Spec()
	case req.Program.Source != "":
		fe, err := req.Program.frontend()
		if err != nil {
			return nil, err
		}
		name := req.Program.SourceFile
		if name == "" {
			name = "request.mc"
		}
		spec = &driver.BenchSpec{
			Name: name,
			Compile: pipeline.Config{
				Source: req.Program.Source, SourceFile: name, Frontend: fe,
			},
			ORAQL: oraql.Options{Target: req.Target},
		}
		if req.Program.Ranks > 0 {
			spec.Run.NumRanks = req.Program.Ranks
		}
	default:
		return nil, badRequestf("program needs config_id or source")
	}
	if req.Strategy != "" {
		strat, err := driver.StrategyByName(req.Strategy)
		if err != nil {
			return nil, badRequestf("%v", err)
		}
		spec.Strategy = strat
	}
	if req.AAChain != "" {
		if _, err := aa.ResolveChainNames(req.AAChain); err != nil {
			return nil, badRequestf("%v", err)
		}
		spec.Compile.AAChain = req.AAChain
	}
	spec.Workers = req.Workers
	spec.MaxTests = req.MaxTests
	spec.DisableExeCache = req.DisableExeCache
	if req.Target != "" {
		spec.ORAQL.Target = req.Target
	}
	return spec, nil
}

// fuzzOptions translates a fuzz request into campaign options.
func fuzzOptions(req *FuzzRequest) (difftest.FuzzOptions, error) {
	gen, err := progen.GrammarByName(req.Grammar, req.Stmts)
	if err != nil {
		return difftest.FuzzOptions{}, badRequestf("%v", err)
	}
	opts := difftest.FuzzOptions{
		N:              req.N,
		Seed:           req.Seed,
		Workers:        req.Workers,
		Gen:            gen,
		Triage:         !req.NoTriage,
		MaxDivergences: req.MaxDivergences,
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if req.Inject {
		opts.Variants = []difftest.Variant{difftest.InjectVariant()}
	}
	return opts, nil
}

// cacheKeys derives the result-cache key pair: moduleHash identifies
// the program and its frontend lowering, configHash the compilation
// options (including response sequence and IR embedding). Both are
// content hashes of the canonical JSON of the respective request part.
func cacheKeys(req *CompileRequest) (moduleHash, configHash string) {
	return hashJSON(req.Program), hashJSON(req.Options)
}

func hashJSON(v any) string {
	data, err := json.Marshal(v)
	if err != nil {
		// Wire types marshal by construction; a failure here is a bug.
		panic(fmt.Sprintf("service: hashJSON: %v", err))
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:8])
}

// badRequest marks client errors (HTTP 400) apart from server faults.
type badRequest struct{ msg string }

func (e badRequest) Error() string { return e.msg }

func badRequestf(format string, args ...any) error {
	return badRequest{msg: fmt.Sprintf(format, args...)}
}
