package service

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"github.com/oraql/go-oraql/internal/campaign"
	"github.com/oraql/go-oraql/internal/difftest"
	"github.com/oraql/go-oraql/internal/diskcache"
	"github.com/oraql/go-oraql/internal/driver"
	"github.com/oraql/go-oraql/internal/pipeline"
	"github.com/oraql/go-oraql/internal/registry"
	"github.com/oraql/go-oraql/internal/report"
)

func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/compile", s.handleCompile)
	mux.HandleFunc("POST /v1/probe", s.handleProbe)
	mux.HandleFunc("POST /v1/fuzz", s.handleFuzz)
	mux.HandleFunc("POST /v1/campaign", s.handleCampaign)
	mux.HandleFunc("GET /v1/registry", s.handleRegistry)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, ErrorResponse{Error: fmt.Sprintf(format, args...), Code: code})
}

func decode(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

func marshalResult(v any) (json.RawMessage, error) {
	data, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("encode result: %w", err)
	}
	return json.RawMessage(data), nil
}

// handleCompile is the synchronous endpoint: compile under the request
// deadline, serving repeats of the same (program, options) pair from
// the cross-request result cache.
func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeError(w, http.StatusServiceUnavailable, "service is draining")
		return
	}
	var req CompileRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	moduleHash, configHash := cacheKeys(&req)
	key := moduleHash + ":" + configHash
	// Single-flight: the first request for this key compiles, identical
	// concurrent requests wait for its response instead of running the
	// pipeline once each.
	var fl *flight
	for {
		cached, f, leader := s.cache.begin(key)
		if cached != nil {
			resp := *cached
			resp.Cached = true
			writeJSON(w, http.StatusOK, &resp)
			return
		}
		if leader {
			fl = f
			break
		}
		if v, ok := s.cache.wait(r.Context(), f); ok {
			resp := *v
			resp.Cached = true
			writeJSON(w, http.StatusOK, &resp)
			return
		}
		if err := r.Context().Err(); err != nil {
			writeError(w, 499, "request cancelled: %v", err)
			return
		}
		// The leader failed; loop to compete for the next flight.
	}
	completed := false
	defer func() {
		if !completed {
			// Every early return below is a failure: wake the followers
			// empty-handed so they retry rather than hang.
			s.cache.complete(key, fl, nil)
		}
	}()

	// Second level: the shared persistent store. A response another
	// process (or a previous life of this one) computed is promoted
	// into the in-memory cache and served as a hit.
	if resp, ok := s.loadDiskResponse(key); ok {
		s.cache.complete(key, fl, resp)
		completed = true
		hit := *resp
		hit.Cached = true
		writeJSON(w, http.StatusOK, &hit)
		return
	}

	cfg, err := compileConfig(&req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Server-level tuning, deliberately not part of the wire format (or
	// the cache key): output is byte-identical for every worker count,
	// and the disk cache only shortcuts work without changing output.
	cfg.CompileWorkers = s.cfg.CompileWorkers
	cfg.DiskCache = s.cfg.Cache
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	start := time.Now()
	cr, err := pipeline.CompileContext(ctx, cfg)
	if err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			writeError(w, http.StatusGatewayTimeout, "compilation exceeded the request timeout: %v", err)
		case errors.Is(err, context.Canceled):
			// Client went away; the status is for the log line only.
			writeError(w, 499, "request cancelled: %v", err)
		default:
			// The program did not compile: the request is at fault.
			writeError(w, http.StatusUnprocessableEntity, "%v", err)
		}
		return
	}
	s.observeCompileResult(cr)

	payload, err := marshalResult(report.NewCompileJSON(cr, req.Options.WithIR, cfg.ORAQL != nil))
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	resp := &CompileResponse{
		ModuleHash: moduleHash,
		ConfigHash: configHash,
		CompileMS:  float64(time.Since(start).Microseconds()) / 1000,
		Result:     payload,
	}
	s.storeDiskResponse(key, resp)
	s.cache.complete(key, fl, resp)
	completed = true
	writeJSON(w, http.StatusOK, resp)
}

// diskResponseKey derives the persistent key for one compile response.
// The LRU key pair already content-hashes the program and the full
// option set (response shape included), so it is the disk identity too.
func diskResponseKey(key string) string {
	return diskcache.Key("svc-compile", key)
}

// loadDiskResponse fetches a persisted compile response ("" = none).
func (s *Server) loadDiskResponse(key string) (*CompileResponse, bool) {
	if s.cfg.Cache == nil {
		return nil, false
	}
	data, ok := s.cfg.Cache.Get(diskResponseKey(key))
	if !ok {
		return nil, false
	}
	var resp CompileResponse
	if json.Unmarshal(data, &resp) != nil || resp.Result == nil {
		return nil, false
	}
	return &resp, true
}

// storeDiskResponse persists a freshly computed compile response.
func (s *Server) storeDiskResponse(key string, resp *CompileResponse) {
	if s.cfg.Cache == nil {
		return
	}
	data, err := json.Marshal(resp)
	if err != nil {
		return
	}
	s.cfg.Cache.Put(diskResponseKey(key), data)
}

// observeCompileResult lifts one compilation's AA and analysis cache
// counters into the service metrics.
func (s *Server) observeCompileResult(cr *pipeline.CompileResult) {
	aas := cr.AAStats()
	var anHits, anMisses int64
	for _, as := range cr.AnalysisStats() {
		anHits += as.Hits
		anMisses += as.Misses
	}
	s.met.observeCompile(aas.CacheHits, aas.CacheLookups(), anHits, anMisses)
}

// handleProbe submits an asynchronous probe campaign.
func (s *Server) handleProbe(w http.ResponseWriter, r *http.Request) {
	var req ProbeRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	spec, err := probeSpec(&req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	spec.Compile.CompileWorkers = s.cfg.CompileWorkers
	spec.Cache = s.cfg.Cache
	j, err := s.submit("probe", "", func(ctx context.Context, j *job) (any, error) {
		spec.Log = j // driver progress lines become job events
		res, perr := driver.ProbeContext(ctx, spec)
		if perr != nil {
			return nil, perr
		}
		s.observeCompileResult(res.Final.Compile)
		return report.NewProbeJSON(res), nil
	})
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, j.info())
}

// handleFuzz submits an asynchronous differential-fuzzing campaign.
func (s *Server) handleFuzz(w http.ResponseWriter, r *http.Request) {
	var req FuzzRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	opts, err := fuzzOptions(&req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	opts.CompileWorkers = s.cfg.CompileWorkers
	j, err := s.submit("fuzz", "", func(ctx context.Context, j *job) (any, error) {
		opts.Ctx = ctx
		opts.Log = j // campaign progress lines become job events
		res, ferr := difftest.Fuzz(opts)
		if ferr != nil {
			return nil, ferr
		}
		return res, nil
	})
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, j.info())
}

// handleCampaign submits an asynchronous scripted campaign. The
// script is parsed up front (syntax errors are a 400, not a failed
// job) and runs sandboxed: the interpreter has no filesystem or exec
// bindings, the instruction budget is clamped to the server cap, and
// the wall clock is bounded by CampaignTimeout.
func (s *Server) handleCampaign(w http.ResponseWriter, r *http.Request) {
	var req CampaignRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.Script == "" {
		writeError(w, http.StatusBadRequest, "empty script")
		return
	}
	if _, err := campaign.Parse(req.Script); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	sum := sha256.Sum256([]byte(req.Script))
	sha := hex.EncodeToString(sum[:])
	maxSteps := s.cfg.CampaignMaxSteps
	if req.MaxSteps > 0 && req.MaxSteps < maxSteps {
		maxSteps = req.MaxSteps
	}
	j, err := s.submit("campaign", sha, func(ctx context.Context, j *job) (any, error) {
		res, cerr := campaign.Run(req.Script, campaign.Options{
			Ctx:            ctx,
			Out:            j, // print() lines become streamed job events
			Log:            j, // probe/fuzz progress too
			Workers:        req.Workers,
			CompileWorkers: s.cfg.CompileWorkers,
			Cache:          s.cfg.Cache,
			MaxSteps:       maxSteps,
			Timeout:        s.cfg.CampaignTimeout,
		})
		if cerr != nil {
			return nil, cerr
		}
		value, merr := json.Marshal(res.Value)
		if merr != nil {
			return nil, fmt.Errorf("encode campaign value: %w", merr)
		}
		return &CampaignResult{Value: value, Steps: res.Steps, ScriptSHA256: sha}, nil
	})
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	s.met.observeCampaignScript(sha)
	s.logf("campaign id=%s sha256=%s bytes=%d", j.id, sha, len(req.Script))
	writeJSON(w, http.StatusAccepted, j.info())
}

// handleRegistry lists every registered extension point: probing
// strategies, AA analyses and chains, app configurations, and
// grammar profiles.
func (s *Server) handleRegistry(w http.ResponseWriter, r *http.Request) {
	var out []RegistryInfo
	for _, reg := range registry.All() {
		info := RegistryInfo{Kind: reg.Kind(), Description: reg.Description()}
		for _, e := range reg.Entries() {
			info.Entries = append(info.Entries, RegistryEntry{
				Name: e.Name, Description: e.Description,
			})
		}
		out = append(out, info)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	j := s.jobs.get(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, j.info())
}

// handleJobCancel cancels a queued or running job.
func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	j := s.jobs.get(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	switch j.info().State {
	case JobQueued:
		// Finish it now; the worker skips terminal jobs it dequeues.
		if j.finish(JobCanceled, "canceled by client", nil) {
			s.met.observeJob(j.kind, JobCanceled)
		}
	case JobRunning:
		j.requestCancel() // the worker records the terminal state
	}
	writeJSON(w, http.StatusOK, j.info())
}

// handleJobEvents streams the job's progress lines: the backlog first,
// then live events until the job reaches a terminal state or the
// client disconnects.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	j := s.jobs.get(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flush := func() {
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
	}
	backlog, ch := j.subscribe()
	defer j.unsubscribe(ch)
	for _, line := range backlog {
		fmt.Fprintln(w, line)
	}
	flush()
	for {
		select {
		case line := <-ch:
			fmt.Fprintln(w, line)
			flush()
		case <-j.done:
			// Drain whatever was broadcast before the job finished.
			for {
				select {
				case line := <-ch:
					fmt.Fprintln(w, line)
				default:
					flush()
					return
				}
			}
		case <-r.Context().Done():
			return
		case <-s.root.Done():
			return
		}
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprint(w, s.met.render(s.cache, s.cfg.Cache, len(s.queue), cap(s.queue), s.inflight.Load(), s.cfg.Workers, s.cfg.CompileWorkers))
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	draining := s.Draining()
	code := http.StatusOK
	if draining {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, HealthResponse{
		OK:           !draining,
		Draining:     draining,
		QueueDepth:   len(s.queue),
		QueueCap:     cap(s.queue),
		JobsInflight: s.inflight.Load(),
	})
}
