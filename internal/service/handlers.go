package service

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"github.com/oraql/go-oraql/internal/campaign"
	"github.com/oraql/go-oraql/internal/difftest"
	"github.com/oraql/go-oraql/internal/diskcache"
	"github.com/oraql/go-oraql/internal/driver"
	"github.com/oraql/go-oraql/internal/pipeline"
	"github.com/oraql/go-oraql/internal/registry"
	"github.com/oraql/go-oraql/internal/report"
	"github.com/oraql/go-oraql/internal/warehouse"
)

func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/compile", s.handleCompile)
	mux.HandleFunc("POST /v1/compile/batch", s.handleCompileBatch)
	mux.HandleFunc("GET /v1/artifact/{key}", s.handleArtifact)
	mux.HandleFunc("POST /v1/probe", s.handleProbe)
	mux.HandleFunc("POST /v1/fuzz", s.handleFuzz)
	mux.HandleFunc("POST /v1/campaign", s.handleCampaign)
	mux.HandleFunc("GET /v1/warehouse", s.handleWarehouseGet)
	mux.HandleFunc("POST /v1/warehouse", s.handleWarehousePost)
	mux.HandleFunc("GET /v1/registry", s.handleRegistry)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, ErrorResponse{Error: fmt.Sprintf(format, args...), Code: code})
}

func decode(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

func marshalResult(v any) (json.RawMessage, error) {
	data, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("encode result: %w", err)
	}
	return json.RawMessage(data), nil
}

// errInternal marks server faults (HTTP 500) apart from request faults.
var errInternal = errors.New("internal error")

// compileStatus maps a compileOne failure to its HTTP status code.
func compileStatus(err error) int {
	var br badRequest
	switch {
	case errors.As(err, &br):
		return http.StatusBadRequest
	case errors.Is(err, errInternal):
		return http.StatusInternalServerError
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		// Client went away; the status is for the log line only.
		return 499
	default:
		// The program did not compile: the request is at fault.
		return http.StatusUnprocessableEntity
	}
}

// compileOne resolves one compile request through the full cache
// hierarchy: in-memory LRU, single-flight join, shared persistent
// store, peer-forwarded fetch from the key's ring owner, and finally
// the pipeline itself. It is the shared engine of /v1/compile and
// /v1/compile/batch.
func (s *Server) compileOne(ctx context.Context, req *CompileRequest) (*CompileResponse, error) {
	moduleHash, configHash := cacheKeys(req)
	key := moduleHash + ":" + configHash
	// Single-flight: the first request for this key compiles, identical
	// concurrent requests wait for its response instead of running the
	// pipeline once each.
	var fl *flight
	for {
		cached, f, leader := s.cache.begin(key)
		if cached != nil {
			resp := *cached
			resp.Cached = true
			return &resp, nil
		}
		if leader {
			fl = f
			break
		}
		if v, ok := s.cache.wait(ctx, f); ok {
			resp := *v
			resp.Cached = true
			return &resp, nil
		}
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("request cancelled: %w", err)
		}
		// The leader failed; loop to compete for the next flight.
	}
	completed := false
	defer func() {
		if !completed {
			// Every early return below is a failure: wake the followers
			// empty-handed so they retry rather than hang.
			s.cache.complete(key, fl, nil)
		}
	}()

	serveHit := func(resp *CompileResponse) *CompileResponse {
		s.cache.complete(key, fl, resp)
		completed = true
		hit := *resp
		hit.Cached = true
		return &hit
	}

	// Second level: the shared persistent store. A response another
	// process (or a previous life of this one) computed is promoted
	// into the in-memory cache and served as a hit.
	if resp, ok := s.loadDiskResponse(key); ok {
		return serveHit(resp), nil
	}

	// Third level: the key's ring owner elsewhere in the fleet. Any
	// failure degrades to compiling locally; a fetched response is
	// promoted into both local levels.
	if resp, ok := s.peerFetch(ctx, key); ok {
		s.storeDiskResponse(key, resp)
		return serveHit(resp), nil
	}

	cfg, err := compileConfig(req)
	if err != nil {
		return nil, err
	}
	// Server-level tuning, deliberately not part of the wire format (or
	// the cache key): output is byte-identical for every worker count,
	// and the disk cache only shortcuts work without changing output.
	cfg.CompileWorkers = s.cfg.CompileWorkers
	cfg.DiskCache = s.cfg.Cache
	cctx, cancel := context.WithTimeout(ctx, s.cfg.RequestTimeout)
	defer cancel()
	start := time.Now()
	cr, err := pipeline.CompileContext(cctx, cfg)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			return nil, fmt.Errorf("compilation exceeded the request timeout: %w", err)
		}
		return nil, err
	}
	s.observeCompileResult(cr)

	payload, err := marshalResult(report.NewCompileJSON(cr, req.Options.WithIR, cfg.ORAQL != nil))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", errInternal, err)
	}
	resp := &CompileResponse{
		ModuleHash: moduleHash,
		ConfigHash: configHash,
		CompileMS:  float64(time.Since(start).Microseconds()) / 1000,
		Result:     payload,
	}
	s.storeDiskResponse(key, resp)
	s.cache.complete(key, fl, resp)
	completed = true
	return resp, nil
}

// handleCompile is the synchronous endpoint: compile under the request
// deadline, serving repeats of the same (program, options) pair from
// the cross-request result cache.
func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeError(w, http.StatusServiceUnavailable, "service is draining")
		return
	}
	var req CompileRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	resp, err := s.compileOne(r.Context(), &req)
	if err != nil {
		writeError(w, compileStatus(err), "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// maxBatchItems bounds one /v1/compile/batch request.
const maxBatchItems = 1024

// handleCompileBatch compiles a list of requests in one round trip.
// Items are deduplicated by content hash before touching the worker
// budget — a campaign sweep with heavy key overlap costs one
// compilation per unique key — and results come back in request order
// with per-item errors, so one uncompilable program never fails its
// batch.
func (s *Server) handleCompileBatch(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeError(w, http.StatusServiceUnavailable, "service is draining")
		return
	}
	var req BatchCompileRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if len(req.Items) == 0 {
		writeError(w, http.StatusBadRequest, "empty batch")
		return
	}
	if len(req.Items) > maxBatchItems {
		writeError(w, http.StatusBadRequest, "batch of %d items exceeds the %d-item cap", len(req.Items), maxBatchItems)
		return
	}

	// Dedup by the same content hashes that key every cache level.
	type slot struct {
		resp *CompileResponse
		err  error
	}
	keys := make([]string, len(req.Items))
	unique := map[string]*slot{}
	var order []string // first-appearance order, for deterministic scheduling
	for i := range req.Items {
		moduleHash, configHash := cacheKeys(&req.Items[i])
		keys[i] = moduleHash + ":" + configHash
		if _, ok := unique[keys[i]]; !ok {
			unique[keys[i]] = &slot{}
			order = append(order, keys[i])
		}
	}
	firstItem := map[string]*CompileRequest{}
	for i := range req.Items {
		if _, ok := firstItem[keys[i]]; !ok {
			firstItem[keys[i]] = &req.Items[i]
		}
	}

	// Unique items run concurrently, bounded by the worker budget so a
	// fat batch cannot oversubscribe the host past the job pool's cap.
	sem := make(chan struct{}, s.cfg.Workers)
	var wg sync.WaitGroup
	for _, key := range order {
		wg.Add(1)
		go func(key string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			sl := unique[key]
			sl.resp, sl.err = s.compileOne(r.Context(), firstItem[key])
		}(key)
	}
	wg.Wait()

	out := BatchCompileResponse{Items: make([]BatchCompileItem, len(req.Items)), Unique: len(order)}
	seen := map[string]bool{}
	for i, key := range keys {
		sl := unique[key]
		switch {
		case sl.err != nil:
			out.Items[i] = BatchCompileItem{Error: sl.err.Error(), Code: compileStatus(sl.err)}
		case seen[key]:
			// A duplicate of an earlier item: same payload, and by
			// construction a cache hit.
			dup := *sl.resp
			dup.Cached = true
			out.Items[i] = BatchCompileItem{Response: &dup}
		default:
			out.Items[i] = BatchCompileItem{Response: sl.resp}
			seen[key] = true
		}
	}
	s.met.observeBatch(len(req.Items), len(order))
	writeJSON(w, http.StatusOK, &out)
}

// handleArtifact serves one cached compile response by its result-cache
// key without ever compiling: memory hit, else join an in-flight
// compilation, else the persistent store, else 404. Peers call it to
// resolve forwarded misses; it deliberately serves while draining, so
// an instance being rotated out keeps donating its cache to the fleet.
func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if resp, ok := s.cache.get(key); ok {
		hit := *resp
		hit.Cached = true
		writeJSON(w, http.StatusOK, &hit)
		return
	}
	// A compilation of this key may be in flight right now: join it as
	// a follower instead of reporting a miss, so a concurrent fleet-wide
	// burst of one key still compiles once.
	if fl := s.cache.peek(key); fl != nil {
		if v, ok := s.cache.wait(r.Context(), fl); ok {
			hit := *v
			hit.Cached = true
			writeJSON(w, http.StatusOK, &hit)
			return
		}
	}
	if resp, ok := s.loadDiskResponse(key); ok {
		s.cache.put(key, resp)
		hit := *resp
		hit.Cached = true
		writeJSON(w, http.StatusOK, &hit)
		return
	}
	writeError(w, http.StatusNotFound, "no artifact for key %q", key)
}

// diskResponseKey derives the persistent key for one compile response.
// The LRU key pair already content-hashes the program and the full
// option set (response shape included), so it is the disk identity too.
func diskResponseKey(key string) string {
	return diskcache.Key("svc-compile", key)
}

// loadDiskResponse fetches a persisted compile response ("" = none).
func (s *Server) loadDiskResponse(key string) (*CompileResponse, bool) {
	if s.cfg.Cache == nil {
		return nil, false
	}
	data, ok := s.cfg.Cache.Get(diskResponseKey(key))
	if !ok {
		return nil, false
	}
	var resp CompileResponse
	if json.Unmarshal(data, &resp) != nil || resp.Result == nil {
		return nil, false
	}
	return &resp, true
}

// storeDiskResponse persists a freshly computed compile response.
func (s *Server) storeDiskResponse(key string, resp *CompileResponse) {
	if s.cfg.Cache == nil {
		return
	}
	data, err := json.Marshal(resp)
	if err != nil {
		return
	}
	s.cfg.Cache.Put(diskResponseKey(key), data)
}

// observeCompileResult lifts one compilation's AA and analysis cache
// counters into the service metrics.
func (s *Server) observeCompileResult(cr *pipeline.CompileResult) {
	aas := cr.AAStats()
	var anHits, anMisses int64
	for _, as := range cr.AnalysisStats() {
		anHits += as.Hits
		anMisses += as.Misses
	}
	s.met.observeCompile(aas.CacheHits, aas.CacheLookups(), anHits, anMisses)
}

// handleProbe submits an asynchronous probe campaign.
func (s *Server) handleProbe(w http.ResponseWriter, r *http.Request) {
	var req ProbeRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	spec, err := probeSpec(&req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	spec.Compile.CompileWorkers = s.cfg.CompileWorkers
	spec.Cache = s.cfg.Cache
	j, err := s.submit("probe", "", func(ctx context.Context, j *job) (any, error) {
		spec.Log = j // driver progress lines become job events
		res, perr := driver.ProbeContext(ctx, spec)
		if perr != nil {
			return nil, perr
		}
		s.observeCompileResult(res.Final.Compile)
		return report.NewProbeJSON(res), nil
	})
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, j.info())
}

// handleFuzz submits an asynchronous differential-fuzzing campaign.
func (s *Server) handleFuzz(w http.ResponseWriter, r *http.Request) {
	var req FuzzRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	opts, err := fuzzOptions(&req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	opts.CompileWorkers = s.cfg.CompileWorkers
	j, err := s.submit("fuzz", "", func(ctx context.Context, j *job) (any, error) {
		opts.Ctx = ctx
		opts.Log = j // campaign progress lines become job events
		res, ferr := difftest.Fuzz(opts)
		if ferr != nil {
			return nil, ferr
		}
		return res, nil
	})
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, j.info())
}

// handleCampaign submits an asynchronous scripted campaign. The
// script is parsed up front (syntax errors are a 400, not a failed
// job) and runs sandboxed: the interpreter has no filesystem or exec
// bindings, the instruction budget is clamped to the server cap, and
// the wall clock is bounded by CampaignTimeout.
func (s *Server) handleCampaign(w http.ResponseWriter, r *http.Request) {
	var req CampaignRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.Script == "" {
		writeError(w, http.StatusBadRequest, "empty script")
		return
	}
	if _, err := campaign.Parse(req.Script); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	sum := sha256.Sum256([]byte(req.Script))
	sha := hex.EncodeToString(sum[:])
	maxSteps := s.cfg.CampaignMaxSteps
	if req.MaxSteps > 0 && req.MaxSteps < maxSteps {
		maxSteps = req.MaxSteps
	}
	j, err := s.submit("campaign", sha, func(ctx context.Context, j *job) (any, error) {
		res, cerr := campaign.Run(req.Script, campaign.Options{
			Ctx:            ctx,
			Out:            j, // print() lines become streamed job events
			Log:            j, // probe/fuzz progress too
			Workers:        req.Workers,
			CompileWorkers: s.cfg.CompileWorkers,
			Cache:          s.cfg.Cache,
			MaxSteps:       maxSteps,
			Timeout:        s.cfg.CampaignTimeout,
		})
		if cerr != nil {
			return nil, cerr
		}
		value, merr := json.Marshal(res.Value)
		if merr != nil {
			return nil, fmt.Errorf("encode campaign value: %w", merr)
		}
		return &CampaignResult{Value: value, Steps: res.Steps, ScriptSHA256: sha}, nil
	})
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	s.met.observeCampaignScript(sha)
	s.logf("campaign id=%s sha256=%s bytes=%d", j.id, sha, len(req.Script))
	writeJSON(w, http.StatusAccepted, j.info())
}

// handleRegistry lists every registered extension point: probing
// strategies, AA analyses and chains, app configurations, and
// grammar profiles.
func (s *Server) handleRegistry(w http.ResponseWriter, r *http.Request) {
	var out []RegistryInfo
	for _, reg := range registry.All() {
		info := RegistryInfo{Kind: reg.Kind(), Description: reg.Description()}
		for _, e := range reg.Entries() {
			info.Entries = append(info.Entries, RegistryEntry{
				Name: e.Name, Description: e.Description,
			})
		}
		out = append(out, info)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	j := s.jobs.get(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, j.info())
}

// handleJobCancel cancels a queued or running job.
func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	j := s.jobs.get(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	switch j.info().State {
	case JobQueued:
		// Finish it now; the worker skips terminal jobs it dequeues.
		if j.finish(JobCanceled, "canceled by client", nil) {
			s.met.observeJob(j.kind, JobCanceled)
		}
	case JobRunning:
		j.requestCancel() // the worker records the terminal state
	}
	writeJSON(w, http.StatusOK, j.info())
}

// handleJobEvents streams the job's progress lines: the backlog first,
// then live events until the job reaches a terminal state or the
// client disconnects.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	j := s.jobs.get(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flush := func() {
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
	}
	backlog, ch := j.subscribe()
	defer j.unsubscribe(ch)
	for _, line := range backlog {
		fmt.Fprintln(w, line)
	}
	flush()
	for {
		select {
		case line := <-ch:
			fmt.Fprintln(w, line)
			flush()
		case <-j.done:
			// Drain whatever was broadcast before the job finished.
			for {
				select {
				case line := <-ch:
					fmt.Fprintln(w, line)
				default:
					flush()
					return
				}
			}
		case <-r.Context().Done():
			return
		case <-s.root.Done():
			return
		}
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var tripped map[string]bool
	if s.cluster != nil {
		tripped = s.cluster.tripped()
	}
	warehouseRecords := -1
	if wh := warehouse.Open(s.cfg.Cache); wh != nil {
		warehouseRecords = wh.Load().Len()
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprint(w, s.met.render(s.cache, s.cfg.Cache, len(s.queue), cap(s.queue), s.inflight.Load(), s.cfg.Workers, s.cfg.CompileWorkers, tripped, warehouseRecords))
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	draining := s.Draining()
	code := http.StatusOK
	if draining {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, HealthResponse{
		OK:           !draining,
		Draining:     draining,
		QueueDepth:   len(s.queue),
		QueueCap:     cap(s.queue),
		JobsInflight: s.inflight.Load(),
	})
}
