package service_test

import (
	"bytes"
	"context"
	"io/fs"
	"os"
	"path/filepath"
	"testing"

	"github.com/oraql/go-oraql/internal/diskcache"
	"github.com/oraql/go-oraql/internal/service"
)

// corruptAllEntries flips a byte in the middle of every stored object.
func corruptAllEntries(t *testing.T, dir string) {
	t.Helper()
	n := 0
	err := filepath.WalkDir(filepath.Join(dir, "objects"), func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		data, rerr := os.ReadFile(path)
		if rerr != nil {
			return rerr
		}
		data[len(data)/2] ^= 0xff
		n++
		return os.WriteFile(path, data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no entries to corrupt")
	}
}

// Two service instances sharing one cache directory must behave as one
// cache: a compile performed by the first is served from disk by the
// second (which never ran the pipeline for it), with an identical
// payload, and the disk gauges surface in /metrics.
func TestSharedCacheDirAcrossInstances(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	req := compileReq(progSum, service.CompileOptions{WithIR: true})

	cacheA, err := diskcache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, clA, stopA := newTestServer(t, service.Config{Cache: cacheA})
	respA, err := clA.Compile(ctx, req)
	if err != nil {
		stopA()
		t.Fatalf("instance A compile: %v", err)
	}
	if respA.Cached {
		t.Fatal("first compile on a fresh dir claims to be cached")
	}
	stopA() // instance A is gone; only the directory survives

	cacheB, err := diskcache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, clB, stopB := newTestServer(t, service.Config{Cache: cacheB})
	defer stopB()
	respB, err := clB.Compile(ctx, req)
	if err != nil {
		t.Fatalf("instance B compile: %v", err)
	}
	if !respB.Cached {
		t.Fatal("instance B did not serve the shared-dir entry as a hit")
	}
	if !bytes.Equal(respA.Result, respB.Result) {
		t.Fatalf("shared-dir payload differs:\nA: %s\nB: %s", respA.Result, respB.Result)
	}
	if exeHash(t, respA) != exeHash(t, respB) {
		t.Fatal("exe hash differs across instances")
	}

	text, err := clB.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if hits := metricValue(t, text, "oraql_disk_cache_hits_total"); hits < 1 {
		t.Fatalf("disk hit gauge = %v, want >= 1", hits)
	}
	if entries := metricValue(t, text, "oraql_disk_cache_entries"); entries < 1 {
		t.Fatalf("disk entries gauge = %v, want >= 1", entries)
	}
	// Eviction counter must be present (zero) so dashboards can rely on it.
	_ = metricValue(t, text, "oraql_disk_cache_evictions_total")
}

// A corrupted persisted response must degrade to a recompile, not an
// error or a bad payload.
func TestSharedCacheDirCorruptResponseRecompiles(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	req := compileReq(progSum, service.CompileOptions{})

	cache, err := diskcache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, cl, stop := newTestServer(t, service.Config{Cache: cache})
	first, err := cl.Compile(ctx, req)
	if err != nil {
		stop()
		t.Fatal(err)
	}
	stop()

	corruptAllEntries(t, dir)

	cache2, err := diskcache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, cl2, stop2 := newTestServer(t, service.Config{Cache: cache2})
	defer stop2()
	second, err := cl2.Compile(ctx, req)
	if err != nil {
		t.Fatalf("compile after corruption: %v", err)
	}
	if second.Cached {
		t.Fatal("corrupt entry was served as a hit")
	}
	if exeHash(t, first) != exeHash(t, second) {
		t.Fatal("recompiled exe hash differs from original")
	}
}
