package service

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/oraql/go-oraql/internal/campaign"
	"github.com/oraql/go-oraql/internal/diskcache"
)

// Config tunes the service.
type Config struct {
	// Workers is the job worker pool size (default NumCPU).
	Workers int
	// QueueSize bounds the job queue; submissions beyond it are
	// rejected with 503 (default 64).
	QueueSize int
	// CacheEntries bounds the cross-request compile-result cache
	// (default 128).
	CacheEntries int
	// CompileWorkers bounds the per-function parallelism inside each
	// compilation. The default splits one machine budget over the job
	// workers (GOMAXPROCS/Workers, at least 1), so outer x inner never
	// oversubscribes the host. Compilation output is byte-identical for
	// every value.
	CompileWorkers int
	// RequestTimeout caps synchronous work per request; it composes
	// with client disconnection, whichever fires first cancels the
	// compilation mid-pipeline (default 60s).
	RequestTimeout time.Duration
	// CampaignTimeout caps the wall clock of every scripted campaign
	// job (default 10m). Requests cannot raise it.
	CampaignTimeout time.Duration
	// CampaignMaxSteps caps the interpreter instruction budget of
	// every scripted campaign (default campaign.DefaultMaxSteps).
	// Requests can lower it, never raise it.
	CampaignMaxSteps int64
	// Cache, when non-nil, backs the in-memory result cache with the
	// shared persistent store (-cache-dir): compile responses are
	// served across restarts and across N serve instances sharing one
	// directory, the pipeline's translation-unit/function layers are
	// enabled for every service compilation, and probe campaigns
	// persist their state. Nil keeps the service memory-only.
	Cache *diskcache.Store
	// Self is this instance's own base URL (e.g. "http://10.0.0.1:8421")
	// as the rest of the fleet reaches it. Required when Peers is set:
	// every instance must be configured with the same node set (its
	// Self plus its Peers) for the consistent-hash ring to agree on
	// ownership fleet-wide.
	Self string
	// Peers lists the other fleet instances' base URLs. Non-empty
	// enables peer-forwarding cluster mode: a cache miss on a key owned
	// by a peer is first fetched from that peer (GET /v1/artifact/{key})
	// before compiling locally.
	Peers []string
	// PeerTimeout caps one peer artifact fetch (default 2s). A slow or
	// hung peer costs at most this much before the local compile runs.
	PeerTimeout time.Duration
	// PeerCooldown is the base circuit-breaker cooldown after a peer
	// fetch failure; it doubles per consecutive failure up to 30s, and
	// any successful exchange (hits and clean misses alike) resets it
	// (default 1s).
	PeerCooldown time.Duration
	// PeerTransport overrides the HTTP peer fetcher; tests inject
	// latency, errors and hangs through it (nil = real HTTP).
	PeerTransport PeerTransport
	// Log receives one structured line per request and per job
	// transition (nil = silent).
	Log io.Writer
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU()
	}
	if c.QueueSize <= 0 {
		c.QueueSize = 64
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 128
	}
	if c.CompileWorkers <= 0 {
		c.CompileWorkers = runtime.GOMAXPROCS(0) / c.Workers
		if c.CompileWorkers < 1 {
			c.CompileWorkers = 1
		}
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 60 * time.Second
	}
	if c.CampaignTimeout <= 0 {
		c.CampaignTimeout = 10 * time.Minute
	}
	if c.CampaignMaxSteps <= 0 {
		c.CampaignMaxSteps = campaign.DefaultMaxSteps
	}
	if c.PeerTimeout <= 0 {
		c.PeerTimeout = 2 * time.Second
	}
	if c.PeerCooldown <= 0 {
		c.PeerCooldown = time.Second
	}
	return c
}

// Server is the oraql-serve HTTP handler: shared result cache, bounded
// job queue, worker pool, metrics. Create with New, serve it with
// net/http, stop it with Shutdown.
type Server struct {
	cfg     Config
	mux     *http.ServeMux
	cache   *resultCache
	jobs    *jobStore
	queue   chan *job
	met     *metrics
	cluster *cluster // nil outside cluster mode

	// root is cancelled by Shutdown; every job context derives from it.
	root       context.Context
	rootCancel context.CancelFunc

	// submitMu serializes Submit against Shutdown's closed flip, so no
	// job can slip into the queue after draining starts.
	submitMu sync.Mutex
	closed   bool

	inflight atomic.Int64
	wg       sync.WaitGroup
}

// New builds a ready-to-serve Server and starts its worker pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	root, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		cache:      newResultCache(cfg.CacheEntries),
		jobs:       newJobStore(),
		queue:      make(chan *job, cfg.QueueSize),
		met:        newMetrics(),
		root:       root,
		rootCancel: cancel,
	}
	if len(cfg.Peers) > 0 {
		s.cluster = newCluster(cfg.Self, cfg.Peers, cfg.PeerTimeout, cfg.PeerCooldown, cfg.PeerTransport)
	}
	s.mux = s.routes()
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// ServeHTTP implements http.Handler with request logging and metrics.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
	s.mux.ServeHTTP(sw, r)
	elapsed := time.Since(start)
	route := routeLabel(r)
	s.met.observeRequest(route, sw.code, elapsed)
	s.logf("http method=%s route=%s code=%d dur_ms=%.2f bytes=%d",
		r.Method, route, sw.code, float64(elapsed.Microseconds())/1000, sw.bytes)
}

// statusWriter captures the response code and size for logging.
type statusWriter struct {
	http.ResponseWriter
	code  int
	bytes int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	n, err := w.ResponseWriter.Write(p)
	w.bytes += n
	return n, err
}

// Flush forwards to the underlying writer so event streaming works
// through the logging wrapper.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// routeLabel maps a request to its bounded-cardinality metrics label.
func routeLabel(r *http.Request) string {
	switch {
	case r.URL.Path == "/v1/compile", r.URL.Path == "/v1/compile/batch",
		r.URL.Path == "/v1/probe", r.URL.Path == "/v1/fuzz",
		r.URL.Path == "/v1/campaign", r.URL.Path == "/v1/registry",
		r.URL.Path == "/v1/warehouse",
		r.URL.Path == "/metrics", r.URL.Path == "/healthz":
		return r.URL.Path
	case len(r.URL.Path) > len("/v1/artifact/") && r.URL.Path[:len("/v1/artifact/")] == "/v1/artifact/":
		return "/v1/artifact/{key}"
	case len(r.URL.Path) > len("/v1/jobs/") && r.URL.Path[:len("/v1/jobs/")] == "/v1/jobs/":
		if len(r.URL.Path) > 7 && r.URL.Path[len(r.URL.Path)-7:] == "/events" {
			return "/v1/jobs/{id}/events"
		}
		return "/v1/jobs/{id}"
	default:
		return "other"
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Log != nil {
		fmt.Fprintf(s.cfg.Log, "[oraql-serve] %s "+format+"\n",
			append([]any{time.Now().Format(time.RFC3339)}, args...)...)
	}
}

// submit enqueues a job, rejecting when draining or when the bounded
// queue is full. scriptSHA tags campaign jobs ("" otherwise).
func (s *Server) submit(kind, scriptSHA string, run func(ctx context.Context, j *job) (any, error)) (*job, error) {
	s.submitMu.Lock()
	defer s.submitMu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("service is draining")
	}
	j := s.jobs.add(kind, run)
	j.scriptSHA = scriptSHA
	select {
	case s.queue <- j:
		s.met.observeJob(kind, JobQueued)
		s.logf("job id=%s kind=%s state=queued depth=%d", j.id, kind, len(s.queue))
		return j, nil
	default:
		j.finish(JobFailed, "queue full", nil)
		return nil, fmt.Errorf("job queue full (%d)", cap(s.queue))
	}
}

// worker executes queued jobs until shutdown, then drains the queue by
// cancelling whatever is still waiting.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case j := <-s.queue:
			if s.root.Err() != nil {
				s.cancelQueued(j)
				continue
			}
			s.runJob(j)
		case <-s.root.Done():
			for {
				select {
				case j := <-s.queue:
					s.cancelQueued(j)
				default:
					return
				}
			}
		}
	}
}

func (s *Server) cancelQueued(j *job) {
	if j.finish(JobCanceled, "server draining", nil) {
		s.met.observeJob(j.kind, JobCanceled)
		s.logf("job id=%s kind=%s state=canceled (drained from queue)", j.id, j.kind)
	}
}

// runJob executes one job under a cancellable child of the root
// context and records its terminal state.
func (s *Server) runJob(j *job) {
	ctx, cancel := context.WithCancel(s.root)
	defer cancel()
	if !j.start(cancel) {
		return // cancelled while queued
	}
	s.inflight.Add(1)
	s.met.jobStarted(j.kind)
	defer func() {
		s.inflight.Add(-1)
		s.met.jobEnded(j.kind)
	}()

	result, err := j.run(ctx, j)
	switch {
	case err != nil && ctx.Err() != nil:
		j.finish(JobCanceled, err.Error(), nil)
		s.met.observeJob(j.kind, JobCanceled)
		s.logf("job id=%s kind=%s state=canceled err=%q", j.id, j.kind, err)
	case err != nil:
		j.finish(JobFailed, err.Error(), nil)
		s.met.observeJob(j.kind, JobFailed)
		s.logf("job id=%s kind=%s state=failed err=%q", j.id, j.kind, err)
	default:
		payload, merr := marshalResult(result)
		if merr != nil {
			j.finish(JobFailed, merr.Error(), nil)
			s.met.observeJob(j.kind, JobFailed)
			return
		}
		j.finish(JobDone, "", payload)
		s.met.observeJob(j.kind, JobDone)
		s.logf("job id=%s kind=%s state=done dur_ms=%.2f",
			j.id, j.kind, float64(time.Since(j.info().Started).Microseconds())/1000)
	}
}

// Shutdown drains the service: new submissions are rejected, queued
// jobs are cancelled without running, in-flight jobs have their
// contexts cancelled (stopping compilations mid-pipeline), and the
// worker pool is waited for up to ctx's deadline.
func (s *Server) Shutdown(ctx context.Context) error {
	s.submitMu.Lock()
	s.closed = true
	s.submitMu.Unlock()
	s.rootCancel()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.logf("shutdown complete")
		return nil
	case <-ctx.Done():
		return fmt.Errorf("shutdown: workers did not drain: %w", ctx.Err())
	}
}

// Workers returns the resolved worker pool size.
func (s *Server) Workers() int { return s.cfg.Workers }

// CompileWorkers returns the resolved per-compilation parallelism.
func (s *Server) CompileWorkers() int { return s.cfg.CompileWorkers }

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool {
	s.submitMu.Lock()
	defer s.submitMu.Unlock()
	return s.closed
}
