package service_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/oraql/go-oraql/internal/service"
)

// TestBatchDedupOrderAndEquivalence pins the batch contract: items
// come back in request order, duplicates are deduplicated to one
// compilation and marked cached, the payloads are byte-identical to
// what /v1/compile produces for the same requests, and a warm repeat
// of the whole batch compiles nothing.
func TestBatchDedupOrderAndEquivalence(t *testing.T) {
	_, cl, stop := newTestServer(t, service.Config{})
	defer stop()
	ctx := context.Background()

	a := *compileReq(progSum, service.CompileOptions{})
	b := *compileReq(progPtr, service.CompileOptions{})
	c := *compileReq(progSum, service.CompileOptions{OptLevel: 1})
	items := []service.CompileRequest{a, b, a, c, a} // A B A C A

	batch, err := cl.CompileBatch(ctx, &service.BatchCompileRequest{Items: items})
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	if len(batch.Items) != len(items) {
		t.Fatalf("%d items back, want %d", len(batch.Items), len(items))
	}
	if batch.Unique != 3 {
		t.Fatalf("Unique=%d, want 3", batch.Unique)
	}
	for i, item := range batch.Items {
		if item.Response == nil {
			t.Fatalf("item %d failed: %s (code %d)", i, item.Error, item.Code)
		}
	}

	// Request order: duplicates of A carry A's key, B and C differ.
	first := batch.Items[0].Response
	for _, i := range []int{2, 4} {
		dup := batch.Items[i].Response
		if dup.ModuleHash != first.ModuleHash || dup.ConfigHash != first.ConfigHash {
			t.Fatalf("item %d is not the duplicate of item 0", i)
		}
		if !dup.Cached {
			t.Fatalf("duplicate item %d not marked cached", i)
		}
		if !bytes.Equal(dup.Result, first.Result) {
			t.Fatalf("duplicate item %d payload differs from item 0", i)
		}
	}
	if batch.Items[0].Response.Cached {
		t.Fatal("the first occurrence cannot be a cache hit on a cold server")
	}
	if batch.Items[1].Response.ModuleHash == first.ModuleHash {
		t.Fatal("distinct programs must not share a module hash")
	}
	if batch.Items[3].Response.ConfigHash == first.ConfigHash {
		t.Fatal("distinct options must not share a config hash")
	}

	// The batch path and the single-compile path are the same engine:
	// /v1/compile for the same request returns the identical document.
	// (Compare compacted: the pretty-printer re-indents the embedded
	// result by its nesting depth, which differs between envelopes.)
	single, err := cl.Compile(ctx, &a)
	if err != nil {
		t.Fatal(err)
	}
	compact := func(raw []byte) string {
		var buf bytes.Buffer
		if err := json.Compact(&buf, raw); err != nil {
			t.Fatalf("compact payload: %v", err)
		}
		return buf.String()
	}
	if compact(single.Result) != compact(first.Result) {
		t.Fatal("batch payload differs from the /v1/compile payload")
	}

	text, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := metricValue(t, text, "oraql_compiles_total"); got != 3 {
		t.Fatalf("compiles=%v, want exactly 3 (one per unique key)", got)
	}
	if got := metricValue(t, text, "oraql_batch_requests_total"); got != 1 {
		t.Fatalf("batch_requests=%v, want 1", got)
	}
	if got := metricValue(t, text, "oraql_batch_items_total"); got != 5 {
		t.Fatalf("batch_items=%v, want 5", got)
	}
	if got := metricValue(t, text, "oraql_batch_unique_total"); got != 3 {
		t.Fatalf("batch_unique=%v, want 3", got)
	}

	// Warm repeat: everything cached, no new compilations.
	warm, err := cl.CompileBatch(ctx, &service.BatchCompileRequest{Items: items})
	if err != nil {
		t.Fatal(err)
	}
	for i, item := range warm.Items {
		if item.Response == nil || !item.Response.Cached {
			t.Fatalf("warm item %d not served from cache", i)
		}
		if !bytes.Equal(item.Response.Result, batch.Items[i].Response.Result) {
			t.Fatalf("warm item %d payload changed", i)
		}
	}
	text, err = cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := metricValue(t, text, "oraql_compiles_total"); got != 3 {
		t.Fatalf("warm batch recompiled: compiles=%v, want still 3", got)
	}
}

// TestBatchPerItemErrors pins partial failure: one bad item fails that
// item alone with its own status code while the rest of the batch
// compiles, and the response is still HTTP 200.
func TestBatchPerItemErrors(t *testing.T) {
	_, cl, stop := newTestServer(t, service.Config{})
	defer stop()

	items := []service.CompileRequest{
		*compileReq(progSum, service.CompileOptions{}),
		*compileReq("int main( {", service.CompileOptions{}), // syntax error
		{Program: service.ProgramSpec{ConfigID: "no-such-config"}},
	}
	batch, err := cl.CompileBatch(context.Background(), &service.BatchCompileRequest{Items: items})
	if err != nil {
		t.Fatalf("a batch with failing items must still answer 200: %v", err)
	}
	if batch.Items[0].Response == nil {
		t.Fatalf("good item failed: %s", batch.Items[0].Error)
	}
	if batch.Items[1].Response != nil || batch.Items[1].Error == "" || batch.Items[1].Code != http.StatusUnprocessableEntity {
		t.Fatalf("syntax-error item: %+v, want a 422 error", batch.Items[1])
	}
	if batch.Items[2].Response != nil || batch.Items[2].Code != http.StatusBadRequest {
		t.Fatalf("unknown-config item: %+v, want a 400 error", batch.Items[2])
	}
}

// TestBatchValidation pins the request-level rejections: empty and
// oversized batches bounce with 400 before any compilation runs.
func TestBatchValidation(t *testing.T) {
	_, cl, stop := newTestServer(t, service.Config{})
	defer stop()
	ctx := context.Background()

	_, err := cl.CompileBatch(ctx, &service.BatchCompileRequest{})
	if err == nil || !strings.Contains(err.Error(), "400") {
		t.Fatalf("empty batch should 400, got %v", err)
	}

	huge := make([]service.CompileRequest, 1025)
	for i := range huge {
		huge[i] = *compileReq(progSum, service.CompileOptions{})
	}
	_, err = cl.CompileBatch(ctx, &service.BatchCompileRequest{Items: huge})
	if err == nil || !strings.Contains(err.Error(), "400") {
		t.Fatalf("oversized batch should 400, got %v", err)
	}

	text, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := metricValue(t, text, "oraql_compiles_total"); got != 0 {
		t.Fatalf("rejected batches compiled %v programs", got)
	}
}

// TestBatchDraining pins the 503 while the service drains.
func TestBatchDraining(t *testing.T) {
	svc, cl, stop := newTestServer(t, service.Config{})
	defer stop() // a second Shutdown after the in-test drain is a no-op
	ctx := context.Background()

	sctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if err := svc.Shutdown(sctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	_, err := cl.CompileBatch(ctx, &service.BatchCompileRequest{
		Items: []service.CompileRequest{*compileReq(progSum, service.CompileOptions{})},
	})
	if err == nil || !strings.Contains(err.Error(), "503") {
		t.Fatalf("draining batch should 503, got %v", err)
	}
}
