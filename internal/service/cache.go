package service

import (
	"container/list"
	"sync"
)

// resultCache is the cross-request compile-result store: an LRU map
// from the (module-hash, config-hash) key to the encoded compile
// response, so resubmitting an identical (program, configuration)
// pair is served without running the pipeline again. It is shared by
// every request and safe for concurrent use.
type resultCache struct {
	mu      sync.Mutex
	max     int
	order   *list.List // front = most recently used
	entries map[string]*list.Element

	hits, misses int64
}

type cacheItem struct {
	key string
	val *CompileResponse
}

func newResultCache(max int) *resultCache {
	if max <= 0 {
		max = 128
	}
	return &resultCache{max: max, order: list.New(), entries: map[string]*list.Element{}}
}

// get returns the cached response for key and bumps its recency.
func (c *resultCache) get(key string) (*CompileResponse, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheItem).val, true
}

// put stores a response, evicting the least recently used entry when
// the cache is full.
func (c *resultCache) put(key string, v *CompileResponse) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheItem).val = v
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheItem{key: key, val: v})
	for len(c.entries) > c.max {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.entries, last.Value.(*cacheItem).key)
	}
}

// counters returns (hits, misses, live entries).
func (c *resultCache) counters() (hits, misses int64, entries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, len(c.entries)
}
