package service

import (
	"container/list"
	"context"
	"sync"
)

// resultCache is the cross-request compile-result store: an LRU map
// from the (module-hash, config-hash) key to the encoded compile
// response, so resubmitting an identical (program, configuration)
// pair is served without running the pipeline again. It is shared by
// every request and safe for concurrent use.
//
// Misses are single-flighted: the first request for a key becomes the
// leader and runs the pipeline; concurrent requests for the same key
// wait for the leader's response instead of compiling the identical
// program again (no thundering herd between get and put). A leader
// that fails wakes its followers empty-handed and they compete to
// become the next leader, so a transient failure never wedges a key.
type resultCache struct {
	mu      sync.Mutex
	max     int
	order   *list.List // front = most recently used
	entries map[string]*list.Element
	flights map[string]*flight

	hits, misses int64
}

// flight is one in-progress compilation of a cache key. val is written
// exactly once, before done is closed (the close is the happens-before
// edge); nil val means the leader failed.
type flight struct {
	done chan struct{}
	val  *CompileResponse
}

type cacheItem struct {
	key string
	val *CompileResponse
}

func newResultCache(max int) *resultCache {
	if max <= 0 {
		max = 128
	}
	return &resultCache{max: max, order: list.New(), entries: map[string]*list.Element{}, flights: map[string]*flight{}}
}

// get returns the cached response for key and bumps its recency.
func (c *resultCache) get(key string) (*CompileResponse, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheItem).val, true
}

// put stores a response, evicting the least recently used entry when
// the cache is full.
func (c *resultCache) put(key string, v *CompileResponse) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.store(key, v)
}

// store is put's body; the caller holds c.mu.
func (c *resultCache) store(key string, v *CompileResponse) {
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheItem).val = v
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheItem{key: key, val: v})
	for len(c.entries) > c.max {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.entries, last.Value.(*cacheItem).key)
	}
}

// begin is the single-flight entry point. It returns exactly one of:
// a cached response (hit), a flight to wait on (another request is
// already compiling this key), or leader=true — the caller owns the
// compilation and must call complete exactly once.
func (c *resultCache) begin(key string) (cached *CompileResponse, fl *flight, leader bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.hits++
		c.order.MoveToFront(el)
		return el.Value.(*cacheItem).val, nil, false
	}
	if fl, ok := c.flights[key]; ok {
		return nil, fl, false
	}
	c.misses++
	fl = &flight{done: make(chan struct{})}
	c.flights[key] = fl
	return nil, fl, true
}

// peek returns the in-flight compilation of key, if any, without
// competing for leadership — the artifact endpoint joins flights this
// way so a peer asking mid-compile gets the result instead of a miss.
func (c *resultCache) peek(key string) *flight {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.flights[key]
}

// wait blocks until the flight's leader completes or ctx is cancelled.
// ok=false means no response materialized (leader failed, or the wait
// was cancelled); the caller re-enters begin to compete for leadership.
func (c *resultCache) wait(ctx context.Context, fl *flight) (*CompileResponse, bool) {
	select {
	case <-fl.done:
	case <-ctx.Done():
		return nil, false
	}
	if fl.val == nil {
		return nil, false
	}
	c.mu.Lock()
	c.hits++
	c.mu.Unlock()
	return fl.val, true
}

// complete finishes a flight: stores the response (nil = leader
// failed, nothing cached) and wakes every waiter.
func (c *resultCache) complete(key string, fl *flight, v *CompileResponse) {
	c.mu.Lock()
	if c.flights[key] == fl {
		delete(c.flights, key)
	}
	if v != nil {
		c.store(key, v)
	}
	c.mu.Unlock()
	fl.val = v
	close(fl.done)
}

// counters returns (hits, misses, live entries).
func (c *resultCache) counters() (hits, misses int64, entries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, len(c.entries)
}
