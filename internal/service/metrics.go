package service

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/oraql/go-oraql/internal/diskcache"
)

// metrics is a hand-rolled Prometheus-text registry: request counters
// and latency histograms per route, queue/worker gauges, and the
// compiler-level cache counters (result cache, AA query cache,
// analysis cache) accumulated from every compilation the service
// runs. Everything is rendered by render() in the text exposition
// format; no external client library is involved.
type metrics struct {
	mu sync.Mutex

	// requests[route][code] counts completed HTTP requests.
	requests map[string]map[int]int64
	// latency[route] is a fixed-bucket duration histogram.
	latency map[string]*histogram

	// jobs[kind][state] counts job transitions into terminal states
	// plus submissions (state "queued").
	jobs map[string]map[string]int64
	// inflight[kind] gauges the jobs currently executing, per kind.
	inflight map[string]int64
	// campaignScripts[sha256] counts campaign submissions per script
	// body (bounded: the job store itself bounds distinct campaigns).
	campaignScripts map[string]int64

	// Compiler-level counters, summed over every compilation executed
	// by the service (sync compiles and job compiles alike).
	compiles       int64
	aaCacheHits    int64
	aaCacheLookups int64
	analysisHits   int64
	analysisMisses int64

	// peer[base] counts cluster fetches against each peer, by outcome.
	peer map[string]*peerCounters
	// Batch endpoint counters: requests, items across them, and the
	// distinct content keys those items deduplicated to.
	batchRequests int64
	batchItems    int64
	batchUnique   int64

	// warehouse[op] counts completed /v1/warehouse operations.
	warehouse map[string]int64
}

// peerCounters tallies one peer's fetch outcomes.
type peerCounters struct {
	forwards, hits, misses, failures int64
}

// Peer fetch outcomes for observePeer.
const (
	peerForward = "forward"
	peerHit     = "hit"
	peerMiss    = "miss"
	peerFailure = "failure"
)

// latencyBuckets are the histogram upper bounds in seconds.
var latencyBuckets = []float64{0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30}

type histogram struct {
	counts []int64 // one per bucket, cumulative style computed at render
	sum    float64
	total  int64
}

func newMetrics() *metrics {
	return &metrics{
		requests: map[string]map[int]int64{},
		latency:  map[string]*histogram{},
		jobs:     map[string]map[string]int64{},
		// Pre-seed the known kinds so the labeled gauge renders a zero
		// series from the first scrape.
		inflight:        map[string]int64{"probe": 0, "fuzz": 0, "campaign": 0},
		campaignScripts: map[string]int64{},
		peer:            map[string]*peerCounters{},
		warehouse:       map[string]int64{},
	}
}

// observeWarehouse books one completed /v1/warehouse operation.
func (m *metrics) observeWarehouse(op string) {
	m.mu.Lock()
	m.warehouse[op]++
	m.mu.Unlock()
}

// observePeer books one peer fetch outcome (peerForward/Hit/Miss/Failure).
func (m *metrics) observePeer(peer, outcome string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := m.peer[peer]
	if c == nil {
		c = &peerCounters{}
		m.peer[peer] = c
	}
	switch outcome {
	case peerForward:
		c.forwards++
	case peerHit:
		c.hits++
	case peerMiss:
		c.misses++
	case peerFailure:
		c.failures++
	}
}

// observeBatch books one /v1/compile/batch request.
func (m *metrics) observeBatch(items, unique int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.batchRequests++
	m.batchItems += int64(items)
	m.batchUnique += int64(unique)
}

// observeRequest books one completed HTTP request.
func (m *metrics) observeRequest(route string, code int, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	byCode := m.requests[route]
	if byCode == nil {
		byCode = map[int]int64{}
		m.requests[route] = byCode
	}
	byCode[code]++
	h := m.latency[route]
	if h == nil {
		h = &histogram{counts: make([]int64, len(latencyBuckets))}
		m.latency[route] = h
	}
	sec := d.Seconds()
	for i, ub := range latencyBuckets {
		if sec <= ub {
			h.counts[i]++
			break
		}
	}
	h.sum += sec
	h.total++
}

// observeJob books a job state transition (queued and terminal states).
func (m *metrics) observeJob(kind, state string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	byState := m.jobs[kind]
	if byState == nil {
		byState = map[string]int64{}
		m.jobs[kind] = byState
	}
	byState[state]++
}

// jobStarted/jobEnded track the per-kind inflight gauge.
func (m *metrics) jobStarted(kind string) {
	m.mu.Lock()
	m.inflight[kind]++
	m.mu.Unlock()
}

func (m *metrics) jobEnded(kind string) {
	m.mu.Lock()
	m.inflight[kind]--
	m.mu.Unlock()
}

// observeCampaignScript books one campaign submission by script hash.
func (m *metrics) observeCampaignScript(sha string) {
	m.mu.Lock()
	m.campaignScripts[sha]++
	m.mu.Unlock()
}

// observeCompile lifts one compilation's cache counters into the
// service-wide series: AA query-cache hits/lookups from aa.Stats and
// the analysis manager's hit/miss counters.
func (m *metrics) observeCompile(aaHits, aaLookups, anHits, anMisses int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.compiles++
	m.aaCacheHits += aaHits
	m.aaCacheLookups += aaLookups
	m.analysisHits += anHits
	m.analysisMisses += anMisses
}

// render writes the registry in the Prometheus text exposition format,
// with the live gauges passed in by the server. disk is the shared
// persistent store (nil when the service runs memory-only);
// peerTripped maps every configured peer to its live breaker state
// (nil when the instance is not in a cluster).
// warehouseRecords is the live corpus size (-1 when no persistent
// store is configured, which suppresses the gauge).
func (m *metrics) render(cache *resultCache, disk *diskcache.Store, queueDepth, queueCap int, inflight int64, workers, compileWorkers int, peerTripped map[string]bool, warehouseRecords int) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var b strings.Builder

	b.WriteString("# HELP oraql_requests_total Completed HTTP requests by route and status code.\n")
	b.WriteString("# TYPE oraql_requests_total counter\n")
	for _, route := range sortedKeys(m.requests) {
		codes := make([]int, 0, len(m.requests[route]))
		for c := range m.requests[route] {
			codes = append(codes, c)
		}
		sort.Ints(codes)
		for _, c := range codes {
			fmt.Fprintf(&b, "oraql_requests_total{route=%q,code=\"%d\"} %d\n", route, c, m.requests[route][c])
		}
	}

	b.WriteString("# HELP oraql_request_duration_seconds Request latency by route.\n")
	b.WriteString("# TYPE oraql_request_duration_seconds histogram\n")
	for _, route := range sortedKeys(m.latency) {
		h := m.latency[route]
		var cum int64
		for i, ub := range latencyBuckets {
			cum += h.counts[i]
			fmt.Fprintf(&b, "oraql_request_duration_seconds_bucket{route=%q,le=\"%g\"} %d\n",
				route, ub, cum)
		}
		fmt.Fprintf(&b, "oraql_request_duration_seconds_bucket{route=%q,le=\"+Inf\"} %d\n", route, h.total)
		fmt.Fprintf(&b, "oraql_request_duration_seconds_sum{route=%q} %g\n", route, h.sum)
		fmt.Fprintf(&b, "oraql_request_duration_seconds_count{route=%q} %d\n", route, h.total)
	}

	b.WriteString("# HELP oraql_jobs_total Job submissions and terminal transitions by kind and state.\n")
	b.WriteString("# TYPE oraql_jobs_total counter\n")
	for _, kind := range sortedKeys(m.jobs) {
		for _, state := range sortedKeys(m.jobs[kind]) {
			fmt.Fprintf(&b, "oraql_jobs_total{kind=%q,state=%q} %d\n", kind, state, m.jobs[kind][state])
		}
	}

	b.WriteString("# HELP oraql_queue_depth Jobs waiting in the bounded queue.\n")
	b.WriteString("# TYPE oraql_queue_depth gauge\n")
	fmt.Fprintf(&b, "oraql_queue_depth %d\n", queueDepth)
	b.WriteString("# HELP oraql_queue_capacity Queue capacity.\n")
	b.WriteString("# TYPE oraql_queue_capacity gauge\n")
	fmt.Fprintf(&b, "oraql_queue_capacity %d\n", queueCap)
	b.WriteString("# HELP oraql_jobs_inflight Jobs currently executing on the worker pool, by kind.\n")
	b.WriteString("# TYPE oraql_jobs_inflight gauge\n")
	for _, kind := range sortedKeys(m.inflight) {
		fmt.Fprintf(&b, "oraql_jobs_inflight{kind=%q} %d\n", kind, m.inflight[kind])
	}
	_ = inflight // the aggregate stays on /healthz; the gauge is per-kind
	b.WriteString("# HELP oraql_workers Job worker pool size.\n")
	b.WriteString("# TYPE oraql_workers gauge\n")
	fmt.Fprintf(&b, "oraql_workers %d\n", workers)
	b.WriteString("# HELP oraql_compile_workers Per-function parallelism inside each compilation.\n")
	b.WriteString("# TYPE oraql_compile_workers gauge\n")
	fmt.Fprintf(&b, "oraql_compile_workers %d\n", compileWorkers)

	hits, misses, entries := cache.counters()
	b.WriteString("# HELP oraql_result_cache_hits_total Compile requests served from the cross-request result cache.\n")
	b.WriteString("# TYPE oraql_result_cache_hits_total counter\n")
	fmt.Fprintf(&b, "oraql_result_cache_hits_total %d\n", hits)
	b.WriteString("# HELP oraql_result_cache_misses_total Compile requests that ran the pipeline.\n")
	b.WriteString("# TYPE oraql_result_cache_misses_total counter\n")
	fmt.Fprintf(&b, "oraql_result_cache_misses_total %d\n", misses)
	b.WriteString("# HELP oraql_result_cache_entries Live result-cache entries.\n")
	b.WriteString("# TYPE oraql_result_cache_entries gauge\n")
	fmt.Fprintf(&b, "oraql_result_cache_entries %d\n", entries)

	if disk != nil {
		c := disk.Counters()
		entries, bytes := disk.Usage()
		b.WriteString("# HELP oraql_disk_cache_hits_total Persistent-store lookups served from disk.\n")
		b.WriteString("# TYPE oraql_disk_cache_hits_total counter\n")
		fmt.Fprintf(&b, "oraql_disk_cache_hits_total %d\n", c.Hits)
		b.WriteString("# HELP oraql_disk_cache_misses_total Persistent-store lookups that found nothing.\n")
		b.WriteString("# TYPE oraql_disk_cache_misses_total counter\n")
		fmt.Fprintf(&b, "oraql_disk_cache_misses_total %d\n", c.Misses)
		b.WriteString("# HELP oraql_disk_cache_corrupt_total Torn/truncated/foreign entries discarded as misses.\n")
		b.WriteString("# TYPE oraql_disk_cache_corrupt_total counter\n")
		fmt.Fprintf(&b, "oraql_disk_cache_corrupt_total %d\n", c.Corrupt)
		b.WriteString("# HELP oraql_disk_cache_puts_total Entries published to the persistent store.\n")
		b.WriteString("# TYPE oraql_disk_cache_puts_total counter\n")
		fmt.Fprintf(&b, "oraql_disk_cache_puts_total %d\n", c.Puts)
		b.WriteString("# HELP oraql_disk_cache_evictions_total Entries removed by size-capped GC.\n")
		b.WriteString("# TYPE oraql_disk_cache_evictions_total counter\n")
		fmt.Fprintf(&b, "oraql_disk_cache_evictions_total %d\n", c.Evictions)
		b.WriteString("# HELP oraql_disk_cache_entries Live entries in the shared cache directory.\n")
		b.WriteString("# TYPE oraql_disk_cache_entries gauge\n")
		fmt.Fprintf(&b, "oraql_disk_cache_entries %d\n", entries)
		b.WriteString("# HELP oraql_disk_cache_bytes Bytes used by the shared cache directory.\n")
		b.WriteString("# TYPE oraql_disk_cache_bytes gauge\n")
		fmt.Fprintf(&b, "oraql_disk_cache_bytes %d\n", bytes)
	}

	if len(m.peer) > 0 || len(peerTripped) > 0 {
		b.WriteString("# HELP oraql_peer_forwards_total Cache misses forwarded to a peer ring owner.\n")
		b.WriteString("# TYPE oraql_peer_forwards_total counter\n")
		for _, p := range sortedKeys(m.peer) {
			fmt.Fprintf(&b, "oraql_peer_forwards_total{peer=%q} %d\n", p, m.peer[p].forwards)
		}
		b.WriteString("# HELP oraql_peer_hits_total Forwarded fetches the peer answered from its cache.\n")
		b.WriteString("# TYPE oraql_peer_hits_total counter\n")
		for _, p := range sortedKeys(m.peer) {
			fmt.Fprintf(&b, "oraql_peer_hits_total{peer=%q} %d\n", p, m.peer[p].hits)
		}
		b.WriteString("# HELP oraql_peer_misses_total Forwarded fetches the peer had no artifact for.\n")
		b.WriteString("# TYPE oraql_peer_misses_total counter\n")
		for _, p := range sortedKeys(m.peer) {
			fmt.Fprintf(&b, "oraql_peer_misses_total{peer=%q} %d\n", p, m.peer[p].misses)
		}
		b.WriteString("# HELP oraql_peer_failures_total Forwarded fetches that failed in transport (degraded to local compile).\n")
		b.WriteString("# TYPE oraql_peer_failures_total counter\n")
		for _, p := range sortedKeys(m.peer) {
			fmt.Fprintf(&b, "oraql_peer_failures_total{peer=%q} %d\n", p, m.peer[p].failures)
		}
		b.WriteString("# HELP oraql_peer_tripped Peer circuit breakers currently open (1 = fetches suppressed).\n")
		b.WriteString("# TYPE oraql_peer_tripped gauge\n")
		for _, p := range sortedKeys(peerTripped) {
			v := 0
			if peerTripped[p] {
				v = 1
			}
			fmt.Fprintf(&b, "oraql_peer_tripped{peer=%q} %d\n", p, v)
		}
	}

	b.WriteString("# HELP oraql_batch_requests_total Batch compile requests served.\n")
	b.WriteString("# TYPE oraql_batch_requests_total counter\n")
	fmt.Fprintf(&b, "oraql_batch_requests_total %d\n", m.batchRequests)
	b.WriteString("# HELP oraql_batch_items_total Items across all batch compile requests.\n")
	b.WriteString("# TYPE oraql_batch_items_total counter\n")
	fmt.Fprintf(&b, "oraql_batch_items_total %d\n", m.batchItems)
	b.WriteString("# HELP oraql_batch_unique_total Distinct content keys across all batch compile requests.\n")
	b.WriteString("# TYPE oraql_batch_unique_total counter\n")
	fmt.Fprintf(&b, "oraql_batch_unique_total %d\n", m.batchUnique)

	if len(m.warehouse) > 0 {
		b.WriteString("# HELP oraql_warehouse_requests_total Completed /v1/warehouse operations by op.\n")
		b.WriteString("# TYPE oraql_warehouse_requests_total counter\n")
		for _, op := range sortedKeys(m.warehouse) {
			fmt.Fprintf(&b, "oraql_warehouse_requests_total{op=%q} %d\n", op, m.warehouse[op])
		}
	}
	if warehouseRecords >= 0 {
		b.WriteString("# HELP oraql_warehouse_records Findings registered in the forensics warehouse.\n")
		b.WriteString("# TYPE oraql_warehouse_records gauge\n")
		fmt.Fprintf(&b, "oraql_warehouse_records %d\n", warehouseRecords)
	}

	if len(m.campaignScripts) > 0 {
		b.WriteString("# HELP oraql_campaign_scripts_total Campaign submissions by script sha256.\n")
		b.WriteString("# TYPE oraql_campaign_scripts_total counter\n")
		for _, sha := range sortedKeys(m.campaignScripts) {
			fmt.Fprintf(&b, "oraql_campaign_scripts_total{sha256=%q} %d\n", sha, m.campaignScripts[sha])
		}
	}

	b.WriteString("# HELP oraql_compiles_total Pipeline compilations executed by the service.\n")
	b.WriteString("# TYPE oraql_compiles_total counter\n")
	fmt.Fprintf(&b, "oraql_compiles_total %d\n", m.compiles)
	b.WriteString("# HELP oraql_aa_query_cache_hits_total Memoized AA query-cache hits over all service compilations.\n")
	b.WriteString("# TYPE oraql_aa_query_cache_hits_total counter\n")
	fmt.Fprintf(&b, "oraql_aa_query_cache_hits_total %d\n", m.aaCacheHits)
	b.WriteString("# HELP oraql_aa_query_cache_lookups_total Memoized AA query-cache lookups (hits + misses).\n")
	b.WriteString("# TYPE oraql_aa_query_cache_lookups_total counter\n")
	fmt.Fprintf(&b, "oraql_aa_query_cache_lookups_total %d\n", m.aaCacheLookups)
	b.WriteString("# HELP oraql_analysis_cache_hits_total Analysis-manager cache hits over all service compilations.\n")
	b.WriteString("# TYPE oraql_analysis_cache_hits_total counter\n")
	fmt.Fprintf(&b, "oraql_analysis_cache_hits_total %d\n", m.analysisHits)
	b.WriteString("# HELP oraql_analysis_cache_misses_total Analysis-manager cache misses over all service compilations.\n")
	b.WriteString("# TYPE oraql_analysis_cache_misses_total counter\n")
	fmt.Fprintf(&b, "oraql_analysis_cache_misses_total %d\n", m.analysisMisses)

	return b.String()
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
