package service_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/oraql/go-oraql/internal/diskcache"
	"github.com/oraql/go-oraql/internal/service"
	"github.com/oraql/go-oraql/internal/service/client"
)

// fleetNode is one in-process serve instance reachable over real
// loopback HTTP, so peer fetches exercise the production transport.
type fleetNode struct {
	svc *service.Server
	cl  *client.Client
	url string
	hs  *http.Server
}

// kill drops the node off the network (listener and connections
// closed) without draining it, simulating a crashed instance.
func (n *fleetNode) kill() { n.hs.Close() }

// newFleet starts n instances, each configured with its own URL as
// Self and the others as Peers. The listeners are bound before any
// Config is built because ring membership needs every URL up front.
func newFleet(t *testing.T, n int, tweak func(i int, cfg *service.Config)) ([]*fleetNode, []string) {
	t.Helper()
	listeners := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		listeners[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	nodes := make([]*fleetNode, n)
	for i := range nodes {
		cfg := service.Config{Self: urls[i]}
		for j, u := range urls {
			if j != i {
				cfg.Peers = append(cfg.Peers, u)
			}
		}
		if tweak != nil {
			tweak(i, &cfg)
		}
		svc := service.New(cfg)
		hs := &http.Server{Handler: svc}
		go hs.Serve(listeners[i])
		node := &fleetNode{svc: svc, cl: client.New(urls[i]), url: urls[i], hs: hs}
		nodes[i] = node
		t.Cleanup(func() {
			node.hs.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			if err := node.svc.Shutdown(ctx); err != nil {
				t.Errorf("shutdown %s: %v", node.url, err)
			}
		})
	}
	return nodes, urls
}

// reqsOwnedBy generates n distinct compile requests whose cache keys
// the fleet's ring assigns to owner, by scanning seed-varied programs.
func reqsOwnedBy(t *testing.T, nodes []string, owner string, n int) []*service.CompileRequest {
	t.Helper()
	var out []*service.CompileRequest
	for seed := 0; seed < 4096 && len(out) < n; seed++ {
		src := fmt.Sprintf("int main() { int pad = %d; print(pad, \"\\n\"); return 0; }", seed)
		req := compileReq(src, service.CompileOptions{})
		if service.OwnerForRequest(nodes, req) == owner {
			out = append(out, req)
		}
	}
	if len(out) < n {
		t.Fatalf("found %d/%d requests owned by %s in 4096 candidates", len(out), n, owner)
	}
	return out
}

// labeledMetricSum sums every sample of a labeled series ("name{...} v");
// an absent series sums to 0.
func labeledMetricSum(t *testing.T, text, name string) float64 {
	t.Helper()
	var total float64
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, name+"{") {
			continue
		}
		_, rest, ok := strings.Cut(line, "} ")
		if !ok {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
		if err != nil {
			t.Fatalf("parse %s sample %q: %v", name, line, err)
		}
		total += v
	}
	return total
}

// peerStats scrapes one node's peer counters in a single metrics pull.
type peerStats struct {
	forwards, hits, misses, failures, tripped float64
	compiles                                  float64
}

func scrapePeerStats(t *testing.T, cl *client.Client) peerStats {
	t.Helper()
	text, err := cl.Metrics(context.Background())
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	return peerStats{
		forwards: labeledMetricSum(t, text, "oraql_peer_forwards_total"),
		hits:     labeledMetricSum(t, text, "oraql_peer_hits_total"),
		misses:   labeledMetricSum(t, text, "oraql_peer_misses_total"),
		failures: labeledMetricSum(t, text, "oraql_peer_failures_total"),
		tripped:  labeledMetricSum(t, text, "oraql_peer_tripped"),
		compiles: metricValue(t, text, "oraql_compiles_total"),
	}
}

// TestClusterPeerForwardHit pins the happy path: a miss on a non-owner
// is answered from the ring owner's cache — byte-identical payload, no
// local compilation, and the forward/hit visible on /metrics.
func TestClusterPeerForwardHit(t *testing.T) {
	nodes, urls := newFleet(t, 2, nil)
	a, b := nodes[0], nodes[1]
	ctx := context.Background()

	req := reqsOwnedBy(t, urls, a.url, 1)[0]
	warm, err := a.cl.Compile(ctx, req)
	if err != nil {
		t.Fatalf("compile on owner: %v", err)
	}
	if warm.Cached {
		t.Fatal("first compile on the owner must not be cached")
	}

	got, err := b.cl.Compile(ctx, req)
	if err != nil {
		t.Fatalf("compile on non-owner: %v", err)
	}
	if !got.Cached {
		t.Fatal("peer-forwarded response must report Cached")
	}
	if !bytes.Equal(got.Result, warm.Result) {
		t.Fatal("peer-forwarded payload differs from the owner's")
	}
	if got.ModuleHash != warm.ModuleHash || got.ConfigHash != warm.ConfigHash {
		t.Fatalf("key mismatch: %s:%s vs %s:%s", got.ModuleHash, got.ConfigHash, warm.ModuleHash, warm.ConfigHash)
	}

	st := scrapePeerStats(t, b.cl)
	if st.forwards != 1 || st.hits != 1 {
		t.Fatalf("non-owner forwards=%v hits=%v, want 1 and 1", st.forwards, st.hits)
	}
	if st.compiles != 0 {
		t.Fatalf("non-owner ran %v compilations; the peer hit should have prevented all", st.compiles)
	}

	// A repeat on the non-owner is now a memory hit: no second forward.
	if _, err := b.cl.Compile(ctx, req); err != nil {
		t.Fatal(err)
	}
	if st2 := scrapePeerStats(t, b.cl); st2.forwards != 1 {
		t.Fatalf("repeat compile forwarded again: forwards=%v", st2.forwards)
	}
}

// TestClusterCleanMissDegradesToLocal pins the miss path: the owner is
// healthy but cold, so the non-owner books a clean miss (breaker stays
// closed) and compiles locally.
func TestClusterCleanMissDegradesToLocal(t *testing.T) {
	nodes, urls := newFleet(t, 2, nil)
	a, b := nodes[0], nodes[1]

	req := reqsOwnedBy(t, urls, a.url, 1)[0]
	got, err := b.cl.Compile(context.Background(), req)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if got.Cached {
		t.Fatal("a fleet-wide cold key cannot be a cache hit")
	}
	st := scrapePeerStats(t, b.cl)
	if st.forwards != 1 || st.misses != 1 || st.failures != 0 {
		t.Fatalf("forwards=%v misses=%v failures=%v, want 1/1/0", st.forwards, st.misses, st.failures)
	}
	if st.tripped != 0 {
		t.Fatal("a clean miss must not trip the breaker")
	}
	if st.compiles != 1 {
		t.Fatalf("compiles=%v, want exactly 1 local compilation", st.compiles)
	}
}

// TestClusterPeerDownDegradesGracefully kills the owner and verifies
// the survivor still answers (local compile), books the failure, trips
// the breaker, and stops forwarding while the breaker is open.
func TestClusterPeerDownDegradesGracefully(t *testing.T) {
	nodes, urls := newFleet(t, 2, func(i int, cfg *service.Config) {
		// A cooldown far beyond the test's runtime makes "no second
		// forward" deterministic.
		cfg.PeerCooldown = time.Minute
		cfg.PeerTimeout = 2 * time.Second
	})
	a, b := nodes[0], nodes[1]
	ctx := context.Background()

	reqs := reqsOwnedBy(t, urls, a.url, 2)
	a.kill()

	got, err := b.cl.Compile(ctx, reqs[0])
	if err != nil {
		t.Fatalf("compile with dead owner: %v", err)
	}
	if got.Cached {
		t.Fatal("nothing could have cached this response")
	}
	st := scrapePeerStats(t, b.cl)
	if st.failures < 1 {
		t.Fatalf("failures=%v, want >= 1", st.failures)
	}
	if st.tripped != 1 {
		t.Fatalf("oraql_peer_tripped=%v, want 1 (breaker open)", st.tripped)
	}

	// While the breaker is open, a second owned-elsewhere key must not
	// pay the connection attempt: forwards stays flat.
	if _, err := b.cl.Compile(ctx, reqs[1]); err != nil {
		t.Fatalf("second compile with dead owner: %v", err)
	}
	if st2 := scrapePeerStats(t, b.cl); st2.forwards != st.forwards {
		t.Fatalf("breaker open but forwards advanced: %v -> %v", st.forwards, st2.forwards)
	}
}

// fakeTransport scripts the peer exchange for fault injection.
type fakeTransport struct {
	fetch func(ctx context.Context, peer, key string) (*service.CompileResponse, bool, error)
}

func (f *fakeTransport) Fetch(ctx context.Context, peer, key string) (*service.CompileResponse, bool, error) {
	return f.fetch(ctx, peer, key)
}

// faultInjectedServer is one instance whose only peer lives behind the
// scripted transport; the returned request is owned by that peer.
func faultInjectedServer(t *testing.T, timeout time.Duration, ft *fakeTransport) (*client.Client, *service.CompileRequest) {
	t.Helper()
	self, peer := "http://self.invalid", "http://peer.invalid"
	svc := service.New(service.Config{
		Self:          self,
		Peers:         []string{peer},
		PeerTimeout:   timeout,
		PeerTransport: ft,
	})
	ts := httptest.NewServer(svc)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := svc.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return client.New(ts.URL), reqsOwnedBy(t, []string{self, peer}, peer, 1)[0]
}

// TestClusterFaultInjectedTransport drives the degradation paths the
// network cannot produce on demand: hard errors, hangs, and a peer
// returning a payload for the wrong key.
func TestClusterFaultInjectedTransport(t *testing.T) {
	ctx := context.Background()

	t.Run("error degrades to local compile", func(t *testing.T) {
		cl, req := faultInjectedServer(t, 2*time.Second, &fakeTransport{
			fetch: func(context.Context, string, string) (*service.CompileResponse, bool, error) {
				return nil, false, errors.New("injected fault")
			},
		})
		got, err := cl.Compile(ctx, req)
		if err != nil {
			t.Fatalf("compile: %v", err)
		}
		if got.Cached {
			t.Fatal("degraded compile cannot be a hit")
		}
		if st := scrapePeerStats(t, cl); st.failures != 1 || st.compiles != 1 {
			t.Fatalf("failures=%v compiles=%v, want 1 and 1", st.failures, st.compiles)
		}
	})

	t.Run("hang is bounded by the peer timeout", func(t *testing.T) {
		// The transport never returns on its own: the request completes
		// at all only because PeerTimeout cancels the fetch context.
		cl, req := faultInjectedServer(t, 50*time.Millisecond, &fakeTransport{
			fetch: func(ctx context.Context, _, _ string) (*service.CompileResponse, bool, error) {
				<-ctx.Done()
				return nil, false, ctx.Err()
			},
		})
		start := time.Now()
		got, err := cl.Compile(ctx, req)
		if err != nil {
			t.Fatalf("compile past a hung peer: %v", err)
		}
		if got.Cached {
			t.Fatal("degraded compile cannot be a hit")
		}
		if elapsed := time.Since(start); elapsed > 30*time.Second {
			t.Fatalf("hung peer stalled the request for %v", elapsed)
		}
		if st := scrapePeerStats(t, cl); st.failures != 1 {
			t.Fatalf("failures=%v, want 1", st.failures)
		}
	})

	t.Run("wrong-key payload is rejected as a miss", func(t *testing.T) {
		cl, req := faultInjectedServer(t, 2*time.Second, &fakeTransport{
			fetch: func(_ context.Context, _, key string) (*service.CompileResponse, bool, error) {
				return &service.CompileResponse{
					ModuleHash: "bogus", ConfigHash: "bogus",
					Result: json.RawMessage(`{"exe_hash":"evil"}`),
				}, true, nil
			},
		})
		got, err := cl.Compile(ctx, req)
		if err != nil {
			t.Fatalf("compile: %v", err)
		}
		if got.ModuleHash == "bogus" {
			t.Fatal("the forged payload was served")
		}
		st := scrapePeerStats(t, cl)
		if st.misses != 1 || st.failures != 0 {
			t.Fatalf("misses=%v failures=%v, want 1 and 0 (validation miss, not a breaker trip)", st.misses, st.failures)
		}
		if st.compiles != 1 {
			t.Fatalf("compiles=%v, want 1 local compilation", st.compiles)
		}
	})
}

// TestClusterExactlyOneCompileSharedDir is the fleet-dedup contract: a
// 16-config sweep round-robined over two instances sharing one cache
// directory costs exactly 16 compilations fleet-wide, and the warm
// sweep — issued as one batch against each instance — costs zero more
// while returning the identical executables.
func TestClusterExactlyOneCompileSharedDir(t *testing.T) {
	dir := t.TempDir()
	stores := make([]*diskcache.Store, 2)
	for i := range stores {
		st, err := diskcache.Open(dir)
		if err != nil {
			t.Fatalf("open shared store: %v", err)
		}
		stores[i] = st
	}
	nodes, _ := newFleet(t, 2, func(i int, cfg *service.Config) {
		cfg.Cache = stores[i]
	})
	ctx := context.Background()

	const sweep = 16
	reqs := make([]service.CompileRequest, sweep)
	for i := range reqs {
		src := fmt.Sprintf("int main() { int cfg = %d; print(cfg, \"\\n\"); return 0; }", i)
		reqs[i] = *compileReq(src, service.CompileOptions{})
	}

	fleetCompiles := func() float64 {
		var total float64
		for _, n := range nodes {
			text, err := n.cl.Metrics(ctx)
			if err != nil {
				t.Fatalf("metrics: %v", err)
			}
			total += metricValue(t, text, "oraql_compiles_total")
		}
		return total
	}

	// Cold sweep, round-robin across the fleet.
	cold := make([]string, sweep)
	for i := range reqs {
		resp, err := nodes[i%2].cl.Compile(ctx, &reqs[i])
		if err != nil {
			t.Fatalf("cold compile %d: %v", i, err)
		}
		cold[i] = exeHash(t, resp)
	}
	if got := fleetCompiles(); got != sweep {
		t.Fatalf("cold sweep ran %v compilations fleet-wide, want exactly %d", got, sweep)
	}

	// Warm sweep as one batch per instance: every item must come back
	// cached and byte-equal, with zero new compilations anywhere.
	for _, n := range nodes {
		batch, err := n.cl.CompileBatch(ctx, &service.BatchCompileRequest{Items: reqs})
		if err != nil {
			t.Fatalf("warm batch on %s: %v", n.url, err)
		}
		if batch.Unique != sweep {
			t.Fatalf("warm batch Unique=%d, want %d", batch.Unique, sweep)
		}
		for i, item := range batch.Items {
			if item.Response == nil {
				t.Fatalf("warm batch item %d failed: %s", i, item.Error)
			}
			if !item.Response.Cached {
				t.Fatalf("warm batch item %d not served from the fleet cache", i)
			}
			if h := exeHash(t, item.Response); h != cold[i] {
				t.Fatalf("warm batch item %d exe hash %s != cold %s", i, h, cold[i])
			}
		}
	}
	if got := fleetCompiles(); got != sweep {
		t.Fatalf("warm sweep recompiled: %v compilations fleet-wide, want still %d", got, sweep)
	}
}

// TestClusterConcurrentFleetDedup hammers one key concurrently through
// both instances: every response must be byte-identical, and the fleet
// compiles it at most once per instance (single-flight locally, peer
// join across).
func TestClusterConcurrentFleetDedup(t *testing.T) {
	nodes, urls := newFleet(t, 2, nil)
	ctx := context.Background()

	req := reqsOwnedBy(t, urls, nodes[0].url, 1)[0]
	const clients = 8
	results := make([][]byte, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := nodes[i%2].cl.Compile(ctx, req)
			if err != nil {
				errs[i] = err
				return
			}
			results[i] = resp.Result
		}(i)
	}
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	for i := 1; i < clients; i++ {
		if !bytes.Equal(results[i], results[0]) {
			t.Fatalf("client %d observed a different payload", i)
		}
	}
	var compiles float64
	for _, n := range nodes {
		text, err := n.cl.Metrics(ctx)
		if err != nil {
			t.Fatal(err)
		}
		compiles += metricValue(t, text, "oraql_compiles_total")
	}
	if compiles < 1 || compiles > 2 {
		t.Fatalf("fleet ran %v compilations of one key, want 1 or 2 (once per instance at worst)", compiles)
	}
}

// TestClusterArtifactEndpoint pins the donor side of peer forwarding:
// a cached key is served with its exact payload, an unknown key is a
// 404, and — because rotating instances keep donating their cache —
// the endpoint still answers while the service drains.
func TestClusterArtifactEndpoint(t *testing.T) {
	svc, cl, stop := newTestServer(t, service.Config{})
	defer stop() // a second Shutdown after the in-test drain is a no-op
	ctx := context.Background()

	resp, err := cl.Compile(ctx, compileReq(progSum, service.CompileOptions{}))
	if err != nil {
		t.Fatal(err)
	}
	key := resp.ModuleHash + ":" + resp.ConfigHash

	art, err := cl.Artifact(ctx, key)
	if err != nil {
		t.Fatalf("artifact: %v", err)
	}
	if !art.Cached || !bytes.Equal(art.Result, resp.Result) {
		t.Fatal("artifact payload differs from the compile response")
	}

	if _, err := cl.Artifact(ctx, "feed:beef"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("unknown key should 404, got %v", err)
	}

	sctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if err := svc.Shutdown(sctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if _, err := cl.Compile(ctx, compileReq(progSum, service.CompileOptions{})); err == nil {
		t.Fatal("compile must be refused while draining")
	}
	if art, err := cl.Artifact(ctx, key); err != nil || !art.Cached {
		t.Fatalf("draining instance stopped donating its cache: %v", err)
	}
}
