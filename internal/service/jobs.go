package service

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"time"
)

// job is one asynchronous probe or fuzz campaign. The mutex guards
// every mutable field; events are both buffered (for late pollers)
// and broadcast to live /events subscribers.
type job struct {
	id   string
	kind string
	// scriptSHA identifies the script body of campaign jobs ("" for
	// probe/fuzz jobs); set before the job is queued, immutable after.
	scriptSHA string
	run       func(ctx context.Context, j *job) (any, error)

	mu       sync.Mutex
	state    string
	created  time.Time
	started  time.Time
	finished time.Time
	errMsg   string
	result   json.RawMessage
	events   []string
	subs     map[chan string]struct{}
	cancel   context.CancelFunc
	done     chan struct{}
}

func newJob(id, kind string, run func(ctx context.Context, j *job) (any, error)) *job {
	return &job{
		id: id, kind: kind, run: run,
		state:   JobQueued,
		created: time.Now(),
		subs:    map[chan string]struct{}{},
		done:    make(chan struct{}),
	}
}

// info snapshots the job for the wire.
func (j *job) info() *JobInfo {
	j.mu.Lock()
	defer j.mu.Unlock()
	return &JobInfo{
		ID: j.id, Kind: j.kind, State: j.state,
		Created: j.created, Started: j.started, Finished: j.finished,
		Error: j.errMsg, ScriptSHA256: j.scriptSHA, Result: j.result,
	}
}

// eventf records a progress line and fans it out to subscribers.
func (j *job) eventf(format string, args ...any) {
	line := fmt.Sprintf(format, args...)
	j.mu.Lock()
	j.events = append(j.events, line)
	for ch := range j.subs {
		select {
		case ch <- line:
		default: // slow subscriber: drop rather than stall the job
		}
	}
	j.mu.Unlock()
}

// Write lets the job double as the io.Writer behind driver/fuzz logs,
// so their progress lines become streamed job events.
func (j *job) Write(p []byte) (int, error) {
	for _, line := range splitLines(string(p)) {
		j.eventf("%s", line)
	}
	return len(p), nil
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

// subscribe registers a live event channel and returns the backlog
// recorded so far; the caller must unsubscribe.
func (j *job) subscribe() (backlog []string, ch chan string) {
	ch = make(chan string, 64)
	j.mu.Lock()
	backlog = append([]string(nil), j.events...)
	j.subs[ch] = struct{}{}
	j.mu.Unlock()
	return backlog, ch
}

func (j *job) unsubscribe(ch chan string) {
	j.mu.Lock()
	delete(j.subs, ch)
	j.mu.Unlock()
}

// start transitions queued -> running and installs the cancel func.
// It reports false when the job was already cancelled while queued
// (the worker then skips it).
func (j *job) start(cancel context.CancelFunc) bool {
	j.mu.Lock()
	if j.state != JobQueued {
		j.mu.Unlock()
		return false
	}
	j.state = JobRunning
	j.started = time.Now()
	j.cancel = cancel
	j.mu.Unlock()
	j.eventf("job %s: started", j.id)
	return true
}

// finish records the terminal state and closes the done channel; it
// reports false when the job already was terminal (no transition).
func (j *job) finish(state, errMsg string, result json.RawMessage) bool {
	j.mu.Lock()
	if j.state == JobDone || j.state == JobFailed || j.state == JobCanceled {
		j.mu.Unlock()
		return false
	}
	j.state = state
	j.errMsg = errMsg
	j.result = result
	j.finished = time.Now()
	j.mu.Unlock()
	j.eventf("job %s: %s", j.id, state)
	close(j.done)
	return true
}

// requestCancel cancels a running job's context (no-op otherwise).
func (j *job) requestCancel() {
	j.mu.Lock()
	cancel := j.cancel
	j.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// jobStore is the id -> job registry. Finished jobs are kept (up to a
// generous bound) so results can be polled after completion.
type jobStore struct {
	mu    sync.Mutex
	next  int
	byID  map[string]*job
	order []string
	max   int
}

func newJobStore() *jobStore {
	return &jobStore{byID: map[string]*job{}, max: 4096}
}

// add registers a new job under a fresh id.
func (s *jobStore) add(kind string, run func(ctx context.Context, j *job) (any, error)) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.next++
	id := fmt.Sprintf("%s-%06d", kind, s.next)
	j := newJob(id, kind, run)
	s.byID[id] = j
	s.order = append(s.order, id)
	// Evict the oldest *terminal* jobs beyond the bound; never drop a
	// queued or running job.
	for len(s.byID) > s.max {
		evicted := false
		for i, old := range s.order {
			oj := s.byID[old]
			if oj == nil {
				s.order = append(s.order[:i], s.order[i+1:]...)
				evicted = true
				break
			}
			st := oj.info().State
			if st == JobDone || st == JobFailed || st == JobCanceled {
				delete(s.byID, old)
				s.order = append(s.order[:i], s.order[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			break
		}
	}
	return j
}

func (s *jobStore) get(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.byID[id]
}
