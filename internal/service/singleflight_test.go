package service_test

import (
	"context"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/oraql/go-oraql/internal/service"
)

// TestCompileSingleFlight pins the thundering-herd behaviour: 16
// clients submitting the identical program concurrently trigger
// exactly one pipeline compilation — one leader runs, the followers
// wait for its response, and everyone gets the same payload.
func TestCompileSingleFlight(t *testing.T) {
	_, cl, stop := newTestServer(t, service.Config{})
	defer stop()
	ctx := context.Background()

	const clients = 16
	req := compileReq(progSum, service.CompileOptions{})
	responses := make([]*service.CompileResponse, clients)
	errs := make([]error, clients)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			responses[i], errs[i] = cl.Compile(ctx, req)
		}(i)
	}
	close(start)
	wg.Wait()

	uncached := 0
	var hash string
	for i := 0; i < clients; i++ {
		if errs[i] != nil {
			t.Fatalf("client %d: %v", i, errs[i])
		}
		if !responses[i].Cached {
			uncached++
		}
		h := exeHash(t, responses[i])
		if hash == "" {
			hash = h
		} else if h != hash {
			t.Fatalf("client %d: exe hash %s differs from %s", i, h, hash)
		}
	}
	if uncached != 1 {
		t.Fatalf("uncached responses = %d, want exactly 1 (single-flight leader)", uncached)
	}

	text, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if compiles := metricValue(t, text, "oraql_compiles_total"); compiles != 1 {
		t.Fatalf("oraql_compiles_total = %v, want exactly 1 for %d identical requests", compiles, clients)
	}
	if workers := metricValue(t, text, "oraql_compile_workers"); workers < 1 {
		t.Fatalf("oraql_compile_workers = %v, want >= 1", workers)
	}
}

// TestCompileSingleFlightLeaderFailure pins the recovery path: when
// the leader's compilation fails, followers are woken empty-handed and
// retry instead of hanging, and every client sees the error.
func TestCompileSingleFlightLeaderFailure(t *testing.T) {
	_, cl, stop := newTestServer(t, service.Config{})
	defer stop()
	ctx := context.Background()

	const clients = 8
	req := compileReq("int main() { return 0 ", service.CompileOptions{}) // parse error
	errs := make([]error, clients)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			_, errs[i] = cl.Compile(ctx, req)
		}(i)
	}
	close(start)
	wg.Wait()
	for i, err := range errs {
		if err == nil {
			t.Fatalf("client %d: miscompiling program returned no error", i)
		}
	}
}

// TestJobEventsDisconnectNoLeak pins that an event-stream handler
// exits when its client disconnects mid-campaign: goroutines return to
// baseline instead of accumulating one blocked handler per dropped
// stream.
func TestJobEventsDisconnectNoLeak(t *testing.T) {
	svc, cl, stop := newTestServer(t, service.Config{})
	defer stop()
	ctx := context.Background()

	// A campaign large enough to still be running while streams come
	// and go.
	info, err := cl.Fuzz(ctx, &service.FuzzRequest{N: 400, Workers: 1, NoTriage: true, MaxDivergences: 1000})
	if err != nil {
		t.Fatal(err)
	}

	before := runtime.NumGoroutine()
	const streams = 8
	var wg sync.WaitGroup
	for i := 0; i < streams; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sctx, cancel := context.WithCancel(ctx)
			defer cancel()
			go func() {
				time.Sleep(50 * time.Millisecond)
				cancel() // client disconnects mid-stream
			}()
			_ = cl.Events(sctx, info.ID, &strings.Builder{})
		}()
	}
	wg.Wait()

	// Each handler must notice the disconnect; give the server a
	// bounded grace period to unwind.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 || time.Now().After(deadline) {
			if n > before+2 {
				t.Fatalf("goroutines: %d before streams, %d after disconnect — event handlers leaked", before, n)
			}
			break
		}
		time.Sleep(50 * time.Millisecond)
	}

	if _, err := cl.Cancel(ctx, info.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Wait(ctx, info.ID, 20*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	_ = svc
}
