package service

import (
	"context"
	"net/http"

	"github.com/oraql/go-oraql/internal/pipeline"
	"github.com/oraql/go-oraql/internal/warehouse"
)

// Warehouse endpoints: synchronous forensics over the corpus every
// probe, fuzz, and triage campaign files into the server's shared
// persistent store. GET serves corpus stats; POST dispatches one op
// (stats | query | export). All ops are read-only over an immutable
// record set, so they run inline on the request goroutine rather than
// through the job queue — only the export op compiles, and that goes
// through the same cache hierarchy as /v1/compile.

func (s *Server) handleWarehouseGet(w http.ResponseWriter, r *http.Request) {
	s.warehouseOp(w, r, &WarehouseRequest{Op: "stats"})
}

func (s *Server) handleWarehousePost(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeError(w, http.StatusServiceUnavailable, "service is draining")
		return
	}
	var req WarehouseRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	s.warehouseOp(w, r, &req)
}

func (s *Server) warehouseOp(w http.ResponseWriter, r *http.Request, req *WarehouseRequest) {
	wh := warehouse.Open(s.cfg.Cache)
	if wh == nil {
		writeError(w, http.StatusServiceUnavailable, "warehouse requires a persistent store (start with -cache-dir)")
		return
	}
	op := req.Op
	if op == "" {
		op = "stats"
	}
	man := wh.Load()
	var result any
	switch op {
	case "stats":
		result = man.Stats()
	case "query":
		result = man.Query(warehouse.QueryOptions{
			Kind: req.Kind, App: req.App, Grammar: req.Grammar, By: req.By,
		})
	case "export":
		g, err := s.warehouseExport(r.Context(), req, man)
		if err != nil {
			writeError(w, compileStatus(err), "%v", err)
			return
		}
		result = g
	default:
		writeError(w, http.StatusBadRequest, "unknown warehouse op %q (stats, query, export)", req.Op)
		return
	}
	payload, err := marshalResult(result)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	s.met.observeWarehouse(op)
	writeJSON(w, http.StatusOK, &WarehouseResponse{Op: op, Records: man.Len(), Result: payload})
}

// warehouseExport compiles the requested program and exports its host
// module as a code property graph annotated with the corpus's
// cross-campaign verdict history. The compilation reuses the server's
// compile tuning (worker budget, shared store) so the graph bytes are
// identical to what the oraql CLI exports for the same corpus.
func (s *Server) warehouseExport(ctx context.Context, req *WarehouseRequest, man *warehouse.Manifest) (*warehouse.Graph, error) {
	cfg, err := compileConfig(&CompileRequest{Program: req.Program})
	if err != nil {
		return nil, err
	}
	cfg.CompileWorkers = s.cfg.CompileWorkers
	cfg.DiskCache = s.cfg.Cache
	cctx, cancel := context.WithTimeout(ctx, s.cfg.RequestTimeout)
	defer cancel()
	cr, err := pipeline.CompileContext(cctx, cfg)
	if err != nil {
		return nil, err
	}
	s.observeCompileResult(cr)
	return warehouse.ExportCPG(cr.Host.Module, warehouse.CPGOptions{
		Records:       cr.Records(),
		History:       man.ShapePriors(),
		MaxAliasPairs: req.AliasPairs,
	}), nil
}
