// External test package: it compiles registered apps through the full
// pipeline, which (via the driver) imports warehouse itself.
package warehouse_test

import (
	"bytes"
	"fmt"
	"testing"

	"github.com/oraql/go-oraql/internal/apps"
	"github.com/oraql/go-oraql/internal/diskcache"
	"github.com/oraql/go-oraql/internal/pipeline"
	"github.com/oraql/go-oraql/internal/warehouse"
)

// TestCPGExportByteIdentical is the acceptance property of the graph
// layer: the exported CPG of a module is byte-identical across
// compile worker counts and across independent compilations (the
// in-process stand-in for separate processes).
func TestCPGExportByteIdentical(t *testing.T) {
	app := apps.ByID("testsnap-seq")
	if app == nil {
		t.Fatal("testsnap-seq not registered")
	}
	history := map[string]diskcache.VerdictCounts{
		"Early CSE|gep|gep": {Optimistic: 10, Pessimistic: 2},
	}
	export := func(workers int) []byte {
		cfg := pipeline.Config{
			Name: app.ID, Source: app.Source, SourceFile: app.SourceName,
			Frontend: app.Frontend, CompileWorkers: workers,
		}
		cr, err := pipeline.Compile(cfg)
		if err != nil {
			t.Fatal(err)
		}
		g := warehouse.ExportCPG(cr.Host.Module, warehouse.CPGOptions{
			Records: cr.Records(), History: history,
		})
		data, err := warehouse.MarshalGraph(g)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	base := export(1)
	if len(base) == 0 {
		t.Fatal("empty graph export")
	}
	for _, workers := range []int{1, 8} {
		for round := 0; round < 2; round++ {
			if got := export(workers); !bytes.Equal(base, got) {
				t.Fatalf("CPG export differs at workers=%d round=%d (%d vs %d bytes)",
					workers, round, len(base), len(got))
			}
		}
	}
}

func TestCPGStructure(t *testing.T) {
	app := apps.ByID("testsnap-seq")
	if app == nil {
		t.Fatal("testsnap-seq not registered")
	}
	cr, err := pipeline.Compile(pipeline.Config{
		Name: app.ID, Source: app.Source, SourceFile: app.SourceName,
		Frontend: app.Frontend,
	})
	if err != nil {
		t.Fatal(err)
	}
	g := warehouse.ExportCPG(cr.Host.Module, warehouse.CPGOptions{})
	nodeKinds, _ := g.CountByKind()
	for _, kind := range []string{warehouse.NodeModule, warehouse.NodeFunc, warehouse.NodeBlock, warehouse.NodeInstr} {
		if nodeKinds[kind] == 0 {
			t.Errorf("graph has no %s nodes", kind)
		}
	}
	edgeKinds := map[string]bool{}
	for _, k := range g.EdgeKinds() {
		edgeKinds[k] = true
	}
	for _, kind := range []string{warehouse.EdgeContains, warehouse.EdgeCFG, warehouse.EdgeDom, warehouse.EdgeDFG} {
		if !edgeKinds[kind] {
			t.Errorf("graph has no %s edges", kind)
		}
	}
	// Node IDs are positional, so every edge endpoint must resolve.
	ids := map[string]bool{}
	for _, n := range g.Nodes {
		if ids[n.ID] {
			t.Fatalf("duplicate node ID %s", n.ID)
		}
		ids[n.ID] = true
	}
	for _, e := range g.Edges {
		if !ids[e.From] || !ids[e.To] {
			t.Fatalf("edge %s->%s (%s) references an unknown node", e.From, e.To, e.Kind)
		}
	}
	fmt.Fprintf(testWriter{t}, "cpg: %d nodes, %d edges\n", len(g.Nodes), len(g.Edges))
}

type testWriter struct{ t *testing.T }

func (w testWriter) Write(p []byte) (int, error) {
	w.t.Log(string(bytes.TrimRight(p, "\n")))
	return len(p), nil
}
