package warehouse

import (
	"encoding/json"
	"sort"

	"github.com/oraql/go-oraql/internal/diskcache"
)

// QueryOptions filters and groups the corpus. Empty filters match
// everything; By selects the grouping dimension.
type QueryOptions struct {
	Kind    string `json:"kind,omitempty"`    // probe | fuzz | triage
	App     string `json:"app,omitempty"`     // app config name
	Grammar string `json:"grammar,omitempty"` // grammar profile
	By      string `json:"by,omitempty"`      // pass | shape | func | grammar (default pass)
}

// Recurrence is one row of a cross-campaign query: a grouping key with
// how widely it recurs. Apps is the sorted set of distinct app configs
// the key appeared in — the "recurs across apps" signal.
type Recurrence struct {
	Key     string   `json:"key"`
	Apps    []string `json:"apps,omitempty"`
	Records int      `json:"records"`
	Opt     int64    `json:"opt,omitempty"`
	Pess    int64    `json:"pess,omitempty"`
}

func (m *Manifest) match(s *Summary, o QueryOptions) bool {
	if o.Kind != "" && s.Kind != o.Kind {
		return false
	}
	if o.App != "" && s.App != o.App {
		return false
	}
	if o.Grammar != "" && s.Grammar != o.Grammar {
		return false
	}
	return true
}

// Query aggregates the matching summaries along the By dimension.
// Rows sort by breadth (distinct apps desc, then records desc, then
// key asc), so the first row answers "what recurs most widely?".
func (m *Manifest) Query(o QueryOptions) []Recurrence {
	type agg struct {
		apps    map[string]bool
		records int
		opt     int64
		pess    int64
	}
	groups := map[string]*agg{}
	bump := func(key, app string, opt, pess int64) {
		if key == "" {
			return
		}
		g := groups[key]
		if g == nil {
			g = &agg{apps: map[string]bool{}}
			groups[key] = g
		}
		if app != "" {
			g.apps[app] = true
		}
		g.records++
		g.opt += opt
		g.pess += pess
	}
	for _, s := range m.Summaries() {
		if !m.match(s, o) {
			continue
		}
		switch o.By {
		case "shape":
			for _, shape := range s.Shapes {
				c := s.ShapeCounts[shape]
				bump(shape, s.App, c.Optimistic, c.Pessimistic)
			}
		case "func":
			for _, h := range s.FuncHashes {
				bump(h, s.App, 0, 0)
			}
		case "grammar":
			opt, pess := shapeTotals(s.ShapeCounts)
			bump(s.Grammar, s.App, opt, pess)
		default: // "pass"
			for _, p := range s.Passes {
				bump(p, s.App, 0, 0)
			}
		}
	}
	out := make([]Recurrence, 0, len(groups))
	for key, g := range groups {
		out = append(out, Recurrence{
			Key: key, Apps: sortedSet(g.apps), Records: g.records,
			Opt: g.opt, Pess: g.pess,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].Apps) != len(out[j].Apps) {
			return len(out[i].Apps) > len(out[j].Apps)
		}
		if out[i].Records != out[j].Records {
			return out[i].Records > out[j].Records
		}
		return out[i].Key < out[j].Key
	})
	return out
}

func shapeTotals(counts map[string]diskcache.VerdictCounts) (opt, pess int64) {
	for _, c := range counts {
		opt += c.Optimistic
		pess += c.Pessimistic
	}
	return
}

// Stats is the corpus overview served by `oraql warehouse stats` and
// GET /v1/warehouse.
type Stats struct {
	Records   int   `json:"records"`
	Probes    int   `json:"probes"`
	Fuzz      int   `json:"fuzz"`
	Triage    int   `json:"triage"`
	Divergent int   `json:"divergent"`
	Apps      int   `json:"apps"`
	Passes    int   `json:"passes"`
	Shapes    int   `json:"shapes"`
	Funcs     int   `json:"funcs"`
	Opt       int64 `json:"opt"`
	Pess      int64 `json:"pess"`
}

// Stats summarizes the whole corpus.
func (m *Manifest) Stats() Stats {
	st := Stats{Records: m.Len()}
	apps := map[string]bool{}
	passes := map[string]bool{}
	shapes := map[string]bool{}
	funcs := map[string]bool{}
	for _, s := range m.Summaries() {
		switch s.Kind {
		case KindProbe:
			st.Probes++
		case KindFuzz:
			st.Fuzz++
		case KindTriage:
			st.Triage++
		}
		if s.Divergent {
			st.Divergent++
		}
		if s.App != "" {
			apps[s.App] = true
		}
		for _, p := range s.Passes {
			passes[p] = true
		}
		for shape, c := range s.ShapeCounts {
			shapes[shape] = true
			st.Opt += c.Optimistic
			st.Pess += c.Pessimistic
		}
		for _, h := range s.FuncHashes {
			funcs[h] = true
		}
	}
	st.Apps, st.Passes, st.Shapes, st.Funcs = len(apps), len(passes), len(shapes), len(funcs)
	return st
}

// DivergentSeeds returns the sorted unique generator seeds of
// divergent fuzz findings, optionally restricted to one grammar
// profile — the corpus-distillation feed for -seed-from-warehouse.
func (m *Manifest) DivergentSeeds(grammar string) []int64 {
	set := map[int64]bool{}
	for _, s := range m.Summaries() {
		if !s.Divergent {
			continue
		}
		if grammar != "" && s.Grammar != grammar {
			continue
		}
		set[s.Seed] = true
	}
	out := make([]int64, 0, len(set))
	for seed := range set {
		out = append(out, seed)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ShapePriors aggregates verdict frequencies per query shape over the
// whole corpus — the fleet-wide priors the driver folds into its
// candidate ordering when no per-function history exists.
func (m *Manifest) ShapePriors() map[string]diskcache.VerdictCounts {
	out := map[string]diskcache.VerdictCounts{}
	for _, s := range m.Summaries() {
		for shape, c := range s.ShapeCounts {
			t := out[shape]
			t.Optimistic += c.Optimistic
			t.Pessimistic += c.Pessimistic
			out[shape] = t
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// MarshalRecurrences renders query rows as deterministic JSON — the
// byte-identical output surface the CLI, bindings, and service share.
func MarshalRecurrences(rows []Recurrence) ([]byte, error) {
	return json.MarshalIndent(rows, "", "  ")
}
