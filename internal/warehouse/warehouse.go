// Package warehouse is the miscompile forensics warehouse: a
// disk-backed, content-addressed store of campaign findings layered on
// internal/diskcache. Every probe, fuzz, and triage result — campaign
// identity (app config, AA chain, strategy, grammar profile, seed),
// per-query verdicts, the final response sequence, executable hashes,
// and triage artifacts — is persisted as an immutable Record whose ID
// is the sha256 of its canonical JSON, so ingestion is idempotent by
// construction: the same finding from any process lands on the same
// address.
//
// A single manifest, kept as a versioned CAS entry (diskcache
// LoadVersioned/UpdateVersioned), holds the record-ID set plus small
// per-record summaries. Set-insert semantics under the optimistic
// compare-and-update discipline make racing writers sharing one
// -cache-dir converge to exactly one record per unique finding: the
// loser of a CAS round re-reads, sees the ID already present, and
// publishes nothing. Secondary views — by pass, query shape, function
// hash, grammar profile — are derived deterministically from the
// summaries at load time (see query.go), never stored, so they cannot
// drift from the records.
//
// The package also exports compiled modules as a typed code property
// graph (cpg.go): IR structure, CFG/dominator edges, data-flow and
// call edges, and alias facts from the AA chain plus ORAQL verdicts,
// annotated with the warehouse's cross-campaign verdict history.
package warehouse

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"

	"github.com/oraql/go-oraql/internal/diskcache"
)

// Record kinds.
const (
	KindProbe  = "probe"
	KindFuzz   = "fuzz"
	KindTriage = "triage"
)

// QueryVerdict is one alias query of a finished campaign with the
// verdict the probe settled on (optimistic = answered no-alias in the
// final verified compilation).
type QueryVerdict struct {
	Index      int    `json:"index"`
	Pass       string `json:"pass"`
	Func       string `json:"func"`
	A          string `json:"a"`
	B          string `json:"b"`
	Optimistic bool   `json:"optimistic"`
}

// Shape is the coarse recurrence class of the query: the requesting
// pass plus the syntactic class of both locations, order-normalized.
// Shapes are what recur across apps when concrete pointers differ.
func (q QueryVerdict) Shape() string {
	a, b := locClass(q.A), locClass(q.B)
	if b < a {
		a, b = b, a
	}
	return q.Pass + "|" + a + "|" + b
}

// locClass reduces a Fig. 3 location description to its defining
// operation ("load", "gep", "phi", ...) or value class ("global",
// "arg") — the part of the query that generalizes across programs.
func locClass(desc string) string {
	if i := strings.Index(desc, "= "); i >= 0 {
		rest := desc[i+2:]
		if j := strings.IndexAny(rest, " ,"); j >= 0 {
			return rest[:j]
		}
		return rest
	}
	f := strings.Fields(desc)
	if len(f) >= 2 && strings.HasPrefix(f[1], "@") {
		return "global"
	}
	if len(f) >= 2 {
		return "arg"
	}
	return "unknown"
}

// TriageArtifact is the persisted triage outcome: the delta-debugged
// reproducer and what the bisections pinned. ID is the stable
// content-addressed handle (internal/report TriageArtifactID) shared
// by warehouse records, JSON reports, and /events log lines.
type TriageArtifact struct {
	ID         string `json:"id"`
	Reproducer string `json:"reproducer"`
	ReproLines int    `json:"repro_lines"`
	Pass       string `json:"pass"`
	PassIndex  int    `json:"pass_index"`
	GuiltySeq  string `json:"guilty_seq,omitempty"`
	Variant    string `json:"variant,omitempty"`
}

// Record is one campaign finding. The zero values of unused fields are
// omitted from the canonical JSON, so the ID only covers what the
// finding actually says.
type Record struct {
	Kind string `json:"kind"`

	// Campaign identity.
	App       string `json:"app,omitempty"`        // app config / benchmark name
	ScriptSHA string `json:"script_sha,omitempty"` // sha256 of the .oraql script, if scripted
	AAChain   string `json:"aa_chain,omitempty"`   // canonical chain spec
	Strategy  string `json:"strategy,omitempty"`   // probing strategy name
	Grammar   string `json:"grammar,omitempty"`    // generator grammar profile
	Seed      int64  `json:"seed,omitempty"`       // generator seed

	// Probe outcome. Effort counters (compiles, tests) are deliberately
	// NOT part of a record: they vary between cold and warm runs of the
	// same campaign, and the record identity must cover the finding,
	// not the work it took — otherwise re-probing duplicates corpus
	// entries.
	FinalSeq        string `json:"final_seq,omitempty"`
	FullyOptimistic bool   `json:"fully_optimistic,omitempty"`
	ExeHash         string `json:"exe_hash,omitempty"`

	// Divergent marks fuzz findings (the oracle caught a miscompile).
	Divergent bool `json:"divergent,omitempty"`

	// Per-query verdicts of the final verified compilation (probe) or
	// the guilty set (triage).
	Queries []QueryVerdict `json:"queries,omitempty"`

	// FuncHashes maps function names to content hashes of the baseline
	// module, linking verdicts to the per-function history.
	FuncHashes map[string]string `json:"func_hashes,omitempty"`

	// Artifact is the triage outcome, for triage records.
	Artifact *TriageArtifact `json:"artifact,omitempty"`
}

// canonical renders the record's canonical JSON: encoding/json emits
// struct fields in declaration order and map keys sorted, so equal
// records produce equal bytes in every process.
func (r *Record) canonical() ([]byte, error) {
	return json.Marshal(r)
}

// Summary is the manifest's compact view of one record: enough to
// answer cross-campaign queries without loading record blobs.
type Summary struct {
	ID        string `json:"id"`
	Kind      string `json:"kind"`
	App       string `json:"app,omitempty"`
	AAChain   string `json:"aa_chain,omitempty"`
	Strategy  string `json:"strategy,omitempty"`
	Grammar   string `json:"grammar,omitempty"`
	Seed      int64  `json:"seed,omitempty"`
	Divergent bool   `json:"divergent,omitempty"`

	// Passes and Shapes list the distinct guilty (pessimistic) passes
	// and query shapes, sorted; ShapeCounts carries the full verdict
	// frequencies per shape for prior seeding.
	Passes      []string                           `json:"passes,omitempty"`
	Shapes      []string                           `json:"shapes,omitempty"`
	ShapeCounts map[string]diskcache.VerdictCounts `json:"shape_counts,omitempty"`

	// FuncHashes is the sorted set of function content hashes.
	FuncHashes []string `json:"func_hashes,omitempty"`

	ArtifactID string `json:"artifact_id,omitempty"`
}

// manifest is the versioned CAS payload: the record set.
type manifest struct {
	Records map[string]*Summary `json:"records"`
}

// Store is a warehouse over a shared diskcache store.
type Store struct {
	d *diskcache.Store
}

// Open layers a warehouse on a diskcache store; returns nil when d is
// nil so callers can gate on configuration with one check.
func Open(d *diskcache.Store) *Store {
	if d == nil {
		return nil
	}
	return &Store{d: d}
}

// manifestKey is the single versioned slot holding the record set.
func manifestKey() string { return diskcache.Key("wh-manifest") }

// recordKey addresses one immutable record blob.
func recordKey(id string) string { return diskcache.Key("wh-record", id) }

// errUnchanged aborts a manifest update that would publish no change.
var errUnchanged = errors.New("warehouse: manifest unchanged")

// summarize derives the manifest summary of a record.
func summarize(id string, r *Record) *Summary {
	s := &Summary{
		ID: id, Kind: r.Kind, App: r.App, AAChain: r.AAChain,
		Strategy: r.Strategy, Grammar: r.Grammar, Seed: r.Seed,
		Divergent: r.Divergent,
	}
	passes := map[string]bool{}
	shapes := map[string]bool{}
	for _, q := range r.Queries {
		shape := q.Shape()
		if s.ShapeCounts == nil {
			s.ShapeCounts = map[string]diskcache.VerdictCounts{}
		}
		c := s.ShapeCounts[shape]
		if q.Optimistic {
			c.Optimistic++
		} else {
			c.Pessimistic++
			passes[q.Pass] = true
			shapes[shape] = true
		}
		s.ShapeCounts[shape] = c
	}
	s.Passes = sortedSet(passes)
	s.Shapes = sortedSet(shapes)
	hashes := map[string]bool{}
	for _, h := range r.FuncHashes {
		if h != "" {
			hashes[h] = true
		}
	}
	s.FuncHashes = sortedSet(hashes)
	if r.Artifact != nil {
		s.ArtifactID = r.Artifact.ID
	}
	return s
}

func sortedSet(m map[string]bool) []string {
	if len(m) == 0 {
		return nil
	}
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// RecordID computes the content address of a record without storing
// it: the sha256 of its canonical JSON.
func RecordID(r *Record) (string, error) {
	data, err := r.canonical()
	if err != nil {
		return "", err
	}
	return diskcache.HashText(string(data)), nil
}

// Ingest persists a record and registers it in the manifest. The
// operation is idempotent and safe under racing processes sharing the
// cache directory: the record blob is published blind (identical
// content by construction), and the manifest insert runs under the
// CAS retry loop with set semantics — added reports whether THIS call
// introduced the record.
func (s *Store) Ingest(r *Record) (id string, added bool, err error) {
	if r.Kind == "" {
		return "", false, fmt.Errorf("warehouse: record without kind")
	}
	data, err := r.canonical()
	if err != nil {
		return "", false, fmt.Errorf("warehouse: encode record: %w", err)
	}
	id = diskcache.HashText(string(data))
	s.d.Put(recordKey(id), data)

	err = s.d.UpdateVersioned(manifestKey(), 0, func(old []byte) ([]byte, error) {
		m := decodeManifest(old)
		if _, ok := m.Records[id]; ok {
			return nil, errUnchanged
		}
		m.Records[id] = summarize(id, r)
		return json.Marshal(m)
	})
	if errors.Is(err, errUnchanged) {
		return id, false, nil
	}
	if err != nil {
		return id, false, err
	}
	return id, true, nil
}

// decodeManifest tolerates an absent or damaged payload by starting
// empty: records re-ingest idempotently, so a reset manifest heals.
func decodeManifest(data []byte) *manifest {
	m := &manifest{}
	if len(data) > 0 {
		_ = json.Unmarshal(data, m)
	}
	if m.Records == nil {
		m.Records = map[string]*Summary{}
	}
	return m
}

// Manifest is the loaded record set with deterministic iteration
// order (IDs sorted).
type Manifest struct {
	store     *Store
	byID      map[string]*Summary
	sortedIDs []string
}

// Load reads the current manifest; an empty warehouse loads as an
// empty manifest, never an error.
func (s *Store) Load() *Manifest {
	data, _, _ := s.d.LoadVersioned(manifestKey())
	m := decodeManifest(data)
	ids := make([]string, 0, len(m.Records))
	for id := range m.Records {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return &Manifest{store: s, byID: m.Records, sortedIDs: ids}
}

// Len is the number of registered records.
func (m *Manifest) Len() int { return len(m.sortedIDs) }

// Summaries returns every summary in ID order.
func (m *Manifest) Summaries() []*Summary {
	out := make([]*Summary, len(m.sortedIDs))
	for i, id := range m.sortedIDs {
		out[i] = m.byID[id]
	}
	return out
}

// Record fetches a full record blob by ID, verifying its address.
func (m *Manifest) Record(id string) (*Record, bool) {
	data, ok := m.store.d.Get(recordKey(id))
	if !ok {
		return nil, false
	}
	if diskcache.HashText(string(data)) != id {
		return nil, false
	}
	var r Record
	if json.Unmarshal(data, &r) != nil {
		return nil, false
	}
	return &r, true
}
