package warehouse

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"github.com/oraql/go-oraql/internal/diskcache"
)

func openStore(t *testing.T, dir string) *Store {
	t.Helper()
	d, err := diskcache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return Open(d)
}

func probeRecord(app string, seed int64) *Record {
	return &Record{
		Kind:     KindProbe,
		App:      app,
		AAChain:  "default",
		Strategy: "chunked",
		Seed:     seed,
		FinalSeq: "1 0 1",
		Queries: []QueryVerdict{
			{Index: 0, Pass: "Early CSE", Func: "main", A: "%a = load i64", B: "%b = load i64", Optimistic: true},
			{Index: 1, Pass: "Early CSE", Func: "main", A: "%a = gep %p", B: "%b = gep %q", Optimistic: false},
			{Index: 2, Pass: "LICM", Func: "kernel", A: "%v = load i64", B: "global @g", Optimistic: false},
		},
		FuncHashes: map[string]string{"main": "h-main", "kernel": "h-kernel"},
	}
}

func TestIngestIdempotent(t *testing.T) {
	w := openStore(t, t.TempDir())
	rec := probeRecord("app-a", 1)
	id1, added, err := w.Ingest(rec)
	if err != nil {
		t.Fatal(err)
	}
	if !added {
		t.Fatal("first ingest of a record must report added")
	}
	id2, added, err := w.Ingest(probeRecord("app-a", 1))
	if err != nil {
		t.Fatal(err)
	}
	if added {
		t.Fatal("re-ingesting the same finding must not add a record")
	}
	if id1 != id2 {
		t.Fatalf("equal findings got different IDs: %s vs %s", id1, id2)
	}
	if n := w.Load().Len(); n != 1 {
		t.Fatalf("corpus has %d records after duplicate ingest, want 1", n)
	}
	got, ok := w.Load().Record(id1)
	if !ok {
		t.Fatalf("record %s not loadable", id1)
	}
	if len(got.Queries) != 3 || got.App != "app-a" {
		t.Fatalf("record round-trip mangled: %+v", got)
	}
}

// TestRacingWriters drives many goroutines through two independent
// store handles over one directory — the same interleavings two
// processes sharing a -cache-dir produce — and demands exactly one
// manifest entry per unique finding. Run under -race.
func TestRacingWriters(t *testing.T) {
	dir := t.TempDir()
	a, b := openStore(t, dir), openStore(t, dir)
	const unique = 8
	const writers = 4
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		for _, w := range []*Store{a, b} {
			wg.Add(1)
			go func(w *Store) {
				defer wg.Done()
				for i := 0; i < unique; i++ {
					if _, _, err := w.Ingest(probeRecord(fmt.Sprintf("app-%d", i), int64(i))); err != nil {
						t.Errorf("racing ingest: %v", err)
					}
				}
			}(w)
		}
	}
	wg.Wait()
	if n := a.Load().Len(); n != unique {
		t.Fatalf("racing writers left %d records, want exactly %d", n, unique)
	}
	// Count added=true across a fresh replay: every record exists, so
	// none may be added again.
	for i := 0; i < unique; i++ {
		if _, added, _ := b.Ingest(probeRecord(fmt.Sprintf("app-%d", i), int64(i))); added {
			t.Fatalf("record %d re-added after the race settled", i)
		}
	}
}

func TestQueryDeterministicAcrossHandles(t *testing.T) {
	dir := t.TempDir()
	w := openStore(t, dir)
	for i, app := range []string{"app-a", "app-b", "app-c"} {
		if _, _, err := w.Ingest(probeRecord(app, int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	for _, by := range []string{"pass", "shape", "func", "grammar"} {
		rows := w.Load().Query(QueryOptions{By: by})
		first, err := MarshalRecurrences(rows)
		if err != nil {
			t.Fatal(err)
		}
		// A second handle models another process answering the same query.
		again, err := MarshalRecurrences(openStore(t, dir).Load().Query(QueryOptions{By: by}))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, again) {
			t.Fatalf("query -by %s differs across store handles:\n%s\nvs\n%s", by, first, again)
		}
	}
	// The cross-app recurrence signal: the guilty shape appears in all
	// three apps and sorts first.
	rows := w.Load().Query(QueryOptions{By: "shape"})
	if len(rows) == 0 || len(rows[0].Apps) != 3 {
		t.Fatalf("widest shape should span 3 apps: %+v", rows)
	}
}

func TestShapePriorsAndDivergentSeeds(t *testing.T) {
	w := openStore(t, t.TempDir())
	if _, _, err := w.Ingest(probeRecord("app-a", 1)); err != nil {
		t.Fatal(err)
	}
	for _, seed := range []int64{42, 7, 42} {
		_, _, err := w.Ingest(&Record{
			Kind: KindFuzz, App: "fuzz-clean", Grammar: "default",
			Seed: seed, Divergent: true,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	priors := w.Load().ShapePriors()
	if priors == nil {
		t.Fatal("corpus with verdicts must yield shape priors")
	}
	shape := QueryVerdict{Pass: "Early CSE", A: "%a = gep %p", B: "%b = gep %q"}.Shape()
	if c, ok := priors[shape]; !ok || c.Pessimistic != 1 {
		t.Fatalf("prior for %q = %+v, want one pessimistic verdict", shape, c)
	}
	seeds := w.Load().DivergentSeeds("default")
	if len(seeds) != 2 || seeds[0] != 7 || seeds[1] != 42 {
		t.Fatalf("divergent seeds = %v, want sorted unique [7 42]", seeds)
	}
	if got := w.Load().DivergentSeeds("no-pointers"); len(got) != 0 {
		t.Fatalf("grammar filter leaked seeds: %v", got)
	}
}

func TestLocClassShapes(t *testing.T) {
	cases := []struct{ a, b, pass, want string }{
		{"%1 = load i64, %p", "%2 = gep %q, 8", "LICM", "LICM|gep|load"},
		{"%2 = gep %q, 8", "%1 = load i64, %p", "LICM", "LICM|gep|load"}, // order-normalized
		{"global @g", "arg %x", "Early CSE", "Early CSE|arg|global"},
	}
	for _, c := range cases {
		got := QueryVerdict{Pass: c.pass, A: c.a, B: c.b}.Shape()
		if got != c.want {
			t.Errorf("Shape(%q, %q) = %q, want %q", c.a, c.b, got, c.want)
		}
	}
}
