package warehouse

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"

	"github.com/oraql/go-oraql/internal/aa"
	"github.com/oraql/go-oraql/internal/cfg"
	"github.com/oraql/go-oraql/internal/diskcache"
	"github.com/oraql/go-oraql/internal/ir"
	"github.com/oraql/go-oraql/internal/oraql"
)

// Node and edge kinds of the code property graph (after Küchler &
// Banse: one typed graph superimposing structure, control flow, data
// flow, and — our extension — alias facts and ORAQL verdicts).
const (
	NodeModule   = "module"
	NodeGlobal   = "global"
	NodeFunc     = "func"
	NodeBlock    = "block"
	NodeInstr    = "instr"
	NodeArg      = "arg"
	EdgeContains = "CONTAINS"
	EdgeCFG      = "CFG"
	EdgeDom      = "DOM"
	EdgeDFG      = "DFG"
	EdgeCall     = "CALL"
	EdgeAlias    = "ALIAS"
	EdgeORAQL    = "ORAQL"
)

// Node is one typed CPG vertex. IDs are positional ("f1.b2.i3"), so
// the same module exports the same graph in every process and for any
// compile worker count.
type Node struct {
	ID    string            `json:"id"`
	Kind  string            `json:"kind"`
	Label string            `json:"label"`
	Attrs map[string]string `json:"attrs,omitempty"`
}

// Edge is one typed CPG edge between node IDs.
type Edge struct {
	From  string            `json:"from"`
	To    string            `json:"to"`
	Kind  string            `json:"kind"`
	Attrs map[string]string `json:"attrs,omitempty"`
}

// Graph is the exported code property graph.
type Graph struct {
	Module string `json:"module"`
	Nodes  []Node `json:"nodes"`
	Edges  []Edge `json:"edges"`
}

// CPGOptions controls what the exporter superimposes on the IR
// skeleton.
type CPGOptions struct {
	// Records attaches ORAQL verdict edges from a finished compile
	// (pipeline CompileResult.Records()).
	Records []*oraql.QueryRecord
	// History annotates ORAQL edges with fleet-wide verdict counts per
	// query shape (Manifest.ShapePriors()).
	History map[string]diskcache.VerdictCounts
	// MaxAliasPairs caps per-function memory accesses considered for
	// ALIAS edges; 0 means the default of 24, negative disables alias
	// edges entirely.
	MaxAliasPairs int
	// Chain overrides the AA chain used for ALIAS edges (default
	// aa.DefaultChain over the module).
	Chain []aa.Analysis
}

// ExportCPG walks a module into its code property graph. The walk is
// a pure function of the module and options: node and edge order
// follow IR declaration order, so exports are byte-identical across
// processes and worker counts.
func ExportCPG(m *ir.Module, opts CPGOptions) *Graph {
	b := &cpgBuilder{
		g:       &Graph{Module: m.Name},
		byValue: map[ir.Value]string{},
		byFunc:  map[string]string{},
	}
	b.node("m", NodeModule, m.Name, map[string]string{"target": m.Target})
	for i, g := range m.Globals {
		id := fmt.Sprintf("g%d", i)
		b.byValue[g] = id
		b.node(id, NodeGlobal, g.Ident(), map[string]string{
			"size":  strconv.FormatInt(g.Size, 10),
			"const": strconv.FormatBool(g.Const),
		})
		b.edge("m", id, EdgeContains, nil)
	}
	for fi, f := range m.Funcs {
		b.addFunc(fi, f)
	}
	// Second pass: CALL edges need every callee registered first.
	for _, f := range m.Funcs {
		b.addCalls(f)
	}
	b.addAliasEdges(m, opts)
	b.addORAQLEdges(opts)
	return b.g
}

type cpgBuilder struct {
	g       *Graph
	byValue map[ir.Value]string // def sites: globals, args, instrs
	byFunc  map[string]string   // function name -> node ID
}

func (b *cpgBuilder) node(id, kind, label string, attrs map[string]string) {
	b.g.Nodes = append(b.g.Nodes, Node{ID: id, Kind: kind, Label: label, Attrs: attrs})
}

func (b *cpgBuilder) edge(from, to, kind string, attrs map[string]string) {
	b.g.Edges = append(b.g.Edges, Edge{From: from, To: to, Kind: kind, Attrs: attrs})
}

func (b *cpgBuilder) addFunc(fi int, f *ir.Func) {
	fid := fmt.Sprintf("f%d", fi)
	b.byFunc[f.Name] = fid
	b.node(fid, NodeFunc, f.Name, map[string]string{
		"blocks": strconv.Itoa(len(f.Blocks)),
	})
	b.edge("m", fid, EdgeContains, nil)
	for ai, a := range f.Params {
		id := fmt.Sprintf("%s.a%d", fid, ai)
		b.byValue[a] = id
		b.node(id, NodeArg, a.Ident(), nil)
		b.edge(fid, id, EdgeContains, nil)
	}
	blockID := map[*ir.Block]string{}
	for bi, blk := range f.Blocks {
		bid := fmt.Sprintf("%s.b%d", fid, bi)
		blockID[blk] = bid
		b.node(bid, NodeBlock, blk.Name, nil)
		b.edge(fid, bid, EdgeContains, nil)
		for ii, in := range blk.Instrs {
			id := fmt.Sprintf("%s.i%d", bid, ii)
			b.byValue[in] = id
			b.node(id, NodeInstr, in.Op.String(), instrAttrs(in))
			b.edge(bid, id, EdgeContains, nil)
		}
	}
	// CFG edges follow block order; DOM edges come from the dominator
	// tree (entry's idom is itself and is skipped).
	info := cfg.New(f)
	for _, blk := range f.Blocks {
		for _, s := range blk.Succs() {
			b.edge(blockID[blk], blockID[s], EdgeCFG, nil)
		}
	}
	for _, blk := range f.Blocks {
		if id := info.IDom(blk); id != nil && id != blk {
			b.edge(blockID[id], blockID[blk], EdgeDom, nil)
		}
	}
	// DFG edges: def site -> using instruction, in operand order.
	for _, blk := range f.Blocks {
		for _, in := range blk.Instrs {
			use := b.byValue[in]
			for _, op := range in.Operands {
				if def, ok := b.byValue[op]; ok {
					b.edge(def, use, EdgeDFG, nil)
				}
			}
		}
	}
}

func (b *cpgBuilder) addCalls(f *ir.Func) {
	for _, blk := range f.Blocks {
		for _, in := range blk.Instrs {
			if in.Op != ir.OpCall || in.Callee == "" {
				continue
			}
			if callee, ok := b.byFunc[in.Callee]; ok {
				b.edge(b.byValue[in], callee, EdgeCall, map[string]string{"callee": in.Callee})
			}
		}
	}
}

// addAliasEdges runs the AA chain over a bounded set of per-function
// memory accesses and records every definitive answer plus the
// may-alias residue as typed edges.
func (b *cpgBuilder) addAliasEdges(m *ir.Module, opts CPGOptions) {
	limit := opts.MaxAliasPairs
	if limit < 0 {
		return
	}
	if limit == 0 {
		limit = 24
	}
	chain := opts.Chain
	if chain == nil {
		chain = aa.DefaultChain(m)
	}
	mgr := aa.NewManager(m, chain...)
	for _, f := range m.Funcs {
		type access struct {
			in  *ir.Instr
			loc aa.MemLoc
		}
		var accs []access
		for _, blk := range f.Blocks {
			for _, in := range blk.Instrs {
				switch in.Op {
				case ir.OpLoad:
					accs = append(accs, access{in, aa.LocOfLoad(in)})
				case ir.OpStore:
					accs = append(accs, access{in, aa.LocOfStore(in)})
				}
				if len(accs) >= limit {
					break
				}
			}
			if len(accs) >= limit {
				break
			}
		}
		q := &aa.QueryCtx{Pass: "cpg", Func: f}
		for i := 0; i < len(accs); i++ {
			for j := i + 1; j < len(accs); j++ {
				res := mgr.Alias(accs[i].loc, accs[j].loc, q)
				b.edge(b.byValue[accs[i].in], b.byValue[accs[j].in], EdgeAlias,
					map[string]string{"result": res.String()})
			}
		}
	}
}

// addORAQLEdges attaches the campaign's verdicts: one edge per query
// record whose access instructions survive in the exported module,
// annotated with the requesting pass, the verdict, and (when history
// is supplied) the fleet-wide verdict frequency of the query's shape.
func (b *cpgBuilder) addORAQLEdges(opts CPGOptions) {
	for _, rec := range opts.Records {
		from := b.nodeOfLoc(rec.A)
		to := b.nodeOfLoc(rec.B)
		if from == "" || to == "" {
			continue
		}
		verdict := "pessimistic"
		if rec.Optimistic {
			verdict = "optimistic"
		}
		da, db := rec.LocDescriptions()
		qv := QueryVerdict{Pass: rec.Pass, A: da, B: db}
		attrs := map[string]string{
			"pass":    rec.Pass,
			"verdict": verdict,
			"index":   strconv.Itoa(rec.Index),
			"shape":   qv.Shape(),
		}
		if c, ok := opts.History[qv.Shape()]; ok {
			attrs["hist_opt"] = strconv.FormatInt(c.Optimistic, 10)
			attrs["hist_pess"] = strconv.FormatInt(c.Pessimistic, 10)
		}
		b.edge(from, to, EdgeORAQL, attrs)
	}
}

// nodeOfLoc resolves a query location to a CPG node: the access
// instruction when known, else the pointer's def site.
func (b *cpgBuilder) nodeOfLoc(l aa.MemLoc) string {
	if l.Instr != nil {
		if id, ok := b.byValue[l.Instr]; ok {
			return id
		}
	}
	if l.Ptr != nil {
		if id, ok := b.byValue[l.Ptr]; ok {
			return id
		}
	}
	return ""
}

func instrAttrs(in *ir.Instr) map[string]string {
	attrs := map[string]string{}
	if in.Name != "" {
		attrs["name"] = in.Name
	}
	if in.Callee != "" {
		attrs["callee"] = in.Callee
	}
	if in.TBAA != "" {
		attrs["tbaa"] = in.TBAA
	}
	if len(attrs) == 0 {
		return nil
	}
	return attrs
}

// CountByKind tallies nodes and edges per kind — the cheap sanity
// query every surface exposes.
func (g *Graph) CountByKind() (nodes, edges map[string]int) {
	nodes, edges = map[string]int{}, map[string]int{}
	for _, n := range g.Nodes {
		nodes[n.Kind]++
	}
	for _, e := range g.Edges {
		edges[e.Kind]++
	}
	return
}

// AliasEdges filters ALIAS edges by result ("no-alias", "may-alias",
// ...); empty result returns them all.
func (g *Graph) AliasEdges(result string) []Edge {
	var out []Edge
	for _, e := range g.Edges {
		if e.Kind != EdgeAlias {
			continue
		}
		if result != "" && e.Attrs["result"] != result {
			continue
		}
		out = append(out, e)
	}
	return out
}

// EdgeKinds lists the edge kinds present, sorted.
func (g *Graph) EdgeKinds() []string {
	set := map[string]bool{}
	for _, e := range g.Edges {
		set[e.Kind] = true
	}
	out := sortedSet(set)
	sort.Strings(out)
	return out
}

// MarshalGraph renders the deterministic JSON export (map attrs are
// emitted key-sorted by encoding/json, node/edge order is the build
// order), so equal modules yield equal bytes.
func MarshalGraph(g *Graph) ([]byte, error) {
	return json.MarshalIndent(g, "", "  ")
}
