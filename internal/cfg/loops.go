package cfg

import "github.com/oraql/go-oraql/internal/ir"

// Loop is a natural loop: a header block plus the set of blocks that
// can reach a back edge to the header without leaving the loop.
type Loop struct {
	Header *ir.Block
	Blocks []*ir.Block // includes Header, in RPO
	blocks map[*ir.Block]bool
	// Latches are the in-loop predecessors of the header.
	Latches []*ir.Block
	// Preheader is the unique out-of-loop predecessor of the header,
	// or nil when the header has several outside predecessors.
	Preheader *ir.Block
	// Exits are the out-of-loop successor blocks of in-loop blocks.
	Exits []*ir.Block
	// Parent is the innermost enclosing loop, if any.
	Parent *Loop
	// Depth is the nesting depth (outermost = 1).
	Depth int
}

// Contains reports whether b belongs to the loop.
func (l *Loop) Contains(b *ir.Block) bool { return l.blocks[b] }

// Loops returns all natural loops of the function, innermost first for
// equal headers and otherwise in header RPO order. The forest is
// computed once per Info and memoized; the implementation finds back
// edges (edges to a dominator) and floods backwards.
func (in *Info) Loops() []*Loop {
	if !in.loopsDone {
		in.loops = in.findLoops()
		in.loopsDone = true
	}
	return in.loops
}

func (in *Info) findLoops() []*Loop {
	byHeader := map[*ir.Block]*Loop{}
	var order []*Loop
	for _, b := range in.RPO {
		for _, s := range b.Succs() {
			if !in.Dominates(s, b) {
				continue // not a back edge
			}
			l := byHeader[s]
			if l == nil {
				l = &Loop{Header: s, blocks: map[*ir.Block]bool{s: true}}
				byHeader[s] = l
				order = append(order, l)
			}
			l.Latches = append(l.Latches, b)
			// Flood backwards from the latch to the header.
			stack := []*ir.Block{b}
			for len(stack) > 0 {
				x := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if l.blocks[x] {
					continue
				}
				l.blocks[x] = true
				stack = append(stack, in.Preds[x]...)
			}
		}
	}
	for _, l := range order {
		for _, b := range in.RPO {
			if l.blocks[b] {
				l.Blocks = append(l.Blocks, b)
			}
		}
		// Preheader: unique outside predecessor of the header.
		var outside []*ir.Block
		for _, p := range in.Preds[l.Header] {
			if !l.blocks[p] {
				outside = append(outside, p)
			}
		}
		if len(outside) == 1 && len(outside[0].Succs()) == 1 {
			l.Preheader = outside[0]
		}
		// Exits.
		seen := map[*ir.Block]bool{}
		for _, b := range l.Blocks {
			for _, s := range b.Succs() {
				if !l.blocks[s] && !seen[s] {
					seen[s] = true
					l.Exits = append(l.Exits, s)
				}
			}
		}
	}
	// Nesting: loop A is parent of B if A contains B's header and A != B.
	for _, inner := range order {
		for _, outer := range order {
			if inner == outer || !outer.Contains(inner.Header) {
				continue
			}
			if len(outer.Blocks) <= len(inner.Blocks) {
				continue
			}
			if inner.Parent == nil || len(outer.Blocks) < len(inner.Parent.Blocks) {
				inner.Parent = outer
			}
		}
	}
	for _, l := range order {
		d := 1
		for p := l.Parent; p != nil; p = p.Parent {
			d++
		}
		l.Depth = d
	}
	return order
}
