// Package cfg provides control-flow-graph analyses over the IR:
// predecessor maps, reverse postorder, dominator trees
// (Cooper–Harvey–Kennedy), and natural-loop detection. These back the
// loop passes (LICM, loop deletion, vectorization) and the MemorySSA
// walker.
package cfg

import "github.com/oraql/go-oraql/internal/ir"

// Info bundles the CFG analyses of one function. Build it with New;
// it is invalidated by any CFG edit.
type Info struct {
	Fn *ir.Func

	// Preds maps a block to its predecessors in deterministic
	// (reverse-postorder discovery) order.
	Preds map[*ir.Block][]*ir.Block

	// RPO is the reverse postorder over reachable blocks.
	RPO []*ir.Block

	// rpoIndex maps a block to its position in RPO.
	rpoIndex map[*ir.Block]int

	// idom maps each reachable block (except entry) to its immediate
	// dominator.
	idom map[*ir.Block]*ir.Block

	// loops memoizes the natural-loop forest: an Info is immutable once
	// built (any CFG edit invalidates it wholesale), so the forest is
	// computed at most once no matter how many passes consult it.
	loops     []*Loop
	loopsDone bool
}

// New computes CFG analyses for f.
func New(f *ir.Func) *Info {
	info := &Info{
		Fn:       f,
		Preds:    map[*ir.Block][]*ir.Block{},
		rpoIndex: map[*ir.Block]int{},
		idom:     map[*ir.Block]*ir.Block{},
	}
	info.buildOrder()
	info.buildDom()
	return info
}

func (in *Info) buildOrder() {
	visited := map[*ir.Block]bool{}
	var post []*ir.Block
	var dfs func(b *ir.Block)
	dfs = func(b *ir.Block) {
		visited[b] = true
		for _, s := range b.Succs() {
			in.Preds[s] = append(in.Preds[s], b)
			if !visited[s] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	dfs(in.Fn.Entry())
	for i := len(post) - 1; i >= 0; i-- {
		in.rpoIndex[post[i]] = len(in.RPO)
		in.RPO = append(in.RPO, post[i])
	}
}

// buildDom implements the Cooper–Harvey–Kennedy iterative dominator
// algorithm over the reverse postorder.
func (in *Info) buildDom() {
	entry := in.Fn.Entry()
	in.idom[entry] = entry
	changed := true
	for changed {
		changed = false
		for _, b := range in.RPO {
			if b == entry {
				continue
			}
			var newIdom *ir.Block
			for _, p := range in.Preds[b] {
				if _, ok := in.idom[p]; !ok {
					continue // not yet processed / unreachable
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = in.intersect(p, newIdom)
				}
			}
			if newIdom != nil && in.idom[b] != newIdom {
				in.idom[b] = newIdom
				changed = true
			}
		}
	}
}

func (in *Info) intersect(a, b *ir.Block) *ir.Block {
	for a != b {
		for in.rpoIndex[a] > in.rpoIndex[b] {
			a = in.idom[a]
		}
		for in.rpoIndex[b] > in.rpoIndex[a] {
			b = in.idom[b]
		}
	}
	return a
}

// IDom returns the immediate dominator of b (entry returns itself).
func (in *Info) IDom(b *ir.Block) *ir.Block { return in.idom[b] }

// Dominates reports whether a dominates b (reflexively).
func (in *Info) Dominates(a, b *ir.Block) bool {
	for {
		if a == b {
			return true
		}
		id, ok := in.idom[b]
		if !ok || id == b {
			return false
		}
		b = id
	}
}

// Reachable reports whether b is reachable from the entry block.
func (in *Info) Reachable(b *ir.Block) bool {
	_, ok := in.rpoIndex[b]
	return ok
}

// DominatesInstr reports whether the definition a dominates the use
// site u. Both must be in the same function; non-instruction values
// (arguments, constants, globals) dominate everything.
func (in *Info) DominatesInstr(a ir.Value, u *ir.Instr) bool {
	ai, ok := a.(*ir.Instr)
	if !ok {
		return true
	}
	if ai.Parent == u.Parent {
		return instrIndex(ai) < instrIndex(u)
	}
	return in.Dominates(ai.Parent, u.Parent)
}

func instrIndex(x *ir.Instr) int {
	for i, in := range x.Parent.Instrs {
		if in == x {
			return i
		}
	}
	return -1
}
