package cfg

import (
	"testing"

	"github.com/oraql/go-oraql/internal/ir"
)

// diamond builds: entry -> (then | els) -> join -> ret
func diamond(t *testing.T) (*ir.Func, []*ir.Block) {
	m := ir.NewModule("t")
	fn, b := ir.NewFunc(m, "f", ir.Void, &ir.Arg{Name: "c", Ty: ir.I1})
	entry := b.Block()
	then := b.NewBlock("then")
	els := b.NewBlock("els")
	join := b.NewBlock("join")
	b.CondBr(fn.Params[0], then, els)
	b.SetBlock(then)
	b.Br(join)
	b.SetBlock(els)
	b.Br(join)
	b.SetBlock(join)
	b.Ret(nil)
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	return fn, []*ir.Block{entry, then, els, join}
}

func TestDominatorsDiamond(t *testing.T) {
	fn, bs := diamond(t)
	entry, then, els, join := bs[0], bs[1], bs[2], bs[3]
	info := New(fn)
	if info.IDom(join) != entry {
		t.Errorf("idom(join) = %v, want entry", info.IDom(join).Name)
	}
	if !info.Dominates(entry, join) || !info.Dominates(entry, then) {
		t.Error("entry must dominate everything")
	}
	if info.Dominates(then, join) || info.Dominates(els, join) {
		t.Error("branch arms must not dominate the join")
	}
	if !info.Dominates(join, join) {
		t.Error("dominance is reflexive")
	}
}

func TestRPOStartsAtEntry(t *testing.T) {
	fn, bs := diamond(t)
	info := New(fn)
	if info.RPO[0] != bs[0] {
		t.Error("RPO must start at the entry block")
	}
	if len(info.RPO) != 4 {
		t.Errorf("RPO covers %d blocks, want 4", len(info.RPO))
	}
}

func TestPredsDeterministic(t *testing.T) {
	fn, bs := diamond(t)
	info := New(fn)
	preds := info.Preds[bs[3]]
	if len(preds) != 2 || preds[0] != bs[1] || preds[1] != bs[2] {
		t.Errorf("join preds = %v, want [then els]", preds)
	}
}

// loopFunc builds: entry -> header <-> body ; header -> exit
func loopFunc(t *testing.T) (*ir.Func, *ir.Block, *ir.Block, *ir.Block) {
	m := ir.NewModule("t")
	fn, b := ir.NewFunc(m, "f", ir.Void, &ir.Arg{Name: "n", Ty: ir.I64})
	entry := b.Block()
	header := b.NewBlock("header")
	body := b.NewBlock("body")
	exit := b.NewBlock("exit")
	b.Br(header)
	b.SetBlock(header)
	iPhi := b.Phi(ir.I64, "i")
	cmp := b.ICmp(ir.PredLT, iPhi, fn.Params[0], "cmp")
	b.CondBr(cmp, body, exit)
	b.SetBlock(body)
	i2 := b.Bin(ir.OpAdd, iPhi, ir.ConstInt(1), "i2")
	b.Br(header)
	b.SetBlock(exit)
	b.Ret(nil)
	ir.AddIncoming(iPhi, ir.ConstInt(0), entry)
	ir.AddIncoming(iPhi, i2, body)
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	return fn, header, body, exit
}

func TestLoopDetection(t *testing.T) {
	fn, header, body, exit := loopFunc(t)
	info := New(fn)
	loops := info.Loops()
	if len(loops) != 1 {
		t.Fatalf("found %d loops, want 1", len(loops))
	}
	l := loops[0]
	if l.Header != header {
		t.Error("wrong loop header")
	}
	if !l.Contains(header) || !l.Contains(body) || l.Contains(exit) {
		t.Error("loop membership wrong")
	}
	if len(l.Latches) != 1 || l.Latches[0] != body {
		t.Error("latch detection wrong")
	}
	if l.Preheader == nil || l.Preheader != fn.Entry() {
		t.Error("preheader detection wrong")
	}
	if len(l.Exits) != 1 || l.Exits[0] != exit {
		t.Error("exit detection wrong")
	}
	if l.Depth != 1 {
		t.Errorf("depth = %d", l.Depth)
	}
}

func TestNestedLoopDepths(t *testing.T) {
	m := ir.NewModule("t")
	fn, b := ir.NewFunc(m, "f", ir.Void, &ir.Arg{Name: "n", Ty: ir.I64})
	entry := b.Block()
	oh := b.NewBlock("outer.h")
	ih := b.NewBlock("inner.h")
	ib := b.NewBlock("inner.b")
	ol := b.NewBlock("outer.latch")
	exit := b.NewBlock("exit")
	b.Br(oh)
	b.SetBlock(oh)
	oPhi := b.Phi(ir.I64, "i")
	oCmp := b.ICmp(ir.PredLT, oPhi, fn.Params[0], "oc")
	b.CondBr(oCmp, ih, exit)
	b.SetBlock(ih)
	jPhi := b.Phi(ir.I64, "j")
	iCmp := b.ICmp(ir.PredLT, jPhi, fn.Params[0], "ic")
	b.CondBr(iCmp, ib, ol)
	b.SetBlock(ib)
	j2 := b.Bin(ir.OpAdd, jPhi, ir.ConstInt(1), "j2")
	b.Br(ih)
	b.SetBlock(ol)
	i2 := b.Bin(ir.OpAdd, oPhi, ir.ConstInt(1), "i2")
	b.Br(oh)
	b.SetBlock(exit)
	b.Ret(nil)
	ir.AddIncoming(oPhi, ir.ConstInt(0), entry)
	ir.AddIncoming(oPhi, i2, ol)
	ir.AddIncoming(jPhi, ir.ConstInt(0), oh)
	ir.AddIncoming(jPhi, j2, ib)
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	info := New(fn)
	loops := info.Loops()
	if len(loops) != 2 {
		t.Fatalf("found %d loops, want 2", len(loops))
	}
	var inner, outer *Loop
	for _, l := range loops {
		if l.Header == ih {
			inner = l
		}
		if l.Header == oh {
			outer = l
		}
	}
	if inner == nil || outer == nil {
		t.Fatal("missing loop")
	}
	if inner.Parent != outer {
		t.Error("inner loop's parent must be the outer loop")
	}
	if inner.Depth != 2 || outer.Depth != 1 {
		t.Errorf("depths inner=%d outer=%d", inner.Depth, outer.Depth)
	}
	if !outer.Contains(ib) {
		t.Error("outer loop must contain inner body")
	}
}

func TestDominatesInstrSameBlock(t *testing.T) {
	m := ir.NewModule("t")
	_, b := ir.NewFunc(m, "f", ir.Void)
	x := b.Bin(ir.OpAdd, ir.ConstInt(1), ir.ConstInt(2), "x")
	y := b.Bin(ir.OpAdd, x, ir.ConstInt(1), "y")
	b.Ret(nil)
	info := New(b.Func())
	if !info.DominatesInstr(x, y) {
		t.Error("earlier instr must dominate later in same block")
	}
	if info.DominatesInstr(y, x) {
		t.Error("later instr must not dominate earlier")
	}
	if !info.DominatesInstr(ir.ConstInt(3), x) {
		t.Error("constants dominate everything")
	}
}

func TestUnreachableBlockNotInRPO(t *testing.T) {
	m := ir.NewModule("t")
	fn, b := ir.NewFunc(m, "f", ir.Void)
	b.Ret(nil)
	dead := fn.NewBlock("dead")
	db := ir.NewBuilder(dead)
	db.Ret(nil)
	info := New(fn)
	if info.Reachable(dead) {
		t.Error("dead block must be unreachable")
	}
	if len(info.RPO) != 1 {
		t.Errorf("RPO = %d blocks, want 1", len(info.RPO))
	}
}
