package aa

import "github.com/oraql/go-oraql/internal/ir"

// SteensgaardAA is a unification-based (almost-linear-time) points-to
// analysis over the whole module, the analogue of LLVM's CFLSteensAA.
// Every pointer value gets an equivalence class; classes carry a single
// points-to edge, and assignments unify. Two pointers cannot alias if
// their points-to classes differ after the fixpoint.
type SteensgaardAA struct {
	// derefRep maps each value seen during constraint generation to the
	// representative of the class its points-to edge resolves to,
	// computed once after the fixpoint. The union-find itself (lazy
	// deref materialization, path compression) mutates on access, so it
	// is frozen into this map at construction and Alias is a pure map
	// read — safe for concurrent queries from parallel pass workers.
	derefRep map[ir.Value]int
}

type unifier struct {
	parent []int
	deref  []int // points-to edge per class representative; -1 if none
}

func (u *unifier) fresh() int {
	u.parent = append(u.parent, len(u.parent))
	u.deref = append(u.deref, -1)
	return len(u.parent) - 1
}

func (u *unifier) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

// derefOf returns (creating on demand) the class a class points to.
func (u *unifier) derefOf(x int) int {
	x = u.find(x)
	if u.deref[x] == -1 {
		u.deref[x] = u.fresh()
	}
	return u.find(u.deref[x])
}

// union merges two classes, recursively merging their points-to edges
// (Steensgaard's "cjoin").
func (u *unifier) union(a, b int) {
	a, b = u.find(a), u.find(b)
	if a == b {
		return
	}
	da, db := u.deref[a], u.deref[b]
	u.parent[b] = a
	switch {
	case da == -1:
		u.deref[a] = db
	case db != -1:
		u.union(da, db)
	}
}

// steensBuilder holds the mutable unification state while constraints
// are generated; it is discarded once the result is frozen into the
// read-only SteensgaardAA.
type steensBuilder struct {
	u *unifier
	// node maps values to unifier node indices.
	node map[ir.Value]int
}

// NewSteensgaardAA runs the unification over m and returns the analysis.
func NewSteensgaardAA(m *ir.Module) *SteensgaardAA {
	sb := &steensBuilder{u: &unifier{}, node: map[ir.Value]int{}}
	get := func(v ir.Value) int {
		if n, ok := sb.node[v]; ok {
			return n
		}
		n := sb.u.fresh()
		sb.node[v] = n
		return n
	}
	retNode := map[string]int{}
	for _, f := range m.Funcs {
		retNode[f.Name] = sb.u.fresh()
	}
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Dead() {
					continue
				}
				sb.constrain(m, f, in, get, retNode)
			}
		}
	}
	// Freeze: resolve every value's deref class to its representative.
	// Lazily created deref nodes are fresh singletons never unified
	// afterwards, so the equality structure (all Alias ever compares)
	// does not depend on the map iteration order here.
	s := &SteensgaardAA{derefRep: make(map[ir.Value]int, len(sb.node))}
	for v, n := range sb.node {
		s.derefRep[v] = sb.u.find(sb.u.derefOf(n))
	}
	return s
}

func (s *steensBuilder) constrain(m *ir.Module, f *ir.Func, in *ir.Instr, get func(ir.Value) int, retNode map[string]int) {
	u := s.u
	// Every pointer value gets a node, so fresh objects (mallocs,
	// allocas) with no further constraints keep distinct classes and
	// answer no-alias.
	if in.Ty == ir.Ptr {
		get(in)
	}
	for _, op := range in.Operands {
		if op.Type() == ir.Ptr {
			if _, isConst := op.(*ir.Const); !isConst {
				get(op)
			}
		}
	}
	switch in.Op {
	case ir.OpGEP:
		u.union(get(in), get(in.Operands[0]))
	case ir.OpSelect:
		if in.Ty == ir.Ptr {
			u.union(get(in), get(in.Operands[1]))
			u.union(get(in), get(in.Operands[2]))
		}
	case ir.OpPhi:
		if in.Ty == ir.Ptr {
			for _, op := range in.Operands {
				u.union(get(in), get(op))
			}
		}
	case ir.OpLoad:
		if in.Ty == ir.Ptr {
			u.union(get(in), u.derefOf(get(in.Operands[0])))
		}
	case ir.OpStore:
		if in.Operands[0].Type() == ir.Ptr {
			u.union(u.derefOf(get(in.Operands[1])), get(in.Operands[0]))
		}
	case ir.OpMemCpy:
		u.union(u.derefOf(get(in.Operands[0])), u.derefOf(get(in.Operands[1])))
	case ir.OpCall:
		s.constrainCall(m, in, get, retNode)
	}
}

func (s *steensBuilder) constrainCall(m *ir.Module, in *ir.Instr, get func(ir.Value) int, retNode map[string]int) {
	u := s.u
	switch in.Callee {
	case "__malloc":
		return // fresh object: the deref edge is created on demand
	case "__omp_fork", "__omp_task", "__gpu_launch":
		// Operand 0 is the callee name constant; operand 1 the shared
		// context pointer, unified with the outlined function's first
		// parameter.
		if len(in.Operands) >= 2 {
			if fn := calleeOf(m, in.Operands[0]); fn != nil && len(fn.Params) > 0 {
				u.union(get(in.Operands[1]), get(fn.Params[0]))
			}
		}
		return
	case "__mpi_sendrecv":
		if len(in.Operands) >= 2 {
			u.union(u.derefOf(get(in.Operands[0])), u.derefOf(get(in.Operands[1])))
		}
		return
	}
	if ir.IsIntrinsic(in.Callee) {
		return
	}
	callee := m.FuncByName(in.Callee)
	if callee == nil {
		return
	}
	for i, arg := range in.Operands {
		if i < len(callee.Params) && arg.Type() == ir.Ptr {
			u.union(get(arg), get(callee.Params[i]))
		}
	}
	if in.Ty == ir.Ptr {
		u.union(get(in), retNode[in.Callee])
	}
	// Returns inside the callee feed the ret node.
	for _, b := range callee.Blocks {
		for _, ci := range b.Instrs {
			if ci.Op == ir.OpRet && len(ci.Operands) > 0 && ci.Operands[0].Type() == ir.Ptr {
				u.union(retNode[in.Callee], get(ci.Operands[0]))
			}
		}
	}
}

// calleeOf resolves a function-name constant operand of a fork/launch
// intrinsic to the module function.
func calleeOf(m *ir.Module, v ir.Value) *ir.Func {
	c, ok := v.(*ir.Const)
	if !ok || c.Str == "" {
		return nil
	}
	return m.FuncByName(c.Str)
}

// Name implements Analysis.
func (*SteensgaardAA) Name() string { return "cfl-steens-aa" }

// Alias implements Analysis.
func (s *SteensgaardAA) Alias(a, b MemLoc, _ *QueryCtx) Result {
	ra, ok1 := s.derefRep[a.Ptr]
	rb, ok2 := s.derefRep[b.Ptr]
	if !ok1 || !ok2 {
		// Globals/args appear in the map only if an instruction used
		// them; unseen values have no constraints, so stay safe.
		return MayAlias
	}
	if ra != rb {
		return NoAlias
	}
	return MayAlias
}
