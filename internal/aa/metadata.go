package aa

import "github.com/oraql/go-oraql/internal/ir"

// TypeBasedAA answers queries from TBAA access tags: accesses whose
// tags lie on unrelated branches of the module's TBAA tree cannot
// alias. Untagged accesses may alias anything.
type TypeBasedAA struct {
	tree *ir.TBAATree
}

// NewTypeBasedAA returns a TBAA analysis over m's tag tree.
func NewTypeBasedAA(m *ir.Module) *TypeBasedAA { return &TypeBasedAA{tree: m.TBAA} }

// Name implements Analysis.
func (*TypeBasedAA) Name() string { return "tbaa" }

// Alias implements Analysis.
func (t *TypeBasedAA) Alias(a, b MemLoc, _ *QueryCtx) Result {
	if a.TBAA == "" || b.TBAA == "" {
		return MayAlias
	}
	if !t.tree.MayAlias(a.TBAA, b.TBAA) {
		return NoAlias
	}
	return MayAlias
}

// ScopedNoAliasAA answers queries from alias-scope metadata: an access
// declared noalias against scope S cannot alias an access that is a
// member of S (the IR analogue of !noalias / !alias.scope, emitted for
// restrict-qualified locals and vector-region annotations).
type ScopedNoAliasAA struct{}

// NewScopedNoAliasAA returns the analysis.
func NewScopedNoAliasAA() *ScopedNoAliasAA { return &ScopedNoAliasAA{} }

// Name implements Analysis.
func (*ScopedNoAliasAA) Name() string { return "scoped-noalias" }

// Alias implements Analysis.
func (*ScopedNoAliasAA) Alias(a, b MemLoc, _ *QueryCtx) Result {
	if scopesExclude(a.NoAliasScope, b.Scopes) || scopesExclude(b.NoAliasScope, a.Scopes) {
		return NoAlias
	}
	return MayAlias
}

func scopesExclude(noalias, member []string) bool {
	for _, n := range noalias {
		for _, m := range member {
			if n == m {
				return true
			}
		}
	}
	return false
}

// ArgAttrAA exploits noalias (restrict) argument attributes: memory
// reached through a noalias argument is disjoint from memory reached
// through any other identified object. It stands in for LLVM's
// ObjCARCAA slot in the seven-analysis chain (ObjC semantics do not
// exist in this IR); see DESIGN.md.
type ArgAttrAA struct{}

// NewArgAttrAA returns the analysis.
func NewArgAttrAA() *ArgAttrAA { return &ArgAttrAA{} }

// Name implements Analysis.
func (*ArgAttrAA) Name() string { return "argattr-aa" }

// Alias implements Analysis.
func (*ArgAttrAA) Alias(a, b MemLoc, _ *QueryCtx) Result {
	ua := UnderlyingObject(a.Ptr)
	ub := UnderlyingObject(b.Ptr)
	if ua == nil || ub == nil || ua == ub {
		return MayAlias
	}
	aArg, aOk := ua.(*ir.Arg)
	bArg, bOk := ub.(*ir.Arg)
	// A noalias argument cannot overlap any value not based on it: any
	// other identified object, and any *other argument* (passing the
	// same pointer twice would make the accesses undefined behaviour,
	// exactly as with C's restrict).
	if aOk && aArg.NoAlias && (IsIdentifiedObject(ub) || bOk) {
		return NoAlias
	}
	if bOk && bArg.NoAlias && (IsIdentifiedObject(ua) || aOk) {
		return NoAlias
	}
	return MayAlias
}
