package aa

import "github.com/oraql/go-oraql/internal/ir"

// UnderlyingObject strips GEPs (and, through select, both sides when
// they agree) to find the base object a pointer is derived from.
// Returns nil when the chain passes through a load, phi, select with
// distinct bases, or call result other than __malloc.
func UnderlyingObject(v ir.Value) ir.Value {
	for depth := 0; depth < 64; depth++ {
		in, ok := v.(*ir.Instr)
		if !ok {
			return v // Arg, Global, Const
		}
		switch in.Op {
		case ir.OpGEP:
			v = in.Operands[0]
		case ir.OpSelect:
			a := UnderlyingObject(in.Operands[1])
			b := UnderlyingObject(in.Operands[2])
			if a != nil && a == b {
				return a
			}
			return nil
		case ir.OpAlloca:
			return in
		case ir.OpCall:
			if in.Callee == "__malloc" {
				return in
			}
			return nil
		default:
			return nil
		}
	}
	return nil
}

// IsIdentifiedObject reports whether v is a distinct memory object:
// an alloca, a global, a __malloc result, or a noalias argument.
// Two different identified objects never overlap.
func IsIdentifiedObject(v ir.Value) bool {
	switch x := v.(type) {
	case *ir.Global:
		return true
	case *ir.Arg:
		return x.NoAlias
	case *ir.Instr:
		return x.Op == ir.OpAlloca || (x.Op == ir.OpCall && x.Callee == "__malloc")
	}
	return false
}

// IsLocalObject reports whether v is function-local memory (alloca or
// malloc result), as opposed to an argument or global.
func IsLocalObject(v ir.Value) bool {
	x, ok := v.(*ir.Instr)
	if !ok {
		return false
	}
	return x.Op == ir.OpAlloca || (x.Op == ir.OpCall && x.Callee == "__malloc")
}

// callCaptures lists intrinsics that receive pointer arguments without
// retaining them beyond the call: passing a pointer to these does not
// make the pointee reachable through other names afterwards.
var nonCapturingIntrinsics = map[string]bool{
	"__print_str":         true,
	"__checksum_f64":      true,
	"__checksum_i64":      true,
	"__free":              true,
	"__mpi_sendrecv":      true,
	"__mpi_allreduce_f64": true,
}

// IsNonCaptured reports whether the address of the local object obj
// never escapes its function: it is not stored as a value, not passed
// to a capturing call, and every derived pointer (via GEP/select) obeys
// the same. A non-captured local cannot be reached through arguments,
// globals, or loaded pointers.
func IsNonCaptured(obj *ir.Instr) bool {
	fn := obj.Parent.Parent
	derived := map[ir.Value]bool{obj: true}
	// Fixed point over derived pointers; functions are small.
	for changed := true; changed; {
		changed = false
		for _, b := range fn.Blocks {
			for _, in := range b.Instrs {
				if in.Dead() {
					continue
				}
				if (in.Op == ir.OpGEP || in.Op == ir.OpSelect) && !derived[in] {
					for _, op := range in.Operands {
						if derived[op] {
							derived[in] = true
							changed = true
							break
						}
					}
				}
			}
		}
	}
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			if in.Dead() {
				continue
			}
			switch in.Op {
			case ir.OpStore:
				if derived[in.Operands[0]] {
					return false // address stored to memory
				}
			case ir.OpCall:
				if ir.IsIntrinsic(in.Callee) && (nonCapturingIntrinsics[in.Callee] ||
					!ir.CalleeEffects(in.Callee).Reads && !ir.CalleeEffects(in.Callee).Writes) {
					continue
				}
				if in.Callee == "__memcpy" {
					continue
				}
				for _, op := range in.Operands {
					if derived[op] {
						return false // passed to a capturing call
					}
				}
			case ir.OpPhi:
				for _, op := range in.Operands {
					if derived[op] {
						return false // flows into a phi: give up tracking
					}
				}
			case ir.OpRet:
				for _, op := range in.Operands {
					if derived[op] {
						return false
					}
				}
			}
		}
	}
	return true
}
