package aa

// Registry-driven chain construction: every analysis registers a named
// constructor, and chains are registered *orders* over those names.
// DefaultChain/FullChain remain as convenience wrappers, but the
// registry is authoritative — the pipeline, the campaign script
// engine, and the CLIs all resolve chains through ChainByName, so a
// reordered or truncated chain is a name (or a comma list), not a code
// change.

import (
	"fmt"
	"strings"

	"github.com/oraql/go-oraql/internal/ir"
	"github.com/oraql/go-oraql/internal/registry"
)

// Constructor builds one analysis instance over a module. Analyses
// that need no module state ignore the argument.
type Constructor func(m *ir.Module) Analysis

// Analysis names use the Analysis.Name() spellings, so -stats
// attribution, Fig. 4 columns, and registry lookups agree.
const (
	NameBasic    = "basic-aa"
	NameScoped   = "scoped-noalias"
	NameTBAA     = "tbaa"
	NameArgAttr  = "argattr-aa"
	NameGlobals  = "globals-aa"
	NameAndersen = "cfl-anders-aa"
	NameSteens   = "cfl-steens-aa"
)

// defaultChainNames is the -O3 default order (mirroring LLVM);
// fullChainNames appends the two CFL points-to analyses.
var defaultChainNames = []string{NameBasic, NameScoped, NameTBAA, NameArgAttr, NameGlobals}
var fullChainNames = append(append([]string(nil), defaultChainNames...), NameAndersen, NameSteens)

func init() {
	for _, a := range []struct {
		name, desc string
		build      Constructor
	}{
		{NameBasic, "stateless local reasoning: identified objects, offsets, arguments", func(*ir.Module) Analysis { return NewBasicAA() }},
		{NameScoped, "noalias-scope metadata (restrict lowering)", func(*ir.Module) Analysis { return NewScopedNoAliasAA() }},
		{NameTBAA, "type-based aliasing from the frontend's TBAA tree", func(m *ir.Module) Analysis { return NewTypeBasedAA(m) }},
		{NameArgAttr, "noalias/readonly argument attributes", func(*ir.Module) Analysis { return NewArgAttrAA() }},
		{NameGlobals, "module-level facts about address-taken globals", func(m *ir.Module) Analysis { return NewGlobalsAA(m) }},
		{NameAndersen, "inclusion-based (Andersen) CFL points-to, off by default", func(m *ir.Module) Analysis { return NewAndersenAA(m) }},
		{NameSteens, "unification-based (Steensgaard) CFL points-to, off by default", func(m *ir.Module) Analysis { return NewSteensgaardAA(m) }},
	} {
		registry.AAAnalyses.Register(registry.Entry{
			Name:        a.name,
			Description: a.desc,
			Value:       a.build,
		})
	}
	registry.AAChains.Register(registry.Entry{
		Name:        "default",
		Description: "the -O3 default: " + strings.Join(defaultChainNames, ", "),
		Value:       defaultChainNames,
	})
	registry.AAChains.Register(registry.Entry{
		Name:        "full",
		Description: "default plus the CFL points-to analyses (all seven of LLVM 14)",
		Value:       fullChainNames,
	})
}

// ResolveChainNames canonicalizes a chain specifier: a registered
// chain name ("default", "full"), a comma-separated list of analysis
// names (a custom order), or "" (the default chain). The returned list
// is the canonical identity used in disk-cache keys.
func ResolveChainNames(spec string) ([]string, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		spec = "default"
	}
	if e, ok := registry.AAChains.Lookup(spec); ok {
		return append([]string(nil), e.Value.([]string)...), nil
	}
	var names []string
	for _, part := range strings.Split(spec, ",") {
		name := strings.TrimSpace(part)
		if name == "" {
			continue
		}
		if _, ok := registry.AAAnalyses.Lookup(name); !ok {
			return nil, fmt.Errorf("aa: unknown analysis %q in chain %q (known: %s)",
				name, spec, strings.Join(registry.AAAnalyses.Names(), ", "))
		}
		names = append(names, name)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("aa: empty chain %q", spec)
	}
	return names, nil
}

// ChainSpecCanonical renders the canonical comma-joined identity of a
// chain specifier (for cache keys); errors mirror ResolveChainNames.
func ChainSpecCanonical(spec string) (string, error) {
	names, err := ResolveChainNames(spec)
	if err != nil {
		return "", err
	}
	return strings.Join(names, ","), nil
}

// ChainByName builds the analysis instances for a chain specifier in
// order (see ResolveChainNames for the accepted forms).
func ChainByName(m *ir.Module, spec string) ([]Analysis, error) {
	names, err := ResolveChainNames(spec)
	if err != nil {
		return nil, err
	}
	return buildChain(m, names), nil
}

func buildChain(m *ir.Module, names []string) []Analysis {
	out := make([]Analysis, len(names))
	for i, name := range names {
		e, ok := registry.AAAnalyses.Lookup(name)
		if !ok {
			// Registered chains only reference registered analyses; a
			// miss here is a registration bug, not user input.
			panic(fmt.Sprintf("aa: chain references unregistered analysis %q", name))
		}
		out[i] = e.Value.(Constructor)(m)
	}
	return out
}
