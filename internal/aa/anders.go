package aa

import "github.com/oraql/go-oraql/internal/ir"

// AndersenAA is an inclusion-based points-to analysis over the whole
// module, the analogue of LLVM's CFLAndersAA. It computes, for every
// pointer value, the set of abstract objects (allocas, globals, malloc
// sites) it may point to; two pointers with disjoint non-empty sets
// cannot alias.
type AndersenAA struct {
	// node indices: one per pointer value, plus one "contents" node per
	// abstract object.
	node map[ir.Value]int
	pts  []map[int]bool // node -> object set (objects are node indices of their contents nodes' owners)
	// copyEdges: src -> dst list (pts(dst) ⊇ pts(src)).
	copyEdges [][]int
	// loadFrom / storeTo are complex constraints resolved iteratively.
	loads  []pair // (p, q): q = load p  => for o in pts(p): contents(o) -> q
	stores []pair // (v, p): store v, p  => for o in pts(p): v -> contents(o)
	copies []pair // (src, dst) memcpy/sendrecv: contents flow both handled as two entries
	// contents(o) node index per object id.
	contents map[int]int
	nextNode int
}

type pair struct{ a, b int }

// NewAndersenAA runs the solver over m and returns the analysis.
func NewAndersenAA(m *ir.Module) *AndersenAA {
	an := &AndersenAA{node: map[ir.Value]int{}, contents: map[int]int{}}
	get := func(v ir.Value) int {
		if n, ok := an.node[v]; ok {
			return n
		}
		n := an.newNode()
		an.node[v] = n
		return n
	}
	retNode := map[string]int{}
	for _, f := range m.Funcs {
		retNode[f.Name] = an.newNode()
	}
	addBase := func(v ir.Value) {
		n := get(v)
		an.pts[n][n] = true // the value points to the object identified by its own node id
	}
	for _, g := range m.Globals {
		addBase(g)
	}
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Dead() {
					continue
				}
				switch in.Op {
				case ir.OpAlloca:
					addBase(in)
				case ir.OpGEP:
					an.copyEdge(get(in.Operands[0]), get(in))
				case ir.OpSelect:
					if in.Ty == ir.Ptr {
						an.copyEdge(get(in.Operands[1]), get(in))
						an.copyEdge(get(in.Operands[2]), get(in))
					}
				case ir.OpPhi:
					if in.Ty == ir.Ptr {
						for _, op := range in.Operands {
							an.copyEdge(get(op), get(in))
						}
					}
				case ir.OpLoad:
					if in.Ty == ir.Ptr {
						an.loads = append(an.loads, pair{get(in.Operands[0]), get(in)})
					}
				case ir.OpStore:
					if in.Operands[0].Type() == ir.Ptr {
						an.stores = append(an.stores, pair{get(in.Operands[0]), get(in.Operands[1])})
					}
				case ir.OpMemCpy:
					an.copies = append(an.copies, pair{get(in.Operands[1]), get(in.Operands[0])})
				case ir.OpCall:
					an.constrainCall(m, in, get, retNode, addBase)
				}
			}
		}
	}
	an.solve()
	return an
}

func (an *AndersenAA) newNode() int {
	an.pts = append(an.pts, map[int]bool{})
	an.copyEdges = append(an.copyEdges, nil)
	an.nextNode++
	return an.nextNode - 1
}

func (an *AndersenAA) copyEdge(src, dst int) {
	an.copyEdges[src] = append(an.copyEdges[src], dst)
}

// contentsOf returns the node holding the pointer contents of object o.
func (an *AndersenAA) contentsOf(o int) int {
	if c, ok := an.contents[o]; ok {
		return c
	}
	c := an.newNode()
	an.contents[o] = c
	return c
}

func (an *AndersenAA) constrainCall(m *ir.Module, in *ir.Instr, get func(ir.Value) int, retNode map[string]int, addBase func(ir.Value)) {
	switch in.Callee {
	case "__malloc":
		addBase(in)
		return
	case "__omp_fork", "__omp_task", "__gpu_launch":
		if len(in.Operands) >= 2 {
			if fn := calleeOf(m, in.Operands[0]); fn != nil && len(fn.Params) > 0 {
				an.copyEdge(get(in.Operands[1]), get(fn.Params[0]))
			}
		}
		return
	case "__mpi_sendrecv":
		if len(in.Operands) >= 2 {
			an.copies = append(an.copies,
				pair{get(in.Operands[0]), get(in.Operands[1])},
				pair{get(in.Operands[1]), get(in.Operands[0])})
		}
		return
	}
	if ir.IsIntrinsic(in.Callee) {
		return
	}
	callee := m.FuncByName(in.Callee)
	if callee == nil {
		return
	}
	for i, arg := range in.Operands {
		if i < len(callee.Params) && arg.Type() == ir.Ptr {
			an.copyEdge(get(arg), get(callee.Params[i]))
		}
	}
	if in.Ty == ir.Ptr {
		an.copyEdge(retNode[in.Callee], get(in))
	}
	for _, b := range callee.Blocks {
		for _, ci := range b.Instrs {
			if ci.Op == ir.OpRet && len(ci.Operands) > 0 && ci.Operands[0].Type() == ir.Ptr {
				an.copyEdge(get(ci.Operands[0]), retNode[in.Callee])
			}
		}
	}
}

// solve iterates copy propagation and complex constraints to fixpoint.
func (an *AndersenAA) solve() {
	changed := true
	flow := func(src, dst int) bool {
		grew := false
		for o := range an.pts[src] {
			if !an.pts[dst][o] {
				an.pts[dst][o] = true
				grew = true
			}
		}
		return grew
	}
	for changed {
		changed = false
		for src, dsts := range an.copyEdges {
			for _, dst := range dsts {
				if flow(src, dst) {
					changed = true
				}
			}
		}
		for _, ld := range an.loads { // q = load p
			for o := range an.pts[ld.a] {
				if flow(an.contentsOf(o), ld.b) {
					changed = true
				}
			}
		}
		for _, st := range an.stores { // store v, p
			for o := range an.pts[st.b] {
				if flow(st.a, an.contentsOf(o)) {
					changed = true
				}
			}
		}
		for _, cp := range an.copies { // contents(dst objs) ⊇ contents(src objs)
			for os := range an.pts[cp.a] {
				for od := range an.pts[cp.b] {
					if flow(an.contentsOf(os), an.contentsOf(od)) {
						changed = true
					}
				}
			}
		}
	}
}

// Name implements Analysis.
func (*AndersenAA) Name() string { return "cfl-anders-aa" }

// Alias implements Analysis.
func (an *AndersenAA) Alias(a, b MemLoc, _ *QueryCtx) Result {
	na, ok1 := an.node[a.Ptr]
	nb, ok2 := an.node[b.Ptr]
	if !ok1 || !ok2 {
		return MayAlias
	}
	pa, pb := an.pts[na], an.pts[nb]
	if len(pa) == 0 || len(pb) == 0 {
		// A pointer with an empty set flowed from something we do not
		// model; do not claim anything.
		return MayAlias
	}
	for o := range pa {
		if pb[o] {
			return MayAlias
		}
	}
	return NoAlias
}
