package aa

import (
	"testing"

	"github.com/oraql/go-oraql/internal/ir"
)

func TestInstrMayClobberLoc(t *testing.T) {
	f := newFixture(t)
	st := f.b.Store(ir.ConstInt(1), f.a1, "")
	ld := f.b.Load(ir.I64, f.a1, "")
	call := f.b.Call(ir.Void, "__print_i64", ld)
	userCall := f.b.Call(ir.Void, "f", f.p) // self-recursive: unknown effects
	f.b.Ret(nil)
	mgr := NewManager(f.m, DefaultChain(f.m)...)
	a1Loc := f.loc(f.a1, 8)
	a2Loc := f.loc(f.a2, 8)
	if !mgr.InstrMayClobberLoc(st, a1Loc, nil) {
		t.Error("store to a1 clobbers a1")
	}
	if mgr.InstrMayClobberLoc(st, a2Loc, nil) {
		t.Error("store to a1 cannot clobber a2")
	}
	if mgr.InstrMayClobberLoc(ld, a1Loc, nil) {
		t.Error("loads never clobber")
	}
	if mgr.InstrMayClobberLoc(call, a1Loc, nil) {
		t.Error("print intrinsics never clobber")
	}
	if !mgr.InstrMayClobberLoc(userCall, f.loc(f.p, 8), nil) {
		t.Error("unknown user calls clobber conservatively")
	}
}

func TestInstrMayReadLoc(t *testing.T) {
	f := newFixture(t)
	ld := f.b.Load(ir.I64, f.a1, "")
	cs := f.b.Call(ir.F64, "__checksum_f64", f.a2, ir.ConstInt(2))
	f.b.Ret(nil)
	_ = ld
	mgr := NewManager(f.m, DefaultChain(f.m)...)
	if !mgr.InstrMayReadLoc(ld, f.loc(f.a1, 8), nil) {
		t.Error("load reads its own location")
	}
	if mgr.InstrMayReadLoc(ld, f.loc(f.a2, 8), nil) {
		t.Error("load of a1 does not read a2")
	}
	// checksum is argmemonly: reads a2 but not a1.
	if !mgr.InstrMayReadLoc(cs, f.loc(f.a2, 8), nil) {
		t.Error("checksum reads its buffer")
	}
	if mgr.InstrMayReadLoc(cs, f.loc(f.a1, 8), nil) {
		t.Error("argmemonly call must not read unrelated allocas")
	}
}

func TestFullChainAnswersMore(t *testing.T) {
	// Two distinct mallocs stored through a struct slot: the default
	// chain cannot separate the loaded pointers, the CFL analyses can.
	m := ir.NewModule("t")
	_, b := ir.NewFunc(m, "f", ir.Void)
	s1 := b.Alloca(8, "s1")
	s2 := b.Alloca(8, "s2")
	o1 := b.Call(ir.Ptr, "__malloc", ir.ConstInt(64))
	o2 := b.Call(ir.Ptr, "__malloc", ir.ConstInt(64))
	b.Store(o1, s1, "")
	b.Store(o2, s2, "")
	l1 := b.Load(ir.Ptr, s1, "")
	l2 := b.Load(ir.Ptr, s2, "")
	b.Ret(nil)
	locA := MemLoc{Ptr: l1, Size: PreciseSize(8)}
	locB := MemLoc{Ptr: l2, Size: PreciseSize(8)}
	def := NewManager(m, DefaultChain(m)...)
	if r := def.Alias(locA, locB, nil); r != MayAlias {
		t.Errorf("default chain should fail here, got %v", r)
	}
	full := NewManager(m, FullChain(m)...)
	if r := full.Alias(locA, locB, nil); r != NoAlias {
		t.Errorf("CFL analyses should separate the mallocs, got %v", r)
	}
}

func TestBlockerShortCircuitsChain(t *testing.T) {
	f := newFixture(t)
	f.b.Ret(nil)
	mgr := NewManager(f.m, DefaultChain(f.m)...)
	mgr.Blocker = blockAll{}
	// Even trivially-disjoint allocas become may-alias when blocked.
	if r := mgr.Alias(f.loc(f.a1, 8), f.loc(f.a2, 8), nil); r != MayAlias {
		t.Errorf("blocked query = %v", r)
	}
	if mgr.Stats().NoAlias != 0 || mgr.Stats().MayAlias != 1 {
		t.Errorf("stats: %+v", mgr.Stats())
	}
}

type blockAll struct{}

func (blockAll) Block(a, b MemLoc, q *QueryCtx) bool { return true }

func TestStatsAnalysesSorted(t *testing.T) {
	f := newFixture(t)
	f.b.Ret(nil)
	mgr := NewManager(f.m, DefaultChain(f.m)...)
	mgr.Alias(f.loc(f.a1, 8), f.loc(f.a2, 8), nil)
	mgr.Alias(f.loc(f.q, 8), f.loc(f.a1, 8), nil)
	names := mgr.Stats().Analyses()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("analyses not sorted: %v", names)
		}
	}
}
