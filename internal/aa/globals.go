package aa

import "github.com/oraql/go-oraql/internal/ir"

// GlobalsAA is a module analysis that identifies non-escaping globals:
// globals whose address is never stored to memory nor passed to a
// capturing call anywhere in the module. A pointer that is not derived
// directly from such a global can never alias it.
type GlobalsAA struct {
	escaped map[*ir.Global]bool
}

// NewGlobalsAA analyses m and returns the analysis.
func NewGlobalsAA(m *ir.Module) *GlobalsAA {
	g := &GlobalsAA{escaped: map[*ir.Global]bool{}}
	for _, f := range m.Funcs {
		// Derived pointers per function: global -> set of derived values.
		derivedFrom := map[ir.Value]*ir.Global{}
		for changed := true; changed; {
			changed = false
			for _, b := range f.Blocks {
				for _, in := range b.Instrs {
					if in.Dead() {
						continue
					}
					if in.Op != ir.OpGEP && in.Op != ir.OpSelect {
						continue
					}
					if _, done := derivedFrom[in]; done {
						continue
					}
					for _, op := range in.Operands {
						if gl, ok := op.(*ir.Global); ok {
							derivedFrom[in] = gl
							changed = true
						} else if gl, ok := derivedFrom[op]; ok {
							derivedFrom[in] = gl
							changed = true
						}
					}
				}
			}
		}
		globalOf := func(v ir.Value) *ir.Global {
			if gl, ok := v.(*ir.Global); ok {
				return gl
			}
			return derivedFrom[v]
		}
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Dead() {
					continue
				}
				switch in.Op {
				case ir.OpStore:
					if gl := globalOf(in.Operands[0]); gl != nil {
						g.escaped[gl] = true
					}
				case ir.OpCall:
					eff := ir.CalleeEffects(in.Callee)
					if ir.IsIntrinsic(in.Callee) && (nonCapturingIntrinsics[in.Callee] || (!eff.Reads && !eff.Writes)) {
						continue
					}
					for _, op := range in.Operands {
						if gl := globalOf(op); gl != nil {
							g.escaped[gl] = true
						}
					}
				case ir.OpPhi, ir.OpRet:
					for _, op := range in.Operands {
						if gl := globalOf(op); gl != nil {
							g.escaped[gl] = true
						}
					}
				}
			}
		}
	}
	return g
}

// Name implements Analysis.
func (*GlobalsAA) Name() string { return "globals-aa" }

// Escaped reports whether the global's address escapes.
func (g *GlobalsAA) Escaped(gl *ir.Global) bool { return g.escaped[gl] }

// Alias implements Analysis.
func (g *GlobalsAA) Alias(a, b MemLoc, _ *QueryCtx) Result {
	ua := UnderlyingObject(a.Ptr)
	ub := UnderlyingObject(b.Ptr)
	if r := g.oneSided(ua, ub); r.Definitive() {
		return r
	}
	return g.oneSided(ub, ua)
}

// oneSided: if x is a non-escaping global and the other pointer is not
// derived from x (its underlying object is a different value or
// unknown), the two cannot overlap — no loaded or passed-in pointer
// can hold x's address.
func (g *GlobalsAA) oneSided(x, other ir.Value) Result {
	gl, ok := x.(*ir.Global)
	if !ok || g.escaped[gl] {
		return MayAlias
	}
	if other == gl {
		return MayAlias
	}
	// other == nil (unknown provenance) is fine: unknown pointers come
	// from loads/phis/args, none of which can produce gl's address.
	return NoAlias
}
