package aa

import (
	"testing"
)

// TestPrecisionLattice cross-checks every analysis in the full chain
// over a shared set of location pairs: definitive answers must agree.
// NoAlias and MustAlias/PartialAlias are contradictory claims about
// the same two locations, so one sound analysis concluding "disjoint"
// while another concludes "overlapping" means (at least) one of them
// is wrong. In particular no chain analysis may contradict a
// definitive Basic AA answer, since Basic AA only speaks on ground
// truth it can prove from the IR (paper Section II: the chain refines
// MayAlias, it never overrules a definitive response).
func TestPrecisionLattice(t *testing.T) {
	f := newFixture(t)
	g0 := f.b.GEP(f.a1, nil, 0, 0, "g0")
	g4 := f.b.GEP(f.a1, nil, 0, 4, "g4")
	g8 := f.b.GEP(f.a1, nil, 0, 8, "g8")
	gi := f.b.GEP(f.a1, f.idx, 8, 0, "gi")
	go2 := f.b.GEP(f.a2, nil, 0, 0, "go2")
	gp := f.b.GEP(f.p, f.idx, 8, 0, "gp")
	gq := f.b.GEP(f.q, nil, 0, 16, "gq")

	pairs := []struct {
		name string
		a, b MemLoc
	}{
		{"same alloca", f.loc(f.a1, 8), f.loc(f.a1, 8)},
		{"distinct allocas", f.loc(f.a1, 8), f.loc(f.a2, 8)},
		{"const gep same offset", f.loc(g0, 8), f.loc(g0, 8)},
		{"const gep disjoint", f.loc(g0, 8), f.loc(g8, 8)},
		{"const gep overlap", f.loc(g0, 8), f.loc(g4, 8)},
		{"variable vs const gep", f.loc(gi, 8), f.loc(g0, 8)},
		{"geps off distinct allocas", f.loc(g0, 8), f.loc(go2, 8)},
		{"alloca vs plain param", f.loc(f.a1, 8), f.loc(f.p, 8)},
		{"alloca vs restrict param", f.loc(f.a1, 8), f.loc(f.q, 8)},
		{"plain vs restrict param", f.loc(f.p, 8), f.loc(f.q, 8)},
		{"param gep vs restrict gep", f.loc(gp, 8), f.loc(gq, 8)},
		{"param gep vs alloca gep", f.loc(gp, 8), f.loc(g0, 8)},
		{"unknown sizes same base", MemLoc{Ptr: g0, Size: UnknownSize}, MemLoc{Ptr: g8, Size: UnknownSize}},
		{"unknown size vs precise", MemLoc{Ptr: gi, Size: UnknownSize}, f.loc(g4, 8)},
	}

	analyses := FullChain(f.m)
	basic := NewBasicAA()
	q := &QueryCtx{Pass: "lattice-test", Func: f.fn}

	for _, p := range pairs {
		t.Run(p.name, func(t *testing.T) {
			base := basic.Alias(p.a, p.b, q)
			type claim struct {
				name string
				r    Result
			}
			var definitive []claim
			if base.Definitive() {
				definitive = append(definitive, claim{"Basic AA", base})
			}
			for _, an := range analyses {
				r := an.Alias(p.a, p.b, q)
				if !r.Definitive() {
					continue
				}
				definitive = append(definitive, claim{an.Name(), r})
				// Direct cross-check against Basic AA's definitive
				// answer: disjointness and overlap are incompatible.
				if base.Definitive() && contradict(base, r) {
					t.Errorf("%s says %v, contradicting Basic AA's %v", an.Name(), r, base)
				}
			}
			// Pairwise consistency across the whole chain.
			for i := 0; i < len(definitive); i++ {
				for j := i + 1; j < len(definitive); j++ {
					if contradict(definitive[i].r, definitive[j].r) {
						t.Errorf("%s says %v but %s says %v",
							definitive[i].name, definitive[i].r,
							definitive[j].name, definitive[j].r)
					}
				}
			}
			// Symmetry: every analysis must answer queries
			// symmetrically over this fixture set.
			for _, an := range append(analyses, Analysis(basic)) {
				ab := an.Alias(p.a, p.b, q)
				ba := an.Alias(p.b, p.a, q)
				if ab != ba {
					t.Errorf("%s is asymmetric: (a,b)=%v (b,a)=%v", an.Name(), ab, ba)
				}
			}
		})
	}
}

// contradict reports whether two definitive answers make incompatible
// claims: NoAlias asserts disjointness, MustAlias and PartialAlias
// assert overlap.
func contradict(a, b Result) bool {
	overlap := func(r Result) bool { return r == MustAlias || r == PartialAlias }
	return (a == NoAlias && overlap(b)) || (b == NoAlias && overlap(a))
}

// TestLatticeRestrictWindow widens the restrict cross-check: inside
// the restrict param's function, accesses through q must be declared
// no-alias against other objects only by analyses entitled to do so,
// and never must-alias by anyone.
func TestLatticeRestrictWindow(t *testing.T) {
	f := newFixture(t)
	q := &QueryCtx{Pass: "lattice-test", Func: f.fn}
	others := []struct {
		name string
		loc  MemLoc
	}{
		{"alloca", f.loc(f.a1, 8)},
		{"plain param", f.loc(f.p, 8)},
	}
	for _, an := range FullChain(f.m) {
		for _, o := range others {
			r := an.Alias(f.loc(f.q, 8), o.loc, q)
			if r == MustAlias || r == PartialAlias {
				t.Errorf("%s claims restrict param overlaps %s: %v", an.Name(), o.name, r)
			}
		}
	}
}
