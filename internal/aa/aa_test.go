package aa

import (
	"testing"
	"testing/quick"

	"github.com/oraql/go-oraql/internal/ir"
)

// fixture builds a function with two allocas, two pointer params (one
// restrict), GEPs off each, and a builder positioned for more.
type fixture struct {
	m   *ir.Module
	fn  *ir.Func
	b   *ir.Builder
	a1  *ir.Instr // alloca 64
	a2  *ir.Instr // alloca 64
	p   *ir.Arg   // plain pointer param
	q   *ir.Arg   // restrict pointer param
	idx *ir.Arg   // i64 param
}

func newFixture(t testing.TB) *fixture {
	m := ir.NewModule("t")
	p := &ir.Arg{Name: "p", Ty: ir.Ptr}
	q := &ir.Arg{Name: "q", Ty: ir.Ptr, NoAlias: true}
	idx := &ir.Arg{Name: "i", Ty: ir.I64}
	fn, b := ir.NewFunc(m, "f", ir.Void, p, q, idx)
	f := &fixture{m: m, fn: fn, b: b, p: p, q: q, idx: idx}
	f.a1 = b.Alloca(64, "a1")
	f.a2 = b.Alloca(64, "a2")
	return f
}

func (f *fixture) loc(ptr ir.Value, size int64) MemLoc {
	return MemLoc{Ptr: ptr, Size: PreciseSize(size)}
}

func TestBasicAAIdentical(t *testing.T) {
	f := newFixture(t)
	ba := NewBasicAA()
	if r := ba.Alias(f.loc(f.a1, 8), f.loc(f.a1, 8), nil); r != MustAlias {
		t.Errorf("same pointer = %v, want must-alias", r)
	}
}

func TestBasicAADistinctAllocas(t *testing.T) {
	f := newFixture(t)
	ba := NewBasicAA()
	if r := ba.Alias(f.loc(f.a1, 8), f.loc(f.a2, 8), nil); r != NoAlias {
		t.Errorf("distinct allocas = %v, want no-alias", r)
	}
}

func TestBasicAAConstGEPRanges(t *testing.T) {
	f := newFixture(t)
	g0 := f.b.GEP(f.a1, nil, 0, 0, "g0")
	g8 := f.b.GEP(f.a1, nil, 0, 8, "g8")
	g4 := f.b.GEP(f.a1, nil, 0, 4, "g4")
	ba := NewBasicAA()
	if r := ba.Alias(f.loc(g0, 8), f.loc(g8, 8), nil); r != NoAlias {
		t.Errorf("[0,8) vs [8,16) = %v, want no-alias", r)
	}
	if r := ba.Alias(f.loc(g0, 8), f.loc(g4, 8), nil); r != PartialAlias {
		t.Errorf("[0,8) vs [4,12) = %v, want partial-alias", r)
	}
	if r := ba.Alias(f.loc(g0, 8), f.loc(g0, 8), nil); r != MustAlias {
		t.Errorf("same offset = %v, want must-alias", r)
	}
}

func TestBasicAAVariableIndexSameBase(t *testing.T) {
	f := newFixture(t)
	gi := f.b.GEP(f.a1, f.idx, 8, 0, "gi")
	g0 := f.b.GEP(f.a1, nil, 0, 0, "g0")
	ba := NewBasicAA()
	if r := ba.Alias(f.loc(gi, 8), f.loc(g0, 8), nil); r != MayAlias {
		t.Errorf("variable index vs const = %v, want may-alias", r)
	}
}

func TestBasicAAUnknownSizeBlocksDisjointness(t *testing.T) {
	f := newFixture(t)
	g0 := f.b.GEP(f.a1, nil, 0, 0, "g0")
	g8 := f.b.GEP(f.a1, nil, 0, 8, "g8")
	ba := NewBasicAA()
	a := MemLoc{Ptr: g0, Size: UnknownSize}
	if r := ba.Alias(a, f.loc(g8, 8), nil); r != MayAlias {
		t.Errorf("unknown size below = %v, want may-alias", r)
	}
	// The unknown-size location ABOVE a known one cannot reach down.
	if r := ba.Alias(f.loc(g0, 8), MemLoc{Ptr: g8, Size: UnknownSize}, nil); r != NoAlias {
		t.Errorf("known [0,8) vs unknown at 8 = %v, want no-alias", r)
	}
}

func TestBasicAANonCapturedAllocaVsParam(t *testing.T) {
	f := newFixture(t)
	f.b.Ret(nil)
	ba := NewBasicAA()
	if r := ba.Alias(f.loc(f.a1, 8), f.loc(f.p, 8), nil); r != NoAlias {
		t.Errorf("non-captured alloca vs param = %v, want no-alias", r)
	}
}

func TestBasicAACapturedAllocaVsLoadedPtr(t *testing.T) {
	f := newFixture(t)
	// Capture a1 by storing its address through p.
	f.b.Store(f.a1, f.p, "")
	ld := f.b.Load(ir.Ptr, f.q, "")
	f.b.Ret(nil)
	ba := NewBasicAA()
	if r := ba.Alias(f.loc(f.a1, 8), f.loc(ld, 8), nil); r != MayAlias {
		t.Errorf("captured alloca vs loaded ptr = %v, want may-alias", r)
	}
}

func TestBasicAANonCapturedAllocaVsLoadedPtr(t *testing.T) {
	f := newFixture(t)
	ld := f.b.Load(ir.Ptr, f.q, "")
	f.b.Ret(nil)
	ba := NewBasicAA()
	if r := ba.Alias(f.loc(f.a2, 8), f.loc(ld, 8), nil); r != NoAlias {
		t.Errorf("non-captured alloca vs loaded ptr = %v, want no-alias", r)
	}
}

func TestBasicAASymmetryProperty(t *testing.T) {
	f := newFixture(t)
	gi := f.b.GEP(f.a1, f.idx, 8, 0, "gi")
	g0 := f.b.GEP(f.a1, nil, 0, 0, "g0")
	ld := f.b.Load(ir.Ptr, f.p, "")
	f.b.Ret(nil)
	ba := NewBasicAA()
	vals := []ir.Value{f.a1, f.a2, f.p, f.q, gi, g0, ld}
	sizes := []int64{1, 8, 16}
	prop := func(i, j, si, sj uint8) bool {
		a := MemLoc{Ptr: vals[int(i)%len(vals)], Size: PreciseSize(sizes[int(si)%len(sizes)])}
		b := MemLoc{Ptr: vals[int(j)%len(vals)], Size: PreciseSize(sizes[int(sj)%len(sizes)])}
		ra := ba.Alias(a, b, nil)
		rb := ba.Alias(b, a, nil)
		// Must/No/May are symmetric; Partial may degrade to Partial only.
		return ra == rb
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: BasicAA's constant-offset verdicts agree with brute-force
// interval arithmetic.
func TestBasicAAConstOffsetGroundTruthProperty(t *testing.T) {
	f := newFixture(t)
	ba := NewBasicAA()
	prop := func(ro1, ro2 uint8, rs1, rs2 uint8) bool {
		off1 := int64(ro1 % 64)
		off2 := int64(ro2 % 64)
		s1 := int64(rs1%16) + 1
		s2 := int64(rs2%16) + 1
		g1 := f.b.GEP(f.a1, nil, 0, off1, "x")
		g2 := f.b.GEP(f.a1, nil, 0, off2, "y")
		r := ba.Alias(MemLoc{Ptr: g1, Size: PreciseSize(s1)}, MemLoc{Ptr: g2, Size: PreciseSize(s2)}, nil)
		overlap := off1 < off2+s2 && off2 < off1+s1
		switch r {
		case NoAlias:
			return !overlap
		case MustAlias:
			return off1 == off2
		case PartialAlias:
			return overlap && off1 != off2
		}
		return true // may-alias is always sound
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestTypeBasedAA(t *testing.T) {
	f := newFixture(t)
	tb := NewTypeBasedAA(f.m)
	mk := func(tag string) MemLoc {
		return MemLoc{Ptr: f.p, Size: PreciseSize(8), TBAA: tag}
	}
	if r := tb.Alias(mk("long"), mk("double"), nil); r != NoAlias {
		t.Errorf("long vs double = %v", r)
	}
	if r := tb.Alias(mk("long"), mk("long"), nil); r != MayAlias {
		t.Errorf("long vs long = %v", r)
	}
	if r := tb.Alias(mk(""), mk("double"), nil); r != MayAlias {
		t.Errorf("untagged = %v", r)
	}
}

func TestScopedNoAliasAA(t *testing.T) {
	f := newFixture(t)
	sa := NewScopedNoAliasAA()
	a := MemLoc{Ptr: f.p, Size: PreciseSize(8), Scopes: []string{"s1"}}
	b := MemLoc{Ptr: f.q, Size: PreciseSize(8), NoAliasScope: []string{"s1"}}
	if r := sa.Alias(a, b, nil); r != NoAlias {
		t.Errorf("scoped exclusion = %v", r)
	}
	c := MemLoc{Ptr: f.q, Size: PreciseSize(8), NoAliasScope: []string{"s2"}}
	if r := sa.Alias(a, c, nil); r != MayAlias {
		t.Errorf("non-intersecting scopes = %v", r)
	}
}

func TestArgAttrAA(t *testing.T) {
	f := newFixture(t)
	f.b.Ret(nil)
	ar := NewArgAttrAA()
	if r := ar.Alias(f.loc(f.q, 8), f.loc(f.a1, 8), nil); r != NoAlias {
		t.Errorf("restrict arg vs alloca = %v", r)
	}
	if r := ar.Alias(f.loc(f.p, 8), f.loc(f.q, 8), nil); r != NoAlias {
		t.Errorf("restrict arg vs identified... plain param is not identified; got %v", r)
	}
}

func TestArgAttrAAPlainParams(t *testing.T) {
	f := newFixture(t)
	p2 := &ir.Arg{Name: "p2", Ty: ir.Ptr, ID: 3, Func: f.fn}
	f.fn.Params = append(f.fn.Params, p2)
	ar := NewArgAttrAA()
	if r := ar.Alias(f.loc(f.p, 8), f.loc(p2, 8), nil); r != MayAlias {
		t.Errorf("two plain params = %v, want may-alias", r)
	}
}

func TestGlobalsAANonEscaping(t *testing.T) {
	m := ir.NewModule("t")
	g := m.AddGlobal(&ir.Global{Name: "g", Size: 64})
	p := &ir.Arg{Name: "p", Ty: ir.Ptr}
	_, b := ir.NewFunc(m, "f", ir.Void, p)
	ld := b.Load(ir.Ptr, p, "")
	b.Ret(nil)
	ga := NewGlobalsAA(m)
	if ga.Escaped(g) {
		t.Fatal("g must not be escaped")
	}
	if r := ga.Alias(MemLoc{Ptr: g, Size: PreciseSize(8)}, MemLoc{Ptr: ld, Size: PreciseSize(8)}, nil); r != NoAlias {
		t.Errorf("non-escaping global vs loaded ptr = %v", r)
	}
}

func TestGlobalsAAEscaped(t *testing.T) {
	m := ir.NewModule("t")
	g := m.AddGlobal(&ir.Global{Name: "g", Size: 64})
	p := &ir.Arg{Name: "p", Ty: ir.Ptr}
	_, b := ir.NewFunc(m, "f", ir.Void, p)
	b.Store(g, p, "") // address escapes
	ld := b.Load(ir.Ptr, p, "")
	b.Ret(nil)
	ga := NewGlobalsAA(m)
	if !ga.Escaped(g) {
		t.Fatal("g must be escaped after its address is stored")
	}
	if r := ga.Alias(MemLoc{Ptr: g, Size: PreciseSize(8)}, MemLoc{Ptr: ld, Size: PreciseSize(8)}, nil); r != MayAlias {
		t.Errorf("escaped global vs loaded ptr = %v", r)
	}
}

func TestGlobalsAAEscapeThroughGEPAndCall(t *testing.T) {
	m := ir.NewModule("t")
	g := m.AddGlobal(&ir.Global{Name: "g", Size: 64})
	callee, cb := ir.NewFunc(m, "sink", ir.Void, &ir.Arg{Name: "x", Ty: ir.Ptr})
	cb.Ret(nil)
	_ = callee
	_, b := ir.NewFunc(m, "f", ir.Void)
	gp := b.GEP(g, nil, 0, 8, "gp")
	b.Call(ir.Void, "sink", gp)
	b.Ret(nil)
	ga := NewGlobalsAA(m)
	if !ga.Escaped(g) {
		t.Error("global passed (via GEP) to a call must count as escaped")
	}
}

func TestSteensgaardDistinguishesMallocs(t *testing.T) {
	m := ir.NewModule("t")
	_, b := ir.NewFunc(m, "f", ir.Void)
	p1 := b.Call(ir.Ptr, "__malloc", ir.ConstInt(64))
	p2 := b.Call(ir.Ptr, "__malloc", ir.ConstInt(64))
	g1 := b.GEP(p1, nil, 0, 8, "g1")
	b.Ret(nil)
	sa := NewSteensgaardAA(m)
	if r := sa.Alias(MemLoc{Ptr: p1, Size: PreciseSize(8)}, MemLoc{Ptr: p2, Size: PreciseSize(8)}, nil); r != NoAlias {
		t.Errorf("distinct mallocs = %v", r)
	}
	if r := sa.Alias(MemLoc{Ptr: p1, Size: PreciseSize(8)}, MemLoc{Ptr: g1, Size: PreciseSize(8)}, nil); r != MayAlias {
		t.Errorf("malloc vs its own gep = %v, want may-alias", r)
	}
}

func TestSteensgaardUnifiesThroughStore(t *testing.T) {
	m := ir.NewModule("t")
	_, b := ir.NewFunc(m, "f", ir.Void)
	slot1 := b.Alloca(8, "s1")
	slot2 := b.Alloca(8, "s2")
	obj := b.Call(ir.Ptr, "__malloc", ir.ConstInt(64))
	b.Store(obj, slot1, "")
	b.Store(obj, slot2, "")
	l1 := b.Load(ir.Ptr, slot1, "")
	l2 := b.Load(ir.Ptr, slot2, "")
	b.Ret(nil)
	sa := NewSteensgaardAA(m)
	if r := sa.Alias(MemLoc{Ptr: l1, Size: PreciseSize(8)}, MemLoc{Ptr: l2, Size: PreciseSize(8)}, nil); r != MayAlias {
		t.Errorf("loads of the same stored pointer = %v, want may-alias", r)
	}
}

func TestAndersenFlowThroughMemory(t *testing.T) {
	m := ir.NewModule("t")
	_, b := ir.NewFunc(m, "f", ir.Void)
	slot := b.Alloca(8, "slot")
	o1 := b.Call(ir.Ptr, "__malloc", ir.ConstInt(8))
	o2 := b.Call(ir.Ptr, "__malloc", ir.ConstInt(8))
	b.Store(o1, slot, "")
	ld := b.Load(ir.Ptr, slot, "")
	b.Ret(nil)
	an := NewAndersenAA(m)
	if r := an.Alias(MemLoc{Ptr: ld, Size: PreciseSize(8)}, MemLoc{Ptr: o1, Size: PreciseSize(8)}, nil); r != MayAlias {
		t.Errorf("loaded pointer vs its source = %v, want may-alias", r)
	}
	if r := an.Alias(MemLoc{Ptr: ld, Size: PreciseSize(8)}, MemLoc{Ptr: o2, Size: PreciseSize(8)}, nil); r != NoAlias {
		t.Errorf("loaded pointer vs unrelated malloc = %v, want no-alias", r)
	}
}

func TestAndersenInterprocedural(t *testing.T) {
	m := ir.NewModule("t")
	parg := &ir.Arg{Name: "x", Ty: ir.Ptr}
	callee, cb := ir.NewFunc(m, "use", ir.Void, parg)
	cb.Ret(nil)
	_ = callee
	_, b := ir.NewFunc(m, "f", ir.Void)
	o1 := b.Call(ir.Ptr, "__malloc", ir.ConstInt(8))
	o2 := b.Call(ir.Ptr, "__malloc", ir.ConstInt(8))
	b.Call(ir.Void, "use", o1)
	b.Ret(nil)
	an := NewAndersenAA(m)
	if r := an.Alias(MemLoc{Ptr: parg, Size: PreciseSize(8)}, MemLoc{Ptr: o1, Size: PreciseSize(8)}, nil); r != MayAlias {
		t.Errorf("param vs passed malloc = %v, want may-alias", r)
	}
	if r := an.Alias(MemLoc{Ptr: parg, Size: PreciseSize(8)}, MemLoc{Ptr: o2, Size: PreciseSize(8)}, nil); r != NoAlias {
		t.Errorf("param vs unpassed malloc = %v, want no-alias", r)
	}
}

func TestManagerChainFirstDefinitiveWins(t *testing.T) {
	f := newFixture(t)
	f.b.Ret(nil)
	mgr := NewManager(f.m, NewBasicAA(), NewTypeBasedAA(f.m))
	r := mgr.Alias(f.loc(f.a1, 8), f.loc(f.a2, 8), &QueryCtx{Pass: "test", Func: f.fn})
	if r != NoAlias {
		t.Fatalf("chain result = %v", r)
	}
	st := mgr.Stats()
	if st.Queries != 1 || st.NoAlias != 1 {
		t.Errorf("stats: %+v", st)
	}
	if st.NoAliasByAnalysis["basic-aa"] != 1 {
		t.Error("no-alias must be attributed to basic-aa")
	}
	if st.QueriesByPass["test"] != 1 {
		t.Error("query must be attributed to the requesting pass")
	}
}

func TestManagerMayAliasFallback(t *testing.T) {
	f := newFixture(t)
	ld1 := f.b.Load(ir.Ptr, f.p, "")
	ld2 := f.b.Load(ir.Ptr, f.p, "")
	f.b.Ret(nil)
	mgr := NewManager(f.m, DefaultChain(f.m)...)
	if r := mgr.Alias(f.loc(ld1, 8), f.loc(ld2, 8), nil); r != MayAlias {
		t.Errorf("two loaded pointers = %v, want may-alias fallback", r)
	}
	if mgr.Stats().MayAlias != 1 {
		t.Error("may-alias fallback must be counted")
	}
}

func TestAccessLocs(t *testing.T) {
	f := newFixture(t)
	ld := f.b.Load(ir.F64, f.p, "double")
	st := f.b.Store(ld, f.q, "double")
	cp := f.b.MemCpy(f.a1, f.a2, ir.ConstInt(16))
	call := f.b.Call(ir.Void, "__mpi_sendrecv", f.p, f.q, ir.ConstInt(8), ir.ConstInt(0), ir.ConstInt(0))
	f.b.Ret(nil)

	r, w := AccessLocs(ld)
	if len(r) != 1 || len(w) != 0 || r[0].Size.Bytes != 8 || r[0].TBAA != "double" {
		t.Errorf("load locs: %v %v", r, w)
	}
	r, w = AccessLocs(st)
	if len(r) != 0 || len(w) != 1 || w[0].Ptr != ir.Value(f.q) {
		t.Errorf("store locs: %v %v", r, w)
	}
	r, w = AccessLocs(cp)
	if len(r) != 1 || len(w) != 1 || !r[0].Size.Known || r[0].Size.Bytes != 16 {
		t.Errorf("memcpy locs: %v %v", r, w)
	}
	r, w = AccessLocs(call)
	if len(r) != 2 || len(w) != 2 {
		t.Errorf("sendrecv locs: %d reads %d writes", len(r), len(w))
	}
	if r[0].Size.Known {
		t.Error("call arg locations must be beforeOrAfterPointer")
	}
}

func TestLocationSizeString(t *testing.T) {
	if got := PreciseSize(8).String(); got != "LocationSize::precise(8)" {
		t.Errorf("precise = %q", got)
	}
	if got := UnknownSize.String(); got != "LocationSize::beforeOrAfterPointer" {
		t.Errorf("unknown = %q", got)
	}
}

func TestUnderlyingObject(t *testing.T) {
	f := newFixture(t)
	g := f.b.GEP(f.a1, f.idx, 8, 16, "g")
	g2 := f.b.GEP(g, nil, 0, 8, "g2")
	ld := f.b.Load(ir.Ptr, f.p, "")
	f.b.Ret(nil)
	if UnderlyingObject(g2) != ir.Value(f.a1) {
		t.Error("GEP chain must strip to the alloca")
	}
	if UnderlyingObject(ld) != nil {
		t.Error("loads have unknown provenance")
	}
	if UnderlyingObject(f.p) != ir.Value(f.p) {
		t.Error("arguments are their own base")
	}
}

func TestIsNonCapturedCases(t *testing.T) {
	f := newFixture(t)
	// a1 used by load/store/GEP only: non-captured.
	g := f.b.GEP(f.a1, nil, 0, 8, "g")
	f.b.Store(ir.ConstInt(1), g, "")
	f.b.Load(ir.I64, f.a1, "")
	// a2 passed to a fork: captured.
	f.b.Call(ir.Void, "__omp_fork", ir.ConstStr("out"), f.a2, ir.ConstInt(4))
	f.b.Ret(nil)
	if !IsNonCaptured(f.a1) {
		t.Error("a1 must be non-captured")
	}
	if IsNonCaptured(f.a2) {
		t.Error("a2 passed to __omp_fork must be captured")
	}
}

func TestResultStringAndDefinitive(t *testing.T) {
	if NoAlias.String() != "no-alias" || MayAlias.String() != "may-alias" ||
		MustAlias.String() != "must-alias" || PartialAlias.String() != "partial-alias" {
		t.Error("result strings")
	}
	if MayAlias.Definitive() || !NoAlias.Definitive() || !MustAlias.Definitive() {
		t.Error("definitiveness")
	}
}
