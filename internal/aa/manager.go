package aa

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/oraql/go-oraql/internal/ir"
)

// Stats aggregates query outcomes over one compilation, broken down by
// analysis and by requesting pass. The totals feed the Fig. 4 columns
// ("# No-Alias Results", original vs ORAQL).
//
// A Stats value is an immutable snapshot: Manager.Stats returns a deep
// copy of the accumulator it guards internally, so snapshots taken from
// concurrent compilations can be read and Merge'd freely without
// additional locking.
type Stats struct {
	Queries      int64 `json:"queries"`
	NoAlias      int64 `json:"no_alias"`
	MustAlias    int64 `json:"must_alias"`
	PartialAlias int64 `json:"partial_alias"`
	MayAlias     int64 `json:"may_alias"`

	// CacheHits / CacheMisses count lookups in the manager's memoized
	// query cache (the AAQueryInfo analogue). Blocked queries bypass the
	// cache and count in neither.
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	// CacheFlushes counts module-wide invalidations that actually
	// dropped entries; CacheScopedFlushes counts the per-function
	// invalidations the analysis manager issues for the one function a
	// pass changed, which leave every other function's entries intact.
	CacheFlushes       int64 `json:"cache_flushes"`
	CacheScopedFlushes int64 `json:"cache_scoped_flushes"`

	// NoAliasByAnalysis counts definitive no-alias answers per analysis
	// in the chain (including "oraql" when present).
	NoAliasByAnalysis map[string]int64 `json:"no_alias_by_analysis"`

	// QueriesByPass counts queries per requesting pass.
	QueriesByPass map[string]int64 `json:"queries_by_pass"`
}

// NewStats returns an empty statistics accumulator.
func NewStats() *Stats {
	return &Stats{NoAliasByAnalysis: map[string]int64{}, QueriesByPass: map[string]int64{}}
}

// Clone returns a deep copy of the statistics.
func (s *Stats) Clone() *Stats {
	out := NewStats()
	out.Merge(s)
	return out
}

// Merge adds other's counters into s, so per-compilation snapshots from
// concurrent compiles can be aggregated into suite-wide totals.
func (s *Stats) Merge(other *Stats) {
	if other == nil {
		return
	}
	s.Queries += other.Queries
	s.NoAlias += other.NoAlias
	s.MustAlias += other.MustAlias
	s.PartialAlias += other.PartialAlias
	s.MayAlias += other.MayAlias
	s.CacheHits += other.CacheHits
	s.CacheMisses += other.CacheMisses
	s.CacheFlushes += other.CacheFlushes
	s.CacheScopedFlushes += other.CacheScopedFlushes
	for k, v := range other.NoAliasByAnalysis {
		s.NoAliasByAnalysis[k] += v
	}
	for k, v := range other.QueriesByPass {
		s.QueriesByPass[k] += v
	}
}

// CacheLookups is the total memoized-query-cache traffic (hits plus
// misses); the serving layer exports it beside the hit counter so a
// rate can be derived from two monotonic series.
func (s *Stats) CacheLookups() int64 { return s.CacheHits + s.CacheMisses }

// CacheHitRate returns the fraction of cache lookups served from the
// memoized query cache, in [0, 1].
func (s *Stats) CacheHitRate() float64 {
	total := s.CacheHits + s.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(total)
}

// Analyses returns the analysis names with no-alias counts, sorted.
func (s *Stats) Analyses() []string {
	names := make([]string, 0, len(s.NoAliasByAnalysis))
	for n := range s.NoAliasByAnalysis {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Blocker can suppress the analysis chain for selected queries,
// forcing the pessimistic may-alias fallback. This implements the
// paper's Section VIII future-work design: "effectively block existing
// analyses and provide more pessimistic results in order to determine
// the effect on subsequent passes and performance".
type Blocker interface {
	// Block reports whether the chain should be skipped for this query.
	Block(a, b MemLoc, q *QueryCtx) bool
}

// Uncacheable is implemented by analyses whose answers must not be
// memoized by the manager's query cache. The ORAQL responder is the
// canonical case: its replies consume the response sequence and are
// counted by its own pair cache, so the manager must forward every
// repeated query to it. Analyses that do not implement the interface
// (or return false) are treated as pure functions of the IR and are
// safe to memoize.
type Uncacheable interface {
	UncacheableAlias() bool
}

// sideKey is the comparable identity of one MemLoc for cache keying:
// the pointer's stable VID plus the location description and access
// metadata that the analyses consume.
type sideKey struct {
	vid          int64
	size         LocationSize
	tbaa         string
	scopes       string
	noAliasScope string
}

func sideKeyOf(l MemLoc) sideKey {
	return sideKey{
		vid:          l.Ptr.VID(),
		size:         l.Size,
		tbaa:         l.TBAA,
		scopes:       strings.Join(l.Scopes, "\x1f"),
		noAliasScope: strings.Join(l.NoAliasScope, "\x1f"),
	}
}

// less orders side keys canonically so that symmetric queries share one
// cache entry.
func (k sideKey) less(o sideKey) bool {
	if k.vid != o.vid {
		return k.vid < o.vid
	}
	if k.size != o.size {
		if k.size.Known != o.size.Known {
			return !k.size.Known
		}
		return k.size.Bytes < o.size.Bytes
	}
	if k.tbaa != o.tbaa {
		return k.tbaa < o.tbaa
	}
	if k.scopes != o.scopes {
		return k.scopes < o.scopes
	}
	return k.noAliasScope < o.noAliasScope
}

// queryKey is the symmetric-normalized (MemLoc, MemLoc) cache key:
// alias relations are symmetric, so Alias(a, b) and Alias(b, a) hit the
// same entry.
type queryKey struct{ a, b sideKey }

func queryKeyOf(a, b MemLoc) queryKey {
	ka, kb := sideKeyOf(a), sideKeyOf(b)
	if kb.less(ka) {
		ka, kb = kb, ka
	}
	return queryKey{ka, kb}
}

// cacheEntry is a memoized chain verdict: the first definitive answer
// produced by the cacheable chain prefix and the analysis that gave it,
// or MayAlias with an empty name when the whole prefix was exhausted.
type cacheEntry struct {
	result   Result
	analysis string
}

// Manager is the alias-analysis chain. Queries walk the chain in order
// and stop at the first definitive answer; if every analysis says
// may-alias, the manager returns may-alias — exactly the LLVM
// AAResults aggregation the paper describes in Section III.
//
// The manager memoizes chain verdicts in an AAQueryInfo-style query
// cache keyed on the symmetric-normalized location pair: passes like
// GVN, DSE and LICM issue the same query hundreds of times per
// function, and a hit skips the whole cacheable chain prefix. Analyses
// implementing Uncacheable (the ORAQL responder) are consulted on
// every query regardless, so their counters and sequence consumption
// are unaffected by memoization. The pass manager calls Invalidate
// between pass executions once a pass mutates the module; within one
// pass execution the cache keeps LLVM's batch semantics (stale entries
// can only be conservative, since transformations never make disjoint
// live pointers overlap).
//
// Manager is safe for concurrent queries; note however that the ORAQL
// pass appended during probing keeps its own unsynchronized state, so
// probing compilations use one manager per compilation.
//
// Cache entries are bucketed by the querying function (QueryCtx.Func),
// because alias queries are intra-function: both locations name values
// of that function, or globals whose chain-level facts were computed
// once at manager construction. A pass mutating function f therefore
// cannot stale another function's verdicts, and InvalidateFunc(f)
// drops only f's bucket. Queries without a function context land in a
// shared nil bucket that every scoped flush also drops.
//
// State is sharded by that same bucketing: each function owns a shard
// holding its cache bucket and its statistics, guarded by its own
// mutex. Concurrent queries from different functions — the parallel
// pass manager runs one worker per function — touch disjoint shards
// and never contend; Stats() merges the shard snapshots. All counters
// of one query are booked in a single critical section, so a snapshot
// can never observe a query whose outcome is missing (no torn reads).
type Manager struct {
	Module *ir.Module
	chain  []Analysis

	// Blocker, when non-nil, is consulted before the chain.
	Blocker Blocker

	memoOff atomic.Bool

	// shardMu guards the shards map itself; the shards it holds are
	// never removed, so a looked-up shard stays valid without it.
	shardMu sync.RWMutex
	shards  map[*ir.Func]*shard
}

// shard is the per-function slice of the manager's mutable state: the
// memoized cache bucket and the statistics of queries issued from that
// function. fn == nil (queries without a function context) has a shard
// of its own.
type shard struct {
	mu    sync.Mutex
	stats *Stats
	cache map[queryKey]cacheEntry
}

func newShard() *shard {
	return &shard{stats: NewStats(), cache: map[queryKey]cacheEntry{}}
}

// NewManager returns a manager over m with the given chain, queried in
// order. Shards for m's functions (and the nil bucket) are created
// eagerly so the common query path is a read-lock map hit.
func NewManager(m *ir.Module, chain ...Analysis) *Manager {
	mgr := &Manager{
		Module: m,
		chain:  chain,
		shards: map[*ir.Func]*shard{nil: newShard()},
	}
	if m != nil {
		for _, fn := range m.Funcs {
			mgr.shards[fn] = newShard()
		}
	}
	return mgr
}

// shardFor returns fn's shard, creating it for functions that did not
// exist when the manager was built.
func (mgr *Manager) shardFor(fn *ir.Func) *shard {
	mgr.shardMu.RLock()
	s := mgr.shards[fn]
	mgr.shardMu.RUnlock()
	if s != nil {
		return s
	}
	mgr.shardMu.Lock()
	defer mgr.shardMu.Unlock()
	if s = mgr.shards[fn]; s == nil {
		s = newShard()
		mgr.shards[fn] = s
	}
	return s
}

// allShards snapshots the shard list.
func (mgr *Manager) allShards() []*shard {
	mgr.shardMu.RLock()
	defer mgr.shardMu.RUnlock()
	out := make([]*shard, 0, len(mgr.shards))
	for _, s := range mgr.shards {
		out = append(out, s)
	}
	return out
}

// DefaultChain builds the analyses enabled in the default -O3 pipeline,
// mirroring LLVM's defaults: Basic, ScopedNoAlias, TypeBased, ArgAttr,
// Globals. The CFL analyses exist but are off by default because of
// their scaling behaviour (paper Section I); use FullChain to enable
// them. Append the ORAQL pass after whichever chain is chosen. Both
// are thin wrappers over the registered "default"/"full" chain orders
// (registry.go); ChainByName resolves arbitrary registered names and
// custom comma lists.
func DefaultChain(m *ir.Module) []Analysis {
	return buildChain(m, defaultChainNames)
}

// FullChain is DefaultChain plus the two CFL points-to analyses
// (Andersen, Steensgaard), i.e. all seven analyses the paper lists for
// LLVM 14.
func FullChain(m *ir.Module) []Analysis {
	return buildChain(m, fullChainNames)
}

// Append adds an analysis at the end of the chain (used to install the
// ORAQL pass last, per paper Section IV-A).
func (mgr *Manager) Append(a Analysis) { mgr.chain = append(mgr.chain, a) }

// Chain returns the analyses in query order.
func (mgr *Manager) Chain() []Analysis { return mgr.chain }

// Stats returns a snapshot of the accumulated query statistics, merged
// over all shards. Each shard is snapshotted under its own lock, and
// every shard books all counters of a query atomically, so the merged
// snapshot always satisfies the per-query invariants (every counted
// query has a counted outcome, every cacheable query a counted
// hit-or-miss) even while queries are in flight.
func (mgr *Manager) Stats() *Stats {
	out := NewStats()
	for _, s := range mgr.allShards() {
		s.mu.Lock()
		out.Merge(s.stats)
		s.mu.Unlock()
	}
	return out
}

// SetQueryCache enables or disables the memoized query cache (enabled
// by default); disabling flushes it. Used by the cache-ablation
// benchmarks.
func (mgr *Manager) SetQueryCache(enabled bool) {
	mgr.memoOff.Store(!enabled)
	if !enabled {
		for _, s := range mgr.allShards() {
			s.mu.Lock()
			s.cache = map[queryKey]cacheEntry{}
			s.mu.Unlock()
		}
	}
}

// Invalidate flushes the entire memoized query cache across all
// functions — the module-wide AAQueryInfo drop. The pass pipeline now
// prefers the scoped InvalidateFunc; the full flush remains for
// callers without a function context.
func (mgr *Manager) Invalidate() {
	dropped := 0
	shards := mgr.allShards()
	for _, s := range shards {
		s.mu.Lock()
		if len(s.cache) > 0 {
			dropped += len(s.cache)
			s.cache = map[queryKey]cacheEntry{}
		}
		s.mu.Unlock()
	}
	if dropped > 0 {
		nilShard := mgr.shardFor(nil)
		nilShard.mu.Lock()
		nilShard.stats.CacheFlushes++
		nilShard.mu.Unlock()
	}
}

// InvalidateFunc drops the memoized verdicts of one function — the
// analysis manager calls this for exactly the function a pass changed,
// leaving every other function's entries hot. The shared nil bucket
// (queries without a function context) is dropped too, since those
// cannot be attributed. The flush counter reflects only the function's
// own bucket, which keeps it deterministic when scoped flushes of
// different functions run concurrently.
func (mgr *Manager) InvalidateFunc(fn *ir.Func) {
	s := mgr.shardFor(fn)
	s.mu.Lock()
	if len(s.cache) > 0 {
		s.cache = map[queryKey]cacheEntry{}
		s.stats.CacheScopedFlushes++
	}
	s.mu.Unlock()
	if fn != nil {
		nilShard := mgr.shardFor(nil)
		nilShard.mu.Lock()
		if len(nilShard.cache) > 0 {
			nilShard.cache = map[queryKey]cacheEntry{}
		}
		nilShard.mu.Unlock()
	}
}

// cachePrefixLen returns the length of the chain prefix whose answers
// may be memoized: everything before the first Uncacheable analysis.
func (mgr *Manager) cachePrefixLen() int {
	for i, an := range mgr.chain {
		if u, ok := an.(Uncacheable); ok && u.UncacheableAlias() {
			return i
		}
	}
	return len(mgr.chain)
}

// OrderDependent reports whether query answers can depend on the
// cross-function order in which queries are issued: true when a
// Blocker is installed or an Uncacheable analysis (the ORAQL
// responder, whose replies consume a response sequence in query order)
// sits in the chain. The pass manager falls back to sequential
// function scheduling for order-dependent managers, since reordering
// their query stream would change compilation results.
func (mgr *Manager) OrderDependent() bool {
	if mgr.Blocker != nil {
		return true
	}
	return mgr.cachePrefixLen() < len(mgr.chain)
}

// cacheTraffic tags how a query interacted with the memoized cache.
type cacheTraffic int

const (
	trafficNone cacheTraffic = iota // blocked or memoization off
	trafficHit
	trafficMiss
)

// book records every counter of one query in a single critical section
// of the function's shard: attribution, cache traffic, and outcome.
// Booking atomically is what makes Stats() snapshots tear-free.
func (s *shard) book(q *QueryCtx, r Result, analysis string, traffic cacheTraffic) {
	s.mu.Lock()
	s.bookLocked(q, r, analysis, traffic)
	s.mu.Unlock()
}

func (s *shard) bookLocked(q *QueryCtx, r Result, analysis string, traffic cacheTraffic) {
	st := s.stats
	st.Queries++
	if q != nil && q.Pass != "" {
		st.QueriesByPass[q.Pass]++
	}
	switch traffic {
	case trafficHit:
		st.CacheHits++
	case trafficMiss:
		st.CacheMisses++
	}
	switch r {
	case NoAlias:
		st.NoAlias++
		st.NoAliasByAnalysis[analysis]++
	case MustAlias:
		st.MustAlias++
	case PartialAlias:
		st.PartialAlias++
	default:
		st.MayAlias++
	}
}

// walk consults chain[from:to] in order and returns the first
// definitive answer with the producing analysis, or (MayAlias, "").
func (mgr *Manager) walk(from, to int, a, b MemLoc, q *QueryCtx) (Result, string) {
	for _, an := range mgr.chain[from:to] {
		if r := an.Alias(a, b, q); r.Definitive() {
			return r, an.Name()
		}
	}
	return MayAlias, ""
}

// Alias answers an alias query by walking the chain, serving the
// cacheable prefix from the memoized query cache when possible. All
// statistics of the query are booked in one critical section of the
// issuing function's shard, after the answer is known.
func (mgr *Manager) Alias(a, b MemLoc, q *QueryCtx) Result {
	var fn *ir.Func
	if q != nil {
		fn = q.Func
	}
	s := mgr.shardFor(fn)

	if mgr.Blocker != nil && mgr.Blocker.Block(a, b, q) {
		s.book(q, MayAlias, "", trafficNone)
		return MayAlias
	}
	prefix := mgr.cachePrefixLen()
	if mgr.memoOff.Load() || prefix == 0 {
		r, name := mgr.walk(0, len(mgr.chain), a, b, q)
		s.book(q, r, name, trafficNone)
		return r
	}

	key := queryKeyOf(a, b)
	s.mu.Lock()
	ent, hit := s.cache[key]
	s.mu.Unlock()

	if hit {
		r, name := ent.result, ent.analysis
		if !r.Definitive() {
			// The cacheable prefix is known to be inconclusive: consult
			// only the uncacheable tail (e.g. the ORAQL responder).
			r, name = mgr.walk(prefix, len(mgr.chain), a, b, q)
		}
		s.book(q, r, name, trafficHit)
		return r
	}

	pr, pname := mgr.walk(0, prefix, a, b, q)
	r, name := pr, pname
	if !r.Definitive() {
		r, name = mgr.walk(prefix, len(mgr.chain), a, b, q)
	}
	s.mu.Lock()
	if !mgr.memoOff.Load() {
		s.cache[key] = cacheEntry{result: pr, analysis: pname}
	}
	s.bookLocked(q, r, name, trafficMiss)
	s.mu.Unlock()
	return r
}

// NoAliasLocs reports whether two locations are proven disjoint.
func (mgr *Manager) NoAliasLocs(a, b MemLoc, q *QueryCtx) bool {
	return mgr.Alias(a, b, q) == NoAlias
}

// InstrMayClobberLoc reports whether instruction in may write a
// location. It issues one query per written location of in.
func (mgr *Manager) InstrMayClobberLoc(in *ir.Instr, loc MemLoc, q *QueryCtx) bool {
	if !in.WritesMemory() {
		return false
	}
	_, writes := AccessLocs(in)
	if len(writes) == 0 {
		// Writes memory but through no identifiable pointer (e.g. an
		// unknown call): conservatively clobbers.
		return true
	}
	if in.Op == ir.OpCall && !ir.CalleeEffects(in.Callee).ArgMemOnly {
		// A user call may write through any captured pointer, not only
		// its arguments; still issue the per-argument queries so the
		// query stream matches LLVM's, then stay conservative.
		for _, w := range writes {
			mgr.Alias(loc, w, q)
		}
		return true
	}
	for _, w := range writes {
		if mgr.Alias(loc, w, q) != NoAlias {
			return true
		}
	}
	return false
}

// InstrMayReadLoc reports whether in may read from loc.
func (mgr *Manager) InstrMayReadLoc(in *ir.Instr, loc MemLoc, q *QueryCtx) bool {
	if !in.ReadsMemory() {
		return false
	}
	reads, _ := AccessLocs(in)
	if len(reads) == 0 {
		return true
	}
	if in.Op == ir.OpCall && !ir.CalleeEffects(in.Callee).ArgMemOnly {
		for _, r := range reads {
			mgr.Alias(loc, r, q)
		}
		return true
	}
	for _, r := range reads {
		if mgr.Alias(loc, r, q) != NoAlias {
			return true
		}
	}
	return false
}
