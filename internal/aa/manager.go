package aa

import (
	"sort"

	"github.com/oraql/go-oraql/internal/ir"
)

// Stats aggregates query outcomes over one compilation, broken down by
// analysis and by requesting pass. The totals feed the Fig. 4 columns
// ("# No-Alias Results", original vs ORAQL).
type Stats struct {
	Queries      int64
	NoAlias      int64
	MustAlias    int64
	PartialAlias int64
	MayAlias     int64

	// NoAliasByAnalysis counts definitive no-alias answers per analysis
	// in the chain (including "oraql" when present).
	NoAliasByAnalysis map[string]int64

	// QueriesByPass counts queries per requesting pass.
	QueriesByPass map[string]int64
}

func newStats() *Stats {
	return &Stats{NoAliasByAnalysis: map[string]int64{}, QueriesByPass: map[string]int64{}}
}

// Analyses returns the analysis names with no-alias counts, sorted.
func (s *Stats) Analyses() []string {
	names := make([]string, 0, len(s.NoAliasByAnalysis))
	for n := range s.NoAliasByAnalysis {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Blocker can suppress the analysis chain for selected queries,
// forcing the pessimistic may-alias fallback. This implements the
// paper's Section VIII future-work design: "effectively block existing
// analyses and provide more pessimistic results in order to determine
// the effect on subsequent passes and performance".
type Blocker interface {
	// Block reports whether the chain should be skipped for this query.
	Block(a, b MemLoc, q *QueryCtx) bool
}

// Manager is the alias-analysis chain. Queries walk the chain in order
// and stop at the first definitive answer; if every analysis says
// may-alias, the manager returns may-alias — exactly the LLVM
// AAResults aggregation the paper describes in Section III.
type Manager struct {
	Module *ir.Module
	chain  []Analysis
	stats  *Stats

	// Blocker, when non-nil, is consulted before the chain.
	Blocker Blocker
}

// NewManager returns a manager over m with the given chain, queried in
// order.
func NewManager(m *ir.Module, chain ...Analysis) *Manager {
	return &Manager{Module: m, chain: chain, stats: newStats()}
}

// DefaultChain builds the analyses enabled in the default -O3 pipeline,
// mirroring LLVM's defaults: Basic, ScopedNoAlias, TypeBased, ArgAttr,
// Globals. The CFL analyses exist but are off by default because of
// their scaling behaviour (paper Section I); use FullChain to enable
// them. Append the ORAQL pass after whichever chain is chosen.
func DefaultChain(m *ir.Module) []Analysis {
	return []Analysis{
		NewBasicAA(),
		NewScopedNoAliasAA(),
		NewTypeBasedAA(m),
		NewArgAttrAA(),
		NewGlobalsAA(m),
	}
}

// FullChain is DefaultChain plus the two CFL points-to analyses
// (Andersen, Steensgaard), i.e. all seven analyses the paper lists for
// LLVM 14.
func FullChain(m *ir.Module) []Analysis {
	return append(DefaultChain(m), NewAndersenAA(m), NewSteensgaardAA(m))
}

// Append adds an analysis at the end of the chain (used to install the
// ORAQL pass last, per paper Section IV-A).
func (mgr *Manager) Append(a Analysis) { mgr.chain = append(mgr.chain, a) }

// Chain returns the analyses in query order.
func (mgr *Manager) Chain() []Analysis { return mgr.chain }

// Stats returns the accumulated query statistics.
func (mgr *Manager) Stats() *Stats { return mgr.stats }

// Alias answers an alias query by walking the chain.
func (mgr *Manager) Alias(a, b MemLoc, q *QueryCtx) Result {
	mgr.stats.Queries++
	if q != nil && q.Pass != "" {
		mgr.stats.QueriesByPass[q.Pass]++
	}
	if mgr.Blocker != nil && mgr.Blocker.Block(a, b, q) {
		mgr.stats.MayAlias++
		return MayAlias
	}
	for _, an := range mgr.chain {
		r := an.Alias(a, b, q)
		if !r.Definitive() {
			continue
		}
		switch r {
		case NoAlias:
			mgr.stats.NoAlias++
			mgr.stats.NoAliasByAnalysis[an.Name()]++
		case MustAlias:
			mgr.stats.MustAlias++
		case PartialAlias:
			mgr.stats.PartialAlias++
		}
		return r
	}
	mgr.stats.MayAlias++
	return MayAlias
}

// NoAliasLocs reports whether two locations are proven disjoint.
func (mgr *Manager) NoAliasLocs(a, b MemLoc, q *QueryCtx) bool {
	return mgr.Alias(a, b, q) == NoAlias
}

// InstrMayClobberLoc reports whether instruction in may write a
// location. It issues one query per written location of in.
func (mgr *Manager) InstrMayClobberLoc(in *ir.Instr, loc MemLoc, q *QueryCtx) bool {
	if !in.WritesMemory() {
		return false
	}
	_, writes := AccessLocs(in)
	if len(writes) == 0 {
		// Writes memory but through no identifiable pointer (e.g. an
		// unknown call): conservatively clobbers.
		return true
	}
	if in.Op == ir.OpCall && !ir.CalleeEffects(in.Callee).ArgMemOnly {
		// A user call may write through any captured pointer, not only
		// its arguments; still issue the per-argument queries so the
		// query stream matches LLVM's, then stay conservative.
		for _, w := range writes {
			mgr.Alias(loc, w, q)
		}
		return true
	}
	for _, w := range writes {
		if mgr.Alias(loc, w, q) != NoAlias {
			return true
		}
	}
	return false
}

// InstrMayReadLoc reports whether in may read from loc.
func (mgr *Manager) InstrMayReadLoc(in *ir.Instr, loc MemLoc, q *QueryCtx) bool {
	if !in.ReadsMemory() {
		return false
	}
	reads, _ := AccessLocs(in)
	if len(reads) == 0 {
		return true
	}
	if in.Op == ir.OpCall && !ir.CalleeEffects(in.Callee).ArgMemOnly {
		for _, r := range reads {
			mgr.Alias(loc, r, q)
		}
		return true
	}
	for _, r := range reads {
		if mgr.Alias(loc, r, q) != NoAlias {
			return true
		}
	}
	return false
}
