package aa

import (
	"sort"
	"strings"
	"sync"

	"github.com/oraql/go-oraql/internal/ir"
)

// Stats aggregates query outcomes over one compilation, broken down by
// analysis and by requesting pass. The totals feed the Fig. 4 columns
// ("# No-Alias Results", original vs ORAQL).
//
// A Stats value is an immutable snapshot: Manager.Stats returns a deep
// copy of the accumulator it guards internally, so snapshots taken from
// concurrent compilations can be read and Merge'd freely without
// additional locking.
type Stats struct {
	Queries      int64 `json:"queries"`
	NoAlias      int64 `json:"no_alias"`
	MustAlias    int64 `json:"must_alias"`
	PartialAlias int64 `json:"partial_alias"`
	MayAlias     int64 `json:"may_alias"`

	// CacheHits / CacheMisses count lookups in the manager's memoized
	// query cache (the AAQueryInfo analogue). Blocked queries bypass the
	// cache and count in neither.
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	// CacheFlushes counts module-wide invalidations that actually
	// dropped entries; CacheScopedFlushes counts the per-function
	// invalidations the analysis manager issues for the one function a
	// pass changed, which leave every other function's entries intact.
	CacheFlushes       int64 `json:"cache_flushes"`
	CacheScopedFlushes int64 `json:"cache_scoped_flushes"`

	// NoAliasByAnalysis counts definitive no-alias answers per analysis
	// in the chain (including "oraql" when present).
	NoAliasByAnalysis map[string]int64 `json:"no_alias_by_analysis"`

	// QueriesByPass counts queries per requesting pass.
	QueriesByPass map[string]int64 `json:"queries_by_pass"`
}

// NewStats returns an empty statistics accumulator.
func NewStats() *Stats {
	return &Stats{NoAliasByAnalysis: map[string]int64{}, QueriesByPass: map[string]int64{}}
}

// Clone returns a deep copy of the statistics.
func (s *Stats) Clone() *Stats {
	out := NewStats()
	out.Merge(s)
	return out
}

// Merge adds other's counters into s, so per-compilation snapshots from
// concurrent compiles can be aggregated into suite-wide totals.
func (s *Stats) Merge(other *Stats) {
	if other == nil {
		return
	}
	s.Queries += other.Queries
	s.NoAlias += other.NoAlias
	s.MustAlias += other.MustAlias
	s.PartialAlias += other.PartialAlias
	s.MayAlias += other.MayAlias
	s.CacheHits += other.CacheHits
	s.CacheMisses += other.CacheMisses
	s.CacheFlushes += other.CacheFlushes
	s.CacheScopedFlushes += other.CacheScopedFlushes
	for k, v := range other.NoAliasByAnalysis {
		s.NoAliasByAnalysis[k] += v
	}
	for k, v := range other.QueriesByPass {
		s.QueriesByPass[k] += v
	}
}

// CacheLookups is the total memoized-query-cache traffic (hits plus
// misses); the serving layer exports it beside the hit counter so a
// rate can be derived from two monotonic series.
func (s *Stats) CacheLookups() int64 { return s.CacheHits + s.CacheMisses }

// CacheHitRate returns the fraction of cache lookups served from the
// memoized query cache, in [0, 1].
func (s *Stats) CacheHitRate() float64 {
	total := s.CacheHits + s.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(total)
}

// Analyses returns the analysis names with no-alias counts, sorted.
func (s *Stats) Analyses() []string {
	names := make([]string, 0, len(s.NoAliasByAnalysis))
	for n := range s.NoAliasByAnalysis {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Blocker can suppress the analysis chain for selected queries,
// forcing the pessimistic may-alias fallback. This implements the
// paper's Section VIII future-work design: "effectively block existing
// analyses and provide more pessimistic results in order to determine
// the effect on subsequent passes and performance".
type Blocker interface {
	// Block reports whether the chain should be skipped for this query.
	Block(a, b MemLoc, q *QueryCtx) bool
}

// Uncacheable is implemented by analyses whose answers must not be
// memoized by the manager's query cache. The ORAQL responder is the
// canonical case: its replies consume the response sequence and are
// counted by its own pair cache, so the manager must forward every
// repeated query to it. Analyses that do not implement the interface
// (or return false) are treated as pure functions of the IR and are
// safe to memoize.
type Uncacheable interface {
	UncacheableAlias() bool
}

// sideKey is the comparable identity of one MemLoc for cache keying:
// the pointer's stable VID plus the location description and access
// metadata that the analyses consume.
type sideKey struct {
	vid          int64
	size         LocationSize
	tbaa         string
	scopes       string
	noAliasScope string
}

func sideKeyOf(l MemLoc) sideKey {
	return sideKey{
		vid:          l.Ptr.VID(),
		size:         l.Size,
		tbaa:         l.TBAA,
		scopes:       strings.Join(l.Scopes, "\x1f"),
		noAliasScope: strings.Join(l.NoAliasScope, "\x1f"),
	}
}

// less orders side keys canonically so that symmetric queries share one
// cache entry.
func (k sideKey) less(o sideKey) bool {
	if k.vid != o.vid {
		return k.vid < o.vid
	}
	if k.size != o.size {
		if k.size.Known != o.size.Known {
			return !k.size.Known
		}
		return k.size.Bytes < o.size.Bytes
	}
	if k.tbaa != o.tbaa {
		return k.tbaa < o.tbaa
	}
	if k.scopes != o.scopes {
		return k.scopes < o.scopes
	}
	return k.noAliasScope < o.noAliasScope
}

// queryKey is the symmetric-normalized (MemLoc, MemLoc) cache key:
// alias relations are symmetric, so Alias(a, b) and Alias(b, a) hit the
// same entry.
type queryKey struct{ a, b sideKey }

func queryKeyOf(a, b MemLoc) queryKey {
	ka, kb := sideKeyOf(a), sideKeyOf(b)
	if kb.less(ka) {
		ka, kb = kb, ka
	}
	return queryKey{ka, kb}
}

// cacheEntry is a memoized chain verdict: the first definitive answer
// produced by the cacheable chain prefix and the analysis that gave it,
// or MayAlias with an empty name when the whole prefix was exhausted.
type cacheEntry struct {
	result   Result
	analysis string
}

// Manager is the alias-analysis chain. Queries walk the chain in order
// and stop at the first definitive answer; if every analysis says
// may-alias, the manager returns may-alias — exactly the LLVM
// AAResults aggregation the paper describes in Section III.
//
// The manager memoizes chain verdicts in an AAQueryInfo-style query
// cache keyed on the symmetric-normalized location pair: passes like
// GVN, DSE and LICM issue the same query hundreds of times per
// function, and a hit skips the whole cacheable chain prefix. Analyses
// implementing Uncacheable (the ORAQL responder) are consulted on
// every query regardless, so their counters and sequence consumption
// are unaffected by memoization. The pass manager calls Invalidate
// between pass executions once a pass mutates the module; within one
// pass execution the cache keeps LLVM's batch semantics (stale entries
// can only be conservative, since transformations never make disjoint
// live pointers overlap).
//
// Manager is safe for concurrent queries; note however that the ORAQL
// pass appended during probing keeps its own unsynchronized state, so
// probing compilations use one manager per compilation.
//
// Cache entries are bucketed by the querying function (QueryCtx.Func),
// because alias queries are intra-function: both locations name values
// of that function, or globals whose chain-level facts were computed
// once at manager construction. A pass mutating function f therefore
// cannot stale another function's verdicts, and InvalidateFunc(f)
// drops only f's bucket. Queries without a function context land in a
// shared nil bucket that every scoped flush also drops.
type Manager struct {
	Module *ir.Module
	chain  []Analysis

	// Blocker, when non-nil, is consulted before the chain.
	Blocker Blocker

	mu      sync.Mutex
	stats   *Stats
	cache   map[*ir.Func]map[queryKey]cacheEntry
	memoOff bool
}

// NewManager returns a manager over m with the given chain, queried in
// order.
func NewManager(m *ir.Module, chain ...Analysis) *Manager {
	return &Manager{
		Module: m,
		chain:  chain,
		stats:  NewStats(),
		cache:  map[*ir.Func]map[queryKey]cacheEntry{},
	}
}

// DefaultChain builds the analyses enabled in the default -O3 pipeline,
// mirroring LLVM's defaults: Basic, ScopedNoAlias, TypeBased, ArgAttr,
// Globals. The CFL analyses exist but are off by default because of
// their scaling behaviour (paper Section I); use FullChain to enable
// them. Append the ORAQL pass after whichever chain is chosen.
func DefaultChain(m *ir.Module) []Analysis {
	return []Analysis{
		NewBasicAA(),
		NewScopedNoAliasAA(),
		NewTypeBasedAA(m),
		NewArgAttrAA(),
		NewGlobalsAA(m),
	}
}

// FullChain is DefaultChain plus the two CFL points-to analyses
// (Andersen, Steensgaard), i.e. all seven analyses the paper lists for
// LLVM 14.
func FullChain(m *ir.Module) []Analysis {
	return append(DefaultChain(m), NewAndersenAA(m), NewSteensgaardAA(m))
}

// Append adds an analysis at the end of the chain (used to install the
// ORAQL pass last, per paper Section IV-A).
func (mgr *Manager) Append(a Analysis) { mgr.chain = append(mgr.chain, a) }

// Chain returns the analyses in query order.
func (mgr *Manager) Chain() []Analysis { return mgr.chain }

// Stats returns a snapshot of the accumulated query statistics.
func (mgr *Manager) Stats() *Stats {
	mgr.mu.Lock()
	defer mgr.mu.Unlock()
	return mgr.stats.Clone()
}

// SetQueryCache enables or disables the memoized query cache (enabled
// by default); disabling flushes it. Used by the cache-ablation
// benchmarks.
func (mgr *Manager) SetQueryCache(enabled bool) {
	mgr.mu.Lock()
	mgr.memoOff = !enabled
	if !enabled {
		mgr.cache = map[*ir.Func]map[queryKey]cacheEntry{}
	}
	mgr.mu.Unlock()
}

// Invalidate flushes the entire memoized query cache across all
// functions — the module-wide AAQueryInfo drop. The pass pipeline now
// prefers the scoped InvalidateFunc; the full flush remains for
// callers without a function context.
func (mgr *Manager) Invalidate() {
	mgr.mu.Lock()
	if mgr.cachedEntries() > 0 {
		mgr.cache = map[*ir.Func]map[queryKey]cacheEntry{}
		mgr.stats.CacheFlushes++
	}
	mgr.mu.Unlock()
}

// InvalidateFunc drops the memoized verdicts of one function — the
// analysis manager calls this for exactly the function a pass changed,
// leaving every other function's entries hot. The shared nil bucket
// (queries without a function context) is dropped too, since those
// cannot be attributed.
func (mgr *Manager) InvalidateFunc(fn *ir.Func) {
	mgr.mu.Lock()
	if len(mgr.cache[fn]) > 0 || len(mgr.cache[nil]) > 0 {
		delete(mgr.cache, fn)
		delete(mgr.cache, nil)
		mgr.stats.CacheScopedFlushes++
	}
	mgr.mu.Unlock()
}

// cachedEntries counts entries over all buckets; callers hold mgr.mu.
func (mgr *Manager) cachedEntries() int {
	n := 0
	for _, bucket := range mgr.cache {
		n += len(bucket)
	}
	return n
}

// cachePrefixLen returns the length of the chain prefix whose answers
// may be memoized: everything before the first Uncacheable analysis.
func (mgr *Manager) cachePrefixLen() int {
	for i, an := range mgr.chain {
		if u, ok := an.(Uncacheable); ok && u.UncacheableAlias() {
			return i
		}
	}
	return len(mgr.chain)
}

// countQuery books the per-pass attribution of a new query.
func (mgr *Manager) countQuery(q *QueryCtx) {
	mgr.mu.Lock()
	mgr.stats.Queries++
	if q != nil && q.Pass != "" {
		mgr.stats.QueriesByPass[q.Pass]++
	}
	mgr.mu.Unlock()
}

// countResult books a query outcome, attributing no-alias answers to
// the producing analysis (empty name: chain exhausted or blocked).
func (mgr *Manager) countResult(r Result, analysis string) {
	mgr.mu.Lock()
	switch r {
	case NoAlias:
		mgr.stats.NoAlias++
		mgr.stats.NoAliasByAnalysis[analysis]++
	case MustAlias:
		mgr.stats.MustAlias++
	case PartialAlias:
		mgr.stats.PartialAlias++
	default:
		mgr.stats.MayAlias++
	}
	mgr.mu.Unlock()
}

// walk consults chain[from:to] in order and returns the first
// definitive answer with the producing analysis, or (MayAlias, "").
func (mgr *Manager) walk(from, to int, a, b MemLoc, q *QueryCtx) (Result, string) {
	for _, an := range mgr.chain[from:to] {
		if r := an.Alias(a, b, q); r.Definitive() {
			return r, an.Name()
		}
	}
	return MayAlias, ""
}

// Alias answers an alias query by walking the chain, serving the
// cacheable prefix from the memoized query cache when possible.
func (mgr *Manager) Alias(a, b MemLoc, q *QueryCtx) Result {
	mgr.countQuery(q)
	if mgr.Blocker != nil && mgr.Blocker.Block(a, b, q) {
		mgr.countResult(MayAlias, "")
		return MayAlias
	}
	prefix := mgr.cachePrefixLen()

	mgr.mu.Lock()
	memoOff := mgr.memoOff
	mgr.mu.Unlock()
	if memoOff || prefix == 0 {
		r, name := mgr.walk(0, len(mgr.chain), a, b, q)
		mgr.countResult(r, name)
		return r
	}

	var fn *ir.Func
	if q != nil {
		fn = q.Func
	}
	key := queryKeyOf(a, b)
	mgr.mu.Lock()
	ent, hit := mgr.cache[fn][key]
	if hit {
		mgr.stats.CacheHits++
	} else {
		mgr.stats.CacheMisses++
	}
	mgr.mu.Unlock()

	if hit {
		if ent.result.Definitive() {
			mgr.countResult(ent.result, ent.analysis)
			return ent.result
		}
		// The cacheable prefix is known to be inconclusive: consult
		// only the uncacheable tail (e.g. the ORAQL responder).
		r, name := mgr.walk(prefix, len(mgr.chain), a, b, q)
		mgr.countResult(r, name)
		return r
	}

	r, name := mgr.walk(0, prefix, a, b, q)
	mgr.mu.Lock()
	if !mgr.memoOff {
		bucket := mgr.cache[fn]
		if bucket == nil {
			bucket = map[queryKey]cacheEntry{}
			mgr.cache[fn] = bucket
		}
		bucket[key] = cacheEntry{result: r, analysis: name}
	}
	mgr.mu.Unlock()
	if !r.Definitive() {
		r, name = mgr.walk(prefix, len(mgr.chain), a, b, q)
	}
	mgr.countResult(r, name)
	return r
}

// NoAliasLocs reports whether two locations are proven disjoint.
func (mgr *Manager) NoAliasLocs(a, b MemLoc, q *QueryCtx) bool {
	return mgr.Alias(a, b, q) == NoAlias
}

// InstrMayClobberLoc reports whether instruction in may write a
// location. It issues one query per written location of in.
func (mgr *Manager) InstrMayClobberLoc(in *ir.Instr, loc MemLoc, q *QueryCtx) bool {
	if !in.WritesMemory() {
		return false
	}
	_, writes := AccessLocs(in)
	if len(writes) == 0 {
		// Writes memory but through no identifiable pointer (e.g. an
		// unknown call): conservatively clobbers.
		return true
	}
	if in.Op == ir.OpCall && !ir.CalleeEffects(in.Callee).ArgMemOnly {
		// A user call may write through any captured pointer, not only
		// its arguments; still issue the per-argument queries so the
		// query stream matches LLVM's, then stay conservative.
		for _, w := range writes {
			mgr.Alias(loc, w, q)
		}
		return true
	}
	for _, w := range writes {
		if mgr.Alias(loc, w, q) != NoAlias {
			return true
		}
	}
	return false
}

// InstrMayReadLoc reports whether in may read from loc.
func (mgr *Manager) InstrMayReadLoc(in *ir.Instr, loc MemLoc, q *QueryCtx) bool {
	if !in.ReadsMemory() {
		return false
	}
	reads, _ := AccessLocs(in)
	if len(reads) == 0 {
		return true
	}
	if in.Op == ir.OpCall && !ir.CalleeEffects(in.Callee).ArgMemOnly {
		for _, r := range reads {
			mgr.Alias(loc, r, q)
		}
		return true
	}
	for _, r := range reads {
		if mgr.Alias(loc, r, q) != NoAlias {
			return true
		}
	}
	return false
}
