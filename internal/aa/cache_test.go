package aa

// Tests for the manager's memoized alias-query cache (the AAQueryInfo
// analogue): hit/miss accounting, symmetric key normalization,
// invalidation, and the Uncacheable opt-out used by the ORAQL pass.

import (
	"fmt"
	"sync"
	"testing"

	"github.com/oraql/go-oraql/internal/ir"
)

// countingAA is a memoizable fake analysis that records how often it is
// consulted and always answers the configured result.
type countingAA struct {
	name    string
	answer  Result
	queries int
}

func (c *countingAA) Name() string { return c.name }
func (c *countingAA) Alias(a, b MemLoc, q *QueryCtx) Result {
	c.queries++
	return c.answer
}

// uncacheableAA is a countingAA that opts out of memoization, like the
// ORAQL responder.
type uncacheableAA struct{ countingAA }

func (*uncacheableAA) UncacheableAlias() bool { return true }

func TestQueryCacheHitMissCounting(t *testing.T) {
	f := newFixture(t)
	mgr := NewManager(f.m, NewBasicAA())
	l1, l2 := f.loc(f.a1, 8), f.loc(f.a2, 8)

	if r := mgr.Alias(l1, l2, nil); r != NoAlias {
		t.Fatalf("distinct allocas: got %v, want NoAlias", r)
	}
	for i := 0; i < 3; i++ {
		if r := mgr.Alias(l1, l2, nil); r != NoAlias {
			t.Fatalf("repeat %d: got %v, want NoAlias", i, r)
		}
	}
	s := mgr.Stats()
	if s.CacheMisses != 1 || s.CacheHits != 3 {
		t.Errorf("got %d misses / %d hits, want 1 / 3", s.CacheMisses, s.CacheHits)
	}
	if got := s.CacheHitRate(); got != 0.75 {
		t.Errorf("CacheHitRate = %v, want 0.75", got)
	}
	// Hits must preserve the per-analysis no-alias attribution.
	if got := s.NoAliasByAnalysis["basic-aa"]; got != 4 {
		t.Errorf("basic-aa no-alias attribution = %d, want 4", got)
	}
	if s.NoAlias != 4 || s.Queries != 4 {
		t.Errorf("NoAlias/Queries = %d/%d, want 4/4", s.NoAlias, s.Queries)
	}
}

func TestQueryCacheSymmetricKey(t *testing.T) {
	f := newFixture(t)
	mgr := NewManager(f.m, NewBasicAA())
	l1, l2 := f.loc(f.a1, 8), f.loc(f.a2, 8)

	r1 := mgr.Alias(l1, l2, nil)
	r2 := mgr.Alias(l2, l1, nil)
	if r1 != r2 {
		t.Fatalf("Alias(a,b)=%v != Alias(b,a)=%v", r1, r2)
	}
	s := mgr.Stats()
	if s.CacheMisses != 1 || s.CacheHits != 1 {
		t.Errorf("swapped operands: got %d misses / %d hits, want one shared entry (1 / 1)",
			s.CacheMisses, s.CacheHits)
	}
}

func TestQueryCacheInvalidate(t *testing.T) {
	f := newFixture(t)
	mgr := NewManager(f.m, NewBasicAA())
	l1, l2 := f.loc(f.a1, 8), f.loc(f.a2, 8)

	mgr.Alias(l1, l2, nil)
	mgr.Invalidate()
	mgr.Alias(l1, l2, nil)
	s := mgr.Stats()
	if s.CacheFlushes != 1 {
		t.Errorf("CacheFlushes = %d, want 1", s.CacheFlushes)
	}
	if s.CacheMisses != 2 || s.CacheHits != 0 {
		t.Errorf("after flush: got %d misses / %d hits, want 2 / 0", s.CacheMisses, s.CacheHits)
	}
	// Invalidating an empty cache is not a flush.
	mgr.Invalidate()
	mgr.Invalidate()
	if s := mgr.Stats(); s.CacheFlushes != 2 {
		t.Errorf("CacheFlushes after empty invalidate = %d, want 2", s.CacheFlushes)
	}
}

// TestQueryCacheScopedInvalidate: InvalidateFunc must drop only the
// changed function's bucket, leaving other functions' verdicts hot.
func TestQueryCacheScopedInvalidate(t *testing.T) {
	f := newFixture(t)
	mgr := NewManager(f.m, NewBasicAA())
	l1, l2 := f.loc(f.a1, 8), f.loc(f.a2, 8)

	other, ob := ir.NewFunc(f.m, "other", ir.Void)
	ob.Ret(nil)
	qf := &QueryCtx{Pass: "test", Func: f.fn}
	qo := &QueryCtx{Pass: "test", Func: other}

	mgr.Alias(l1, l2, qf)
	mgr.Alias(l1, l2, qo)
	// Scoped flush of f.fn: its entry re-misses, other's entry hits.
	mgr.InvalidateFunc(f.fn)
	mgr.Alias(l1, l2, qf)
	mgr.Alias(l1, l2, qo)
	s := mgr.Stats()
	if s.CacheMisses != 3 || s.CacheHits != 1 {
		t.Errorf("got %d misses / %d hits, want 3 / 1 (scoped flush)", s.CacheMisses, s.CacheHits)
	}
	if s.CacheScopedFlushes != 1 || s.CacheFlushes != 0 {
		t.Errorf("scoped/full flushes = %d/%d, want 1/0", s.CacheScopedFlushes, s.CacheFlushes)
	}
	// Scoped flush of a function with no entries is not a flush.
	mgr.InvalidateFunc(f.fn)
	mgr.InvalidateFunc(f.fn)
	if s := mgr.Stats(); s.CacheScopedFlushes != 2 {
		t.Errorf("CacheScopedFlushes = %d, want 2 (second empty flush uncounted)", s.CacheScopedFlushes)
	}
	// A full Invalidate drops the remaining buckets.
	mgr.Invalidate()
	mgr.Alias(l1, l2, qo)
	s = mgr.Stats()
	if s.CacheFlushes != 1 {
		t.Errorf("CacheFlushes = %d, want 1", s.CacheFlushes)
	}
	if s.CacheHits != 1 {
		t.Errorf("hits after full flush = %d, want 1 (re-miss)", s.CacheHits)
	}
}

// TestQueryCacheNilBucketFlushedScoped: entries from queries without a
// function context cannot be attributed, so every scoped flush drops
// them too.
func TestQueryCacheNilBucketFlushedScoped(t *testing.T) {
	f := newFixture(t)
	mgr := NewManager(f.m, NewBasicAA())
	l1, l2 := f.loc(f.a1, 8), f.loc(f.a2, 8)

	mgr.Alias(l1, l2, nil)
	mgr.InvalidateFunc(f.fn)
	mgr.Alias(l1, l2, nil)
	if s := mgr.Stats(); s.CacheMisses != 2 || s.CacheHits != 0 {
		t.Errorf("got %d misses / %d hits, want 2 / 0 (nil bucket dropped)", s.CacheMisses, s.CacheHits)
	}
}

func TestQueryCacheUncacheableTail(t *testing.T) {
	f := newFixture(t)
	pre := &countingAA{name: "pre", answer: MayAlias}
	tail := &uncacheableAA{countingAA{name: "oraql-fake", answer: NoAlias}}
	mgr := NewManager(f.m, pre, tail)
	l1, l2 := f.loc(f.p, 8), f.loc(f.q, 8)

	const n = 4
	for i := 0; i < n; i++ {
		if r := mgr.Alias(l1, l2, nil); r != NoAlias {
			t.Fatalf("query %d: got %v, want NoAlias from tail", i, r)
		}
	}
	// The inconclusive prefix is memoized after the first query; the
	// uncacheable tail answers every query itself.
	if pre.queries != 1 {
		t.Errorf("cacheable prefix consulted %d times, want 1", pre.queries)
	}
	if tail.queries != n {
		t.Errorf("uncacheable tail consulted %d times, want %d", tail.queries, n)
	}
	s := mgr.Stats()
	if got := s.NoAliasByAnalysis["oraql-fake"]; got != n {
		t.Errorf("tail no-alias attribution = %d, want %d", got, n)
	}
}

func TestQueryCacheUncacheableFirstDisablesMemo(t *testing.T) {
	f := newFixture(t)
	tail := &uncacheableAA{countingAA{name: "oraql-fake", answer: MayAlias}}
	post := &countingAA{name: "post", answer: NoAlias}
	mgr := NewManager(f.m, tail, post)
	l1, l2 := f.loc(f.p, 8), f.loc(f.q, 8)

	mgr.Alias(l1, l2, nil)
	mgr.Alias(l1, l2, nil)
	// With an uncacheable analysis first there is no cacheable prefix:
	// every analysis runs on every query and the cache stays untouched.
	if tail.queries != 2 || post.queries != 2 {
		t.Errorf("consulted %d/%d times, want 2/2", tail.queries, post.queries)
	}
	s := mgr.Stats()
	if s.CacheHits != 0 || s.CacheMisses != 0 {
		t.Errorf("cache counters %d hits / %d misses, want untouched", s.CacheHits, s.CacheMisses)
	}
}

func TestQueryCacheDisabled(t *testing.T) {
	f := newFixture(t)
	pre := &countingAA{name: "pre", answer: NoAlias}
	mgr := NewManager(f.m, pre)
	mgr.SetQueryCache(false)
	l1, l2 := f.loc(f.a1, 8), f.loc(f.a2, 8)

	mgr.Alias(l1, l2, nil)
	mgr.Alias(l1, l2, nil)
	if pre.queries != 2 {
		t.Errorf("with cache disabled analysis consulted %d times, want 2", pre.queries)
	}
	s := mgr.Stats()
	if s.CacheHits != 0 || s.CacheMisses != 0 {
		t.Errorf("cache counters %d hits / %d misses, want 0 / 0", s.CacheHits, s.CacheMisses)
	}
}

func TestQueryCacheDistinguishesSizeAndMetadata(t *testing.T) {
	f := newFixture(t)
	pre := &countingAA{name: "pre", answer: MayAlias}
	mgr := NewManager(f.m, pre)

	mgr.Alias(f.loc(f.p, 8), f.loc(f.q, 8), nil)
	mgr.Alias(f.loc(f.p, 4), f.loc(f.q, 8), nil) // different size
	mgr.Alias(MemLoc{Ptr: f.p, Size: PreciseSize(8), TBAA: "int"}, f.loc(f.q, 8), nil)
	mgr.Alias(MemLoc{Ptr: f.p, Size: PreciseSize(8), Scopes: []string{"s1"}}, f.loc(f.q, 8), nil)
	s := mgr.Stats()
	if s.CacheMisses != 4 || s.CacheHits != 0 {
		t.Errorf("got %d misses / %d hits, want 4 distinct entries", s.CacheMisses, s.CacheHits)
	}
}

func TestStatsMergeAndClone(t *testing.T) {
	a := NewStats()
	a.Queries, a.NoAlias, a.CacheHits = 3, 2, 1
	a.NoAliasByAnalysis["basic-aa"] = 2
	a.QueriesByPass["GVN"] = 3

	b := NewStats()
	b.Queries, b.MayAlias, b.CacheMisses, b.CacheFlushes = 2, 2, 2, 1
	b.NoAliasByAnalysis["tbaa"] = 1
	b.QueriesByPass["GVN"] = 2

	sum := a.Clone()
	sum.Merge(b)
	if sum.Queries != 5 || sum.NoAlias != 2 || sum.MayAlias != 2 {
		t.Errorf("merged outcome counters wrong: %+v", sum)
	}
	if sum.CacheHits != 1 || sum.CacheMisses != 2 || sum.CacheFlushes != 1 {
		t.Errorf("merged cache counters wrong: %+v", sum)
	}
	if sum.QueriesByPass["GVN"] != 5 || sum.NoAliasByAnalysis["basic-aa"] != 2 || sum.NoAliasByAnalysis["tbaa"] != 1 {
		t.Errorf("merged maps wrong: %+v", sum)
	}
	// Clone must be deep: mutating the clone leaves the original alone.
	if a.QueriesByPass["GVN"] != 3 {
		t.Errorf("Clone aliased the source maps")
	}
}

// TestManagerConcurrentQueries exercises the manager's locking under the
// race detector: concurrent queries plus invalidations.
func TestManagerConcurrentQueries(t *testing.T) {
	f := newFixture(t)
	mgr := NewManager(f.m, NewBasicAA())
	l1, l2 := f.loc(f.a1, 8), f.loc(f.a2, 8)

	done := make(chan struct{})
	for i := 0; i < 4; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 200; j++ {
				if r := mgr.Alias(l1, l2, nil); r != NoAlias {
					t.Errorf("got %v, want NoAlias", r)
					return
				}
				if j%50 == 0 {
					mgr.Invalidate()
				}
			}
		}()
	}
	for i := 0; i < 4; i++ {
		<-done
	}
	s := mgr.Stats()
	if s.Queries != 800 || s.NoAlias != 800 {
		t.Errorf("Queries/NoAlias = %d/%d, want 800/800", s.Queries, s.NoAlias)
	}
	if s.CacheHits+s.CacheMisses != 800 {
		t.Errorf("CacheHits+CacheMisses = %d, want 800", s.CacheHits+s.CacheMisses)
	}
}

// TestStatsSnapshotNotTorn is the torn-read oracle: while workers
// hammer Alias across several function shards, concurrent Stats()
// snapshots must always be internally consistent — every counted query
// has exactly one outcome and at most one cache verdict. Booking all
// counters of one query in a single critical section of its shard is
// what makes this hold; run under -race it also proves Stats() takes
// the shard locks it needs.
func TestStatsSnapshotNotTorn(t *testing.T) {
	m := ir.NewModule("torn")
	const funcs = 4
	type fnLocs struct {
		fn     *ir.Func
		l1, l2 MemLoc
	}
	var fls [funcs]fnLocs
	for i := 0; i < funcs; i++ {
		fn, b := ir.NewFunc(m, fmt.Sprintf("f%d", i), ir.Void)
		a1 := b.Alloca(64, "a1")
		a2 := b.Alloca(64, "a2")
		fls[i] = fnLocs{fn: fn,
			l1: MemLoc{Ptr: a1, Size: PreciseSize(8)},
			l2: MemLoc{Ptr: a2, Size: PreciseSize(8)}}
	}
	mgr := NewManager(m, NewBasicAA())

	stop := make(chan struct{})
	readerDone := make(chan struct{})
	var writers sync.WaitGroup
	for i := 0; i < funcs; i++ {
		writers.Add(1)
		go func(fl fnLocs) {
			defer writers.Done()
			q := &QueryCtx{Pass: "hammer", Func: fl.fn}
			for j := 0; j < 5000; j++ {
				mgr.Alias(fl.l1, fl.l2, q)
				mgr.Alias(fl.l1, fl.l1, q)
				if j%500 == 0 {
					mgr.InvalidateFunc(fl.fn)
				}
			}
		}(fls[i])
	}
	go func() {
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := mgr.Stats()
			if got := s.NoAlias + s.MustAlias + s.PartialAlias + s.MayAlias; got != s.Queries {
				t.Errorf("torn snapshot: outcomes %d != queries %d", got, s.Queries)
				return
			}
			if s.CacheHits+s.CacheMisses > s.Queries {
				t.Errorf("torn snapshot: cache verdicts %d > queries %d",
					s.CacheHits+s.CacheMisses, s.Queries)
				return
			}
			var byAnalysis int64
			for _, n := range s.NoAliasByAnalysis {
				byAnalysis += n
			}
			if byAnalysis != s.NoAlias {
				t.Errorf("torn snapshot: per-analysis no-alias %d != total %d", byAnalysis, s.NoAlias)
				return
			}
			if s.QueriesByPass["hammer"] != s.Queries {
				t.Errorf("torn snapshot: per-pass queries %d != total %d",
					s.QueriesByPass["hammer"], s.Queries)
				return
			}
		}
	}()
	writers.Wait()
	close(stop)
	<-readerDone

	s := mgr.Stats()
	const want = funcs * 5000 * 2
	if s.Queries != want {
		t.Fatalf("Queries = %d, want %d", s.Queries, want)
	}
	if got := s.NoAlias + s.MustAlias + s.PartialAlias + s.MayAlias; got != want {
		t.Fatalf("final outcomes = %d, want %d", got, want)
	}
}
