// Package aa implements the alias-analysis infrastructure: memory
// locations, the four-valued alias lattice, the analysis manager chain
// (first definitive answer wins, exactly like LLVM's AAResults), and
// seven conservative analyses — Basic, TypeBased, ScopedNoAlias,
// Globals, Steensgaard (CFLSteens), Andersen (CFLAnders), and ArgAttr
// (the stand-in for ObjCARCAA, which has no analogue outside
// Objective-C).
//
// The ORAQL pass (package oraql) implements the same Analysis interface
// and is appended to the end of the chain, so it only sees queries no
// conservative analysis could answer.
package aa

import (
	"fmt"

	"github.com/oraql/go-oraql/internal/ir"
)

// Result is the answer to an alias query.
type Result int

// Alias lattice values.
const (
	// MayAlias is the pessimistic default: the relationship is unknown.
	MayAlias Result = iota
	// NoAlias guarantees the two locations do not overlap.
	NoAlias
	// PartialAlias guarantees overlap but not at the same start address.
	PartialAlias
	// MustAlias guarantees both locations start at the same address.
	MustAlias
)

// String returns the canonical spelling of the result.
func (r Result) String() string {
	switch r {
	case NoAlias:
		return "no-alias"
	case PartialAlias:
		return "partial-alias"
	case MustAlias:
		return "must-alias"
	}
	return "may-alias"
}

// Definitive reports whether the result resolves the query (the chain
// stops at the first definitive answer).
func (r Result) Definitive() bool { return r != MayAlias }

// LocationSize describes how many bytes an access may touch, mirroring
// LLVM's LocationSize: either a precise byte count or unknown
// ("beforeOrAfterPointer").
type LocationSize struct {
	Known bool
	Bytes int64
}

// PreciseSize returns a known size.
func PreciseSize(n int64) LocationSize { return LocationSize{Known: true, Bytes: n} }

// UnknownSize is the beforeOrAfterPointer size.
var UnknownSize = LocationSize{}

// String renders the size the way the paper's Fig. 3 does.
func (s LocationSize) String() string {
	if s.Known {
		return fmt.Sprintf("LocationSize::precise(%d)", s.Bytes)
	}
	return "LocationSize::beforeOrAfterPointer"
}

// MemLoc is one side of an alias query: a pointer, the byte range
// accessed through it, and the access metadata of the instruction the
// query originates from.
type MemLoc struct {
	Ptr  ir.Value
	Size LocationSize

	// Access metadata (from the originating load/store), consumed by
	// TypeBasedAA and ScopedNoAliasAA.
	TBAA         string
	Scopes       []string
	NoAliasScope []string

	// Instr is the access the location describes, if any; used for
	// diagnostics (ORAQL dump output, source locations).
	Instr *ir.Instr
}

// LocOfLoad builds the memory location read by a load.
func LocOfLoad(in *ir.Instr) MemLoc {
	return MemLoc{
		Ptr: in.Operands[0], Size: PreciseSize(in.Ty.Size()),
		TBAA: in.TBAA, Scopes: in.Scopes, NoAliasScope: in.NoAliasScope, Instr: in,
	}
}

// LocOfStore builds the memory location written by a store.
func LocOfStore(in *ir.Instr) MemLoc {
	return MemLoc{
		Ptr: in.Operands[1], Size: PreciseSize(in.Operands[0].Type().Size()),
		TBAA: in.TBAA, Scopes: in.Scopes, NoAliasScope: in.NoAliasScope, Instr: in,
	}
}

// LocBefore returns an unknown-extent location around ptr, used for
// pointer arguments of calls ("beforeOrAfterPointer").
func LocBefore(ptr ir.Value, in *ir.Instr) MemLoc {
	return MemLoc{Ptr: ptr, Size: UnknownSize, Instr: in}
}

// AccessLocs returns the memory locations an instruction may access:
// (read, write); either may be a nil slice.
func AccessLocs(in *ir.Instr) (reads, writes []MemLoc) {
	switch in.Op {
	case ir.OpLoad:
		return []MemLoc{LocOfLoad(in)}, nil
	case ir.OpStore:
		return nil, []MemLoc{LocOfStore(in)}
	case ir.OpMemCpy:
		sz := UnknownSize
		if c, ok := in.Operands[2].(*ir.Const); ok {
			sz = PreciseSize(c.I)
		}
		return []MemLoc{{Ptr: in.Operands[1], Size: sz, Instr: in}},
			[]MemLoc{{Ptr: in.Operands[0], Size: sz, Instr: in}}
	case ir.OpMemSet:
		sz := UnknownSize
		if c, ok := in.Operands[2].(*ir.Const); ok {
			sz = PreciseSize(c.I)
		}
		return nil, []MemLoc{{Ptr: in.Operands[0], Size: sz, Instr: in}}
	case ir.OpCall:
		eff := ir.CalleeEffects(in.Callee)
		if !eff.Reads && !eff.Writes {
			return nil, nil
		}
		for _, op := range in.Operands {
			if op.Type() == ir.Ptr {
				if eff.Reads {
					reads = append(reads, LocBefore(op, in))
				}
				if eff.Writes {
					writes = append(writes, LocBefore(op, in))
				}
			}
		}
		return reads, writes
	}
	return nil, nil
}

// QueryCtx carries compilation context alongside a query: which pass is
// asking (for the paper's per-pass attribution) and which function the
// pointers live in.
type QueryCtx struct {
	Pass string
	Func *ir.Func
}

// Analysis is one alias analysis in the manager chain.
type Analysis interface {
	// Name identifies the analysis in statistics and reports.
	Name() string
	// Alias answers a query, returning MayAlias when unsure.
	Alias(a, b MemLoc, q *QueryCtx) Result
}
