package aa

import "github.com/oraql/go-oraql/internal/ir"

// BasicAA is the stateless workhorse analysis: identical-pointer
// must-alias, distinct identified objects, non-captured locals versus
// externally visible memory, and constant-offset GEP range reasoning.
// It mirrors the decision structure of LLVM's BasicAliasAnalysis.
type BasicAA struct{}

// NewBasicAA returns the analysis.
func NewBasicAA() *BasicAA { return &BasicAA{} }

// Name implements Analysis.
func (*BasicAA) Name() string { return "basic-aa" }

// Alias implements Analysis.
func (ba *BasicAA) Alias(a, b MemLoc, _ *QueryCtx) Result {
	if a.Ptr == b.Ptr {
		return MustAlias
	}

	// Decompose both pointers into (base, constant offset, has variable
	// index) form by walking GEP chains.
	aBase, aOff, aVar := decompose(a.Ptr)
	bBase, bOff, bVar := decompose(b.Ptr)

	if aBase == bBase {
		if !aVar && !bVar {
			return constOffsetAlias(aOff, a.Size, bOff, b.Size)
		}
		return MayAlias
	}

	ua := UnderlyingObject(a.Ptr)
	ub := UnderlyingObject(b.Ptr)

	// Two distinct identified objects never overlap.
	if ua != nil && ub != nil && ua != ub && IsIdentifiedObject(ua) && IsIdentifiedObject(ub) {
		return NoAlias
	}

	// A non-captured local object cannot be reached through an
	// argument, a global, or a loaded pointer.
	if r := ba.localVsEscaping(ua, ub); r.Definitive() {
		return r
	}
	if r := ba.localVsEscaping(ub, ua); r.Definitive() {
		return r
	}
	return MayAlias
}

func (ba *BasicAA) localVsEscaping(local, other ir.Value) Result {
	if local == nil || other == local {
		return MayAlias
	}
	li, ok := local.(*ir.Instr)
	if !ok || !IsLocalObject(local) {
		return MayAlias
	}
	// other==nil means the second pointer's provenance is unknown (it
	// was loaded, or merged through a phi); a non-captured local still
	// cannot be reached that way.
	if other == nil || !IsLocalObject(other) {
		if IsNonCaptured(li) {
			return NoAlias
		}
	}
	return MayAlias
}

// decompose walks a GEP chain: ptr = base + constOff (+ variable parts).
func decompose(p ir.Value) (base ir.Value, off int64, hasVar bool) {
	base = p
	for depth := 0; depth < 64; depth++ {
		in, ok := base.(*ir.Instr)
		if !ok || in.Op != ir.OpGEP {
			return base, off, hasVar
		}
		off += in.Off
		if len(in.Operands) > 1 {
			if c, isConst := in.Operands[1].(*ir.Const); isConst {
				off += c.I * in.Scale
			} else {
				hasVar = true
			}
		}
		base = in.Operands[0]
	}
	return base, off, hasVar
}

// constOffsetAlias resolves two constant-offset ranges off one base.
func constOffsetAlias(aOff int64, aSz LocationSize, bOff int64, bSz LocationSize) Result {
	if aOff == bOff {
		return MustAlias
	}
	lo, loSz, hi := aOff, aSz, bOff
	if bOff < aOff {
		lo, loSz, hi = bOff, bSz, aOff
	}
	if !loSz.Known {
		return MayAlias // unknown extent may reach the other range
	}
	if lo+loSz.Bytes <= hi {
		return NoAlias
	}
	return PartialAlias
}
