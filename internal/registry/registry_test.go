package registry

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestRegisterLookupOrder(t *testing.T) {
	r := New("test-kind", "a test registry")
	r.Register(Entry{Name: "b", Description: "second", Value: 2})
	r.Register(Entry{Name: "a", Description: "first", Value: 1})

	if got := r.Names(); len(got) != 2 || got[0] != "b" || got[1] != "a" {
		t.Fatalf("Names() = %v, want registration order [b a]", got)
	}
	if got := r.SortedNames(); got[0] != "a" || got[1] != "b" {
		t.Fatalf("SortedNames() = %v, want [a b]", got)
	}
	e, ok := r.Lookup("a")
	if !ok || e.Value.(int) != 1 {
		t.Fatalf("Lookup(a) = %+v, %v", e, ok)
	}
	if _, ok := r.Lookup("missing"); ok {
		t.Fatal("Lookup(missing) succeeded")
	}
	if r.Len() != 2 {
		t.Fatalf("Len() = %d", r.Len())
	}
}

func TestDuplicateAndEmptyNamePanic(t *testing.T) {
	r := New("test-dup", "")
	r.Register(Entry{Name: "x"})
	mustPanic(t, func() { r.Register(Entry{Name: "x"}) })
	mustPanic(t, func() { r.Register(Entry{}) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

func TestDescribeAndSchema(t *testing.T) {
	r := New("test-schema", "schema registry")
	r.Register(Entry{
		Name:        "thing",
		Description: "a thing",
		Options: []Option{
			{Name: "n", Type: "integer", Description: "count", Default: 4},
			{Name: "fast", Type: "boolean", Description: "go fast"},
		},
	})
	infos := r.Describe()
	if len(infos) != 1 || infos[0].Name != "thing" || len(infos[0].Options) != 2 {
		t.Fatalf("Describe() = %+v", infos)
	}
	// Describe must be JSON-able for the wire.
	if _, err := json.Marshal(infos); err != nil {
		t.Fatalf("marshal Describe: %v", err)
	}

	var schema map[string]map[string]any
	if err := json.Unmarshal(r.Schema(), &schema); err != nil {
		t.Fatalf("Schema() is not valid JSON: %v", err)
	}
	def, ok := schema["test-schema"]["thing"].(map[string]any)
	if !ok {
		t.Fatalf("schema missing thing definition: %s", r.Schema())
	}
	props := def["properties"].(map[string]any)
	if _, ok := props["n"]; !ok {
		t.Fatalf("schema missing option n: %v", props)
	}
}

func TestGlobalListAndBuiltinRegistries(t *testing.T) {
	all := All()
	if len(all) < 5 {
		t.Fatalf("All() = %d registries, want at least the 5 built-ins", len(all))
	}
	kinds := map[string]bool{}
	for _, r := range all {
		kinds[r.Kind()] = true
	}
	for _, want := range []string{"strategy", "aa-analysis", "aa-chain", "app-config", "grammar"} {
		if !kinds[want] {
			t.Errorf("built-in registry %q not in All(): have %v", want, kinds)
		}
	}
}

func TestBuiltinsPopulatedByImporters(t *testing.T) {
	// This package is a leaf: without importing the registering
	// packages the built-ins are empty. The populated-side assertions
	// live with the registering packages and in the campaign tests;
	// here we only pin that the built-ins exist and render.
	for _, r := range []*Registry{Strategies, AAAnalyses, AAChains, AppConfigs, Grammars} {
		if r.Kind() == "" || !strings.Contains(string(r.Schema()), r.Kind()) {
			t.Errorf("registry %q does not render", r.Kind())
		}
	}
}
