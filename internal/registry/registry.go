// Package registry is the named-extension-point layer of the
// reproduction: probing strategies, alias-analysis constructors and
// chain orders, benchmark (app) configurations, and fuzz-grammar
// profiles all register here by name instead of living behind
// compiled-in enums and switch statements. Consumers — the probing
// driver, the pass pipeline, the differential fuzzer, the campaign
// script engine, the serve API, and every CLI — resolve scenarios by
// name, so a new scenario is a registration (or, through
// internal/campaign, a script file), not a core change.
//
// The package is deliberately a leaf: it imports nothing from the rest
// of the repository, and entries carry their implementation as an
// opaque value the owning package type-asserts back. What the registry
// itself understands is the introspectable surface — name, one-line
// description, and the option documentation rendered by `-list` and
// the JSON schema endpoints.
package registry

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
)

// Option documents one tunable of a registered entry, in enough detail
// to render a JSON-schema property for it.
type Option struct {
	// Name is the option key as scripts and wire requests spell it.
	Name string `json:"name"`
	// Type is the JSON-schema primitive: "string", "number",
	// "integer", "boolean".
	Type string `json:"type"`
	// Description is the one-line help text.
	Description string `json:"description"`
	// Default, when non-nil, is the value used when the option is
	// omitted.
	Default any `json:"default,omitempty"`
}

// Entry is one registered implementation.
type Entry struct {
	// Name is the stable lookup key, unique within its registry.
	Name string
	// Description is the one-line summary shown by -list.
	Description string
	// Options documents the entry's tunables (may be nil).
	Options []Option
	// Value carries the implementation — a factory function, a config
	// struct — typed by the registering package and type-asserted by
	// its consumers. The registry never inspects it.
	Value any
}

// Registry is one named extension point: an ordered, concurrency-safe
// name -> Entry table with introspection.
type Registry struct {
	kind        string
	description string

	// parent, when non-nil, makes this registry an overlay: lookups
	// fall back to the parent, and listings merge parent entries first.
	// Overlays are per-run scratch views (see Overlay) and are not
	// recorded in the global registry list.
	parent *Registry

	mu     sync.RWMutex
	byName map[string]*Entry
	order  []string
}

// global is the creation-ordered list of registries, so generic
// tooling (the shared -list printer, the schema endpoint) can walk
// every extension point without naming them.
var (
	globalMu sync.Mutex
	global   []*Registry
)

// New creates (and globally records) a registry for one kind of
// extension, e.g. "strategy". The description is the section header
// tooling prints above the kind's entries.
func New(kind, description string) *Registry {
	r := &Registry{kind: kind, description: description, byName: map[string]*Entry{}}
	globalMu.Lock()
	global = append(global, r)
	globalMu.Unlock()
	return r
}

// All returns every registry in creation order.
func All() []*Registry {
	globalMu.Lock()
	defer globalMu.Unlock()
	return append([]*Registry(nil), global...)
}

// Overlay returns a per-run child view of the registry: lookups that
// miss the overlay's own entries fall back to the parent, and Add
// registers into the overlay only, leaving the global table — which
// concurrent runs share — untouched. Campaign scripts register their
// script-defined strategies here, so a script's registrations live
// and die with its run and can never collide across runs.
func (r *Registry) Overlay() *Registry {
	return &Registry{kind: r.kind, description: r.description, parent: r, byName: map[string]*Entry{}}
}

// Kind returns the registry's kind label (e.g. "strategy").
func (r *Registry) Kind() string { return r.kind }

// Description returns the registry's one-line summary.
func (r *Registry) Description() string { return r.description }

// Register adds an entry. Registering an empty or duplicate name is a
// programming error (registration happens at package init) and panics.
func (r *Registry) Register(e Entry) {
	if err := r.Add(e); err != nil {
		panic(err.Error())
	}
}

// Add adds an entry, reporting empty or duplicate names as errors
// instead of panicking — the entry point for runtime registrations
// (campaign-script overlays), where a name clash is the script
// author's mistake, not a programming error. Duplicates are checked
// against the parent chain too: an overlay entry may not shadow a
// built-in.
func (r *Registry) Add(e Entry) error {
	if e.Name == "" {
		return fmt.Errorf("registry %s: entry with empty name", r.kind)
	}
	if r.parent != nil {
		if _, dup := r.parent.Lookup(e.Name); dup {
			return fmt.Errorf("registry %s: entry %q already registered", r.kind, e.Name)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[e.Name]; dup {
		return fmt.Errorf("registry %s: duplicate entry %q", r.kind, e.Name)
	}
	ent := e
	r.byName[e.Name] = &ent
	r.order = append(r.order, e.Name)
	return nil
}

// Lookup returns the named entry, falling back to the parent when the
// registry is an overlay.
func (r *Registry) Lookup(name string) (*Entry, bool) {
	r.mu.RLock()
	e, ok := r.byName[name]
	r.mu.RUnlock()
	if !ok && r.parent != nil {
		return r.parent.Lookup(name)
	}
	return e, ok
}

// Names returns the registered names in registration order, parent
// entries first for overlays.
func (r *Registry) Names() []string {
	var out []string
	if r.parent != nil {
		out = r.parent.Names()
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append(out, r.order...)
}

// SortedNames returns the registered names sorted lexicographically.
func (r *Registry) SortedNames() []string {
	names := r.Names()
	sort.Strings(names)
	return names
}

// Entries returns the entries in registration order, parent entries
// first for overlays.
func (r *Registry) Entries() []*Entry {
	var out []*Entry
	if r.parent != nil {
		out = r.parent.Entries()
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	if out == nil {
		out = make([]*Entry, 0, len(r.order))
	}
	for _, n := range r.order {
		out = append(out, r.byName[n])
	}
	return out
}

// Len returns the number of registered entries, including the
// parent's for overlays.
func (r *Registry) Len() int {
	n := 0
	if r.parent != nil {
		n = r.parent.Len()
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return n + len(r.order)
}

// Info is the JSON-able description of one entry (Value omitted).
type Info struct {
	Name        string   `json:"name"`
	Description string   `json:"description"`
	Options     []Option `json:"options,omitempty"`
}

// Describe returns the JSON-able descriptions in registration order.
func (r *Registry) Describe() []Info {
	entries := r.Entries()
	out := make([]Info, len(entries))
	for i, e := range entries {
		out[i] = Info{Name: e.Name, Description: e.Description, Options: e.Options}
	}
	return out
}

// Schema renders the registry as a JSON-schema fragment: one object
// definition per entry, whose properties are the documented options.
func (r *Registry) Schema() json.RawMessage {
	defs := map[string]any{}
	for _, e := range r.Entries() {
		props := map[string]any{}
		for _, o := range e.Options {
			p := map[string]any{"type": o.Type, "description": o.Description}
			if o.Default != nil {
				p["default"] = o.Default
			}
			props[o.Name] = p
		}
		defs[e.Name] = map[string]any{
			"description": e.Description,
			"type":        "object",
			"properties":  props,
		}
	}
	data, err := json.MarshalIndent(map[string]any{r.kind: defs}, "", "  ")
	if err != nil {
		// Everything marshalled here is built from plain maps of JSON
		// primitives; a failure is a bug in this file.
		panic(fmt.Sprintf("registry %s: schema: %v", r.kind, err))
	}
	return data
}

// The repository's extension points, in the order tooling lists them.
var (
	// Strategies holds probing bisection strategies; values are
	// driver.Strategy implementations.
	Strategies = New("strategy", "probing bisection strategies (driver)")
	// AAAnalyses holds individual alias analyses; values are
	// func(*ir.Module) aa.Analysis constructors.
	AAAnalyses = New("aa-analysis", "alias analyses available to chains")
	// AAChains holds named analysis chain orders; values are []string
	// lists of AAAnalyses names.
	AAChains = New("aa-chain", "named alias-analysis chain orders")
	// AppConfigs holds the benchmark configurations; values are
	// *apps.Config.
	AppConfigs = New("app-config", "benchmark configurations (paper Fig. 4)")
	// Grammars holds fuzz-grammar profiles; values are progen.Options
	// presets.
	Grammars = New("grammar", "program-generator grammar profiles (fuzzing)")
)
