// Package mssa implements a MemorySSA-style clobber walker: given a
// memory access, it finds the nearest dominating instruction that may
// write the accessed location, issuing alias queries along the way.
// As in LLVM, the walker is the dominant source of alias queries in
// the pipeline (the paper measures 61% of Quicksilver's optimistic
// queries originating from Memory SSA); GVN, DSE, LICM and loop load
// elimination all lean on it.
package mssa

import (
	"github.com/oraql/go-oraql/internal/aa"
	"github.com/oraql/go-oraql/internal/cfg"
	"github.com/oraql/go-oraql/internal/ir"
)

// PassName is the analysis name attached to the walker's alias queries.
const PassName = "memory-ssa"

// Walker answers clobber queries for one function. It holds no
// per-query state: every walk scans the function's current
// instructions, so a Walker stays valid for exactly as long as its CFG
// info does — which is what lets the analysis manager cache it across
// passes that preserve the CFG.
type Walker struct {
	Fn  *ir.Func
	CFG *cfg.Info
	AA  *aa.Manager
	// Budget caps the number of blocks visited per walk, like LLVM's
	// MemorySSA walk limits; exceeded walks return conservative answers.
	Budget int

	// q is the walker's constant query attribution, allocated once.
	q aa.QueryCtx
}

// New builds a walker over fn. cfgInfo may be shared with the caller.
func New(fn *ir.Func, cfgInfo *cfg.Info, mgr *aa.Manager) *Walker {
	return &Walker{Fn: fn, CFG: cfgInfo, AA: mgr, Budget: 2048,
		q: aa.QueryCtx{Pass: PassName, Func: fn}}
}

func (w *Walker) query() *aa.QueryCtx { return &w.q }

// walkState carries one upward walk.
type walkState struct {
	w       *Walker
	loc     aa.MemLoc
	partial *ir.Block // block scanned only below the query point
	full    map[*ir.Block]bool
	budget  int

	clobbers []*ir.Instr
	entry    bool
	aborted  bool
}

// scan scans instrs [0, from) of b backwards for a clobber of loc.
func (s *walkState) scan(b *ir.Block, from int) *ir.Instr {
	for i := from - 1; i >= 0; i-- {
		in := b.Instrs[i]
		if in.Dead() {
			continue
		}
		if s.w.AA.InstrMayClobberLoc(in, s.loc, s.w.query()) {
			return in
		}
	}
	return nil
}

func (s *walkState) addClobber(c *ir.Instr) {
	for _, x := range s.clobbers {
		if x == c {
			return
		}
	}
	s.clobbers = append(s.clobbers, c)
}

// walkPreds continues the walk above the head of b.
func (s *walkState) walkPreds(b *ir.Block) {
	preds := s.w.CFG.Preds[b]
	if len(preds) == 0 {
		s.entry = true
		return
	}
	for _, p := range preds {
		if s.aborted {
			return
		}
		if p == s.partial {
			// The query block was only partially scanned; a cycle back
			// into it may hide clobbers below the query point. Bail
			// out conservatively (a MemoryPhi in LLVM terms).
			s.aborted = true
			return
		}
		if s.full[p] {
			continue // already fully scanned; contributes nothing new
		}
		if s.budget <= 0 {
			s.aborted = true
			return
		}
		s.budget--
		s.full[p] = true
		if c := s.scan(p, len(p.Instrs)); c != nil {
			s.addClobber(c)
			continue
		}
		s.walkPreds(p)
	}
}

// ClobberingDef walks upwards from `at` (exclusive) and returns the
// unique nearest instruction that may write loc. def == nil with
// unique == true means the location is live-on-entry (no write on any
// path). unique == false means different paths disagree or the walk
// budget was exhausted; callers must then be conservative.
func (w *Walker) ClobberingDef(at *ir.Instr, loc aa.MemLoc) (def *ir.Instr, unique bool) {
	s := &walkState{w: w, loc: loc, partial: at.Parent, full: map[*ir.Block]bool{}, budget: w.Budget}
	if c := s.scan(at.Parent, indexOf(at)); c != nil {
		return c, true
	}
	s.walkPreds(at.Parent)
	switch {
	case s.aborted:
		return nil, false
	case len(s.clobbers) > 1:
		return nil, false
	case len(s.clobbers) == 1 && s.entry:
		return nil, false
	case len(s.clobbers) == 1:
		return s.clobbers[0], true
	default:
		return nil, true // live-on-entry
	}
}

// NoClobberBetween reports whether no instruction strictly between def
// and use may write loc, where def dominates use. All blocks on any
// def→use CFG path are scanned, including wrap-around paths through
// loops containing either endpoint.
func (w *Walker) NoClobberBetween(def, use *ir.Instr, loc aa.MemLoc) bool {
	q := w.query()
	scanRange := func(b *ir.Block, from, to int) bool {
		for i := from; i < to; i++ {
			in := b.Instrs[i]
			if !in.Dead() && w.AA.InstrMayClobberLoc(in, loc, q) {
				return false
			}
		}
		return true
	}
	if def.Parent == use.Parent {
		if !scanRange(def.Parent, indexOf(def)+1, indexOf(use)) {
			return false
		}
		// If the shared block lies on a cycle, the value must also
		// survive the rest of the block and the whole cycle.
		if w.onCycle(def.Parent) {
			if !scanRange(def.Parent, indexOf(use), len(def.Parent.Instrs)) {
				return false
			}
			if !scanRange(def.Parent, 0, indexOf(def)) {
				return false
			}
			for _, b := range w.blocksBetween(def.Parent, def.Parent) {
				if !scanRange(b, 0, len(b.Instrs)) {
					return false
				}
			}
		}
		return true
	}
	if !scanRange(def.Parent, indexOf(def)+1, len(def.Parent.Instrs)) {
		return false
	}
	if !scanRange(use.Parent, 0, indexOf(use)) {
		return false
	}
	for _, b := range w.blocksBetween(def.Parent, use.Parent) {
		if !scanRange(b, 0, len(b.Instrs)) {
			return false
		}
	}
	// Wrap-around through a loop containing def: a path may revisit
	// def.Parent above def.
	if w.onCycle(def.Parent) {
		if !scanRange(def.Parent, 0, indexOf(def)) {
			return false
		}
	}
	// Wrap-around through a loop containing use: a later iteration's
	// use must still see def's value, so the tail of use's block counts.
	if w.onCycle(use.Parent) {
		if !scanRange(use.Parent, indexOf(use), len(use.Parent.Instrs)) {
			return false
		}
	}
	return true
}

// onCycle reports whether b can reach itself through its successors.
func (w *Walker) onCycle(b *ir.Block) bool {
	seen := map[*ir.Block]bool{}
	stack := append([]*ir.Block(nil), b.Succs()...)
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if x == b {
			return true
		}
		if seen[x] {
			continue
		}
		seen[x] = true
		stack = append(stack, x.Succs()...)
	}
	return false
}

// blocksBetween returns the blocks (excluding from and to themselves)
// lying on some CFG path from `from` to `to`.
func (w *Walker) blocksBetween(from, to *ir.Block) []*ir.Block {
	// reaches[b]: b can reach `to`.
	reaches := map[*ir.Block]bool{to: true}
	for changed := true; changed; {
		changed = false
		for _, b := range w.CFG.RPO {
			if reaches[b] {
				continue
			}
			for _, s := range b.Succs() {
				if reaches[s] {
					reaches[b] = true
					changed = true
					break
				}
			}
		}
	}
	var out []*ir.Block
	seen := map[*ir.Block]bool{from: true, to: true}
	stack := append([]*ir.Block(nil), from.Succs()...)
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[b] {
			continue
		}
		seen[b] = true
		if reaches[b] {
			out = append(out, b)
			stack = append(stack, b.Succs()...)
		}
	}
	return out
}

func indexOf(in *ir.Instr) int {
	for i, x := range in.Parent.Instrs {
		if x == in {
			return i
		}
	}
	return -1
}
