package mssa

import (
	"testing"

	"github.com/oraql/go-oraql/internal/aa"
	"github.com/oraql/go-oraql/internal/cfg"
	"github.com/oraql/go-oraql/internal/ir"
)

func mkWalker(fn *ir.Func) *Walker {
	m := fn.Parent
	mgr := aa.NewManager(m, aa.DefaultChain(m)...)
	return New(fn, cfg.New(fn), mgr)
}

func TestClobberingDefStraightLine(t *testing.T) {
	m := ir.NewModule("t")
	_, b := ir.NewFunc(m, "f", ir.Void)
	a1 := b.Alloca(8, "a1")
	a2 := b.Alloca(8, "a2")
	st1 := b.Store(ir.ConstInt(1), a1, "")
	b.Store(ir.ConstInt(2), a2, "") // unrelated
	ld := b.Load(ir.I64, a1, "")
	b.Ret(nil)
	w := mkWalker(b.Func())
	def, unique := w.ClobberingDef(ld, aa.LocOfLoad(ld))
	if !unique || def != st1 {
		t.Fatalf("clobbering def = %v (unique %v), want st1", def, unique)
	}
}

func TestClobberingDefLiveOnEntry(t *testing.T) {
	m := ir.NewModule("t")
	p := &ir.Arg{Name: "p", Ty: ir.Ptr}
	_, b := ir.NewFunc(m, "f", ir.Void, p)
	a := b.Alloca(8, "a")
	b.Store(ir.ConstInt(1), a, "") // cannot clobber *p (non-captured alloca)
	ld := b.Load(ir.I64, p, "")
	b.Ret(nil)
	w := mkWalker(b.Func())
	def, unique := w.ClobberingDef(ld, aa.LocOfLoad(ld))
	if !unique || def != nil {
		t.Fatalf("want live-on-entry, got %v (unique %v)", def, unique)
	}
}

func TestClobberingDefDiamondAgreeing(t *testing.T) {
	m := ir.NewModule("t")
	c := &ir.Arg{Name: "c", Ty: ir.I1}
	_, b := ir.NewFunc(m, "f", ir.Void, c)
	a := b.Alloca(8, "a")
	st := b.Store(ir.ConstInt(1), a, "")
	then := b.NewBlock("then")
	els := b.NewBlock("els")
	join := b.NewBlock("join")
	b.CondBr(c, then, els)
	b.SetBlock(then)
	b.Br(join)
	b.SetBlock(els)
	b.Br(join)
	b.SetBlock(join)
	ld := b.Load(ir.I64, a, "")
	b.Ret(nil)
	w := mkWalker(b.Func())
	def, unique := w.ClobberingDef(ld, aa.LocOfLoad(ld))
	if !unique || def != st {
		t.Fatalf("diamond with single def: got %v (unique %v)", def, unique)
	}
}

func TestClobberingDefDiamondDisagreeing(t *testing.T) {
	m := ir.NewModule("t")
	c := &ir.Arg{Name: "c", Ty: ir.I1}
	_, b := ir.NewFunc(m, "f", ir.Void, c)
	a := b.Alloca(8, "a")
	then := b.NewBlock("then")
	els := b.NewBlock("els")
	join := b.NewBlock("join")
	b.CondBr(c, then, els)
	b.SetBlock(then)
	b.Store(ir.ConstInt(1), a, "")
	b.Br(join)
	b.SetBlock(els)
	b.Store(ir.ConstInt(2), a, "")
	b.Br(join)
	b.SetBlock(join)
	ld := b.Load(ir.I64, a, "")
	b.Ret(nil)
	w := mkWalker(b.Func())
	if _, unique := w.ClobberingDef(ld, aa.LocOfLoad(ld)); unique {
		t.Fatal("two different path clobbers must not be unique")
	}
}

// loadInLoopWithLaterStore: the wrap-around hazard — a store AFTER the
// load in the same loop body clobbers the next iteration's load; the
// walker must not claim a unique def.
func TestClobberingDefLoopWrapAround(t *testing.T) {
	m := ir.NewModule("t")
	n := &ir.Arg{Name: "n", Ty: ir.I64}
	_, b := ir.NewFunc(m, "f", ir.Void, n)
	entry := b.Block()
	a := b.Alloca(8, "a")
	st0 := b.Store(ir.ConstInt(0), a, "")
	_ = st0
	header := b.NewBlock("header")
	body := b.NewBlock("body")
	exit := b.NewBlock("exit")
	b.Br(header)
	b.SetBlock(header)
	iPhi := b.Phi(ir.I64, "i")
	cmp := b.ICmp(ir.PredLT, iPhi, n, "cmp")
	b.CondBr(cmp, body, exit)
	b.SetBlock(body)
	ld := b.Load(ir.I64, a, "")
	sum := b.Bin(ir.OpAdd, ld, ir.ConstInt(1), "sum")
	b.Store(sum, a, "") // clobbers next iteration's load
	i2 := b.Bin(ir.OpAdd, iPhi, ir.ConstInt(1), "i2")
	b.Br(header)
	b.SetBlock(exit)
	b.Ret(nil)
	ir.AddIncoming(iPhi, ir.ConstInt(0), entry)
	ir.AddIncoming(iPhi, i2, body)
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	w := mkWalker(b.Func())
	if _, unique := w.ClobberingDef(ld, aa.LocOfLoad(ld)); unique {
		t.Fatal("loop wrap-around store must prevent a unique def")
	}
}

func TestNoClobberBetweenStraightLine(t *testing.T) {
	m := ir.NewModule("t")
	_, b := ir.NewFunc(m, "f", ir.Void)
	a1 := b.Alloca(8, "a1")
	a2 := b.Alloca(8, "a2")
	st := b.Store(ir.ConstInt(1), a1, "")
	mid := b.Store(ir.ConstInt(2), a2, "")
	ld := b.Load(ir.I64, a1, "")
	b.Ret(nil)
	w := mkWalker(b.Func())
	if !w.NoClobberBetween(st, ld, aa.LocOfLoad(ld)) {
		t.Error("unrelated store must not count as clobber")
	}
	// Now make the middle store hit a1.
	mid.Operands[1] = a1
	if w.NoClobberBetween(st, ld, aa.LocOfLoad(ld)) {
		t.Error("intervening store to the same location must be seen")
	}
}

func TestNoClobberBetweenLoopWrap(t *testing.T) {
	// def in preheader, use in loop body, store after use in the same
	// body: a wrapped path def -> use(iter1) passes the store, so the
	// check must fail.
	m := ir.NewModule("t")
	n := &ir.Arg{Name: "n", Ty: ir.I64}
	_, b := ir.NewFunc(m, "f", ir.Void, n)
	entry := b.Block()
	a := b.Alloca(8, "a")
	def := b.Store(ir.ConstInt(7), a, "")
	header := b.NewBlock("header")
	body := b.NewBlock("body")
	exit := b.NewBlock("exit")
	b.Br(header)
	b.SetBlock(header)
	iPhi := b.Phi(ir.I64, "i")
	cmp := b.ICmp(ir.PredLT, iPhi, n, "cmp")
	b.CondBr(cmp, body, exit)
	b.SetBlock(body)
	use := b.Load(ir.I64, a, "")
	b.Store(ir.ConstInt(9), a, "") // after the use, wraps around
	i2 := b.Bin(ir.OpAdd, iPhi, ir.ConstInt(1), "i2")
	b.Br(header)
	b.SetBlock(exit)
	b.Ret(nil)
	ir.AddIncoming(iPhi, ir.ConstInt(0), entry)
	ir.AddIncoming(iPhi, i2, body)
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	w := mkWalker(b.Func())
	if w.NoClobberBetween(def, use, aa.LocOfLoad(use)) {
		t.Fatal("wrap-around clobber after the use must be detected")
	}
}

func TestWalkerAttributesQueriesToMemorySSA(t *testing.T) {
	m := ir.NewModule("t")
	_, b := ir.NewFunc(m, "f", ir.Void)
	a1 := b.Alloca(8, "a1")
	a2 := b.Alloca(8, "a2")
	b.Store(ir.ConstInt(1), a2, "")
	ld := b.Load(ir.I64, a1, "")
	b.Ret(nil)
	mgr := aa.NewManager(m, aa.DefaultChain(m)...)
	w := New(b.Func(), cfg.New(b.Func()), mgr)
	w.ClobberingDef(ld, aa.LocOfLoad(ld))
	if mgr.Stats().QueriesByPass[PassName] == 0 {
		t.Error("walker queries must be attributed to memory-ssa")
	}
}
