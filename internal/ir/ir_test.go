package ir

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTypeSizes(t *testing.T) {
	cases := []struct {
		ty   *Type
		size int64
	}{
		{I1, 1}, {I64, 8}, {F64, 8}, {Ptr, 8}, {V4F64, 32}, {V4I64, 32}, {Void, 0},
	}
	for _, c := range cases {
		if got := c.ty.Size(); got != c.size {
			t.Errorf("%s.Size() = %d, want %d", c.ty, got, c.size)
		}
	}
}

func TestTypePredicates(t *testing.T) {
	if !F64.IsFloat() || !V4F64.IsFloat() || I64.IsFloat() {
		t.Error("IsFloat misclassifies")
	}
	if !I64.IsInt() || !I1.IsInt() || !V4I64.IsInt() || F64.IsInt() {
		t.Error("IsInt misclassifies")
	}
}

func TestVecTypeInterning(t *testing.T) {
	if VecType(F64, 4) != V4F64 || VecType(I64, 4) != V4I64 {
		t.Error("VecType must return interned instances")
	}
	defer func() {
		if recover() == nil {
			t.Error("VecType(F64, 3) should panic")
		}
	}()
	VecType(F64, 3)
}

func TestTypeString(t *testing.T) {
	if V4F64.String() != "<4 x double>" {
		t.Errorf("V4F64.String() = %q", V4F64.String())
	}
	if Ptr.String() != "ptr" || I64.String() != "i64" {
		t.Error("scalar type names wrong")
	}
}

func TestConstIdentAndVID(t *testing.T) {
	a := ConstInt(7)
	b := ConstInt(7)
	if a.VID() != b.VID() {
		t.Error("equal int constants must share VIDs")
	}
	if a.Ident() != "7" {
		t.Errorf("Ident = %q", a.Ident())
	}
	f := ConstFloat(2.5)
	if f.Ident() != "2.5" {
		t.Errorf("float Ident = %q", f.Ident())
	}
	if ConstBool(true).I != 1 || ConstBool(false).I != 0 {
		t.Error("bool constants")
	}
}

func TestVIDNamespacesDisjoint(t *testing.T) {
	m := NewModule("t")
	g := m.AddGlobal(&Global{Name: "g", Size: 8})
	fn, b := NewFunc(m, "f", Void, &Arg{Name: "p", Ty: Ptr})
	in := b.Alloca(8, "x")
	b.Ret(nil)
	ids := map[int64]string{}
	for name, v := range map[string]Value{
		"const": ConstInt(0), "global": g, "arg": fn.Params[0], "instr": in,
	} {
		if prev, dup := ids[v.VID()]; dup {
			t.Fatalf("VID collision between %s and %s", prev, name)
		}
		ids[v.VID()] = name
	}
}

func TestBuilderProducesVerifiableIR(t *testing.T) {
	m := NewModule("t")
	fn, b := NewFunc(m, "sum", I64, &Arg{Name: "n", Ty: I64})
	entry := b.Block()
	header := b.NewBlock("header")
	body := b.NewBlock("body")
	exit := b.NewBlock("exit")
	b.Br(header)
	b.SetBlock(header)
	iPhi := b.Phi(I64, "i")
	sPhi := b.Phi(I64, "s")
	cmp := b.ICmp(PredLT, iPhi, fn.Params[0], "cmp")
	b.CondBr(cmp, body, exit)
	b.SetBlock(body)
	s2 := b.Bin(OpAdd, sPhi, iPhi, "s2")
	i2 := b.Bin(OpAdd, iPhi, ConstInt(1), "i2")
	b.Br(header)
	b.SetBlock(exit)
	b.Ret(sPhi)
	AddIncoming(iPhi, ConstInt(0), entry)
	AddIncoming(iPhi, i2, body)
	AddIncoming(sPhi, ConstInt(0), entry)
	AddIncoming(sPhi, s2, body)
	if err := Verify(m); err != nil {
		t.Fatalf("verify: %v\n%s", err, m.String())
	}
}

func TestBuilderPanicsAfterTerminator(t *testing.T) {
	m := NewModule("t")
	_, b := NewFunc(m, "f", Void)
	b.Ret(nil)
	defer func() {
		if recover() == nil {
			t.Error("emitting after a terminator must panic")
		}
	}()
	b.Alloca(8, "x")
}

func TestVerifyCatchesMissingTerminator(t *testing.T) {
	m := NewModule("t")
	_, b := NewFunc(m, "f", Void)
	b.Alloca(8, "x")
	if err := Verify(m); err == nil || !strings.Contains(err.Error(), "terminator") {
		t.Errorf("want missing-terminator error, got %v", err)
	}
}

func TestVerifyCatchesUseOfDeadValue(t *testing.T) {
	m := NewModule("t")
	_, b := NewFunc(m, "f", Void)
	a := b.Alloca(8, "x")
	b.Load(I64, a, "")
	b.Ret(nil)
	a.MarkDead()
	if err := Verify(m); err == nil || !strings.Contains(err.Error(), "dead") {
		t.Errorf("want dead-value error, got %v", err)
	}
}

func TestVerifyCatchesDominanceViolation(t *testing.T) {
	m := NewModule("t")
	fn, b := NewFunc(m, "f", Void, &Arg{Name: "c", Ty: I1})
	then := b.NewBlock("then")
	els := b.NewBlock("els")
	join := b.NewBlock("join")
	b.CondBr(fn.Params[0], then, els)
	b.SetBlock(then)
	v := b.Bin(OpAdd, ConstInt(1), ConstInt(2), "v")
	b.Br(join)
	b.SetBlock(els)
	b.Br(join)
	b.SetBlock(join)
	b.Bin(OpAdd, v, ConstInt(1), "use") // v does not dominate join
	b.Ret(nil)
	if err := Verify(m); err == nil || !strings.Contains(err.Error(), "dominate") {
		t.Errorf("want dominance error, got %v", err)
	}
}

func TestVerifyCatchesCallToUndefined(t *testing.T) {
	m := NewModule("t")
	_, b := NewFunc(m, "f", Void)
	b.Call(Void, "missing")
	b.Ret(nil)
	if err := Verify(m); err == nil || !strings.Contains(err.Error(), "undefined function") {
		t.Errorf("want undefined-function error, got %v", err)
	}
}

func TestVerifyAllowsIntrinsics(t *testing.T) {
	m := NewModule("t")
	_, b := NewFunc(m, "f", Void)
	b.Call(F64, "__sqrt", ConstFloat(2))
	b.Ret(nil)
	if err := Verify(m); err != nil {
		t.Errorf("intrinsic call rejected: %v", err)
	}
}

func TestTBAATree(t *testing.T) {
	tr := NewTBAATree()
	tr.Add("SNA", RootTag)
	tr.Add("SNA.dptr", "SNA")
	cases := []struct {
		a, b string
		may  bool
	}{
		{"long", "double", false},
		{"long", "long", true},
		{"", "double", true},
		{RootTag, "double", true},
		{"SNA.dptr", "SNA", true}, // ancestor
		{"SNA.dptr", "long", false},
		{"unknown-a", "unknown-b", false}, // distinct root children
	}
	for _, c := range cases {
		if got := tr.MayAlias(c.a, c.b); got != c.may {
			t.Errorf("MayAlias(%q,%q) = %v, want %v", c.a, c.b, got, c.may)
		}
		if got := tr.MayAlias(c.b, c.a); got != c.may {
			t.Errorf("MayAlias(%q,%q) not symmetric", c.b, c.a)
		}
	}
}

func TestTBAATreeReAddPanics(t *testing.T) {
	tr := NewTBAATree()
	tr.Add("x", RootTag)
	tr.Add("x", RootTag) // same parent: fine
	defer func() {
		if recover() == nil {
			t.Error("re-adding with different parent must panic")
		}
	}()
	tr.Add("x", "long")
}

// Property: TBAA MayAlias is symmetric for arbitrary tag names.
func TestTBAASymmetryProperty(t *testing.T) {
	tr := NewTBAATree()
	tr.Add("a", RootTag)
	tr.Add("b", "a")
	tr.Add("c", "b")
	tags := []string{"", RootTag, "long", "double", "a", "b", "c", "zzz"}
	f := func(i, j uint8) bool {
		x := tags[int(i)%len(tags)]
		y := tags[int(j)%len(tags)]
		return tr.MayAlias(x, y) == tr.MayAlias(y, x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestModuleLookups(t *testing.T) {
	m := NewModule("t")
	g := m.AddGlobal(&Global{Name: "g", Size: 16})
	fn, b := NewFunc(m, "f", Void)
	b.Ret(nil)
	if m.GlobalByName("g") != g || m.GlobalByName("nope") != nil {
		t.Error("GlobalByName")
	}
	if m.FuncByName("f") != fn || m.FuncByName("nope") != nil {
		t.Error("FuncByName")
	}
}

func TestBlockCompactAndInstrCount(t *testing.T) {
	m := NewModule("t")
	fn, b := NewFunc(m, "f", Void)
	x := b.Alloca(8, "x")
	y := b.Alloca(8, "y")
	b.Ret(nil)
	if fn.InstrCount() != 3 {
		t.Fatalf("InstrCount = %d", fn.InstrCount())
	}
	x.MarkDead()
	if fn.InstrCount() != 2 {
		t.Fatalf("InstrCount after kill = %d", fn.InstrCount())
	}
	fn.Compact()
	if len(fn.Entry().Instrs) != 2 || fn.Entry().Instrs[0] != y {
		t.Error("Compact did not erase the dead instruction")
	}
}

func TestReplaceAllUses(t *testing.T) {
	m := NewModule("t")
	fn, b := NewFunc(m, "f", I64)
	a := b.Bin(OpAdd, ConstInt(1), ConstInt(2), "a")
	u := b.Bin(OpMul, a, a, "u")
	b.Ret(u)
	fn.ReplaceAllUses(a, ConstInt(3))
	for _, op := range u.Operands {
		if op != Value(u.Operands[0]) {
			t.Error("operands should both be the replacement")
		}
		if c, ok := op.(*Const); !ok || c.I != 3 {
			t.Errorf("operand not replaced: %v", op)
		}
	}
}

func TestCalleeEffects(t *testing.T) {
	if e := CalleeEffects("__sqrt"); e.Reads || e.Writes {
		t.Error("__sqrt must be readnone")
	}
	if e := CalleeEffects("__mpi_sendrecv"); !e.Reads || !e.Writes || !e.ArgMemOnly {
		t.Error("sendrecv must be argmemonly read+write")
	}
	if e := CalleeEffects("userfn"); !e.Reads || !e.Writes {
		t.Error("unknown callees must be conservative")
	}
	if !IsIntrinsic("__print_i64") || IsIntrinsic("main") {
		t.Error("IsIntrinsic")
	}
}

func TestAllocIDMonotonic(t *testing.T) {
	m := NewModule("t")
	fn, b := NewFunc(m, "f", Void)
	x := b.Alloca(8, "x")
	b.Ret(nil)
	id := fn.AllocID()
	if id <= x.ID {
		t.Errorf("AllocID %d must exceed existing IDs (%d)", id, x.ID)
	}
	if fn.AllocID() <= id {
		t.Error("AllocID must be monotonically increasing")
	}
}

func TestPrinterRoundsKeyForms(t *testing.T) {
	m := NewModule("demo")
	g := m.AddGlobal(&Global{Name: "tab", Size: 32, Const: true})
	fn, b := NewFunc(m, "f", Void, &Arg{Name: "p", Ty: Ptr, NoAlias: true})
	idx := b.GEP(g, fn.Params[0], 8, 16, "idx")
	ld := b.Load(F64, idx, "double")
	b.Store(ld, fn.Params[0], "double")
	b.Ret(nil)
	out := m.String()
	for _, want := range []string{
		"@tab = global [32 bytes] const",
		"define void @f(ptr noalias %p)",
		"gep @tab + %p*8 + 16",
		`!tbaa "double"`,
		"ret void",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("printer output missing %q in:\n%s", want, out)
		}
	}
}
