package ir

import (
	"fmt"
	"strings"
)

// String renders the module in an LLVM-like textual form. The output is
// deterministic, parseable by package irtext (print→parse round-trips),
// and used by tests and the -print-ir flag of oraql-opt.
func (m *Module) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "; module %s target=%s\n", m.Name, m.Target)
	for _, tag := range m.TBAA.Tags() {
		fmt.Fprintf(&sb, "!tbaa.tag %q parent %q\n", tag, m.TBAA.parent[tag])
	}
	for _, g := range m.Globals {
		attr := ""
		if g.Const {
			attr += " const"
		}
		if g.Internal {
			attr += " internal"
		}
		fmt.Fprintf(&sb, "@%s = global [%d bytes]%s", g.Name, g.Size, attr)
		if len(g.InitI64) > 0 {
			sb.WriteString(" init.i64 {")
			for i, v := range g.InitI64 {
				if i > 0 {
					sb.WriteString(", ")
				}
				fmt.Fprintf(&sb, "%d", v)
			}
			sb.WriteString("}")
		}
		if len(g.InitF64) > 0 {
			sb.WriteString(" init.f64 {")
			for i, v := range g.InitF64 {
				if i > 0 {
					sb.WriteString(", ")
				}
				sb.WriteString(FormatF64(v))
			}
			sb.WriteString("}")
		}
		sb.WriteString("\n")
	}
	for _, f := range m.Funcs {
		sb.WriteString(f.String())
	}
	return sb.String()
}

// String renders the function body with uniquified local names, so the
// output parses back unambiguously.
func (f *Func) String() string {
	namer := f.buildNamer()
	var sb strings.Builder
	params := make([]string, len(f.Params))
	for i, p := range f.Params {
		na := ""
		if p.NoAlias {
			na = " noalias"
		}
		params[i] = fmt.Sprintf("%s%s %s", p.Ty, na, namer[p])
	}
	attrs := ""
	if f.Attrs.Kernel {
		attrs += " kernel"
	}
	if f.Attrs.Outlined {
		attrs += " outlined"
	}
	if f.Attrs.ReadOnly {
		attrs += " readonly"
	}
	if f.Attrs.ReadNone {
		attrs += " readnone"
	}
	fmt.Fprintf(&sb, "\ndefine %s @%s(%s)%s {\n", f.RetTy, f.Name, strings.Join(params, ", "), attrs)
	for _, b := range f.Blocks {
		fmt.Fprintf(&sb, "%s:\n", b.Name)
		for _, in := range b.Instrs {
			if in.dead {
				continue
			}
			fmt.Fprintf(&sb, "  %s\n", in.format(namer))
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

// buildNamer assigns a unique printed ident to every param and live
// instruction (colliding names get ".N" suffixes).
func (f *Func) buildNamer() map[Value]string {
	namer := map[Value]string{}
	taken := map[string]int{}
	assign := func(v Value, base string) {
		n, dup := taken[base]
		taken[base] = n + 1
		if dup {
			namer[v] = fmt.Sprintf("%%%s.%d", base, n)
			return
		}
		namer[v] = "%" + base
	}
	for _, p := range f.Params {
		assign(p, p.Name)
	}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.dead || in.Ty == Void {
				continue
			}
			base := in.Name
			if base == "" {
				base = fmt.Sprintf("t%d", in.ID)
			}
			assign(in, base)
		}
	}
	return namer
}

// String renders one instruction without function context (names may
// collide across instructions; use Func.String for parseable output).
func (in *Instr) String() string { return in.format(nil) }

// format renders one instruction, resolving idents through namer when
// provided.
func (in *Instr) format(namer map[Value]string) string {
	ident := func(v Value) string {
		if namer != nil {
			if s, ok := namer[v]; ok {
				return s
			}
		}
		return v.Ident()
	}
	var sb strings.Builder
	if in.Ty != Void {
		fmt.Fprintf(&sb, "%s = ", ident(in))
	}
	switch in.Op {
	case OpAlloca:
		fmt.Fprintf(&sb, "alloca %d", in.Size)
	case OpLoad:
		fmt.Fprintf(&sb, "load %s, %s", in.Ty, ident(in.Operands[0]))
	case OpStore:
		fmt.Fprintf(&sb, "store %s %s, %s", in.Operands[0].Type(), ident(in.Operands[0]), ident(in.Operands[1]))
	case OpGEP:
		if len(in.Operands) > 1 {
			fmt.Fprintf(&sb, "gep %s + %s*%d + %d", ident(in.Operands[0]), ident(in.Operands[1]), in.Scale, in.Off)
		} else {
			fmt.Fprintf(&sb, "gep %s + %d", ident(in.Operands[0]), in.Off)
		}
	case OpMemCpy:
		fmt.Fprintf(&sb, "memcpy %s <- %s, %s", ident(in.Operands[0]), ident(in.Operands[1]), ident(in.Operands[2]))
	case OpMemSet:
		fmt.Fprintf(&sb, "memset %s, %s, %s", ident(in.Operands[0]), ident(in.Operands[1]), ident(in.Operands[2]))
	case OpICmp, OpFCmp:
		fmt.Fprintf(&sb, "%s %s %s, %s", in.Op, in.Pred, ident(in.Operands[0]), ident(in.Operands[1]))
	case OpPhi:
		fmt.Fprintf(&sb, "phi %s ", in.Ty)
		for i, v := range in.Operands {
			if i > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "[%s, %%%s]", ident(v), in.Incoming[i].Name)
		}
	case OpCall:
		args := make([]string, len(in.Operands))
		for i, v := range in.Operands {
			args[i] = ident(v)
		}
		fmt.Fprintf(&sb, "call %s @%s(%s)", in.Ty, in.Callee, strings.Join(args, ", "))
	case OpBr:
		if len(in.Succs) == 2 {
			fmt.Fprintf(&sb, "br %s, %%%s, %%%s", ident(in.Operands[0]), in.Succs[0].Name, in.Succs[1].Name)
		} else {
			fmt.Fprintf(&sb, "br %%%s", in.Succs[0].Name)
		}
	case OpRet:
		if len(in.Operands) > 0 {
			fmt.Fprintf(&sb, "ret %s", ident(in.Operands[0]))
		} else {
			sb.WriteString("ret void")
		}
	default:
		ops := make([]string, len(in.Operands))
		for i, v := range in.Operands {
			ops[i] = ident(v)
		}
		fmt.Fprintf(&sb, "%s %s", in.Op, strings.Join(ops, ", "))
	}
	if in.TBAA != "" {
		fmt.Fprintf(&sb, " !tbaa %q", in.TBAA)
	}
	if len(in.Scopes) > 0 {
		fmt.Fprintf(&sb, " !alias.scope %v", in.Scopes)
	}
	if len(in.NoAliasScope) > 0 {
		fmt.Fprintf(&sb, " !noalias %v", in.NoAliasScope)
	}
	if in.Loc.IsValid() {
		fmt.Fprintf(&sb, " !dbg %s", in.Loc)
	}
	return sb.String()
}
