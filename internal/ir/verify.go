package ir

import (
	"errors"
	"fmt"
)

// Verify checks structural invariants of the module and returns an
// error describing the first violation found. Passes are expected to
// leave modules in a verifiable state; the pipeline verifies after the
// frontend and after the full pass pipeline.
func Verify(m *Module) error {
	seen := map[string]bool{}
	for _, f := range m.Funcs {
		if seen[f.Name] {
			return fmt.Errorf("duplicate function %q", f.Name)
		}
		seen[f.Name] = true
		if err := verifyFunc(m, f); err != nil {
			return fmt.Errorf("func %s: %w", f.Name, err)
		}
	}
	return nil
}

func verifyFunc(m *Module, f *Func) error {
	if len(f.Blocks) == 0 {
		return errors.New("no blocks")
	}
	dom := newDomChecker(f)
	blockSet := map[*Block]bool{}
	for _, b := range f.Blocks {
		blockSet[b] = true
	}
	// Collect values defined in this function.
	defined := map[Value]bool{}
	for _, p := range f.Params {
		defined[p] = true
	}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.dead {
				continue
			}
			defined[in] = true
		}
	}
	for _, b := range f.Blocks {
		term := b.Term()
		if term == nil {
			return fmt.Errorf("block %s: missing terminator", b.Name)
		}
		sawTerm := false
		for _, in := range b.Instrs {
			if in.dead {
				continue
			}
			if sawTerm {
				return fmt.Errorf("block %s: instruction after terminator", b.Name)
			}
			if in.IsTerminator() {
				sawTerm = true
			}
			if in.Parent != b {
				return fmt.Errorf("block %s: instr %s has wrong parent", b.Name, in.Ident())
			}
			for _, s := range in.Succs {
				if !blockSet[s] {
					return fmt.Errorf("block %s: branch to foreign block %s", b.Name, s.Name)
				}
			}
			if in.Op == OpPhi {
				if len(in.Operands) != len(in.Incoming) {
					return fmt.Errorf("phi %s: %d values, %d incoming blocks", in.Ident(), len(in.Operands), len(in.Incoming))
				}
			}
			if in.Op == OpCall && !IsIntrinsic(in.Callee) && m.FuncByName(in.Callee) == nil {
				return fmt.Errorf("call to undefined function %q", in.Callee)
			}
			for _, op := range in.Operands {
				switch v := op.(type) {
				case *Const:
					// always fine
				case *Global:
					if m.GlobalByName(v.Name) != v {
						return fmt.Errorf("instr %s: foreign global %s", in.Ident(), v.Name)
					}
				case *Arg:
					if v.Func != f {
						return fmt.Errorf("instr %s: argument of another function", in.Ident())
					}
				case *Instr:
					if v.dead {
						return fmt.Errorf("instr %s: uses dead value %s", in.Ident(), v.Ident())
					}
					if !defined[v] {
						return fmt.Errorf("instr %s: uses undefined value %s", in.Ident(), v.Ident())
					}
					if !dom.defDominatesUse(v, in) {
						return fmt.Errorf("instr %s in %s: operand %s (in %s) does not dominate the use",
							in.Ident(), b.Name, v.Ident(), v.Parent.Name)
					}
				default:
					return fmt.Errorf("instr %s: unknown operand kind %T", in.Ident(), op)
				}
			}
		}
	}
	return nil
}

// domChecker computes dominators for the verifier (duplicated from
// package cfg to avoid an import cycle; the verifier is deliberately
// self-contained).
type domChecker struct {
	idom     map[*Block]*Block
	rpoIndex map[*Block]int
	reach    map[*Block]bool
}

func newDomChecker(f *Func) *domChecker {
	d := &domChecker{idom: map[*Block]*Block{}, rpoIndex: map[*Block]int{}, reach: map[*Block]bool{}}
	preds := map[*Block][]*Block{}
	var post []*Block
	visited := map[*Block]bool{}
	var dfs func(b *Block)
	dfs = func(b *Block) {
		visited[b] = true
		for _, s := range b.Succs() {
			preds[s] = append(preds[s], b)
			if !visited[s] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	dfs(f.Entry())
	var rpo []*Block
	for i := len(post) - 1; i >= 0; i-- {
		d.rpoIndex[post[i]] = len(rpo)
		rpo = append(rpo, post[i])
		d.reach[post[i]] = true
	}
	entry := f.Entry()
	d.idom[entry] = entry
	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			if b == entry {
				continue
			}
			var ni *Block
			for _, p := range preds[b] {
				if _, ok := d.idom[p]; !ok {
					continue
				}
				if ni == nil {
					ni = p
				} else {
					ni = d.intersect(p, ni)
				}
			}
			if ni != nil && d.idom[b] != ni {
				d.idom[b] = ni
				changed = true
			}
		}
	}
	return d
}

func (d *domChecker) intersect(a, b *Block) *Block {
	for a != b {
		for d.rpoIndex[a] > d.rpoIndex[b] {
			a = d.idom[a]
		}
		for d.rpoIndex[b] > d.rpoIndex[a] {
			b = d.idom[b]
		}
	}
	return a
}

func (d *domChecker) dominates(a, b *Block) bool {
	for {
		if a == b {
			return true
		}
		id, ok := d.idom[b]
		if !ok || id == b {
			return false
		}
		b = id
	}
}

// defDominatesUse checks SSA dominance; uses in phis are checked at the
// incoming edge, and unreachable uses are exempt.
func (d *domChecker) defDominatesUse(def *Instr, use *Instr) bool {
	if !d.reach[use.Parent] || !d.reach[def.Parent] {
		return true // unreachable code is cleaned up later
	}
	if use.Op == OpPhi {
		for i, v := range use.Operands {
			if v != Value(def) {
				continue
			}
			from := use.Incoming[i]
			if !d.reach[from] {
				continue
			}
			if def.Parent == from {
				continue // defined somewhere in the predecessor
			}
			if !d.dominates(def.Parent, from) {
				return false
			}
		}
		return true
	}
	if def.Parent == use.Parent {
		for _, in := range def.Parent.Instrs {
			if in == def {
				return true
			}
			if in == use {
				return false
			}
		}
		return false
	}
	return d.dominates(def.Parent, use.Parent)
}
