package ir

// TBAATree is the type-based alias analysis metadata tree. Tags form a
// forest rooted at "omnipotent" (the analogue of LLVM's omnipotent
// char); two accesses may alias under TBAA only if one tag is an
// ancestor of the other (or they are equal).
type TBAATree struct {
	parent map[string]string
	order  []string // creation order, for deterministic printing
}

// RootTag is the ancestor of every other tag.
const RootTag = "omnipotent"

// NewTBAATree returns a tree pre-populated with the standard scalar
// tags emitted by the minic frontend: "long", "double", "any pointer",
// all children of the root.
func NewTBAATree() *TBAATree {
	t := &TBAATree{parent: map[string]string{}}
	t.Add("long", RootTag)
	t.Add("double", RootTag)
	t.Add("any pointer", RootTag)
	return t
}

// Add inserts tag as a child of parent. Re-adding an existing tag with
// the same parent is a no-op; changing a tag's parent panics, because
// TBAA trees are write-once per module.
func (t *TBAATree) Add(tag, parent string) {
	if p, ok := t.parent[tag]; ok {
		if p != parent {
			panic("ir: TBAA tag " + tag + " re-added with different parent")
		}
		return
	}
	t.parent[tag] = parent
	t.order = append(t.order, tag)
}

// Has reports whether tag exists in the tree (the root always exists).
func (t *TBAATree) Has(tag string) bool {
	if tag == RootTag {
		return true
	}
	_, ok := t.parent[tag]
	return ok
}

// Tags returns all tags in creation order (excluding the root).
func (t *TBAATree) Tags() []string { return t.order }

// Ancestor reports whether a is an ancestor of b (or a == b). Unknown
// tags are treated as direct children of the root.
func (t *TBAATree) Ancestor(a, b string) bool {
	for cur := b; ; {
		if cur == a {
			return true
		}
		p, ok := t.parent[cur]
		if !ok {
			return a == RootTag
		}
		cur = p
	}
}

// MayAlias reports whether two tagged accesses may alias under the TBAA
// rules. Untagged accesses ("" tag) may alias anything.
func (t *TBAATree) MayAlias(a, b string) bool {
	if a == "" || b == "" || a == RootTag || b == RootTag {
		return true
	}
	return t.Ancestor(a, b) || t.Ancestor(b, a)
}
