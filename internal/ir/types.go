// Package ir defines the intermediate representation used throughout
// go-oraql: a small SSA-based IR modeled after LLVM-IR with opaque
// pointers, typed memory accesses, and the metadata kinds that alias
// analyses consume (TBAA tags, alias scopes, noalias argument
// attributes, and source locations).
//
// The IR is deliberately deterministic: every value carries a stable
// integer ID assigned in creation order, and all containers are slices,
// so that two compilations of the same module issue alias queries in
// the same order. The ORAQL probing driver depends on this property.
package ir

import "fmt"

// Kind enumerates the type kinds of the IR.
type Kind int

const (
	// KVoid is the type of instructions that produce no value.
	KVoid Kind = iota
	// KI1 is a boolean (comparison results, branch conditions).
	KI1
	// KI64 is a 64-bit signed integer, the only integer data type.
	KI64
	// KF64 is a 64-bit IEEE-754 float.
	KF64
	// KPtr is an opaque pointer (addresses are 64-bit in the simulated
	// machine). Pointee types are not tracked; loads and stores carry
	// the accessed type instead, exactly like modern LLVM-IR.
	KPtr
	// KVec is a short SIMD vector of I64 or F64 lanes.
	KVec
)

// Type describes an IR type. Types are interned: use the package-level
// singletons and VecType so that == comparisons are meaningful.
type Type struct {
	Kind  Kind
	Elem  *Type // lane type for KVec
	Lanes int   // lane count for KVec
}

// Interned scalar types.
var (
	Void = &Type{Kind: KVoid}
	I1   = &Type{Kind: KI1}
	I64  = &Type{Kind: KI64}
	F64  = &Type{Kind: KF64}
	Ptr  = &Type{Kind: KPtr}

	V4F64 = &Type{Kind: KVec, Elem: F64, Lanes: 4}
	V4I64 = &Type{Kind: KVec, Elem: I64, Lanes: 4}
)

// VecType returns the interned vector type with the given lane type and
// count. Only 4-lane vectors of I64/F64 are currently interned; other
// shapes panic, which keeps the simulated ISA small.
func VecType(elem *Type, lanes int) *Type {
	switch {
	case elem == F64 && lanes == 4:
		return V4F64
	case elem == I64 && lanes == 4:
		return V4I64
	}
	panic(fmt.Sprintf("ir: unsupported vector type <%d x %s>", lanes, elem))
}

// Size returns the size of the type in bytes in the simulated machine.
func (t *Type) Size() int64 {
	switch t.Kind {
	case KI1:
		return 1
	case KI64, KF64, KPtr:
		return 8
	case KVec:
		return t.Elem.Size() * int64(t.Lanes)
	}
	return 0
}

// IsFloat reports whether the type is F64 or a vector of F64.
func (t *Type) IsFloat() bool {
	return t.Kind == KF64 || (t.Kind == KVec && t.Elem.Kind == KF64)
}

// IsInt reports whether the type is I64/I1 or a vector of I64.
func (t *Type) IsInt() bool {
	return t.Kind == KI64 || t.Kind == KI1 || (t.Kind == KVec && t.Elem.Kind == KI64)
}

// String renders the type in LLVM-like syntax.
func (t *Type) String() string {
	switch t.Kind {
	case KVoid:
		return "void"
	case KI1:
		return "i1"
	case KI64:
		return "i64"
	case KF64:
		return "double"
	case KPtr:
		return "ptr"
	case KVec:
		return fmt.Sprintf("<%d x %s>", t.Lanes, t.Elem)
	}
	return "?"
}
