package ir

import (
	"fmt"
	"strconv"
	"strings"
)

// Value is anything that can appear as an instruction operand: constants,
// globals, function arguments, and instructions themselves.
type Value interface {
	// Type returns the value's IR type.
	Type() *Type
	// Ident returns the value's printed identifier (e.g. "%x", "@g", "7").
	Ident() string
	// VID returns a stable identifier used for deterministic ordering
	// and for ORAQL's query cache. Within one module two distinct
	// pointer-producing values never share a VID.
	VID() int64
}

// VID name-spaces: constants, globals, arguments and instructions get
// disjoint ID ranges so a single int64 identifies a value unambiguously.
const (
	vidConst int64 = 1 << 40
	vidGlob  int64 = 2 << 40
	vidArg   int64 = 3 << 40
	vidInstr int64 = 4 << 40
)

// Const is an integer, boolean, or floating-point literal.
type Const struct {
	Ty  *Type
	I   int64   // value for I1/I64
	F   float64 // value for F64
	Str string  // for string constants referenced by print intrinsics
}

// ConstInt returns an i64 constant.
func ConstInt(v int64) *Const { return &Const{Ty: I64, I: v} }

// ConstBool returns an i1 constant.
func ConstBool(v bool) *Const {
	if v {
		return &Const{Ty: I1, I: 1}
	}
	return &Const{Ty: I1}
}

// ConstFloat returns a double constant.
func ConstFloat(v float64) *Const { return &Const{Ty: F64, F: v} }

// ConstStr returns a string constant; only valid as a print operand.
func ConstStr(s string) *Const { return &Const{Ty: Ptr, Str: s} }

// Type implements Value.
func (c *Const) Type() *Type { return c.Ty }

// Ident implements Value.
func (c *Const) Ident() string {
	switch {
	case c.Str != "":
		return fmt.Sprintf("%q", c.Str)
	case c.Ty == F64:
		return FormatF64(c.F)
	default:
		return fmt.Sprintf("%d", c.I)
	}
}

// FormatF64 renders a float constant so the text itself carries the
// type: integral values get a ".0" suffix ("3.0", not "3"), keeping
// print→parse round-trips from silently retyping a float constant as
// an integer in contexts without an explicit type (vsplat, select,
// call arguments). The shortest-unique rendering is preserved
// otherwise, so parsing recovers the exact bit pattern.
func FormatF64(f float64) string {
	s := strconv.FormatFloat(f, 'g', -1, 64)
	if !strings.ContainsAny(s, ".eEnN") { // Inf/NaN keep their letters
		s += ".0"
	}
	return s
}

// VID implements Value. Constants are identified by their payload so
// that equal constants compare equal; they never alias anything as
// pointers (string constants are print-only).
func (c *Const) VID() int64 {
	if c.Ty == F64 {
		return vidConst | int64(uint32(hashF64(c.F)))
	}
	return vidConst | (c.I & 0xFFFFFFFF)
}

func hashF64(f float64) uint32 {
	// FNV-1a over the decimal rendering; only used to give distinct
	// float constants distinct-ish VIDs for ordering purposes.
	h := uint32(2166136261)
	for _, b := range []byte(fmt.Sprintf("%g", f)) {
		h = (h ^ uint32(b)) * 16777619
	}
	return h
}

// Global is a module-level memory object with optional initial contents.
type Global struct {
	Name     string
	Size     int64 // size in bytes
	InitI64  []int64
	InitF64  []float64
	Const    bool // read-only (never stored to); used by GlobalsAA
	Internal bool // address never escapes the module; used by GlobalsAA
	ID       int  // dense module-level index
}

// Type implements Value: a global evaluates to its address.
func (g *Global) Type() *Type { return Ptr }

// Ident implements Value.
func (g *Global) Ident() string { return "@" + g.Name }

// VID implements Value.
func (g *Global) VID() int64 { return vidGlob | int64(g.ID) }

// Arg is a function parameter.
type Arg struct {
	Name    string
	Ty      *Type
	NoAlias bool // the `restrict`/`noalias` attribute
	ID      int  // dense per-function index
	Func    *Func
}

// Type implements Value.
func (a *Arg) Type() *Type { return a.Ty }

// Ident implements Value.
func (a *Arg) Ident() string { return "%" + a.Name }

// VID implements Value.
func (a *Arg) VID() int64 { return vidArg | int64(a.Func.ID)<<20 | int64(a.ID) }
