package ir

import "fmt"

// Opcode enumerates instruction operations.
type Opcode int

// Instruction opcodes. Arithmetic is split by domain (integer vs float)
// as in LLVM; vector forms reuse the scalar opcodes with vector types.
const (
	OpInvalid Opcode = iota

	// Memory.
	OpAlloca // operands: none; Size gives the allocation size in bytes
	OpLoad   // operands: ptr; Ty is the loaded type
	OpStore  // operands: val, ptr
	OpGEP    // operands: base [, index]; addr = base + index*Scale + Off
	OpMemCpy // operands: dst, src, len(bytes)
	OpMemSet // operands: dst, byteval(i64), len(bytes)

	// Integer arithmetic (i64).
	OpAdd
	OpSub
	OpMul
	OpSDiv
	OpSRem
	OpAnd
	OpOr
	OpXor
	OpShl
	OpAShr

	// Floating point arithmetic (f64 or vector).
	OpFAdd
	OpFSub
	OpFMul
	OpFDiv

	// Conversions.
	OpSIToFP // i64 -> f64
	OpFPToSI // f64 -> i64

	// Comparisons; Pred selects the predicate.
	OpICmp
	OpFCmp

	// Vector ops for the explicit-SIMD dialect.
	OpVSplat   // operands: scalar -> vector
	OpVExtract // operands: vector, lane(const) -> scalar
	OpVInsert  // operands: vector, scalar, lane(const) -> vector
	OpVReduce  // operands: vector -> scalar (sum of lanes)

	// Other value-producing instructions.
	OpSelect // operands: cond, iftrue, iffalse
	OpPhi    // operands parallel to Incoming blocks
	OpCall   // operands: args; Callee names a function or intrinsic

	// Terminators.
	OpBr  // operands: [cond]; Succs has 1 or 2 targets
	OpRet // operands: [value]
)

var opNames = map[Opcode]string{
	OpAlloca: "alloca", OpLoad: "load", OpStore: "store", OpGEP: "gep",
	OpMemCpy: "memcpy", OpMemSet: "memset",
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpSDiv: "sdiv", OpSRem: "srem",
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpShl: "shl", OpAShr: "ashr",
	OpFAdd: "fadd", OpFSub: "fsub", OpFMul: "fmul", OpFDiv: "fdiv",
	OpSIToFP: "sitofp", OpFPToSI: "fptosi",
	OpICmp: "icmp", OpFCmp: "fcmp",
	OpVSplat: "vsplat", OpVExtract: "vextract", OpVInsert: "vinsert", OpVReduce: "vreduce",
	OpSelect: "select", OpPhi: "phi", OpCall: "call",
	OpBr: "br", OpRet: "ret",
}

// String returns the mnemonic of the opcode.
func (o Opcode) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Pred is a comparison predicate shared by icmp and fcmp.
type Pred int

// Comparison predicates.
const (
	PredEQ Pred = iota
	PredNE
	PredLT
	PredLE
	PredGT
	PredGE
)

var predNames = [...]string{"eq", "ne", "lt", "le", "gt", "ge"}

// String returns the predicate mnemonic.
func (p Pred) String() string { return predNames[p] }

// SrcLoc is a source location attached to instructions by the frontend,
// mirroring LLVM debug locations. It lets ORAQL associate pessimistic
// queries with source lines (paper Fig. 3).
type SrcLoc struct {
	File string
	Line int
	Col  int
}

// IsValid reports whether the location was set.
func (l SrcLoc) IsValid() bool { return l.Line > 0 }

// String renders "file:line:col".
func (l SrcLoc) String() string {
	if !l.IsValid() {
		return "<unknown>"
	}
	return fmt.Sprintf("%s:%d:%d", l.File, l.Line, l.Col)
}

// Instr is a single IR instruction. A nil instruction is never valid.
type Instr struct {
	Op       Opcode
	Ty       *Type   // result type; Void for stores, terminators, etc.
	Operands []Value // use list, in operand order

	// GEP address arithmetic: addr = base + index*Scale + Off.
	Scale int64
	Off   int64

	// Alloca allocation size in bytes.
	Size int64

	// Comparison predicate for OpICmp/OpFCmp.
	Pred Pred

	// Call target: a module function name or a "__"-prefixed intrinsic.
	Callee string

	// Branch targets (1 for unconditional, 2 for conditional: then, else).
	Succs []*Block

	// Incoming blocks for OpPhi, parallel to Operands.
	Incoming []*Block

	// Access metadata for loads/stores.
	TBAA         string   // TBAA type tag; "" means untagged
	Scopes       []string // alias.scope membership
	NoAliasScope []string // declared not to alias accesses in these scopes

	// Loc is the source location, if known.
	Loc SrcLoc

	// Name is an optional human-readable name; the printer falls back
	// to %tID.
	Name string

	// ID is the stable per-function instruction number in creation order.
	ID int

	// Parent is the containing block.
	Parent *Block

	// dead marks instructions removed by a pass; compaction drops them.
	dead bool
}

// Type implements Value.
func (in *Instr) Type() *Type { return in.Ty }

// Ident implements Value.
func (in *Instr) Ident() string {
	if in.Name != "" {
		return "%" + in.Name
	}
	return fmt.Sprintf("%%t%d", in.ID)
}

// VID implements Value.
func (in *Instr) VID() int64 {
	f := 0
	if in.Parent != nil && in.Parent.Parent != nil {
		f = in.Parent.Parent.ID
	}
	return vidInstr | int64(f)<<20 | int64(in.ID)
}

// IsTerminator reports whether the instruction ends a block.
func (in *Instr) IsTerminator() bool { return in.Op == OpBr || in.Op == OpRet }

// Dead reports whether the instruction has been removed by a pass but
// not yet compacted out of its block.
func (in *Instr) Dead() bool { return in.dead }

// MarkDead removes the instruction logically; Block.Compact erases it.
func (in *Instr) MarkDead() { in.dead = true }

// AccessedLoad reports whether the instruction reads memory.
func (in *Instr) ReadsMemory() bool {
	switch in.Op {
	case OpLoad, OpMemCpy:
		return true
	case OpCall:
		return CalleeEffects(in.Callee).Reads
	}
	return false
}

// WritesMemory reports whether the instruction writes memory.
func (in *Instr) WritesMemory() bool {
	switch in.Op {
	case OpStore, OpMemCpy, OpMemSet:
		return true
	case OpCall:
		return CalleeEffects(in.Callee).Writes
	}
	return false
}

// Effects describes the memory behaviour of a call target.
type Effects struct {
	Reads  bool
	Writes bool
	// ArgMemOnly means the call accesses only memory reachable from its
	// pointer arguments (like LLVM's argmemonly); pure math intrinsics
	// are readnone.
	ArgMemOnly bool
}

// intrinsicEffects lists the built-in runtime functions known to the
// compiler and interpreter. Anything not listed (i.e. a user function)
// is treated as reading and writing arbitrary memory unless the module
// provides a Func with attributes saying otherwise.
var intrinsicEffects = map[string]Effects{
	"__print_i64":         {Reads: false, Writes: false},
	"__print_f64":         {Reads: false, Writes: false},
	"__print_str":         {Reads: false, Writes: false},
	"__sqrt":              {},
	"__fabs":              {},
	"__exp":               {},
	"__log":               {},
	"__sin":               {},
	"__cos":               {},
	"__pow":               {},
	"__min_i64":           {},
	"__max_i64":           {},
	"__min_f64":           {},
	"__max_f64":           {},
	"__malloc":            {Writes: true}, // returns fresh memory
	"__free":              {},
	"__omp_fork":          {Reads: true, Writes: true},
	"__omp_task":          {Reads: true, Writes: true},
	"__omp_taskwait":      {Reads: true, Writes: true},
	"__omp_thread_id":     {},
	"__omp_num_threads":   {},
	"__mpi_rank":          {},
	"__mpi_size":          {},
	"__mpi_sendrecv":      {Reads: true, Writes: true, ArgMemOnly: true},
	"__mpi_allreduce_f64": {},
	"__gpu_launch":        {Reads: true, Writes: true},
	"__gpu_tid":           {},
	"__gpu_ntid":          {},
	"__checksum_f64":      {Reads: true, ArgMemOnly: true},
	"__checksum_i64":      {Reads: true, ArgMemOnly: true},
	"__clock":             {},
}

// IsIntrinsic reports whether name denotes a built-in runtime function.
func IsIntrinsic(name string) bool {
	_, ok := intrinsicEffects[name]
	return ok
}

// CalleeEffects returns the memory effects of calling name. Unknown
// callees (user functions) conservatively read and write everything.
func CalleeEffects(name string) Effects {
	if e, ok := intrinsicEffects[name]; ok {
		return e
	}
	return Effects{Reads: true, Writes: true}
}
