package ir

import "fmt"

// Block is a basic block: a straight-line instruction sequence ending in
// a terminator.
type Block struct {
	Name   string
	ID     int
	Instrs []*Instr
	Parent *Func
}

// Term returns the block terminator, or nil if the block is unterminated.
func (b *Block) Term() *Instr {
	for i := len(b.Instrs) - 1; i >= 0; i-- {
		if !b.Instrs[i].dead {
			if b.Instrs[i].IsTerminator() {
				return b.Instrs[i]
			}
			return nil
		}
	}
	return nil
}

// Succs returns the successor blocks.
func (b *Block) Succs() []*Block {
	t := b.Term()
	if t == nil || t.Op != OpBr {
		return nil
	}
	return t.Succs
}

// Compact erases instructions marked dead. Pass cleanups call this once
// per block after a batch of removals.
func (b *Block) Compact() {
	out := b.Instrs[:0]
	for _, in := range b.Instrs {
		if !in.dead {
			out = append(out, in)
		}
	}
	// Zero the tail so removed instructions can be collected.
	for i := len(out); i < len(b.Instrs); i++ {
		b.Instrs[i] = nil
	}
	b.Instrs = out
}

// Ident returns the printed label of the block.
func (b *Block) Ident() string { return b.Name }

// FuncAttrs captures the whole-function attributes the optimizer
// understands.
type FuncAttrs struct {
	ReadNone bool // accesses no memory
	ReadOnly bool // reads but never writes memory
	Kernel   bool // GPU kernel entry point (offload targets)
	Outlined bool // OpenMP-outlined parallel region body
}

// Func is an IR function.
type Func struct {
	Name   string
	Params []*Arg
	RetTy  *Type
	Blocks []*Block
	Attrs  FuncAttrs
	Parent *Module
	ID     int // dense module-level index

	nextInstrID int
	nextBlockID int
}

// Entry returns the entry block.
func (f *Func) Entry() *Block { return f.Blocks[0] }

// NewBlock appends a new empty block with the given name hint.
func (f *Func) NewBlock(name string) *Block {
	b := &Block{Name: fmt.Sprintf("%s%d", name, f.nextBlockID), ID: f.nextBlockID, Parent: f}
	f.nextBlockID++
	f.Blocks = append(f.Blocks, b)
	return b
}

// AllocID hands out a fresh instruction ID. Passes that synthesize
// instructions must use this (never renumber): instruction IDs feed
// value identities (VIDs), and ORAQL's query cache requires a value's
// VID to stay stable for the whole compilation.
func (f *Func) AllocID() int {
	id := f.nextInstrID
	f.nextInstrID++
	return id
}

// Compact erases dead instructions from every block.
func (f *Func) Compact() {
	for _, b := range f.Blocks {
		b.Compact()
	}
}

// InstrCount returns the number of live instructions.
func (f *Func) InstrCount() int {
	n := 0
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if !in.dead {
				n++
			}
		}
	}
	return n
}

// ReplaceAllUses rewrites every operand use of old to new within the
// function. The IR keeps no use lists (functions are small), so this is
// a linear scan.
func (f *Func) ReplaceAllUses(old, new Value) {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for i, op := range in.Operands {
				if op == old {
					in.Operands[i] = new
				}
			}
		}
	}
}

// Module is a translation unit: globals plus functions, with a target
// string used by multi-target (offload) compilation.
type Module struct {
	Name    string
	Target  string // e.g. "x86_64" or "gpu-sim" (device part of offload)
	Globals []*Global
	Funcs   []*Func

	// TBAA is the type-based alias analysis tag tree for this module.
	TBAA *TBAATree
}

// NewModule returns an empty module targeting the host.
func NewModule(name string) *Module {
	return &Module{Name: name, Target: "x86_64", TBAA: NewTBAATree()}
}

// AddGlobal appends a global and assigns its dense ID.
func (m *Module) AddGlobal(g *Global) *Global {
	g.ID = len(m.Globals)
	m.Globals = append(m.Globals, g)
	return g
}

// GlobalByName returns the named global, or nil.
func (m *Module) GlobalByName(name string) *Global {
	for _, g := range m.Globals {
		if g.Name == name {
			return g
		}
	}
	return nil
}

// AddFunc appends a function and assigns its dense ID.
func (m *Module) AddFunc(f *Func) *Func {
	f.ID = len(m.Funcs)
	f.Parent = m
	m.Funcs = append(m.Funcs, f)
	return f
}

// FuncByName returns the named function, or nil.
func (m *Module) FuncByName(name string) *Func {
	for _, f := range m.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// InstrCount returns the number of live instructions in the module.
func (m *Module) InstrCount() int {
	n := 0
	for _, f := range m.Funcs {
		n += f.InstrCount()
	}
	return n
}
