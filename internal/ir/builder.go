package ir

import "fmt"

// Builder constructs IR instruction-by-instruction at an insertion
// point, in the style of LLVM's IRBuilder. All Create* methods append
// to the current block and return the new instruction (usable as a
// Value).
type Builder struct {
	fn  *Func
	bb  *Block
	loc SrcLoc
}

// NewFunc creates a function in m and returns a builder positioned at a
// fresh entry block.
func NewFunc(m *Module, name string, retTy *Type, params ...*Arg) (*Func, *Builder) {
	f := &Func{Name: name, RetTy: retTy, Params: params}
	for i, p := range params {
		p.ID = i
		p.Func = f
	}
	m.AddFunc(f)
	entry := f.NewBlock("entry")
	return f, &Builder{fn: f, bb: entry}
}

// NewBuilder returns a builder positioned at the end of bb.
func NewBuilder(bb *Block) *Builder { return &Builder{fn: bb.Parent, bb: bb} }

// Func returns the function under construction.
func (b *Builder) Func() *Func { return b.fn }

// Block returns the current insertion block.
func (b *Builder) Block() *Block { return b.bb }

// SetBlock moves the insertion point to the end of bb.
func (b *Builder) SetBlock(bb *Block) { b.bb = bb }

// NewBlock creates a block in the current function (the insertion point
// does not move).
func (b *Builder) NewBlock(name string) *Block { return b.fn.NewBlock(name) }

// SetLoc sets the source location attached to subsequently created
// instructions.
func (b *Builder) SetLoc(loc SrcLoc) { b.loc = loc }

func (b *Builder) emit(in *Instr) *Instr {
	if b.bb == nil {
		panic("ir: builder has no insertion block")
	}
	if t := b.bb.Term(); t != nil {
		panic(fmt.Sprintf("ir: emitting %s after terminator in %s/%s", in.Op, b.fn.Name, b.bb.Name))
	}
	in.ID = b.fn.nextInstrID
	b.fn.nextInstrID++
	in.Parent = b.bb
	if !in.Loc.IsValid() {
		in.Loc = b.loc
	}
	b.bb.Instrs = append(b.bb.Instrs, in)
	return in
}

// Alloca allocates size bytes of stack memory and returns its address.
func (b *Builder) Alloca(size int64, name string) *Instr {
	return b.emit(&Instr{Op: OpAlloca, Ty: Ptr, Size: size, Name: name})
}

// Load reads a value of type ty from ptr. tbaa may be "".
func (b *Builder) Load(ty *Type, ptr Value, tbaa string) *Instr {
	return b.emit(&Instr{Op: OpLoad, Ty: ty, Operands: []Value{ptr}, TBAA: tbaa})
}

// Store writes val to ptr. tbaa may be "".
func (b *Builder) Store(val, ptr Value, tbaa string) *Instr {
	return b.emit(&Instr{Op: OpStore, Ty: Void, Operands: []Value{val, ptr}, TBAA: tbaa})
}

// GEP computes base + index*scale + off. A nil index yields a
// constant-offset GEP (base + off).
func (b *Builder) GEP(base Value, index Value, scale, off int64, name string) *Instr {
	ops := []Value{base}
	if index != nil {
		ops = append(ops, index)
	}
	return b.emit(&Instr{Op: OpGEP, Ty: Ptr, Operands: ops, Scale: scale, Off: off, Name: name})
}

// MemCpy copies n bytes from src to dst (non-overlapping).
func (b *Builder) MemCpy(dst, src, n Value) *Instr {
	return b.emit(&Instr{Op: OpMemCpy, Ty: Void, Operands: []Value{dst, src, n}})
}

// MemSet fills n bytes at dst with the low byte of val.
func (b *Builder) MemSet(dst, val, n Value) *Instr {
	return b.emit(&Instr{Op: OpMemSet, Ty: Void, Operands: []Value{dst, val, n}})
}

// Bin emits a binary arithmetic instruction of the given opcode.
func (b *Builder) Bin(op Opcode, x, y Value, name string) *Instr {
	ty := x.Type()
	return b.emit(&Instr{Op: op, Ty: ty, Operands: []Value{x, y}, Name: name})
}

// ICmp compares two i64 values.
func (b *Builder) ICmp(p Pred, x, y Value, name string) *Instr {
	return b.emit(&Instr{Op: OpICmp, Ty: I1, Pred: p, Operands: []Value{x, y}, Name: name})
}

// FCmp compares two f64 values.
func (b *Builder) FCmp(p Pred, x, y Value, name string) *Instr {
	return b.emit(&Instr{Op: OpFCmp, Ty: I1, Pred: p, Operands: []Value{x, y}, Name: name})
}

// SIToFP converts i64 to f64.
func (b *Builder) SIToFP(x Value, name string) *Instr {
	return b.emit(&Instr{Op: OpSIToFP, Ty: F64, Operands: []Value{x}, Name: name})
}

// FPToSI converts f64 to i64 (truncating).
func (b *Builder) FPToSI(x Value, name string) *Instr {
	return b.emit(&Instr{Op: OpFPToSI, Ty: I64, Operands: []Value{x}, Name: name})
}

// Select returns iftrue if cond else iffalse.
func (b *Builder) Select(cond, iftrue, iffalse Value, name string) *Instr {
	return b.emit(&Instr{Op: OpSelect, Ty: iftrue.Type(), Operands: []Value{cond, iftrue, iffalse}, Name: name})
}

// Phi creates an empty phi of type ty; fill it with AddIncoming.
func (b *Builder) Phi(ty *Type, name string) *Instr {
	return b.emit(&Instr{Op: OpPhi, Ty: ty, Name: name})
}

// AddIncoming appends an incoming (value, predecessor) pair to a phi.
func AddIncoming(phi *Instr, v Value, from *Block) {
	if phi.Op != OpPhi {
		panic("ir: AddIncoming on non-phi")
	}
	phi.Operands = append(phi.Operands, v)
	phi.Incoming = append(phi.Incoming, from)
}

// Call emits a call to a function or intrinsic with the given result
// type (Void for none).
func (b *Builder) Call(retTy *Type, callee string, args ...Value) *Instr {
	return b.emit(&Instr{Op: OpCall, Ty: retTy, Callee: callee, Operands: args})
}

// VSplat broadcasts a scalar into a vector.
func (b *Builder) VSplat(ty *Type, x Value, name string) *Instr {
	return b.emit(&Instr{Op: OpVSplat, Ty: ty, Operands: []Value{x}, Name: name})
}

// VExtract extracts lane (a constant) from a vector.
func (b *Builder) VExtract(vec Value, lane int64, name string) *Instr {
	return b.emit(&Instr{Op: OpVExtract, Ty: vec.Type().Elem, Operands: []Value{vec, ConstInt(lane)}, Name: name})
}

// VReduce sums the lanes of a vector into a scalar.
func (b *Builder) VReduce(vec Value, name string) *Instr {
	return b.emit(&Instr{Op: OpVReduce, Ty: vec.Type().Elem, Operands: []Value{vec}, Name: name})
}

// Br emits an unconditional branch.
func (b *Builder) Br(to *Block) *Instr {
	return b.emit(&Instr{Op: OpBr, Ty: Void, Succs: []*Block{to}})
}

// CondBr emits a conditional branch.
func (b *Builder) CondBr(cond Value, then, els *Block) *Instr {
	return b.emit(&Instr{Op: OpBr, Ty: Void, Operands: []Value{cond}, Succs: []*Block{then, els}})
}

// Ret emits a return; v may be nil for void functions.
func (b *Builder) Ret(v Value) *Instr {
	in := &Instr{Op: OpRet, Ty: Void}
	if v != nil {
		in.Operands = []Value{v}
	}
	return b.emit(in)
}
