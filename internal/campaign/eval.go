package campaign

// The tree-walking evaluator. Values are the JSON value model plus
// the callables: nil, bool, int64, float64, string, []any,
// map[string]any, *Builtin, and *funcVal (a script-defined `fn`
// closure). Every operation is type-checked and error-returning —
// scripts can fail, but they can never panic the host — and every
// evaluated node charges the instruction budget, so `while true {}`
// dies with a budget error, not a hung worker. Function calls are
// additionally bounded by maxCallDepth so runaway recursion hits a
// script error long before the Go stack.

import (
	"context"
	"fmt"
	"reflect"
	"sort"
	"strings"
)

// Builtin is a host function callable from scripts. Bindings decide
// what a campaign can reach: the sandbox is exactly the set of
// builtins installed — there are no filesystem or exec bindings.
type Builtin struct {
	Name string
	Doc  string
	Fn   func(in *interp, line int, args []any) (any, error)
}

// funcVal is a script-defined function: a `fn(params) { body }`
// literal closed over its defining environment.
type funcVal struct {
	params []string
	body   []stmt
	env    *env
	line   int // where the literal was written, for error messages
}

type env struct {
	vars   map[string]any
	parent *env
}

func (e *env) lookup(name string) (any, bool) {
	for s := e; s != nil; s = s.parent {
		if v, ok := s.vars[name]; ok {
			return v, true
		}
	}
	return nil, false
}

func (e *env) set(name string, v any) bool {
	for s := e; s != nil; s = s.parent {
		if _, ok := s.vars[name]; ok {
			s.vars[name] = v
			return true
		}
	}
	return false
}

// interp executes one script under a step budget and a context.
type interp struct {
	ctx      context.Context
	opts     *Options
	globals  *env
	steps    int64
	maxSteps int64
	// depth is the live script-function call depth (maxCallDepth cap).
	depth int
	// strat is the per-run script-strategy state — the overlay registry
	// holding register_strategy entries and the active Prober stack the
	// probe_* bindings read. Created lazily by bindings_strategy.go.
	strat *strategyState
}

// maxCallDepth bounds script-function recursion. The limit protects
// the host's goroutine stack (each script call consumes Go frames);
// 64 is far beyond any reasonable campaign and far below stack
// exhaustion.
const maxCallDepth = 64

// Control-flow sentinels — internal to the evaluator, never escape Run.
type breakErr struct{ line int }
type continueErr struct{ line int }
type returnErr struct{ val any }

func (breakErr) Error() string    { return "break outside loop" }
func (continueErr) Error() string { return "continue outside loop" }
func (returnErr) Error() string   { return "return" }

// step charges the instruction budget and polls for cancellation.
func (in *interp) step(line int) error {
	in.steps++
	if in.steps > in.maxSteps {
		return scriptErr(line, "instruction budget exceeded (%d steps)", in.maxSteps)
	}
	if in.steps%256 == 0 {
		if err := in.ctx.Err(); err != nil {
			return err
		}
	}
	return nil
}

func (in *interp) execBlock(stmts []stmt, e *env) error {
	for _, s := range stmts {
		if err := in.exec(s, e); err != nil {
			return err
		}
	}
	return nil
}

func (in *interp) exec(s stmt, e *env) error {
	if err := in.step(s.stmtPos()); err != nil {
		return err
	}
	switch s := s.(type) {
	case *letStmt:
		v, err := in.eval(s.val, e)
		if err != nil {
			return err
		}
		e.vars[s.name] = v
		return nil

	case *assignStmt:
		return in.assign(s, e)

	case *exprStmt:
		_, err := in.eval(s.x, e)
		return err

	case *ifStmt:
		cond, err := in.evalBool(s.cond, e)
		if err != nil {
			return err
		}
		scope := &env{vars: map[string]any{}, parent: e}
		if cond {
			return in.execBlock(s.then, scope)
		}
		return in.execBlock(s.alt, scope)

	case *forStmt:
		items, err := in.iterable(s.iter, e)
		if err != nil {
			return err
		}
		for _, item := range items {
			scope := &env{vars: map[string]any{s.name: item}, parent: e}
			err := in.execBlock(s.body, scope)
			switch err.(type) {
			case nil, continueErr:
			case breakErr:
				return nil
			default:
				return err
			}
		}
		return nil

	case *whileStmt:
		for {
			cond, err := in.evalBool(s.cond, e)
			if err != nil {
				return err
			}
			if !cond {
				return nil
			}
			scope := &env{vars: map[string]any{}, parent: e}
			err = in.execBlock(s.body, scope)
			switch err.(type) {
			case nil, continueErr:
			case breakErr:
				return nil
			default:
				return err
			}
		}

	case *breakStmt:
		return breakErr{line: s.line}
	case *continueStmt:
		return continueErr{line: s.line}

	case *returnStmt:
		var v any
		if s.val != nil {
			var err error
			if v, err = in.eval(s.val, e); err != nil {
				return err
			}
		}
		return returnErr{val: v}
	}
	return scriptErr(s.stmtPos(), "internal: unknown statement %T", s)
}

func (in *interp) assign(s *assignStmt, e *env) error {
	v, err := in.eval(s.val, e)
	if err != nil {
		return err
	}
	switch t := s.target.(type) {
	case *identExpr:
		if !e.set(t.name, v) {
			return scriptErr(s.line, "assignment to undeclared variable %q (use let)", t.name)
		}
		return nil
	case *indexExpr:
		container, err := in.eval(t.x, e)
		if err != nil {
			return err
		}
		idx, err := in.eval(t.idx, e)
		if err != nil {
			return err
		}
		switch c := container.(type) {
		case []any:
			i, ok := idx.(int64)
			if !ok {
				return scriptErr(s.line, "list index must be an integer, got %s", typeName(idx))
			}
			if i < 0 || i >= int64(len(c)) {
				return scriptErr(s.line, "list index %d out of range (len %d)", i, len(c))
			}
			c[i] = v
			return nil
		case map[string]any:
			k, ok := idx.(string)
			if !ok {
				return scriptErr(s.line, "map key must be a string, got %s", typeName(idx))
			}
			c[k] = v
			return nil
		default:
			return scriptErr(s.line, "cannot index-assign into %s", typeName(container))
		}
	case *fieldExpr:
		container, err := in.eval(t.x, e)
		if err != nil {
			return err
		}
		m, ok := container.(map[string]any)
		if !ok {
			return scriptErr(s.line, "cannot set field %q on %s", t.name, typeName(container))
		}
		m[t.name] = v
		return nil
	}
	return scriptErr(s.line, "invalid assignment target")
}

// iterable evaluates a for-in source: lists iterate in order, maps in
// sorted-key order so every run of a script is deterministic.
func (in *interp) iterable(x expr, e *env) ([]any, error) {
	v, err := in.eval(x, e)
	if err != nil {
		return nil, err
	}
	switch v := v.(type) {
	case []any:
		return v, nil
	case map[string]any:
		keys := make([]string, 0, len(v))
		for k := range v {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		items := make([]any, len(keys))
		for i, k := range keys {
			items[i] = k
		}
		return items, nil
	default:
		return nil, scriptErr(x.pos(), "cannot iterate over %s", typeName(v))
	}
}

func (in *interp) evalBool(x expr, e *env) (bool, error) {
	v, err := in.eval(x, e)
	if err != nil {
		return false, err
	}
	b, ok := v.(bool)
	if !ok {
		return false, scriptErr(x.pos(), "condition must be a boolean, got %s", typeName(v))
	}
	return b, nil
}

func (in *interp) eval(x expr, e *env) (any, error) {
	if err := in.step(x.pos()); err != nil {
		return nil, err
	}
	switch x := x.(type) {
	case *litExpr:
		return x.val, nil

	case *identExpr:
		if v, ok := e.lookup(x.name); ok {
			return v, nil
		}
		return nil, scriptErr(x.line, "undefined name %q", x.name)

	case *listExpr:
		out := make([]any, 0, len(x.elems))
		for _, el := range x.elems {
			v, err := in.eval(el, e)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
		return out, nil

	case *mapExpr:
		out := make(map[string]any, len(x.keys))
		for i, k := range x.keys {
			v, err := in.eval(x.vals[i], e)
			if err != nil {
				return nil, err
			}
			out[k] = v
		}
		return out, nil

	case *unaryExpr:
		v, err := in.eval(x.x, e)
		if err != nil {
			return nil, err
		}
		switch x.op {
		case "!":
			b, ok := v.(bool)
			if !ok {
				return nil, scriptErr(x.line, "! needs a boolean, got %s", typeName(v))
			}
			return !b, nil
		case "-":
			switch v := v.(type) {
			case int64:
				return -v, nil
			case float64:
				return -v, nil
			}
			return nil, scriptErr(x.line, "unary - needs a number, got %s", typeName(v))
		}
		return nil, scriptErr(x.line, "internal: unknown unary %q", x.op)

	case *binaryExpr:
		return in.evalBinary(x, e)

	case *callExpr:
		fn, err := in.eval(x.fn, e)
		if err != nil {
			return nil, err
		}
		args := make([]any, len(x.args))
		for i, a := range x.args {
			if args[i], err = in.eval(a, e); err != nil {
				return nil, err
			}
		}
		switch f := fn.(type) {
		case *Builtin:
			v, err := f.Fn(in, x.line, args)
			if err != nil {
				if _, scripted := err.(scriptError); scripted {
					return nil, err
				}
				if in.ctx.Err() != nil {
					return nil, err // cancellation passes through untouched
				}
				return nil, scriptErr(x.line, "%s: %v", f.Name, err)
			}
			return v, nil
		case *funcVal:
			return in.callFunc(f, args, x.line)
		}
		return nil, scriptErr(x.line, "%s is not callable", typeName(fn))

	case *indexExpr:
		container, err := in.eval(x.x, e)
		if err != nil {
			return nil, err
		}
		idx, err := in.eval(x.idx, e)
		if err != nil {
			return nil, err
		}
		switch c := container.(type) {
		case []any:
			i, ok := idx.(int64)
			if !ok {
				return nil, scriptErr(x.line, "list index must be an integer, got %s", typeName(idx))
			}
			if i < 0 || i >= int64(len(c)) {
				return nil, scriptErr(x.line, "list index %d out of range (len %d)", i, len(c))
			}
			return c[i], nil
		case map[string]any:
			k, ok := idx.(string)
			if !ok {
				return nil, scriptErr(x.line, "map key must be a string, got %s", typeName(idx))
			}
			return c[k], nil // missing key yields nil, like field access
		default:
			return nil, scriptErr(x.line, "cannot index %s", typeName(container))
		}

	case *fieldExpr:
		container, err := in.eval(x.x, e)
		if err != nil {
			return nil, err
		}
		m, ok := container.(map[string]any)
		if !ok {
			return nil, scriptErr(x.line, "cannot read field %q of %s", x.name, typeName(container))
		}
		return m[x.name], nil // missing field yields nil

	case *fnExpr:
		return &funcVal{params: x.params, body: x.body, env: e, line: x.line}, nil
	}
	return nil, scriptErr(x.pos(), "internal: unknown expression %T", x)
}

// callFunc invokes a script-defined function: a fresh scope over the
// closure environment, parameters bound positionally, the body's
// return value (nil when the body runs off its end) as the result.
func (in *interp) callFunc(f *funcVal, args []any, line int) (any, error) {
	if len(args) != len(f.params) {
		return nil, scriptErr(line, "function takes %d argument(s), got %d", len(f.params), len(args))
	}
	if in.depth >= maxCallDepth {
		return nil, scriptErr(line, "call depth limit exceeded (%d nested calls)", maxCallDepth)
	}
	in.depth++
	defer func() { in.depth-- }()
	scope := &env{vars: make(map[string]any, len(f.params)), parent: f.env}
	for i, p := range f.params {
		scope.vars[p] = args[i]
	}
	err := in.execBlock(f.body, scope)
	switch err := err.(type) {
	case nil:
		return nil, nil
	case returnErr:
		return err.val, nil
	case breakErr:
		return nil, scriptErr(err.line, "break outside a loop")
	case continueErr:
		return nil, scriptErr(err.line, "continue outside a loop")
	default:
		return nil, err
	}
}

func (in *interp) evalBinary(x *binaryExpr, e *env) (any, error) {
	// Short-circuit logic first.
	if x.op == "&&" || x.op == "||" {
		l, err := in.evalBool(x.x, e)
		if err != nil {
			return nil, err
		}
		if (x.op == "&&" && !l) || (x.op == "||" && l) {
			return l, nil
		}
		r, err := in.evalBool(x.y, e)
		return r, err
	}
	l, err := in.eval(x.x, e)
	if err != nil {
		return nil, err
	}
	r, err := in.eval(x.y, e)
	if err != nil {
		return nil, err
	}
	switch x.op {
	case "==":
		return valueEq(l, r), nil
	case "!=":
		return !valueEq(l, r), nil
	}
	// String operators.
	if ls, ok := l.(string); ok {
		rs, ok := r.(string)
		if !ok {
			return nil, scriptErr(x.line, "%q needs two strings, got %s and %s", x.op, typeName(l), typeName(r))
		}
		switch x.op {
		case "+":
			return ls + rs, nil
		case "<":
			return ls < rs, nil
		case "<=":
			return ls <= rs, nil
		case ">":
			return ls > rs, nil
		case ">=":
			return ls >= rs, nil
		}
		return nil, scriptErr(x.line, "%q is not defined on strings", x.op)
	}
	// List concatenation.
	if ll, ok := l.([]any); ok && x.op == "+" {
		rl, ok := r.([]any)
		if !ok {
			return nil, scriptErr(x.line, "\"+\" needs two lists, got list and %s", typeName(r))
		}
		out := make([]any, 0, len(ll)+len(rl))
		out = append(out, ll...)
		return append(out, rl...), nil
	}
	// Numbers: int64 stays exact, any float promotes both sides.
	li, lInt := l.(int64)
	ri, rInt := r.(int64)
	if lInt && rInt {
		switch x.op {
		case "+":
			return li + ri, nil
		case "-":
			return li - ri, nil
		case "*":
			return li * ri, nil
		case "/":
			if ri == 0 {
				return nil, scriptErr(x.line, "division by zero")
			}
			return li / ri, nil
		case "%":
			if ri == 0 {
				return nil, scriptErr(x.line, "modulo by zero")
			}
			return li % ri, nil
		case "<":
			return li < ri, nil
		case "<=":
			return li <= ri, nil
		case ">":
			return li > ri, nil
		case ">=":
			return li >= ri, nil
		}
	}
	lf, lNum := toFloat(l)
	rf, rNum := toFloat(r)
	if !lNum || !rNum {
		return nil, scriptErr(x.line, "%q needs two numbers, got %s and %s", x.op, typeName(l), typeName(r))
	}
	switch x.op {
	case "+":
		return lf + rf, nil
	case "-":
		return lf - rf, nil
	case "*":
		return lf * rf, nil
	case "/":
		if rf == 0 {
			return nil, scriptErr(x.line, "division by zero")
		}
		return lf / rf, nil
	case "%":
		return nil, scriptErr(x.line, "%% needs two integers")
	case "<":
		return lf < rf, nil
	case "<=":
		return lf <= rf, nil
	case ">":
		return lf > rf, nil
	case ">=":
		return lf >= rf, nil
	}
	return nil, scriptErr(x.line, "internal: unknown operator %q", x.op)
}

func toFloat(v any) (float64, bool) {
	switch v := v.(type) {
	case int64:
		return float64(v), true
	case float64:
		return v, true
	}
	return 0, false
}

// valueEq compares two script values: numbers numerically across the
// int/float divide, containers structurally.
func valueEq(a, b any) bool {
	if af, aok := toFloat(a); aok {
		bf, bok := toFloat(b)
		return bok && af == bf
	}
	return reflect.DeepEqual(a, b)
}

func typeName(v any) string {
	switch v.(type) {
	case nil:
		return "nil"
	case bool:
		return "bool"
	case int64:
		return "int"
	case float64:
		return "float"
	case string:
		return "string"
	case []any:
		return "list"
	case map[string]any:
		return "map"
	case *Builtin:
		return "builtin"
	case *funcVal:
		return "function"
	}
	return fmt.Sprintf("%T", v)
}

// scriptError distinguishes errors that already carry a script line.
type scriptError struct{ msg string }

func (e scriptError) Error() string { return e.msg }

// formatValue renders a script value for print()/str().
func formatValue(v any) string {
	switch v := v.(type) {
	case nil:
		return "nil"
	case bool:
		return fmt.Sprintf("%t", v)
	case int64:
		return fmt.Sprintf("%d", v)
	case float64:
		return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.6f", v), "0"), ".")
	case string:
		return v
	case []any:
		var sb strings.Builder
		sb.WriteByte('[')
		for i, el := range v {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(formatValueQuoted(el))
		}
		sb.WriteByte(']')
		return sb.String()
	case map[string]any:
		keys := make([]string, 0, len(v))
		for k := range v {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var sb strings.Builder
		sb.WriteByte('{')
		for i, k := range keys {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(k)
			sb.WriteString(": ")
			sb.WriteString(formatValueQuoted(v[k]))
		}
		sb.WriteByte('}')
		return sb.String()
	case *Builtin:
		return "builtin " + v.Name
	case *funcVal:
		return fmt.Sprintf("fn(%s)", strings.Join(v.params, ", "))
	}
	return fmt.Sprintf("%v", v)
}

// formatValueQuoted is formatValue with strings quoted — used inside
// container renderings where bare strings would be ambiguous.
func formatValueQuoted(v any) string {
	if s, ok := v.(string); ok {
		return fmt.Sprintf("%q", s)
	}
	return formatValue(v)
}
