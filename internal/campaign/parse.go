package campaign

// AST and recursive-descent parser of the campaign language — an
// expression/statement subset deliberately too small to need a
// toolchain: let/assignment, if/else, for-in, while, break/continue/
// return, calls, index/field access, list and map literals, `fn`
// function literals, and the usual operators. Callables are the host
// bindings registered on the interpreter plus script-defined `fn`
// values (closures over their defining scope), which exist so scripts
// can hand strategy callbacks to register_strategy.

import "fmt"

// Expressions.
type (
	litExpr struct { // nil, bool, int64, float64, string
		val  any
		line int
	}
	identExpr struct {
		name string
		line int
	}
	listExpr struct {
		elems []expr
		line  int
	}
	mapExpr struct {
		keys []string
		vals []expr
		line int
	}
	unaryExpr struct {
		op   string
		x    expr
		line int
	}
	binaryExpr struct {
		op   string
		x, y expr
		line int
	}
	callExpr struct {
		fn   expr
		args []expr
		line int
	}
	indexExpr struct {
		x, idx expr
		line   int
	}
	fieldExpr struct {
		x    expr
		name string
		line int
	}
	fnExpr struct { // fn(params) { body } — a function literal
		params []string
		body   []stmt
		line   int
	}
)

type expr interface{ pos() int }

func (e *litExpr) pos() int    { return e.line }
func (e *identExpr) pos() int  { return e.line }
func (e *listExpr) pos() int   { return e.line }
func (e *mapExpr) pos() int    { return e.line }
func (e *unaryExpr) pos() int  { return e.line }
func (e *binaryExpr) pos() int { return e.line }
func (e *callExpr) pos() int   { return e.line }
func (e *indexExpr) pos() int  { return e.line }
func (e *fieldExpr) pos() int  { return e.line }
func (e *fnExpr) pos() int     { return e.line }

// Statements.
type (
	letStmt struct {
		name string
		val  expr
		line int
	}
	assignStmt struct {
		target expr // identExpr, indexExpr, or fieldExpr
		val    expr
		line   int
	}
	exprStmt struct {
		x expr
	}
	ifStmt struct {
		cond       expr
		then, alt  []stmt // alt may hold a single nested ifStmt (else if)
		line       int
	}
	forStmt struct {
		name string
		iter expr
		body []stmt
		line int
	}
	whileStmt struct {
		cond expr
		body []stmt
		line int
	}
	breakStmt    struct{ line int }
	continueStmt struct{ line int }
	returnStmt   struct {
		val  expr // nil for bare return
		line int
	}
)

type stmt interface{ stmtPos() int }

func (s *letStmt) stmtPos() int      { return s.line }
func (s *assignStmt) stmtPos() int   { return s.line }
func (s *exprStmt) stmtPos() int     { return s.x.pos() }
func (s *ifStmt) stmtPos() int       { return s.line }
func (s *forStmt) stmtPos() int      { return s.line }
func (s *whileStmt) stmtPos() int    { return s.line }
func (s *breakStmt) stmtPos() int    { return s.line }
func (s *continueStmt) stmtPos() int { return s.line }
func (s *returnStmt) stmtPos() int   { return s.line }

type parser struct {
	toks []token
	i    int
}

// Parse parses a campaign script into its statement list. It never
// panics; malformed input yields an error with a line number.
func Parse(src string) ([]stmt, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog, err := p.stmts(tEOF, "")
	if err != nil {
		return nil, err
	}
	return prog, nil
}

func (p *parser) peek() token { return p.toks[p.i] }

func (p *parser) next() token {
	t := p.toks[p.i]
	if p.toks[p.i].kind != tEOF {
		p.i++
	}
	return t
}

// skipNL consumes newline tokens — used wherever a line break cannot
// terminate a construct (inside brackets, after commas/operators).
func (p *parser) skipNL() {
	for p.peek().kind == tNewline {
		p.next()
	}
}

func (p *parser) isOp(text string) bool {
	t := p.peek()
	return t.kind == tOp && t.text == text
}

func (p *parser) acceptOp(text string) bool {
	if p.isOp(text) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectOp(text string) error {
	if !p.acceptOp(text) {
		return scriptErr(p.peek().line, "expected %q, found %s", text, p.peek())
	}
	return nil
}

func (p *parser) isKeyword(name string) bool {
	t := p.peek()
	return t.kind == tIdent && t.text == name
}

// stmts parses statements until the closer ("}" operator or EOF).
func (p *parser) stmts(end tokKind, closeOp string) ([]stmt, error) {
	var out []stmt
	for {
		p.skipNL()
		t := p.peek()
		if t.kind == end && closeOp == "" {
			return out, nil
		}
		if closeOp != "" && t.kind == tOp && t.text == closeOp {
			return out, nil
		}
		if t.kind == tEOF {
			if closeOp != "" {
				return nil, scriptErr(t.line, "expected %q before end of script", closeOp)
			}
			return out, nil
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
		// Statement terminator: newline, ';', the block closer, or EOF.
		switch nt := p.peek(); {
		case nt.kind == tNewline:
			p.next()
		case nt.kind == tOp && nt.text == ";":
			p.next()
		case nt.kind == tOp && nt.text == "}" && closeOp == "}":
		case nt.kind == tEOF:
		default:
			return nil, scriptErr(nt.line, "expected end of statement, found %s", nt)
		}
	}
}

func (p *parser) block() ([]stmt, error) {
	if err := p.expectOp("{"); err != nil {
		return nil, err
	}
	body, err := p.stmts(tOp, "}")
	if err != nil {
		return nil, err
	}
	if err := p.expectOp("}"); err != nil {
		return nil, err
	}
	return body, nil
}

func (p *parser) stmt() (stmt, error) {
	t := p.peek()
	switch {
	case p.isKeyword("let"):
		p.next()
		name := p.peek()
		if name.kind != tIdent {
			return nil, scriptErr(name.line, "expected variable name after let, found %s", name)
		}
		if isReserved(name.text) {
			return nil, scriptErr(name.line, "cannot use keyword %q as a variable name", name.text)
		}
		p.next()
		if err := p.expectOp("="); err != nil {
			return nil, err
		}
		val, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &letStmt{name: name.text, val: val, line: t.line}, nil

	case p.isKeyword("if"):
		return p.ifStmt()

	case p.isKeyword("for"):
		p.next()
		name := p.peek()
		if name.kind != tIdent || isReserved(name.text) {
			return nil, scriptErr(name.line, "expected loop variable after for, found %s", name)
		}
		p.next()
		if !p.isKeyword("in") {
			return nil, scriptErr(p.peek().line, "expected \"in\", found %s", p.peek())
		}
		p.next()
		iter, err := p.expr()
		if err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &forStmt{name: name.text, iter: iter, body: body, line: t.line}, nil

	case p.isKeyword("while"):
		p.next()
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &whileStmt{cond: cond, body: body, line: t.line}, nil

	case p.isKeyword("break"):
		p.next()
		return &breakStmt{line: t.line}, nil

	case p.isKeyword("continue"):
		p.next()
		return &continueStmt{line: t.line}, nil

	case p.isKeyword("return"):
		p.next()
		nt := p.peek()
		if nt.kind == tNewline || nt.kind == tEOF || (nt.kind == tOp && (nt.text == "}" || nt.text == ";")) {
			return &returnStmt{line: t.line}, nil
		}
		val, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &returnStmt{val: val, line: t.line}, nil
	}

	x, err := p.expr()
	if err != nil {
		return nil, err
	}
	if p.acceptOp("=") {
		switch x.(type) {
		case *identExpr, *indexExpr, *fieldExpr:
		default:
			return nil, scriptErr(t.line, "invalid assignment target")
		}
		val, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &assignStmt{target: x, val: val, line: t.line}, nil
	}
	return &exprStmt{x: x}, nil
}

func (p *parser) ifStmt() (stmt, error) {
	t := p.next() // "if"
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	then, err := p.block()
	if err != nil {
		return nil, err
	}
	s := &ifStmt{cond: cond, then: then, line: t.line}
	// "else" must follow on the same logical line as "}".
	if p.isKeyword("else") {
		p.next()
		if p.isKeyword("if") {
			nested, err := p.ifStmt()
			if err != nil {
				return nil, err
			}
			s.alt = []stmt{nested}
		} else {
			alt, err := p.block()
			if err != nil {
				return nil, err
			}
			s.alt = alt
		}
	}
	return s, nil
}

func isReserved(name string) bool {
	switch name {
	case "let", "if", "else", "for", "in", "while", "break", "continue",
		"return", "true", "false", "nil", "fn":
		return true
	}
	return false
}

// Expression parsing, by descending precedence.

// binLevels orders binary operators from loosest to tightest.
var binLevels = [][]string{
	{"||"},
	{"&&"},
	{"==", "!="},
	{"<", "<=", ">", ">="},
	{"+", "-"},
	{"*", "/", "%"},
}

func (p *parser) expr() (expr, error) { return p.binary(0) }

func (p *parser) binary(level int) (expr, error) {
	if level >= len(binLevels) {
		return p.unary()
	}
	x, err := p.binary(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		matched := ""
		for _, op := range binLevels[level] {
			if p.isOp(op) {
				matched = op
				break
			}
		}
		if matched == "" {
			return x, nil
		}
		opTok := p.next()
		p.skipNL()
		y, err := p.binary(level + 1)
		if err != nil {
			return nil, err
		}
		x = &binaryExpr{op: matched, x: x, y: y, line: opTok.line}
	}
}

func (p *parser) unary() (expr, error) {
	if p.isOp("!") || p.isOp("-") {
		t := p.next()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &unaryExpr{op: t.text, x: x, line: t.line}, nil
	}
	return p.postfix()
}

func (p *parser) postfix() (expr, error) {
	x, err := p.primary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.isOp("("):
			t := p.next()
			var args []expr
			p.skipNL()
			for !p.isOp(")") {
				a, err := p.expr()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
				p.skipNL()
				if !p.acceptOp(",") {
					break
				}
				p.skipNL()
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			x = &callExpr{fn: x, args: args, line: t.line}
		case p.isOp("["):
			t := p.next()
			p.skipNL()
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			p.skipNL()
			if err := p.expectOp("]"); err != nil {
				return nil, err
			}
			x = &indexExpr{x: x, idx: idx, line: t.line}
		case p.isOp("."):
			t := p.next()
			name := p.peek()
			if name.kind != tIdent {
				return nil, scriptErr(name.line, "expected field name after '.', found %s", name)
			}
			p.next()
			x = &fieldExpr{x: x, name: name.text, line: t.line}
		default:
			return x, nil
		}
	}
}

func (p *parser) primary() (expr, error) {
	t := p.peek()
	switch {
	case t.kind == tInt:
		p.next()
		return &litExpr{val: t.i64, line: t.line}, nil
	case t.kind == tFloat:
		p.next()
		return &litExpr{val: t.f64, line: t.line}, nil
	case t.kind == tString:
		p.next()
		return &litExpr{val: t.text, line: t.line}, nil
	case t.kind == tIdent && t.text == "fn":
		return p.fnLiteral()
	case t.kind == tIdent:
		p.next()
		switch t.text {
		case "true":
			return &litExpr{val: true, line: t.line}, nil
		case "false":
			return &litExpr{val: false, line: t.line}, nil
		case "nil":
			return &litExpr{val: nil, line: t.line}, nil
		}
		if isReserved(t.text) {
			return nil, scriptErr(t.line, "unexpected keyword %q", t.text)
		}
		return &identExpr{name: t.text, line: t.line}, nil
	case t.kind == tOp && t.text == "(":
		p.next()
		p.skipNL()
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		p.skipNL()
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return x, nil
	case t.kind == tOp && t.text == "[":
		p.next()
		var elems []expr
		p.skipNL()
		for !p.isOp("]") {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			elems = append(elems, e)
			p.skipNL()
			if !p.acceptOp(",") {
				break
			}
			p.skipNL()
		}
		if err := p.expectOp("]"); err != nil {
			return nil, err
		}
		return &listExpr{elems: elems, line: t.line}, nil
	case t.kind == tOp && t.text == "{":
		p.next()
		m := &mapExpr{line: t.line}
		p.skipNL()
		for !p.isOp("}") {
			k := p.peek()
			var key string
			switch {
			case k.kind == tIdent && !isReserved(k.text):
				key = k.text
			case k.kind == tString:
				key = k.text
			default:
				return nil, scriptErr(k.line, "expected map key (name or string), found %s", k)
			}
			p.next()
			if err := p.expectOp(":"); err != nil {
				return nil, err
			}
			p.skipNL()
			v, err := p.expr()
			if err != nil {
				return nil, err
			}
			m.keys = append(m.keys, key)
			m.vals = append(m.vals, v)
			p.skipNL()
			if !p.acceptOp(",") {
				break
			}
			p.skipNL()
		}
		if err := p.expectOp("}"); err != nil {
			return nil, err
		}
		return m, nil
	default:
		return nil, scriptErr(t.line, "unexpected %s", t)
	}
}

// fnLiteral parses `fn(params) { body }`. Parameter names follow
// variable-name rules and must be distinct.
func (p *parser) fnLiteral() (expr, error) {
	t := p.next() // "fn"
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	var params []string
	p.skipNL()
	for !p.isOp(")") {
		name := p.peek()
		if name.kind != tIdent || isReserved(name.text) {
			return nil, scriptErr(name.line, "expected parameter name, found %s", name)
		}
		for _, prev := range params {
			if prev == name.text {
				return nil, scriptErr(name.line, "duplicate parameter %q", name.text)
			}
		}
		params = append(params, name.text)
		p.next()
		p.skipNL()
		if !p.acceptOp(",") {
			break
		}
		p.skipNL()
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	return &fnExpr{params: params, body: body, line: t.line}, nil
}

var _ = fmt.Sprintf // keep fmt linked for scriptErr callers above
