package campaign

// The lexer of the .oraql campaign language. The whole front end is
// error-returning by contract — no panics, ever — because untrusted
// script bodies arrive over POST /v1/campaign and the native fuzz
// target FuzzCampaignScriptNoPanic holds the parser and evaluator to
// exactly that bar.

import (
	"fmt"
	"strconv"
	"strings"
)

type tokKind int

const (
	tEOF tokKind = iota
	tNewline
	tIdent
	tInt
	tFloat
	tString
	tOp
)

type token struct {
	kind tokKind
	text string // identifier name, operator spelling, or string value
	line int
	i64  int64
	f64  float64
}

func (t token) String() string {
	switch t.kind {
	case tEOF:
		return "end of script"
	case tNewline:
		return "newline"
	case tString:
		return strconv.Quote(t.text)
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// operators, longest first so the lexer matches ">=" before ">".
var operators = []string{
	"==", "!=", "<=", ">=", "&&", "||",
	"(", ")", "{", "}", "[", "]", ",", ":", ".", ";",
	"=", "<", ">", "+", "-", "*", "/", "%", "!",
}

// scriptErr is a script-level failure with a source line attached.
// The scriptError type (eval.go) marks errors that already carry a
// line so host-binding failures are not double-prefixed.
func scriptErr(line int, format string, args ...any) error {
	return scriptError{msg: fmt.Sprintf("campaign: line %d: %s", line, fmt.Sprintf(format, args...))}
}

// lex tokenizes the whole script up front. Consecutive newlines
// collapse into one tNewline token.
func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	emit := func(t token) {
		if t.kind == tNewline && (len(toks) == 0 || toks[len(toks)-1].kind == tNewline) {
			return // collapse runs and leading newlines
		}
		toks = append(toks, t)
	}
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			emit(token{kind: tNewline, line: line})
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '#' || (c == '/' && i+1 < len(src) && src[i+1] == '/'):
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '"':
			val, n, err := lexString(src[i:], line)
			if err != nil {
				return nil, err
			}
			emit(token{kind: tString, text: val, line: line})
			i += n
		case c >= '0' && c <= '9':
			start := i
			isFloat := false
			for i < len(src) && (isDigit(src[i]) || src[i] == '.' || src[i] == '_') {
				if src[i] == '.' {
					// Two dots ("1..2") or a method-style dot after the
					// number stops the literal.
					if isFloat || i+1 >= len(src) || !isDigit(src[i+1]) {
						break
					}
					isFloat = true
				}
				i++
			}
			text := strings.ReplaceAll(src[start:i], "_", "")
			if isFloat {
				f, err := strconv.ParseFloat(text, 64)
				if err != nil {
					return nil, scriptErr(line, "bad number %q", src[start:i])
				}
				emit(token{kind: tFloat, text: text, line: line, f64: f})
			} else {
				v, err := strconv.ParseInt(text, 10, 64)
				if err != nil {
					return nil, scriptErr(line, "bad number %q", src[start:i])
				}
				emit(token{kind: tInt, text: text, line: line, i64: v})
			}
		case isIdentStart(c):
			start := i
			for i < len(src) && isIdentPart(src[i]) {
				i++
			}
			emit(token{kind: tIdent, text: src[start:i], line: line})
		default:
			op := ""
			for _, cand := range operators {
				if strings.HasPrefix(src[i:], cand) {
					op = cand
					break
				}
			}
			if op == "" {
				return nil, scriptErr(line, "unexpected character %q", string(c))
			}
			emit(token{kind: tOp, text: op, line: line})
			i += len(op)
		}
	}
	toks = append(toks, token{kind: tEOF, line: line})
	return toks, nil
}

// lexString scans a double-quoted literal at the start of s and
// returns its value and consumed length.
func lexString(s string, line int) (string, int, error) {
	var b strings.Builder
	i := 1 // opening quote
	for i < len(s) {
		switch c := s[i]; c {
		case '"':
			return b.String(), i + 1, nil
		case '\n':
			return "", 0, scriptErr(line, "unterminated string")
		case '\\':
			if i+1 >= len(s) {
				return "", 0, scriptErr(line, "unterminated string escape")
			}
			switch e := s[i+1]; e {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case '"':
				b.WriteByte('"')
			case '\\':
				b.WriteByte('\\')
			default:
				return "", 0, scriptErr(line, `unknown string escape \%s`, string(e))
			}
			i += 2
		default:
			b.WriteByte(c)
			i++
		}
	}
	return "", 0, scriptErr(line, "unterminated string")
}

func isDigit(c byte) bool      { return c >= '0' && c <= '9' }
func isIdentStart(c byte) bool { return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') }
func isIdentPart(c byte) bool  { return isIdentStart(c) || isDigit(c) }
