package campaign

import (
	"bytes"
	"strings"
	"testing"
)

func runScript(t *testing.T, src string, opts Options) (*Result, string) {
	t.Helper()
	var out bytes.Buffer
	if opts.Out == nil {
		opts.Out = &out
	}
	res, err := Run(src, opts)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	return res, out.String()
}

func runExpectError(t *testing.T, src, wantSub string) {
	t.Helper()
	_, err := Run(src, Options{})
	if err == nil {
		t.Fatalf("script succeeded, want error containing %q", wantSub)
	}
	if !strings.Contains(err.Error(), wantSub) {
		t.Fatalf("error %q does not contain %q", err.Error(), wantSub)
	}
}

func TestFnLiteralsAndClosures(t *testing.T) {
	res, _ := runScript(t, `
		let add = fn(a, b) { return a + b }
		let make_counter = fn() {
			let n = 0
			return fn() {
				n = n + 1
				return n
			}
		}
		let c = make_counter()
		c()
		c()
		let fact = fn(n) {
			if n <= 1 { return 1 }
			return n * fact(n - 1)
		}
		let apply = fn(f, x) { return f(x, x) }
		return [add(2, 3), c(), fact(5), apply(add, 7), str(add)]
	`, Options{})
	got, ok := res.Value.([]any)
	if !ok || len(got) != 5 {
		t.Fatalf("result = %#v, want 5-element list", res.Value)
	}
	want := []any{int64(5), int64(3), int64(120), int64(14), "fn(a, b)"}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("result[%d] = %#v, want %#v", i, got[i], want[i])
		}
	}
}

func TestFnErrors(t *testing.T) {
	runExpectError(t, `let f = fn(a) { return a }
		f(1, 2)`, "takes 1 argument(s), got 2")
	runExpectError(t, `let f = fn() { break }
		f()`, "break outside a loop")
	runExpectError(t, `let x = 1
		x(2)`, "int is not callable")
	// A function that runs off its end returns nil.
	res, _ := runScript(t, `
		let f = fn() { let x = 1 }
		return f() == nil
	`, Options{})
	if res.Value != true {
		t.Errorf("bare function returned %#v, want nil", res.Value)
	}
}

func TestFnParseErrors(t *testing.T) {
	for _, c := range []struct{ src, wantSub string }{
		{`let f = fn(a, a) { return a }`, "duplicate parameter"},
		{`let f = fn(for) { return 1 }`, "expected parameter name"},
		{`let fn = 3`, `cannot use keyword "fn"`},
		{`let f = fn(a) return a`, `expected "{"`},
	} {
		if _, err := Parse(c.src); err == nil || !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("Parse(%q) error = %v, want containing %q", c.src, err, c.wantSub)
		}
	}
}

// Unbounded recursion must die on the call-depth limit — a script
// error, not a Go stack overflow.
func TestFnCallDepthLimit(t *testing.T) {
	runExpectError(t, `
		let loop = fn(n) { return loop(n + 1) }
		loop(0)
	`, "call depth limit exceeded")
}

func TestProbeBindingsRequireStrategyContext(t *testing.T) {
	for _, call := range []string{
		"probe_test([true])", "probe_pad([])", "probe_pfail(0, 1)",
		"probe_workers()", "probe_has_priors()",
	} {
		runExpectError(t, call, "only available inside a strategy function")
	}
}

func TestRegisterStrategyValidation(t *testing.T) {
	runExpectError(t, `register_strategy(3, fn(n) { return [] })`, "name must be a string")
	runExpectError(t, `register_strategy("x", 3)`, "must be a function")
	runExpectError(t, `register_strategy("x", fn(a, b) { return [] })`, "exactly one parameter")
	runExpectError(t, `register_strategy("chunked", fn(n) { return [] })`, `"chunked" already registered`)
	runExpectError(t, `
		register_strategy("mine", fn(n) { return [] })
		register_strategy("mine", fn(n) { return [] })
	`, `duplicate entry "mine"`)
	runExpectError(t, `probe({config: "minigmg-sse", strategy: "nowhere"})`, "unknown strategy")
}

// register_strategy entries live in a per-run overlay: visible to the
// run's strategies() listing, invisible to other runs and to the
// global table.
func TestRegisterStrategyIsRunScoped(t *testing.T) {
	res, _ := runScript(t, `
		let before = len(strategies())
		register_strategy("scoped", fn(n) { return [] })
		let names = []
		for s in strategies() {
			names = append(names, s.name)
		}
		return {before: before, after: len(names), has: contains(names, "scoped")}
	`, Options{})
	m := res.Value.(map[string]any)
	if m["has"] != true {
		t.Fatalf("strategies() does not list the registered strategy: %#v", m)
	}
	if m["after"] != m["before"].(int64)+1 {
		t.Fatalf("overlay added %d - %d entries, want 1", m["after"], m["before"])
	}

	// A fresh run must not see the previous run's registration.
	res2, _ := runScript(t, `
		let names = []
		for s in strategies() {
			names = append(names, s.name)
		}
		return contains(names, "scoped")
	`, Options{})
	if res2.Value != false {
		t.Fatal("script-registered strategy leaked into a later run")
	}
}

// A scripted strategy probes end-to-end through the driver and must
// reproduce the compiled-in linear strategy byte-for-byte when it
// issues the same tests.
func TestScriptStrategyMatchesCompiledLinear(t *testing.T) {
	script := `
		register_strategy("mine", fn(n) {
			if probe_workers() < 1 {
				fail("bad worker count")
			}
			if probe_pfail(0, n) < 0.0 {
				fail("bad pfail")
			}
			let decided = []
			for i in range(n) {
				decided = append(decided, false)
			}
			for i in range(n) {
				let cand = []
				for j in range(n) {
					if j == i {
						cand = append(cand, true)
					} else {
						cand = append(cand, decided[j])
					}
				}
				if probe_test(probe_pad(cand)) {
					decided[i] = true
				}
			}
			return decided
		})
		let mine = probe({config: "minife-openmp", strategy: "mine"})
		let ref = probe({config: "minife-openmp", strategy: "linear"})
		return {
			same_seq: mine.final_seq == ref.final_seq,
			same_exe: mine.exe_hash == ref.exe_hash,
			convictions: len(mine.guilty_queries),
		}
	`
	res, _ := runScript(t, script, Options{})
	m := res.Value.(map[string]any)
	if m["same_seq"] != true || m["same_exe"] != true {
		t.Fatalf("scripted strategy diverged from compiled-in linear: %#v", m)
	}
	// The strategy must actually have been exercised: minife-openmp
	// convicts (it is not on the fully-optimistic fast path, which
	// would skip Solve entirely).
	if m["convictions"].(int64) == 0 {
		t.Fatalf("minife-openmp should convict at least one query: %#v", m)
	}
}

// A strategy whose callback returns garbage must surface a script
// error from probe, not corrupt the campaign. The config must convict
// — a fully-optimistic program resolves on the fast path and never
// invokes the strategy.
func TestScriptStrategyBadReturn(t *testing.T) {
	runExpectError(t, `
		register_strategy("broken", fn(n) { return "nope" })
		probe({config: "minife-openmp", strategy: "broken"})
	`, "expected a list of booleans")
	runExpectError(t, `
		register_strategy("short", fn(n) { return [true] })
		probe({config: "minife-openmp", strategy: "short"})
	`, "returned 1 decision bits")
}
