package campaign

// The ORAQL bindings: the host functions a campaign script can call.
// Everything funnels through the same driver/pipeline/difftest entry
// points the CLIs and oraql-serve use, so a scripted campaign is
// byte-identical to its compiled-in equivalent — same FinalSeq, same
// verdicts, same exe hashes — for any worker count. The sandbox is
// structural: this is the complete surface, and none of it reaches
// the filesystem or spawns processes.

import (
	"bytes"
	"encoding/json"
	"fmt"

	"github.com/oraql/go-oraql/internal/aa"
	"github.com/oraql/go-oraql/internal/apps"
	"github.com/oraql/go-oraql/internal/difftest"
	"github.com/oraql/go-oraql/internal/driver"
	"github.com/oraql/go-oraql/internal/minic"
	"github.com/oraql/go-oraql/internal/oraql"
	"github.com/oraql/go-oraql/internal/pipeline"
	"github.com/oraql/go-oraql/internal/progen"
	"github.com/oraql/go-oraql/internal/registry"
	"github.com/oraql/go-oraql/internal/report"
)

func oraqlBuiltins() []*Builtin {
	// intro lists a registry; the registry is resolved per call so
	// strategies() can reflect the run's overlay (script-registered
	// strategies) rather than only the global table.
	intro := func(name string, reg func(in *interp) *registry.Registry, doc string) *Builtin {
		return &Builtin{
			Name: name,
			Doc:  doc,
			Fn: func(in *interp, line int, args []any) (any, error) {
				if len(args) != 0 {
					return nil, scriptErr(line, "%s takes no arguments", name)
				}
				var out []any
				for _, e := range reg(in).Entries() {
					out = append(out, map[string]any{
						"name":        e.Name,
						"description": e.Description,
					})
				}
				return out, nil
			},
		}
	}
	static := func(r *registry.Registry) func(in *interp) *registry.Registry {
		return func(in *interp) *registry.Registry { return r }
	}
	return []*Builtin{
		intro("strategies", (*interp).strategyReg, "strategies() — registered probing strategies (including this run's register_strategy entries) as [{name, description}]"),
		intro("aa_analyses", static(registry.AAAnalyses), "aa_analyses() — registered alias analyses as [{name, description}]"),
		intro("aa_chains", static(registry.AAChains), "aa_chains() — registered AA chain presets as [{name, description}]"),
		intro("app_configs", static(registry.AppConfigs), "app_configs() — registered application configurations as [{name, description}]"),
		intro("grammars", static(registry.Grammars), "grammars() — registered generator grammar profiles as [{name, description}]"),
		{
			Name: "compile",
			Doc:  "compile({config|source, model, aa_chain, seq, oraql, target, opt_level}) — one compilation; returns the compile report",
			Fn:   bindCompile,
		},
		{
			Name: "compile_batch",
			Doc:  "compile_batch([{...}, ...]) — compile a list of option maps, deduplicated by content; returns the reports in order",
			Fn:   bindCompileBatch,
		},
		{
			Name: "probe",
			Doc:  "probe({config|source, model, strategy, aa_chain, workers, max_tests, target}) — full ORAQL probing campaign; returns the probe report",
			Fn:   bindProbe,
		},
		{
			Name: "sweep",
			Doc:  "sweep({configs, strategy, aa_chain, workers, max_tests}) — probe a list of app configs (default: all); returns a list of probe reports",
			Fn:   bindSweep,
		},
		{
			Name: "fuzz",
			Doc:  "fuzz({n, seed, grammar, stmts, workers, inject, triage, max_divergences, seed_from_warehouse}) — differential fuzzing campaign; returns the campaign report",
			Fn:   bindFuzz,
		},
	}
}

// opts is a type-checked view of a script's option map.
type opts struct {
	m    map[string]any
	line int
	used map[string]bool
}

func newOpts(line int, args []any, what string) (*opts, error) {
	switch len(args) {
	case 0:
		return &opts{m: map[string]any{}, line: line, used: map[string]bool{}}, nil
	case 1:
		m, ok := args[0].(map[string]any)
		if !ok {
			return nil, scriptErr(line, "%s takes an options map, got %s", what, typeName(args[0]))
		}
		return &opts{m: m, line: line, used: map[string]bool{}}, nil
	}
	return nil, scriptErr(line, "%s takes at most one options map, got %d arguments", what, len(args))
}

func (o *opts) str(key string) (string, error) {
	o.used[key] = true
	v, ok := o.m[key]
	if !ok || v == nil {
		return "", nil
	}
	s, ok := v.(string)
	if !ok {
		return "", scriptErr(o.line, "option %q must be a string, got %s", key, typeName(v))
	}
	return s, nil
}

func (o *opts) integer(key string) (int, error) {
	o.used[key] = true
	v, ok := o.m[key]
	if !ok || v == nil {
		return 0, nil
	}
	i, ok := v.(int64)
	if !ok {
		return 0, scriptErr(o.line, "option %q must be an integer, got %s", key, typeName(v))
	}
	return int(i), nil
}

func (o *opts) boolean(key string) (bool, error) {
	o.used[key] = true
	v, ok := o.m[key]
	if !ok || v == nil {
		return false, nil
	}
	b, ok := v.(bool)
	if !ok {
		return false, scriptErr(o.line, "option %q must be a boolean, got %s", key, typeName(v))
	}
	return b, nil
}

func (o *opts) strList(key string) ([]string, error) {
	o.used[key] = true
	v, ok := o.m[key]
	if !ok || v == nil {
		return nil, nil
	}
	l, ok := v.([]any)
	if !ok {
		return nil, scriptErr(o.line, "option %q must be a list of strings, got %s", key, typeName(v))
	}
	out := make([]string, len(l))
	for i, el := range l {
		s, ok := el.(string)
		if !ok {
			return nil, scriptErr(o.line, "option %q must be a list of strings; element %d is %s", key, i, typeName(el))
		}
		out[i] = s
	}
	return out, nil
}

// finish rejects unknown keys so typos fail loudly instead of being
// silently ignored.
func (o *opts) finish(what string) error {
	for k := range o.m {
		if !o.used[k] {
			return scriptErr(o.line, "%s: unknown option %q", what, k)
		}
	}
	return nil
}

// program resolves the config/source option pair shared by compile
// and probe into a pipeline config skeleton.
func (o *opts) program(what string) (pipeline.Config, error) {
	id, err := o.str("config")
	if err != nil {
		return pipeline.Config{}, err
	}
	source, err := o.str("source")
	if err != nil {
		return pipeline.Config{}, err
	}
	switch {
	case id != "":
		app := apps.ByID(id)
		if app == nil {
			return pipeline.Config{}, scriptErr(o.line, "%s: unknown configuration %q", what, id)
		}
		return pipeline.Config{
			Name: app.ID, Source: app.Source, SourceFile: app.SourceName,
			Frontend: app.Frontend,
		}, nil
	case source != "":
		model, err := o.str("model")
		if err != nil {
			return pipeline.Config{}, err
		}
		fortran, err := o.boolean("fortran")
		if err != nil {
			return pipeline.Config{}, err
		}
		views, err := o.boolean("views")
		if err != nil {
			return pipeline.Config{}, err
		}
		m, ok := map[string]minic.Model{
			"": minic.ModelSeq, "seq": minic.ModelSeq, "openmp": minic.ModelOpenMP,
			"tasks": minic.ModelTasks, "mpi": minic.ModelMPI, "offload": minic.ModelOffload,
		}[model]
		if !ok {
			return pipeline.Config{}, scriptErr(o.line, "%s: unknown model %q", what, model)
		}
		d := minic.DialectC
		if fortran {
			d = minic.DialectFortran
		}
		name, err := o.str("name")
		if err != nil {
			return pipeline.Config{}, err
		}
		if name == "" {
			name = "campaign.mc"
		}
		return pipeline.Config{
			Name: name, Source: source, SourceFile: name,
			Frontend: minic.Options{Dialect: d, Model: m, Views: views},
		}, nil
	}
	return pipeline.Config{}, scriptErr(o.line, "%s needs a config name or a source string", what)
}

// compileConfigFromOpts resolves compile's option map into a ready
// pipeline config; shared by compile and compile_batch so a batched
// item is configured byte-identically to its one-shot equivalent.
func compileConfigFromOpts(in *interp, o *opts, what string) (cfg pipeline.Config, hadORAQL bool, err error) {
	cfg, err = o.program(what)
	if err != nil {
		return cfg, false, err
	}
	if cfg.OptLevel, err = o.integer("opt_level"); err != nil {
		return cfg, false, err
	}
	if cfg.AAChain, err = o.str("aa_chain"); err != nil {
		return cfg, false, err
	}
	seq, err := o.str("seq")
	if err != nil {
		return cfg, false, err
	}
	useORAQL, err := o.boolean("oraql")
	if err != nil {
		return cfg, false, err
	}
	target, err := o.str("target")
	if err != nil {
		return cfg, false, err
	}
	hadORAQL = useORAQL || seq != ""
	if hadORAQL {
		s, err := oraql.ParseSeq(seq)
		if err != nil {
			return cfg, false, scriptErr(o.line, "%s: bad seq: %v", what, err)
		}
		cfg.ORAQL = &oraql.Options{Seq: s, Target: target}
	}
	if err := o.finish(what); err != nil {
		return cfg, false, err
	}
	cfg.CompileWorkers = in.opts.CompileWorkers
	if cfg.ORAQL == nil {
		cfg.DiskCache = in.opts.Cache
	}
	return cfg, hadORAQL, nil
}

func bindCompile(in *interp, line int, args []any) (any, error) {
	o, err := newOpts(line, args, "compile")
	if err != nil {
		return nil, err
	}
	cfg, hadORAQL, err := compileConfigFromOpts(in, o, "compile")
	if err != nil {
		return nil, err
	}
	cr, err := pipeline.CompileContext(in.ctx, cfg)
	if err != nil {
		return nil, err
	}
	return toScriptValue(report.NewCompileJSON(cr, false, hadORAQL))
}

// bindCompileBatch amortizes a list of compilations: items whose
// option maps are identical (canonical JSON) compile once, and every
// item's report is materialized freshly so duplicates never alias one
// mutable script value. Results come back in item order, each
// byte-identical to what a loop of compile() calls would produce.
func bindCompileBatch(in *interp, line int, args []any) (any, error) {
	if len(args) != 1 {
		return nil, scriptErr(line, "compile_batch takes one list of option maps, got %d arguments", len(args))
	}
	list, ok := args[0].([]any)
	if !ok {
		return nil, scriptErr(line, "compile_batch takes a list of option maps, got %s", typeName(args[0]))
	}
	seen := map[string]any{} // canonical item JSON -> host-form report
	out := make([]any, 0, len(list))
	for i, item := range list {
		m, ok := item.(map[string]any)
		if !ok {
			return nil, scriptErr(line, "compile_batch: element %d must be an options map, got %s", i, typeName(item))
		}
		keyBytes, err := json.Marshal(m) // map keys marshal sorted: a canonical dedup key
		if err != nil {
			return nil, scriptErr(line, "compile_batch: element %d: %v", i, err)
		}
		rep, ok := seen[string(keyBytes)]
		if !ok {
			o, err := newOpts(line, []any{m}, "compile_batch")
			if err != nil {
				return nil, err
			}
			cfg, hadORAQL, err := compileConfigFromOpts(in, o, "compile_batch")
			if err != nil {
				return nil, err
			}
			cr, err := pipeline.CompileContext(in.ctx, cfg)
			if err != nil {
				return nil, fmt.Errorf("compile_batch element %d: %w", i, err)
			}
			rep = report.NewCompileJSON(cr, false, hadORAQL)
			seen[string(keyBytes)] = rep
		}
		v, err := toScriptValue(rep)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// probeSpecFromOpts builds a benchmark spec from shared probe/sweep
// options; configOverride substitutes the per-iteration sweep config.
func probeSpecFromOpts(in *interp, o *opts, configOverride string, what string) (*driver.BenchSpec, error) {
	var spec *driver.BenchSpec
	if configOverride != "" {
		app := apps.ByID(configOverride)
		if app == nil {
			return nil, scriptErr(o.line, "%s: unknown configuration %q", what, configOverride)
		}
		spec = app.Spec()
	} else {
		id, err := o.str("config")
		if err != nil {
			return nil, err
		}
		if id != "" {
			app := apps.ByID(id)
			if app == nil {
				return nil, scriptErr(o.line, "%s: unknown configuration %q", what, id)
			}
			spec = app.Spec()
		} else {
			cfg, err := o.program(what)
			if err != nil {
				return nil, err
			}
			spec = &driver.BenchSpec{Name: cfg.Name, Compile: cfg}
		}
	}
	strategy, err := o.str("strategy")
	if err != nil {
		return nil, err
	}
	if strategy != "" {
		// Resolved against the run's overlay, so script-registered
		// strategies are selectable exactly like built-ins.
		strat, err := in.lookupStrategy(strategy)
		if err != nil {
			return nil, scriptErr(o.line, "%s: %v", what, err)
		}
		spec.Strategy = strat
	}
	chain, err := o.str("aa_chain")
	if err != nil {
		return nil, err
	}
	if chain != "" {
		if _, err := aa.ResolveChainNames(chain); err != nil {
			return nil, scriptErr(o.line, "%s: %v", what, err)
		}
		spec.Compile.AAChain = chain
	}
	if spec.Workers, err = o.integer("workers"); err != nil {
		return nil, err
	}
	if spec.Workers == 0 {
		spec.Workers = in.opts.Workers
	}
	if spec.MaxTests, err = o.integer("max_tests"); err != nil {
		return nil, err
	}
	target, err := o.str("target")
	if err != nil {
		return nil, err
	}
	if target != "" {
		spec.ORAQL.Target = target
	}
	spec.Compile.CompileWorkers = in.opts.CompileWorkers
	spec.Cache = in.opts.Cache
	spec.Log = in.opts.Log
	return spec, nil
}

func bindProbe(in *interp, line int, args []any) (any, error) {
	o, err := newOpts(line, args, "probe")
	if err != nil {
		return nil, err
	}
	spec, err := probeSpecFromOpts(in, o, "", "probe")
	if err != nil {
		return nil, err
	}
	if err := o.finish("probe"); err != nil {
		return nil, err
	}
	res, err := driver.ProbeContext(in.ctx, spec)
	if err != nil {
		return nil, err
	}
	return toScriptValue(report.NewProbeJSON(res))
}

func bindSweep(in *interp, line int, args []any) (any, error) {
	o, err := newOpts(line, args, "sweep")
	if err != nil {
		return nil, err
	}
	ids, err := o.strList("configs")
	if err != nil {
		return nil, err
	}
	if len(ids) == 0 {
		for _, c := range apps.All() {
			ids = append(ids, c.ID)
		}
	}
	var out []any
	for _, id := range ids {
		spec, err := probeSpecFromOpts(in, o, id, "sweep")
		if err != nil {
			return nil, err
		}
		in.printf("sweep: probing %s\n", id)
		res, err := driver.ProbeContext(in.ctx, spec)
		if err != nil {
			return nil, fmt.Errorf("sweep %s: %w", id, err)
		}
		v, err := toScriptValue(report.NewProbeJSON(res))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	if err := o.finish("sweep"); err != nil {
		return nil, err
	}
	return out, nil
}

func bindFuzz(in *interp, line int, args []any) (any, error) {
	o, err := newOpts(line, args, "fuzz")
	if err != nil {
		return nil, err
	}
	fo := difftest.FuzzOptions{
		Ctx:            in.ctx,
		Cache:          in.opts.Cache,
		Log:            in.opts.Log,
		CompileWorkers: in.opts.CompileWorkers,
	}
	if fo.N, err = o.integer("n"); err != nil {
		return nil, err
	}
	seed, err := o.integer("seed")
	if err != nil {
		return nil, err
	}
	fo.Seed = int64(seed)
	if fo.Seed == 0 {
		fo.Seed = 1
	}
	if fo.Workers, err = o.integer("workers"); err != nil {
		return nil, err
	}
	if fo.Workers == 0 {
		fo.Workers = in.opts.Workers
	}
	if fo.MaxDivergences, err = o.integer("max_divergences"); err != nil {
		return nil, err
	}
	grammar, err := o.str("grammar")
	if err != nil {
		return nil, err
	}
	stmts, err := o.integer("stmts")
	if err != nil {
		return nil, err
	}
	if fo.Gen, err = progen.GrammarByName(grammar, stmts); err != nil {
		return nil, scriptErr(line, "fuzz: %v", err)
	}
	fo.Grammar = grammar
	seedFromWarehouse, err := o.boolean("seed_from_warehouse")
	if err != nil {
		return nil, err
	}
	if seedFromWarehouse {
		w, err := openWarehouse(in, line, "fuzz: seed_from_warehouse")
		if err != nil {
			return nil, err
		}
		fo.PrioritySeeds = w.Load().DivergentSeeds(grammar)
	}
	// Triage defaults on, like the CLI.
	fo.Triage = true
	o.used["triage"] = true
	if v, ok := o.m["triage"]; ok {
		b, ok := v.(bool)
		if !ok {
			return nil, scriptErr(line, "option %q must be a boolean, got %s", "triage", typeName(v))
		}
		fo.Triage = b
	}
	inject, err := o.boolean("inject")
	if err != nil {
		return nil, err
	}
	if inject {
		fo.Variants = []difftest.Variant{difftest.InjectVariant()}
	}
	if err := o.finish("fuzz"); err != nil {
		return nil, err
	}
	res, err := difftest.Fuzz(fo)
	if err != nil {
		return nil, err
	}
	return toScriptValue(res)
}

// toScriptValue converts a host result into the script value model by
// a JSON round-trip, preserving integers as int64.
func toScriptValue(v any) (any, error) {
	data, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("encoding result: %w", err)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	var out any
	if err := dec.Decode(&out); err != nil {
		return nil, fmt.Errorf("decoding result: %w", err)
	}
	return normalizeNumbers(out), nil
}

func normalizeNumbers(v any) any {
	switch v := v.(type) {
	case json.Number:
		if i, err := v.Int64(); err == nil {
			return i
		}
		f, _ := v.Float64()
		return f
	case []any:
		for i := range v {
			v[i] = normalizeNumbers(v[i])
		}
		return v
	case map[string]any:
		for k := range v {
			v[k] = normalizeNumbers(v[k])
		}
		return v
	}
	return v
}
