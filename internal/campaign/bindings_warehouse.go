package campaign

// The warehouse bindings: scripted forensics over the persistent
// corpus. They only read — probe() and fuzz() already file their
// findings automatically whenever the campaign runs with a cache —
// and every result is derived deterministically from the manifest, so
// a forensics script prints byte-identical output for any worker
// count or process split. Without a cache the bindings fail loudly:
// an empty answer would be indistinguishable from an empty corpus.

import (
	"github.com/oraql/go-oraql/internal/warehouse"
)

func warehouseBuiltins() []*Builtin {
	return []*Builtin{
		{
			Name: "warehouse_stats",
			Doc:  "warehouse_stats() — corpus totals: records by kind, apps, passes, shapes, verdicts",
			Fn:   bindWarehouseStats,
		},
		{
			Name: "warehouse_query",
			Doc:  "warehouse_query({by: pass|shape|func|grammar, kind, app, grammar}) — cross-campaign recurrences, most widespread first",
			Fn:   bindWarehouseQuery,
		},
		{
			Name: "warehouse_divergent_seeds",
			Doc:  "warehouse_divergent_seeds({grammar}) — generator seeds that historically produced divergences",
			Fn:   bindWarehouseSeeds,
		},
	}
}

// openWarehouse resolves the script's warehouse or fails the call.
func openWarehouse(in *interp, line int, what string) (*warehouse.Store, error) {
	w := warehouse.Open(in.opts.Cache)
	if w == nil {
		return nil, scriptErr(line, "%s requires a persistent store (run with -cache-dir)", what)
	}
	return w, nil
}

func bindWarehouseStats(in *interp, line int, args []any) (any, error) {
	if len(args) != 0 {
		return nil, scriptErr(line, "warehouse_stats takes no arguments")
	}
	w, err := openWarehouse(in, line, "warehouse_stats")
	if err != nil {
		return nil, err
	}
	return toScriptValue(w.Load().Stats())
}

func bindWarehouseQuery(in *interp, line int, args []any) (any, error) {
	o, err := newOpts(line, args, "warehouse_query")
	if err != nil {
		return nil, err
	}
	var q warehouse.QueryOptions
	if q.By, err = o.str("by"); err != nil {
		return nil, err
	}
	if q.Kind, err = o.str("kind"); err != nil {
		return nil, err
	}
	if q.App, err = o.str("app"); err != nil {
		return nil, err
	}
	if q.Grammar, err = o.str("grammar"); err != nil {
		return nil, err
	}
	if err := o.finish("warehouse_query"); err != nil {
		return nil, err
	}
	w, err := openWarehouse(in, line, "warehouse_query")
	if err != nil {
		return nil, err
	}
	rows := w.Load().Query(q)
	if rows == nil {
		rows = []warehouse.Recurrence{} // empty corpus answers [], not null
	}
	return toScriptValue(rows)
}

func bindWarehouseSeeds(in *interp, line int, args []any) (any, error) {
	o, err := newOpts(line, args, "warehouse_divergent_seeds")
	if err != nil {
		return nil, err
	}
	grammar, err := o.str("grammar")
	if err != nil {
		return nil, err
	}
	if err := o.finish("warehouse_divergent_seeds"); err != nil {
		return nil, err
	}
	w, err := openWarehouse(in, line, "warehouse_divergent_seeds")
	if err != nil {
		return nil, err
	}
	seeds := w.Load().DivergentSeeds(grammar)
	out := make([]any, len(seeds))
	for i, s := range seeds {
		out[i] = s
	}
	return out, nil
}
