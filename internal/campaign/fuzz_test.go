package campaign

// FuzzCampaignScriptNoPanic is the sandbox's load-bearing guarantee:
// whatever bytes arrive (POST /v1/campaign takes untrusted script
// bodies), the parser and evaluator return errors — they never panic
// and never run away. The seed corpus lives in
// testdata/fuzz/FuzzCampaignScriptNoPanic; `go test` replays it on
// every run, `go test -fuzz=FuzzCampaignScriptNoPanic` explores.

import (
	"strings"
	"testing"
	"time"
)

func FuzzCampaignScriptNoPanic(f *testing.F) {
	seeds := []string{
		"",
		"let x = 1\nreturn x + 2",
		"for i in range(10) { print(i) }",
		"while true { break }",
		"let m = {a: [1, 2.5, \"s\"], b: {c: nil}}\nreturn m.a[0] == 1 && !false",
		"if 1 < 2 { return \"y\" } else { return \"n\" }",
		"return strategies() + aa_chains()",
		"probe({config: \"nope\"})",
		"compile({source: \"int main() { return 0; }\"})",
		"fuzz({n: 0, grammar: \"nope\"})",
		"sweep({configs: []})",
		"let s = \"\\n\\t\\\"\\\\\"",
		"return 9_223_372_036_854_775_807",
		"return 1..2",
		"x = = =",
		"((((((((((",
		"}}}}",
		"return [1, 2][",
		"let \x00 = 1",
		"# comment only",
		"a.b.c.d()[0].e = 1",
		"return 1/0",
		"return -(-(-1))",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		// Oversized inputs only slow exploration down.
		if len(src) > 1<<16 {
			t.Skip()
		}
		res, err := Run(src, Options{
			MaxSteps: 2_000,
			Timeout:  2 * time.Second,
		})
		if err != nil {
			// Errors are the contract; panics or hangs are the bug.
			// Every script-level error must be self-describing.
			if err.Error() == "" {
				t.Fatalf("empty error for script %q", src)
			}
			return
		}
		_ = res
		// A successful run must also format its value without panicking.
		_ = formatValue(res.Value)
		_ = strings.TrimSpace(src)
	})
}
