package campaign

// Generic builtins — the part of the standard library that knows
// nothing about ORAQL. The domain bindings live in bindings.go.

import (
	"fmt"
	"sort"
	"strings"
)

func coreBuiltins() []*Builtin {
	return []*Builtin{
		{
			Name: "print",
			Doc:  "print(args...) — write the arguments, space-separated, to the campaign log",
			Fn: func(in *interp, line int, args []any) (any, error) {
				parts := make([]string, len(args))
				for i, a := range args {
					parts[i] = formatValue(a)
				}
				in.printf("%s\n", strings.Join(parts, " "))
				return nil, nil
			},
		},
		{
			Name: "str",
			Doc:  "str(x) — render any value as a string",
			Fn: func(in *interp, line int, args []any) (any, error) {
				if len(args) != 1 {
					return nil, scriptErr(line, "str needs exactly 1 argument, got %d", len(args))
				}
				return formatValue(args[0]), nil
			},
		},
		{
			Name: "len",
			Doc:  "len(x) — length of a string, list, or map",
			Fn: func(in *interp, line int, args []any) (any, error) {
				if len(args) != 1 {
					return nil, scriptErr(line, "len needs exactly 1 argument, got %d", len(args))
				}
				switch v := args[0].(type) {
				case string:
					return int64(len(v)), nil
				case []any:
					return int64(len(v)), nil
				case map[string]any:
					return int64(len(v)), nil
				}
				return nil, scriptErr(line, "len is not defined on %s", typeName(args[0]))
			},
		},
		{
			Name: "range",
			Doc:  "range(n) or range(start, stop) — list of consecutive integers",
			Fn: func(in *interp, line int, args []any) (any, error) {
				var start, stop int64
				switch len(args) {
				case 1:
					n, ok := args[0].(int64)
					if !ok {
						return nil, scriptErr(line, "range needs integers, got %s", typeName(args[0]))
					}
					stop = n
				case 2:
					a, aok := args[0].(int64)
					b, bok := args[1].(int64)
					if !aok || !bok {
						return nil, scriptErr(line, "range needs integers")
					}
					start, stop = a, b
				default:
					return nil, scriptErr(line, "range needs 1 or 2 arguments, got %d", len(args))
				}
				if stop-start > 1_000_000 {
					return nil, scriptErr(line, "range too large (%d elements)", stop-start)
				}
				out := make([]any, 0)
				for i := start; i < stop; i++ {
					if err := in.step(line); err != nil {
						return nil, err
					}
					out = append(out, i)
				}
				return out, nil
			},
		},
		{
			Name: "keys",
			Doc:  "keys(m) — sorted list of a map's keys",
			Fn: func(in *interp, line int, args []any) (any, error) {
				if len(args) != 1 {
					return nil, scriptErr(line, "keys needs exactly 1 argument, got %d", len(args))
				}
				m, ok := args[0].(map[string]any)
				if !ok {
					return nil, scriptErr(line, "keys needs a map, got %s", typeName(args[0]))
				}
				names := make([]string, 0, len(m))
				for k := range m {
					names = append(names, k)
				}
				sort.Strings(names)
				out := make([]any, len(names))
				for i, k := range names {
					out[i] = k
				}
				return out, nil
			},
		},
		{
			Name: "append",
			Doc:  "append(list, values...) — new list with the values appended",
			Fn: func(in *interp, line int, args []any) (any, error) {
				if len(args) < 1 {
					return nil, scriptErr(line, "append needs a list argument")
				}
				l, ok := args[0].([]any)
				if !ok {
					return nil, scriptErr(line, "append needs a list, got %s", typeName(args[0]))
				}
				out := make([]any, 0, len(l)+len(args)-1)
				out = append(out, l...)
				return append(out, args[1:]...), nil
			},
		},
		{
			Name: "contains",
			Doc:  "contains(list, v) or contains(map, key) or contains(string, sub)",
			Fn: func(in *interp, line int, args []any) (any, error) {
				if len(args) != 2 {
					return nil, scriptErr(line, "contains needs exactly 2 arguments, got %d", len(args))
				}
				switch c := args[0].(type) {
				case []any:
					for _, el := range c {
						if valueEq(el, args[1]) {
							return true, nil
						}
					}
					return false, nil
				case map[string]any:
					k, ok := args[1].(string)
					if !ok {
						return nil, scriptErr(line, "contains on a map needs a string key")
					}
					_, present := c[k]
					return present, nil
				case string:
					sub, ok := args[1].(string)
					if !ok {
						return nil, scriptErr(line, "contains on a string needs a string")
					}
					return strings.Contains(c, sub), nil
				}
				return nil, scriptErr(line, "contains is not defined on %s", typeName(args[0]))
			},
		},
		{
			Name: "fail",
			Doc:  "fail(msg) — abort the campaign with an error",
			Fn: func(in *interp, line int, args []any) (any, error) {
				msg := "campaign failed"
				if len(args) > 0 {
					parts := make([]string, len(args))
					for i, a := range args {
						parts[i] = formatValue(a)
					}
					msg = strings.Join(parts, " ")
				}
				return nil, scriptErr(line, "fail: %s", msg)
			},
		},
	}
}

// printf writes to the script's output stream, if any.
func (in *interp) printf(format string, args ...any) {
	if in.opts.Out != nil {
		fmt.Fprintf(in.opts.Out, format, args...)
	}
}
