package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"sort"
	"strings"
	"testing"
	"time"

	"github.com/oraql/go-oraql/internal/apps"
	"github.com/oraql/go-oraql/internal/driver"
	"github.com/oraql/go-oraql/internal/report"
)

// run evaluates a script with test defaults and returns its value.
func run(t *testing.T, src string) any {
	t.Helper()
	res, err := Run(src, Options{})
	if err != nil {
		t.Fatalf("Run(%q): %v", src, err)
	}
	return res.Value
}

func TestLanguageBasics(t *testing.T) {
	cases := []struct {
		src  string
		want any
	}{
		{"return 1 + 2 * 3", int64(7)},
		{"return (1 + 2) * 3", int64(9)},
		{"return 7 % 3", int64(1)},
		{"return 10 / 4", int64(2)},
		{"return 10.0 / 4", 2.5},
		{"return 1 < 2 && 2 < 3", true},
		{"return false || 3 >= 3", true},
		{"return !false", true},
		{"return -5 + 2", int64(-3)},
		{"return \"a\" + \"b\"", "ab"},
		{"return \"abc\" < \"abd\"", true},
		{"return 1 == 1.0", true},
		{"return [1, 2] == [1, 2]", true},
		{"return {a: 1} == {a: 1}", true},
		{"return nil == nil", true},
		{"let x = 4\nx = x + 1\nreturn x", int64(5)},
		{"let xs = [1, 2, 3]\nreturn xs[1]", int64(2)},
		{"let xs = [1, 2, 3]\nxs[0] = 9\nreturn xs[0] + len(xs)", int64(12)},
		{"let m = {a: 1, \"b c\": 2}\nreturn m.a + m[\"b c\"]", int64(3)},
		{"let m = {}\nm.x = 7\nreturn m.x", int64(7)},
		{"return {a: 1}.missing", nil},
		{"let s = 0\nfor i in range(5) { s = s + i }\nreturn s", int64(10)},
		{"let s = 0\nfor i in range(2, 5) { s = s + i }\nreturn s", int64(9)},
		{"let s = 0\nfor k in {b: 2, a: 1} { s = s + len(k) }\nreturn s", int64(2)},
		{"let i = 0\nwhile i < 10 { i = i + 2 }\nreturn i", int64(10)},
		{"let s = 0\nfor i in range(10) { if i == 3 { break }\n s = s + i }\nreturn s", int64(3)},
		{"let s = 0\nfor i in range(5) { if i % 2 == 0 { continue }\n s = s + i }\nreturn s", int64(4)},
		{"if 1 > 2 { return 1 } else if 2 > 2 { return 2 } else { return 3 }", int64(3)},
		{"return str(1 + 1) + str(true)", "2true"},
		{"return len(\"abcd\")", int64(4)},
		{"return keys({b: 1, a: 2})", []any{"a", "b"}},
		{"return append([1], 2, 3)", []any{int64(1), int64(2), int64(3)}},
		{"return [1] + [2]", []any{int64(1), int64(2)}},
		{"return contains([1, 2], 2)", true},
		{"return contains({a: 1}, \"a\")", true},
		{"return contains(\"hello\", \"ell\")", true},
		{"# comment\n// comment\nreturn 1 ; return 2", int64(1)},
		{"let x = 1\nif true { let x = 2 }\nreturn x", int64(1)},
		{"return", nil},
		{"let x = 3", nil}, // running off the end returns nil
	}
	for _, tc := range cases {
		got := run(t, tc.src)
		gj, _ := json.Marshal(got)
		wj, _ := json.Marshal(tc.want)
		if !bytes.Equal(gj, wj) {
			t.Errorf("script %q = %s, want %s", tc.src, gj, wj)
		}
	}
}

func TestScriptErrors(t *testing.T) {
	cases := []struct {
		src     string
		wantSub string
	}{
		{"return x", "undefined name"},
		{"x = 1", "undeclared variable"},
		{"let if = 1", "keyword"},
		{"return 1 +", "unexpected"},
		{"return (1", `expected ")"`},
		{"if 1 { }", "condition must be a boolean"},
		{"return 1 / 0", "division by zero"},
		{"return 1 % 0", "modulo by zero"},
		{"return 1 + \"a\"", "needs two numbers"},
		{"return [1][5]", "out of range"},
		{"return [1][\"a\"]", "index must be an integer"},
		{"return {a: 1}[2]", "key must be a string"},
		{"return nil.field", "cannot read field"},
		{"break", "break outside a loop"},
		{"continue", "continue outside a loop"},
		{"return 5()", "not callable"},
		{"fail(\"boom\")", "fail: boom"},
		{"let s = \"unterminated", "unterminated string"},
		{"return 1 @ 2", "unexpected character"},
		{"while true { }", "instruction budget"},
		{"probe({config: \"no-such-app\"})", "unknown configuration"},
		{"probe({config: \"xsbench-seq\", bogus_knob: 1})", "unknown option"},
		{"probe({config: \"xsbench-seq\", strategy: \"no-such\"})", "unknown strategy"},
		{"probe({config: \"xsbench-seq\", aa_chain: \"no-such\"})", "unknown"},
		{"fuzz({grammar: \"no-such\"})", "unknown grammar"},
		{"compile({seq: \"banana\", config: \"xsbench-seq\"})", "bad seq"},
	}
	for _, tc := range cases {
		_, err := Run(tc.src, Options{MaxSteps: 10_000})
		if err == nil {
			t.Errorf("script %q: expected error containing %q, got nil", tc.src, tc.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("script %q: error %q does not contain %q", tc.src, err, tc.wantSub)
		}
		if !strings.Contains(err.Error(), "line ") && !strings.Contains(err.Error(), "context") {
			t.Errorf("script %q: error %q carries no line number", tc.src, err)
		}
	}
}

func TestStepBudget(t *testing.T) {
	res, err := Run("let s = 0\nfor i in range(100) { s = s + i }\nreturn s", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps == 0 {
		t.Fatal("expected a non-zero step count")
	}
	if _, err := Run("let s = 0\nfor i in range(100) { s = s + i }", Options{MaxSteps: 50}); err == nil ||
		!strings.Contains(err.Error(), "instruction budget") {
		t.Fatalf("tight budget: got %v, want budget error", err)
	}
}

func TestWallClockLimit(t *testing.T) {
	start := time.Now()
	_, err := Run("while true { let x = 1 }", Options{
		MaxSteps: 1 << 40,
		Timeout:  50 * time.Millisecond,
	})
	if err == nil || !strings.Contains(err.Error(), "wall-clock limit") {
		t.Fatalf("got %v, want wall-clock limit error", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timeout took %s to fire", elapsed)
	}
}

func TestCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run("while true { let x = 1 }", Options{Ctx: ctx, MaxSteps: 1 << 40})
	if err == nil || !strings.Contains(err.Error(), "context canceled") {
		t.Fatalf("got %v, want context canceled", err)
	}
}

func TestPrintOutput(t *testing.T) {
	var out bytes.Buffer
	_, err := Run(`print("hello", 1 + 1, [1, "a"], {k: nil})`, Options{Out: &out})
	if err != nil {
		t.Fatal(err)
	}
	want := "hello 2 [1, \"a\"] {k: nil}\n"
	if out.String() != want {
		t.Fatalf("print output %q, want %q", out.String(), want)
	}
}

func TestIntrospectionBindings(t *testing.T) {
	v := run(t, `return {
		strategies: strategies(),
		analyses: aa_analyses(),
		chains: aa_chains(),
		configs: app_configs(),
		grammars: grammars(),
	}`)
	m := v.(map[string]any)
	for key, min := range map[string]int{
		"strategies": 3, "analyses": 7, "chains": 2, "configs": 10, "grammars": 5,
	} {
		l, ok := m[key].([]any)
		if !ok || len(l) < min {
			t.Errorf("%s: got %v entries, want >= %d", key, m[key], min)
		}
	}
	// Every entry carries a name and a description.
	for _, e := range m["strategies"].([]any) {
		em := e.(map[string]any)
		if em["name"] == "" || em["description"] == "" {
			t.Errorf("strategy entry missing name/description: %v", em)
		}
	}
}

func TestBuiltinsHaveDocs(t *testing.T) {
	seen := map[string]bool{}
	for _, b := range Builtins() {
		if b.Name == "" || b.Doc == "" {
			t.Errorf("builtin %q has no doc", b.Name)
		}
		if seen[b.Name] {
			t.Errorf("duplicate builtin %q", b.Name)
		}
		seen[b.Name] = true
	}
	for _, name := range []string{"print", "probe", "compile", "fuzz", "sweep", "strategies"} {
		if !seen[name] {
			t.Errorf("missing builtin %q", name)
		}
	}
}

// canonical renders any value as key-sorted JSON for byte comparison,
// dropping the speculation-effort counters: with workers > 1 the
// number of compiles and cached/speculated/wasted tests depends on
// scheduling, while everything semantic — verdicts, FinalSeq, exe
// hashes, AA stats — is the deterministic contract under test.
func canonical(t *testing.T, v any) string {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	var any1 any
	if err := json.Unmarshal(data, &any1); err != nil {
		t.Fatal(err)
	}
	if m, ok := any1.(map[string]any); ok {
		for _, k := range []string{"compiles", "tests_run", "tests_cached", "tests_disk", "tests_speculated", "tests_wasted"} {
			delete(m, k)
		}
	}
	out, err := json.Marshal(any1)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// TestGoldenEquivalence is the determinism contract: the scripted
// default campaign reproduces the compiled-in path byte-for-byte —
// verdicts, FinalSeq, and exe hashes — across app configs and worker
// counts {1, 8}.
func TestGoldenEquivalence(t *testing.T) {
	configs := []string{"xsbench-seq", "lulesh-seq", "minigmg-sse"}
	for _, workers := range []int{1, 8} {
		// Compiled-in path.
		var want []string
		for _, id := range configs {
			spec := apps.ByID(id).Spec()
			spec.Workers = workers
			res, err := driver.Probe(spec)
			if err != nil {
				t.Fatalf("compiled-in probe %s: %v", id, err)
			}
			want = append(want, canonical(t, report.NewProbeJSON(res)))
		}

		// Scripted path: same campaign, expressed as a .oraql script.
		script := `
			let results = []
			for cfg in ["xsbench-seq", "lulesh-seq", "minigmg-sse"] {
				results = append(results, probe({config: cfg}))
			}
			return results
		`
		res, err := Run(script, Options{Workers: workers})
		if err != nil {
			t.Fatalf("scripted campaign (workers=%d): %v", workers, err)
		}
		got, ok := res.Value.([]any)
		if !ok || len(got) != len(configs) {
			t.Fatalf("scripted campaign returned %T (%v), want %d results", res.Value, res.Value, len(configs))
		}
		for i, id := range configs {
			if g := canonical(t, got[i]); g != want[i] {
				t.Errorf("workers=%d %s: scripted result differs from compiled-in\n got: %s\nwant: %s",
					workers, id, g, want[i])
			}
		}
	}
}

// TestSweepBinding checks sweep() over an explicit config list matches
// per-config probe() calls.
func TestSweepBinding(t *testing.T) {
	v := run(t, `return sweep({configs: ["minigmg-sse"], workers: 2})`)
	l, ok := v.([]any)
	if !ok || len(l) != 1 {
		t.Fatalf("sweep returned %T %v, want 1-element list", v, v)
	}
	m := l[0].(map[string]any)
	if m["name"] != "minigmg-sse" {
		t.Errorf("sweep result name = %v", m["name"])
	}
	if m["exe_hash"] == "" || m["exe_hash"] == nil {
		t.Errorf("sweep result carries no exe_hash: %v", m)
	}
}

// TestCompileBinding checks a scripted single compilation and the
// result accessors scripts use for branching.
func TestCompileBinding(t *testing.T) {
	v := run(t, `
		let base = compile({config: "minigmg-sse"})
		let opt = compile({config: "minigmg-sse", oraql: true})
		if base.exe_hash == nil { fail("no exe_hash") }
		return [base.exe_hash != "", opt.oraql != nil]
	`)
	l := v.([]any)
	if l[0] != true || l[1] != true {
		t.Fatalf("compile binding results: %v", l)
	}
}

// TestFuzzBinding runs a tiny scripted fuzz campaign.
func TestFuzzBinding(t *testing.T) {
	v := run(t, `
		let r = fuzz({n: 2, seed: 1, grammar: "scalar", triage: false})
		return [r.programs, r.divergences == nil]
	`)
	l := v.([]any)
	if l[0] != int64(2) {
		t.Fatalf("fuzz programs = %v, want 2", l[0])
	}
	if l[1] != true {
		t.Fatalf("clean scalar fuzz diverged: %v", l)
	}
}

// TestCompileBatchEquivalence extends the golden-equivalence contract
// to the batch binding: compile_batch over a list with duplicates is
// byte-identical, item for item, to the loop-of-compile() equivalent,
// and duplicated items never alias one mutable script value. wall_ms
// is the only scrubbed field — the duplicate's looped twin recompiles,
// so its timing necessarily differs while everything semantic may not.
func TestCompileBatchEquivalence(t *testing.T) {
	script := `
		let items = [
			{config: "minigmg-sse"},
			{config: "xsbench-seq"},
			{config: "minigmg-sse"},
			{config: "minigmg-sse", oraql: true},
			{config: "xsbench-seq"},
		]
		let batched = compile_batch(items)
		let looped = []
		for it in items {
			looped = append(looped, compile(it))
		}
		return {batched: batched, looped: looped}
	`
	v := run(t, script)
	m := v.(map[string]any)
	batched := m["batched"].([]any)
	looped := m["looped"].([]any)
	if len(batched) != 5 || len(looped) != 5 {
		t.Fatalf("got %d batched, %d looped results, want 5 each", len(batched), len(looped))
	}
	// Duplicates (items 0 and 2) must be distinct values: mutating one
	// through its map must not leak into the other.
	b0 := batched[0].(map[string]any)
	b0["mutation_probe"] = true
	if _, leaked := batched[2].(map[string]any)["mutation_probe"]; leaked {
		t.Fatal("duplicate batch items alias one script value")
	}
	delete(b0, "mutation_probe")

	// The timing table is ordered by measured wall time, so both the
	// values and the row order jitter between runs: zero the one and
	// sort the other; pass/runs/changed stay under comparison.
	scrubWall := func(v any) {
		timing, _ := v.(map[string]any)["timing"].([]any)
		for _, e := range timing {
			if em, ok := e.(map[string]any); ok {
				em["wall_ms"] = 0
			}
		}
		sort.Slice(timing, func(i, j int) bool {
			pi, _ := timing[i].(map[string]any)["pass"].(string)
			pj, _ := timing[j].(map[string]any)["pass"].(string)
			return pi < pj
		})
	}
	for i := range batched {
		scrubWall(batched[i])
		scrubWall(looped[i])
		if g, w := canonical(t, batched[i]), canonical(t, looped[i]); g != w {
			t.Errorf("item %d: compile_batch result differs from compile loop\n got: %s\nwant: %s", i, g, w)
		}
	}
}
