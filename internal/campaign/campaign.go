// Package campaign embeds a deliberately small script interpreter
// that drives ORAQL probing, compilation, and fuzzing campaigns from
// .oraql scripts. Scripts compose the registered extension points —
// probing strategies, AA chains, app configurations, and grammar
// profiles — with loops and conditionals, so custom campaigns (a
// reordered-AA-chain sweep, a strategy shoot-out, a fuzz run under a
// custom grammar) need no recompilation.
//
// The language is a tiny expression/statement subset: let,
// assignment, if/else, for-in, while, break/continue/return, list and
// map literals, `fn` function literals (closures, so strategy
// callbacks can be handed to register_strategy), and calls into host
// bindings. There are no imports and no I/O beyond print — the
// sandbox is structural. Execution is bounded by an instruction
// budget, a call-depth limit, and an optional wall-clock timeout, and
// honors context cancellation, so untrusted scripts (POST
// /v1/campaign) can at worst burn their own budget.
//
// Determinism contract: every binding funnels into the same driver,
// pipeline, and difftest entry points the CLIs use, so a scripted
// campaign reproduces the compiled-in equivalent byte-for-byte —
// verdicts, FinalSeq, and exe hashes — for any worker count.
package campaign

import (
	"context"
	"fmt"
	"io"
	"time"

	"github.com/oraql/go-oraql/internal/diskcache"
)

// DefaultMaxSteps bounds script execution when Options.MaxSteps is
// zero. Host-binding work (compiles, probes) counts as one step; the
// budget bounds the interpreter, the Timeout bounds the host work.
const DefaultMaxSteps = 1_000_000

// Options configures one campaign run.
type Options struct {
	// Ctx cancels the campaign: the evaluator polls it and threads it
	// into every compilation, probe, and fuzz worker.
	Ctx context.Context
	// Out receives print() output and binding progress lines.
	Out io.Writer
	// Log receives host-side progress (driver and fuzz logs); nil
	// keeps them quiet even when Out is set.
	Log io.Writer
	// Workers is the default worker budget for probe/sweep/fuzz calls
	// that do not set their own (0 = the packages' own defaults).
	Workers int
	// CompileWorkers is the per-function pass parallelism threaded
	// into every compilation (0 = GOMAXPROCS).
	CompileWorkers int
	// Cache, when non-nil, backs all compilations, probes, and fuzz
	// oracles with the shared persistent store.
	Cache *diskcache.Store
	// MaxSteps bounds evaluated script nodes (0 = DefaultMaxSteps).
	MaxSteps int64
	// Timeout bounds the whole campaign's wall clock (0 = none).
	Timeout time.Duration
}

// Result is a finished campaign.
type Result struct {
	// Value is the script's top-level return value (nil when the
	// script ran off its end), in the script value model.
	Value any
	// Steps is the number of instruction-budget units consumed.
	Steps int64
}

// Builtins returns every installed binding (core + ORAQL + strategy +
// warehouse) with its one-line doc — the authoritative binding table
// for docs and tests.
func Builtins() []*Builtin {
	b := append(coreBuiltins(), oraqlBuiltins()...)
	b = append(b, strategyBuiltins()...)
	return append(b, warehouseBuiltins()...)
}

// Run parses and executes one campaign script.
func Run(src string, opts Options) (*Result, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, err
	}
	ctx := opts.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.Timeout)
		defer cancel()
	}
	maxSteps := opts.MaxSteps
	if maxSteps <= 0 {
		maxSteps = DefaultMaxSteps
	}
	globals := &env{vars: map[string]any{}}
	for _, b := range Builtins() {
		globals.vars[b.Name] = b
	}
	in := &interp{ctx: ctx, opts: &opts, globals: globals, maxSteps: maxSteps}

	res := &Result{}
	err = in.execBlock(prog, globals)
	res.Steps = in.steps
	switch err := err.(type) {
	case nil:
		return res, nil
	case returnErr:
		res.Value = err.val
		return res, nil
	case breakErr:
		return nil, scriptErr(err.line, "break outside a loop")
	case continueErr:
		return nil, scriptErr(err.line, "continue outside a loop")
	default:
		parentCancelled := opts.Ctx != nil && opts.Ctx.Err() != nil
		if ctx.Err() != nil && opts.Timeout > 0 && !parentCancelled {
			return nil, fmt.Errorf("campaign: wall-clock limit (%s) exceeded", opts.Timeout)
		}
		return nil, err
	}
}
