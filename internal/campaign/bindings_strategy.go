package campaign

// Script-defined probing strategies: register_strategy(name, fn)
// registers a `fn(n)` callback into a per-run overlay of the global
// strategy registry, and the probe_* bindings expose the driver's
// Prober surface to the callback while it runs. The driver invokes
// the callback through the exact registry.Strategies path built-in
// strategies use, so a scripted strategy is selectable anywhere a
// name is — probe({strategy: ...}), sweep, POST /v1/campaign — and
// inherits the whole decision loop: budget accounting, speculation,
// padding, and verdict persistence.
//
// The Prober reaches the script through a stack, not a parameter:
// driver.Probe calls Strategy.Solve on the goroutine that called
// probe(), i.e. the interpreter's own, so pushing the Prober around
// the callback invocation is race-free, and nested probes (a strategy
// whose callback calls probe() again) see their own Prober on top.

import (
	"fmt"

	"github.com/oraql/go-oraql/internal/driver"
	"github.com/oraql/go-oraql/internal/oraql"
	"github.com/oraql/go-oraql/internal/registry"
)

// strategyState is the per-run script-strategy state hung off the
// interpreter: the overlay registry that scopes register_strategy
// entries to this run, and the Prober stack the probe_* bindings
// read while a script strategy's callback executes.
type strategyState struct {
	overlay *registry.Registry
	probers []driver.Prober
}

// strategyReg returns the registry strategy names resolve against:
// the run's overlay once register_strategy has created it, the global
// table otherwise.
func (in *interp) strategyReg() *registry.Registry {
	if in.strat != nil && in.strat.overlay != nil {
		return in.strat.overlay
	}
	return registry.Strategies
}

// lookupStrategy resolves a strategy name against the run's overlay
// (falling back to the built-ins through the overlay's parent chain).
func (in *interp) lookupStrategy(name string) (driver.Strategy, error) {
	e, ok := in.strategyReg().Lookup(name)
	if !ok {
		return nil, fmt.Errorf("unknown strategy %q (known: %s)",
			name, strategyNames(in.strategyReg()))
	}
	return e.Value.(driver.Strategy), nil
}

func strategyNames(reg *registry.Registry) string {
	out := ""
	for i, n := range reg.Names() {
		if i > 0 {
			out += ", "
		}
		out += n
	}
	return out
}

// prober returns the Prober of the innermost executing script
// strategy, or an error outside one.
func (in *interp) prober(line int, what string) (driver.Prober, error) {
	if in.strat == nil || len(in.strat.probers) == 0 {
		return nil, scriptErr(line, "%s is only available inside a strategy function (see register_strategy)", what)
	}
	return in.strat.probers[len(in.strat.probers)-1], nil
}

// scriptStrategy adapts a script `fn(n)` callback to driver.Strategy.
// Solve pushes the Prober for the probe_* bindings, invokes the
// callback, and validates its return — a list of n booleans, the
// decided response bits.
type scriptStrategy struct {
	name string
	fn   *funcVal
	in   *interp
}

func (s *scriptStrategy) Name() string { return s.name }

func (s *scriptStrategy) Solve(p driver.Prober, n int) (oraql.Seq, error) {
	st := s.in.strat
	st.probers = append(st.probers, p)
	defer func() { st.probers = st.probers[:len(st.probers)-1] }()
	v, err := s.in.callFunc(s.fn, []any{int64(n)}, s.fn.line)
	if err != nil {
		return nil, err
	}
	seq, err := seqFromScript(s.fn.line, v)
	if err != nil {
		return nil, fmt.Errorf("strategy %q: %w", s.name, err)
	}
	if len(seq) != n {
		return nil, fmt.Errorf("strategy %q returned %d decision bits, campaign has %d queries", s.name, len(seq), n)
	}
	return seq, nil
}

// seqFromScript converts a script list of booleans into a response
// sequence.
func seqFromScript(line int, v any) (oraql.Seq, error) {
	l, ok := v.([]any)
	if !ok {
		return nil, scriptErr(line, "expected a list of booleans, got %s", typeName(v))
	}
	seq := make(oraql.Seq, len(l))
	for i, el := range l {
		b, ok := el.(bool)
		if !ok {
			return nil, scriptErr(line, "expected a list of booleans; element %d is %s", i, typeName(el))
		}
		seq[i] = b
	}
	return seq, nil
}

// seqToScript converts a response sequence into a script list.
func seqToScript(seq oraql.Seq) []any {
	out := make([]any, len(seq))
	for i, b := range seq {
		out[i] = b
	}
	return out
}

func strategyBuiltins() []*Builtin {
	return []*Builtin{
		{
			Name: "register_strategy",
			Doc:  "register_strategy(name, fn) — register fn(n) as a probing strategy for this run; it must return the n decided bits and may call the probe_* bindings",
			Fn: func(in *interp, line int, args []any) (any, error) {
				if len(args) != 2 {
					return nil, scriptErr(line, "register_strategy needs a name and a function, got %d argument(s)", len(args))
				}
				name, ok := args[0].(string)
				if !ok {
					return nil, scriptErr(line, "register_strategy: name must be a string, got %s", typeName(args[0]))
				}
				fn, ok := args[1].(*funcVal)
				if !ok {
					return nil, scriptErr(line, "register_strategy: second argument must be a function, got %s", typeName(args[1]))
				}
				if len(fn.params) != 1 {
					return nil, scriptErr(line, "register_strategy: the strategy function must take exactly one parameter (the query count), has %d", len(fn.params))
				}
				if in.strat == nil {
					in.strat = &strategyState{}
				}
				if in.strat.overlay == nil {
					in.strat.overlay = registry.Strategies.Overlay()
				}
				err := in.strat.overlay.Add(registry.Entry{
					Name:        name,
					Description: "script-defined strategy (this campaign run)",
					Value:       &scriptStrategy{name: name, fn: fn, in: in},
				})
				if err != nil {
					return nil, scriptErr(line, "register_strategy: %v", err)
				}
				return nil, nil
			},
		},
		{
			Name: "probe_test",
			Doc:  "probe_test(seq, specs...) — verify a candidate bit list against the running probe; extra lists are speculative prefetches; returns true on success",
			Fn: func(in *interp, line int, args []any) (any, error) {
				p, err := in.prober(line, "probe_test")
				if err != nil {
					return nil, err
				}
				if len(args) < 1 {
					return nil, scriptErr(line, "probe_test needs a candidate bit list")
				}
				seq, err := seqFromScript(line, args[0])
				if err != nil {
					return nil, err
				}
				specs := make([]oraql.Seq, 0, len(args)-1)
				for _, a := range args[1:] {
					s, err := seqFromScript(line, a)
					if err != nil {
						return nil, err
					}
					specs = append(specs, s)
				}
				ok, err := p.Test(seq, specs...)
				if err != nil {
					return nil, err
				}
				return ok, nil
			},
		},
		{
			Name: "probe_pad",
			Doc:  "probe_pad(seq) — extend a decided prefix with the driver's pessimistic padding; returns the padded bit list",
			Fn: func(in *interp, line int, args []any) (any, error) {
				p, err := in.prober(line, "probe_pad")
				if err != nil {
					return nil, err
				}
				if len(args) != 1 {
					return nil, scriptErr(line, "probe_pad needs exactly 1 argument, got %d", len(args))
				}
				seq, err := seqFromScript(line, args[0])
				if err != nil {
					return nil, err
				}
				return seqToScript(p.Pad(seq)), nil
			},
		},
		{
			Name: "probe_pfail",
			Doc:  "probe_pfail(lo, hi) — estimated probability that flipping queries [lo, hi) optimistic fails verification (0.5-based without priors)",
			Fn: func(in *interp, line int, args []any) (any, error) {
				p, err := in.prober(line, "probe_pfail")
				if err != nil {
					return nil, err
				}
				if len(args) != 2 {
					return nil, scriptErr(line, "probe_pfail needs lo and hi, got %d argument(s)", len(args))
				}
				lo, lok := args[0].(int64)
				hi, hok := args[1].(int64)
				if !lok || !hok {
					return nil, scriptErr(line, "probe_pfail needs two integers, got %s and %s", typeName(args[0]), typeName(args[1]))
				}
				return p.PFail(int(lo), int(hi)), nil
			},
		},
		{
			Name: "probe_workers",
			Doc:  "probe_workers() — the running probe's speculation budget (1 = strictly sequential)",
			Fn: func(in *interp, line int, args []any) (any, error) {
				p, err := in.prober(line, "probe_workers")
				if err != nil {
					return nil, err
				}
				if len(args) != 0 {
					return nil, scriptErr(line, "probe_workers takes no arguments")
				}
				return int64(p.Workers()), nil
			},
		},
		{
			Name: "probe_has_priors",
			Doc:  "probe_has_priors() — whether persisted verdict priors back probe_pfail for the running probe",
			Fn: func(in *interp, line int, args []any) (any, error) {
				p, err := in.prober(line, "probe_has_priors")
				if err != nil {
					return nil, err
				}
				if len(args) != 0 {
					return nil, scriptErr(line, "probe_has_priors takes no arguments")
				}
				return p.HasPriors(), nil
			},
		},
	}
}
