package irinterp

import (
	"math"

	"github.com/oraql/go-oraql/internal/ir"
)

// exec executes one non-terminator, non-phi instruction.
func (m *machine) exec(fr *frame, in *ir.Instr) {
	switch in.Op {
	case ir.OpAlloca:
		size := (in.Size + 15) &^ 15
		addr := m.stackPtr
		m.checkAddr(addr, size)
		// Zero the slot: allocas start deterministic (the frontend
		// always initializes, but optimized code must not observe
		// garbage either).
		for i := int64(0); i < size; i++ {
			m.mem[addr+i] = 0
		}
		m.stackPtr += size
		fr.vals[in] = iv(addr)

	case ir.OpLoad:
		addr := m.eval(fr, in.Operands[0]).i
		var out value
		switch in.Ty.Kind {
		case ir.KVec:
			for l := 0; l < in.Ty.Lanes; l++ {
				bits := m.load64(addr + int64(8*l))
				out.vi[l] = int64(bits)
				out.vf[l] = math.Float64frombits(bits)
			}
		case ir.KF64:
			out = fv(math.Float64frombits(m.load64(addr)))
		default:
			out = iv(int64(m.load64(addr)))
		}
		fr.vals[in] = out

	case ir.OpStore:
		val := m.eval(fr, in.Operands[0])
		addr := m.eval(fr, in.Operands[1]).i
		ty := in.Operands[0].Type()
		switch ty.Kind {
		case ir.KVec:
			for l := 0; l < ty.Lanes; l++ {
				if ty.Elem.Kind == ir.KF64 {
					m.store64(addr+int64(8*l), math.Float64bits(val.vf[l]))
				} else {
					m.store64(addr+int64(8*l), uint64(val.vi[l]))
				}
			}
		case ir.KF64:
			m.store64(addr, math.Float64bits(val.f))
		default:
			m.store64(addr, uint64(val.i))
		}

	case ir.OpGEP:
		addr := m.eval(fr, in.Operands[0]).i + in.Off
		if len(in.Operands) > 1 {
			addr += m.eval(fr, in.Operands[1]).i * in.Scale
		}
		fr.vals[in] = iv(addr)

	case ir.OpMemCpy:
		dst := m.eval(fr, in.Operands[0]).i
		src := m.eval(fr, in.Operands[1]).i
		n := m.eval(fr, in.Operands[2]).i
		if n < 0 {
			m.trap("memcpy with negative length %d", n)
		}
		m.checkAddr(dst, n)
		m.checkAddr(src, n)
		copy(m.mem[dst:dst+n], m.mem[src:src+n])

	case ir.OpMemSet:
		dst := m.eval(fr, in.Operands[0]).i
		b := byte(m.eval(fr, in.Operands[1]).i)
		n := m.eval(fr, in.Operands[2]).i
		if n < 0 {
			m.trap("memset with negative length %d", n)
		}
		m.checkAddr(dst, n)
		for i := int64(0); i < n; i++ {
			m.mem[dst+i] = b
		}

	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpSDiv, ir.OpSRem,
		ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpAShr:
		fr.vals[in] = m.intBin(fr, in)

	case ir.OpFAdd, ir.OpFSub, ir.OpFMul, ir.OpFDiv:
		fr.vals[in] = m.floatBin(fr, in)

	case ir.OpSIToFP:
		x := m.eval(fr, in.Operands[0])
		if in.Ty.Kind == ir.KVec {
			var out value
			for l := 0; l < in.Ty.Lanes; l++ {
				out.vf[l] = float64(x.vi[l])
			}
			fr.vals[in] = out
		} else {
			fr.vals[in] = fv(float64(x.i))
		}

	case ir.OpFPToSI:
		x := m.eval(fr, in.Operands[0])
		if in.Ty.Kind == ir.KVec {
			var out value
			for l := 0; l < in.Ty.Lanes; l++ {
				out.vi[l] = int64(x.vf[l])
			}
			fr.vals[in] = out
		} else {
			fr.vals[in] = iv(int64(x.f))
		}

	case ir.OpICmp:
		x := m.eval(fr, in.Operands[0]).i
		y := m.eval(fr, in.Operands[1]).i
		fr.vals[in] = iv(b2i(cmpInt(in.Pred, x, y)))

	case ir.OpFCmp:
		x := m.eval(fr, in.Operands[0]).f
		y := m.eval(fr, in.Operands[1]).f
		fr.vals[in] = iv(b2i(cmpFloat(in.Pred, x, y)))

	case ir.OpSelect:
		if m.eval(fr, in.Operands[0]).i != 0 {
			fr.vals[in] = m.eval(fr, in.Operands[1])
		} else {
			fr.vals[in] = m.eval(fr, in.Operands[2])
		}

	case ir.OpVSplat:
		x := m.eval(fr, in.Operands[0])
		var out value
		for l := 0; l < in.Ty.Lanes; l++ {
			out.vi[l] = x.i
			out.vf[l] = x.f
		}
		fr.vals[in] = out

	case ir.OpVExtract:
		x := m.eval(fr, in.Operands[0])
		lane := m.eval(fr, in.Operands[1]).i
		vt := in.Operands[0].Type()
		if lane < 0 || int(lane) >= vt.Lanes {
			m.trap("vector lane %d out of range", lane)
		}
		if vt.Elem.Kind == ir.KF64 {
			fr.vals[in] = fv(x.vf[lane])
		} else {
			fr.vals[in] = iv(x.vi[lane])
		}

	case ir.OpVInsert:
		x := m.eval(fr, in.Operands[0])
		s := m.eval(fr, in.Operands[1])
		lane := m.eval(fr, in.Operands[2]).i
		if lane < 0 || int(lane) >= in.Ty.Lanes {
			m.trap("vector lane %d out of range", lane)
		}
		x.vi[lane] = s.i
		x.vf[lane] = s.f
		fr.vals[in] = x

	case ir.OpVReduce:
		x := m.eval(fr, in.Operands[0])
		vt := in.Operands[0].Type()
		if vt.Elem.Kind == ir.KF64 {
			var sum float64
			for l := 0; l < vt.Lanes; l++ {
				sum += x.vf[l]
			}
			fr.vals[in] = fv(sum)
		} else {
			var sum int64
			for l := 0; l < vt.Lanes; l++ {
				sum += x.vi[l]
			}
			fr.vals[in] = iv(sum)
		}

	case ir.OpCall:
		fr.vals[in] = m.execCall(fr, in)

	default:
		m.trap("unhandled opcode %s", in.Op)
	}
}

func (m *machine) intBin(fr *frame, in *ir.Instr) value {
	x := m.eval(fr, in.Operands[0])
	y := m.eval(fr, in.Operands[1])
	one := func(a, b int64) int64 {
		switch in.Op {
		case ir.OpAdd:
			return a + b
		case ir.OpSub:
			return a - b
		case ir.OpMul:
			return a * b
		case ir.OpSDiv:
			if b == 0 {
				m.trap("integer division by zero")
			}
			return a / b
		case ir.OpSRem:
			if b == 0 {
				m.trap("integer remainder by zero")
			}
			return a % b
		case ir.OpAnd:
			return a & b
		case ir.OpOr:
			return a | b
		case ir.OpXor:
			return a ^ b
		case ir.OpShl:
			return a << uint(b&63)
		case ir.OpAShr:
			return a >> uint(b&63)
		}
		m.trap("bad int op")
		return 0
	}
	if in.Ty.Kind == ir.KVec {
		var out value
		for l := 0; l < in.Ty.Lanes; l++ {
			out.vi[l] = one(x.vi[l], y.vi[l])
		}
		return out
	}
	return iv(one(x.i, y.i))
}

func (m *machine) floatBin(fr *frame, in *ir.Instr) value {
	x := m.eval(fr, in.Operands[0])
	y := m.eval(fr, in.Operands[1])
	one := func(a, b float64) float64 {
		switch in.Op {
		case ir.OpFAdd:
			return a + b
		case ir.OpFSub:
			return a - b
		case ir.OpFMul:
			return a * b
		case ir.OpFDiv:
			return a / b
		}
		m.trap("bad float op")
		return 0
	}
	if in.Ty.Kind == ir.KVec {
		var out value
		for l := 0; l < in.Ty.Lanes; l++ {
			out.vf[l] = one(x.vf[l], y.vf[l])
		}
		return out
	}
	return fv(one(x.f, y.f))
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func cmpInt(p ir.Pred, x, y int64) bool {
	switch p {
	case ir.PredEQ:
		return x == y
	case ir.PredNE:
		return x != y
	case ir.PredLT:
		return x < y
	case ir.PredLE:
		return x <= y
	case ir.PredGT:
		return x > y
	case ir.PredGE:
		return x >= y
	}
	return false
}

func cmpFloat(p ir.Pred, x, y float64) bool {
	switch p {
	case ir.PredEQ:
		return x == y
	case ir.PredNE:
		return x != y
	case ir.PredLT:
		return x < y
	case ir.PredLE:
		return x <= y
	case ir.PredGT:
		return x > y
	case ir.PredGE:
		return x >= y
	}
	return false
}
