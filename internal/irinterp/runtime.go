package irinterp

import (
	"fmt"
	"math"

	"github.com/oraql/go-oraql/internal/ir"
)

// mailboxes provide the synchronous MPI exchange channels: one buffered
// channel per (from, to) rank pair.
type mailboxes struct {
	n  int
	ch []chan []byte
}

func newMailboxes(n int) *mailboxes {
	b := &mailboxes{n: n, ch: make([]chan []byte, n*n)}
	for i := range b.ch {
		b.ch[i] = make(chan []byte, 4)
	}
	return b
}

func (b *mailboxes) send(from, to int, data []byte) { b.ch[from*b.n+to] <- data }
func (b *mailboxes) recv(from, to int) []byte       { return <-b.ch[from*b.n+to] }

// execCall dispatches calls: intrinsics run in the simulated runtime,
// user functions recurse through the interpreter.
func (m *machine) execCall(fr *frame, in *ir.Instr) value {
	if !ir.IsIntrinsic(in.Callee) {
		callee := m.lookupFunc(in.Callee)
		args := make([]value, len(in.Operands))
		for i, op := range in.Operands {
			args[i] = m.eval(fr, op)
		}
		out, err := m.call(callee, args)
		if err != nil {
			m.trap("call %s: %v", in.Callee, err)
		}
		return out
	}
	arg := func(i int) value { return m.eval(fr, in.Operands[i]) }
	switch in.Callee {
	case "__print_i64":
		fmt.Fprintf(&m.out, "%d", arg(0).i)
	case "__print_f64":
		fmt.Fprintf(&m.out, "%.10g", arg(0).f)
	case "__print_str":
		c, ok := in.Operands[0].(*ir.Const)
		if !ok {
			m.trap("print_str needs a string constant")
		}
		m.out.WriteString(c.Str)
	case "__sqrt":
		return fv(math.Sqrt(arg(0).f))
	case "__fabs":
		return fv(math.Abs(arg(0).f))
	case "__exp":
		return fv(math.Exp(arg(0).f))
	case "__log":
		return fv(math.Log(arg(0).f))
	case "__sin":
		return fv(math.Sin(arg(0).f))
	case "__cos":
		return fv(math.Cos(arg(0).f))
	case "__pow":
		return fv(math.Pow(arg(0).f, arg(1).f))
	case "__min_i64":
		return iv(min64(arg(0).i, arg(1).i))
	case "__max_i64":
		return iv(max64(arg(0).i, arg(1).i))
	case "__min_f64":
		return fv(math.Min(arg(0).f, arg(1).f))
	case "__max_f64":
		return fv(math.Max(arg(0).f, arg(1).f))
	case "__malloc":
		size := (arg(0).i + 15) &^ 15
		if size < 0 {
			m.trap("malloc with negative size")
		}
		addr := m.heapPtr
		m.checkAddr(addr, size)
		m.heapPtr += size
		return iv(addr)
	case "__free":
		// Bump allocator: free is a no-op, like many HPC arenas.
	case "__clock":
		// Deterministic per binary, volatile across binaries — the
		// verification regexes must mask lines containing it, exactly
		// as the paper masks reported runtimes.
		return iv(m.cycles + m.devCycles)
	case "__checksum_f64":
		return fv(m.checksumF64(arg(0).i, arg(1).i))
	case "__checksum_i64":
		return iv(m.checksumI64(arg(0).i, arg(1).i))
	case "__omp_fork":
		m.ompFork(in, arg(1).i, arg(2).i)
	case "__omp_task":
		m.tasks = append(m.tasks, pendingTask{fn: m.namedFunc(in.Operands[0]), ctx: arg(1).i})
	case "__omp_taskwait":
		m.drainTasks()
	case "__omp_thread_id":
		return iv(int64(m.ompTID))
	case "__omp_num_threads":
		return iv(int64(m.opts.NumThreads))
	case "__mpi_rank":
		return iv(int64(m.rank))
	case "__mpi_size":
		return iv(int64(m.opts.NumRanks))
	case "__mpi_sendrecv":
		m.mpiSendrecv(arg(0).i, arg(1).i, arg(2).i, arg(3).i, arg(4).i)
	case "__mpi_allreduce_f64":
		return fv(m.mpiAllreduce(arg(0).f))
	case "__gpu_launch":
		m.gpuLaunch(in, arg(1).i, arg(2).i)
	case "__gpu_tid":
		return iv(m.gpuTID)
	case "__gpu_ntid":
		return iv(m.gpuNtid)
	default:
		m.trap("unhandled intrinsic %s", in.Callee)
	}
	return value{}
}

func (m *machine) lookupFunc(name string) *ir.Func {
	// Inside a kernel, device copies of functions take precedence (the
	// __device__ compilation of the same source function).
	if m.inKernel != "" && m.prog.Device != nil {
		if f := m.prog.Device.FuncByName(name); f != nil {
			return f
		}
	}
	if f := m.prog.Host.FuncByName(name); f != nil {
		return f
	}
	if m.prog.Device != nil {
		if f := m.prog.Device.FuncByName(name); f != nil {
			return f
		}
	}
	m.trap("call to unknown function %s", name)
	return nil
}

// namedFunc resolves the function-name constant of fork/task/launch.
func (m *machine) namedFunc(v ir.Value) *ir.Func {
	c, ok := v.(*ir.Const)
	if !ok || c.Str == "" {
		m.trap("fork/launch target must be a function-name constant")
	}
	return m.lookupFunc(c.Str)
}

// ompFork executes the outlined region for each simulated thread's
// chunk of [0, n), sequentially and in thread order — deterministic by
// construction. Outlined signature: (ctx ptr, lo i64, hi i64).
func (m *machine) ompFork(in *ir.Instr, ctx, n int64) {
	fn := m.namedFunc(in.Operands[0])
	t := int64(m.opts.NumThreads)
	chunk := (n + t - 1) / t
	if chunk < 1 {
		chunk = 1
	}
	savedTID := m.ompTID
	for tid := int64(0); tid < t; tid++ {
		lo := tid * chunk
		hi := min64(lo+chunk, n)
		if lo >= n {
			break
		}
		m.ompTID = int(tid)
		if _, err := m.call(fn, []value{iv(ctx), iv(lo), iv(hi)}); err != nil {
			m.trap("omp region: %v", err)
		}
	}
	m.ompTID = savedTID
}

// drainTasks runs queued tasks FIFO; tasks may enqueue more tasks.
func (m *machine) drainTasks() {
	for len(m.tasks) > 0 {
		t := m.tasks[0]
		m.tasks = m.tasks[1:]
		// Task signature: (ctx ptr, lo i64, hi i64); lo/hi carried in
		// the context by the frontend, passed as zeros here.
		if _, err := m.call(t.fn, []value{iv(t.ctx), iv(0), iv(0)}); err != nil {
			m.trap("omp task: %v", err)
		}
	}
}

// mpiSendrecv performs the synchronous pairwise exchange
// (sendbuf, recvbuf, nbytes, dest, source).
func (m *machine) mpiSendrecv(sendbuf, recvbuf, n, dest, source int64) {
	if n < 0 {
		m.trap("sendrecv with negative length")
	}
	m.checkAddr(sendbuf, n)
	m.checkAddr(recvbuf, n)
	if dest < 0 || dest >= int64(m.box.n) || source < 0 || source >= int64(m.box.n) {
		m.trap("sendrecv peer out of range (dest %d, source %d)", dest, source)
	}
	if int(dest) == m.rank && int(source) == m.rank {
		copy(m.mem[recvbuf:recvbuf+n], m.mem[sendbuf:sendbuf+n])
		return
	}
	out := make([]byte, n)
	copy(out, m.mem[sendbuf:sendbuf+n])
	m.box.send(m.rank, int(dest), out)
	data := m.box.recv(int(source), m.rank)
	if int64(len(data)) != n {
		m.trap("sendrecv length mismatch: sent %d, expected %d", len(data), n)
	}
	copy(m.mem[recvbuf:recvbuf+n], data)
}

// mpiAllreduce sums a double across ranks (deterministic rank order).
func (m *machine) mpiAllreduce(x float64) float64 {
	if m.box.n == 1 {
		return x
	}
	// Gather to rank 0 via the mailboxes, then broadcast.
	buf := make([]byte, 8)
	if m.rank != 0 {
		putF64(buf, x)
		m.box.send(m.rank, 0, buf)
		res := m.box.recv(0, m.rank)
		return getF64(res)
	}
	sum := x
	for r := 1; r < m.box.n; r++ {
		sum += getF64(m.box.recv(r, 0))
	}
	for r := 1; r < m.box.n; r++ {
		out := make([]byte, 8)
		putF64(out, sum)
		m.box.send(0, r, out)
	}
	return sum
}

// gpuLaunch runs the kernel for tid 0..n-1 on the simulated device.
// Kernel signature: (ctx ptr, tid i64 via __gpu_tid).
func (m *machine) gpuLaunch(in *ir.Instr, ctx, n int64) {
	fn := m.namedFunc(in.Operands[0])
	if m.prog.Device != nil && m.prog.Device.FuncByName(fn.Name) != nil {
		fn = m.prog.Device.FuncByName(fn.Name)
	}
	savedKernel, savedTID, savedN := m.inKernel, m.gpuTID, m.gpuNtid
	m.inKernel = fn.Name
	m.gpuNtid = n
	m.kernelLaunches[fn.Name]++
	for tid := int64(0); tid < n; tid++ {
		m.gpuTID = tid
		if _, err := m.call(fn, []value{iv(ctx)}); err != nil {
			m.trap("kernel %s: %v", fn.Name, err)
		}
	}
	m.inKernel, m.gpuTID, m.gpuNtid = savedKernel, savedTID, savedN
}

// checksumF64 is an order-sensitive checksum over n doubles: any
// miscompiled store or reordered result changes it.
func (m *machine) checksumF64(addr, n int64) float64 {
	var acc float64
	for i := int64(0); i < n; i++ {
		x := math.Float64frombits(m.load64(addr + 8*i))
		acc = acc*1.0000001 + x*float64(i%7+1)
	}
	return acc
}

func (m *machine) checksumI64(addr, n int64) int64 {
	var acc int64 = 1469598103934665603 // FNV offset basis
	for i := int64(0); i < n; i++ {
		acc = (acc ^ int64(m.load64(addr+8*i))) * 1099511628211
	}
	return acc
}

func putF64(b []byte, f float64) {
	u := math.Float64bits(f)
	for i := 0; i < 8; i++ {
		b[i] = byte(u >> (8 * i))
	}
}

func getF64(b []byte) float64 {
	var u uint64
	for i := 0; i < 8; i++ {
		u |= uint64(b[i]) << (8 * i)
	}
	return math.Float64frombits(u)
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
