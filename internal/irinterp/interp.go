// Package irinterp executes IR modules on a simulated machine. It is
// the "hardware" of the reproduction: the ORAQL verification script
// compares the stdout of interpreter runs, and the dynamic instruction
// and cycle counters stand in for perf's executed-instruction counts
// and wall-clock measurements. Deterministic simulated runtimes provide
// OpenMP (fork/join and tasks), MPI (rank goroutines with synchronous
// exchanges), and GPU kernel launches for offload modules.
package irinterp

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"github.com/oraql/go-oraql/internal/ir"
)

// Options configures a run.
type Options struct {
	// NumThreads is the simulated OpenMP thread count (default 4).
	NumThreads int
	// NumRanks is the simulated MPI rank count (default 1).
	NumRanks int
	// StepLimit aborts runs exceeding this many executed instructions,
	// catching non-termination introduced by bad optimizations
	// (default 200M).
	StepLimit int64
	// MemLimit caps simulated memory per rank in bytes (default 64MB).
	MemLimit int64
}

func (o Options) withDefaults() Options {
	if o.NumThreads <= 0 {
		o.NumThreads = 4
	}
	if o.NumRanks <= 0 {
		o.NumRanks = 1
	}
	if o.StepLimit <= 0 {
		o.StepLimit = 200_000_000
	}
	if o.MemLimit <= 0 {
		o.MemLimit = 64 << 20
	}
	return o
}

// Program bundles the host module with an optional device module
// (offload configurations compile kernels separately).
type Program struct {
	Host   *ir.Module
	Device *ir.Module
}

// Result reports a completed run.
type Result struct {
	Stdout string
	// Instrs / Cycles count host-side dynamic instructions and
	// cost-model cycles (summed over ranks).
	Instrs int64
	Cycles int64
	// DeviceInstrs / DeviceCycles count work inside GPU kernels.
	DeviceInstrs int64
	DeviceCycles int64
	// KernelCycles breaks device time down per kernel function.
	KernelCycles map[string]int64
	// KernelLaunches counts launches per kernel.
	KernelLaunches map[string]int64
}

// KernelNames returns the launched kernels sorted by name.
func (r *Result) KernelNames() []string {
	names := make([]string, 0, len(r.KernelCycles))
	for n := range r.KernelCycles {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Run executes the program's main function on every rank and returns
// the combined result. Any simulated trap (out-of-bounds access,
// division by zero, step limit) is returned as an error; the
// verification layer treats those as failures, exactly like a crashed
// benchmark binary.
func Run(p *Program, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	res := &Result{KernelCycles: map[string]int64{}, KernelLaunches: map[string]int64{}}
	if p.Host.FuncByName("main") == nil {
		return nil, errors.New("irinterp: no main function")
	}
	ranks := make([]*machine, opts.NumRanks)
	boxes := newMailboxes(opts.NumRanks)
	for r := 0; r < opts.NumRanks; r++ {
		ranks[r] = newMachine(p, opts, r, boxes)
	}
	if opts.NumRanks == 1 {
		if err := ranks[0].callMain(); err != nil {
			return nil, err
		}
	} else {
		errs := make([]error, opts.NumRanks)
		done := make(chan int, opts.NumRanks)
		for r := 0; r < opts.NumRanks; r++ {
			go func(r int) {
				errs[r] = ranks[r].callMain()
				done <- r
			}(r)
		}
		for i := 0; i < opts.NumRanks; i++ {
			<-done
		}
		for r, err := range errs {
			if err != nil {
				return nil, fmt.Errorf("rank %d: %w", r, err)
			}
		}
	}
	var sb strings.Builder
	for _, m := range ranks {
		sb.WriteString(m.out.String())
		res.Instrs += m.instrs
		res.Cycles += m.cycles
		res.DeviceInstrs += m.devInstrs
		res.DeviceCycles += m.devCycles
		for k, v := range m.kernelCycles {
			res.KernelCycles[k] += v
		}
		for k, v := range m.kernelLaunches {
			res.KernelLaunches[k] += v
		}
	}
	res.Stdout = sb.String()
	return res, nil
}

// value is a runtime scalar or vector.
type value struct {
	i int64
	f float64
	// vector lanes (valid when the static type is a vector).
	vi [4]int64
	vf [4]float64
}

func iv(x int64) value   { return value{i: x} }
func fv(x float64) value { return value{f: x} }

// machine is the per-rank execution state.
type machine struct {
	prog *Program
	opts Options
	rank int
	box  *mailboxes

	mem      []byte
	heapPtr  int64
	stackPtr int64
	globals  map[*ir.Global]int64
	devGlob  bool // device globals materialized

	out strings.Builder

	instrs, cycles       int64
	devInstrs, devCycles int64
	kernelCycles         map[string]int64
	kernelLaunches       map[string]int64

	// runtime state
	ompTID   int
	inKernel string
	gpuTID   int64
	gpuNtid  int64
	tasks    []pendingTask
}

type pendingTask struct {
	fn  *ir.Func
	ctx int64
}

// Memory layout (per rank).
const (
	globalBase = 0x1000
	heapBase   = 8 << 20
	stackBase  = 48 << 20
)

func newMachine(p *Program, opts Options, rank int, boxes *mailboxes) *machine {
	m := &machine{
		prog: p, opts: opts, rank: rank, box: boxes,
		mem:     make([]byte, 1<<20),
		heapPtr: heapBase, stackPtr: stackBase,
		globals:        map[*ir.Global]int64{},
		kernelCycles:   map[string]int64{},
		kernelLaunches: map[string]int64{},
	}
	addr := int64(globalBase)
	layout := func(mod *ir.Module) {
		for _, g := range mod.Globals {
			if _, done := m.globals[g]; done {
				continue // shared host/device global
			}
			addr = (addr + 15) &^ 15
			m.globals[g] = addr
			for i, v := range g.InitI64 {
				m.store64(addr+int64(8*i), uint64(v))
			}
			for i, v := range g.InitF64 {
				m.store64(addr+int64(8*i), math.Float64bits(v))
			}
			if len(g.InitI64) == 0 && len(g.InitF64) == 0 {
				m.ensure(addr + g.Size)
			}
			addr += g.Size
		}
	}
	layout(p.Host)
	if p.Device != nil {
		layout(p.Device)
	}
	return m
}

func (m *machine) callMain() (err error) {
	defer func() {
		if r := recover(); r != nil {
			if te, ok := r.(trapError); ok {
				err = errors.New(string(te))
				return
			}
			panic(r)
		}
	}()
	_, err2 := m.call(m.prog.Host.FuncByName("main"), nil)
	if err2 != nil {
		return err2
	}
	return nil
}

type trapError string

func (m *machine) trap(format string, args ...any) {
	panic(trapError(fmt.Sprintf("simulated trap: "+format, args...)))
}

// ensure grows memory to cover addr (exclusive bound).
func (m *machine) ensure(addr int64) {
	if addr <= int64(len(m.mem)) {
		return
	}
	if addr > m.opts.MemLimit {
		m.trap("memory limit exceeded at address %#x", addr)
	}
	n := int64(len(m.mem))
	for n < addr {
		n *= 2
	}
	if n > m.opts.MemLimit {
		n = m.opts.MemLimit
	}
	grown := make([]byte, n)
	copy(grown, m.mem)
	m.mem = grown
}

func (m *machine) checkAddr(addr, size int64) {
	if addr < globalBase || addr+size > m.opts.MemLimit {
		m.trap("out-of-bounds access at %#x (size %d)", addr, size)
	}
	m.ensure(addr + size)
}

func (m *machine) store64(addr int64, bits uint64) {
	m.checkAddr(addr, 8)
	for i := 0; i < 8; i++ {
		m.mem[addr+int64(i)] = byte(bits >> (8 * i))
	}
}

func (m *machine) load64(addr int64) uint64 {
	m.checkAddr(addr, 8)
	var bits uint64
	for i := 0; i < 8; i++ {
		bits |= uint64(m.mem[addr+int64(i)]) << (8 * i)
	}
	return bits
}

// frame is one function activation.
type frame struct {
	fn       *ir.Func
	args     []value
	vals     map[*ir.Instr]value
	stackTop int64 // saved stack pointer for alloca unwinding
}

// cost is the cycle cost model (the "wall time" stand-in).
func cost(in *ir.Instr) int64 {
	switch in.Op {
	case ir.OpMul, ir.OpFMul:
		return 3
	case ir.OpSDiv, ir.OpSRem, ir.OpFDiv:
		return 16
	case ir.OpLoad, ir.OpStore:
		return 4
	case ir.OpMemCpy, ir.OpMemSet:
		return 8
	case ir.OpCall:
		switch in.Callee {
		case "__sqrt", "__exp", "__log", "__sin", "__cos", "__pow":
			return 20
		}
		return 4
	case ir.OpPhi:
		return 0
	default:
		return 1
	}
}

func (m *machine) tick(in *ir.Instr) {
	c := cost(in)
	if m.inKernel != "" {
		m.devInstrs++
		m.devCycles += c
		m.kernelCycles[m.inKernel] += c
	} else {
		m.instrs++
		m.cycles += c
	}
	if m.instrs+m.devInstrs > m.opts.StepLimit {
		m.trap("step limit exceeded (%d instructions): possible non-termination", m.opts.StepLimit)
	}
}

// call runs fn with args and returns its return value.
func (m *machine) call(fn *ir.Func, args []value) (value, error) {
	fr := &frame{fn: fn, args: args, vals: map[*ir.Instr]value{}, stackTop: m.stackPtr}
	defer func() { m.stackPtr = fr.stackTop }()

	block := fn.Entry()
	var prev *ir.Block
	for {
		// Phi nodes evaluate in parallel against the incoming edge.
		var phiVals []value
		var phis []*ir.Instr
		for _, in := range block.Instrs {
			if in.Dead() || in.Op != ir.OpPhi {
				continue
			}
			found := false
			for i, from := range in.Incoming {
				if from == prev {
					phiVals = append(phiVals, m.eval(fr, in.Operands[i]))
					phis = append(phis, in)
					found = true
					break
				}
			}
			if !found {
				m.trap("phi in %s/%s has no incoming for predecessor", fn.Name, block.Name)
			}
		}
		for i, phi := range phis {
			fr.vals[phi] = phiVals[i]
			m.tick(phi)
		}

		redirect := false
		for _, in := range block.Instrs {
			if in.Dead() || in.Op == ir.OpPhi {
				continue
			}
			m.tick(in)
			switch in.Op {
			case ir.OpBr:
				next := in.Succs[0]
				if len(in.Succs) == 2 && m.eval(fr, in.Operands[0]).i == 0 {
					next = in.Succs[1]
				}
				prev, block = block, next
				redirect = true
			case ir.OpRet:
				if len(in.Operands) > 0 {
					return m.eval(fr, in.Operands[0]), nil
				}
				return value{}, nil
			default:
				m.exec(fr, in)
			}
			if redirect {
				break
			}
		}
		if !redirect {
			m.trap("block %s/%s fell through without terminator", fn.Name, block.Name)
		}
	}
}

// eval resolves an operand to its runtime value.
func (m *machine) eval(fr *frame, v ir.Value) value {
	switch x := v.(type) {
	case *ir.Const:
		if x.Ty == ir.F64 {
			return fv(x.F)
		}
		return iv(x.I)
	case *ir.Global:
		a, ok := m.globals[x]
		if !ok {
			m.trap("unknown global %s", x.Name)
		}
		return iv(a)
	case *ir.Arg:
		if x.ID >= len(fr.args) {
			m.trap("missing argument %d of %s", x.ID, fr.fn.Name)
		}
		return fr.args[x.ID]
	case *ir.Instr:
		val, ok := fr.vals[x]
		if !ok {
			m.trap("use of undefined value %s in %s", x.Ident(), fr.fn.Name)
		}
		return val
	}
	m.trap("unknown value kind %T", v)
	return value{}
}
