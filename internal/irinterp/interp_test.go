package irinterp

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"github.com/oraql/go-oraql/internal/ir"
)

// buildMain gives a builder for an empty main.
func buildMain(t testing.TB) (*ir.Module, *ir.Builder) {
	t.Helper()
	m := ir.NewModule("t")
	_, b := ir.NewFunc(m, "main", ir.I64)
	return m, b
}

func runModule(t testing.TB, m *ir.Module, opts Options) *Result {
	t.Helper()
	res, err := Run(&Program{Host: m}, opts)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

func TestArithmeticAndPrint(t *testing.T) {
	m, b := buildMain(t)
	x := b.Bin(ir.OpMul, ir.ConstInt(6), ir.ConstInt(7), "x")
	b.Call(ir.Void, "__print_i64", x)
	b.Call(ir.Void, "__print_str", ir.ConstStr("\n"))
	f := b.Bin(ir.OpFDiv, ir.ConstFloat(1), ir.ConstFloat(8), "f")
	b.Call(ir.Void, "__print_f64", f)
	b.Ret(ir.ConstInt(0))
	res := runModule(t, m, Options{})
	if res.Stdout != "42\n0.125" {
		t.Errorf("stdout = %q", res.Stdout)
	}
}

func TestMemoryRoundTrip(t *testing.T) {
	m, b := buildMain(t)
	a := b.Alloca(16, "a")
	g := b.GEP(a, nil, 0, 8, "g")
	b.Store(ir.ConstFloat(3.25), g, "")
	ld := b.Load(ir.F64, g, "")
	b.Call(ir.Void, "__print_f64", ld)
	b.Ret(ir.ConstInt(0))
	res := runModule(t, m, Options{})
	if res.Stdout != "3.25" {
		t.Errorf("stdout = %q", res.Stdout)
	}
}

func TestGlobalsInitialized(t *testing.T) {
	m := ir.NewModule("t")
	g := m.AddGlobal(&ir.Global{Name: "tab", Size: 24, InitI64: []int64{10, 20, 30}})
	_, b := ir.NewFunc(m, "main", ir.I64)
	p := b.GEP(g, nil, 0, 16, "p")
	ld := b.Load(ir.I64, p, "")
	b.Call(ir.Void, "__print_i64", ld)
	b.Ret(ir.ConstInt(0))
	res := runModule(t, m, Options{})
	if res.Stdout != "30" {
		t.Errorf("stdout = %q", res.Stdout)
	}
}

func TestDivByZeroTraps(t *testing.T) {
	m, b := buildMain(t)
	z := b.Bin(ir.OpAdd, ir.ConstInt(0), ir.ConstInt(0), "z")
	b.Bin(ir.OpSDiv, ir.ConstInt(1), z, "bad")
	b.Ret(ir.ConstInt(0))
	_, err := Run(&Program{Host: m}, Options{})
	if err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Errorf("want division trap, got %v", err)
	}
}

func TestOOBAccessTraps(t *testing.T) {
	m, b := buildMain(t)
	b.Load(ir.I64, ir.ConstInt(0), "") // null-ish address
	b.Ret(ir.ConstInt(0))
	_, err := Run(&Program{Host: m}, Options{})
	if err == nil || !strings.Contains(err.Error(), "out-of-bounds") {
		t.Errorf("want OOB trap, got %v", err)
	}
}

func TestStepLimitCatchesInfiniteLoop(t *testing.T) {
	m := ir.NewModule("t")
	_, b := ir.NewFunc(m, "main", ir.I64)
	loop := b.NewBlock("loop")
	b.Br(loop)
	b.SetBlock(loop)
	b.Br(loop)
	_, err := Run(&Program{Host: m}, Options{StepLimit: 1000})
	if err == nil || !strings.Contains(err.Error(), "step limit") {
		t.Errorf("want step-limit trap, got %v", err)
	}
}

func TestPhiLoopSum(t *testing.T) {
	m := ir.NewModule("t")
	_, b := ir.NewFunc(m, "main", ir.I64)
	entry := b.Block()
	header := b.NewBlock("header")
	body := b.NewBlock("body")
	exit := b.NewBlock("exit")
	b.Br(header)
	b.SetBlock(header)
	i := b.Phi(ir.I64, "i")
	s := b.Phi(ir.I64, "s")
	cmp := b.ICmp(ir.PredLT, i, ir.ConstInt(10), "cmp")
	b.CondBr(cmp, body, exit)
	b.SetBlock(body)
	s2 := b.Bin(ir.OpAdd, s, i, "s2")
	i2 := b.Bin(ir.OpAdd, i, ir.ConstInt(1), "i2")
	b.Br(header)
	b.SetBlock(exit)
	b.Call(ir.Void, "__print_i64", s)
	b.Ret(ir.ConstInt(0))
	ir.AddIncoming(i, ir.ConstInt(0), entry)
	ir.AddIncoming(i, i2, body)
	ir.AddIncoming(s, ir.ConstInt(0), entry)
	ir.AddIncoming(s, s2, body)
	res := runModule(t, m, Options{})
	if res.Stdout != "45" {
		t.Errorf("sum 0..9 = %q", res.Stdout)
	}
}

func TestVectorOps(t *testing.T) {
	m, b := buildMain(t)
	a := b.Alloca(32, "a")
	for i := int64(0); i < 4; i++ {
		g := b.GEP(a, nil, 0, 8*i, "g")
		b.Store(ir.ConstFloat(float64(i+1)), g, "")
	}
	v := b.Load(ir.V4F64, a, "")
	two := b.VSplat(ir.V4F64, ir.ConstFloat(2), "two")
	prod := b.Bin(ir.OpFMul, v, two, "prod")
	sum := b.VReduce(prod, "sum")
	b.Call(ir.Void, "__print_f64", sum) // 2*(1+2+3+4) = 20
	b.Ret(ir.ConstInt(0))
	res := runModule(t, m, Options{})
	if res.Stdout != "20" {
		t.Errorf("vector reduce = %q", res.Stdout)
	}
}

func TestVectorStoreLoadLanes(t *testing.T) {
	m, b := buildMain(t)
	a := b.Alloca(32, "a")
	s := b.VSplat(ir.V4I64, ir.ConstInt(5), "s")
	b.Store(s, a, "")
	g := b.GEP(a, nil, 0, 24, "g")
	ld := b.Load(ir.I64, g, "")
	b.Call(ir.Void, "__print_i64", ld)
	b.Ret(ir.ConstInt(0))
	res := runModule(t, m, Options{})
	if res.Stdout != "5" {
		t.Errorf("lane 3 = %q", res.Stdout)
	}
}

func TestMathIntrinsics(t *testing.T) {
	m, b := buildMain(t)
	r := b.Call(ir.F64, "__sqrt", ir.ConstFloat(9))
	b.Call(ir.Void, "__print_f64", r)
	mx := b.Call(ir.I64, "__max_i64", ir.ConstInt(3), ir.ConstInt(11))
	b.Call(ir.Void, "__print_i64", mx)
	b.Ret(ir.ConstInt(0))
	res := runModule(t, m, Options{})
	if res.Stdout != "311" {
		t.Errorf("stdout = %q", res.Stdout)
	}
}

func TestMallocDistinctRegions(t *testing.T) {
	m, b := buildMain(t)
	p1 := b.Call(ir.Ptr, "__malloc", ir.ConstInt(8))
	p2 := b.Call(ir.Ptr, "__malloc", ir.ConstInt(8))
	b.Store(ir.ConstInt(1), p1, "")
	b.Store(ir.ConstInt(2), p2, "")
	l1 := b.Load(ir.I64, p1, "")
	b.Call(ir.Void, "__print_i64", l1)
	b.Ret(ir.ConstInt(0))
	res := runModule(t, m, Options{})
	if res.Stdout != "1" {
		t.Errorf("malloc regions overlap: %q", res.Stdout)
	}
}

func TestOMPForkChunksDeterministic(t *testing.T) {
	// outlined(ctx, lo, hi) prints its chunk bounds.
	m := ir.NewModule("t")
	ctxArg := &ir.Arg{Name: "ctx", Ty: ir.Ptr}
	lo := &ir.Arg{Name: "lo", Ty: ir.I64}
	hi := &ir.Arg{Name: "hi", Ty: ir.I64}
	_, ob := ir.NewFunc(m, "outlined", ir.Void, ctxArg, lo, hi)
	ob.Call(ir.Void, "__print_i64", lo)
	ob.Call(ir.Void, "__print_str", ir.ConstStr(":"))
	ob.Call(ir.Void, "__print_i64", hi)
	ob.Call(ir.Void, "__print_str", ir.ConstStr(" "))
	ob.Ret(nil)
	_, b := ir.NewFunc(m, "main", ir.I64)
	ctx := b.Alloca(8, "ctx")
	b.Call(ir.Void, "__omp_fork", ir.ConstStr("outlined"), ctx, ir.ConstInt(10))
	b.Ret(ir.ConstInt(0))
	res := runModule(t, m, Options{NumThreads: 4})
	if res.Stdout != "0:3 3:6 6:9 9:10 " {
		t.Errorf("chunking = %q", res.Stdout)
	}
}

func TestMPISendrecvRing(t *testing.T) {
	// Each rank sends its rank id to the right, receives from the left,
	// and prints the received value (rank 0 prints only).
	m := ir.NewModule("t")
	_, b := ir.NewFunc(m, "main", ir.I64)
	buf := b.Alloca(8, "send")
	rbuf := b.Alloca(8, "recv")
	rank := b.Call(ir.I64, "__mpi_rank")
	size := b.Call(ir.I64, "__mpi_size")
	b.Store(rank, buf, "")
	right := b.Bin(ir.OpSRem, b.Bin(ir.OpAdd, rank, ir.ConstInt(1), ""), size, "right")
	leftT := b.Bin(ir.OpAdd, rank, size, "")
	left := b.Bin(ir.OpSRem, b.Bin(ir.OpSub, leftT, ir.ConstInt(1), ""), size, "left")
	b.Call(ir.Void, "__mpi_sendrecv", buf, rbuf, ir.ConstInt(8), right, left)
	got := b.Load(ir.I64, rbuf, "")
	isZero := b.ICmp(ir.PredEQ, rank, ir.ConstInt(0), "iszero")
	thenB := b.NewBlock("then")
	exitB := b.NewBlock("exit")
	b.CondBr(isZero, thenB, exitB)
	b.SetBlock(thenB)
	b.Call(ir.Void, "__print_i64", got)
	b.Br(exitB)
	b.SetBlock(exitB)
	b.Ret(ir.ConstInt(0))
	res := runModule(t, m, Options{NumRanks: 3})
	if res.Stdout != "2" { // rank 0 receives from rank 2
		t.Errorf("ring exchange = %q", res.Stdout)
	}
}

func TestGPULaunchAndKernelAccounting(t *testing.T) {
	m := ir.NewModule("t")
	dev := ir.NewModule("t.device")
	dev.Target = "gpu-sim"
	ctxArg := &ir.Arg{Name: "ctx", Ty: ir.Ptr}
	kfn, kb := ir.NewFunc(dev, "kern", ir.Void, ctxArg)
	kfn.Attrs.Kernel = true
	tid := kb.Call(ir.I64, "__gpu_tid")
	base := kb.Load(ir.Ptr, ctxArg, "")
	slot := kb.GEP(base, tid, 8, 0, "slot")
	kb.Store(tid, slot, "")
	kb.Ret(nil)
	_, b := ir.NewFunc(m, "main", ir.I64)
	arr := b.Call(ir.Ptr, "__malloc", ir.ConstInt(64))
	ctx := b.Alloca(8, "ctx")
	b.Store(arr, ctx, "")
	b.Call(ir.Void, "__gpu_launch", ir.ConstStr("kern"), ctx, ir.ConstInt(8))
	g := b.GEP(arr, nil, 0, 56, "g")
	last := b.Load(ir.I64, g, "")
	b.Call(ir.Void, "__print_i64", last)
	b.Ret(ir.ConstInt(0))
	res, err := Run(&Program{Host: m, Device: dev}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stdout != "7" {
		t.Errorf("kernel result = %q", res.Stdout)
	}
	if res.DeviceInstrs == 0 || res.KernelCycles["kern"] == 0 || res.KernelLaunches["kern"] != 1 {
		t.Errorf("kernel accounting: %+v", res)
	}
	if res.Instrs == 0 {
		t.Error("host instructions must be counted")
	}
}

func TestChecksumOrderSensitive(t *testing.T) {
	m, b := buildMain(t)
	a := b.Alloca(16, "a")
	b.Store(ir.ConstFloat(1), a, "")
	g := b.GEP(a, nil, 0, 8, "g")
	b.Store(ir.ConstFloat(2), g, "")
	c1 := b.Call(ir.F64, "__checksum_f64", a, ir.ConstInt(2))
	b.Call(ir.Void, "__print_f64", c1)
	b.Ret(ir.ConstInt(0))
	res1 := runModule(t, m, Options{})

	m2, b2 := buildMain(t)
	a2 := b2.Alloca(16, "a")
	b2.Store(ir.ConstFloat(2), a2, "")
	g2 := b2.GEP(a2, nil, 0, 8, "g")
	b2.Store(ir.ConstFloat(1), g2, "")
	c2 := b2.Call(ir.F64, "__checksum_f64", a2, ir.ConstInt(2))
	b2.Call(ir.Void, "__print_f64", c2)
	b2.Ret(ir.ConstInt(0))
	res2 := runModule(t, m2, Options{})
	if res1.Stdout == res2.Stdout {
		t.Error("checksum must be order-sensitive")
	}
}

func TestDeterminism(t *testing.T) {
	m, b := buildMain(t)
	a := b.Alloca(64, "a")
	b.MemSet(a, ir.ConstInt(7), ir.ConstInt(64))
	c := b.Call(ir.I64, "__checksum_i64", a, ir.ConstInt(8))
	b.Call(ir.Void, "__print_i64", c)
	b.Ret(ir.ConstInt(0))
	r1 := runModule(t, m, Options{})
	r2 := runModule(t, m, Options{})
	if r1.Stdout != r2.Stdout || r1.Instrs != r2.Instrs || r1.Cycles != r2.Cycles {
		t.Error("runs must be bit-deterministic")
	}
}

func TestTaskQueueFIFO(t *testing.T) {
	m := ir.NewModule("t")
	ctxArg := &ir.Arg{Name: "ctx", Ty: ir.Ptr}
	lo := &ir.Arg{Name: "lo", Ty: ir.I64}
	hi := &ir.Arg{Name: "hi", Ty: ir.I64}
	_, tb := ir.NewFunc(m, "task", ir.Void, ctxArg, lo, hi)
	v := tb.Load(ir.I64, ctxArg, "")
	tb.Call(ir.Void, "__print_i64", v)
	tb.Ret(nil)
	_, b := ir.NewFunc(m, "main", ir.I64)
	for i := int64(0); i < 3; i++ {
		c := b.Alloca(8, "c")
		b.Store(ir.ConstInt(i+1), c, "")
		b.Call(ir.Void, "__omp_task", ir.ConstStr("task"), c)
	}
	b.Call(ir.Void, "__omp_taskwait")
	b.Ret(ir.ConstInt(0))
	res := runModule(t, m, Options{})
	if res.Stdout != "123" {
		t.Errorf("tasks must run FIFO at taskwait: %q", res.Stdout)
	}
}

func TestAllreduceAcrossRanks(t *testing.T) {
	m := ir.NewModule("t")
	_, b := ir.NewFunc(m, "main", ir.I64)
	rank := b.Call(ir.I64, "__mpi_rank")
	x := b.SIToFP(rank, "x")
	sum := b.Call(ir.F64, "__mpi_allreduce_f64", x)
	isZero := b.ICmp(ir.PredEQ, rank, ir.ConstInt(0), "z")
	thenB := b.NewBlock("then")
	exitB := b.NewBlock("exit")
	b.CondBr(isZero, thenB, exitB)
	b.SetBlock(thenB)
	b.Call(ir.Void, "__print_f64", sum)
	b.Br(exitB)
	b.SetBlock(exitB)
	b.Ret(ir.ConstInt(0))
	res := runModule(t, m, Options{NumRanks: 4})
	if res.Stdout != "6" { // 0+1+2+3
		t.Errorf("allreduce = %q", res.Stdout)
	}
}

func TestVectorInsertExtract(t *testing.T) {
	m, b := buildMain(t)
	v := b.VSplat(ir.V4F64, ir.ConstFloat(1), "v")
	v2 := &ir.Instr{Op: ir.OpVInsert, Ty: ir.V4F64,
		Operands: []ir.Value{v, ir.ConstFloat(9), ir.ConstInt(2)}, Name: "v2"}
	// Emit through the builder path for IDs.
	b.Bin(ir.OpAdd, ir.ConstInt(0), ir.ConstInt(0), "pad")
	insertRaw(b, v2)
	x := b.VExtract(v2, 2, "x")
	y := b.VExtract(v2, 0, "y")
	b.Call(ir.Void, "__print_f64", x)
	b.Call(ir.Void, "__print_str", ir.ConstStr(" "))
	b.Call(ir.Void, "__print_f64", y)
	b.Ret(ir.ConstInt(0))
	res := runModule(t, m, Options{})
	if res.Stdout != "9 1" {
		t.Errorf("insert/extract = %q", res.Stdout)
	}
}

// insertRaw appends an instruction via the public builder surface.
func insertRaw(b *ir.Builder, in *ir.Instr) {
	blk := b.Block()
	in.ID = b.Func().AllocID()
	in.Parent = blk
	blk.Instrs = append(blk.Instrs, in)
}

func TestMemCpyOverlappingRegionsIndependent(t *testing.T) {
	m, b := buildMain(t)
	a := b.Alloca(32, "a")
	bb := b.Alloca(32, "b")
	for i := int64(0); i < 4; i++ {
		g := b.GEP(a, nil, 0, 8*i, "g")
		b.Store(ir.ConstInt(i+1), g, "")
	}
	b.MemCpy(bb, a, ir.ConstInt(32))
	g3 := b.GEP(bb, nil, 0, 24, "g3")
	ld := b.Load(ir.I64, g3, "")
	b.Call(ir.Void, "__print_i64", ld)
	b.Ret(ir.ConstInt(0))
	res := runModule(t, m, Options{})
	if res.Stdout != "4" {
		t.Errorf("memcpy = %q", res.Stdout)
	}
}

func TestSelectAndCompare(t *testing.T) {
	m, b := buildMain(t)
	c := b.FCmp(ir.PredGT, ir.ConstFloat(2.5), ir.ConstFloat(1.5), "c")
	v := b.Select(c, ir.ConstInt(10), ir.ConstInt(20), "v")
	b.Call(ir.Void, "__print_i64", v)
	b.Ret(ir.ConstInt(0))
	res := runModule(t, m, Options{})
	if res.Stdout != "10" {
		t.Errorf("select = %q", res.Stdout)
	}
}

func TestCyclesExceedInstrs(t *testing.T) {
	m, b := buildMain(t)
	a := b.Alloca(8, "a")
	b.Store(ir.ConstFloat(4), a, "")
	x := b.Load(ir.F64, a, "")
	r := b.Call(ir.F64, "__sqrt", x)
	b.Call(ir.Void, "__print_f64", r)
	b.Ret(ir.ConstInt(0))
	res := runModule(t, m, Options{})
	if res.Cycles <= res.Instrs {
		t.Errorf("cost model must weight memory/math ops: instrs=%d cycles=%d", res.Instrs, res.Cycles)
	}
}

// TestIntArithmeticGroundTruthProperty checks the interpreter's i64
// semantics against Go's for random operands across every opcode.
func TestIntArithmeticGroundTruthProperty(t *testing.T) {
	ops := []ir.Opcode{ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpSDiv, ir.OpSRem,
		ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpAShr}
	eval := func(op ir.Opcode, x, y int64) (int64, bool) {
		m := ir.NewModule("t")
		_, b := ir.NewFunc(m, "main", ir.I64)
		r := b.Bin(op, ir.ConstInt(x), ir.ConstInt(y), "r")
		b.Call(ir.Void, "__print_i64", r)
		b.Ret(ir.ConstInt(0))
		res, err := Run(&Program{Host: m}, Options{})
		if err != nil {
			return 0, false
		}
		var v int64
		if _, err := fmt.Sscanf(res.Stdout, "%d", &v); err != nil {
			return 0, false
		}
		return v, true
	}
	golden := func(op ir.Opcode, x, y int64) (int64, bool) {
		switch op {
		case ir.OpAdd:
			return x + y, true
		case ir.OpSub:
			return x - y, true
		case ir.OpMul:
			return x * y, true
		case ir.OpSDiv:
			if y == 0 {
				return 0, false
			}
			return x / y, true
		case ir.OpSRem:
			if y == 0 {
				return 0, false
			}
			return x % y, true
		case ir.OpAnd:
			return x & y, true
		case ir.OpOr:
			return x | y, true
		case ir.OpXor:
			return x ^ y, true
		case ir.OpShl:
			return x << uint(y&63), true
		case ir.OpAShr:
			return x >> uint(y&63), true
		}
		return 0, false
	}
	prop := func(opIdx uint8, x, y int64) bool {
		op := ops[int(opIdx)%len(ops)]
		want, wok := golden(op, x, y)
		got, gok := eval(op, x, y)
		if wok != gok {
			return false
		}
		return !wok || got == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
