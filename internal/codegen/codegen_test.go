package codegen

import (
	"testing"

	"github.com/oraql/go-oraql/internal/ir"
)

func simpleModule() *ir.Module {
	m := ir.NewModule("t")
	m.AddGlobal(&ir.Global{Name: "g", Size: 16, InitI64: []int64{1, 2}})
	_, b := ir.NewFunc(m, "main", ir.I64)
	a := b.Alloca(24, "a")
	b.Store(ir.ConstInt(5), a, "")
	ld := b.Load(ir.I64, a, "")
	x := b.Bin(ir.OpAdd, ld, ir.ConstInt(1), "x")
	b.Ret(x)
	return m
}

func TestCompileCountsInstructions(t *testing.T) {
	res := Compile(simpleModule())
	if res.MachineInstrs == 0 {
		t.Fatal("no machine instructions")
	}
	if len(res.Funcs) != 1 || res.Funcs[0].Name != "main" {
		t.Fatalf("func stats: %+v", res.Funcs)
	}
	if res.Funcs[0].StackBytes < 24 {
		t.Errorf("stack bytes = %d, want >= alloca size", res.Funcs[0].StackBytes)
	}
}

func TestHashDeterministic(t *testing.T) {
	r1 := Compile(simpleModule())
	r2 := Compile(simpleModule())
	if r1.HashString() != r2.HashString() {
		t.Error("identical modules must hash identically")
	}
}

func TestHashSensitiveToCode(t *testing.T) {
	m1 := simpleModule()
	m2 := simpleModule()
	// Change a constant in m2.
	for _, bb := range m2.FuncByName("main").Blocks {
		for _, in := range bb.Instrs {
			if in.Op == ir.OpStore {
				in.Operands[0] = ir.ConstInt(6)
			}
		}
	}
	if Compile(m1).HashString() == Compile(m2).HashString() {
		t.Error("different code must hash differently")
	}
}

func TestHashSensitiveToGlobals(t *testing.T) {
	m1 := simpleModule()
	m2 := simpleModule()
	m2.Globals[0].InitI64[0] = 99
	if Compile(m1).HashString() == Compile(m2).HashString() {
		t.Error("different global initializers must hash differently")
	}
}

// pressureModule defines K long-lived values used at the end, forcing
// spills when K exceeds the register bank.
func pressureModule(k int) *ir.Module {
	m := ir.NewModule("t")
	_, b := ir.NewFunc(m, "hot", ir.I64, &ir.Arg{Name: "x", Ty: ir.I64})
	vals := make([]ir.Value, k)
	for i := 0; i < k; i++ {
		vals[i] = b.Bin(ir.OpMul, b.Func().Params[0], ir.ConstInt(int64(i+3)), "v")
	}
	acc := vals[0]
	for i := 1; i < k; i++ {
		acc = b.Bin(ir.OpAdd, acc, vals[i], "acc")
	}
	b.Ret(acc)
	return m
}

func TestRegisterPressureAndSpills(t *testing.T) {
	low := Compile(pressureModule(8)).Funcs[0]
	high := Compile(pressureModule(60)).Funcs[0]
	if low.Spills != 0 {
		t.Errorf("8 live values should not spill on x86 (got %d spills)", low.Spills)
	}
	if high.Spills == 0 {
		t.Error("60 simultaneously live values must spill")
	}
	if high.PeakPressure <= low.PeakPressure {
		t.Error("peak pressure must grow with live values")
	}
	if high.StackBytes == 0 {
		t.Error("spills must consume stack space")
	}
}

func TestGPUTargetHasMoreRegisters(t *testing.T) {
	m := pressureModule(40)
	m.Target = "gpu-sim"
	gpu := Compile(m).Funcs[0]
	cpu := Compile(pressureModule(40)).Funcs[0]
	if gpu.Spills >= cpu.Spills && cpu.Spills > 0 {
		t.Errorf("GPU bank (64) should spill less than CPU: gpu=%d cpu=%d", gpu.Spills, cpu.Spills)
	}
}

func TestKernelFlagPropagates(t *testing.T) {
	m := ir.NewModule("t")
	m.Target = "gpu-sim"
	fn, b := ir.NewFunc(m, "k", ir.Void, &ir.Arg{Name: "ctx", Ty: ir.Ptr})
	fn.Attrs.Kernel = true
	b.Ret(nil)
	res := Compile(m)
	if !res.Funcs[0].IsKernel {
		t.Error("kernel attribute must appear in function stats")
	}
	if res.Target.Name != "gpu-sim" || !res.Target.Unified {
		t.Errorf("target = %+v", res.Target)
	}
}

func TestPhiElimEmitsCopies(t *testing.T) {
	m := ir.NewModule("t")
	c := &ir.Arg{Name: "c", Ty: ir.I1}
	_, b := ir.NewFunc(m, "f", ir.I64, c)
	entry := b.Block()
	then := b.NewBlock("then")
	join := b.NewBlock("join")
	b.CondBr(c, then, join)
	b.SetBlock(then)
	x := b.Bin(ir.OpAdd, ir.ConstInt(1), ir.ConstInt(2), "x")
	b.Br(join)
	b.SetBlock(join)
	phi := b.Phi(ir.I64, "p")
	ir.AddIncoming(phi, ir.ConstInt(0), entry)
	ir.AddIncoming(phi, x, then)
	b.Ret(phi)
	res := Compile(m)
	// The phi needs at least two mov.phi copies, so instruction count
	// must exceed the naive op count.
	if res.MachineInstrs < 6 {
		t.Errorf("machine instrs = %d, expected phi copies to be emitted", res.MachineInstrs)
	}
}
