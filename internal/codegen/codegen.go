// Package codegen lowers optimized IR to a virtual machine ISA:
// straightforward instruction selection, phi elimination by copies,
// and linear-scan register allocation. It produces the machine-level
// statistics the paper reports — "# machine instructions generated"
// (asm printer), "# register spills inserted" (register allocation),
// and the per-kernel register / stack-frame numbers of Fig. 7 — plus a
// deterministic binary encoding whose SHA-256 the probing driver uses
// as its executable-hash test cache key.
package codegen

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"github.com/oraql/go-oraql/internal/cfg"
	"github.com/oraql/go-oraql/internal/ir"
)

// TargetInfo describes the register file of a compilation target.
type TargetInfo struct {
	Name    string
	IntRegs int
	FPRegs  int
	// Unified is true for GPU-style register files where int and fp
	// values share one bank.
	Unified bool
}

// Targets built in.
var (
	// X86 approximates a 64-bit host: 13 allocatable integer registers
	// (16 minus SP/BP/scratch) and 15 vector registers.
	X86 = TargetInfo{Name: "x86_64", IntRegs: 13, FPRegs: 15}
	// GPUSim approximates a GPU thread's unified register file.
	GPUSim = TargetInfo{Name: "gpu-sim", IntRegs: 64, FPRegs: 64, Unified: true}
)

// TargetFor picks the target matching a module target string.
func TargetFor(target string) TargetInfo {
	if target == GPUSim.Name {
		return GPUSim
	}
	return X86
}

// FuncStats are the per-function machine statistics.
type FuncStats struct {
	Name string
	// MachineInstrs is the number of machine instructions emitted.
	MachineInstrs int
	// Spills is the number of spill loads/stores inserted.
	Spills int
	// RegsUsed is the number of registers the function occupies (the
	// Fig. 7 "# registers" column; peak pressure capped at the bank).
	RegsUsed int
	// PeakPressure is the uncapped maximal number of simultaneously
	// live values.
	PeakPressure int
	// StackBytes is the stack frame size: allocas plus spill slots.
	StackBytes int64
	// IsKernel marks GPU kernel entry points.
	IsKernel bool
}

// Result is the outcome of compiling one module to machine code.
type Result struct {
	Target TargetInfo
	Funcs  []FuncStats
	// MachineInstrs is the module-wide machine instruction count.
	MachineInstrs int
	// Spills is the module-wide spill count.
	Spills int
	// Hash is the SHA-256 of the deterministic encoding.
	Hash [32]byte
}

// HashString returns the hex executable hash.
func (r *Result) HashString() string { return fmt.Sprintf("%x", r.Hash) }

// Compile lowers the module and returns machine statistics plus the
// executable hash.
func Compile(m *ir.Module) *Result {
	ti := TargetFor(m.Target)
	res := &Result{Target: ti}
	h := sha256.New()
	// Globals participate in the executable image.
	for _, g := range m.Globals {
		h.Write([]byte(g.Name))
		writeInt(h, g.Size)
		for _, v := range g.InitI64 {
			writeInt(h, v)
		}
		for _, v := range g.InitF64 {
			writeInt(h, int64(f2bits(v)))
		}
	}
	for _, f := range m.Funcs {
		if len(f.Blocks) == 0 {
			continue
		}
		fs, enc := compileFunc(f, ti)
		res.Funcs = append(res.Funcs, fs)
		res.MachineInstrs += fs.MachineInstrs
		res.Spills += fs.Spills
		h.Write([]byte(f.Name))
		h.Write(enc)
	}
	copy(res.Hash[:], h.Sum(nil))
	return res
}

// mi is one machine instruction in the virtual ISA.
type mi struct {
	op   string
	defs []int // virtual registers defined
	uses []int // virtual registers used
	imm  int64
	// imms carries immediate operands (constants by value, globals by
	// address identity): they must participate in the executable hash
	// or the driver's test cache would conflate different binaries.
	imms []int64
}

// compileFunc selects instructions, eliminates phis, allocates
// registers, and returns statistics plus the deterministic encoding.
func compileFunc(f *ir.Func, ti TargetInfo) (FuncStats, []byte) {
	info := cfg.New(f)
	// Virtual register numbering: params then instructions by ID.
	vreg := map[ir.Value]int{}
	next := 0
	alloc := func(v ir.Value) int {
		if r, ok := vreg[v]; ok {
			return r
		}
		vreg[v] = next
		next++
		return vreg[v]
	}
	for _, p := range f.Params {
		alloc(p)
	}
	var code []mi
	var stackBytes int64
	useOf := func(v ir.Value) (int, bool) {
		switch v.(type) {
		case *ir.Const, *ir.Global:
			return 0, false // immediates / absolute addresses
		}
		return alloc(v), true
	}
	immOf := func(v ir.Value) (int64, bool) {
		switch x := v.(type) {
		case *ir.Const:
			if x.Ty == ir.F64 {
				return int64(math.Float64bits(x.F)), true
			}
			if x.Str != "" {
				return int64(strHash(x.Str)), true
			}
			return x.I, true
		case *ir.Global:
			return int64(x.ID) | (1 << 62), true
		}
		return 0, false
	}
	emit := func(op string, def ir.Value, imm int64, uses ...ir.Value) {
		m := mi{op: op, imm: imm}
		for _, u := range uses {
			if r, ok := useOf(u); ok {
				m.uses = append(m.uses, r)
			} else if iv, isImm := immOf(u); isImm {
				m.imms = append(m.imms, iv)
			}
		}
		if def != nil {
			m.defs = append(m.defs, alloc(def))
		}
		code = append(code, m)
	}

	for _, b := range info.RPO {
		for _, in := range b.Instrs {
			if in.Dead() {
				continue
			}
			switch in.Op {
			case ir.OpAlloca:
				stackBytes += (in.Size + 7) &^ 7
				emit("lea.sp", in, in.Size)
			case ir.OpLoad:
				op := "ld"
				if in.Ty.Kind == ir.KVec {
					op = "vld"
				}
				emit(op, in, 0, in.Operands[0])
			case ir.OpStore:
				op := "st"
				if in.Operands[0].Type().Kind == ir.KVec {
					op = "vst"
				}
				emit(op, nil, 0, in.Operands[0], in.Operands[1])
			case ir.OpGEP:
				emit("lea", in, in.Off, in.Operands...)
			case ir.OpMemCpy:
				emit("call.memcpy", nil, 0, in.Operands...)
			case ir.OpMemSet:
				emit("call.memset", nil, 0, in.Operands...)
			case ir.OpPhi:
				// Handled by copies in predecessors below; the phi
				// itself only claims its register.
				alloc(in)
			case ir.OpCall:
				for _, a := range in.Operands {
					emit("mov.arg", nil, 0, a)
				}
				var def ir.Value
				if in.Ty != ir.Void {
					def = in
				}
				emit("call."+in.Callee, def, 0)
			case ir.OpBr:
				if len(in.Succs) == 2 {
					// Phi copies for both successors precede the branch.
					emitPhiCopies(&code, b, in.Succs[0], alloc, useOf)
					emitPhiCopies(&code, b, in.Succs[1], alloc, useOf)
					emit("br.cond", nil, 0, in.Operands[0])
				} else {
					emitPhiCopies(&code, b, in.Succs[0], alloc, useOf)
					emit("br", nil, 0)
				}
			case ir.OpRet:
				if len(in.Operands) > 0 {
					emit("mov.ret", nil, 0, in.Operands[0])
				}
				emit("ret", nil, 0)
			case ir.OpICmp, ir.OpFCmp:
				emit("cmp."+in.Pred.String(), in, 0, in.Operands...)
			case ir.OpSelect:
				emit("cmov", in, 0, in.Operands...)
			default:
				op := in.Op.String()
				if in.Ty.Kind == ir.KVec {
					op = "v" + op
				}
				emit(op, in, in.Size, in.Operands...)
			}
		}
	}

	spills, peak, used := linearScan(code, next, regBank(ti))
	stackBytes += int64(8 * countSpillSlots(code, spills))

	fs := FuncStats{
		Name:          f.Name,
		MachineInstrs: len(code) + spillInstrs(code, spills),
		Spills:        spillInstrs(code, spills),
		RegsUsed:      used,
		PeakPressure:  peak,
		StackBytes:    stackBytes,
		IsKernel:      f.Attrs.Kernel,
	}
	return fs, encode(code, spills)
}

func regBank(ti TargetInfo) int {
	if ti.Unified {
		return ti.IntRegs
	}
	// Split banks are approximated by their sum; the pressure mix in
	// our IR is dominated by one bank at a time anyway.
	return ti.IntRegs + ti.FPRegs
}

// emitPhiCopies lowers phi nodes of succ into moves at the end of pred.
func emitPhiCopies(code *[]mi, pred, succ *ir.Block, alloc func(ir.Value) int, useOf func(ir.Value) (int, bool)) {
	for _, in := range succ.Instrs {
		if in.Dead() || in.Op != ir.OpPhi {
			continue
		}
		for i, from := range in.Incoming {
			if from != pred {
				continue
			}
			m := mi{op: "mov.phi", defs: []int{alloc(in)}}
			if r, ok := useOf(in.Operands[i]); ok {
				m.uses = append(m.uses, r)
			}
			*code = append(*code, m)
		}
	}
}

// linearScan computes live intervals over the linearized code and
// assigns K registers, spilling the interval with the furthest end
// when pressure exceeds K (Poletto–Sarkar). Returns the set of spilled
// vregs, the peak pressure, and the number of registers used.
func linearScan(code []mi, nvregs, k int) (spilled map[int]bool, peak, used int) {
	start := make([]int, nvregs)
	end := make([]int, nvregs)
	seen := make([]bool, nvregs)
	for i := range start {
		start[i] = -1
	}
	touch := func(r, pos int) {
		if !seen[r] {
			seen[r] = true
			start[r], end[r] = pos, pos
			return
		}
		if pos > end[r] {
			end[r] = pos
		}
	}
	for pos, m := range code {
		for _, r := range m.defs {
			touch(r, pos)
		}
		for _, r := range m.uses {
			touch(r, pos)
		}
	}
	type interval struct{ vr, s, e int }
	var ivs []interval
	for r := 0; r < nvregs; r++ {
		if seen[r] {
			ivs = append(ivs, interval{r, start[r], end[r]})
		}
	}
	sort.Slice(ivs, func(i, j int) bool {
		if ivs[i].s != ivs[j].s {
			return ivs[i].s < ivs[j].s
		}
		return ivs[i].vr < ivs[j].vr
	})
	spilled = map[int]bool{}
	var active []interval // sorted by end
	insertActive := func(iv interval) {
		i := sort.Search(len(active), func(i int) bool { return active[i].e > iv.e })
		active = append(active, interval{})
		copy(active[i+1:], active[i:])
		active[i] = iv
	}
	maxActive := 0
	for _, iv := range ivs {
		// Expire.
		j := 0
		for _, a := range active {
			if a.e >= iv.s {
				active[j] = a
				j++
			}
		}
		active = active[:j]
		if len(active) >= k {
			// Spill the furthest-ending interval.
			last := active[len(active)-1]
			if last.e > iv.e {
				spilled[last.vr] = true
				active = active[:len(active)-1]
				insertActive(iv)
			} else {
				spilled[iv.vr] = true
			}
		} else {
			insertActive(iv)
		}
		if len(active) > maxActive {
			maxActive = len(active)
		}
		if len(active)+1 > peak {
			peak = len(active)
		}
	}
	peak = maxActive
	used = maxActive
	if used > k {
		used = k
	}
	return spilled, peak, used
}

// spillInstrs counts the reload/store instructions spilling introduces:
// one store at each def plus one reload at each use of a spilled vreg.
func spillInstrs(code []mi, spilled map[int]bool) int {
	n := 0
	for _, m := range code {
		for _, r := range m.defs {
			if spilled[r] {
				n++
			}
		}
		for _, r := range m.uses {
			if spilled[r] {
				n++
			}
		}
	}
	return n
}

func countSpillSlots(_ []mi, spilled map[int]bool) int { return len(spilled) }

// encode produces the deterministic binary encoding hashed for the
// executable cache.
func encode(code []mi, spilled map[int]bool) []byte {
	var out []byte
	for _, m := range code {
		out = append(out, []byte(m.op)...)
		out = append(out, 0)
		var tmp [8]byte
		binary.LittleEndian.PutUint64(tmp[:], uint64(m.imm))
		out = append(out, tmp[:]...)
		for _, iv := range m.imms {
			binary.LittleEndian.PutUint64(tmp[:], uint64(iv))
			out = append(out, tmp[:]...)
		}
		out = append(out, 0xFD)
		for _, r := range m.defs {
			out = appendReg(out, r, spilled)
		}
		out = append(out, 0xFE)
		for _, r := range m.uses {
			out = appendReg(out, r, spilled)
		}
		out = append(out, 0xFF)
	}
	return out
}

func appendReg(out []byte, r int, spilled map[int]bool) []byte {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], uint32(r))
	out = append(out, tmp[:]...)
	if spilled[r] {
		out = append(out, 1)
	} else {
		out = append(out, 0)
	}
	return out
}

func writeInt(h interface{ Write([]byte) (int, error) }, v int64) {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], uint64(v))
	h.Write(tmp[:])
}

func f2bits(f float64) uint64 { return math.Float64bits(f) }

// strHash gives string constants a stable immediate encoding (FNV-1a).
func strHash(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	return h
}
