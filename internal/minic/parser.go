package minic

import "fmt"

type parser struct {
	file    string
	toks    []token
	pos     int
	structs map[string]bool
}

// Parse parses a translation unit.
func Parse(file, src string) (*File, error) {
	toks, err := lex(file, src)
	if err != nil {
		return nil, err
	}
	p := &parser{file: file, toks: toks, structs: map[string]bool{}}
	return p.parseFile()
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) errf(t token, format string, args ...any) error {
	return fmt.Errorf("%s:%d:%d: %s", p.file, t.line, t.col, fmt.Sprintf(format, args...))
}

func (p *parser) at(text string) bool {
	t := p.cur()
	return (t.kind == tokPunct || t.kind == tokIdent) && t.text == text
}

func (p *parser) accept(text string) bool {
	if p.at(text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(text string) error {
	if !p.accept(text) {
		return p.errf(p.cur(), "expected %q, found %q", text, p.cur().text)
	}
	return nil
}

func (p *parser) posOf(t token) Pos { return Pos{Line: t.line, Col: t.col} }

func (p *parser) isTypeName(s string) bool {
	switch s {
	case "int", "double", "void", "vec4":
		return true
	}
	return p.structs[s]
}

func (p *parser) parseFile() (*File, error) {
	f := &File{Name: p.file}
	for p.cur().kind != tokEOF {
		switch {
		case p.at("struct"):
			sd, err := p.parseStruct()
			if err != nil {
				return nil, err
			}
			f.Structs = append(f.Structs, sd)
		default:
			if err := p.parseTopDecl(f); err != nil {
				return nil, err
			}
		}
	}
	return f, nil
}

func (p *parser) parseStruct() (*StructDecl, error) {
	start := p.next() // struct
	name := p.next()
	if name.kind != tokIdent {
		return nil, p.errf(name, "expected struct name")
	}
	p.structs[name.text] = true
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	sd := &StructDecl{Name: name.text, Pos: p.posOf(start)}
	for !p.accept("}") {
		ty, err := p.parseType()
		if err != nil {
			return nil, err
		}
		fname := p.next()
		if fname.kind != tokIdent {
			return nil, p.errf(fname, "expected field name")
		}
		sd.Fields = append(sd.Fields, Field{Name: fname.text, Type: ty})
		if err := p.expect(";"); err != nil {
			return nil, err
		}
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	return sd, nil
}

func (p *parser) parseType() (TypeExpr, error) {
	t := p.cur()
	if t.kind != tokIdent || !p.isTypeName(t.text) {
		return TypeExpr{}, p.errf(t, "expected type name, found %q", t.text)
	}
	p.pos++
	ty := TypeExpr{Base: t.text}
	for {
		if p.accept("*") {
			ty.Ptr++
			continue
		}
		if p.at("restrict") {
			p.pos++
			ty.Restrict = true
			continue
		}
		break
	}
	return ty, nil
}

// parseTopDecl parses a global variable or function definition.
func (p *parser) parseTopDecl(f *File) error {
	kernel := p.accept("kernel")
	start := p.cur()
	ty, err := p.parseType()
	if err != nil {
		return err
	}
	name := p.next()
	if name.kind != tokIdent {
		return p.errf(name, "expected declaration name")
	}
	if p.at("(") {
		fd, err := p.parseFuncRest(ty, name, kernel)
		if err != nil {
			return err
		}
		f.Funcs = append(f.Funcs, fd)
		return nil
	}
	if kernel {
		return p.errf(start, "kernel qualifier only applies to functions")
	}
	g := &GlobalDecl{Name: name.text, Type: ty, Pos: p.posOf(name)}
	if p.accept("[") {
		n := p.next()
		if n.kind != tokInt {
			return p.errf(n, "global array length must be an integer literal")
		}
		g.Len = n.i
		if err := p.expect("]"); err != nil {
			return err
		}
	}
	if p.accept("=") {
		g.HasInit = true
		if p.accept("{") {
			for !p.accept("}") {
				t := p.next()
				neg := false
				if t.kind == tokPunct && t.text == "-" {
					neg = true
					t = p.next()
				}
				switch t.kind {
				case tokInt:
					v := t.i
					if neg {
						v = -v
					}
					g.InitI = append(g.InitI, v)
				case tokFloat:
					v := t.f
					if neg {
						v = -v
					}
					g.InitF = append(g.InitF, v)
				default:
					return p.errf(t, "expected numeric initializer")
				}
				if !p.accept(",") && !p.at("}") {
					return p.errf(p.cur(), "expected ',' or '}' in initializer")
				}
			}
		} else {
			t := p.next()
			neg := false
			if t.kind == tokPunct && t.text == "-" {
				neg = true
				t = p.next()
			}
			switch t.kind {
			case tokInt:
				v := t.i
				if neg {
					v = -v
				}
				g.InitI = append(g.InitI, v)
			case tokFloat:
				v := t.f
				if neg {
					v = -v
				}
				g.InitF = append(g.InitF, v)
			default:
				return p.errf(t, "expected numeric initializer")
			}
		}
	}
	f.Globals = append(f.Globals, g)
	return p.expect(";")
}

func (p *parser) parseFuncRest(ret TypeExpr, name token, kernel bool) (*FuncDecl, error) {
	fd := &FuncDecl{Name: name.text, Ret: ret, Kernel: kernel, Pos: p.posOf(name)}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	for !p.accept(")") {
		ty, err := p.parseType()
		if err != nil {
			return nil, err
		}
		pn := p.next()
		if pn.kind != tokIdent {
			return nil, p.errf(pn, "expected parameter name")
		}
		fd.Params = append(fd.Params, Param{Name: pn.text, Type: ty})
		if !p.accept(",") && !p.at(")") {
			return nil, p.errf(p.cur(), "expected ',' or ')' in parameter list")
		}
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	fd.Body = body
	return fd, nil
}

func (p *parser) parseBlock() (*Block, error) {
	start := p.cur()
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	b := &Block{Pos: p.posOf(start)}
	for !p.accept("}") {
		if p.cur().kind == tokEOF {
			return nil, p.errf(start, "unterminated block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	return b, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	t := p.cur()
	switch {
	case p.at("{"):
		return p.parseBlock()
	case p.at("if"):
		return p.parseIf()
	case p.at("while"):
		p.pos++
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return &While{Cond: cond, Body: body, Pos: p.posOf(t)}, nil
	case p.at("for"):
		return p.parseFor()
	case p.at("parallel"):
		return p.parseParallelFor()
	case p.at("task"):
		p.pos++
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return &Task{Body: body, Pos: p.posOf(t)}, nil
	case p.at("taskwait"):
		p.pos++
		return &TaskWait{Pos: p.posOf(t)}, p.expect(";")
	case p.at("return"):
		p.pos++
		r := &Return{Pos: p.posOf(t)}
		if !p.at(";") {
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			r.X = x
		}
		return r, p.expect(";")
	case p.at("break"):
		p.pos++
		return &Break{Pos: p.posOf(t)}, p.expect(";")
	case p.at("continue"):
		p.pos++
		return &Continue{Pos: p.posOf(t)}, p.expect(";")
	}
	// Declaration?
	if t.kind == tokIdent && p.isTypeName(t.text) && p.toks[p.pos+1].kind == tokIdent ||
		t.kind == tokIdent && p.isTypeName(t.text) && p.toks[p.pos+1].text == "*" {
		return p.parseVarDecl()
	}
	return p.parseSimpleStmt(true)
}

func (p *parser) parseVarDecl() (Stmt, error) {
	start := p.cur()
	ty, err := p.parseType()
	if err != nil {
		return nil, err
	}
	name := p.next()
	if name.kind != tokIdent {
		return nil, p.errf(name, "expected variable name")
	}
	d := &VarDecl{Name: name.text, Type: ty, Pos: p.posOf(start)}
	if p.accept("[") {
		n, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		d.Len = n
		if err := p.expect("]"); err != nil {
			return nil, err
		}
	}
	if p.accept("=") {
		init, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		d.Init = init
	}
	return d, p.expect(";")
}

// parseSimpleStmt parses assignment / inc-dec / call statements; when
// consumeSemi it eats the trailing semicolon.
func (p *parser) parseSimpleStmt(consumeSemi bool) (Stmt, error) {
	start := p.cur()
	lhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	var st Stmt
	switch {
	case p.at("=") || p.at("+=") || p.at("-=") || p.at("*=") || p.at("/=") || p.at("%="):
		op := p.next().text
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st = &Assign{LHS: lhs, Op: op, RHS: rhs, Pos: p.posOf(start)}
	case p.accept("++"):
		st = &IncDec{LHS: lhs, Pos: p.posOf(start)}
	case p.accept("--"):
		st = &IncDec{LHS: lhs, Dec: true, Pos: p.posOf(start)}
	default:
		if lhs.Kind != ECall && lhs.Kind != ELaunch {
			return nil, p.errf(start, "expression statement must be a call")
		}
		st = &ExprStmt{X: lhs, Pos: p.posOf(start)}
	}
	if consumeSemi {
		if err := p.expect(";"); err != nil {
			return nil, err
		}
	}
	return st, nil
}

func (p *parser) parseIf() (Stmt, error) {
	start := p.next() // if
	if err := p.expect("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	then, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	node := &If{Cond: cond, Then: then, Pos: p.posOf(start)}
	if p.accept("else") {
		if p.at("if") {
			els, err := p.parseIf()
			if err != nil {
				return nil, err
			}
			node.Else = &Block{Stmts: []Stmt{els}, Pos: els.stmtPos()}
		} else {
			els, err := p.parseBlock()
			if err != nil {
				return nil, err
			}
			node.Else = els
		}
	}
	return node, nil
}

func (p *parser) parseFor() (Stmt, error) {
	start := p.next() // for
	if err := p.expect("("); err != nil {
		return nil, err
	}
	f := &For{Pos: p.posOf(start)}
	if !p.at(";") {
		t := p.cur()
		if t.kind == tokIdent && p.isTypeName(t.text) {
			d, err := p.parseVarDecl() // consumes ';'
			if err != nil {
				return nil, err
			}
			f.Init = d
		} else {
			s, err := p.parseSimpleStmt(true)
			if err != nil {
				return nil, err
			}
			f.Init = s
		}
	} else {
		p.pos++ // ';'
	}
	if !p.at(";") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		f.Cond = cond
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	if !p.at(")") {
		s, err := p.parseSimpleStmt(false)
		if err != nil {
			return nil, err
		}
		f.Step = s
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	f.Body = body
	return f, nil
}

// parseParallelFor: parallel for (i = from; i < to; i++) { ... }
func (p *parser) parseParallelFor() (Stmt, error) {
	start := p.next() // parallel
	if err := p.expect("for"); err != nil {
		return nil, err
	}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	// Accept an optional 'int' type on the induction variable.
	if p.at("int") {
		p.pos++
	}
	name := p.next()
	if name.kind != tokIdent {
		return nil, p.errf(name, "expected induction variable")
	}
	if err := p.expect("="); err != nil {
		return nil, err
	}
	from, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	if !p.accept(name.text) {
		return nil, p.errf(p.cur(), "parallel for condition must test %q", name.text)
	}
	if err := p.expect("<"); err != nil {
		return nil, err
	}
	to, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	if !p.accept(name.text) {
		return nil, p.errf(p.cur(), "parallel for step must increment %q", name.text)
	}
	if err := p.expect("++"); err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &ParallelFor{Var: name.text, From: from, To: to, Body: body, Pos: p.posOf(start)}, nil
}
