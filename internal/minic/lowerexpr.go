package minic

import (
	"github.com/oraql/go-oraql/internal/ir"
)

// lvalue describes an assignable location.
type lvalue struct {
	isSSA bool
	vi    *varInfo // SSA variable
	addr  ir.Value // memory location otherwise
	ty    semType  // value type stored at the location
	tbaa  string
}

// lowerLValue resolves an assignable expression.
func (fc *fnctx) lowerLValue(e *Expr) lvalue {
	lw := fc.lw
	switch e.Kind {
	case EIdent:
		if vi := fc.lookup(e.Name); vi != nil {
			switch vi.kind {
			case vkSSA:
				return lvalue{isSSA: true, vi: vi, ty: vi.ty}
			case vkBoxed:
				return lvalue{addr: vi.base, ty: vi.ty, tbaa: lw.tbaaFor(vi.ty)}
			case vkMemory:
				lw.errf(e.Pos, "%q is an aggregate and cannot be assigned directly", e.Name)
			}
		}
		if gi, ok := lw.globals[e.Name]; ok {
			gi = fc.useGlobal(gi)
			if gi.arr {
				lw.errf(e.Pos, "global array %q cannot be assigned directly", e.Name)
			}
			fc.checkGlobalAccess(e.Pos)
			return lvalue{addr: gi.g, ty: gi.elem, tbaa: lw.tbaaFor(gi.elem)}
		}
		lw.errf(e.Pos, "undefined variable %q", e.Name)
	case EIndex:
		base, elem := fc.indexBase(e.X)
		idx, it := fc.lowerExpr(e.Y)
		if !it.isInt() {
			lw.errf(e.Pos, "array index must be int")
		}
		g := fc.b.GEP(base, idx, lw.sizeOf(elem), 0, "idx")
		g.Loc = fc.loc(e.Pos)
		return lvalue{addr: g, ty: elem, tbaa: lw.tbaaFor(elem)}
	case EField:
		addr, sname := fc.fieldBase(e.X)
		sd, ok := lw.structs[sname]
		if !ok {
			lw.errf(e.Pos, "unknown struct type %q", sname)
		}
		for i, f := range sd.Fields {
			if f.Name == e.Name {
				fty := lw.resolve(f.Type)
				g := fc.b.GEP(addr, nil, 0, int64(8*i), sname+"."+e.Name)
				g.Loc = fc.loc(e.Pos)
				return lvalue{addr: g, ty: fty, tbaa: lw.tbaaFor(fty)}
			}
		}
		lw.errf(e.Pos, "struct %q has no field %q", sname, e.Name)
	case EUnary:
		if e.Op == "*" {
			p, pt := fc.lowerExpr(e.X)
			if !pt.isPtr() {
				lw.errf(e.Pos, "cannot dereference non-pointer %s", pt)
			}
			return lvalue{addr: p, ty: pt.deref(), tbaa: lw.tbaaFor(pt.deref())}
		}
	}
	lw.errf(e.Pos, "expression is not assignable")
	return lvalue{}
}

// checkGlobalAccess registers a global referenced from device code in
// the device module (unified-memory __device__ global semantics).
func (fc *fnctx) checkGlobalAccess(pos Pos) {
	_ = pos
}

// useGlobal resolves a global by name and, for device code, imports it
// into the device module.
func (fc *fnctx) useGlobal(gi *globalInfo) *globalInfo {
	if fc.device {
		fc.lw.importGlobalToDevice(gi.g)
	}
	return gi
}

// indexBase resolves the base pointer and element type for x[...].
func (fc *fnctx) indexBase(x *Expr) (ir.Value, semType) {
	lw := fc.lw
	if x.Kind == EIdent {
		if vi := fc.lookup(x.Name); vi != nil && vi.kind == vkMemory && vi.arr {
			return vi.base, vi.ty
		}
		if gi, ok := lw.globals[x.Name]; ok && gi.arr {
			gi = fc.useGlobal(gi)
			fc.checkGlobalAccess(x.Pos)
			return gi.g, gi.elem
		}
	}
	v, vt := fc.lowerExpr(x)
	if !vt.isPtr() {
		lw.errf(x.Pos, "cannot index non-pointer %s", vt)
	}
	return v, vt.deref()
}

// fieldBase resolves the struct address and struct name for x.field.
func (fc *fnctx) fieldBase(x *Expr) (ir.Value, string) {
	lw := fc.lw
	if x.Kind == EIdent {
		if vi := fc.lookup(x.Name); vi != nil && vi.kind == vkMemory && vi.structName != "" {
			return vi.base, vi.structName
		}
	}
	v, vt := fc.lowerExpr(x)
	if vt.ptr == 1 && lw.structs[vt.base] != nil {
		return v, vt.base
	}
	lw.errf(x.Pos, "%s is not a struct or struct pointer", vt)
	return nil, ""
}

// readLV loads the current value of an lvalue.
func (fc *fnctx) readLV(lv lvalue, pos Pos) (ir.Value, semType) {
	if lv.isSSA {
		return fc.ssa.read(lv.vi.ssa, fc.b.Block()), lv.ty
	}
	ld := fc.b.Load(fc.lw.irType(lv.ty), lv.addr, lv.tbaa)
	ld.Loc = fc.loc(pos)
	return ld, lv.ty
}

// writeLV stores v into an lvalue.
func (fc *fnctx) writeLV(lv lvalue, v ir.Value, pos Pos) {
	if lv.isSSA {
		fc.ssa.write(lv.vi.ssa, fc.b.Block(), v)
		return
	}
	st := fc.b.Store(v, lv.addr, lv.tbaa)
	st.Loc = fc.loc(pos)
}

func (fc *fnctx) lowerAssign(s *Assign) {
	lv := fc.lowerLValue(s.LHS)
	rhs, rt := fc.lowerExpr(s.RHS)
	if s.Op == "=" {
		fc.writeLV(lv, fc.convert(s.Pos, rhs, rt, lv.ty), s.Pos)
		return
	}
	cur, ct := fc.readLV(lv, s.Pos)
	rhs = fc.convert(s.Pos, rhs, rt, ct)
	var op ir.Opcode
	switch s.Op {
	case "+=":
		op = ir.OpAdd
	case "-=":
		op = ir.OpSub
	case "*=":
		op = ir.OpMul
	case "/=":
		op = ir.OpSDiv
	case "%=":
		op = ir.OpSRem
	}
	if ct.isFloat() {
		switch s.Op {
		case "+=":
			op = ir.OpFAdd
		case "-=":
			op = ir.OpFSub
		case "*=":
			op = ir.OpFMul
		case "/=":
			op = ir.OpFDiv
		case "%=":
			fc.lw.errf(s.Pos, "%%= on floating-point value")
		}
	}
	if ct.isPtr() {
		// p += n: pointer arithmetic through GEP.
		if s.Op != "+=" && s.Op != "-=" {
			fc.lw.errf(s.Pos, "unsupported pointer compound assignment %s", s.Op)
		}
		idx := rhs
		if s.Op == "-=" {
			idx = fc.b.Bin(ir.OpSub, ir.ConstInt(0), rhs, "neg")
		}
		g := fc.b.GEP(cur, idx, fc.lw.sizeOf(ct.deref()), 0, "padd")
		fc.writeLV(lv, g, s.Pos)
		return
	}
	res := fc.b.Bin(op, cur, rhs, "")
	res.Loc = fc.loc(s.Pos)
	fc.writeLV(lv, res, s.Pos)
}
