package minic

import (
	"github.com/oraql/go-oraql/internal/ir"
)

// lowerCall lowers builtin and user function calls.
func (fc *fnctx) lowerCall(e *Expr) (ir.Value, semType) {
	lw := fc.lw
	args := func(want int) []ir.Value {
		if len(e.Args) != want {
			lw.errf(e.Pos, "%s expects %d argument(s), got %d", e.Name, want, len(e.Args))
		}
		out := make([]ir.Value, want)
		for i, a := range e.Args {
			out[i], _ = fc.lowerExpr(a)
		}
		return out
	}
	argT := func(i int) (ir.Value, semType) { return fc.lowerExpr(e.Args[i]) }

	switch e.Name {
	case "print":
		for _, a := range e.Args {
			if a.Kind == EString {
				fc.b.Call(ir.Void, "__print_str", ir.ConstStr(a.S))
				continue
			}
			v, vt := fc.lowerExpr(a)
			switch {
			case vt.isFloat():
				fc.b.Call(ir.Void, "__print_f64", v)
			case vt.isInt() || vt.isPtr():
				fc.b.Call(ir.Void, "__print_i64", v)
			case vt.isBool():
				fc.b.Call(ir.Void, "__print_i64", fc.convert(a.Pos, v, vt, tyInt))
			default:
				lw.errf(a.Pos, "cannot print value of type %s", vt)
			}
		}
		return ir.ConstInt(0), tyVoid
	case "sqrt", "fabs", "exp", "log", "sin", "cos":
		a := args(1)
		return fc.b.Call(ir.F64, "__"+e.Name, a[0]), tyFloat
	case "pow":
		a := args(2)
		return fc.b.Call(ir.F64, "__pow", a[0], a[1]), tyFloat
	case "mini", "maxi":
		a := args(2)
		name := map[string]string{"mini": "__min_i64", "maxi": "__max_i64"}[e.Name]
		return fc.b.Call(ir.I64, name, a[0], a[1]), tyInt
	case "minf", "maxf":
		a := args(2)
		name := map[string]string{"minf": "__min_f64", "maxf": "__max_f64"}[e.Name]
		return fc.b.Call(ir.F64, name, a[0], a[1]), tyFloat
	case "clock":
		args(0)
		return fc.b.Call(ir.I64, "__clock"), tyInt
	case "checksum":
		a := args(2)
		return fc.b.Call(ir.F64, "__checksum_f64", a[0], a[1]), tyFloat
	case "checksumi":
		a := args(2)
		return fc.b.Call(ir.I64, "__checksum_i64", a[0], a[1]), tyInt
	case "thread_id":
		args(0)
		if lw.opts.Model == ModelOpenMP || lw.opts.Model == ModelTasks {
			return fc.b.Call(ir.I64, "__omp_thread_id"), tyInt
		}
		return ir.ConstInt(0), tyInt
	case "num_threads":
		args(0)
		if lw.opts.Model == ModelOpenMP || lw.opts.Model == ModelTasks {
			return fc.b.Call(ir.I64, "__omp_num_threads"), tyInt
		}
		return ir.ConstInt(1), tyInt
	case "mpi_rank":
		args(0)
		return fc.b.Call(ir.I64, "__mpi_rank"), tyInt
	case "mpi_size":
		args(0)
		return fc.b.Call(ir.I64, "__mpi_size"), tyInt
	case "sendrecv":
		a := args(5)
		fc.b.Call(ir.Void, "__mpi_sendrecv", a...)
		return ir.ConstInt(0), tyVoid
	case "allreduce":
		a := args(1)
		return fc.b.Call(ir.F64, "__mpi_allreduce_f64", a[0]), tyFloat
	case "tid":
		args(0)
		if !fc.device {
			// Host fallback (kernels compiled for the host under
			// non-offload models read the loop induction instead).
			if vi := fc.lookup("__host_tid"); vi != nil {
				return fc.ssa.read(vi.ssa, fc.b.Block()), tyInt
			}
			return ir.ConstInt(0), tyInt
		}
		return fc.b.Call(ir.I64, "__gpu_tid"), tyInt
	case "ntid":
		args(0)
		if !fc.device {
			if vi := fc.lookup("__host_ntid"); vi != nil {
				return fc.ssa.read(vi.ssa, fc.b.Block()), tyInt
			}
			return ir.ConstInt(1), tyInt
		}
		return fc.b.Call(ir.I64, "__gpu_ntid"), tyInt
	case "memcpy":
		a := args(3)
		fc.b.MemCpy(a[0], a[1], a[2])
		return ir.ConstInt(0), tyVoid
	case "memset":
		a := args(3)
		fc.b.MemSet(a[0], a[1], a[2])
		return ir.ConstInt(0), tyVoid
	case "free":
		a := args(1)
		fc.b.Call(ir.Void, "__free", a[0])
		return ir.ConstInt(0), tyVoid

	// Explicit SIMD intrinsics (the miniGMG "sse" configuration).
	case "vload":
		v, vt := argT(0)
		if len(e.Args) != 1 || !vt.isPtr() {
			lw.errf(e.Pos, "vload expects one pointer argument")
		}
		return fc.b.Load(ir.V4F64, v, lw.tbaaFor(tyFloat)), tyVec
	case "vstore":
		if len(e.Args) != 2 {
			lw.errf(e.Pos, "vstore expects (ptr, vec4)")
		}
		p, pt := argT(0)
		v, vt := argT(1)
		if !pt.isPtr() || !vt.isVec() {
			lw.errf(e.Pos, "vstore expects (ptr, vec4)")
		}
		fc.b.Store(v, p, lw.tbaaFor(tyFloat))
		return ir.ConstInt(0), tyVoid
	case "vsplat":
		a := args(1)
		return fc.b.VSplat(ir.V4F64, a[0], "vsplat"), tyVec
	case "vreduce":
		a := args(1)
		return fc.b.VReduce(a[0], "vreduce"), tyFloat
	case "vget":
		if len(e.Args) != 2 {
			lw.errf(e.Pos, "vget expects (vec4, lane)")
		}
		v, _ := argT(0)
		lane, ok := constFold(e.Args[1])
		if !ok {
			lw.errf(e.Pos, "vget lane must be a constant")
		}
		return fc.b.VExtract(v, lane, "vget"), tyFloat
	}

	// User function call.
	fd, ok := lw.funcs[e.Name]
	if !ok {
		lw.errf(e.Pos, "call to undefined function %q", e.Name)
	}
	if fd.Kernel && lw.opts.Model == ModelOffload {
		lw.errf(e.Pos, "kernel %q must be invoked via launch", e.Name)
	}
	if fc.device && containsParallelWork(fd.Body) {
		lw.errf(e.Pos, "device code cannot call %q: it contains parallel constructs", e.Name)
	}
	if len(e.Args) != len(fd.Params) {
		lw.errf(e.Pos, "%s expects %d arguments, got %d", e.Name, len(fd.Params), len(e.Args))
	}
	irArgs := make([]ir.Value, len(e.Args))
	for i, a := range e.Args {
		v, vt := fc.lowerExpr(a)
		irArgs[i] = fc.convert(a.Pos, v, vt, lw.resolve(fd.Params[i].Type))
	}
	ret := lw.resolve(fd.Ret)
	call := fc.b.Call(lw.irType(ret), e.Name, irArgs...)
	call.Loc = fc.loc(e.Pos)
	return call, ret
}

// lowerLaunch lowers `launch f(args)[n]`: pack arguments by value into
// a context and hand it to the GPU runtime (offload model) or run the
// kernel as a host loop (all other models).
func (fc *fnctx) lowerLaunch(e *Expr) {
	lw := fc.lw
	fd, ok := lw.funcs[e.Name]
	if !ok || !fd.Kernel {
		lw.errf(e.Pos, "launch target %q is not a kernel", e.Name)
	}
	if len(e.Args) != len(fd.Params) {
		lw.errf(e.Pos, "kernel %s expects %d arguments, got %d", e.Name, len(fd.Params), len(e.Args))
	}
	n, nt := fc.lowerExpr(e.N)
	if !nt.isInt() {
		lw.errf(e.Pos, "launch thread count must be int")
	}
	if lw.opts.Model == ModelOffload {
		ctx := fc.b.Alloca(int64(8*max(1, len(e.Args))), "kargs")
		for i, a := range e.Args {
			v, vt := fc.lowerExpr(a)
			v = fc.convert(a.Pos, v, vt, lw.resolve(fd.Params[i].Type))
			slot := fc.b.GEP(ctx, nil, 0, int64(8*i), "kargs.slot")
			fc.b.Store(v, slot, lw.tbaaArgSlot(lw.resolve(fd.Params[i].Type)))
		}
		fc.b.Call(ir.Void, "__gpu_launch", ir.ConstStr(e.Name), ctx, n)
		return
	}
	// Host execution: for (t = 0; t < n; t++) f(args) with tid() = t.
	fc.lowerHostKernelLoop(e, fd, n)
}

// lowerHostKernelLoop runs a kernel sequentially on the host,
// providing tid()/ntid() through hidden SSA variables.
func (fc *fnctx) lowerHostKernelLoop(e *Expr, fd *FuncDecl, n ir.Value) {
	lw := fc.lw
	irArgs := make([]ir.Value, len(e.Args))
	for i, a := range e.Args {
		v, vt := fc.lowerExpr(a)
		irArgs[i] = fc.convert(a.Pos, v, vt, lw.resolve(fd.Params[i].Type))
	}
	header := fc.b.NewBlock("launch.cond")
	body := fc.b.NewBlock("launch.body")
	exit := fc.b.NewBlock("launch.end")
	tv := fc.ssa.newVar(ir.I64)
	fc.ssa.write(tv, fc.b.Block(), ir.ConstInt(0))
	fc.br(header)
	fc.b.SetBlock(header)
	t := fc.ssa.read(tv, header)
	cond := fc.b.ICmp(ir.PredLT, t, n, "launch.cmp")
	fc.condBr(cond, body, exit)
	fc.ssa.seal(body)
	fc.b.SetBlock(body)
	// Kernel called with an extra hidden convention: the host variant
	// of the kernel has real parameters plus tid/ntid globals; we
	// simply pass tid/ntid as extra trailing arguments.
	callArgs := append(append([]ir.Value{}, irArgs...), t, n)
	fc.b.Call(ir.Void, hostKernelName(e.Name), callArgs...)
	tn := fc.b.Bin(ir.OpAdd, t, ir.ConstInt(1), "launch.next")
	fc.ssa.write(tv, fc.b.Block(), tn)
	fc.br(header)
	fc.ssa.seal(header)
	fc.ssa.seal(exit)
	fc.b.SetBlock(exit)
}

func hostKernelName(base string) string { return base + ".host" }

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
