package minic

import (
	"fmt"

	"github.com/oraql/go-oraql/internal/ir"
)

// Dialect selects the source-language flavour, which controls how
// arrays are addressed and whether strict-aliasing (TBAA) metadata is
// emitted — the paper's C/C++ versus Fortran axis.
type Dialect int

// Dialects.
const (
	// DialectC emits direct pointers and TBAA tags.
	DialectC Dialect = iota
	// DialectFortran boxes pointer parameters and heap arrays in
	// descriptors (an extra pointer load per access) and emits no TBAA,
	// modeling the LLVM-IR the fir-dev flang produced for TestSNAP.
	DialectFortran
)

// Model selects the parallel programming model lowering.
type Model int

// Models.
const (
	// ModelSeq lowers parallel constructs to plain sequential loops.
	ModelSeq Model = iota
	// ModelOpenMP outlines parallel-for bodies into functions taking a
	// context struct of captured-variable addresses (clang-style).
	ModelOpenMP
	// ModelTasks lowers parallel-for to explicit task chunks plus a
	// taskwait (the miniGMG "omptask" configuration).
	ModelTasks
	// ModelMPI is sequential lowering with the MPI builtins expected to
	// be used by the program (ranks come from the run options).
	ModelMPI
	// ModelOffload outlines parallel-for bodies and kernel functions
	// into a separate device module launched via __gpu_launch.
	ModelOffload
)

// Options configures the frontend.
type Options struct {
	Dialect Dialect
	Model   Model
	// Views boxes heap arrays (new T[n]) in descriptors even in C
	// dialect, modeling Kokkos views / Thrust device_vectors.
	Views bool
	// NoStrictAliasing suppresses TBAA tags (implied by Fortran).
	NoStrictAliasing bool
	// TaskChunks is the number of task chunks under ModelTasks
	// (default 4).
	TaskChunks int
}

func (o Options) strictAliasing() bool {
	return !o.NoStrictAliasing && o.Dialect == DialectC
}

// Compile parses and lowers a source file. The device module is non-nil
// only for ModelOffload programs that contain kernels or parallel
// loops.
func Compile(name, src string, opts Options) (host, device *ir.Module, err error) {
	file, err := Parse(name, src)
	if err != nil {
		return nil, nil, err
	}
	return Lower(file, opts)
}

// Lower lowers a parsed file to IR.
func Lower(f *File, opts Options) (host, device *ir.Module, err error) {
	if opts.TaskChunks <= 0 {
		opts.TaskChunks = 4
	}
	lw := &lowerer{
		file: f, opts: opts,
		host:    ir.NewModule(f.Name),
		structs: map[string]*StructDecl{},
		funcs:   map[string]*FuncDecl{},
		globals: map[string]*globalInfo{},
	}
	defer func() {
		if r := recover(); r != nil {
			if le, ok := r.(lowerError); ok {
				err = fmt.Errorf("%s", string(le))
				return
			}
			panic(r)
		}
	}()
	lw.run()
	if err := ir.Verify(lw.host); err != nil {
		return nil, nil, fmt.Errorf("minic: host module verification: %w", err)
	}
	if lw.device != nil {
		if err := ir.Verify(lw.device); err != nil {
			return nil, nil, fmt.Errorf("minic: device module verification: %w", err)
		}
	}
	return lw.host, lw.device, nil
}

type lowerError string

type globalInfo struct {
	g    *ir.Global
	ty   TypeExpr
	elem semType
	arr  bool
}

// lowerer holds translation-unit state.
type lowerer struct {
	file    *File
	opts    Options
	host    *ir.Module
	device  *ir.Module
	structs map[string]*StructDecl
	funcs   map[string]*FuncDecl
	globals map[string]*globalInfo

	outlineCount int
}

func (lw *lowerer) errf(pos Pos, format string, args ...any) {
	panic(lowerError(fmt.Sprintf("%s:%d:%d: %s", lw.file.Name, pos.Line, pos.Col, fmt.Sprintf(format, args...))))
}

// deviceModule materializes the device module on first use.
func (lw *lowerer) deviceModule() *ir.Module {
	if lw.device == nil {
		lw.device = ir.NewModule(lw.file.Name + ".device")
		lw.device.Target = "gpu-sim"
		lw.device.TBAA = lw.host.TBAA // shared tag tree
	}
	return lw.device
}

func (lw *lowerer) run() {
	for _, sd := range lw.file.Structs {
		lw.structs[sd.Name] = sd
	}
	for _, fd := range lw.file.Funcs {
		lw.funcs[fd.Name] = fd
	}
	for _, g := range lw.file.Globals {
		lw.lowerGlobal(g)
	}
	if lw.opts.Model == ModelOffload {
		lw.deviceModule()
	}
	for _, fd := range lw.file.Funcs {
		lw.lowerFunc(fd)
	}
}

// importGlobalToDevice makes a host global visible to device code by
// registering the same object in the device module (the simulated
// machine has unified memory, like a __device__ __managed__ global).
func (lw *lowerer) importGlobalToDevice(g *ir.Global) {
	dev := lw.deviceModule()
	for _, existing := range dev.Globals {
		if existing == g {
			return
		}
	}
	dev.Globals = append(dev.Globals, g) // keep the host-assigned ID
}

// containsParallelWork reports whether a function body contains
// parallel-for, task, or launch constructs; such functions stay
// host-only under offload models.
func containsParallelWork(b *Block) bool {
	found := false
	var walkStmt func(Stmt)
	var walkExpr func(*Expr)
	walkExpr = func(e *Expr) {
		if e == nil || found {
			return
		}
		if e.Kind == ELaunch {
			found = true
			return
		}
		walkExpr(e.X)
		walkExpr(e.Y)
		walkExpr(e.Z)
		walkExpr(e.N)
		for _, a := range e.Args {
			walkExpr(a)
		}
	}
	walkStmt = func(s Stmt) {
		if found {
			return
		}
		switch st := s.(type) {
		case *ParallelFor, *Task, *TaskWait:
			found = true
		case *Block:
			for _, inner := range st.Stmts {
				walkStmt(inner)
			}
		case *VarDecl:
			walkExpr(st.Len)
			walkExpr(st.Init)
		case *Assign:
			walkExpr(st.LHS)
			walkExpr(st.RHS)
		case *IncDec:
			walkExpr(st.LHS)
		case *ExprStmt:
			walkExpr(st.X)
		case *If:
			walkExpr(st.Cond)
			walkStmt(st.Then)
			if st.Else != nil {
				walkStmt(st.Else)
			}
		case *While:
			walkExpr(st.Cond)
			walkStmt(st.Body)
		case *For:
			if st.Init != nil {
				walkStmt(st.Init)
			}
			walkExpr(st.Cond)
			if st.Step != nil {
				walkStmt(st.Step)
			}
			walkStmt(st.Body)
		case *Return:
			walkExpr(st.X)
		}
	}
	walkStmt(b)
	return found
}

// semType is a resolved type: base + pointer depth.
type semType struct {
	base string
	ptr  int
}

func (t semType) isPtr() bool   { return t.ptr > 0 }
func (t semType) isInt() bool   { return t.ptr == 0 && t.base == "int" }
func (t semType) isFloat() bool { return t.ptr == 0 && t.base == "double" }
func (t semType) isVec() bool   { return t.ptr == 0 && t.base == "vec4" }
func (t semType) isVoid() bool  { return t.ptr == 0 && t.base == "void" }
func (t semType) isBool() bool  { return t.ptr == 0 && t.base == "bool" }
func (t semType) isStruct() bool {
	return t.ptr == 0 && !t.isInt() && !t.isFloat() && !t.isVec() && !t.isVoid() && !t.isBool()
}
func (t semType) deref() semType { return semType{base: t.base, ptr: t.ptr - 1} }

func (t semType) String() string {
	s := t.base
	for i := 0; i < t.ptr; i++ {
		s += "*"
	}
	return s
}

func (lw *lowerer) resolve(te TypeExpr) semType { return semType{base: te.Base, ptr: te.Ptr} }

// irType maps a semType to its IR value type.
func (lw *lowerer) irType(t semType) *ir.Type {
	switch {
	case t.isPtr():
		return ir.Ptr
	case t.isInt():
		return ir.I64
	case t.isFloat():
		return ir.F64
	case t.isVec():
		return ir.V4F64
	case t.isBool():
		return ir.I1
	case t.isVoid():
		return ir.Void
	}
	return ir.Ptr // struct values are manipulated by address
}

// sizeOf returns the byte size of a semType object (for GEP scales and
// allocations). All scalars are 8 bytes; structs are 8 bytes per field.
func (lw *lowerer) sizeOf(t semType) int64 {
	if t.isPtr() || t.isInt() || t.isFloat() {
		return 8
	}
	if t.isVec() {
		return 32
	}
	if sd, ok := lw.structs[t.base]; ok {
		return int64(8 * len(sd.Fields))
	}
	return 8
}

// tbaaFor returns the TBAA tag for an access of type t ("" when strict
// aliasing is off).
func (lw *lowerer) tbaaFor(t semType) string {
	if !lw.opts.strictAliasing() {
		return ""
	}
	switch {
	case t.isPtr():
		return "any pointer"
	case t.isInt():
		return "long"
	case t.isFloat():
		return "double"
	}
	return ""
}

func (lw *lowerer) lowerGlobal(gd *GlobalDecl) {
	ty := lw.resolve(gd.Type)
	size := lw.sizeOf(ty)
	arr := gd.Len > 0
	if arr {
		size = lw.sizeOf(ty) * gd.Len
	}
	g := &ir.Global{Name: gd.Name, Size: size, InitI64: gd.InitI, InitF64: gd.InitF}
	lw.host.AddGlobal(g)
	lw.globals[gd.Name] = &globalInfo{g: g, ty: gd.Type, elem: ty, arr: arr}
	if lw.device != nil || lw.opts.Model == ModelOffload {
		// Globals are shared: the device module references the same
		// *ir.Global objects through the host list; device code only
		// reads them via pointers passed in contexts, so no copy is
		// made here.
		_ = g
	}
}
