// Package minic is the compiler frontend: a small C-like language with
// structs, pointers (including restrict), fixed arrays, heap
// allocation, parallel-for regions, tasks, GPU kernels, and explicit
// SIMD intrinsics. The lowering constructs SSA directly (Braun et al.
// style) and implements the dialect and parallel-model variations the
// paper studies: C vs Fortran-style descriptor arrays, OpenMP-style
// outlining with context structs, OpenMP tasks, MPI, offload kernels,
// and Kokkos/Thrust-style view indirection.
package minic

import (
	"fmt"
	"strings"
)

// tokKind enumerates token kinds.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokInt
	tokFloat
	tokString
	tokPunct // operators and punctuation
)

type token struct {
	kind tokKind
	text string
	i    int64
	f    float64
	line int
	col  int
}

type lexer struct {
	src  string
	file string
	pos  int
	line int
	col  int
	toks []token
}

// lex tokenizes src, returning an error with position info on bad input.
func lex(file, src string) ([]token, error) {
	lx := &lexer{src: src, file: file, line: 1, col: 1}
	if err := lx.run(); err != nil {
		return nil, err
	}
	return lx.toks, nil
}

func (lx *lexer) errf(format string, args ...any) error {
	return fmt.Errorf("%s:%d:%d: %s", lx.file, lx.line, lx.col, fmt.Sprintf(format, args...))
}

func (lx *lexer) peek() byte {
	if lx.pos >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos]
}

func (lx *lexer) peek2() byte {
	if lx.pos+1 >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos+1]
}

func (lx *lexer) advance() byte {
	c := lx.src[lx.pos]
	lx.pos++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *lexer) run() error {
	for lx.pos < len(lx.src) {
		c := lx.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '/' && lx.peek2() == '/':
			for lx.pos < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		case c == '/' && lx.peek2() == '*':
			lx.advance()
			lx.advance()
			for lx.pos < len(lx.src) && !(lx.peek() == '*' && lx.peek2() == '/') {
				lx.advance()
			}
			if lx.pos >= len(lx.src) {
				return lx.errf("unterminated block comment")
			}
			lx.advance()
			lx.advance()
		case isAlpha(c):
			if err := lx.ident(); err != nil {
				return err
			}
		case isDigit(c):
			if err := lx.number(); err != nil {
				return err
			}
		case c == '"':
			if err := lx.str(); err != nil {
				return err
			}
		default:
			if err := lx.punct(); err != nil {
				return err
			}
		}
	}
	lx.toks = append(lx.toks, token{kind: tokEOF, line: lx.line, col: lx.col})
	return nil
}

func isAlpha(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func (lx *lexer) ident() error {
	line, col := lx.line, lx.col
	start := lx.pos
	for lx.pos < len(lx.src) && (isAlpha(lx.peek()) || isDigit(lx.peek())) {
		lx.advance()
	}
	lx.toks = append(lx.toks, token{kind: tokIdent, text: lx.src[start:lx.pos], line: line, col: col})
	return nil
}

func (lx *lexer) number() error {
	line, col := lx.line, lx.col
	start := lx.pos
	isFloat := false
	for lx.pos < len(lx.src) {
		c := lx.peek()
		if isDigit(c) {
			lx.advance()
		} else if c == '.' && !isFloat && isDigit(lx.peek2()) {
			isFloat = true
			lx.advance()
		} else if (c == 'e' || c == 'E') && lx.pos > start {
			isFloat = true
			lx.advance()
			if lx.peek() == '+' || lx.peek() == '-' {
				lx.advance()
			}
		} else {
			break
		}
	}
	text := lx.src[start:lx.pos]
	t := token{text: text, line: line, col: col}
	if isFloat {
		t.kind = tokFloat
		if _, err := fmt.Sscanf(text, "%g", &t.f); err != nil {
			return lx.errf("bad float literal %q", text)
		}
	} else {
		t.kind = tokInt
		if _, err := fmt.Sscanf(text, "%d", &t.i); err != nil {
			return lx.errf("bad int literal %q", text)
		}
	}
	lx.toks = append(lx.toks, t)
	return nil
}

func (lx *lexer) str() error {
	line, col := lx.line, lx.col
	lx.advance() // opening quote
	var sb strings.Builder
	for lx.pos < len(lx.src) && lx.peek() != '"' {
		c := lx.advance()
		if c == '\\' && lx.pos < len(lx.src) {
			switch lx.advance() {
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			case '\\':
				sb.WriteByte('\\')
			case '"':
				sb.WriteByte('"')
			default:
				return lx.errf("unknown escape in string literal")
			}
			continue
		}
		sb.WriteByte(c)
	}
	if lx.pos >= len(lx.src) {
		return lx.errf("unterminated string literal")
	}
	lx.advance() // closing quote
	lx.toks = append(lx.toks, token{kind: tokString, text: sb.String(), line: line, col: col})
	return nil
}

var puncts = []string{
	// Longest first.
	"<<=", ">>=",
	"==", "!=", "<=", ">=", "&&", "||", "+=", "-=", "*=", "/=", "%=",
	"++", "--", "->", "<<", ">>",
	"+", "-", "*", "/", "%", "<", ">", "=", "!", "&", "|", "^", "~",
	"(", ")", "{", "}", "[", "]", ";", ",", ".", "?", ":",
}

func (lx *lexer) punct() error {
	line, col := lx.line, lx.col
	rest := lx.src[lx.pos:]
	for _, p := range puncts {
		if strings.HasPrefix(rest, p) {
			for range p {
				lx.advance()
			}
			lx.toks = append(lx.toks, token{kind: tokPunct, text: p, line: line, col: col})
			return nil
		}
	}
	return lx.errf("unexpected character %q", lx.peek())
}
