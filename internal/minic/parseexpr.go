package minic

// Binary operator precedence, loosest first.
var precLevels = [][]string{
	{"||"},
	{"&&"},
	{"|"},
	{"^"},
	{"&"},
	{"==", "!="},
	{"<", "<=", ">", ">="},
	{"<<", ">>"},
	{"+", "-"},
	{"*", "/", "%"},
}

func (p *parser) parseExpr() (*Expr, error) { return p.parseTernary() }

func (p *parser) parseTernary() (*Expr, error) {
	cond, err := p.parseBinary(0)
	if err != nil {
		return nil, err
	}
	if !p.accept("?") {
		return cond, nil
	}
	yes, err := p.parseTernary()
	if err != nil {
		return nil, err
	}
	if err := p.expect(":"); err != nil {
		return nil, err
	}
	no, err := p.parseTernary()
	if err != nil {
		return nil, err
	}
	return &Expr{Kind: ECond, X: cond, Y: yes, Z: no, Pos: cond.Pos}, nil
}

func (p *parser) parseBinary(level int) (*Expr, error) {
	if level >= len(precLevels) {
		return p.parseUnary()
	}
	lhs, err := p.parseBinary(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		matched := ""
		for _, op := range precLevels[level] {
			if p.at(op) {
				matched = op
				break
			}
		}
		if matched == "" {
			return lhs, nil
		}
		p.pos++
		rhs, err := p.parseBinary(level + 1)
		if err != nil {
			return nil, err
		}
		lhs = &Expr{Kind: EBinary, Op: matched, X: lhs, Y: rhs, Pos: lhs.Pos}
	}
}

func (p *parser) parseUnary() (*Expr, error) {
	t := p.cur()
	for _, op := range []string{"-", "!", "~", "*", "&"} {
		if p.at(op) {
			p.pos++
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return &Expr{Kind: EUnary, Op: op, X: x, Pos: p.posOf(t)}, nil
		}
	}
	// Cast: '(' typename ... ')'
	if p.at("(") && p.toks[p.pos+1].kind == tokIdent && p.isTypeName(p.toks[p.pos+1].text) &&
		(p.toks[p.pos+2].text == ")" || p.toks[p.pos+2].text == "*") {
		p.pos++ // '('
		ty, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Expr{Kind: ECast, Type: ty, X: x, Pos: p.posOf(t)}, nil
	}
	if p.at("new") {
		p.pos++
		ty, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if p.accept("[") {
			n, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect("]"); err != nil {
				return nil, err
			}
			return &Expr{Kind: ENewArr, Type: ty, X: n, Pos: p.posOf(t)}, nil
		}
		return &Expr{Kind: ENewObj, Type: ty, Pos: p.posOf(t)}, nil
	}
	if p.at("launch") {
		p.pos++
		name := p.next()
		if name.kind != tokIdent {
			return nil, p.errf(name, "expected kernel name after launch")
		}
		e := &Expr{Kind: ELaunch, Name: name.text, Pos: p.posOf(t)}
		if err := p.expect("("); err != nil {
			return nil, err
		}
		for !p.accept(")") {
			a, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			e.Args = append(e.Args, a)
			if !p.accept(",") && !p.at(")") {
				return nil, p.errf(p.cur(), "expected ',' or ')' in launch args")
			}
		}
		if err := p.expect("["); err != nil {
			return nil, err
		}
		n, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		e.N = n
		return e, p.expect("]")
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (*Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept("["):
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect("]"); err != nil {
				return nil, err
			}
			x = &Expr{Kind: EIndex, X: x, Y: idx, Pos: x.Pos}
		case p.accept(".") || p.accept("->"):
			f := p.next()
			if f.kind != tokIdent {
				return nil, p.errf(f, "expected field name")
			}
			x = &Expr{Kind: EField, X: x, Name: f.text, Pos: x.Pos}
		default:
			return x, nil
		}
	}
}

func (p *parser) parsePrimary() (*Expr, error) {
	t := p.cur()
	switch t.kind {
	case tokInt:
		p.pos++
		return &Expr{Kind: EInt, I: t.i, Pos: p.posOf(t)}, nil
	case tokFloat:
		p.pos++
		return &Expr{Kind: EFloat, F: t.f, Pos: p.posOf(t)}, nil
	case tokString:
		p.pos++
		return &Expr{Kind: EString, S: t.text, Pos: p.posOf(t)}, nil
	case tokIdent:
		p.pos++
		if p.at("(") {
			p.pos++
			e := &Expr{Kind: ECall, Name: t.text, Pos: p.posOf(t)}
			for !p.accept(")") {
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				e.Args = append(e.Args, a)
				if !p.accept(",") && !p.at(")") {
					return nil, p.errf(p.cur(), "expected ',' or ')' in call args")
				}
			}
			return e, nil
		}
		return &Expr{Kind: EIdent, Name: t.text, Pos: p.posOf(t)}, nil
	}
	if p.accept("(") {
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return x, p.expect(")")
	}
	return nil, p.errf(t, "unexpected token %q in expression", t.text)
}
