package minic

import (
	"strings"
	"testing"

	"github.com/oraql/go-oraql/internal/ir"
)

func TestLexerTokens(t *testing.T) {
	toks, err := lex("t.mc", `int x = 42; double y = 1.5e2; // comment
/* block */ s = "a\n\"b";`)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []tokKind
	var texts []string
	for _, tk := range toks {
		kinds = append(kinds, tk.kind)
		texts = append(texts, tk.text)
	}
	if texts[0] != "int" || texts[1] != "x" || texts[2] != "=" {
		t.Errorf("tokens: %v", texts[:4])
	}
	if toks[3].kind != tokInt || toks[3].i != 42 {
		t.Error("integer literal")
	}
	var sawFloat, sawString bool
	for _, tk := range toks {
		if tk.kind == tokFloat && tk.f == 150 {
			sawFloat = true
		}
		if tk.kind == tokString && tk.text == "a\n\"b" {
			sawString = true
		}
	}
	if !sawFloat || !sawString {
		t.Error("float/string literal lexing")
	}
	_ = kinds
}

func TestLexerErrors(t *testing.T) {
	if _, err := lex("t.mc", `"unterminated`); err == nil {
		t.Error("unterminated string must error")
	}
	if _, err := lex("t.mc", "/* unterminated"); err == nil {
		t.Error("unterminated comment must error")
	}
	if _, err := lex("t.mc", "@"); err == nil {
		t.Error("stray character must error")
	}
}

func TestLexerPositions(t *testing.T) {
	toks, err := lex("t.mc", "a\n  b")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].line != 1 || toks[1].line != 2 || toks[1].col != 3 {
		t.Errorf("positions: %v %v", toks[0], toks[1])
	}
}

func TestParserPrecedence(t *testing.T) {
	f, err := Parse("t.mc", `int main() { int x = 1 + 2 * 3; return x; }`)
	if err != nil {
		t.Fatal(err)
	}
	decl := f.Funcs[0].Body.Stmts[0].(*VarDecl)
	e := decl.Init
	if e.Kind != EBinary || e.Op != "+" {
		t.Fatalf("top op = %q", e.Op)
	}
	if e.Y.Kind != EBinary || e.Y.Op != "*" {
		t.Fatalf("rhs op = %q", e.Y.Op)
	}
}

func TestParserErrors(t *testing.T) {
	cases := []string{
		`int main() { return 0 }`,             // missing semicolon
		`int main() { if x > 0 {} return 0;}`, // missing parens
		`int main() {`,                        // unterminated block
		`bogus main() { return 0; }`,          // unknown type
		`int main() { x = ; }`,                // bad expression
	}
	for _, src := range cases {
		if _, err := Parse("t.mc", src); err == nil {
			t.Errorf("expected parse error for %q", src)
		}
	}
}

func TestParserStructsAndNew(t *testing.T) {
	src := `
struct P { double* xs; int n; };
int main() {
	P p;
	p.n = 3;
	p.xs = new double[4];
	P* q = &p;
	q.n = q.n + 1;
	return q.n;
}`
	f, err := Parse("t.mc", src)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Structs) != 1 || len(f.Structs[0].Fields) != 2 {
		t.Error("struct parse")
	}
}

func lowerOK(t *testing.T, src string, opts Options) (*ir.Module, *ir.Module) {
	t.Helper()
	host, dev, err := Compile("t.mc", src, opts)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return host, dev
}

func TestLowerSemanticErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{`int main() { return y; }`, "undefined"},
		{`int main() { int x = 1; int x = 2; return x; }`, "redeclaration"},
		{`int main() { double d = 1.0; return *d; }`, "dereference"},
		{`int main() { break; }`, "break outside loop"},
		{`void f() {} int main() { f(1); return 0; }`, "arguments"},
		{`int main() { int a[4]; a = 3; return 0; }`, "aggregate"},
	}
	for _, c := range cases {
		_, _, err := Compile("t.mc", c.src, Options{})
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("source %q: error %v, want containing %q", c.src, err, c.want)
		}
	}
}

func TestLowerEmitsTBAA(t *testing.T) {
	src := `
int main() {
	double a[2];
	int b[2];
	a[0] = 1.0;
	b[0] = 1;
	return b[0];
}`
	host, _ := lowerOK(t, src, Options{})
	s := host.String()
	if !strings.Contains(s, `!tbaa "double"`) || !strings.Contains(s, `!tbaa "long"`) {
		t.Errorf("TBAA tags missing:\n%s", s)
	}
	hostF, _ := lowerOK(t, src, Options{Dialect: DialectFortran})
	if strings.Contains(hostF.FuncByName("main").String(), "!tbaa") {
		t.Error("Fortran dialect must not emit TBAA access tags")
	}
}

func TestLowerRestrictParams(t *testing.T) {
	src := `
void f(double* restrict p, double* q) {
	p[0] = q[0];
}
int main() { return 0; }`
	host, _ := lowerOK(t, src, Options{})
	fn := host.FuncByName("f")
	if !fn.Params[0].NoAlias || fn.Params[1].NoAlias {
		t.Error("restrict must map to the noalias attribute")
	}
}

func TestFortranBoxesPointerParams(t *testing.T) {
	src := `
void f(double* p) {
	p[0] = 1.0;
}
int main() { return 0; }`
	host, _ := lowerOK(t, src, Options{Dialect: DialectFortran})
	fn := host.FuncByName("f")
	s := fn.String()
	if !strings.Contains(s, "p.box") {
		t.Errorf("Fortran params must be boxed:\n%s", s)
	}
}

func TestViewsBoxHeapArrays(t *testing.T) {
	src := `
int main() {
	double* v = new double[8];
	v[0] = 1.0;
	return 0;
}`
	host, _ := lowerOK(t, src, Options{Views: true})
	s := host.FuncByName("main").String()
	if !strings.Contains(s, "v.box") {
		t.Errorf("views must box heap arrays:\n%s", s)
	}
	hostPlain, _ := lowerOK(t, src, Options{})
	if strings.Contains(hostPlain.FuncByName("main").String(), "v.box") {
		t.Error("plain C must not box")
	}
}

func TestOpenMPOutlining(t *testing.T) {
	src := `
int main() {
	double a[16];
	double s = 0.0;
	parallel for (i = 0; i < 16; i++) {
		a[i] = (double)i + s;
	}
	return 0;
}`
	host, dev := lowerOK(t, src, Options{Model: ModelOpenMP})
	if dev != nil {
		t.Error("OpenMP model must not create a device module")
	}
	out := host.FuncByName(".omp_outlined.1")
	if out == nil {
		t.Fatal("outlined function missing")
	}
	if !out.Attrs.Outlined || len(out.Params) != 3 {
		t.Error("outlined function shape")
	}
	mainS := host.FuncByName("main").String()
	if !strings.Contains(mainS, "__omp_fork") {
		t.Error("fork call missing")
	}
	if !strings.Contains(out.String(), ".dptr") {
		t.Errorf("captured pointers must load through the context:\n%s", out.String())
	}
}

func TestOffloadCreatesDeviceModule(t *testing.T) {
	src := `
int main() {
	double* a = new double[16];
	parallel for (i = 0; i < 16; i++) {
		a[i] = (double)i;
	}
	return 0;
}`
	host, dev := lowerOK(t, src, Options{Model: ModelOffload})
	if dev == nil {
		t.Fatal("offload must create a device module")
	}
	if dev.Target != "gpu-sim" {
		t.Errorf("device target = %q", dev.Target)
	}
	k := dev.FuncByName(".omp_offload.1")
	if k == nil || !k.Attrs.Kernel {
		t.Fatal("device kernel missing")
	}
	if !strings.Contains(host.FuncByName("main").String(), "__gpu_launch") {
		t.Error("launch call missing")
	}
	if err := ir.Verify(dev); err != nil {
		t.Errorf("device module must verify: %v", err)
	}
}

func TestTasksLowering(t *testing.T) {
	src := `
int main() {
	double a[16];
	parallel for (i = 0; i < 16; i++) {
		a[i] = 1.0;
	}
	return 0;
}`
	host, _ := lowerOK(t, src, Options{Model: ModelTasks, TaskChunks: 3})
	mainS := host.FuncByName("main").String()
	if c := strings.Count(mainS, "__omp_task("); c != 3 {
		t.Errorf("expected 3 task spawns, got %d", c)
	}
	if !strings.Contains(mainS, "__omp_taskwait") {
		t.Error("taskwait missing")
	}
}

func TestKernelLaunchHostFallback(t *testing.T) {
	src := `
kernel void scale(double* a, double f, int n) {
	int i = tid();
	if (i < n) {
		a[i] = a[i] * f;
	}
}
int main() {
	double* a = new double[8];
	launch scale(a, 2.0, 8) [8];
	return 0;
}`
	// Non-offload: kernel becomes a host function with hidden tid/ntid.
	host, dev := lowerOK(t, src, Options{Model: ModelSeq})
	if dev != nil {
		t.Error("no device module expected")
	}
	hk := host.FuncByName("scale.host")
	if hk == nil || len(hk.Params) != 5 {
		t.Fatalf("host kernel variant missing or malformed")
	}
	// Offload: kernel compiles to the device with a packed context.
	_, dev2 := lowerOK(t, src, Options{Model: ModelOffload})
	if dev2 == nil || dev2.FuncByName("scale") == nil {
		t.Fatal("device kernel missing")
	}
	if !dev2.FuncByName("scale").Attrs.Kernel {
		t.Error("kernel attribute missing")
	}
}

func TestDeviceFunctionCloning(t *testing.T) {
	src := `
double helper(double x) {
	return x * 2.0;
}
int main() {
	double* a = new double[8];
	parallel for (i = 0; i < 8; i++) {
		a[i] = helper((double)i);
	}
	return 0;
}`
	host, dev := lowerOK(t, src, Options{Model: ModelOffload})
	if host.FuncByName("helper") == nil {
		t.Error("host copy of helper missing")
	}
	if dev.FuncByName("helper") == nil {
		t.Error("device copy of helper missing")
	}
}

func TestGlobalSharingWithDevice(t *testing.T) {
	src := `
double table[4] = { 1.0, 2.0, 3.0, 4.0 };
int main() {
	double* out = new double[8];
	parallel for (i = 0; i < 8; i++) {
		out[i] = table[i % 4];
	}
	return 0;
}`
	host, dev := lowerOK(t, src, Options{Model: ModelOffload})
	g := host.GlobalByName("table")
	if g == nil {
		t.Fatal("host global missing")
	}
	if dev.GlobalByName("table") != g {
		t.Error("device module must share the host global object")
	}
}

func TestBreakContinue(t *testing.T) {
	src := `
int main() {
	int s = 0;
	for (int i = 0; i < 100; i++) {
		if (i == 5) {
			break;
		}
		if (i % 2 == 1) {
			continue;
		}
		s = s + i;
	}
	return s;
}`
	host, _ := lowerOK(t, src, Options{})
	if err := ir.Verify(host); err != nil {
		t.Fatal(err)
	}
}

func TestSSAConstructionMergesDiamond(t *testing.T) {
	src := `
int main() {
	int x = 1;
	int c = 3;
	if (c > 2) {
		x = 10;
	} else {
		x = 20;
	}
	return x;
}`
	host, _ := lowerOK(t, src, Options{})
	s := host.FuncByName("main").String()
	if !strings.Contains(s, "phi") {
		t.Errorf("a phi is required at the merge:\n%s", s)
	}
}

func TestVectorIntrinsics(t *testing.T) {
	src := `
int main() {
	double a[8];
	for (int i = 0; i < 8; i++) {
		a[i] = (double)i;
	}
	vec4 v = vload(&a[0]);
	vec4 w = v * vsplat(2.0);
	vstore(&a[4], w + vload(&a[4]));
	double s = vreduce(w);
	return (int)s;
}`
	host, _ := lowerOK(t, src, Options{})
	s := host.FuncByName("main").String()
	for _, want := range []string{"<4 x double>", "vsplat", "vreduce"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q:\n%s", want, s)
		}
	}
}

// TestParserNeverPanicsOnMutations feeds the parser randomly truncated
// and mutated sources; it must return errors, never panic.
func TestParserNeverPanicsOnMutations(t *testing.T) {
	base := `
struct P { double* xs; int n; };
double g[4] = { 1.0, 2.0, 3.0, 4.0 };
int helper(int x) { return x * 2; }
int main() {
	P p;
	p.xs = new double[8];
	double s = 0.0;
	parallel for (i = 0; i < 8; i++) {
		p.xs[i] = (double)i + g[i % 4];
	}
	for (int i = 0; i < 8; i++) {
		s = s + p.xs[i];
	}
	print(s, helper(3), "\n");
	return 0;
}`
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("parser/lowerer panicked: %v", r)
		}
	}()
	// Truncations at every byte boundary.
	for i := 0; i < len(base); i += 7 {
		_, _, _ = Compile("mut.mc", base[:i], Options{Model: ModelOpenMP})
	}
	// Character substitutions at sampled positions.
	for i := 5; i < len(base); i += 11 {
		for _, c := range []byte{'}', '(', ';', '*', 'x'} {
			mutated := base[:i] + string(c) + base[i+1:]
			_, _, _ = Compile("mut.mc", mutated, Options{})
		}
	}
}

// TestDeterministicLowering: two compilations of the same source must
// produce byte-identical IR (the probing driver depends on it).
func TestDeterministicLowering(t *testing.T) {
	src := `
int main() {
	double a[32];
	double s = 0.0;
	parallel for (i = 0; i < 32; i++) {
		a[i] = (double)i * 0.5;
	}
	for (int i = 0; i < 32; i++) {
		s = s + a[i];
	}
	print(s, "\n");
	return 0;
}`
	for _, opts := range []Options{
		{}, {Model: ModelOpenMP}, {Model: ModelTasks}, {Model: ModelOffload},
		{Dialect: DialectFortran}, {Views: true, Model: ModelOffload},
	} {
		h1, d1, err := Compile("d.mc", src, opts)
		if err != nil {
			t.Fatal(err)
		}
		h2, d2, err := Compile("d.mc", src, opts)
		if err != nil {
			t.Fatal(err)
		}
		if h1.String() != h2.String() {
			t.Fatalf("host lowering nondeterministic for %+v", opts)
		}
		if (d1 == nil) != (d2 == nil) {
			t.Fatalf("device module presence nondeterministic")
		}
		if d1 != nil && d1.String() != d2.String() {
			t.Fatalf("device lowering nondeterministic for %+v", opts)
		}
	}
}
