package minic

import (
	"fmt"

	"github.com/oraql/go-oraql/internal/ir"
)

// capture describes one variable captured into an outlining context.
// Every capture occupies one 8-byte context slot:
//   - scalars (vkSSA) are spilled to a stack slot whose *address* goes
//     into the context (OpenMP shared-variable style),
//   - memory objects contribute their base pointer,
//   - boxed variables contribute their box address (descriptor double
//     indirection, the Fortran/Kokkos pattern),
//   - globals (offload only) contribute their address.
type capture struct {
	name       string
	kind       varKind // kind inside the outlined function
	ty         semType // value type (vkBoxed) or element type (vkMemory)
	arr        bool
	structName string
	reload     *varInfo // caller-side SSA variable to reload after the region
	slotIdx    int
}

// collectFreeVars walks the body and returns the referenced outer
// variable names in order of first appearance.
func collectFreeVars(body *Block, exclude map[string]bool) []string {
	var order []string
	seen := map[string]bool{}
	declared := []map[string]bool{{}}
	for e := range exclude {
		declared[0][e] = true
	}
	isDeclared := func(n string) bool {
		for i := len(declared) - 1; i >= 0; i-- {
			if declared[i][n] {
				return true
			}
		}
		return false
	}
	var walkExpr func(e *Expr)
	var walkStmt func(s Stmt)
	walkExpr = func(e *Expr) {
		if e == nil {
			return
		}
		if e.Kind == EIdent && !isDeclared(e.Name) && !seen[e.Name] {
			seen[e.Name] = true
			order = append(order, e.Name)
		}
		walkExpr(e.X)
		walkExpr(e.Y)
		walkExpr(e.Z)
		walkExpr(e.N)
		for _, a := range e.Args {
			walkExpr(a)
		}
	}
	walkStmt = func(s Stmt) {
		switch st := s.(type) {
		case *Block:
			declared = append(declared, map[string]bool{})
			for _, inner := range st.Stmts {
				walkStmt(inner)
			}
			declared = declared[:len(declared)-1]
		case *VarDecl:
			walkExpr(st.Len)
			walkExpr(st.Init)
			declared[len(declared)-1][st.Name] = true
		case *Assign:
			walkExpr(st.LHS)
			walkExpr(st.RHS)
		case *IncDec:
			walkExpr(st.LHS)
		case *ExprStmt:
			walkExpr(st.X)
		case *If:
			walkExpr(st.Cond)
			walkStmt(st.Then)
			if st.Else != nil {
				walkStmt(st.Else)
			}
		case *While:
			walkExpr(st.Cond)
			walkStmt(st.Body)
		case *For:
			declared = append(declared, map[string]bool{})
			if st.Init != nil {
				walkStmt(st.Init)
			}
			walkExpr(st.Cond)
			if st.Step != nil {
				walkStmt(st.Step)
			}
			walkStmt(st.Body)
			declared = declared[:len(declared)-1]
		case *ParallelFor:
			declared = append(declared, map[string]bool{})
			walkExpr(st.From)
			walkExpr(st.To)
			declared[len(declared)-1][st.Var] = true
			walkStmt(st.Body)
			declared = declared[:len(declared)-1]
		case *Task:
			walkStmt(st.Body)
		case *Return:
			walkExpr(st.X)
		}
	}
	walkStmt(body)
	return order
}

// seqFor lowers a parallel-for as an ordinary sequential loop.
func (fc *fnctx) seqFor(s *ParallelFor) {
	loop := &For{
		Init: &VarDecl{Name: s.Var, Type: TypeExpr{Base: "int"}, Init: s.From, Pos: s.Pos},
		Cond: &Expr{Kind: EBinary, Op: "<", X: &Expr{Kind: EIdent, Name: s.Var, Pos: s.Pos}, Y: s.To, Pos: s.Pos},
		Step: &IncDec{LHS: &Expr{Kind: EIdent, Name: s.Var, Pos: s.Pos}, Pos: s.Pos},
		Body: s.Body,
		Pos:  s.Pos,
	}
	fc.pushScope()
	fc.lowerStmt(loop)
	fc.popScope()
}

func (fc *fnctx) lowerParallelFor(s *ParallelFor) {
	switch fc.lw.opts.Model {
	case ModelSeq, ModelMPI:
		fc.seqFor(s)
	case ModelOpenMP:
		fc.outlineParallelFor(s, false)
	case ModelTasks:
		fc.outlineTasks(s)
	case ModelOffload:
		fc.outlineParallelFor(s, true)
	}
}

// prepareCaptures resolves the body's free variables into capture
// records and returns them; reserved counts the slots used before the
// captures (from/lo/hi values).
func (fc *fnctx) prepareCaptures(s *ParallelFor, offload bool, reserved int) []capture {
	lw := fc.lw
	free := collectFreeVars(s.Body, map[string]bool{s.Var: true})
	var caps []capture
	for _, name := range free {
		if vi := fc.lookup(name); vi != nil {
			c := capture{name: name, slotIdx: reserved + len(caps)}
			switch vi.kind {
			case vkSSA:
				c.kind = vkBoxed
				c.ty = vi.ty
			case vkMemory:
				c.kind = vkMemory
				c.ty = vi.ty
				c.arr = vi.arr
				c.structName = vi.structName
			case vkBoxed:
				c.kind = vkBoxed
				c.ty = vi.ty
			}
			caps = append(caps, c)
			continue
		}
		if _, ok := lw.globals[name]; ok {
			// Globals are referenced directly from outlined code; under
			// offload they are imported into the device module
			// (unified-memory semantics).
			continue
		}
		if _, isFn := lw.funcs[name]; isFn {
			continue
		}
		lw.errf(s.Pos, "undefined identifier %q in parallel region", name)
	}
	return caps
}

// spillCaptures materializes the shared-variable pointers for a
// capture set: SSA scalars spill to stack slots (whose addresses the
// context will carry — OpenMP shared-variable style), memory objects
// and boxes contribute their existing addresses. The returned slice is
// parallel to caps. The same spill slots are shared by every chunk of
// a region, so writes inside the region are visible after it.
func (fc *fnctx) spillCaptures(caps []capture) []ir.Value {
	lw := fc.lw
	ptrs := make([]ir.Value, len(caps))
	for i := range caps {
		c := &caps[i]
		vi := fc.lookup(c.name)
		switch {
		case vi != nil && vi.kind == vkSSA:
			spill := fc.b.Alloca(8, c.name+".shared")
			cur := fc.ssa.read(vi.ssa, fc.b.Block())
			fc.b.Store(cur, spill, lw.tbaaFor(vi.ty))
			ptrs[i] = spill
			c.reload = vi
		case vi != nil && (vi.kind == vkMemory || vi.kind == vkBoxed):
			ptrs[i] = vi.base
		default:
			ptrs[i] = lw.globals[c.name].g
		}
	}
	return ptrs
}

// packContext allocates one context object and fills its slots from
// the by-value header vals plus the capture pointers.
func (fc *fnctx) packContext(s *ParallelFor, caps []capture, ptrs []ir.Value, vals []ir.Value) ir.Value {
	lw := fc.lw
	slots := len(vals) + len(caps)
	if slots == 0 {
		slots = 1
	}
	ctx := fc.b.Alloca(int64(8*slots), "omp.ctx")
	for i, v := range vals {
		slot := fc.b.GEP(ctx, nil, 0, int64(8*i), "ctx.slot")
		fc.b.Store(v, slot, lw.tbaaArgSlot(tyInt))
	}
	for i := range caps {
		slot := fc.b.GEP(ctx, nil, 0, int64(8*caps[i].slotIdx), "ctx.slot")
		st := fc.b.Store(ptrs[i], slot, lw.tbaaArgSlot(semType{base: "int", ptr: 1}))
		st.Loc = fc.loc(s.Pos)
	}
	return ctx
}

// reloadCaptures reloads spilled SSA scalars from their shared slots
// after the parallel region completes.
func (fc *fnctx) reloadCaptures(caps []capture, ptrs []ir.Value) {
	lw := fc.lw
	for i, c := range caps {
		if c.reload == nil {
			continue
		}
		val := fc.b.Load(lw.irType(c.reload.ty), ptrs[i], lw.tbaaFor(c.reload.ty))
		fc.ssa.write(c.reload.ssa, fc.b.Block(), val)
	}
}

// bindCaptures declares the captured variables inside an outlined
// function, loading each context slot once in the entry block. This is
// exactly the indirection pattern whose alias queries the paper's
// Fig. 3 shows (context loads vs. data pointers).
func bindCaptures(ofc *fnctx, ctxArg ir.Value, caps []capture, pos Pos) {
	lw := ofc.lw
	for _, c := range caps {
		slot := ofc.b.GEP(ctxArg, nil, 0, int64(8*c.slotIdx), c.name+".slot")
		dptr := ofc.b.Load(ir.Ptr, slot, lw.tbaaArgSlot(semType{base: "int", ptr: 1}))
		dptr.Name = c.name + ".dptr"
		dptr.Loc = ofc.loc(pos)
		vi := &varInfo{name: c.name, ty: c.ty, arr: c.arr, structName: c.structName, base: dptr}
		switch c.kind {
		case vkMemory:
			vi.kind = vkMemory
		default:
			vi.kind = vkBoxed
		}
		ofc.declare(pos, vi)
	}
}

// outlineParallelFor implements the OpenMP (host) and offload (device)
// lowering of a parallel loop.
func (fc *fnctx) outlineParallelFor(s *ParallelFor, offload bool) {
	lw := fc.lw
	reserved := 1 // slot 0: `from` by value
	caps := fc.prepareCaptures(s, offload, reserved)

	from, ft := fc.lowerExpr(s.From)
	if !ft.isInt() {
		lw.errf(s.Pos, "parallel for bounds must be int")
	}
	to, tt := fc.lowerExpr(s.To)
	if !tt.isInt() {
		lw.errf(s.Pos, "parallel for bounds must be int")
	}
	n := fc.b.Bin(ir.OpSub, to, from, "omp.n")
	ptrs := fc.spillCaptures(caps)
	ctx := fc.packContext(s, caps, ptrs, []ir.Value{from})

	lw.outlineCount++
	var name string
	var mod *ir.Module
	if offload {
		name = fmt.Sprintf(".omp_offload.%d", lw.outlineCount)
		mod = lw.deviceModule()
	} else {
		name = fmt.Sprintf(".omp_outlined.%d", lw.outlineCount)
		mod = lw.host
	}
	lw.buildOutlined(mod, name, s, caps, offload)

	if offload {
		fc.b.Call(ir.Void, "__gpu_launch", ir.ConstStr(name), ctx, n)
	} else {
		fc.b.Call(ir.Void, "__omp_fork", ir.ConstStr(name), ctx, n)
	}
	fc.reloadCaptures(caps, ptrs)
}

// buildOutlined lowers the loop body into the outlined function.
func (lw *lowerer) buildOutlined(mod *ir.Module, name string, s *ParallelFor, caps []capture, offload bool) {
	var fn *ir.Func
	var b *ir.Builder
	ctxArg := &ir.Arg{Name: ".ctx", Ty: ir.Ptr}
	if offload {
		fn, b = ir.NewFunc(mod, name, ir.Void, ctxArg)
		fn.Attrs.Kernel = true
	} else {
		lo := &ir.Arg{Name: ".lo", Ty: ir.I64}
		hi := &ir.Arg{Name: ".hi", Ty: ir.I64}
		fn, b = ir.NewFunc(mod, name, ir.Void, ctxArg, lo, hi)
		fn.Attrs.Outlined = true
	}
	ofc := &fnctx{lw: lw, mod: mod, fn: fn, b: b, ssa: newSSABuilder(fn), retTy: tyVoid, device: offload}
	ofc.ssa.seal(fn.Entry())
	ofc.pushScope()

	// Entry: unpack `from` and bind captures.
	fromSlot := b.GEP(ctxArg, nil, 0, 0, "from.slot")
	fromVal := b.Load(ir.I64, fromSlot, lw.tbaaArgSlot(tyInt))
	fromVal.Name = "omp.from"
	bindCaptures(ofc, ctxArg, caps, s.Pos)

	// Loop variable.
	iVar := ofc.ssa.newVar(ir.I64)
	ofc.declare(s.Pos, &varInfo{name: s.Var, ty: tyInt, kind: vkSSA, ssa: iVar})

	if offload {
		// One iteration per device thread: i = from + tid.
		tid := b.Call(ir.I64, "__gpu_tid")
		i := b.Bin(ir.OpAdd, fromVal, tid, s.Var)
		ofc.ssa.write(iVar, b.Block(), i)
		ofc.lowerBlock(s.Body)
		if ofc.b.Block().Term() == nil {
			ofc.b.Ret(nil)
		}
		ofc.finish(nil)
		return
	}

	// Host outlined: for (i = from+lo; i < from+hi; i++) { body }. The
	// user induction variable is the loop induction directly, so the
	// loop stays in the canonical form the vectorizer recognizes.
	iStart := b.Bin(ir.OpAdd, fromVal, fn.Params[1], "omp.start")
	iEnd := b.Bin(ir.OpAdd, fromVal, fn.Params[2], "omp.end")
	ofc.ssa.write(iVar, b.Block(), iStart)
	header := b.NewBlock("omp.cond")
	body := b.NewBlock("omp.body")
	exit := b.NewBlock("omp.exit")
	ofc.br(header)
	b.SetBlock(header)
	i := ofc.ssa.read(iVar, header)
	cmp := b.ICmp(ir.PredLT, i, iEnd, "omp.cmp")
	ofc.condBr(cmp, body, exit)
	ofc.ssa.seal(body)
	b.SetBlock(body)
	ofc.loops = append(ofc.loops, loopCtx{continueTo: header, breakTo: exit})
	ofc.lowerBlock(s.Body)
	ofc.loops = ofc.loops[:len(ofc.loops)-1]
	if ofc.b.Block().Term() == nil {
		next := ofc.b.Bin(ir.OpAdd, ofc.ssa.read(iVar, ofc.b.Block()), ir.ConstInt(1), "omp.next")
		ofc.ssa.write(iVar, ofc.b.Block(), next)
		ofc.br(header)
	}
	ofc.ssa.seal(header)
	ofc.ssa.seal(exit)
	b.SetBlock(exit)
	ofc.b.Ret(nil)
	ofc.finish(nil)
}

// outlineTasks lowers a parallel-for to TaskChunks explicit tasks plus
// a taskwait (the miniGMG omptask configuration). Context slots:
// 0 = from, 1 = lo, 2 = hi, then captures.
func (fc *fnctx) outlineTasks(s *ParallelFor) {
	lw := fc.lw
	reserved := 3
	caps := fc.prepareCaptures(s, false, reserved)

	from, _ := fc.lowerExpr(s.From)
	to, _ := fc.lowerExpr(s.To)
	n := fc.b.Bin(ir.OpSub, to, from, "task.n")

	lw.outlineCount++
	name := fmt.Sprintf(".omp_task_entry.%d", lw.outlineCount)
	lw.buildTaskEntry(name, s, caps)

	chunks := int64(lw.opts.TaskChunks)
	ptrs := fc.spillCaptures(caps)
	for t := int64(0); t < chunks; t++ {
		lo := fc.b.Bin(ir.OpSDiv, fc.b.Bin(ir.OpMul, n, ir.ConstInt(t), "task.nt"), ir.ConstInt(chunks), "task.lo")
		hi := fc.b.Bin(ir.OpSDiv, fc.b.Bin(ir.OpMul, n, ir.ConstInt(t+1), "task.nt1"), ir.ConstInt(chunks), "task.hi")
		ctx := fc.packContext(s, caps, ptrs, []ir.Value{from, lo, hi})
		fc.b.Call(ir.Void, "__omp_task", ir.ConstStr(name), ctx)
	}
	fc.b.Call(ir.Void, "__omp_taskwait")
	// All chunks share the spill slots, and tasks execute at the
	// taskwait, so reloading here observes every chunk's writes.
	fc.reloadCaptures(caps, ptrs)
}

// buildTaskEntry lowers the task body function: (ctx, _, _) with lo/hi
// read from the context.
func (lw *lowerer) buildTaskEntry(name string, s *ParallelFor, caps []capture) {
	ctxArg := &ir.Arg{Name: ".ctx", Ty: ir.Ptr}
	loArg := &ir.Arg{Name: ".unused_lo", Ty: ir.I64}
	hiArg := &ir.Arg{Name: ".unused_hi", Ty: ir.I64}
	fn, b := ir.NewFunc(lw.host, name, ir.Void, ctxArg, loArg, hiArg)
	fn.Attrs.Outlined = true
	ofc := &fnctx{lw: lw, mod: lw.host, fn: fn, b: b, ssa: newSSABuilder(fn), retTy: tyVoid}
	ofc.ssa.seal(fn.Entry())
	ofc.pushScope()

	load := func(slot int, name string) *ir.Instr {
		g := b.GEP(ctxArg, nil, 0, int64(8*slot), name+".slot")
		l := b.Load(ir.I64, g, lw.tbaaArgSlot(tyInt))
		l.Name = name
		return l
	}
	fromVal := load(0, "task.from")
	loVal := load(1, "task.lo")
	hiVal := load(2, "task.hi")
	bindCaptures(ofc, ctxArg, caps, s.Pos)

	iVar := ofc.ssa.newVar(ir.I64)
	ofc.declare(s.Pos, &varInfo{name: s.Var, ty: tyInt, kind: vkSSA, ssa: iVar})
	iStart := b.Bin(ir.OpAdd, fromVal, loVal, "task.start")
	iEnd := b.Bin(ir.OpAdd, fromVal, hiVal, "task.end")
	ofc.ssa.write(iVar, b.Block(), iStart)

	header := b.NewBlock("task.cond")
	body := b.NewBlock("task.body")
	exit := b.NewBlock("task.exit")
	ofc.br(header)
	b.SetBlock(header)
	i := ofc.ssa.read(iVar, header)
	cmp := b.ICmp(ir.PredLT, i, iEnd, "task.cmp")
	ofc.condBr(cmp, body, exit)
	ofc.ssa.seal(body)
	b.SetBlock(body)
	ofc.loops = append(ofc.loops, loopCtx{continueTo: header, breakTo: exit})
	ofc.lowerBlock(s.Body)
	ofc.loops = ofc.loops[:len(ofc.loops)-1]
	if ofc.b.Block().Term() == nil {
		next := ofc.b.Bin(ir.OpAdd, ofc.ssa.read(iVar, ofc.b.Block()), ir.ConstInt(1), "task.next")
		ofc.ssa.write(iVar, ofc.b.Block(), next)
		ofc.br(header)
	}
	ofc.ssa.seal(header)
	ofc.ssa.seal(exit)
	b.SetBlock(exit)
	ofc.b.Ret(nil)
	ofc.finish(nil)
}

// lowerTask lowers a bare task { ... } block: inline under non-task
// models, spawned under ModelTasks.
func (fc *fnctx) lowerTask(s *Task) {
	if fc.lw.opts.Model != ModelTasks {
		fc.lowerBlock(s.Body)
		return
	}
	lw := fc.lw
	pf := &ParallelFor{Var: ".task_i", From: &Expr{Kind: EInt, I: 0, Pos: s.Pos}, To: &Expr{Kind: EInt, I: 1, Pos: s.Pos}, Body: s.Body, Pos: s.Pos}
	reserved := 3
	caps := fc.prepareCaptures(pf, false, reserved)
	lw.outlineCount++
	name := fmt.Sprintf(".omp_task_entry.%d", lw.outlineCount)
	lw.buildTaskEntry(name, pf, caps)
	ptrs := fc.spillCaptures(caps)
	ctx := fc.packContext(pf, caps, ptrs, []ir.Value{ir.ConstInt(0), ir.ConstInt(0), ir.ConstInt(1)})
	fc.b.Call(ir.Void, "__omp_task", ir.ConstStr(name), ctx)
}
