package minic

// Pos is a source position.
type Pos struct {
	Line int
	Col  int
}

// TypeExpr is a syntactic type: a base name plus pointer depth.
type TypeExpr struct {
	Base     string // "int", "double", "void", "vec4", or a struct name
	Ptr      int    // pointer depth
	Restrict bool
}

// File is a parsed translation unit.
type File struct {
	Name    string
	Structs []*StructDecl
	Globals []*GlobalDecl
	Funcs   []*FuncDecl
}

// StructDecl declares a struct with 8-byte fields.
type StructDecl struct {
	Name   string
	Fields []Field
	Pos    Pos
}

// Field is one struct field.
type Field struct {
	Name string
	Type TypeExpr
}

// GlobalDecl declares a module-level variable or fixed array.
type GlobalDecl struct {
	Name    string
	Type    TypeExpr
	Len     int64 // array length; 0 for scalars
	InitI   []int64
	InitF   []float64
	HasInit bool
	Pos     Pos
}

// FuncDecl declares a function. Kernel functions compile to the device
// module under offload models.
type FuncDecl struct {
	Name   string
	Ret    TypeExpr
	Params []Param
	Body   *Block
	Kernel bool
	Pos    Pos
}

// Param is a function parameter.
type Param struct {
	Name string
	Type TypeExpr
}

// Stmt is a statement node.
type Stmt interface{ stmtPos() Pos }

// Block is a brace-enclosed statement list with its own scope.
type Block struct {
	Stmts []Stmt
	Pos   Pos
}

// VarDecl declares a local scalar, fixed array, or struct value.
type VarDecl struct {
	Name string
	Type TypeExpr
	Len  *Expr // array length (constant or expression); nil for scalars
	Init *Expr
	Pos  Pos
}

// Assign is lvalue op= expr; Op is "=", "+=", "-=", "*=", "/=", "%=".
type Assign struct {
	LHS *Expr
	Op  string
	RHS *Expr
	Pos Pos
}

// IncDec is lvalue++ / lvalue-- as a statement.
type IncDec struct {
	LHS *Expr
	Dec bool
	Pos Pos
}

// ExprStmt is a bare call expression.
type ExprStmt struct {
	X   *Expr
	Pos Pos
}

// If statement.
type If struct {
	Cond *Expr
	Then *Block
	Else *Block // may be nil
	Pos  Pos
}

// While statement.
type While struct {
	Cond *Expr
	Body *Block
	Pos  Pos
}

// For statement: for (init; cond; step) body.
type For struct {
	Init Stmt // VarDecl, Assign or nil
	Cond *Expr
	Step Stmt // Assign, IncDec or nil
	Body *Block
	Pos  Pos
}

// ParallelFor is the parallel-model loop construct. Lowering depends on
// the configured model: sequential loop, OpenMP outlining, task
// chunks, or GPU kernel launch.
type ParallelFor struct {
	Var  string
	From *Expr
	To   *Expr
	Body *Block
	Pos  Pos
}

// Task spawns its body as a deferred task (omptask model); in other
// models it lowers inline.
type Task struct {
	Body *Block
	Pos  Pos
}

// TaskWait drains the task queue.
type TaskWait struct{ Pos Pos }

// Return statement.
type Return struct {
	X   *Expr // nil for void
	Pos Pos
}

// Break / Continue.
type Break struct{ Pos Pos }
type Continue struct{ Pos Pos }

func (b *Block) stmtPos() Pos       { return b.Pos }
func (s *VarDecl) stmtPos() Pos     { return s.Pos }
func (s *Assign) stmtPos() Pos      { return s.Pos }
func (s *IncDec) stmtPos() Pos      { return s.Pos }
func (s *ExprStmt) stmtPos() Pos    { return s.Pos }
func (s *If) stmtPos() Pos          { return s.Pos }
func (s *While) stmtPos() Pos       { return s.Pos }
func (s *For) stmtPos() Pos         { return s.Pos }
func (s *ParallelFor) stmtPos() Pos { return s.Pos }
func (s *Task) stmtPos() Pos        { return s.Pos }
func (s *TaskWait) stmtPos() Pos    { return s.Pos }
func (s *Return) stmtPos() Pos      { return s.Pos }
func (s *Break) stmtPos() Pos       { return s.Pos }
func (s *Continue) stmtPos() Pos    { return s.Pos }

// ExprKind enumerates expression node kinds.
type ExprKind int

const (
	EInt ExprKind = iota
	EFloat
	EString
	EIdent
	EBinary // Op, X, Y
	EUnary  // Op ("-", "!", "~", "*" deref, "&" addr), X
	EIndex  // X[Y]
	EField  // X.Name (auto-derefs pointers)
	ECall   // Name(Args...)
	ECast   // (type) X
	ECond   // X ? Y : Z
	ENewArr // new T[n]
	ENewObj // new StructName
	ELaunch // launch kernel(args)[n] — expression statement form
)

// Expr is an expression node.
type Expr struct {
	Kind    ExprKind
	Op      string
	Name    string
	I       int64
	F       float64
	S       string
	X, Y, Z *Expr
	Args    []*Expr
	Type    TypeExpr // for ECast / ENewArr
	N       *Expr    // launch thread count
	Pos     Pos
}
