package minic

import (
	"github.com/oraql/go-oraql/internal/ir"
)

var (
	tyInt    = semType{base: "int"}
	tyFloat  = semType{base: "double"}
	tyBool   = semType{base: "bool"}
	tyVoid   = semType{base: "void"}
	tyVec    = semType{base: "vec4"}
	tyIntPtr = semType{base: "int", ptr: 1}
	tyFltPtr = semType{base: "double", ptr: 1}
)

// lowerExpr lowers an expression to an IR value with its semantic type.
func (fc *fnctx) lowerExpr(e *Expr) (ir.Value, semType) {
	lw := fc.lw
	fc.b.SetLoc(fc.loc(e.Pos))
	switch e.Kind {
	case EInt:
		return ir.ConstInt(e.I), tyInt
	case EFloat:
		return ir.ConstFloat(e.F), tyFloat
	case EString:
		lw.errf(e.Pos, "string literals are only valid in print()")
	case EIdent:
		return fc.lowerIdent(e)
	case EBinary:
		return fc.lowerBinary(e)
	case EUnary:
		return fc.lowerUnary(e)
	case EIndex, EField:
		lv := fc.lowerLValue(e)
		return fc.readLV(lv, e.Pos)
	case ECall:
		return fc.lowerCall(e)
	case ECast:
		v, vt := fc.lowerExpr(e.X)
		to := lw.resolve(e.Type)
		return fc.convert(e.Pos, v, vt, to), to
	case ECond:
		cond := fc.lowerCond(e.X)
		x, xt := fc.lowerExpr(e.Y)
		y, yt := fc.lowerExpr(e.Z)
		xt2 := fc.unifyArith(e.Pos, &x, xt, &y, yt)
		return fc.b.Select(cond, x, y, "cond"), xt2
	case ENewArr:
		elem := lw.resolve(e.Type)
		n, nt := fc.lowerExpr(e.X)
		if !nt.isInt() {
			lw.errf(e.Pos, "allocation length must be int")
		}
		sz := fc.b.Bin(ir.OpMul, n, ir.ConstInt(lw.sizeOf(elem)), "alloc.bytes")
		p := fc.b.Call(ir.Ptr, "__malloc", sz)
		return p, semType{base: elem.base, ptr: elem.ptr + 1}
	case ENewObj:
		st := lw.resolve(e.Type)
		if lw.structs[st.base] == nil {
			lw.errf(e.Pos, "unknown struct type %q in new", st.base)
		}
		p := fc.b.Call(ir.Ptr, "__malloc", ir.ConstInt(lw.sizeOf(st)))
		return p, semType{base: st.base, ptr: 1}
	case ELaunch:
		fc.lowerLaunch(e)
		return ir.ConstInt(0), tyVoid
	}
	lw.errf(e.Pos, "unhandled expression kind %d", e.Kind)
	return nil, tyVoid
}

func (fc *fnctx) lowerIdent(e *Expr) (ir.Value, semType) {
	lw := fc.lw
	if vi := fc.lookup(e.Name); vi != nil {
		switch vi.kind {
		case vkSSA:
			return fc.ssa.read(vi.ssa, fc.b.Block()), vi.ty
		case vkBoxed:
			ld := fc.b.Load(lw.irType(vi.ty), vi.base, lw.tbaaFor(vi.ty))
			ld.Loc = fc.loc(e.Pos)
			return ld, vi.ty
		case vkMemory:
			// Arrays decay to element pointers; struct values to
			// struct pointers.
			if vi.arr {
				return vi.base, semType{base: vi.ty.base, ptr: vi.ty.ptr + 1}
			}
			return vi.base, semType{base: vi.structName, ptr: 1}
		}
	}
	if gi, ok := lw.globals[e.Name]; ok {
		gi = fc.useGlobal(gi)
		fc.checkGlobalAccess(e.Pos)
		if gi.arr {
			return gi.g, semType{base: gi.elem.base, ptr: gi.elem.ptr + 1}
		}
		ld := fc.b.Load(lw.irType(gi.elem), gi.g, lw.tbaaFor(gi.elem))
		ld.Loc = fc.loc(e.Pos)
		return ld, gi.elem
	}
	lw.errf(e.Pos, "undefined identifier %q", e.Name)
	return nil, tyVoid
}

// unifyArith converts mixed int/double operands to double.
func (fc *fnctx) unifyArith(pos Pos, x *ir.Value, xt semType, y *ir.Value, yt semType) semType {
	if xt == yt {
		return xt
	}
	if xt.isInt() && yt.isFloat() {
		*x = fc.b.SIToFP(*x, "conv")
		return tyFloat
	}
	if xt.isFloat() && yt.isInt() {
		*y = fc.b.SIToFP(*y, "conv")
		return tyFloat
	}
	if xt.isPtr() && yt.isPtr() {
		return xt
	}
	fc.lw.errf(pos, "type mismatch: %s vs %s", xt, yt)
	return xt
}

func (fc *fnctx) lowerBinary(e *Expr) (ir.Value, semType) {
	lw := fc.lw
	// Logical operators on bools.
	if e.Op == "&&" || e.Op == "||" {
		x := fc.lowerCond(e.X)
		y := fc.lowerCond(e.Y)
		op := ir.OpAnd
		if e.Op == "||" {
			op = ir.OpOr
		}
		return fc.b.Bin(op, x, y, "logic"), tyBool
	}
	x, xt := fc.lowerExpr(e.X)
	y, yt := fc.lowerExpr(e.Y)

	// Pointer arithmetic.
	if xt.isPtr() && yt.isInt() && (e.Op == "+" || e.Op == "-") {
		idx := y
		if e.Op == "-" {
			idx = fc.b.Bin(ir.OpSub, ir.ConstInt(0), y, "neg")
		}
		g := fc.b.GEP(x, idx, lw.sizeOf(xt.deref()), 0, "padd")
		g.Loc = fc.loc(e.Pos)
		return g, xt
	}

	// Vector arithmetic.
	if xt.isVec() && yt.isVec() {
		var op ir.Opcode
		switch e.Op {
		case "+":
			op = ir.OpFAdd
		case "-":
			op = ir.OpFSub
		case "*":
			op = ir.OpFMul
		case "/":
			op = ir.OpFDiv
		default:
			lw.errf(e.Pos, "unsupported vector operator %q", e.Op)
		}
		return fc.b.Bin(op, x, y, "vec"), tyVec
	}

	switch e.Op {
	case "==", "!=", "<", "<=", ">", ">=":
		t := fc.unifyArith(e.Pos, &x, xt, &y, yt)
		pred := map[string]ir.Pred{"==": ir.PredEQ, "!=": ir.PredNE, "<": ir.PredLT, "<=": ir.PredLE, ">": ir.PredGT, ">=": ir.PredGE}[e.Op]
		var c *ir.Instr
		if t.isFloat() {
			c = fc.b.FCmp(pred, x, y, "cmp")
		} else {
			c = fc.b.ICmp(pred, x, y, "cmp")
		}
		c.Loc = fc.loc(e.Pos)
		return c, tyBool
	}

	t := fc.unifyArith(e.Pos, &x, xt, &y, yt)
	var op ir.Opcode
	if t.isFloat() {
		switch e.Op {
		case "+":
			op = ir.OpFAdd
		case "-":
			op = ir.OpFSub
		case "*":
			op = ir.OpFMul
		case "/":
			op = ir.OpFDiv
		default:
			lw.errf(e.Pos, "operator %q not defined on double", e.Op)
		}
	} else if t.isInt() {
		switch e.Op {
		case "+":
			op = ir.OpAdd
		case "-":
			op = ir.OpSub
		case "*":
			op = ir.OpMul
		case "/":
			op = ir.OpSDiv
		case "%":
			op = ir.OpSRem
		case "&":
			op = ir.OpAnd
		case "|":
			op = ir.OpOr
		case "^":
			op = ir.OpXor
		case "<<":
			op = ir.OpShl
		case ">>":
			op = ir.OpAShr
		default:
			lw.errf(e.Pos, "operator %q not defined on int", e.Op)
		}
	} else {
		lw.errf(e.Pos, "operator %q not defined on %s", e.Op, t)
	}
	r := fc.b.Bin(op, x, y, "")
	r.Loc = fc.loc(e.Pos)
	return r, t
}

func (fc *fnctx) lowerUnary(e *Expr) (ir.Value, semType) {
	lw := fc.lw
	switch e.Op {
	case "-":
		v, vt := fc.lowerExpr(e.X)
		if vt.isFloat() {
			return fc.b.Bin(ir.OpFSub, ir.ConstFloat(0), v, "neg"), vt
		}
		if vt.isInt() {
			return fc.b.Bin(ir.OpSub, ir.ConstInt(0), v, "neg"), vt
		}
		if vt.isVec() {
			z := fc.b.VSplat(ir.V4F64, ir.ConstFloat(0), "vzero")
			return fc.b.Bin(ir.OpFSub, z, v, "vneg"), vt
		}
		lw.errf(e.Pos, "cannot negate %s", vt)
	case "!":
		v := fc.lowerCond(e.X)
		return fc.b.Bin(ir.OpXor, v, ir.ConstBool(true), "not"), tyBool
	case "~":
		v, vt := fc.lowerExpr(e.X)
		if !vt.isInt() {
			lw.errf(e.Pos, "~ requires int")
		}
		return fc.b.Bin(ir.OpXor, v, ir.ConstInt(-1), "bnot"), tyInt
	case "*":
		lv := fc.lowerLValue(e)
		return fc.readLV(lv, e.Pos)
	case "&":
		return fc.lowerAddrOf(e.X)
	}
	lw.errf(e.Pos, "unhandled unary operator %q", e.Op)
	return nil, tyVoid
}

// lowerAddrOf lowers &lvalue to a pointer value.
func (fc *fnctx) lowerAddrOf(x *Expr) (ir.Value, semType) {
	lw := fc.lw
	// &arr and &struct are their decayed pointers already.
	if x.Kind == EIdent {
		if vi := fc.lookup(x.Name); vi != nil {
			switch vi.kind {
			case vkMemory:
				if vi.arr {
					return vi.base, semType{base: vi.ty.base, ptr: vi.ty.ptr + 1}
				}
				return vi.base, semType{base: vi.structName, ptr: 1}
			case vkBoxed:
				return vi.base, semType{base: vi.ty.base, ptr: vi.ty.ptr + 1}
			case vkSSA:
				lw.errf(x.Pos, "cannot take the address of SSA scalar %q (declare it as an array of 1)", x.Name)
			}
		}
		if gi, ok := lw.globals[x.Name]; ok {
			gi = fc.useGlobal(gi)
			fc.checkGlobalAccess(x.Pos)
			return gi.g, semType{base: gi.elem.base, ptr: gi.elem.ptr + 1}
		}
		lw.errf(x.Pos, "undefined identifier %q", x.Name)
	}
	lv := fc.lowerLValue(x)
	if lv.isSSA {
		lw.errf(x.Pos, "cannot take the address of an SSA value")
	}
	return lv.addr, semType{base: lv.ty.base, ptr: lv.ty.ptr + 1}
}
