package minic

import "github.com/oraql/go-oraql/internal/ir"

// ssaBuilder performs on-the-fly SSA construction (Braun et al.,
// "Simple and Efficient Construction of Static Single Assignment
// Form"): local value numbering per block, with phis created lazily at
// joins and loop headers, and trivial phis removed recursively.
type ssaBuilder struct {
	fn     *ir.Func
	preds  map[*ir.Block][]*ir.Block
	sealed map[*ir.Block]bool
	// curDef[varID][block] is the reaching definition.
	curDef map[int]map[*ir.Block]ir.Value
	// incomplete[block] lists phis awaiting operands until sealing.
	incomplete map[*ir.Block][]pendingPhi
	varTypes   map[int]*ir.Type
	nextVar    int
}

type pendingPhi struct {
	phi *ir.Instr
	v   int
}

func newSSABuilder(fn *ir.Func) *ssaBuilder {
	return &ssaBuilder{
		fn:         fn,
		preds:      map[*ir.Block][]*ir.Block{},
		sealed:     map[*ir.Block]bool{},
		curDef:     map[int]map[*ir.Block]ir.Value{},
		incomplete: map[*ir.Block][]pendingPhi{},
		varTypes:   map[int]*ir.Type{},
	}
}

// newVar registers an SSA variable of the given type.
func (s *ssaBuilder) newVar(ty *ir.Type) int {
	id := s.nextVar
	s.nextVar++
	s.curDef[id] = map[*ir.Block]ir.Value{}
	s.varTypes[id] = ty
	return id
}

// addEdge records a CFG edge for phi construction; call it for every
// branch created.
func (s *ssaBuilder) addEdge(from, to *ir.Block) {
	s.preds[to] = append(s.preds[to], from)
}

// seal marks a block's predecessor list complete and fills pending phis.
func (s *ssaBuilder) seal(b *ir.Block) {
	if s.sealed[b] {
		return
	}
	s.sealed[b] = true
	for _, pp := range s.incomplete[b] {
		s.addPhiOperands(pp.v, pp.phi)
	}
	delete(s.incomplete, b)
}

// write sets the current definition of v in block b.
func (s *ssaBuilder) write(v int, b *ir.Block, val ir.Value) {
	s.curDef[v][b] = val
}

// read returns the reaching definition of v at the end of block b.
func (s *ssaBuilder) read(v int, b *ir.Block) ir.Value {
	if val, ok := s.curDef[v][b]; ok {
		return val
	}
	return s.readRecursive(v, b)
}

func (s *ssaBuilder) readRecursive(v int, b *ir.Block) ir.Value {
	var val ir.Value
	switch {
	case !s.sealed[b]:
		phi := s.newPhi(b, s.varTypes[v])
		s.incomplete[b] = append(s.incomplete[b], pendingPhi{phi, v})
		val = phi
	case len(s.preds[b]) == 1:
		val = s.read(v, s.preds[b][0])
	case len(s.preds[b]) == 0:
		// Unreachable block (e.g. after return): any value will do.
		val = s.undef(s.varTypes[v])
	default:
		phi := s.newPhi(b, s.varTypes[v])
		s.write(v, b, phi) // break cycles
		val = s.addPhiOperands(v, phi)
	}
	s.write(v, b, val)
	return val
}

func (s *ssaBuilder) undef(ty *ir.Type) ir.Value {
	if ty == ir.F64 {
		return ir.ConstFloat(0)
	}
	return ir.ConstInt(0)
}

// newPhi creates an empty phi at the head of b.
func (s *ssaBuilder) newPhi(b *ir.Block, ty *ir.Type) *ir.Instr {
	phi := &ir.Instr{Op: ir.OpPhi, Ty: ty, Parent: b}
	phi.ID = s.fn.AllocID()
	// Insert after existing phis at the block head.
	at := 0
	for at < len(b.Instrs) && b.Instrs[at].Op == ir.OpPhi {
		at++
	}
	b.Instrs = append(b.Instrs[:at], append([]*ir.Instr{phi}, b.Instrs[at:]...)...)
	return phi
}

func (s *ssaBuilder) addPhiOperands(v int, phi *ir.Instr) ir.Value {
	for _, p := range s.preds[phi.Parent] {
		ir.AddIncoming(phi, s.read(v, p), p)
	}
	return s.tryRemoveTrivial(phi)
}

// tryRemoveTrivial replaces a phi that merges a single value (plus
// possibly itself) with that value, recursing into phi users.
func (s *ssaBuilder) tryRemoveTrivial(phi *ir.Instr) ir.Value {
	var same ir.Value
	for _, op := range phi.Operands {
		if op == ir.Value(phi) || op == same {
			continue
		}
		if same != nil {
			return phi // merges at least two values
		}
		same = op
	}
	if same == nil {
		same = s.undef(phi.Ty) // unreachable or self-referential only
	}
	// Collect phi users before rewriting.
	var users []*ir.Instr
	for _, b := range s.fn.Blocks {
		for _, in := range b.Instrs {
			if in == phi || in.Dead() || in.Op != ir.OpPhi {
				continue
			}
			for _, op := range in.Operands {
				if op == ir.Value(phi) {
					users = append(users, in)
					break
				}
			}
		}
	}
	s.fn.ReplaceAllUses(phi, same)
	phi.MarkDead()
	// Fix definition tables that still point at the phi.
	for _, defs := range s.curDef {
		for b, val := range defs {
			if val == ir.Value(phi) {
				defs[b] = same
			}
		}
	}
	for _, u := range users {
		if !u.Dead() {
			s.tryRemoveTrivial(u)
		}
	}
	return same
}
