package minic

import (
	"github.com/oraql/go-oraql/internal/ir"
)

type varKind int

const (
	// vkSSA scalars live in SSA registers.
	vkSSA varKind = iota
	// vkMemory objects (arrays, structs) live at a fixed address.
	vkMemory
	// vkBoxed scalars/pointers live in a memory slot (descriptors,
	// captured variables): every access loads/stores through base.
	vkBoxed
)

type varInfo struct {
	name       string
	ty         semType // value type (vkSSA/vkBoxed) or element type (vkMemory arrays)
	kind       varKind
	ssa        int      // SSA variable id (vkSSA)
	base       ir.Value // object address (vkMemory) or slot address (vkBoxed)
	arr        bool     // vkMemory: array (true) vs struct value (false)
	structName string   // vkMemory structs: the struct type name
}

type loopCtx struct {
	continueTo *ir.Block
	breakTo    *ir.Block
}

// fnctx lowers one function body.
type fnctx struct {
	lw     *lowerer
	mod    *ir.Module
	fn     *ir.Func
	b      *ir.Builder
	ssa    *ssaBuilder
	scopes []map[string]*varInfo
	retTy  semType
	loops  []loopCtx
	device bool
}

func (fc *fnctx) pushScope() { fc.scopes = append(fc.scopes, map[string]*varInfo{}) }
func (fc *fnctx) popScope()  { fc.scopes = fc.scopes[:len(fc.scopes)-1] }

func (fc *fnctx) declare(pos Pos, vi *varInfo) {
	top := fc.scopes[len(fc.scopes)-1]
	if _, dup := top[vi.name]; dup {
		fc.lw.errf(pos, "redeclaration of %q", vi.name)
	}
	top[vi.name] = vi
}

func (fc *fnctx) lookup(name string) *varInfo {
	for i := len(fc.scopes) - 1; i >= 0; i-- {
		if vi, ok := fc.scopes[i][name]; ok {
			return vi
		}
	}
	return nil
}

// br / condBr wrap the builder, recording CFG edges for SSA phis.
func (fc *fnctx) br(to *ir.Block) {
	from := fc.b.Block()
	fc.b.Br(to)
	fc.ssa.addEdge(from, to)
}

func (fc *fnctx) condBr(cond ir.Value, then, els *ir.Block) {
	from := fc.b.Block()
	fc.b.CondBr(cond, then, els)
	fc.ssa.addEdge(from, then)
	fc.ssa.addEdge(from, els)
}

// startDeadBlock begins an unreachable block after a terminator so
// later statements in the source block have somewhere to go; it is
// sealed with zero predecessors and removed by SimplifyCFG.
func (fc *fnctx) startDeadBlock() {
	nb := fc.b.NewBlock("dead")
	fc.ssa.seal(nb)
	fc.b.SetBlock(nb)
}

func (fc *fnctx) loc(pos Pos) ir.SrcLoc {
	return ir.SrcLoc{File: fc.lw.file.Name, Line: pos.Line, Col: pos.Col}
}

// lowerFunc lowers a top-level function declaration. Under offload
// models, explicit kernels compile to the device module with a packed
// argument context; ordinary functions (without parallel constructs)
// are additionally cloned into the device module so kernels can call
// them, mirroring CUDA's __device__ functions.
func (lw *lowerer) lowerFunc(fd *FuncDecl) {
	if fd.Kernel && lw.opts.Model == ModelOffload {
		lw.lowerKernelFunc(lw.deviceModule(), fd)
		return
	}
	lw.lowerFuncInto(lw.host, fd, false)
	if lw.opts.Model == ModelOffload && fd.Name != "main" && !containsParallelWork(fd.Body) {
		lw.lowerFuncInto(lw.deviceModule(), fd, true)
	}
}

// lowerFuncInto lowers fd as a regular function into mod.
func (lw *lowerer) lowerFuncInto(mod *ir.Module, fd *FuncDecl, device bool) {
	retTy := lw.resolve(fd.Ret)
	name := fd.Name
	hostKernel := fd.Kernel && lw.opts.Model != ModelOffload
	nParams := len(fd.Params)
	if hostKernel {
		// Host execution of kernels: the launch loop passes tid and
		// ntid as two hidden trailing parameters.
		name = hostKernelName(fd.Name)
		nParams += 2
	}
	params := make([]*ir.Arg, nParams)
	for i, p := range fd.Params {
		params[i] = &ir.Arg{Name: p.Name, Ty: lw.irType(lw.resolve(p.Type)), NoAlias: p.Type.Restrict}
	}
	if hostKernel {
		params[len(fd.Params)] = &ir.Arg{Name: "tid", Ty: ir.I64}
		params[len(fd.Params)+1] = &ir.Arg{Name: "ntid", Ty: ir.I64}
	}
	fn, b := ir.NewFunc(mod, name, lw.irType(retTy), params...)
	fc := &fnctx{lw: lw, mod: mod, fn: fn, b: b, ssa: newSSABuilder(fn), retTy: retTy, device: device}
	fc.ssa.seal(fn.Entry())
	fc.pushScope()
	for i, p := range fd.Params {
		pty := lw.resolve(p.Type)
		if lw.opts.Dialect == DialectFortran && pty.isPtr() {
			// Fortran dialect: pointer parameters are boxed in a
			// descriptor slot; every use reloads the base pointer.
			slot := b.Alloca(8, p.Name+".box")
			b.Store(params[i], slot, "")
			fc.declare(fd.Pos, &varInfo{name: p.Name, ty: pty, kind: vkBoxed, base: slot})
			continue
		}
		v := fc.ssa.newVar(lw.irType(pty))
		fc.ssa.write(v, fn.Entry(), params[i])
		fc.declare(fd.Pos, &varInfo{name: p.Name, ty: pty, kind: vkSSA, ssa: v})
	}
	if hostKernel {
		for off, hidden := range []string{"__host_tid", "__host_ntid"} {
			v := fc.ssa.newVar(ir.I64)
			fc.ssa.write(v, fn.Entry(), params[len(fd.Params)+off])
			fc.declare(fd.Pos, &varInfo{name: hidden, ty: tyInt, kind: vkSSA, ssa: v})
		}
	}
	fc.lowerBlock(fd.Body)
	fc.finish(fd)
}

// finish adds an implicit return and sanity-checks termination.
func (fc *fnctx) finish(fd *FuncDecl) {
	if fc.b.Block().Term() == nil {
		if fc.retTy.isVoid() {
			fc.b.Ret(nil)
		} else if fc.retTy.isFloat() {
			fc.b.Ret(ir.ConstFloat(0))
		} else {
			fc.b.Ret(ir.ConstInt(0))
		}
	}
	// Seal any remaining blocks (loop exits already sealed; this is a
	// safety net for dead blocks).
	for _, blk := range fc.fn.Blocks {
		fc.ssa.seal(blk)
	}
	fc.fn.Compact()
	_ = fd
}

// lowerKernelFunc lowers `kernel T f(params)` for the device: the IR
// function takes a single context pointer, and the prologue unpacks
// the declared parameters from it ("byte slot k holds parameter k").
func (lw *lowerer) lowerKernelFunc(mod *ir.Module, fd *FuncDecl) {
	ctx := &ir.Arg{Name: "ctx", Ty: ir.Ptr}
	fn, b := ir.NewFunc(mod, fd.Name, lw.irType(lw.resolve(fd.Ret)), ctx)
	fn.Attrs.Kernel = true
	fc := &fnctx{lw: lw, mod: mod, fn: fn, b: b, ssa: newSSABuilder(fn), retTy: lw.resolve(fd.Ret), device: true}
	fc.ssa.seal(fn.Entry())
	fc.pushScope()
	for i, p := range fd.Params {
		pty := lw.resolve(p.Type)
		slot := b.GEP(ctx, nil, 0, int64(8*i), p.Name+".slot")
		val := b.Load(lw.irType(pty), slot, lw.tbaaArgSlot(pty))
		val.Name = p.Name
		v := fc.ssa.newVar(lw.irType(pty))
		fc.ssa.write(v, fn.Entry(), val)
		fc.declare(fd.Pos, &varInfo{name: p.Name, ty: pty, kind: vkSSA, ssa: v})
	}
	fc.lowerBlock(fd.Body)
	fc.finish(fd)
}

func (lw *lowerer) tbaaArgSlot(t semType) string {
	if !lw.opts.strictAliasing() {
		return ""
	}
	if t.isPtr() {
		return "any pointer"
	}
	if t.isFloat() {
		return "double"
	}
	return "long"
}

// lowerBlock lowers a brace block in a fresh scope.
func (fc *fnctx) lowerBlock(b *Block) {
	fc.pushScope()
	for _, st := range b.Stmts {
		fc.lowerStmt(st)
	}
	fc.popScope()
}

func (fc *fnctx) lowerStmt(st Stmt) {
	fc.b.SetLoc(fc.loc(st.stmtPos()))
	switch s := st.(type) {
	case *Block:
		fc.lowerBlock(s)
	case *VarDecl:
		fc.lowerVarDecl(s)
	case *Assign:
		fc.lowerAssign(s)
	case *IncDec:
		op := "+="
		if s.Dec {
			op = "-="
		}
		fc.lowerAssign(&Assign{LHS: s.LHS, Op: op, RHS: &Expr{Kind: EInt, I: 1, Pos: s.Pos}, Pos: s.Pos})
	case *ExprStmt:
		fc.lowerExpr(s.X)
	case *If:
		fc.lowerIf(s)
	case *While:
		fc.lowerWhile(s)
	case *For:
		fc.lowerFor(s)
	case *ParallelFor:
		fc.lowerParallelFor(s)
	case *Task:
		fc.lowerTask(s)
	case *TaskWait:
		if fc.lw.opts.Model == ModelTasks {
			fc.b.Call(ir.Void, "__omp_taskwait")
		}
	case *Return:
		fc.lowerReturn(s)
	case *Break:
		if len(fc.loops) == 0 {
			fc.lw.errf(s.Pos, "break outside loop")
		}
		fc.br(fc.loops[len(fc.loops)-1].breakTo)
		fc.startDeadBlock()
	case *Continue:
		if len(fc.loops) == 0 {
			fc.lw.errf(s.Pos, "continue outside loop")
		}
		fc.br(fc.loops[len(fc.loops)-1].continueTo)
		fc.startDeadBlock()
	default:
		fc.lw.errf(st.stmtPos(), "unhandled statement %T", st)
	}
}

func (fc *fnctx) lowerVarDecl(s *VarDecl) {
	lw := fc.lw
	ty := lw.resolve(s.Type)
	switch {
	case s.Len != nil:
		// Fixed local array: alloca length*elemsize. Length must be a
		// compile-time constant expression for allocas; dynamic
		// lengths heap-allocate.
		if lit, ok := constFold(s.Len); ok {
			a := fc.b.Alloca(lit*lw.sizeOf(ty), s.Name)
			fc.declare(s.Pos, &varInfo{name: s.Name, ty: ty, kind: vkMemory, base: a, arr: true})
		} else {
			n, nt := fc.lowerExpr(s.Len)
			if !nt.isInt() {
				lw.errf(s.Pos, "array length must be int")
			}
			sz := fc.b.Bin(ir.OpMul, n, ir.ConstInt(lw.sizeOf(ty)), s.Name+".bytes")
			p := fc.b.Call(ir.Ptr, "__malloc", sz)
			fc.declare(s.Pos, &varInfo{name: s.Name, ty: ty, kind: vkMemory, base: p, arr: true})
		}
		if s.Init != nil {
			lw.errf(s.Pos, "array declarations cannot have initializers")
		}
	case ty.isStruct():
		if _, ok := lw.structs[ty.base]; !ok {
			lw.errf(s.Pos, "unknown struct type %q", ty.base)
		}
		a := fc.b.Alloca(lw.sizeOf(ty), s.Name)
		fc.declare(s.Pos, &varInfo{name: s.Name, ty: ty, kind: vkMemory, base: a, structName: ty.base})
		if s.Init != nil {
			lw.errf(s.Pos, "struct declarations cannot have initializers")
		}
	default:
		// Scalar or pointer.
		var init ir.Value
		if s.Init != nil {
			v, vt := fc.lowerExpr(s.Init)
			init = fc.convert(s.Pos, v, vt, ty)
		} else if ty.isFloat() {
			init = ir.ConstFloat(0)
		} else {
			init = ir.ConstInt(0)
		}
		boxed := ty.isPtr() &&
			(lw.opts.Dialect == DialectFortran ||
				(lw.opts.Views && s.Init != nil && (s.Init.Kind == ENewArr || s.Init.Kind == ENewObj)))
		if boxed {
			slot := fc.b.Alloca(8, s.Name+".box")
			fc.b.Store(init, slot, lw.tbaaFor(ty))
			fc.declare(s.Pos, &varInfo{name: s.Name, ty: ty, kind: vkBoxed, base: slot})
			return
		}
		v := fc.ssa.newVar(lw.irType(ty))
		fc.ssa.write(v, fc.b.Block(), init)
		fc.declare(s.Pos, &varInfo{name: s.Name, ty: ty, kind: vkSSA, ssa: v})
	}
}

// constFold evaluates integer constant expressions at compile time.
func constFold(e *Expr) (int64, bool) {
	switch e.Kind {
	case EInt:
		return e.I, true
	case EBinary:
		x, okx := constFold(e.X)
		y, oky := constFold(e.Y)
		if !okx || !oky {
			return 0, false
		}
		switch e.Op {
		case "+":
			return x + y, true
		case "-":
			return x - y, true
		case "*":
			return x * y, true
		case "/":
			if y == 0 {
				return 0, false
			}
			return x / y, true
		case "%":
			if y == 0 {
				return 0, false
			}
			return x % y, true
		}
	case EUnary:
		if e.Op == "-" {
			if x, ok := constFold(e.X); ok {
				return -x, true
			}
		}
	}
	return 0, false
}

func (fc *fnctx) lowerReturn(s *Return) {
	if s.X == nil {
		if !fc.retTy.isVoid() {
			fc.lw.errf(s.Pos, "missing return value")
		}
		fc.b.Ret(nil)
	} else {
		v, vt := fc.lowerExpr(s.X)
		fc.b.Ret(fc.convert(s.Pos, v, vt, fc.retTy))
	}
	fc.startDeadBlock()
}

func (fc *fnctx) lowerIf(s *If) {
	cond := fc.lowerCond(s.Cond)
	then := fc.b.NewBlock("if.then")
	merge := fc.b.NewBlock("if.end")
	els := merge
	if s.Else != nil {
		els = fc.b.NewBlock("if.else")
	}
	fc.condBr(cond, then, els)
	fc.ssa.seal(then)
	fc.b.SetBlock(then)
	fc.lowerBlock(s.Then)
	if fc.b.Block().Term() == nil {
		fc.br(merge)
	}
	if s.Else != nil {
		fc.ssa.seal(els)
		fc.b.SetBlock(els)
		fc.lowerBlock(s.Else)
		if fc.b.Block().Term() == nil {
			fc.br(merge)
		}
	}
	fc.ssa.seal(merge)
	fc.b.SetBlock(merge)
}

func (fc *fnctx) lowerWhile(s *While) {
	header := fc.b.NewBlock("while.cond")
	body := fc.b.NewBlock("while.body")
	exit := fc.b.NewBlock("while.end")
	fc.br(header)
	fc.b.SetBlock(header)
	cond := fc.lowerCond(s.Cond)
	fc.condBr(cond, body, exit)
	fc.ssa.seal(body)
	fc.b.SetBlock(body)
	fc.loops = append(fc.loops, loopCtx{continueTo: header, breakTo: exit})
	fc.lowerBlock(s.Body)
	fc.loops = fc.loops[:len(fc.loops)-1]
	if fc.b.Block().Term() == nil {
		fc.br(header)
	}
	fc.ssa.seal(header)
	fc.ssa.seal(exit)
	fc.b.SetBlock(exit)
}

func (fc *fnctx) lowerFor(s *For) {
	fc.pushScope()
	if s.Init != nil {
		fc.lowerStmt(s.Init)
	}
	header := fc.b.NewBlock("for.cond")
	body := fc.b.NewBlock("for.body")
	latch := fc.b.NewBlock("for.inc")
	exit := fc.b.NewBlock("for.end")
	fc.br(header)
	fc.b.SetBlock(header)
	var cond ir.Value = ir.ConstBool(true)
	if s.Cond != nil {
		cond = fc.lowerCond(s.Cond)
	}
	fc.condBr(cond, body, exit)
	fc.ssa.seal(body)
	fc.b.SetBlock(body)
	fc.loops = append(fc.loops, loopCtx{continueTo: latch, breakTo: exit})
	fc.lowerBlock(s.Body)
	fc.loops = fc.loops[:len(fc.loops)-1]
	if fc.b.Block().Term() == nil {
		fc.br(latch)
	}
	fc.ssa.seal(latch)
	fc.b.SetBlock(latch)
	if s.Step != nil {
		fc.lowerStmt(s.Step)
	}
	fc.br(header)
	fc.ssa.seal(header)
	fc.ssa.seal(exit)
	fc.b.SetBlock(exit)
	fc.popScope()
}

// lowerCond lowers an expression used as a branch condition to i1.
func (fc *fnctx) lowerCond(e *Expr) ir.Value {
	v, vt := fc.lowerExpr(e)
	if vt.isBool() {
		return v
	}
	if vt.isInt() || vt.isPtr() {
		return fc.b.ICmp(ir.PredNE, v, ir.ConstInt(0), "tobool")
	}
	if vt.isFloat() {
		return fc.b.FCmp(ir.PredNE, v, ir.ConstFloat(0), "tobool")
	}
	fc.lw.errf(e.Pos, "invalid condition type %s", vt)
	return nil
}

// convert coerces v of type from to type to (int<->double implicit).
func (fc *fnctx) convert(pos Pos, v ir.Value, from, to semType) ir.Value {
	if from == to || (from.isPtr() && to.isPtr()) {
		return v
	}
	switch {
	case from.isBool() && to.isInt():
		return fc.b.Select(v, ir.ConstInt(1), ir.ConstInt(0), "booltoint")
	case from.isInt() && to.isFloat():
		return fc.b.SIToFP(v, "conv")
	case from.isFloat() && to.isInt():
		return fc.b.FPToSI(v, "conv")
	case from.isInt() && to.isPtr(), from.isPtr() && to.isInt():
		return v // addresses are integers in the simulated machine
	}
	fc.lw.errf(pos, "cannot convert %s to %s", from, to)
	return nil
}
