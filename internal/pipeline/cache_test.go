package pipeline_test

// Integration test for the manager-level memoized alias-query cache:
// compiling with the cache enabled must be observably identical to
// compiling with it disabled — same executable, same ORAQL counters,
// same no-alias totals — differing only in the cache's own hit/miss
// accounting.

import (
	"testing"

	"github.com/oraql/go-oraql/internal/apps"
	"github.com/oraql/go-oraql/internal/oraql"
	"github.com/oraql/go-oraql/internal/pipeline"
)

func TestAAQueryCacheIsTransparent(t *testing.T) {
	for _, id := range []string{"lulesh-seq", "testsnap-openmp", "minigmg-sse"} {
		app := apps.ByID(id)
		if app == nil {
			t.Fatalf("unknown app config %q", id)
		}
		t.Run(id, func(t *testing.T) {
			spec := app.Spec()
			compile := func(disable bool) *pipeline.CompileResult {
				cfg := spec.Compile
				cfg.Name = id
				cfg.DisableAAQueryCache = disable
				cfg.ORAQL = &oraql.Options{}
				cr, err := pipeline.Compile(cfg)
				if err != nil {
					t.Fatalf("compile (cache disabled=%v): %v", disable, err)
				}
				return cr
			}
			on := compile(false)
			off := compile(true)

			if g, w := on.ExeHash(), off.ExeHash(); g != w {
				t.Errorf("ExeHash differs with cache on: %s vs %s", g, w)
			}
			if g, w := on.ORAQLStats(), off.ORAQLStats(); g != w {
				t.Errorf("ORAQL stats differ: cache on %+v, off %+v", g, w)
			}
			if g, w := on.NoAliasTotal(), off.NoAliasTotal(); g != w {
				t.Errorf("NoAliasTotal differs: cache on %d, off %d", g, w)
			}
			son, soff := on.AAStats(), off.AAStats()
			if son.Queries != soff.Queries || son.MayAlias != soff.MayAlias {
				t.Errorf("query outcome counters differ: cache on %d/%d, off %d/%d",
					son.Queries, son.MayAlias, soff.Queries, soff.MayAlias)
			}
			for name, n := range soff.NoAliasByAnalysis {
				if son.NoAliasByAnalysis[name] != n {
					t.Errorf("no-alias attribution for %s differs: cache on %d, off %d",
						name, son.NoAliasByAnalysis[name], n)
				}
			}
			if son.CacheHits == 0 {
				t.Errorf("cache enabled but CacheHits == 0")
			}
			// The pass manager scopes invalidation to the changed function,
			// so flushes must be the per-function kind, never module-wide.
			if son.CacheScopedFlushes == 0 {
				t.Errorf("cache enabled but CacheScopedFlushes == 0 (invalidation never fired)")
			}
			if son.CacheFlushes != 0 {
				t.Errorf("pipeline issued %d module-wide flushes; expected scoped only", son.CacheFlushes)
			}
			if soff.CacheHits != 0 || soff.CacheMisses != 0 {
				t.Errorf("cache disabled but counted %d hits / %d misses",
					soff.CacheHits, soff.CacheMisses)
			}
			t.Logf("%s: %d queries, cache hit rate %.1f%%, %d scoped flushes",
				id, son.Queries, 100*son.CacheHitRate(), son.CacheScopedFlushes)
		})
	}
}
