package pipeline_test

// Determinism contract of the persistent compile cache: a warm
// compilation served from disk — by a different logical "process"
// than the one that populated the store, across every benchmark
// configuration and worker count — must be byte-identical to a cold
// one on everything the byte-identity contract covers: executable
// hash, optimized IR text, -stats counters, timing-row order, and
// runtime behavior of the re-materialized program.

import (
	"fmt"
	"strings"
	"testing"

	"github.com/oraql/go-oraql/internal/apps"
	"github.com/oraql/go-oraql/internal/diskcache"
	"github.com/oraql/go-oraql/internal/irinterp"
	"github.com/oraql/go-oraql/internal/pipeline"
)

// snapshot flattens every output covered by the byte-identity
// contract into one comparable string.
func snapshot(t *testing.T, cr *pipeline.CompileResult) string {
	t.Helper()
	var sb strings.Builder
	fmt.Fprintf(&sb, "exe %s\n", cr.ExeHash())
	targets := []*pipeline.TargetStats{cr.Host}
	if cr.Device != nil {
		targets = append(targets, cr.Device)
	}
	for _, ts := range targets {
		sb.WriteString(ts.Module.String())
		sb.WriteString("=== stats ===\n")
		ts.Pass.Print(&sb)
	}
	sb.WriteString("=== timing order ===\n")
	for _, row := range cr.Timing().Rows() {
		fmt.Fprintf(&sb, "%s runs=%d changed=%d\n", row.Pass, row.Runs, row.Changed)
	}
	return sb.String()
}

func TestWarmFromDiskIsByteIdentical(t *testing.T) {
	for _, workers := range []int{1, 8} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			dir := t.TempDir()
			for _, app := range apps.All() {
				app := app
				t.Run(app.ID, func(t *testing.T) {
					cfg := pipeline.Config{
						Name: app.ID, Source: app.Source, SourceFile: app.SourceName,
						Frontend: app.Frontend, CompileWorkers: workers,
					}
					cold, err := pipeline.Compile(cfg)
					if err != nil {
						t.Fatal(err)
					}
					coldSnap := snapshot(t, cold)
					coldRun, err := irinterp.Run(cold.Program, app.Run)
					if err != nil {
						t.Fatal(err)
					}

					// Populate and warm-load through separate store handles,
					// as two processes sharing the directory would.
					populate, err := diskcache.Open(dir)
					if err != nil {
						t.Fatal(err)
					}
					cfg.DiskCache = populate
					if _, err := pipeline.Compile(cfg); err != nil {
						t.Fatal(err)
					}

					warmStore, err := diskcache.Open(dir)
					if err != nil {
						t.Fatal(err)
					}
					cfg.DiskCache = warmStore
					warm, err := pipeline.Compile(cfg)
					if err != nil {
						t.Fatal(err)
					}
					if warm.DiskHits() == 0 {
						t.Fatalf("warm compile hit nothing on disk")
					}
					if warmSnap := snapshot(t, warm); warmSnap != coldSnap {
						t.Errorf("warm snapshot differs from cold:\n--- cold ---\n%s\n--- warm ---\n%s", coldSnap, warmSnap)
					}
					warmRun, err := irinterp.Run(warm.Program, app.Run)
					if err != nil {
						t.Fatal(err)
					}
					if warmRun.Stdout != coldRun.Stdout {
						t.Errorf("warm program output differs:\n cold: %q\n warm: %q", coldRun.Stdout, warmRun.Stdout)
					}
					if warmRun.Instrs != coldRun.Instrs {
						t.Errorf("warm program instruction count differs: %d vs %d", coldRun.Instrs, warmRun.Instrs)
					}
				})
			}
		})
	}
}
