package pipeline

import (
	"encoding/json"
	"fmt"

	"github.com/oraql/go-oraql/internal/aa"
	"github.com/oraql/go-oraql/internal/codegen"
	"github.com/oraql/go-oraql/internal/diskcache"
	"github.com/oraql/go-oraql/internal/irinterp"
	"github.com/oraql/go-oraql/internal/irtext"
	"github.com/oraql/go-oraql/internal/passes"
)

// Translation-unit artifacts: the whole-compilation layer of the disk
// cache, keyed by the source text (pre-frontend) and every
// output-affecting configuration knob. A hit skips the frontend, AA
// chain, pass pipeline and codegen entirely — the optimized module is
// re-materialized from its persisted text and the deterministic
// outputs (exe hash and machine statistics, -stats counters, timing
// rows) are replayed, byte-identical to a cold compilation.
//
// The per-function layer (passes.DiskPlan) remains the fallback for
// compilations this layer cannot serve: pre-built modules (no source)
// and edited programs, where unchanged functions still hit even
// though the unit key changed.
//
// Not persisted, by design: AA query counters and analysis-manager
// cache counters. A warm compilation runs no passes, so it issues no
// queries; those counters are outside the byte-identity contract
// (which covers exe hash, IR text, -stats, and timing-row order).

// tuTarget is one persisted per-module compilation output.
type tuTarget struct {
	IR         string            `json:"ir"` // optimized module text
	Stats      []passes.Entry    `json:"stats"`
	Timing     []tuTimingRow     `json:"timing"`
	Code       *codegen.Result   `json:"code"`
	ModuleHash string            `json:"module_hash"`           // pristine module identity
	FuncHashes map[string]string `json:"func_hashes,omitempty"` // pristine function identities
}

type tuTimingRow struct {
	Pass    string `json:"pass"`
	Runs    int64  `json:"runs"`
	Changed int64  `json:"changed"`
}

// tuArtifact is the persisted whole-compilation payload.
type tuArtifact struct {
	Host   *tuTarget `json:"host"`
	Device *tuTarget `json:"device,omitempty"`
}

// tuCacheable reports whether this configuration's compilation can be
// served from (and persisted to) the translation-unit layer.
func (c Config) tuCacheable() bool {
	return c.DiskCache != nil && c.ORAQL == nil && !c.DebugPassExec &&
		c.Module == nil && c.Source != ""
}

// tuKey derives the translation-unit artifact key.
func (c Config) tuKey(srcName string) string {
	fe := fmt.Sprintf("dialect=%d|model=%d|views=%t",
		c.Frontend.Dialect, c.Frontend.Model, c.Frontend.Views)
	return diskcache.Key("tu", srcName, c.Source, fe, c.diskConfigKey())
}

// loadTU re-materializes a persisted compilation. The module is parsed
// back from its optimized text (irtext.Parse verifies it); any decode
// or parse failure degrades to a miss.
func loadTU(cfg Config, key string) (*CompileResult, bool) {
	data, ok := cfg.DiskCache.Get(key)
	if !ok {
		return nil, false
	}
	var art tuArtifact
	if json.Unmarshal(data, &art) != nil || art.Host == nil {
		return nil, false
	}
	host, ok := art.Host.materialize()
	if !ok {
		return nil, false
	}
	res := &CompileResult{Host: host}
	if art.Device != nil {
		dev, ok := art.Device.materialize()
		if !ok {
			return nil, false
		}
		res.Device = dev
	}
	res.Program = &irinterp.Program{Host: res.Host.Module}
	if res.Device != nil {
		res.Program.Device = res.Device.Module
	}
	return res, true
}

// materialize rebuilds one target's stats from a persisted artifact.
func (t *tuTarget) materialize() (*TargetStats, bool) {
	if t.Code == nil {
		return nil, false
	}
	m, err := irtext.Parse(t.IR)
	if err != nil {
		return nil, false
	}
	stats := passes.NewStats()
	for _, e := range t.Stats {
		stats.Add(e.Pass, e.Stat, e.Value)
	}
	timing := passes.NewTiming()
	for _, row := range t.Timing {
		timing.Seed(row.Pass, row.Runs, row.Changed)
	}
	return &TargetStats{
		Module: m, AA: aa.NewStats(), Pass: stats, Code: t.Code,
		Timing: timing, ModuleHash: t.ModuleHash, FuncHashes: t.FuncHashes,
		DiskHits: len(m.Funcs),
	}, true
}

// snapshotTU captures one freshly compiled target for persisting.
func snapshotTU(ts *TargetStats) *tuTarget {
	out := &tuTarget{
		IR:         ts.Module.String(),
		Stats:      ts.Pass.Ordered(),
		Code:       ts.Code,
		ModuleHash: ts.ModuleHash,
		FuncHashes: ts.FuncHashes,
	}
	if ts.Timing != nil {
		for _, row := range ts.Timing.Rows() {
			out.Timing = append(out.Timing, tuTimingRow{Pass: row.Pass, Runs: row.Runs, Changed: row.Changed})
		}
	}
	return out
}

// storeTU persists a completed compilation.
func storeTU(cfg Config, key string, res *CompileResult) {
	art := tuArtifact{Host: snapshotTU(res.Host)}
	if res.Device != nil {
		art.Device = snapshotTU(res.Device)
	}
	data, err := json.Marshal(&art)
	if err != nil {
		return
	}
	cfg.DiskCache.Put(key, data)
}
