package pipeline

import (
	"strings"
	"testing"

	"github.com/oraql/go-oraql/internal/irinterp"
	"github.com/oraql/go-oraql/internal/minic"
	"github.com/oraql/go-oraql/internal/oraql"
)

func run(t *testing.T, cfg Config) (*CompileResult, *irinterp.Result) {
	t.Helper()
	cr, err := Compile(cfg)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	rr, err := irinterp.Run(cr.Program, irinterp.Options{})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return cr, rr
}

const helloSrc = `
int main() {
	double a[8];
	for (int i = 0; i < 8; i++) {
		a[i] = (double)i * 2.0;
	}
	double s = 0.0;
	for (int i = 0; i < 8; i++) {
		s = s + a[i];
	}
	print("sum=", s, "\n");
	return 0;
}
`

func TestHelloSequential(t *testing.T) {
	_, rr := run(t, Config{Name: "hello", Source: helloSrc})
	if want := "sum=56\n"; rr.Stdout != want {
		t.Fatalf("stdout = %q, want %q", rr.Stdout, want)
	}
}

func TestHelloUnoptimizedMatchesOptimized(t *testing.T) {
	for _, model := range []minic.Model{minic.ModelSeq, minic.ModelOpenMP, minic.ModelTasks, minic.ModelOffload} {
		cfg := Config{Name: "hello", Source: strings.Replace(helloSrc, "for (int i = 0; i < 8; i++) {\n\t\ta[i] = (double)i * 2.0;\n\t}", "parallel for (i = 0; i < 8; i++) { a[i] = (double)i * 2.0; }", 1),
			Frontend: minic.Options{Model: model}}
		_, rr := run(t, cfg)
		if want := "sum=56\n"; rr.Stdout != want {
			t.Fatalf("model %d: stdout = %q, want %q", model, rr.Stdout, want)
		}
	}
}

func TestFullyOptimisticHello(t *testing.T) {
	cfg := Config{Name: "hello", Source: helloSrc, ORAQL: &oraql.Options{}}
	cr, rr := run(t, cfg)
	if want := "sum=56\n"; rr.Stdout != want {
		t.Fatalf("stdout = %q, want %q", rr.Stdout, want)
	}
	st := cr.ORAQLStats()
	t.Logf("oraql: unique=%d cached=%d", st.Unique(), st.Cached())
	t.Logf("no-alias total: %d, instrs: %d", cr.NoAliasTotal(), rr.Instrs)
}

// TestBlockingModeDual measures the Section VIII dual limit study: with
// the whole analysis chain blocked, the compiled program must still be
// correct but strictly less optimized than the baseline.
func TestBlockingModeDual(t *testing.T) {
	src := `
int main() {
	double a[32];
	double b[32];
	for (int i = 0; i < 32; i++) {
		a[i] = (double)i;
	}
	for (int i = 0; i < 32; i++) {
		b[i] = a[i] * 2.0;
	}
	print(checksum(b, 32), "\n");
	return 0;
}`
	base, brr := run(t, Config{Name: "dual", Source: src})
	blocked, krr := run(t, Config{Name: "dual", Source: src,
		ORAQL: &oraql.Options{Mode: oraql.ModeBlocking}})
	if brr.Stdout != krr.Stdout {
		t.Fatalf("blocking mode must preserve semantics: %q vs %q", brr.Stdout, krr.Stdout)
	}
	if krr.Instrs <= brr.Instrs {
		t.Errorf("blocking all alias analyses must cost performance: baseline %d, blocked %d",
			brr.Instrs, krr.Instrs)
	}
	s := blocked.ORAQLStats()
	if s.UniquePessimistic == 0 || s.UniqueOptimistic != 0 {
		t.Errorf("blocking stats: %+v", s)
	}
	_ = base
}

// TestMustAliasOptimismMode exercises the Section VIII open question:
// answering leftover queries must-alias. On a program whose leftover
// pairs truly are distinct, full must-alias optimism miscompiles (the
// forwarding it unlocks is wrong), which the verification detects —
// the same workflow as the no-alias mode.
func TestMustAliasOptimismMode(t *testing.T) {
	src := `
void combine(double* a, double* b, int n) {
	for (int i = 0; i < n; i++) {
		a[i] = a[i] + b[i];
	}
}
int main() {
	double x[16];
	double y[16];
	for (int i = 0; i < 16; i++) {
		x[i] = (double)i;
		y[i] = 100.0;
	}
	combine(x, y, 16);
	print(checksum(x, 16), "\n");
	return 0;
}`
	_, ref := run(t, Config{Name: "must", Source: src})
	cr, err := Compile(Config{Name: "must", Source: src,
		ORAQL: &oraql.Options{Mode: oraql.ModeOptimisticMust}})
	if err != nil {
		t.Fatal(err)
	}
	got, gerr := irinterp.Run(cr.Program, irinterp.Options{})
	// Either outcome demonstrates the mode is live: a changed output
	// (miscompile caught by verification) or an identical one (the
	// must-alias answers were not acted upon). It must at least have
	// answered queries.
	if cr.ORAQLStats().Unique() == 0 {
		t.Fatal("must-alias mode answered no queries")
	}
	if gerr == nil && got.Stdout == ref.Stdout {
		t.Log("must-alias optimism was benign on this program")
	} else {
		t.Logf("must-alias optimism broke the program as expected (err=%v)", gerr)
	}
}
