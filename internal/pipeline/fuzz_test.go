package pipeline

import (
	"fmt"
	"reflect"
	"testing"

	"github.com/oraql/go-oraql/internal/irinterp"
	"github.com/oraql/go-oraql/internal/minic"
	"github.com/oraql/go-oraql/internal/oraql"
	"github.com/oraql/go-oraql/internal/progen"
)

// The random-program tests below draw from internal/progen, the
// shared UB-free generator (pointer views, structs, restrict calls,
// parallel regions); internal/difftest builds the full differential
// matrix and triage on top of the same generator.

// TestDifferentialO0VsO3 is the compiler soundness fuzz test: for many
// random programs, the unoptimized and fully optimized compilations
// must produce identical output.
func TestDifferentialO0VsO3(t *testing.T) {
	seeds := 12
	if testing.Short() {
		seeds = 10
	}
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			p := progen.Generate(int64(seed), progen.Options{})
			src := p.Source

			host0, _, err := minic.Compile(p.FileName, src, minic.Options{})
			if err != nil {
				t.Fatalf("frontend: %v\nsource:\n%s", err, src)
			}
			ref, err := irinterp.Run(&irinterp.Program{Host: host0}, irinterp.Options{})
			if err != nil {
				t.Fatalf("O0 run: %v\nsource:\n%s", err, src)
			}

			cr, err := Compile(Config{Name: "fuzz", Source: src, SourceFile: p.FileName})
			if err != nil {
				t.Fatalf("O3 compile: %v\nsource:\n%s", err, src)
			}
			got, err := irinterp.Run(cr.Program, irinterp.Options{})
			if err != nil {
				t.Fatalf("O3 run: %v\nsource:\n%s", err, src)
			}
			if got.Stdout != ref.Stdout {
				t.Fatalf("MISCOMPILE (seed %d):\n O0: %q\n O3: %q\nsource:\n%s", seed, ref.Stdout, got.Stdout, src)
			}
		})
	}
}

// TestDifferentialModels checks that every parallel-model lowering of
// the same data-parallel program agrees with the sequential one.
func TestDifferentialModels(t *testing.T) {
	src := `
int main() {
	double a[32];
	double b[32];
	for (int z = 0; z < 32; z++) {
		a[z] = (double)z * 0.25;
		b[z] = 0.0;
	}
	parallel for (i = 0; i < 32; i++) {
		b[i] = a[i] * 2.0 + 1.0;
	}
	double s = 0.0;
	for (int z = 0; z < 32; z++) {
		s = s + b[z];
	}
	print("s=", s, "\n");
	return 0;
}`
	var ref string
	for _, model := range []minic.Model{minic.ModelSeq, minic.ModelOpenMP, minic.ModelTasks, minic.ModelMPI, minic.ModelOffload} {
		cr, err := Compile(Config{Name: "models", Source: src, SourceFile: "models.mc",
			Frontend: minic.Options{Model: model}})
		if err != nil {
			t.Fatalf("model %d: %v", model, err)
		}
		res, err := irinterp.Run(cr.Program, irinterp.Options{})
		if err != nil {
			t.Fatalf("model %d run: %v", model, err)
		}
		if ref == "" {
			ref = res.Stdout
			continue
		}
		if res.Stdout != ref {
			t.Errorf("model %d output %q != sequential %q", model, res.Stdout, ref)
		}
	}
	if ref != "s=280\n" {
		t.Errorf("reference output = %q", ref)
	}
}

// TestDifferentialModelsFuzz generates random data-parallel programs
// (MinParallel guarantees at least one parallel region per program)
// and checks all five model lowerings agree with the unoptimized
// sequential build.
func TestDifferentialModelsFuzz(t *testing.T) {
	seeds := 12
	if testing.Short() {
		seeds = 3
	}
	models := []minic.Model{minic.ModelSeq, minic.ModelOpenMP, minic.ModelTasks, minic.ModelMPI, minic.ModelOffload}
	for seed := 0; seed < seeds; seed++ {
		p := progen.Generate(int64(1000+seed), progen.Options{MinParallel: 1})
		src := p.Source
		if p.Parallel == 0 {
			t.Fatalf("seed %d: MinParallel ignored", seed)
		}

		ref := ""
		for _, model := range models {
			cr, err := Compile(Config{Name: "mfuzz", Source: src, SourceFile: p.FileName,
				Frontend: minic.Options{Model: model}})
			if err != nil {
				t.Fatalf("seed %d model %d: %v\nsource:\n%s", seed, model, err, src)
			}
			res, err := irinterp.Run(cr.Program, irinterp.Options{NumRanks: 1})
			if err != nil {
				t.Fatalf("seed %d model %d run: %v\nsource:\n%s", seed, model, err, src)
			}
			if ref == "" {
				ref = res.Stdout
			} else if res.Stdout != ref {
				t.Fatalf("seed %d model %d diverges:\n ref: %q\n got: %q\nsource:\n%s",
					seed, model, ref, res.Stdout, src)
			}
		}
	}
}

// TestDifferentialAnalysisCache is the analysis-manager soundness fuzz
// test: for many random programs, compiling with cached analyses and
// compiling with every analysis force-invalidated before each use must
// be indistinguishable — same executable, same per-pass statistics,
// same ORAQL query stream, same alias-query counters. Any preservation
// set that is too generous shows up here as a divergence.
func TestDifferentialAnalysisCache(t *testing.T) {
	seeds := 12
	if testing.Short() {
		seeds = 6
	}
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			p := progen.Generate(int64(seed), progen.Options{})
			src := p.Source
			compile := func(disable bool) *CompileResult {
				cr, err := Compile(Config{
					Name:                 "fuzz-am",
					Source:               src,
					SourceFile:           p.FileName,
					ORAQL:                &oraql.Options{},
					DisableAnalysisCache: disable,
				})
				if err != nil {
					t.Fatalf("compile (analysis cache disabled=%v): %v\nsource:\n%s", disable, err, src)
				}
				return cr
			}
			on := compile(false)
			off := compile(true)

			if g, w := on.ExeHash(), off.ExeHash(); g != w {
				t.Errorf("seed %d: ExeHash differs: cached %s, force-invalidated %s\nsource:\n%s",
					seed, g, w, src)
			}
			if g, w := on.ORAQLStats(), off.ORAQLStats(); g != w {
				t.Errorf("seed %d: ORAQL stats differ: cached %+v, force-invalidated %+v",
					seed, g, w)
			}
			if g, w := on.Host.Pass.Entries(), off.Host.Pass.Entries(); !reflect.DeepEqual(g, w) {
				t.Errorf("seed %d: pass statistics differ:\ncached: %+v\nforce-invalidated: %+v",
					seed, g, w)
			}
			son, soff := on.AAStats(), off.AAStats()
			if son.Queries != soff.Queries || son.NoAlias != soff.NoAlias ||
				son.MayAlias != soff.MayAlias || son.MustAlias != soff.MustAlias {
				t.Errorf("seed %d: alias query counters differ: cached %+v, force-invalidated %+v",
					seed, son, soff)
			}
			var hitsOff int64
			for _, as := range off.AnalysisStats() {
				hitsOff += as.Hits
			}
			if hitsOff != 0 {
				t.Errorf("seed %d: force-invalidate mode counted %d analysis cache hits", seed, hitsOff)
			}
		})
	}
}
