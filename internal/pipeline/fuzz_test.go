package pipeline

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"github.com/oraql/go-oraql/internal/irinterp"
	"github.com/oraql/go-oraql/internal/minic"
	"github.com/oraql/go-oraql/internal/oraql"
)

// progGen generates random but UB-free minic programs: all indices are
// wrapped into bounds, divisions are by strictly positive values, and
// every loop is counted. O0 (frontend only) and O3 must agree on the
// output for every generated program — the compiler's core soundness
// property.
type progGen struct {
	r       *rand.Rand
	sb      strings.Builder
	arrays  []string // double arrays, all of size arrN
	iarrays []string
	scalars []string
	arrN    int
	depth   int
}

func (g *progGen) pick(list []string) string { return list[g.r.Intn(len(list))] }

// expr generates a double-valued expression using loop var iv (may be "").
func (g *progGen) expr(iv string, depth int) string {
	if depth <= 0 || g.r.Intn(3) == 0 {
		switch g.r.Intn(4) {
		case 0:
			return fmt.Sprintf("%.3f", g.r.Float64()*4-2)
		case 1:
			if len(g.scalars) > 0 {
				return g.pick(g.scalars)
			}
			return "1.25"
		case 2:
			if iv != "" {
				return "(double)" + iv
			}
			return "0.5"
		default:
			return fmt.Sprintf("%s[%s]", g.pick(g.arrays), g.index(iv))
		}
	}
	op := []string{"+", "-", "*"}[g.r.Intn(3)]
	l := g.expr(iv, depth-1)
	r := g.expr(iv, depth-1)
	if g.r.Intn(6) == 0 {
		return fmt.Sprintf("(%s %s %s) / ((double)((%s %% 5 + 5) %% 5 + 1))", l, op, r, g.intExpr(iv))
	}
	return fmt.Sprintf("(%s %s %s)", l, op, r)
}

// intExpr generates an int expression (non-UB).
func (g *progGen) intExpr(iv string) string {
	switch g.r.Intn(3) {
	case 0:
		return fmt.Sprint(g.r.Intn(20))
	case 1:
		if iv != "" {
			return iv
		}
		return "3"
	default:
		return fmt.Sprintf("%s[%s]", g.pick(g.iarrays), g.index(iv))
	}
}

// index generates an always-in-bounds index expression.
func (g *progGen) index(iv string) string {
	if iv != "" && g.r.Intn(2) == 0 {
		if off := g.r.Intn(3); off > 0 {
			return fmt.Sprintf("(%s + %d) %% %d", iv, off, g.arrN)
		}
		return iv
	}
	return fmt.Sprintf("((%s) %%%% %d + %d) %%%% %d",
		g.intExpr(iv), g.arrN, g.arrN, g.arrN)
}

func (g *progGen) stmt(depth int) {
	iv := fmt.Sprintf("i%d", g.depth)
	g.depth++
	defer func() { g.depth-- }()
	switch g.r.Intn(5) {
	case 0: // elementwise loop
		fmt.Fprintf(&g.sb, "for (int %s = 0; %s < %d; %s++) {\n", iv, iv, g.arrN, iv)
		fmt.Fprintf(&g.sb, "%s[%s] = %s;\n", g.pick(g.arrays), iv, g.expr(iv, 2))
		g.sb.WriteString("}\n")
	case 1: // reduction loop
		s := g.pick(g.scalars)
		fmt.Fprintf(&g.sb, "for (int %s = 0; %s < %d; %s++) {\n", iv, iv, g.arrN, iv)
		fmt.Fprintf(&g.sb, "%s = %s + %s;\n", s, s, g.expr(iv, 1))
		g.sb.WriteString("}\n")
	case 2: // conditional
		a, b := g.pick(g.scalars), g.pick(g.scalars)
		fmt.Fprintf(&g.sb, "if (%s > %s) {\n%s = %s * 0.5;\n} else {\n%s = %s + 0.25;\n}\n",
			a, b, a, g.expr("", 1), b, g.expr("", 1))
	case 3: // int array update loop
		fmt.Fprintf(&g.sb, "for (int %s = 0; %s < %d; %s++) {\n", iv, iv, g.arrN, iv)
		fmt.Fprintf(&g.sb, "%s[%s] = (%s + %d) %%%% 97;\n", g.pick(g.iarrays), iv, g.intExpr(iv), g.r.Intn(50))
		g.sb.WriteString("}\n")
	case 4: // nested loop
		if depth > 0 {
			jv := fmt.Sprintf("j%d", g.depth)
			fmt.Fprintf(&g.sb, "for (int %s = 0; %s < %d; %s++) {\n", iv, iv, 4, iv)
			fmt.Fprintf(&g.sb, "for (int %s = 0; %s < %d; %s++) {\n", jv, jv, g.arrN, jv)
			fmt.Fprintf(&g.sb, "%s[%s] = %s;\n", g.pick(g.arrays), jv, g.expr(jv, 1))
			g.sb.WriteString("}\n}\n")
		} else {
			fmt.Fprintf(&g.sb, "%s = %s;\n", g.pick(g.scalars), g.expr("", 2))
		}
	}
}

func (g *progGen) generate(nStmts int) string {
	g.sb.WriteString("int main() {\n")
	for i, a := range g.arrays {
		fmt.Fprintf(&g.sb, "double %s[%d];\n", a, g.arrN)
		fmt.Fprintf(&g.sb, "for (int z = 0; z < %d; z++) { %s[z] = (double)(z * %d) * 0.125; }\n",
			g.arrN, a, i+1)
	}
	for i, a := range g.iarrays {
		fmt.Fprintf(&g.sb, "int %s[%d];\n", a, g.arrN)
		fmt.Fprintf(&g.sb, "for (int z = 0; z < %d; z++) { %s[z] = (z * %d) %%%% 31; }\n",
			g.arrN, a, i+2)
	}
	for _, s := range g.scalars {
		fmt.Fprintf(&g.sb, "double %s = %.3f;\n", s, g.r.Float64())
	}
	for i := 0; i < nStmts; i++ {
		g.stmt(1)
	}
	for _, a := range g.arrays {
		fmt.Fprintf(&g.sb, "print(\"%s \", checksum(%s, %d), \"\\n\");\n", a, a, g.arrN)
	}
	for _, a := range g.iarrays {
		fmt.Fprintf(&g.sb, "print(\"%s \", checksumi(%s, %d), \"\\n\");\n", a, a, g.arrN)
	}
	for _, s := range g.scalars {
		fmt.Fprintf(&g.sb, "print(\"%s \", %s, \"\\n\");\n", s, s)
	}
	g.sb.WriteString("return 0;\n}\n")
	// The %% escapes above produce literal % in the source.
	return strings.ReplaceAll(g.sb.String(), "%%", "%")
}

func newProgGen(seed int64) *progGen {
	r := rand.New(rand.NewSource(seed))
	g := &progGen{r: r, arrN: 8 + r.Intn(3)*4}
	for i := 0; i < 2+r.Intn(2); i++ {
		g.arrays = append(g.arrays, fmt.Sprintf("a%d", i))
	}
	for i := 0; i < 1+r.Intn(2); i++ {
		g.iarrays = append(g.iarrays, fmt.Sprintf("n%d", i))
	}
	for i := 0; i < 2+r.Intn(2); i++ {
		g.scalars = append(g.scalars, fmt.Sprintf("s%d", i))
	}
	return g
}

// TestDifferentialO0VsO3 is the compiler soundness fuzz test: for many
// random programs, the unoptimized and fully optimized compilations
// must produce identical output.
func TestDifferentialO0VsO3(t *testing.T) {
	seeds := 12
	if testing.Short() {
		seeds = 10
	}
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			src := newProgGen(int64(seed)).generate(6)

			host0, _, err := minic.Compile("fuzz.mc", src, minic.Options{})
			if err != nil {
				t.Fatalf("frontend: %v\nsource:\n%s", err, src)
			}
			ref, err := irinterp.Run(&irinterp.Program{Host: host0}, irinterp.Options{})
			if err != nil {
				t.Fatalf("O0 run: %v\nsource:\n%s", err, src)
			}

			cr, err := Compile(Config{Name: "fuzz", Source: src, SourceFile: "fuzz.mc"})
			if err != nil {
				t.Fatalf("O3 compile: %v\nsource:\n%s", err, src)
			}
			got, err := irinterp.Run(cr.Program, irinterp.Options{})
			if err != nil {
				t.Fatalf("O3 run: %v\nsource:\n%s", err, src)
			}
			if got.Stdout != ref.Stdout {
				t.Fatalf("MISCOMPILE (seed %d):\n O0: %q\n O3: %q\nsource:\n%s", seed, ref.Stdout, got.Stdout, src)
			}
		})
	}
}

// TestDifferentialModels checks that every parallel-model lowering of
// the same data-parallel program agrees with the sequential one.
func TestDifferentialModels(t *testing.T) {
	src := `
int main() {
	double a[32];
	double b[32];
	for (int z = 0; z < 32; z++) {
		a[z] = (double)z * 0.25;
		b[z] = 0.0;
	}
	parallel for (i = 0; i < 32; i++) {
		b[i] = a[i] * 2.0 + 1.0;
	}
	double s = 0.0;
	for (int z = 0; z < 32; z++) {
		s = s + b[z];
	}
	print("s=", s, "\n");
	return 0;
}`
	var ref string
	for _, model := range []minic.Model{minic.ModelSeq, minic.ModelOpenMP, minic.ModelTasks, minic.ModelMPI, minic.ModelOffload} {
		cr, err := Compile(Config{Name: "models", Source: src, SourceFile: "models.mc",
			Frontend: minic.Options{Model: model}})
		if err != nil {
			t.Fatalf("model %d: %v", model, err)
		}
		res, err := irinterp.Run(cr.Program, irinterp.Options{})
		if err != nil {
			t.Fatalf("model %d run: %v", model, err)
		}
		if ref == "" {
			ref = res.Stdout
			continue
		}
		if res.Stdout != ref {
			t.Errorf("model %d output %q != sequential %q", model, res.Stdout, ref)
		}
	}
	if ref != "s=280\n" {
		t.Errorf("reference output = %q", ref)
	}
}

// TestDifferentialModelsFuzz generates random data-parallel programs
// and checks all five model lowerings agree with the unoptimized
// sequential build.
func TestDifferentialModelsFuzz(t *testing.T) {
	seeds := 12
	if testing.Short() {
		seeds = 3
	}
	models := []minic.Model{minic.ModelSeq, minic.ModelOpenMP, minic.ModelTasks, minic.ModelMPI, minic.ModelOffload}
	for seed := 0; seed < seeds; seed++ {
		g := newProgGen(int64(1000 + seed))
		src := g.generate(4)
		// Promote the first elementwise for-loop into a parallel for.
		src = promoteFirstLoop(src)

		ref := ""
		for _, model := range models {
			cr, err := Compile(Config{Name: "mfuzz", Source: src, SourceFile: "mfuzz.mc",
				Frontend: minic.Options{Model: model}})
			if err != nil {
				t.Fatalf("seed %d model %d: %v\nsource:\n%s", seed, model, err, src)
			}
			res, err := irinterp.Run(cr.Program, irinterp.Options{NumRanks: 1})
			if err != nil {
				t.Fatalf("seed %d model %d run: %v\nsource:\n%s", seed, model, err, src)
			}
			if ref == "" {
				ref = res.Stdout
			} else if res.Stdout != ref {
				t.Fatalf("seed %d model %d diverges:\n ref: %q\n got: %q\nsource:\n%s",
					seed, model, ref, res.Stdout, src)
			}
		}
	}
}

// TestDifferentialAnalysisCache is the analysis-manager soundness fuzz
// test: for many random programs, compiling with cached analyses and
// compiling with every analysis force-invalidated before each use must
// be indistinguishable — same executable, same per-pass statistics,
// same ORAQL query stream, same alias-query counters. Any preservation
// set that is too generous shows up here as a divergence.
func TestDifferentialAnalysisCache(t *testing.T) {
	seeds := 12
	if testing.Short() {
		seeds = 6
	}
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			src := newProgGen(int64(seed)).generate(6)
			compile := func(disable bool) *CompileResult {
				cr, err := Compile(Config{
					Name:                 "fuzz-am",
					Source:               src,
					SourceFile:           "fuzz.mc",
					ORAQL:                &oraql.Options{},
					DisableAnalysisCache: disable,
				})
				if err != nil {
					t.Fatalf("compile (analysis cache disabled=%v): %v\nsource:\n%s", disable, err, src)
				}
				return cr
			}
			on := compile(false)
			off := compile(true)

			if g, w := on.ExeHash(), off.ExeHash(); g != w {
				t.Errorf("seed %d: ExeHash differs: cached %s, force-invalidated %s\nsource:\n%s",
					seed, g, w, src)
			}
			if g, w := on.ORAQLStats(), off.ORAQLStats(); g != w {
				t.Errorf("seed %d: ORAQL stats differ: cached %+v, force-invalidated %+v",
					seed, g, w)
			}
			if g, w := on.Host.Pass.Entries(), off.Host.Pass.Entries(); !reflect.DeepEqual(g, w) {
				t.Errorf("seed %d: pass statistics differ:\ncached: %+v\nforce-invalidated: %+v",
					seed, g, w)
			}
			son, soff := on.AAStats(), off.AAStats()
			if son.Queries != soff.Queries || son.NoAlias != soff.NoAlias ||
				son.MayAlias != soff.MayAlias || son.MustAlias != soff.MustAlias {
				t.Errorf("seed %d: alias query counters differ: cached %+v, force-invalidated %+v",
					seed, son, soff)
			}
			var hitsOff int64
			for _, as := range off.AnalysisStats() {
				hitsOff += as.Hits
			}
			if hitsOff != 0 {
				t.Errorf("seed %d: force-invalidate mode counted %d analysis cache hits", seed, hitsOff)
			}
		})
	}
}

// promoteFirstLoop rewrites the first "for (int iN = 0; iN < K; iN++) {"
// into a parallel for (the parallel-for grammar drops the type).
func promoteFirstLoop(src string) string {
	lines := strings.Split(src, "\n")
	for i, l := range lines {
		trimmed := strings.TrimSpace(l)
		if strings.HasPrefix(trimmed, "for (int i") && strings.HasSuffix(trimmed, "{") {
			lines[i] = strings.Replace(l, "for (int ", "parallel for (", 1)
			return strings.Join(lines, "\n")
		}
	}
	return src
}
