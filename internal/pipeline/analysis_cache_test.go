package pipeline_test

// Transparency tests for the per-function analysis manager: compiling
// with lazily cached CFG/MemorySSA analyses must be observably
// identical to force-invalidate mode (every analysis rebuilt on every
// pass run) — same executable, same ORAQL counters, same pass
// statistics — and the probing driver must discover the exact same
// response sequence either way.

import (
	"reflect"
	"testing"

	"github.com/oraql/go-oraql/internal/apps"
	"github.com/oraql/go-oraql/internal/driver"
	"github.com/oraql/go-oraql/internal/oraql"
	"github.com/oraql/go-oraql/internal/pipeline"
)

var analysisCacheConfigs = []string{
	"lulesh-seq", "testsnap-openmp", "minigmg-sse", "quicksilver-openmp",
}

func TestAnalysisCacheIsTransparent(t *testing.T) {
	for _, id := range analysisCacheConfigs {
		app := apps.ByID(id)
		if app == nil {
			t.Fatalf("unknown app config %q", id)
		}
		t.Run(id, func(t *testing.T) {
			spec := app.Spec()
			compile := func(disable bool) *pipeline.CompileResult {
				cfg := spec.Compile
				cfg.Name = id
				cfg.DisableAnalysisCache = disable
				cfg.ORAQL = &oraql.Options{}
				cr, err := pipeline.Compile(cfg)
				if err != nil {
					t.Fatalf("compile (analysis cache disabled=%v): %v", disable, err)
				}
				return cr
			}
			on := compile(false)
			off := compile(true)

			if g, w := on.ExeHash(), off.ExeHash(); g != w {
				t.Errorf("ExeHash differs with analysis cache on: %s vs %s", g, w)
			}
			if g, w := on.ORAQLStats(), off.ORAQLStats(); g != w {
				t.Errorf("ORAQL stats differ: cached %+v, force-invalidated %+v", g, w)
			}
			if g, w := on.Host.Pass.Entries(), off.Host.Pass.Entries(); !reflect.DeepEqual(g, w) {
				t.Errorf("pass statistics differ:\ncached: %+v\nforce-invalidated: %+v", g, w)
			}
			son, soff := on.AAStats(), off.AAStats()
			if son.Queries != soff.Queries || son.NoAlias != soff.NoAlias || son.MayAlias != soff.MayAlias {
				t.Errorf("alias query counters differ: cached %d/%d/%d, force-invalidated %d/%d/%d",
					son.Queries, son.NoAlias, son.MayAlias, soff.Queries, soff.NoAlias, soff.MayAlias)
			}
			var hitsOn, hitsOff, missesOff int64
			for _, as := range on.AnalysisStats() {
				hitsOn += as.Hits
			}
			for _, as := range off.AnalysisStats() {
				hitsOff += as.Hits
				missesOff += as.Misses
			}
			if hitsOn == 0 {
				t.Errorf("analysis cache enabled but never hit")
			}
			if hitsOff != 0 {
				t.Errorf("force-invalidate mode counted %d analysis cache hits", hitsOff)
			}
			if missesOff == 0 {
				t.Errorf("force-invalidate mode never computed an analysis")
			}
			t.Logf("%s: analysis cache %d hits (force-invalidated mode rebuilt %d times)",
				id, hitsOn, missesOff)
		})
	}
}

// TestProbeSeqUnchangedByAnalysisCache drives the full probing
// workflow twice per configuration — cached and force-invalidated —
// and requires the discovered response sequence, the final executable,
// and the ORAQL counters to be identical: the analysis cache must be
// invisible to the bisection.
func TestProbeSeqUnchangedByAnalysisCache(t *testing.T) {
	for _, id := range analysisCacheConfigs {
		app := apps.ByID(id)
		if app == nil {
			t.Fatalf("unknown app config %q", id)
		}
		t.Run(id, func(t *testing.T) {
			probe := func(disable bool) *driver.Result {
				spec := app.Spec()
				spec.Compile.DisableAnalysisCache = disable
				spec.Workers = 1
				res, err := driver.Probe(spec)
				if err != nil {
					t.Fatalf("probe (analysis cache disabled=%v): %v", disable, err)
				}
				return res
			}
			on := probe(false)
			off := probe(true)

			if g, w := on.FinalSeq.String(), off.FinalSeq.String(); g != w {
				t.Errorf("FinalSeq differs:\ncached:            %q\nforce-invalidated: %q", g, w)
			}
			if on.FullyOptimistic != off.FullyOptimistic {
				t.Errorf("FullyOptimistic differs: cached %v, force-invalidated %v",
					on.FullyOptimistic, off.FullyOptimistic)
			}
			if g, w := on.Final.Compile.ExeHash(), off.Final.Compile.ExeHash(); g != w {
				t.Errorf("final ExeHash differs: %s vs %s", g, w)
			}
			if g, w := on.Final.Compile.ORAQLStats(), off.Final.Compile.ORAQLStats(); g != w {
				t.Errorf("final ORAQL stats differ: cached %+v, force-invalidated %+v", g, w)
			}
			if on.TestsRun+on.TestsCached != off.TestsRun+off.TestsCached {
				t.Errorf("consumed test count differs: cached %d, force-invalidated %d",
					on.TestsRun+on.TestsCached, off.TestsRun+off.TestsCached)
			}
		})
	}
}
