// Package pipeline is the compiler driver (the "clang" of the
// reproduction): it runs the minic frontend, assembles the alias
// analysis chain — with the ORAQL pass appended last when probing —
// runs the -O3 pass pipeline, and lowers to machine code for the
// executable hash and the machine statistics. Offload programs compile
// host and device modules as separate compilations that share one
// ORAQL option set, reproducing the paper's multi-target behaviour
// (Section IV-E): the sequence is reused for all targets.
package pipeline

import (
	"bytes"
	"context"
	"fmt"

	"github.com/oraql/go-oraql/internal/aa"
	"github.com/oraql/go-oraql/internal/analysis"
	"github.com/oraql/go-oraql/internal/codegen"
	"github.com/oraql/go-oraql/internal/diskcache"
	"github.com/oraql/go-oraql/internal/ir"
	"github.com/oraql/go-oraql/internal/irinterp"
	"github.com/oraql/go-oraql/internal/minic"
	"github.com/oraql/go-oraql/internal/oraql"
	"github.com/oraql/go-oraql/internal/passes"
)

// Config describes one compilation of one benchmark source.
type Config struct {
	// Name identifies the compilation in diagnostics.
	Name string
	// Source is the minic source text; SourceFile its reported name.
	Source     string
	SourceFile string
	// Module, when non-nil, bypasses the frontend and optimizes this
	// pre-built host module (e.g. parsed from textual IR).
	Module *ir.Module
	// Frontend options (dialect, model, views).
	Frontend minic.Options
	// OptLevel: 0 (frontend output only), 1, or 3 (default 3).
	OptLevel int
	// StopAfter, when positive, truncates the pass pipeline to its
	// first StopAfter pass instances. The differential-testing triage
	// (internal/difftest) uses this to bisect a miscompilation to the
	// first pipeline position whose prefix diverges.
	StopAfter int
	// FullAAChain additionally enables the CFL points-to analyses.
	// Shorthand for AAChain: "full"; ignored when AAChain is set.
	FullAAChain bool
	// AAChain selects the alias-analysis chain by registered chain name
	// ("default", "full") or as a comma-separated list of registered
	// analysis names in query order (aa.ChainByName). Chain order is
	// output-affecting — the first definitive answer wins — so the
	// canonical resolved chain is part of every persistence key. Empty
	// falls back to FullAAChain.
	AAChain string
	// DisableAAQueryCache turns off the manager-level memoized alias
	// query cache (for the cache-ablation benchmarks).
	DisableAAQueryCache bool
	// DisableAnalysisCache runs the per-function analysis manager in
	// force-invalidate mode: every pass run recomputes CFG info and the
	// MemorySSA walker from scratch. The transparency tests compare this
	// reference mode against the cached default.
	DisableAnalysisCache bool
	// ORAQL, when non-nil, appends the ORAQL pass to the AA chain.
	ORAQL *oraql.Options
	// CompileWorkers bounds the per-function parallelism of the pass
	// pipeline (0 = GOMAXPROCS, 1 = strictly sequential). Compilation
	// output — exe hash, IR text, -stats, timing-table rows — is
	// byte-identical for every value. ORAQL-active and -debug-pass
	// compilations always execute sequentially: the responder consumes
	// its sequence in global query order.
	CompileWorkers int
	// DebugPassExec and DumpOut mirror -debug-pass=Executions.
	DebugPassExec bool
	DumpOut       *bytes.Buffer
	// DiskCache, when non-nil, consults the persistent per-function
	// artifact store before running function passes and persists the
	// results afterwards, making repeat compilations warm-startable
	// across processes. Output — exe hash, IR text, -stats, timing-row
	// order — is byte-identical warm vs cold. ORAQL-active and
	// -debug-pass compilations bypass the cache (the responder consumes
	// its sequence in global query order); the probe driver layers its
	// own campaign-state persistence on the same store instead.
	DiskCache *diskcache.Store
	// WantContentHashes asks for ModuleHash/FuncHashes on TargetStats:
	// sha256 identities of the pristine (pre-optimization) module and
	// each of its functions. The probe driver keys persisted per-query
	// verdicts by these.
	WantContentHashes bool
}

// aaChainSpec is the effective chain specifier: AAChain when set,
// otherwise the legacy FullAAChain boolean mapped to its chain name.
func (c Config) aaChainSpec() string {
	if c.AAChain != "" {
		return c.AAChain
	}
	if c.FullAAChain {
		return "full"
	}
	return "default"
}

// AAChainCanonical is the canonical resolved chain identity
// (comma-joined analysis names) for persistence keys: two configs
// share cached artifacts exactly when their resolved chains are equal,
// however they were spelled. An unresolvable spec yields a marker key;
// such configs fail compilation before anything is persisted under it.
func (c Config) AAChainCanonical() string {
	canon, err := aa.ChainSpecCanonical(c.aaChainSpec())
	if err != nil {
		return "invalid:" + c.aaChainSpec()
	}
	return canon
}

// diskConfigKey folds every output-affecting configuration knob into
// the per-function cache key. Transparent knobs (worker counts, the
// AA query and analysis caches, which the transparency tests prove
// output-neutral) are deliberately excluded so their ablation modes
// share entries.
func (c Config) diskConfigKey() string {
	return fmt.Sprintf("opt=%d|stop=%d|chain=%s", c.OptLevel, c.StopAfter, c.AAChainCanonical())
}

// TargetStats bundles per-module compilation outputs.
type TargetStats struct {
	Module *ir.Module
	AA     *aa.Stats
	Pass   *passes.StatsRegistry
	ORAQL  *oraql.Pass // nil when ORAQL disabled
	Code   *codegen.Result
	// Timing is the per-pass execution accounting (-time-passes).
	Timing *passes.Timing
	// Analysis is the analysis manager's cache-counter snapshot.
	Analysis []analysis.Stats
	// ModuleHash and FuncHashes are pristine-content identities
	// (Config.WantContentHashes); empty/nil when not requested.
	ModuleHash string
	FuncHashes map[string]string
	// DiskHits counts functions whose optimized bodies came from the
	// persistent cache (0 when Config.DiskCache is nil or bypassed).
	DiskHits int
}

// CompileResult is the outcome of compiling a benchmark configuration.
type CompileResult struct {
	Program *irinterp.Program
	Host    *TargetStats
	Device  *TargetStats // nil for host-only programs
}

// ExeHash combines the target hashes into the executable-cache key.
func (r *CompileResult) ExeHash() string {
	h := r.Host.Code.HashString()
	if r.Device != nil {
		h += ":" + r.Device.Code.HashString()
	}
	return h
}

// DiskHits sums the per-function disk-cache hits over all targets.
func (r *CompileResult) DiskHits() int {
	n := r.Host.DiskHits
	if r.Device != nil {
		n += r.Device.DiskHits
	}
	return n
}

// ContentFuncHashes merges the pristine per-function content hashes of
// all targets (Config.WantContentHashes); nil when not requested.
func (r *CompileResult) ContentFuncHashes() map[string]string {
	if r.Host.FuncHashes == nil {
		return nil
	}
	out := make(map[string]string, len(r.Host.FuncHashes))
	for _, t := range []*TargetStats{r.Host, r.Device} {
		if t == nil {
			continue
		}
		for k, v := range t.FuncHashes {
			out[k] = v
		}
	}
	return out
}

// ORAQLStats sums the ORAQL counters over all targets.
func (r *CompileResult) ORAQLStats() oraql.Stats {
	var s oraql.Stats
	for _, t := range []*TargetStats{r.Host, r.Device} {
		if t == nil || t.ORAQL == nil {
			continue
		}
		st := t.ORAQL.Stats()
		s.UniqueOptimistic += st.UniqueOptimistic
		s.CachedOptimistic += st.CachedOptimistic
		s.UniquePessimistic += st.UniquePessimistic
		s.CachedPessimistic += st.CachedPessimistic
	}
	return s
}

// AAStats merges the alias-analysis statistics of all targets,
// including the memoized query-cache hit/miss/flush counters.
func (r *CompileResult) AAStats() *aa.Stats {
	out := aa.NewStats()
	out.Merge(r.Host.AA)
	if r.Device != nil {
		out.Merge(r.Device.AA)
	}
	return out
}

// NoAliasTotal sums no-alias responses across all AA passes and targets
// (the Fig. 4 rightmost columns).
func (r *CompileResult) NoAliasTotal() int64 {
	n := r.Host.AA.NoAlias
	if r.Device != nil {
		n += r.Device.AA.NoAlias
	}
	return n
}

// Timing merges the per-pass timing of all targets (-time-passes).
func (r *CompileResult) Timing() *passes.Timing {
	out := passes.NewTiming()
	out.Merge(r.Host.Timing)
	if r.Device != nil {
		out.Merge(r.Device.Timing)
	}
	return out
}

// AnalysisStats merges the analysis-manager cache counters of all
// targets, summed per analysis key.
func (r *CompileResult) AnalysisStats() []analysis.Stats {
	byKey := map[analysis.Key]*analysis.Stats{}
	var order []analysis.Key
	for _, t := range []*TargetStats{r.Host, r.Device} {
		if t == nil {
			continue
		}
		for _, s := range t.Analysis {
			agg := byKey[s.Key]
			if agg == nil {
				agg = &analysis.Stats{Key: s.Key}
				byKey[s.Key] = agg
				order = append(order, s.Key)
			}
			agg.Hits += s.Hits
			agg.Misses += s.Misses
			agg.Invalidations += s.Invalidations
		}
	}
	out := make([]analysis.Stats, len(order))
	for i, k := range order {
		out[i] = *byKey[k]
	}
	return out
}

// Records returns the ORAQL query records of all targets in
// compilation order.
func (r *CompileResult) Records() []*oraql.QueryRecord {
	var out []*oraql.QueryRecord
	for _, t := range []*TargetStats{r.Host, r.Device} {
		if t != nil && t.ORAQL != nil {
			out = append(out, t.ORAQL.Records()...)
		}
	}
	return out
}

// Compile runs the full compilation of a configuration.
func Compile(cfg Config) (*CompileResult, error) {
	return CompileContext(context.Background(), cfg)
}

// CompileContext is Compile with cancellation: ctx is checked before
// the frontend, between pass executions inside the pipeline, and
// before codegen, so a disconnected client or a draining server stops
// a compilation mid-pipeline instead of only between compilations.
func CompileContext(ctx context.Context, cfg Config) (*CompileResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Fail unknown chain specs up front, before any cache is keyed on
	// them.
	if _, err := aa.ResolveChainNames(cfg.aaChainSpec()); err != nil {
		return nil, fmt.Errorf("%s: %w", cfg.Name, err)
	}
	srcName := cfg.SourceFile
	if srcName == "" {
		srcName = cfg.Name + ".mc"
	}
	// Translation-unit layer: a whole-compilation hit skips the
	// frontend, the AA chain, the pipeline, and codegen.
	var tuKey string
	if cfg.tuCacheable() {
		tuKey = cfg.tuKey(srcName)
		if res, ok := loadTU(cfg, tuKey); ok {
			return res, nil
		}
	}
	var host, device *ir.Module
	if cfg.Module != nil {
		host = cfg.Module
	} else {
		var err error
		host, device, err = minic.Compile(srcName, cfg.Source, cfg.Frontend)
		if err != nil {
			return nil, fmt.Errorf("%s: frontend: %w", cfg.Name, err)
		}
	}
	res := &CompileResult{Program: &irinterp.Program{Host: host, Device: device}}

	// The paper's multi-target behaviour: one ORAQL option set is
	// shared by the per-target compilations, in a fixed order (host
	// first, then device), each with its own pass instance but the
	// same sequence.
	var err error
	res.Host, err = compileModule(ctx, cfg, host)
	if err != nil {
		return nil, err
	}
	if device != nil {
		res.Device, err = compileModule(ctx, cfg, device)
		if err != nil {
			return nil, err
		}
	}
	if tuKey != "" {
		storeTU(cfg, tuKey, res)
	}
	return res, nil
}

func compileModule(cctx context.Context, cfg Config, m *ir.Module) (*TargetStats, error) {
	pipe := passes.O3Pipeline()
	switch cfg.OptLevel {
	case 1:
		pipe = passes.O1Pipeline()
	case -1:
		pipe = &passes.Pipeline{} // -O0: frontend output only
	}
	if cfg.StopAfter > 0 && cfg.StopAfter < len(pipe.Passes) {
		pipe = &passes.Pipeline{Passes: pipe.Passes[:cfg.StopAfter]}
	}

	// Pristine-content identities and the disk-cache plan must both be
	// taken before any pass mutates the module.
	// Hashes are computed whenever the cache is active, not just on
	// request: a persisted translation unit must carry them, because a
	// warm load never sees the pristine module to recompute them.
	var moduleHash string
	var funcHashes map[string]string
	if cfg.WantContentHashes || (cfg.DiskCache != nil && cfg.ORAQL == nil && !cfg.DebugPassExec) {
		moduleHash = diskcache.HashText(m.String())
		funcHashes = make(map[string]string, len(m.Funcs))
		for _, fn := range m.Funcs {
			funcHashes[fn.Name] = diskcache.HashText(fn.String())
		}
	}
	var plan *passes.DiskPlan
	if cfg.DiskCache != nil && cfg.ORAQL == nil && !cfg.DebugPassExec && len(pipe.Passes) > 0 {
		plan = passes.PlanDisk(cfg.DiskCache, m, pipe, cfg.diskConfigKey())
	}

	// A full hit means no pass will execute, so the (potentially
	// expensive, module-level) AA chain is never queried: skip building
	// it. Otherwise the chain is built from the pristine module —
	// cached bodies are swapped in only afterwards (plan.Apply), so
	// module-level analyses see exactly what a cold compilation sees.
	var chain []aa.Analysis
	if plan == nil || !plan.AllHit() {
		var err error
		chain, err = aa.ChainByName(m, cfg.aaChainSpec())
		if err != nil {
			return nil, fmt.Errorf("%s: %w", cfg.Name, err)
		}
	}
	mgr := aa.NewManager(m, chain...)
	if cfg.DisableAAQueryCache {
		mgr.SetQueryCache(false)
	}
	var op *oraql.Pass
	if cfg.ORAQL != nil {
		opts := *cfg.ORAQL
		if opts.Out == nil && cfg.DumpOut != nil {
			opts.Out = cfg.DumpOut
		}
		op = oraql.New(m, opts)
		if opts.Mode == oraql.ModeBlocking {
			// Section VIII design: consulted before the chain, forcing
			// may-alias for blocked queries.
			mgr.Blocker = op
		} else {
			mgr.Append(op)
		}
	}
	if plan != nil {
		plan.Apply(m)
	}
	stats := passes.NewStats()
	ctx := &passes.Context{Module: m, AA: mgr, Stats: stats, Ctx: cctx,
		Timing:               passes.NewTiming(),
		DisableAnalysisCache: cfg.DisableAnalysisCache,
		DebugPassExec:        cfg.DebugPassExec,
		Workers:              cfg.CompileWorkers,
		Disk:                 plan}
	if cfg.DumpOut != nil {
		ctx.Out = cfg.DumpOut
	}
	pipe.Run(ctx)
	if err := cctx.Err(); err != nil {
		// The pipeline stopped early: surface the cancellation instead
		// of verifying (and hashing) a half-optimized module.
		return nil, fmt.Errorf("%s: %s: %w", cfg.Name, m.Name, err)
	}
	if err := ir.Verify(m); err != nil {
		return nil, fmt.Errorf("%s: post-optimization verification of %s: %w", cfg.Name, m.Name, err)
	}
	code := codegen.Compile(m)
	stats.Add("asm printer", "# machine instructions generated", int64(code.MachineInstrs))
	stats.Add("register allocation", "# register spills inserted", int64(code.Spills))
	ts := &TargetStats{Module: m, AA: mgr.Stats(), Pass: stats, ORAQL: op, Code: code,
		Timing: ctx.Timing, Analysis: ctx.Analyses().Snapshot(),
		ModuleHash: moduleHash, FuncHashes: funcHashes}
	if plan != nil {
		// Persist only now — after the pipeline ran to completion and
		// the module verified — so partial or unverified captures are
		// never published.
		plan.Persist(m)
		ts.DiskHits = plan.Hits()
	}
	return ts, nil
}
