// Package oraql implements the paper's core contribution: the ORAQL
// "alias analysis" pass. The name is a misnomer by design — no analysis
// is performed. The pass sits at the end of the alias-analysis chain
// and answers the queries no conservative analysis could resolve,
// according to a predetermined response sequence supplied by the
// probing driver: "1" means optimistic (no-alias), "0" means
// pessimistic (may-alias). Once the sequence is exhausted, all further
// unique queries are answered optimistically, which makes the empty
// sequence the fully optimistic compilation.
//
// A cache keyed on the unordered pointer pair — deliberately ignoring
// the location descriptions — serves repeated queries, both to shorten
// the probed sequence and to keep the optimistic answers internally
// consistent (paper Section IV-A).
package oraql

import (
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/oraql/go-oraql/internal/aa"
	"github.com/oraql/go-oraql/internal/ir"
)

// Seq is a response sequence: true answers a query optimistically
// (no-alias), false pessimistically (may-alias).
type Seq []bool

// ParseSeq parses the -opt-aa-seq command-line syntax: space-separated
// "1"/"0" characters. The empty string is the empty (fully optimistic)
// sequence. An argument of the form @<filename> loads the sequence from
// a file, mirroring LLVM's response-file support for sequences longer
// than the argument length limit.
func ParseSeq(s string) (Seq, error) {
	if strings.HasPrefix(s, "@") {
		data, err := os.ReadFile(s[1:])
		if err != nil {
			return nil, fmt.Errorf("oraql: sequence file: %w", err)
		}
		s = string(data)
	}
	var seq Seq
	for _, f := range strings.Fields(s) {
		switch f {
		case "1":
			seq = append(seq, true)
		case "0":
			seq = append(seq, false)
		default:
			return nil, fmt.Errorf("oraql: invalid sequence element %q (want 0 or 1)", f)
		}
	}
	return seq, nil
}

// String renders the sequence in -opt-aa-seq syntax.
func (s Seq) String() string {
	parts := make([]string, len(s))
	for i, b := range s {
		if b {
			parts[i] = "1"
		} else {
			parts[i] = "0"
		}
	}
	return strings.Join(parts, " ")
}

// Clone returns a copy of the sequence.
func (s Seq) Clone() Seq { return append(Seq(nil), s...) }

// CountPessimistic returns the number of 0s in the sequence.
func (s Seq) CountPessimistic() int {
	n := 0
	for _, b := range s {
		if !b {
			n++
		}
	}
	return n
}

// DumpFlags selects which queries the pass prints, mirroring the
// -opt-aa-dump-{first,cached} x -opt-aa-dump-{optimistic,pessimistic}
// command-line flags. At least one of First/Cached and one of
// Optimistic/Pessimistic must be set for any output to appear.
type DumpFlags struct {
	First       bool
	Cached      bool
	Optimistic  bool
	Pessimistic bool
}

// Any reports whether the flags can produce output at all.
func (d DumpFlags) Any() bool {
	return (d.First || d.Cached) && (d.Optimistic || d.Pessimistic)
}

// Mode selects how the responder participates in the analysis chain.
type Mode int

const (
	// ModeOptimistic is the paper's main design: the pass sits last in
	// the chain and answers leftover queries no-alias ("1") or
	// may-alias ("0").
	ModeOptimistic Mode = iota
	// ModeBlocking is the Section VIII future-work design: the pass is
	// consulted *first* and a "0" suppresses the whole analysis chain
	// for that query (forcing may-alias), which measures how much the
	// existing conservative analyses actually contribute. "1" lets the
	// chain answer normally. More pessimism is always sound, so no
	// verification bisection is needed in this mode.
	ModeBlocking
	// ModeOptimisticMust is Section VIII's other open question: answer
	// leftover queries *must-alias* instead of no-alias, to see whether
	// optimistic must-alias responses unlock additional forwarding
	// (store-to-load forwarding keys on must-alias). Wrong answers
	// break programs exactly as in the no-alias mode, so the same
	// probing workflow applies.
	ModeOptimisticMust
)

// Options configures the pass.
type Options struct {
	// Mode selects optimistic (default) or blocking operation.
	Mode Mode
	// Seq is the response sequence (-opt-aa-seq).
	Seq Seq
	// Target restricts the pass to modules whose target string contains
	// this substring (-opt-aa-target); empty matches everything. Used
	// for offload compilations where only the device part is probed.
	Target string
	// Funcs restricts the pass to queries issued while compiling the
	// named functions; empty means all. The driver fills this from the
	// benchmark configuration ("the exact files or functions to which
	// optimistic probing is applied").
	Funcs []string
	// Files restricts by source file of either query pointer.
	Files []string
	// Dump controls debug output; Out receives it (default os.Stderr).
	Dump DumpFlags
	Out  io.Writer
}

// QueryRecord describes one unique (non-cached) query the pass
// answered; the report tooling renders these like the paper's Fig. 3.
type QueryRecord struct {
	Index      int  // position in the unique-query stream
	Optimistic bool // response given
	A, B       aa.MemLoc
	Pass       string // requesting pass at first issue
	Func       string // enclosing function
	CacheHits  int    // times later served from cache
}

// LocDescriptions renders both query locations the way the Fig. 3
// dump does; the difftest triage reports embed these strings.
func (r *QueryRecord) LocDescriptions() (a, b string) {
	return describeLoc(r.A), describeLoc(r.B)
}

// SrcLocs returns the source locations of the two query pointers
// (either may be invalid).
func (r *QueryRecord) SrcLocs() (a, b ir.SrcLoc) {
	return srcOf(r.A), srcOf(r.B)
}

// Stats are the counters the pass reports through the statistics
// mechanism; the driver reads Unique to size bisection sequences.
type Stats struct {
	UniqueOptimistic  int
	CachedOptimistic  int
	UniquePessimistic int
	CachedPessimistic int
}

// Unique is the number of unique (non-cached) queries answered.
func (s Stats) Unique() int { return s.UniqueOptimistic + s.UniquePessimistic }

// Cached is the number of queries served from the pair cache.
func (s Stats) Cached() int { return s.CachedOptimistic + s.CachedPessimistic }

// Pass is the ORAQL responder. It implements aa.Analysis and must be
// appended as the last element of the analysis chain so that it only
// sees otherwise-unanswerable queries.
type Pass struct {
	opts    Options
	module  *ir.Module
	active  bool
	cursor  int
	cache   map[[2]int64]*QueryRecord
	records []*QueryRecord
	stats   Stats
}

// New creates a pass instance for one compilation of m.
func New(m *ir.Module, opts Options) *Pass {
	if opts.Out == nil {
		opts.Out = os.Stderr
	}
	p := &Pass{opts: opts, module: m, cache: map[[2]int64]*QueryRecord{}}
	p.active = opts.Target == "" || strings.Contains(m.Target, opts.Target)
	return p
}

// Name implements aa.Analysis.
func (*Pass) Name() string { return "oraql" }

// UncacheableAlias implements aa.Uncacheable: the responder's answers
// consume the response sequence and are tracked by its own pair cache,
// so the manager's memoized query cache must forward every repeated
// query instead of replaying a stored verdict — otherwise the cached
// optimistic/pessimistic counters (Fig. 4) would undercount.
func (*Pass) UncacheableAlias() bool { return true }

// Stats returns the pass counters.
func (p *Pass) Stats() Stats { return p.stats }

// Records returns the unique queries in issue order.
func (p *Pass) Records() []*QueryRecord { return p.records }

// Alias implements aa.Analysis (ModeOptimistic / ModeOptimisticMust):
// answer from cache, else consume the next sequence element (optimistic
// once the sequence is exhausted).
func (p *Pass) Alias(a, b aa.MemLoc, q *aa.QueryCtx) aa.Result {
	if p.opts.Mode == ModeBlocking || !p.active || !p.inScope(a, b, q) {
		return aa.MayAlias
	}
	if !p.decide(a, b, q, true) {
		return aa.MayAlias
	}
	if p.opts.Mode == ModeOptimisticMust {
		return aa.MustAlias
	}
	return aa.NoAlias
}

// Block implements aa.Blocker (ModeBlocking): a "0" in the sequence
// suppresses the analysis chain for that query; past the sequence end
// everything is blocked, so the empty sequence disables the chain
// entirely (the fully pessimistic compilation).
func (p *Pass) Block(a, b aa.MemLoc, q *aa.QueryCtx) bool {
	if p.opts.Mode != ModeBlocking || !p.active || !p.inScope(a, b, q) {
		return false
	}
	// Record semantics: Optimistic == "chain allowed".
	return !p.decide(a, b, q, false)
}

// decide serves the query from the pair cache or consumes the next
// sequence element; pastEnd is the answer once the sequence runs out.
func (p *Pass) decide(a, b aa.MemLoc, q *aa.QueryCtx, pastEnd bool) bool {
	key := pairKey(a.Ptr, b.Ptr)
	if rec, ok := p.cache[key]; ok {
		rec.CacheHits++
		if rec.Optimistic {
			p.stats.CachedOptimistic++
		} else {
			p.stats.CachedPessimistic++
		}
		p.dump(rec, true)
		return rec.Optimistic
	}
	optimistic := pastEnd
	if p.cursor < len(p.opts.Seq) {
		optimistic = p.opts.Seq[p.cursor]
	}
	rec := &QueryRecord{
		Index:      p.cursor,
		Optimistic: optimistic,
		A:          a,
		B:          b,
	}
	if q != nil {
		rec.Pass = q.Pass
		if q.Func != nil {
			rec.Func = q.Func.Name
		}
	}
	p.cursor++
	p.cache[key] = rec
	p.records = append(p.records, rec)
	if optimistic {
		p.stats.UniqueOptimistic++
	} else {
		p.stats.UniquePessimistic++
	}
	p.dump(rec, false)
	return optimistic
}

// inScope applies the function/file filters from the configuration.
func (p *Pass) inScope(a, b aa.MemLoc, q *aa.QueryCtx) bool {
	if len(p.opts.Funcs) > 0 {
		if q == nil || q.Func == nil || !contains(p.opts.Funcs, q.Func.Name) {
			return false
		}
	}
	if len(p.opts.Files) > 0 {
		if !p.fileMatch(a) && !p.fileMatch(b) {
			return false
		}
	}
	return true
}

func (p *Pass) fileMatch(l aa.MemLoc) bool {
	if l.Instr == nil || !l.Instr.Loc.IsValid() {
		return false
	}
	return contains(p.opts.Files, l.Instr.Loc.File)
}

func contains(list []string, s string) bool {
	for _, x := range list {
		if x == s {
			return true
		}
	}
	return false
}

// pairKey builds the cache key: the unordered pointer pair, with
// location descriptions deliberately dropped (paper Section IV-A).
func pairKey(a, b ir.Value) [2]int64 {
	x, y := a.VID(), b.VID()
	if x > y {
		x, y = y, x
	}
	return [2]int64{x, y}
}

// dump prints a query in the format of the paper's Fig. 3.
func (p *Pass) dump(rec *QueryRecord, cached bool) {
	d := p.opts.Dump
	if !d.Any() {
		return
	}
	if cached && !d.Cached || !cached && !d.First {
		return
	}
	if rec.Optimistic && !d.Optimistic || !rec.Optimistic && !d.Pessimistic {
		return
	}
	kind := "Optimistic"
	if !rec.Optimistic {
		kind = "Pessimistic"
	}
	c := 0
	if cached {
		c = 1
	}
	fmt.Fprintf(p.opts.Out, "[ORAQL] %s query [Cached %d]\n", kind, c)
	fmt.Fprintf(p.opts.Out, "[ORAQL] - %s\n", describeLoc(rec.A))
	fmt.Fprintf(p.opts.Out, "[ORAQL] - %s\n", describeLoc(rec.B))
	if rec.Func != "" {
		fmt.Fprintf(p.opts.Out, "[ORAQL] Scope: %s\n", rec.Func)
	}
	if la, lb := srcOf(rec.A), srcOf(rec.B); la.IsValid() || lb.IsValid() {
		fmt.Fprintf(p.opts.Out, "[ORAQL] LocA: %s\n", la)
		fmt.Fprintf(p.opts.Out, "[ORAQL] LocB: %s\n", lb)
	}
}

func describeLoc(l aa.MemLoc) string {
	var def string
	if in, ok := l.Ptr.(*ir.Instr); ok {
		def = in.String()
	} else {
		def = fmt.Sprintf("%s %s", l.Ptr.Type(), l.Ptr.Ident())
	}
	return fmt.Sprintf("%s [%s]", def, l.Size)
}

func srcOf(l aa.MemLoc) ir.SrcLoc {
	if in, ok := l.Ptr.(*ir.Instr); ok && in.Loc.IsValid() {
		return in.Loc
	}
	if l.Instr != nil {
		return l.Instr.Loc
	}
	return ir.SrcLoc{}
}
