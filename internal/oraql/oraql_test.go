package oraql

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"github.com/oraql/go-oraql/internal/aa"
	"github.com/oraql/go-oraql/internal/ir"
)

func TestParseSeq(t *testing.T) {
	seq, err := ParseSeq("1 0 1 1 0")
	if err != nil {
		t.Fatal(err)
	}
	want := Seq{true, false, true, true, false}
	if len(seq) != len(want) {
		t.Fatalf("len = %d", len(seq))
	}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("seq[%d] = %v", i, seq[i])
		}
	}
	if _, err := ParseSeq("1 2"); err == nil {
		t.Error("invalid element must error")
	}
	empty, err := ParseSeq("")
	if err != nil || len(empty) != 0 {
		t.Error("empty sequence must parse to nil")
	}
}

func TestParseSeqResponseFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "seq.txt")
	if err := os.WriteFile(path, []byte("0 1 0"), 0o644); err != nil {
		t.Fatal(err)
	}
	seq, err := ParseSeq("@" + path)
	if err != nil {
		t.Fatal(err)
	}
	if seq.String() != "0 1 0" {
		t.Errorf("got %q", seq.String())
	}
	if _, err := ParseSeq("@" + filepath.Join(dir, "missing")); err == nil {
		t.Error("missing file must error")
	}
}

// Property: String/ParseSeq round-trip.
func TestSeqRoundTripProperty(t *testing.T) {
	f := func(bits []bool) bool {
		s := Seq(bits)
		back, err := ParseSeq(s.String())
		if err != nil || len(back) != len(s) {
			return false
		}
		for i := range s {
			if back[i] != s[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSeqCountPessimistic(t *testing.T) {
	s := Seq{true, false, false, true}
	if s.CountPessimistic() != 2 {
		t.Error("CountPessimistic")
	}
	if s.Clone().CountPessimistic() != 2 {
		t.Error("Clone must preserve contents")
	}
}

// queryEnv builds a module with pointer values to query.
type queryEnv struct {
	m    *ir.Module
	fn   *ir.Func
	ptrs []ir.Value
}

func newQueryEnv(t testing.TB, n int) *queryEnv {
	m := ir.NewModule("t")
	fn, b := ir.NewFunc(m, "f", ir.Void)
	env := &queryEnv{m: m, fn: fn}
	for i := 0; i < n; i++ {
		env.ptrs = append(env.ptrs, b.Alloca(8, "x"))
	}
	b.Ret(nil)
	return env
}

func (e *queryEnv) loc(i int) aa.MemLoc {
	return aa.MemLoc{Ptr: e.ptrs[i], Size: aa.PreciseSize(8)}
}

func (e *queryEnv) locSized(i int, sz int64) aa.MemLoc {
	return aa.MemLoc{Ptr: e.ptrs[i], Size: aa.PreciseSize(sz)}
}

func TestSequenceConsumption(t *testing.T) {
	env := newQueryEnv(t, 3)
	p := New(env.m, Options{Seq: Seq{false, true}})
	q := &aa.QueryCtx{Pass: "GVN", Func: env.fn}
	if r := p.Alias(env.loc(0), env.loc(1), q); r != aa.MayAlias {
		t.Error("first query must follow seq[0]=0 (pessimistic)")
	}
	if r := p.Alias(env.loc(0), env.loc(2), q); r != aa.NoAlias {
		t.Error("second query must follow seq[1]=1")
	}
	// Sequence exhausted: optimistic.
	if r := p.Alias(env.loc(1), env.loc(2), q); r != aa.NoAlias {
		t.Error("beyond-sequence queries must be optimistic")
	}
	s := p.Stats()
	if s.UniqueOptimistic != 2 || s.UniquePessimistic != 1 || s.Cached() != 0 {
		t.Errorf("stats: %+v", s)
	}
}

func TestCacheIgnoresLocationSizeAndOrder(t *testing.T) {
	env := newQueryEnv(t, 2)
	p := New(env.m, Options{Seq: Seq{false}})
	if r := p.Alias(env.locSized(0, 8), env.locSized(1, 8), nil); r != aa.MayAlias {
		t.Fatal("first answer should be pessimistic")
	}
	// Same pair, swapped order and different sizes: served from cache.
	if r := p.Alias(env.locSized(1, 16), env.locSized(0, 4), nil); r != aa.MayAlias {
		t.Error("cached answer must be consistent regardless of sizes/order")
	}
	s := p.Stats()
	if s.Unique() != 1 || s.CachedPessimistic != 1 {
		t.Errorf("stats: %+v", s)
	}
	if p.Records()[0].CacheHits != 1 {
		t.Error("record must count cache hits")
	}
}

func TestEmptySequenceIsFullyOptimistic(t *testing.T) {
	env := newQueryEnv(t, 4)
	p := New(env.m, Options{})
	for i := 0; i < 3; i++ {
		if r := p.Alias(env.loc(i), env.loc(i+1), nil); r != aa.NoAlias {
			t.Fatal("empty sequence must answer everything optimistically")
		}
	}
	if p.Stats().UniquePessimistic != 0 {
		t.Error("no pessimistic answers expected")
	}
}

func TestTargetFilter(t *testing.T) {
	env := newQueryEnv(t, 2)
	env.m.Target = "x86_64"
	p := New(env.m, Options{Target: "gpu"})
	if r := p.Alias(env.loc(0), env.loc(1), nil); r != aa.MayAlias {
		t.Error("pass must stay inactive for non-matching targets")
	}
	if p.Stats().Unique() != 0 {
		t.Error("inactive pass must not consume the sequence")
	}
	env.m.Target = "gpu-sim"
	p2 := New(env.m, Options{Target: "gpu"})
	if r := p2.Alias(env.loc(0), env.loc(1), nil); r != aa.NoAlias {
		t.Error("pass must be active for matching targets")
	}
}

func TestFuncFilter(t *testing.T) {
	env := newQueryEnv(t, 2)
	p := New(env.m, Options{Funcs: []string{"other"}})
	q := &aa.QueryCtx{Pass: "GVN", Func: env.fn}
	if r := p.Alias(env.loc(0), env.loc(1), q); r != aa.MayAlias {
		t.Error("queries outside the function filter must stay may-alias")
	}
	p2 := New(env.m, Options{Funcs: []string{"f"}})
	if r := p2.Alias(env.loc(0), env.loc(1), q); r != aa.NoAlias {
		t.Error("queries inside the function filter must be answered")
	}
}

func TestDumpOutputFormat(t *testing.T) {
	env := newQueryEnv(t, 2)
	var buf bytes.Buffer
	p := New(env.m, Options{
		Seq:  Seq{false},
		Dump: DumpFlags{First: true, Cached: true, Pessimistic: true},
		Out:  &buf,
	})
	q := &aa.QueryCtx{Pass: "Global Value Numbering", Func: env.fn}
	p.Alias(env.loc(0), env.loc(1), q)
	p.Alias(env.loc(0), env.loc(1), q) // cached
	out := buf.String()
	for _, want := range []string{
		"[ORAQL] Pessimistic query [Cached 0]",
		"[ORAQL] Pessimistic query [Cached 1]",
		"LocationSize::precise(8)",
		"[ORAQL] Scope: f",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q in:\n%s", want, out)
		}
	}
}

func TestDumpFlagsGating(t *testing.T) {
	if (DumpFlags{First: true}).Any() {
		t.Error("need one flag of each category")
	}
	if !(DumpFlags{First: true, Optimistic: true}).Any() {
		t.Error("first+optimistic should enable output")
	}
	env := newQueryEnv(t, 2)
	var buf bytes.Buffer
	p := New(env.m, Options{
		Dump: DumpFlags{First: true, Pessimistic: true}, // only pessimistic
		Out:  &buf,
	})
	p.Alias(env.loc(0), env.loc(1), nil) // optimistic answer
	if buf.Len() != 0 {
		t.Errorf("optimistic query must not be dumped: %q", buf.String())
	}
}

func TestRecordsCarryPassAttribution(t *testing.T) {
	env := newQueryEnv(t, 2)
	p := New(env.m, Options{})
	p.Alias(env.loc(0), env.loc(1), &aa.QueryCtx{Pass: "Early CSE", Func: env.fn})
	recs := p.Records()
	if len(recs) != 1 || recs[0].Pass != "Early CSE" || recs[0].Func != "f" {
		t.Errorf("records: %+v", recs)
	}
}

// Property: for any sequence, the number of unique answers equals
// min(#unique pairs, ...) and pessimistic counts match the consumed
// prefix's zeros.
func TestSequenceAccountingProperty(t *testing.T) {
	f := func(bits []bool, nPairs uint8) bool {
		n := int(nPairs%10) + 1
		env := newQueryEnv(t, n+1)
		p := New(env.m, Options{Seq: Seq(bits)})
		for i := 0; i < n; i++ {
			p.Alias(env.loc(i), env.loc(i+1), nil)
		}
		s := p.Stats()
		if s.Unique() != n {
			return false
		}
		wantPess := 0
		for i := 0; i < n && i < len(bits); i++ {
			if !bits[i] {
				wantPess++
			}
		}
		return s.UniquePessimistic == wantPess
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBlockingModeSuppressesChain(t *testing.T) {
	env := newQueryEnv(t, 3)
	// Blocking with the empty sequence blocks every query.
	p := New(env.m, Options{Mode: ModeBlocking})
	if !p.Block(env.loc(0), env.loc(1), nil) {
		t.Error("empty blocking sequence must block everything")
	}
	// A "1" lets the chain answer; cache keeps it consistent.
	p2 := New(env.m, Options{Mode: ModeBlocking, Seq: Seq{true, false}})
	if p2.Block(env.loc(0), env.loc(1), nil) {
		t.Error("seq[0]=1 must allow the chain")
	}
	if !p2.Block(env.loc(1), env.loc(2), nil) {
		t.Error("seq[1]=0 must block")
	}
	if p2.Block(env.loc(1), env.loc(0), nil) {
		t.Error("cached pair must stay allowed")
	}
	// The two modes are mutually exclusive per instance.
	if r := p2.Alias(env.loc(0), env.loc(2), nil); r != aa.MayAlias {
		t.Error("a blocking-mode pass must not answer Alias queries")
	}
}
