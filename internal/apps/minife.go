package apps

import "github.com/oraql/go-oraql/internal/minic"

// MiniFE proxy: implicit unstructured finite elements — element
// stiffness assembly into a CSR matrix followed by CG iterations
// (SpMV, dot products, axpy). The assembly writes each element's 4x4
// stiffness block as four groups of four consecutive stores, the SLP
// vectorizer's food once ORAQL disambiguates the node-coordinate loads
// from the matrix stores (the paper's "+33% vector instructions" row).
// The pessimistic set comes from the diagonal-pointer shortcut: diagA
// points into the values array, and the Jacobi preconditioner re-reads
// values[...] around stores through diagA that genuinely hit the same
// entries.
var minifeSource = `
// miniFE proxy: FE assembly + CG solve (openmp-opt variant).
int NELEMS = 24;
int NROWS = 25;
int NNZ = 100;
int CGITERS = 8;

void assemble(double* A, int* rowptr, double* coords, int nelems) {
	parallel for (e = 0; e < nelems; e++) {
		double* blk = A + e * 4;
		double* c = coords + e * 4;
		double h = c[0] * 0.5 + 1.0;
		blk[0] = c[0] * h + 1.5;
		blk[1] = c[1] * h + 1.5;
		blk[2] = c[2] * h + 1.5;
		blk[3] = c[3] * h + 1.5;
	}
}

// Jacobi setup: diagA points one entry into A (the diagonal shortcut
// passed as a separate pointer), so diagA[r*4] and A[r*4+1] are the
// same entry — the genuine hazard of this benchmark.
void setup_precond(double* A, double* diagA, double* dinv, int nrows) {
	for (int r = 0; r < nrows - 1; r++) {
		double a0 = A[r * 4 + 1];
		diagA[r * 4] = a0 * 0.5 + 1.0;
		double a1 = A[r * 4 + 1];
		dinv[r] = 1.0 / (a1 + 1.0);
	}
	dinv[nrows - 1] = 1.0;
}

void spmv(double* y, double* A, int* rowptr, int* cols, double* x, int nrows) {
	parallel for (r = 0; r < nrows; r++) {
		double sum = 0.0;
		int b = rowptr[r];
		int e2 = rowptr[r + 1];
		for (int k = b; k < e2; k++) {
			sum = sum + A[k] * x[cols[k]];
		}
		y[r] = sum;
	}
}

double dot(double* a, double* b, int n) {
	double s = 0.0;
	for (int i = 0; i < n; i++) {
		s = s + a[i] * b[i];
	}
	return s;
}

void axpy(double* y, double* x, double alpha, int n) {
	for (int i = 0; i < n; i++) {
		y[i] = y[i] + x[i] * alpha;
	}
}

int main() {
	int t0 = clock();
	double* A = new double[NNZ];
	int* rowptr = new int[NROWS + 1];
	int* cols = new int[NNZ];
	double* coords = new double[NELEMS * 4];
	double* x = new double[NROWS];
	double* b = new double[NROWS];
	double* r = new double[NROWS];
	double* p = new double[NROWS];
	double* q = new double[NROWS];
	double* dinv = new double[NROWS];
	for (int i = 0; i < NROWS + 1; i++) {
		rowptr[i] = i * 4;
		if (rowptr[i] > NNZ) {
			rowptr[i] = NNZ;
		}
	}
	for (int k = 0; k < NNZ; k++) {
		cols[k] = (k / 4 + k % 4) % NROWS;
	}
	for (int e = 0; e < NELEMS * 4; e++) {
		coords[e] = (double)e * 0.0625;
	}
	for (int i = 0; i < NROWS; i++) {
		x[i] = 0.0;
		b[i] = 1.0 + (double)(i % 3);
	}
	assemble(A, rowptr, coords, NELEMS);
	setup_precond(A, A + 1, dinv, NROWS);
	for (int i = 0; i < NROWS; i++) {
		r[i] = b[i];
		p[i] = r[i] * dinv[i];
	}
	double rho = dot(r, r, NROWS);
	for (int it = 0; it < CGITERS; it++) {
		spmv(q, A, rowptr, cols, p, NROWS);
		double alpha = rho / (dot(p, q, NROWS) + 1.0);
		axpy(x, p, alpha, NROWS);
		axpy(r, q, 0.0 - alpha, NROWS);
		double rho2 = dot(r, r, NROWS);
		double beta = rho2 / (rho + 0.000001);
		for (int i = 0; i < NROWS; i++) {
			p[i] = r[i] * dinv[i] + p[i] * beta;
		}
		rho = rho2;
	}
	print("miniFE proxy\n");
	print("final residual ", sqrt(rho), "\n");
	print("solution checksum ", checksum(x, NROWS), "\n");
	print("time ", clock() - t0, "\n");
	return 0;
}
`

// MiniFEOpenMP is the openmp-opt configuration of Fig. 4.
var MiniFEOpenMP = register(&Config{
	ID: "minife-openmp", Benchmark: "MiniFE", ModelLabel: "C++, OpenMP",
	SourceFiles: "main",
	Source:      minifeSource,
	SourceName:  "main.mc",
	Frontend:    minic.Options{Dialect: minic.DialectC, Model: minic.ModelOpenMP},
	Masks:       []string{timeMask},
	Paper: PaperRow{OptUnique: 6592, OptCached: 10852, PessUnique: 58, PessCached: 142,
		NoAliasOrig: 134567, NoAliasORAQL: 149912},
})
