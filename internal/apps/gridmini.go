package apps

import "github.com/oraql/go-oraql/internal/minic"

// GridMini proxy: the SU(3) lattice-QCD benchmark (Benchmark_su3) with
// OpenMP offloading. Complex 3x3 matrix-times-vector products run as
// device kernels over lattice sites; probing is restricted to the
// device compilation (-opt-aa-target). The paper found all 86 device
// queries answerable optimistically — and a 7% kernel SLOWDOWN: more
// static information let LICM/GVN extend live ranges, raising register
// pressure and lowering occupancy. The same effect arises here: the
// per-site kernel re-loads matrix pointers per row at baseline, while
// the optimistic build hoists all of them, which the report layer's
// occupancy model converts into kernel time.
var gridminiSource = `
// GridMini proxy: SU(3) matrix-vector products on a lattice (L=60).
int LVOL = 60;
int NSITES = 120;
int NITER = 4;

// Clover-term lookup table. Its address escapes through init_lut, so
// no conservative analysis can separate it from the output stores;
// only ORAQL lets LICM speculatively hoist its loads out of the rare
// reunitarization branch — longer live ranges, lower occupancy.
double su3_lut[8];

void init_lut(double* t) {
	for (int i = 0; i < 8; i++) {
		t[i] = 1.0 + (double)i * 0.03125;
	}
}

struct SU3Field {
	double* m_re;
	double* m_im;
	double* v_re;
	double* v_im;
	double* out_re;
	double* out_im;
};

int main() {
	int t0 = clock();
	SU3Field fld;
	fld.m_re = new double[NSITES * 9];
	fld.m_im = new double[NSITES * 9];
	fld.v_re = new double[NSITES * 3];
	fld.v_im = new double[NSITES * 3];
	fld.out_re = new double[NSITES * 3];
	fld.out_im = new double[NSITES * 3];
	init_lut(su3_lut);
	for (int i = 0; i < NSITES * 9; i++) {
		fld.m_re[i] = sin((double)i * 0.017) * 0.5;
		fld.m_im[i] = cos((double)i * 0.013) * 0.5;
	}
	for (int i = 0; i < NSITES * 3; i++) {
		fld.v_re[i] = 1.0 + (double)(i % 3) * 0.25;
		fld.v_im[i] = 0.125;
		fld.out_re[i] = 0.0;
		fld.out_im[i] = 0.0;
	}
	double* mre = fld.m_re;
	double* mim = fld.m_im;
	double* vre = fld.v_re;
	double* vim = fld.v_im;
	double* ore = fld.out_re;
	double* oim = fld.out_im;
	for (int it = 0; it < NITER; it++) {
		// su3_mult kernel: one lattice site per device thread. The
		// column loop is fully unrolled, as in Grid itself, so the six
		// b-vector loads are invariant across the row loop — hoisting
		// them (legal only with optimistic aliasing against the output
		// stores) extends six live ranges across the loop, the
		// register-pressure mechanism behind the paper's 7% slowdown.
		parallel for (s = 0; s < NSITES; s++) {
			// Phase A: the SU(3) product, fully unrolled (as in Grid).
			double b0re = vre[s * 3];
			double b0im = vim[s * 3];
			double b1re = vre[s * 3 + 1];
			double b1im = vim[s * 3 + 1];
			double b2re = vre[s * 3 + 2];
			double b2im = vim[s * 3 + 2];
			for (int r = 0; r < 3; r++) {
				double* arow_re = mre + s * 9 + r * 3;
				double* arow_im = mim + s * 9 + r * 3;
				double acc_re = arow_re[0] * b0re - arow_im[0] * b0im
					+ arow_re[1] * b1re - arow_im[1] * b1im
					+ arow_re[2] * b2re - arow_im[2] * b2im;
				double acc_im = arow_re[0] * b0im + arow_im[0] * b0re
					+ arow_re[1] * b1im + arow_im[1] * b1re
					+ arow_re[2] * b2im + arow_im[2] * b2re;
				ore[s * 3 + r] = acc_re;
				oim[s * 3 + r] = acc_im;
				// Rare reunitarization step (the clover correction).
				if (acc_re > 2.5) {
					double corr = su3_lut[0] * acc_re + su3_lut[1] * acc_im
						+ su3_lut[2] + su3_lut[3] * 0.5
						+ su3_lut[4] * 0.25 + su3_lut[5] * 0.125;
					ore[s * 3 + r] = acc_re / (corr + 1.0);
				}
			}
			// Phase B: determinant-like correction over the matrix
			// entries only (the register-pressure hot spot: many
			// simultaneously live matrix loads).
			double m00 = mre[s * 9];
			double m01 = mre[s * 9 + 1];
			double m02 = mre[s * 9 + 2];
			double m10 = mre[s * 9 + 3];
			double m11 = mre[s * 9 + 4];
			double m12 = mre[s * 9 + 5];
			double m20 = mre[s * 9 + 6];
			double m21 = mre[s * 9 + 7];
			double m22 = mre[s * 9 + 8];
			double n00 = mim[s * 9];
			double n11 = mim[s * 9 + 4];
			double n22 = mim[s * 9 + 8];
			double det = m00 * (m11 * m22 - m12 * m21)
				- m01 * (m10 * m22 - m12 * m20)
				+ m02 * (m10 * m21 - m11 * m20)
				+ n00 * n11 * n22;
			// Phase C: norm correction. The source re-loads the vector
			// entries; conservatively those stay fresh (short-lived)
			// loads, while optimistic aliasing lets CSE reuse the
			// phase-A values — which then stay live across phase B's
			// pressure peak, lowering occupancy (the paper's GridMini
			// kernel slowdown mechanism).
			double c0re = vre[s * 3];
			double c0im = vim[s * 3];
			double c1re = vre[s * 3 + 1];
			double c1im = vim[s * 3 + 1];
			double c2re = vre[s * 3 + 2];
			double c2im = vim[s * 3 + 2];
			double nrm = c0re * c0re + c0im * c0im + c1re * c1re
				+ c1im * c1im + c2re * c2re + c2im * c2im + det * 0.001 + 1.0;
			ore[s * 3] = ore[s * 3] / nrm;
			ore[s * 3 + 1] = ore[s * 3 + 1] / nrm;
			ore[s * 3 + 2] = ore[s * 3 + 2] / nrm;
		}
		// accumulate kernel: fold the product back into the vector.
		parallel for (s = 0; s < NSITES; s++) {
			for (int r = 0; r < 3; r++) {
				vre[s * 3 + r] = vre[s * 3 + r] * 0.5 + ore[s * 3 + r] * 0.5;
				vim[s * 3 + r] = vim[s * 3 + r] * 0.5 + oim[s * 3 + r] * 0.5;
			}
		}
	}
	print("GridMini proxy (su3 L=", LVOL, ")\n");
	print("vector checksum ", checksum(fld.v_re, NSITES * 3), "\n");
	print("output checksum ", checksum(fld.out_re, NSITES * 3), "\n");
	print("time ", clock() - t0, "\n");
	return 0;
}
`

// GridMiniOffload is the C++/OpenMP-offload row of Fig. 4: device-only
// probing, fully optimistic, with the kernel-time regression studied
// in Section V-C.
var GridMiniOffload = register(&Config{
	ID: "gridmini-offload", Benchmark: "GridMini", ModelLabel: "C++, OpenMP Offload",
	SourceFiles:           "Benchmark_su3",
	Source:                gridminiSource,
	SourceName:            "Benchmark_su3.mc",
	Frontend:              minic.Options{Dialect: minic.DialectC, Model: minic.ModelOffload},
	ORAQLTarget:           "gpu",
	Masks:                 []string{timeMask},
	ExpectFullyOptimistic: true,
	Paper: PaperRow{OptUnique: 86, OptCached: 6809, PessUnique: 0, PessCached: 0,
		NoAliasOrig: 8969, NoAliasORAQL: 14435},
})
