package apps

import (
	"fmt"
	"strings"

	"github.com/oraql/go-oraql/internal/minic"
)

// XSBench proxy: the macroscopic cross-section lookup kernel of OpenMC.
// Particles repeatedly pick a material (pick_mat), locate an energy in
// a unionized grid (binary search), and accumulate macroscopic cross
// sections. The pessimistic queries live in pick_mat's constant-size
// dist[12] cumulative-distribution array, whose in-place prefix
// updates and re-reads genuinely alias — the same queries appear in
// all three configurations, exactly as the paper reports.
func xsbenchSource(par bool, thrust bool) string {
	lookupLoop := "for (int p = 0; p < NLOOKUPS; p++)"
	if par {
		lookupLoop = "parallel for (p = 0; p < NLOOKUPS; p++)"
	}
	src := `
// XSBench proxy: unionized-grid macroscopic cross-section lookups.
int NMAT = 12;
int NGRID = 256;
int NNUC = 6;
int NLOOKUPS = 160;

double seedstate[2] = { 0.5, 0.0 };

double frand(double* st, int p) {
	double x = st[0] + (double)p * 0.6180339887;
	x = x - (double)((int)x);
	return x;
}

// pick_mat: sample the material from a fixed cumulative distribution.
// The dist array is updated in place (normalization sweep) and re-read
// through the cursor pointer d, which points into dist itself.
int pick_mat(double* st, int p) {
	double dist[12];
	dist[0] = 0.14;
	dist[1] = 0.05;
	dist[2] = 0.31;
	dist[3] = 0.07;
	dist[4] = 0.13;
	dist[5] = 0.08;
	dist[6] = 0.05;
	dist[7] = 0.04;
	dist[8] = 0.03;
	dist[9] = 0.04;
	dist[10] = 0.03;
	dist[11] = 0.03;
	double* d = dist + p % 4;
	double t0 = dist[3];
	d[0] = t0 * 0.5 + d[0];
	double t1 = dist[3];
	double t2 = dist[7];
	d[4] = t2 * 0.25 + d[4];
	double t3 = dist[7];
	double roll = frand(st, p) * (1.0 + (t1 - t0) + (t3 - t2));
	double acc = 0.0;
	int mat = 0;
	for (int j = 0; j < NMAT; j++) {
		acc = acc + dist[j];
		if (roll < acc) {
			mat = j;
			break;
		}
	}
	return mat;
}

int grid_search(double* egrid, int n, double e) {
	int lo = 0;
	int hi = n - 1;
	while (lo < hi) {
		int mid = (lo + hi) / 2;
		if (egrid[mid] < e) {
			lo = mid + 1;
		} else {
			hi = mid;
		}
	}
	return lo;
}

void calculate_macro_xs(double* egrid, double* nucgrid, double* xs, int idx, int mat, double e) {
	for (int n = 0; n < NNUC; n++) {
		double* row = nucgrid + (idx * NNUC + n) * 5;
		double f = e - egrid[idx] + 1.0;
		xs[0] = xs[0] + row[0] * f;
		xs[1] = xs[1] + row[1] * f;
		xs[2] = xs[2] + row[2] * f;
		xs[3] = xs[3] + row[3] * f;
		xs[4] = xs[4] + row[4] * f + (double)mat * 0.001;
	}
}

int main() {
	int t0 = clock();
	double* egrid = new double[NGRID];
	double* nucgrid = new double[NGRID * NNUC * 5];
	double* vhash = new double[NLOOKUPS];
	for (int i = 0; i < NGRID; i++) {
		egrid[i] = (double)i / (double)NGRID;
	}
	for (int i = 0; i < NGRID * NNUC * 5; i++) {
		nucgrid[i] = sin((double)i * 0.013) * 0.5 + 1.0;
	}
	%LOOKUP_LOOP% {
		double xs[5];
		xs[0] = 0.0;
		xs[1] = 0.0;
		xs[2] = 0.0;
		xs[3] = 0.0;
		xs[4] = 0.0;
		int mat = pick_mat(seedstate, p);
		double e = frand(seedstate, p * 7 + 1);
		int idx = grid_search(egrid, NGRID, e);
		calculate_macro_xs(egrid, nucgrid, xs, idx, mat, e);
		vhash[p] = xs[0] + xs[1] * 2.0 + xs[2] * 3.0 + xs[3] * 4.0 + xs[4] * 5.0;
	}
	double chk = checksum(vhash, NLOOKUPS);
	print("XSBench proxy\n");
	print("verification checksum ", chk, "\n");
	print("time ", clock() - t0, "\n");
	return 0;
}
`
	src = strings.Replace(src, "%LOOKUP_LOOP%", lookupLoop, 1)
	if thrust {
		// The Thrust-flavoured port runs lookups as device kernels with
		// device_vector-style boxed arrays; structurally this is the
		// Views+offload lowering.
		src = strings.Replace(src, "// XSBench proxy",
			"// XSBench proxy (thrust device_vector port)", 1)
	}
	return src
}

var xsMasks = []string{timeMask}

func xsPaper(opt, optC, noOrig, noORAQL int) PaperRow {
	return PaperRow{OptUnique: opt, OptCached: optC, PessUnique: 11, PessCached: 1,
		NoAliasOrig: noOrig, NoAliasORAQL: noORAQL}
}

// XSBenchSeq is the C row.
var XSBenchSeq = register(&Config{
	ID: "xsbench-seq", Benchmark: "XSBench", ModelLabel: "C",
	SourceFiles: "Simulation",
	Source:      xsbenchSource(false, false),
	SourceName:  "Simulation.mc",
	Frontend:    minic.Options{Dialect: minic.DialectC, Model: minic.ModelSeq},
	Masks:       xsMasks,
	Paper:       xsPaper(415, 168, 9954, 10522),
})

// XSBenchOpenMP is the C/OpenMP row: the same pessimistic queries, more
// total queries from the outlining indirection.
var XSBenchOpenMP = register(&Config{
	ID: "xsbench-openmp", Benchmark: "XSBench", ModelLabel: "C, OpenMP",
	SourceFiles: "Simulation",
	Source:      xsbenchSource(true, false),
	SourceName:  "Simulation.mc",
	Frontend:    minic.Options{Dialect: minic.DialectC, Model: minic.ModelOpenMP},
	Masks:       xsMasks,
	Paper:       xsPaper(546, 1294, 12131, 13480),
})

// XSBenchCUDA is the CUDA/Thrust row: offload with device_vector-style
// boxed arrays (large query increase from the library indirection).
var XSBenchCUDA = register(&Config{
	ID: "xsbench-cuda", Benchmark: "XSBench", ModelLabel: "CUDA, Thrust",
	SourceFiles: "Simulation",
	Source:      xsbenchSource(true, true),
	SourceName:  "Simulation.mc",
	Frontend:    minic.Options{Dialect: minic.DialectC, Model: minic.ModelOffload, Views: true},
	Masks:       xsMasks,
	Paper:       xsPaper(3731, 16734, 33312, 53942),
})

var _ = fmt.Sprintf
