package apps

import (
	"strings"

	"github.com/oraql/go-oraql/internal/minic"
)

// LULESH proxy: Lagrangian shock hydrodynamics on a 1-D staggered mesh.
// All field arrays are views into one arena allocation at offsets read
// from a table at runtime — the paper's LULESH cannot be compiled fully
// optimistically, and neither can this one: several views genuinely
// overlap (the "energy scratch" region shares storage with the tail of
// the pressure region), so a locally maximal sequence must keep those
// queries pessimistic. The MPI variant adds halo staging buffers that
// are themselves views into the arena, which multiplies the dangerous
// pairs, mirroring the paper's 99-vs-35-vs-15 ordering.
func luleshSource(par, mpi bool) string {
	forceLoop := "for (int i = 1; i < NELEM - 1; i++)"
	posLoop := "for (int i = 0; i < NELEM; i++)"
	if par {
		forceLoop = "parallel for (i = 1; i < NELEM - 1; i++)"
		posLoop = "parallel for (i = 0; i < NELEM; i++)"
	}
	halo := ""
	haloCall := ""
	if mpi {
		halo = `
// Halo exchange: the staging buffers are views into the arena tail,
// and the unpack loop re-reads elements the pack loop updated.
void exchange_halo(double* arena, int* offs, int nelem) {
	double* xd = arena + offs[0];
	double* send = arena + offs[6];
	double* recv = arena + offs[7];
	int rank = mpi_rank();
	int size = mpi_size();
	int right = (rank + 1) % size;
	int left = (rank + size - 1) % size;
	for (int k = 0; k < 4; k++) {
		double t0 = xd[nelem - 4 + k];
		send[k] = t0 * 0.5 + 1.0;
		double t1 = xd[nelem - 4 + k];
		send[k] = send[k] + t1 * 0.25;
	}
	sendrecv(send, recv, 32, right, left);
	for (int k = 0; k < 4; k++) {
		double r0 = recv[k];
		xd[k] = xd[k] * 0.75 + r0 * 0.25;
	}
}
`
		haloCall = `
		exchange_halo(arena, offs, NELEM);`
	}
	src := `
// LULESH proxy: staggered-grid shock hydro, arena-based field views.
int NELEM = 64;
int NSTEPS = 12;

// View offsets into the arena. Two of them encode genuine overlaps on
// this mesh size: the scratch view (offs[5]=236) coincides with
// p[i+44], and the MPI send staging view (offs[6]=60) coincides with
// the x ghost layer.
int offs[8] = { 0, 64, 128, 192, 256, 236, 60, 352 };

void init_fields(double* arena, int* offs, int nelem) {
	double* x = arena + offs[0];
	double* v = arena + offs[1];
	double* e = arena + offs[2];
	double* p = arena + offs[3];
	double* q = arena + offs[4];
	for (int i = 0; i < nelem; i++) {
		x[i] = (double)i * 1.125;
		v[i] = sin((double)i * 0.1) * 0.01;
		e[i] = 1.0 + (double)(i % 7) * 0.125;
		p[i] = 0.5;
		q[i] = 0.0;
	}
}

// CalcForceForElems: pressure gradient into the scratch view. The
// scratch region (offs[5]) starts inside the tail of the pressure
// region (offs[3]..offs[3]+nelem), so scr[i] and p[i+k] truly alias on
// this mesh size.
void calc_force(double* arena, int* offs, int nelem) {
	double* e = arena + offs[2];
	double* p = arena + offs[3];
	double* scr = arena + offs[5];
	%FORCE_LOOP% {
		double p0 = p[i + 44];
		scr[i] = p0 * 0.5 + e[i] * 0.125;
		double p1 = p[i + 44];
		scr[i] = scr[i] + (p1 - p0) * 2.0 + p[i - 1] * 0.0625;
	}
}

void calc_velocity(double* arena, int* offs, int nelem, double dt) {
	double* v = arena + offs[1];
	double* scr = arena + offs[5];
	double* q = arena + offs[4];
	%POS_LOOP% {
		double a = scr[i] - q[i] * 0.5;
		v[i] = v[i] + a * dt;
	}
}

void calc_position(double* arena, int* offs, int nelem, double dt) {
	double* x = arena + offs[0];
	double* v = arena + offs[1];
	%POS_LOOP% {
		x[i] = x[i] + v[i] * dt;
	}
}

// EvalEOS: update energy and pressure. The velocity "ghost layer"
// write v[i+64] lands exactly on e[i] in the arena (offs[1]+64 ==
// offs[2]), the second genuine hazard region.
void eval_eos(double* arena, int* offs, int nelem) {
	double* e = arena + offs[2];
	double* p = arena + offs[3];
	double* q = arena + offs[4];
	double* v = arena + offs[1];
	for (int i = 0; i < nelem; i++) {
		double e0 = e[i];
		v[i + 64] = e0 * 0.96875;
		double e1 = e[i];
		p[i] = e1 * 0.6666 + q[i] * 0.125;
		e[i] = e1 + q[i] * 0.0078125;
	}
}
%HALO%
int main() {
	int t0 = clock();
	double* arena = new double[512];
	init_fields(arena, offs, NELEM);
	double dt = 0.0078125;
	for (int step = 0; step < NSTEPS; step++) {
		calc_force(arena, offs, NELEM);
		calc_velocity(arena, offs, NELEM, dt);
		calc_position(arena, offs, NELEM, dt);
		eval_eos(arena, offs, NELEM);%HALO_CALL%
	}
	double chk = checksum(arena, 512);
	%PRINT%
	return 0;
}
`
	printStmt := `print("LULESH proxy\n");
	print("final origin energy ", arena[offs[2]], "\n");
	print("mesh checksum ", chk, "\n");
	print("time ", clock() - t0, "\n");`
	if mpi {
		printStmt = `if (mpi_rank() == 0) {
		print("LULESH proxy (MPI)\n");
		print("final origin energy ", arena[offs[2]], "\n");
		print("mesh checksum ", chk, "\n");
		print("time ", clock() - t0, "\n");
	}`
	}
	r := strings.NewReplacer(
		"%FORCE_LOOP%", forceLoop,
		"%POS_LOOP%", posLoop,
		"%HALO%", halo,
		"%HALO_CALL%", haloCall,
		"%PRINT%", printStmt,
	)
	return r.Replace(src)
}

var luleshMasks = []string{timeMask}

// LULESHSeq is the sequential C++ row.
var LULESHSeq = register(&Config{
	ID: "lulesh-seq", Benchmark: "LULESH", ModelLabel: "C++",
	SourceFiles: "lulesh",
	Source:      luleshSource(false, false),
	SourceName:  "lulesh.mc",
	Frontend:    minic.Options{Dialect: minic.DialectC, Model: minic.ModelSeq},
	Masks:       luleshMasks,
	Paper: PaperRow{OptUnique: 30810, OptCached: 188826, PessUnique: 35, PessCached: 131,
		NoAliasOrig: 416371, NoAliasORAQL: 668864},
})

// LULESHOpenMP is the C++/OpenMP row.
var LULESHOpenMP = register(&Config{
	ID: "lulesh-openmp", Benchmark: "LULESH", ModelLabel: "C++, OpenMP",
	SourceFiles: "lulesh",
	Source:      luleshSource(true, false),
	SourceName:  "lulesh.mc",
	Frontend:    minic.Options{Dialect: minic.DialectC, Model: minic.ModelOpenMP},
	Masks:       luleshMasks,
	Paper: PaperRow{OptUnique: 29981, OptCached: 128537, PessUnique: 15, PessCached: 0,
		NoAliasOrig: 195724, NoAliasORAQL: 385730},
})

// LULESHMPI is the C++/MPI row (2 simulated ranks, larger hazard set
// from the halo staging views).
var LULESHMPI = register(&Config{
	ID: "lulesh-mpi", Benchmark: "LULESH", ModelLabel: "C++, MPI",
	SourceFiles: "lulesh",
	Source:      luleshSource(false, true),
	SourceName:  "lulesh.mc",
	Frontend:    minic.Options{Dialect: minic.DialectC, Model: minic.ModelMPI},
	Run:         runWithRanks(2),
	Masks:       luleshMasks,
	Paper: PaperRow{OptUnique: 28832, OptCached: 160032, PessUnique: 99, PessCached: 207,
		NoAliasOrig: 356965, NoAliasORAQL: 555141},
})
