package apps

import "github.com/oraql/go-oraql/internal/minic"

// Quicksilver proxy: Monte Carlo particle transport (Mercury's proxy).
// Branch-heavy per-particle segment loops chase small latency-bound
// loads through a facility struct — exactly the code the paper found
// fully-optimistically compilable with the largest secondary-statistic
// swings: dead diagnostic loops deleted, defensive double-stores
// DSE'd, repeated cross-section loads GVN'd, and facility pointers
// hoisted by LICM. Each mechanism is present here:
//
//   - per-segment diagnostic reductions are stored once and then
//     overwritten; with optimistic aliasing DSE kills the first store,
//     the reduction chain dies, and loop deletion removes the whole
//     diagnostic loop (the paper's 2 -> 55 jump),
//   - the cross-section lookup re-reads table entries around tally
//     writes (GVN's 45 -> 245 "# loads deleted"),
//   - the facility pointers load per segment but hoist once the tally
//     writes are disambiguated (LICM 5 -> 21).
var quicksilverSource = `
// Quicksilver proxy: Monte Carlo transport segments.
struct Facility {
	double* xs_total;
	double* xs_scatter;
	double* tally;
	double* scratch;
	int ngroups;
};

int NPART = 48;
int NSEG = 10;
int NGROUPS = 8;
int NCELLS = 16;

double segment_distance(Facility* f, int group, double u) {
	double t0 = f.xs_total[group];
	double s0 = f.xs_scatter[group];
	return 1.0 / (t0 + s0 * u + 0.125);
}

void track_particles(Facility* f, double* pos, int* cell, int npart) {
	int ng = f.ngroups;
	parallel for (p = 0; p < npart; p++) {
		double u = pos[p];
		int c = cell[p];
		int group = (p + c) % ng;
		for (int s = 0; s < NSEG; s++) {
			// Diagnostic reduction: dbg feeds only the first scratch
			// store, which a later store overwrites. Conservative
			// aliasing cannot prove the tally read between them is
			// unrelated, so the loop survives; ORAQL lets DSE and loop
			// deletion cascade.
			double dbg = 0.0;
			for (int g = 0; g < 4; g++) {
				dbg = dbg + f.xs_total[group];
			}
			f.scratch[p] = dbg;
			double flux = f.tally[c];
			f.scratch[p] = flux * 0.5 + u;

			double d0 = segment_distance(f, group, u);
			f.tally[c] = f.tally[c] + d0;
			double t1 = f.xs_total[group];
			f.tally[c + NCELLS] = f.tally[c + NCELLS] + t1 * d0;
			double t2 = f.xs_total[group];
			u = u * 0.9 + t2 * 0.01;
			if (u > 1.0) {
				u = u - 1.0;
				group = (group + 1) % ng;
			}
			c = (c + 1) % NCELLS;
		}
		pos[p] = u;
		cell[p] = c;
	}
}

int main() {
	int t0 = clock();
	Facility f;
	f.ngroups = NGROUPS;
	f.xs_total = new double[NGROUPS];
	f.xs_scatter = new double[NGROUPS];
	f.tally = new double[NCELLS * 2];
	f.scratch = new double[NPART];
	double* pos = new double[NPART];
	int* cell = new int[NPART];
	for (int g = 0; g < NGROUPS; g++) {
		f.xs_total[g] = 0.5 + (double)g * 0.0625;
		f.xs_scatter[g] = 0.25 + (double)(g % 3) * 0.125;
	}
	for (int p = 0; p < NPART; p++) {
		pos[p] = (double)(p % 7) * 0.125;
		cell[p] = p % NCELLS;
	}
	for (int i = 0; i < NCELLS * 2; i++) {
		f.tally[i] = 0.0;
	}
	track_particles(&f, pos, cell, NPART);
	print("Quicksilver proxy\n");
	print("tally checksum ", checksum(f.tally, NCELLS * 2), "\n");
	print("position checksum ", checksum(pos, NPART), "\n");
	print("time ", clock() - t0, "\n");
	return 0;
}
`

// QuicksilverOpenMP is the C++/OpenMP row of Fig. 4.
var QuicksilverOpenMP = register(&Config{
	ID: "quicksilver-openmp", Benchmark: "Quicksilver", ModelLabel: "C++, OpenMP",
	SourceFiles:           "all (manual LTO)",
	Source:                quicksilverSource,
	SourceName:            "qs.mc",
	Frontend:              minic.Options{Dialect: minic.DialectC, Model: minic.ModelOpenMP},
	Masks:                 []string{timeMask},
	ExpectFullyOptimistic: true,
	Paper: PaperRow{OptUnique: 31312, OptCached: 68542, PessUnique: 0, PessCached: 0,
		NoAliasOrig: 135504, NoAliasORAQL: 242001},
})
