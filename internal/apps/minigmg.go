package apps

import (
	"strings"

	"github.com/oraql/go-oraql/internal/minic"
)

// MiniGMG proxy: geometric multigrid V-cycle building blocks — a
// variable-coefficient smoother, residual, restriction, and
// prolongation — on a 1-D hierarchy. The original miniGMG makefiles
// pass icc's -fno-alias, so the paper expects (and finds) a fully
// optimistic compilation; the interesting outcome is the vectorizer
// delta: the smoother's arrays travel through non-restrict pointer
// parameters, which only ORAQL can disambiguate. The "sse"
// configuration vectorizes the smoother by hand with explicit SIMD
// intrinsics, so optimism affects only the remaining loops.
func minigmgSource(sse bool) string {
	smooth := `
void smooth(double* out, double* in, double* coef, int n, double w) {
	for (int i = 1; i < n - 1; i++) {
		out[i] = in[i] * coef[i] + (in[i - 1] + in[i + 1]) * w;
	}
	out[0] = in[0];
	out[n - 1] = in[n - 1];
}`
	if sse {
		smooth = `
// Hand-vectorized smoother (SSE-intrinsics configuration): the
// interior sweep uses explicit vector loads/stores; the scalar loop
// handles the remainder.
void smooth(double* out, double* in, double* coef, int n, double w) {
	vec4 wv = vsplat(w);
	int nv = ((n - 2) / 4) * 4 + 1;
	for (int i = 1; i < nv; i += 4) {
		vec4 c = vload(&coef[i]);
		vec4 mid = vload(&in[i]);
		vec4 lo = vload(&in[i - 1]);
		vec4 hi = vload(&in[i + 1]);
		vstore(&out[i], mid * c + (lo + hi) * wv);
	}
	for (int i = nv; i < n - 1; i++) {
		out[i] = in[i] * coef[i] + (in[i - 1] + in[i + 1]) * w;
	}
	out[0] = in[0];
	out[n - 1] = in[n - 1];
}`
	}
	src := `
// miniGMG proxy: multigrid V-cycle operators (operators.%KIND%.c).
int NFINE = 128;
int NCYCLES = 6;
%SMOOTH%

void residual(double* res, double* rhs, double* u, double* coef, int n) {
	for (int i = 1; i < n - 1; i++) {
		res[i] = rhs[i] - (u[i] * coef[i] - (u[i - 1] + u[i + 1]) * 0.5);
	}
	res[0] = 0.0;
	res[n - 1] = 0.0;
}

void restrict_grid(double* coarse, double* fine, int nc) {
	for (int i = 0; i < nc; i++) {
		coarse[i] = (fine[2 * i] + fine[2 * i + 1]) * 0.5;
	}
}

void prolongate(double* fine, double* coarse, int nc) {
	for (int i = 0; i < nc; i++) {
		fine[2 * i] = fine[2 * i] + coarse[i];
		fine[2 * i + 1] = fine[2 * i + 1] + coarse[i];
	}
}

double norm(double* v, int n) {
	double s = 0.0;
	for (int i = 0; i < n; i++) {
		s = s + fabs(v[i]);
	}
	return s;
}

void vcycle(double* u, double* rhs, double* coef, double* res, double* cr, double* cu, int n) {
	double* tmp = new double[n];
	parallel for (sweep = 0; sweep < 4; sweep++) {
		double w = 0.25 + (double)(sweep % 2) * 0.015625;
		smooth(tmp, u, coef, n, w);
		smooth(u, tmp, coef, n, w);
	}
	residual(res, rhs, u, coef, n);
	restrict_grid(cr, res, n / 2);
	for (int i = 0; i < n / 2; i++) {
		cu[i] = cr[i] * 0.6;
	}
	prolongate(u, cu, n / 2);
}

int main() {
	int t0 = clock();
	double* u = new double[NFINE];
	double* rhs = new double[NFINE];
	double* coef = new double[NFINE];
	double* res = new double[NFINE];
	double* cr = new double[NFINE / 2];
	double* cu = new double[NFINE / 2];
	for (int i = 0; i < NFINE; i++) {
		u[i] = 0.0;
		rhs[i] = sin((double)i * 0.049) + 1.0;
		coef[i] = 1.0 + (double)(i % 5) * 0.0625;
	}
	for (int c = 0; c < NCYCLES; c++) {
		vcycle(u, rhs, coef, res, cr, cu, NFINE);
	}
	double r = norm(res, NFINE);
	print("miniGMG proxy\n");
	print("residual norm ", r, "\n");
	print("solution checksum ", checksum(u, NFINE), "\n");
	print("time ", clock() - t0, "\n");
	return 0;
}
`
	kind := "ompif"
	if sse {
		kind = "sse"
	}
	return strings.NewReplacer("%SMOOTH%", smooth, "%KIND%", kind).Replace(src)
}

var gmgMasks = []string{timeMask}

// MiniGMGOmpIf is the OpenMP worksharing configuration.
var MiniGMGOmpIf = register(&Config{
	ID: "minigmg-ompif", Benchmark: "MiniGMG", ModelLabel: "C, OpenMP",
	SourceFiles:           "operators.ompif",
	Source:                minigmgSource(false),
	SourceName:            "operators.ompif.mc",
	Frontend:              minic.Options{Dialect: minic.DialectC, Model: minic.ModelOpenMP},
	Masks:                 gmgMasks,
	ExpectFullyOptimistic: true,
	Paper: PaperRow{OptUnique: 36080, OptCached: 23235, PessUnique: 0, PessCached: 0,
		NoAliasOrig: 124431, NoAliasORAQL: 198012},
})

// MiniGMGOmpTask is the OpenMP tasks configuration.
var MiniGMGOmpTask = register(&Config{
	ID: "minigmg-omptask", Benchmark: "MiniGMG", ModelLabel: "C, OpenMP tasks",
	SourceFiles:           "operators.omptask",
	Source:                minigmgSource(false),
	SourceName:            "operators.omptask.mc",
	Frontend:              minic.Options{Dialect: minic.DialectC, Model: minic.ModelTasks},
	Masks:                 gmgMasks,
	ExpectFullyOptimistic: true,
	Paper: PaperRow{OptUnique: 33007, OptCached: 21845, PessUnique: 0, PessCached: 0,
		NoAliasOrig: 121110, NoAliasORAQL: 186836},
})

// MiniGMGSSE is the explicit-SIMD configuration.
var MiniGMGSSE = register(&Config{
	ID: "minigmg-sse", Benchmark: "MiniGMG", ModelLabel: "C, SSE intrinsics",
	SourceFiles:           "operators.sse",
	Source:                minigmgSource(true),
	SourceName:            "operators.sse.mc",
	Frontend:              minic.Options{Dialect: minic.DialectC, Model: minic.ModelOpenMP},
	Masks:                 gmgMasks,
	ExpectFullyOptimistic: true,
	Paper: PaperRow{OptUnique: 36166, OptCached: 32529, PessUnique: 0, PessCached: 0,
		NoAliasOrig: 116700, NoAliasORAQL: 200120},
})
