package apps

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"github.com/oraql/go-oraql/internal/driver"
	"github.com/oraql/go-oraql/internal/irinterp"
	"github.com/oraql/go-oraql/internal/pipeline"
)

// TestAllConfigsProbe runs the full ORAQL workflow on every registered
// configuration and checks the headline shape against the paper: which
// configurations verify fully optimistic, and that the ones that do
// not end up with a small pessimistic set and baseline-identical
// output.
func TestAllConfigsProbe(t *testing.T) {
	for _, cfg := range All() {
		cfg := cfg
		t.Run(cfg.ID, func(t *testing.T) {
			var log bytes.Buffer
			spec := cfg.Spec()
			spec.Log = &log
			if testing.Verbose() {
				spec.Log = os.Stderr
			}
			res, err := driver.Probe(spec)
			if err != nil {
				t.Fatalf("probe: %v\nlog:\n%s", err, log.String())
			}
			s := res.Final.Compile.ORAQLStats()
			t.Logf("%s: opt=%d/%d pess=%d/%d noalias base=%d oraql=%d compiles=%d tests=%d(+%d cached)",
				cfg.ID, s.UniqueOptimistic, s.CachedOptimistic, s.UniquePessimistic, s.CachedPessimistic,
				res.Baseline.Compile.NoAliasTotal(), res.Final.Compile.NoAliasTotal(),
				res.Compiles, res.TestsRun, res.TestsCached)
			if res.FullyOptimistic != cfg.ExpectFullyOptimistic {
				t.Errorf("fully-optimistic = %v, paper shape wants %v\nlog:\n%s",
					res.FullyOptimistic, cfg.ExpectFullyOptimistic, log.String())
			}
			if !res.FullyOptimistic && s.UniquePessimistic == 0 {
				t.Errorf("expected pessimistic queries after bisection")
			}
			if got, want := res.Spec.Verify.Mask(res.Final.Run.Stdout), res.Spec.Verify.Mask(res.Baseline.Run.Stdout); got != want {
				t.Errorf("final output does not match baseline:\n got: %q\nwant: %q", got, want)
			}
			if d := res.Final.Compile.NoAliasTotal() - res.Baseline.Compile.NoAliasTotal(); d <= 0 {
				t.Errorf("expected ORAQL to increase total no-alias responses, delta = %d", d)
			}
		})
	}
}

// TestAppOutputsWellFormed checks every app's baseline output has the
// expected figure-of-merit lines and is deterministic.
func TestAppOutputsWellFormed(t *testing.T) {
	wantLines := map[string][]string{
		"testsnap":    {"TestSNAP proxy", "force checksum", "grind time"},
		"xsbench":     {"XSBench proxy", "verification checksum"},
		"gridmini":    {"GridMini proxy", "vector checksum", "output checksum"},
		"quicksilver": {"Quicksilver proxy", "tally checksum", "position checksum"},
		"lulesh":      {"LULESH proxy", "final origin energy", "mesh checksum"},
		"minife":      {"miniFE proxy", "final residual", "solution checksum"},
		"minigmg":     {"miniGMG proxy", "residual norm", "solution checksum"},
	}
	for _, cfg := range All() {
		cfg := cfg
		t.Run(cfg.ID, func(t *testing.T) {
			compileOnce := func() string {
				cr, err := pipeline.Compile(pipeline.Config{
					Name: cfg.ID, Source: cfg.Source, SourceFile: cfg.SourceName, Frontend: cfg.Frontend,
				})
				if err != nil {
					t.Fatal(err)
				}
				rr, err := irinterp.Run(cr.Program, cfg.Run)
				if err != nil {
					t.Fatal(err)
				}
				return rr.Stdout
			}
			out := compileOnce()
			var key string
			for prefix := range wantLines {
				if strings.HasPrefix(cfg.ID, prefix) {
					key = prefix
				}
			}
			for _, want := range wantLines[key] {
				if !strings.Contains(out, want) {
					t.Errorf("output missing %q:\n%s", want, out)
				}
			}
			if out2 := compileOnce(); out2 != out {
				t.Error("baseline output must be deterministic")
			}
		})
	}
}

// TestPaperRowsRecorded sanity-checks that every configuration carries
// its published Fig. 4 numbers for the report layer.
func TestPaperRowsRecorded(t *testing.T) {
	for _, cfg := range All() {
		p := cfg.Paper
		if p.NoAliasOrig == 0 || p.NoAliasORAQL == 0 || p.OptUnique == 0 {
			t.Errorf("%s: paper row incomplete: %+v", cfg.ID, p)
		}
		if cfg.ExpectFullyOptimistic != (p.PessUnique == 0) {
			t.Errorf("%s: ExpectFullyOptimistic inconsistent with paper row", cfg.ID)
		}
	}
}

// TestLULESHMPIRunsTwoRanks checks the MPI variant actually exercises
// the simulated ranks.
func TestLULESHMPIRunsTwoRanks(t *testing.T) {
	cfg := ByID("lulesh-mpi")
	if cfg.Run.NumRanks != 2 {
		t.Fatalf("lulesh-mpi must run 2 ranks, has %d", cfg.Run.NumRanks)
	}
	cr, err := pipeline.Compile(pipeline.Config{
		Name: cfg.ID, Source: cfg.Source, SourceFile: cfg.SourceName, Frontend: cfg.Frontend,
	})
	if err != nil {
		t.Fatal(err)
	}
	rr, err := irinterp.Run(cr.Program, cfg.Run)
	if err != nil {
		t.Fatal(err)
	}
	// Only rank 0 prints, so exactly one header line.
	if c := strings.Count(rr.Stdout, "LULESH proxy"); c != 1 {
		t.Errorf("rank-0-only printing violated (%d headers)", c)
	}
}

// TestOffloadConfigsHaveDeviceModules pins the offload wiring.
func TestOffloadConfigsHaveDeviceModules(t *testing.T) {
	for _, id := range []string{"testsnap-kokkos-cuda", "xsbench-cuda", "gridmini-offload"} {
		cfg := ByID(id)
		cr, err := pipeline.Compile(pipeline.Config{
			Name: cfg.ID, Source: cfg.Source, SourceFile: cfg.SourceName, Frontend: cfg.Frontend,
		})
		if err != nil {
			t.Fatal(err)
		}
		if cr.Program.Device == nil {
			t.Errorf("%s must produce a device module", id)
		}
		kernels := 0
		for _, f := range cr.Program.Device.Funcs {
			if f.Attrs.Kernel {
				kernels++
			}
		}
		if kernels == 0 {
			t.Errorf("%s device module has no kernels", id)
		}
		if cfg.ORAQLTarget == "" && id != "xsbench-cuda" {
			t.Errorf("%s should restrict ORAQL to the device target", id)
		}
	}
}
