// Package apps contains the seven HPC proxy applications of the
// paper's evaluation, re-implemented in minic, in the sixteen
// configurations of Fig. 4 (programming languages x parallel models).
// Each configuration records the paper's published numbers so the
// report layer can print paper-vs-measured tables.
//
// The applications are small but structurally faithful: the
// indirection layers that generate hard alias queries (OpenMP context
// structs, Kokkos/Thrust view descriptors, Fortran array descriptors,
// MPI staging buffers) are produced by the corresponding frontend
// lowering, and the configurations that the paper reports as needing
// pessimistic answers contain genuine aliasing on the tested inputs
// (see DESIGN.md, "Fidelity notes / seeded hazards").
package apps

import (
	"fmt"

	"github.com/oraql/go-oraql/internal/driver"
	"github.com/oraql/go-oraql/internal/irinterp"
	"github.com/oraql/go-oraql/internal/minic"
	"github.com/oraql/go-oraql/internal/oraql"
	"github.com/oraql/go-oraql/internal/pipeline"
	"github.com/oraql/go-oraql/internal/registry"
	"github.com/oraql/go-oraql/internal/verify"
)

// PaperRow holds the published Fig. 4 numbers for one configuration.
type PaperRow struct {
	OptUnique, OptCached      int
	PessUnique, PessCached    int
	NoAliasOrig, NoAliasORAQL int
}

// Config is one benchmark configuration (one Fig. 4 row).
type Config struct {
	// ID is the stable identifier, e.g. "testsnap-openmp".
	ID string
	// Benchmark and ModelLabel reproduce the first two Fig. 4 columns.
	Benchmark  string
	ModelLabel string
	// SourceFiles is the Fig. 4 "Source Files" column.
	SourceFiles string

	// Source is the minic program; SourceName its file name.
	Source     string
	SourceName string
	// Frontend selects dialect/model/views.
	Frontend minic.Options
	// ORAQLTarget restricts probing to one compilation target
	// (offload configurations probe only the device).
	ORAQLTarget string
	// Run configures the simulated machine.
	Run irinterp.Options
	// Masks are verification regexes for volatile output.
	Masks []string

	// ExpectFullyOptimistic mirrors the paper's finding for this
	// configuration (zero pessimistic queries needed).
	ExpectFullyOptimistic bool

	// Paper holds the published numbers for EXPERIMENTS.md.
	Paper PaperRow
}

// Spec converts the configuration into a driver benchmark spec.
func (c *Config) Spec() *driver.BenchSpec {
	name := c.SourceName
	if name == "" {
		name = c.SourceFiles + ".mc"
	}
	return &driver.BenchSpec{
		Name: c.ID,
		Compile: pipeline.Config{
			Source:     c.Source,
			SourceFile: name,
			Frontend:   c.Frontend,
		},
		Run:    c.Run,
		Verify: verify.Spec{MaskPatterns: c.Masks},
		ORAQL:  oraql.Options{Target: c.ORAQLTarget},
	}
}

// Configurations live in the shared registry.AppConfigs extension
// point (Fig. 4 row order = registration order); register panics on
// duplicate IDs through the registry's own duplicate check.
func register(c *Config) *Config {
	registry.AppConfigs.Register(registry.Entry{
		Name:        c.ID,
		Description: fmt.Sprintf("%s · %s (%s)", c.Benchmark, c.ModelLabel, c.SourceFiles),
		Value:       c,
	})
	return c
}

// All returns every configuration in Fig. 4 row order.
func All() []*Config {
	entries := registry.AppConfigs.Entries()
	out := make([]*Config, len(entries))
	for i, e := range entries {
		out[i] = e.Value.(*Config)
	}
	return out
}

// ByID returns the named configuration, or nil.
func ByID(id string) *Config {
	e, ok := registry.AppConfigs.Lookup(id)
	if !ok {
		return nil
	}
	return e.Value.(*Config)
}

// runWithRanks returns run options with the given MPI rank count.
func runWithRanks(n int) irinterp.Options { return irinterp.Options{NumRanks: n} }

// timeMask matches the "time ... ms"-style lines every proxy app
// prints; these vary across binaries (the simulated clock counts
// cycles) and are masked during verification, exactly as the paper
// masks reported runtimes.
const timeMask = `time [0-9.eE+-]+`
