package apps

import (
	"fmt"
	"strings"

	"github.com/oraql/go-oraql/internal/minic"
)

// TestSNAP proxy: the SNAP force kernel of LAMMPS. Bispectrum-like
// accumulations over atom neighborhoods feed a force array whose
// checksum is the figure of merit. The SNA struct carries the data
// pointers whose queries against the implicit struct pointer dominate
// the paper's Fig. 3.
//
// Variant knobs:
//   - par:      parallel-for over atoms (OpenMP / offload models)
//   - overlap:  the port reuses the tail of the work buffer as the
//     scratch view (a genuine overlap with ylist_im on the tested
//     input), the source of the pessimistic queries in the OpenMP and
//     Fortran rows
//   - setupVec: a descriptor-heavy setup stage (Fortran row) that only
//     vectorizes under optimistic aliasing
func testsnapSource(par, overlap, setupVec bool) string {
	loop := func(v string, n string) string {
		if par {
			return fmt.Sprintf("parallel for (%s = 0; %s < %s; %s++)", v, v, n, v)
		}
		return fmt.Sprintf("for (int %s = 0; %s < %s; %s++)", v, v, n, v)
	}
	scratchInit := `s.scratch = new double[IDXU];
	s.scratch2 = new double[IDXU];`
	if overlap {
		// The port aliases both scratch views onto the tails of the
		// ylist backing stores (footprint optimization gone wrong).
		scratchInit = `s.scratch = yim_store + NATOMS * IDXU - IDXU;
	s.scratch2 = yre_store + NATOMS * IDXU - IDXU;`
	}
	setup := ""
	if setupVec {
		setup = `
// Setup stage: neighbor table compaction (descriptor-based arrays).
// The Fortran port's workspace slice overlaps the tail of rij (the
// classic shared-WORK-array idiom), a further genuine hazard.
void compact_neighbors(double* rij, double* rwork, double* wtail, int n) {
	for (int k = 0; k < n; k++) {
		rwork[k] = rij[k] * 0.99999 + 0.00001;
	}
	for (int k = 0; k < 4; k++) {
		double r0 = rij[n - 4 + k];
		wtail[k] = r0 * 0.5 + 1.0;
		double r1 = rij[n - 4 + k];
		wtail[k] = wtail[k] + r1 * 0.125;
	}
	for (int k = 0; k < n; k++) {
		rij[k] = rwork[k];
	}
}
`
	}
	setupCall := ""
	if setupVec {
		setupCall = `
	double* rwork = new double[NATOMS * NNBOR * 3];
	double* wtail = rij + NATOMS * NNBOR * 3 - 4;
	for (int rep = 0; rep < 6; rep++) {
		compact_neighbors(rij, rwork, wtail, NATOMS * NNBOR * 3);
	}`
	}
	src := `
// TestSNAP proxy: SNAP force kernel (bispectrum accumulation).
struct SNA {
	double* ulist_re;
	double* ulist_im;
	double* ylist_re;
	double* ylist_im;
	double* dedr;
	double* scratch;
	double* scratch2;
	int idxu_max;
};

int NATOMS = 24;
int NNBOR = 8;
int IDXU = 16;
int NSTEPS = 3;

void build_neighbors(double* rij, int natoms, int nnbor) {
	for (int a = 0; a < natoms; a++) {
		for (int n = 0; n < nnbor; n++) {
			int k = (a * nnbor + n) * 3;
			rij[k] = sin((double)(a + n) * 0.37) * 2.0;
			rij[k + 1] = cos((double)(a * 3 + n) * 0.21) * 2.0;
			rij[k + 2] = sin((double)(a + n * 7) * 0.11) * 2.0;
		}
	}
}

void compute_ui(SNA* s, double* rij, int natoms, int nnbor) {
	int m = s.idxu_max;
	%UI_LOOP% {
		double* ure = s.ulist_re + a * m;
		double* uim = s.ulist_im + a * m;
		for (int j = 0; j < m; j++) {
			ure[j] = 1.0;
			uim[j] = 0.0;
		}
		for (int n = 0; n < nnbor; n++) {
			int k = (a * nnbor + n) * 3;
			double x = rij[k];
			double y = rij[k + 1];
			double z = rij[k + 2];
			double r2 = x * x + y * y + z * z + 1.0;
			double c0 = x / r2;
			double s0 = y / r2;
			for (int j = 0; j < m; j++) {
				double w = (double)(j + 1) * 0.125;
				ure[j] = ure[j] + c0 * w + z * 0.001;
				uim[j] = uim[j] + s0 * w;
			}
		}
	}
}

void compute_yi(SNA* s, int natoms) {
	int m = s.idxu_max;
	%YI_ZERO_LOOP% {
		s.ylist_re[j] = 0.0;
		s.ylist_im[j] = 0.0;
	}
	%YI_LOOP% {
		double* ure = s.ulist_re + a * m;
		double* uim = s.ulist_im + a * m;
		double* yre = s.ylist_re + a * m;
		double* yim = s.ylist_im + a * m;
		for (int j = 0; j < m; j++) {
			yre[j] = ure[j] * 0.5 + uim[j] * 0.25;
			yim[j] = uim[j] * 0.5 - ure[j] * 0.25;
		}
	}
}

void compute_deidrj(SNA* s, double* rij, int natoms, int nnbor) {
	int m = s.idxu_max;
	%DEIDRJ_LOOP% {
		double* yre = s.ylist_re + a * m;
		double* yim = s.ylist_im + a * m;
		double* scr = s.scratch;
		double* scr2 = s.scratch2;
		double fx = 0.0;
		double fy = 0.0;
		double fz = 0.0;
		for (int n = 0; n < nnbor; n++) {
			int k = (a * nnbor + n) * 3;
			double dx = rij[k];
			for (int j = 0; j < m; j++) {
				double t1 = yim[j];
				scr[j] = t1 * 0.5 + dx * 0.001;
				double t2 = yim[j];
				double u1 = yre[j];
				scr2[j] = u1 * 0.75 + dx * 0.002;
				double u2 = yre[j];
				fx = fx + t2 * 0.01 + u2 * 0.02;
				fy = fy + scr[j] * 0.005 + scr2[j] * 0.003;
				fz = fz + (t2 - t1) * 3.0 + (u2 - u1) * 5.0;
			}
		}
		s.dedr[a * 3] = fx;
		s.dedr[a * 3 + 1] = fy;
		s.dedr[a * 3 + 2] = fz;
	}
}
%SETUP%
int main() {
	int t0 = clock();
	double* rij = new double[NATOMS * NNBOR * 3];
	double* yim_store = new double[NATOMS * IDXU];
	double* yre_store = new double[NATOMS * IDXU];
	SNA s;
	s.idxu_max = IDXU;
	s.ulist_re = new double[NATOMS * IDXU];
	s.ulist_im = new double[NATOMS * IDXU];
	s.ylist_re = yre_store;
	s.ylist_im = yim_store;
	s.dedr = new double[NATOMS * 3];
	%SCRATCH_INIT%
	build_neighbors(rij, NATOMS, NNBOR);
	%SETUP_CALL%
	for (int step = 0; step < NSTEPS; step++) {
		compute_ui(&s, rij, NATOMS, NNBOR);
		compute_yi(&s, NATOMS);
		compute_deidrj(&s, rij, NATOMS, NNBOR);
	}
	double chk = checksum(s.dedr, NATOMS * 3);
	print("TestSNAP proxy\n");
	print("force checksum ", chk, "\n");
	print("grind time ", clock() - t0, " ms/atom-step\n");
	return 0;
}
`
	r := strings.NewReplacer(
		"%UI_LOOP%", loop("a", "natoms"),
		"%YI_ZERO_LOOP%", loop("j", "m"),
		"%YI_LOOP%", loop("a", "natoms"),
		"%DEIDRJ_LOOP%", loop("a", "natoms"),
		"%SCRATCH_INIT%", scratchInit,
		"%SETUP%", setup,
		"%SETUP_CALL%", setupCall,
	)
	return r.Replace(src)
}

// snapMasks masks the grind-time line.
var snapMasks = []string{`grind time [0-9.eE+-]+`}

// TestSNAPSeq is the sequential C++ row of Fig. 4.
var TestSNAPSeq = register(&Config{
	ID: "testsnap-seq", Benchmark: "TestSNAP", ModelLabel: "C++",
	SourceFiles:           "sna",
	Source:                testsnapSource(false, false, false),
	SourceName:            "sna.mc",
	Frontend:              minic.Options{Dialect: minic.DialectC, Model: minic.ModelSeq},
	Masks:                 snapMasks,
	ExpectFullyOptimistic: true,
	Paper: PaperRow{OptUnique: 30101, OptCached: 38076, PessUnique: 0, PessCached: 0,
		NoAliasOrig: 44259, NoAliasORAQL: 95487},
})

// TestSNAPOpenMP is the C++/OpenMP row: the port reuses the work buffer
// tail as scratch, which genuinely overlaps ylist_im — the source of
// the four pessimistic queries the paper dissects in Fig. 3.
var TestSNAPOpenMP = register(&Config{
	ID: "testsnap-openmp", Benchmark: "TestSNAP", ModelLabel: "C++, OpenMP",
	SourceFiles:           "sna",
	Source:                testsnapSource(true, true, false),
	SourceName:            "sna.mc",
	Frontend:              minic.Options{Dialect: minic.DialectC, Model: minic.ModelOpenMP},
	Masks:                 snapMasks,
	ExpectFullyOptimistic: false,
	Paper: PaperRow{OptUnique: 3856, OptCached: 12514, PessUnique: 4, PessCached: 265,
		NoAliasOrig: 19152, NoAliasORAQL: 34425},
})

// TestSNAPKokkos is the Kokkos/CUDA row: view descriptors plus device
// offload; probing is restricted to the device compilation.
var TestSNAPKokkos = register(&Config{
	ID: "testsnap-kokkos-cuda", Benchmark: "TestSNAP", ModelLabel: "C++, Kokkos, CUDA",
	SourceFiles:           "sna",
	Source:                testsnapSource(true, false, false),
	SourceName:            "sna.mc",
	Frontend:              minic.Options{Dialect: minic.DialectC, Model: minic.ModelOffload, Views: true},
	ORAQLTarget:           "gpu",
	Masks:                 snapMasks,
	ExpectFullyOptimistic: true,
	Paper: PaperRow{OptUnique: 9110, OptCached: 54192, PessUnique: 0, PessCached: 0,
		NoAliasOrig: 118623, NoAliasORAQL: 149525},
})

// TestSNAPFortran is the Fortran (fir-dev flang) row: descriptor-based
// arrays, no strict aliasing, a workspace-overlap idiom, and a
// descriptor-heavy setup stage whose vectorization is the 5%
// end-to-end gain the paper reports (figure of merit unaffected).
var TestSNAPFortran = register(&Config{
	ID: "testsnap-fortran", Benchmark: "TestSNAP", ModelLabel: "Fortran",
	SourceFiles:           "all (manual LTO)",
	Source:                testsnapSource(false, true, true),
	SourceName:            "sna.f.mc",
	Frontend:              minic.Options{Dialect: minic.DialectFortran, Model: minic.ModelSeq},
	Masks:                 snapMasks,
	ExpectFullyOptimistic: false,
	Paper: PaperRow{OptUnique: 32810, OptCached: 52539, PessUnique: 237, PessCached: 69,
		NoAliasOrig: 377862, NoAliasORAQL: 478249},
})
