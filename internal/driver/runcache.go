package driver

// The run-replay layer of the persistent campaign state. The simulated
// machine is deterministic: a program with the same executable hash
// produces the identical result under the same run options. Successful
// baseline/final runs are therefore persisted in the campaign store
// and replayed across processes, which completes the seeded fast path
// for an unchanged program — test verdicts replay from the outcome
// history (engine.go), compilations from the translation-unit and
// per-function layers (pipeline), and the interpreter runs from here,
// so a re-probe pays cache I/O instead of simulated execution.
//
// Failed runs are never persisted: their Go error values would not
// round-trip through the artifact, and they are not on the seeded fast
// path — a baseline or final run that fails aborts the campaign.

import (
	"encoding/json"
	"fmt"

	"github.com/oraql/go-oraql/internal/diskcache"
	"github.com/oraql/go-oraql/internal/irinterp"
	"github.com/oraql/go-oraql/internal/pipeline"
)

// runKey derives the run-artifact key from the executable identity and
// every output-affecting run option.
func runKey(exeHash string, opts irinterp.Options) string {
	return diskcache.Key("run", exeHash, fmt.Sprintf(
		"threads=%d|ranks=%d|steps=%d|mem=%d",
		opts.NumThreads, opts.NumRanks, opts.StepLimit, opts.MemLimit))
}

// run executes a compiled program, replaying the persisted result when
// the campaign store already holds one for this executable. A corrupt
// artifact degrades to a fresh run.
func (st *state) run(cr *pipeline.CompileResult) (*irinterp.Result, error) {
	if st.spec.Cache == nil {
		return irinterp.Run(cr.Program, st.spec.Run)
	}
	key := runKey(cr.ExeHash(), st.spec.Run)
	if data, ok := st.spec.Cache.Get(key); ok {
		rr := &irinterp.Result{}
		if json.Unmarshal(data, rr) == nil {
			st.res.RunsReplayed++
			return rr, nil
		}
	}
	rr, err := irinterp.Run(cr.Program, st.spec.Run)
	if err == nil && rr != nil {
		if data, jerr := json.Marshal(rr); jerr == nil {
			st.spec.Cache.Put(key, data)
		}
	}
	return rr, err
}
