// Package driver implements the ORAQL probing driver (paper Section
// IV-B): it compiles a benchmark with increasingly refined response
// sequences until it finds a locally maximal set of queries that can
// be answered "no-alias" without breaking the benchmark's verification.
// Two bisection strategies are provided — the chunked recursion the
// paper settled on, and the frequency-space splitting it compares
// against — plus the executable-hash test cache that skips re-running
// bit-identical binaries.
//
// Deviating from the paper's strictly sequential driver, probing runs
// on a bounded worker pool (BenchSpec.Workers): sibling subranges of
// the chunked recursion and residue classes of the freq-space strategy
// are independent candidates, so the driver speculatively tests the
// likely next candidates concurrently and cancels losers. The decision
// loop itself stays sequential and consumes test outcomes in canonical
// order, so parallel and sequential probing produce bit-identical
// FinalSeq (see engine.go).
package driver

import (
	"context"
	"fmt"
	"io"
	"sort"

	"github.com/oraql/go-oraql/internal/diskcache"
	"github.com/oraql/go-oraql/internal/irinterp"
	"github.com/oraql/go-oraql/internal/oraql"
	"github.com/oraql/go-oraql/internal/pipeline"
	"github.com/oraql/go-oraql/internal/verify"
)

// Strategy selects the bisection order.
type Strategy int

// Strategies.
const (
	// Chunked recursively splits the sequence into consecutive halves
	// (good when dangerous queries cluster).
	Chunked Strategy = iota
	// FreqSpace splits by integer-division remainder (even/odd first);
	// descriptors are independent of the sequence length.
	FreqSpace
)

// BenchSpec is the benchmark-specific configuration file equivalent:
// compiler invocation, probing scope, run options, and verification.
type BenchSpec struct {
	Name     string
	Compile  pipeline.Config // ORAQL field is managed by the driver
	Run      irinterp.Options
	Verify   verify.Spec // empty references: baseline output is recorded
	ORAQL    oraql.Options
	Strategy Strategy
	// Workers bounds the worker pool for speculative parallel probing
	// (0 defaults to runtime.NumCPU(); 1 probes strictly sequentially).
	// The final sequence is identical for every worker count.
	Workers int
	// DisableExeCache turns off the executable-hash test cache (for the
	// ablation benchmark).
	DisableExeCache bool
	// MaxTests bounds probing effort (0 = no bound). The budget counts
	// consumed tests only; speculative tests are free.
	MaxTests int
	// Cache, when non-nil, persists campaign state across processes:
	// test outcomes keyed by the baseline content identity (a repeated
	// campaign replays from disk) and per-query verdicts keyed by
	// function content hashes (a campaign on an edited program seeds
	// its bisection from the unchanged functions' history — see
	// persist.go). The store is also installed as the pipeline's
	// compile cache for the non-ORAQL baseline/final compilations.
	Cache *diskcache.Store
	// Log receives progress lines when non-nil.
	Log io.Writer
}

// Outcome is one compile+run+verify cycle.
type Outcome struct {
	Compile *pipeline.CompileResult
	Run     *irinterp.Result
	RunErr  error
	Verify  verify.Result
}

// Result is the full probing outcome.
type Result struct {
	Spec *BenchSpec

	// Baseline is the non-ORAQL compilation (the reference).
	Baseline *Outcome
	// Final is the compilation with the discovered sequence.
	Final *Outcome
	// FinalSeq is the locally maximal response sequence.
	FinalSeq oraql.Seq
	// FullyOptimistic reports whether the empty sequence already
	// verified (no pessimistic answers needed).
	FullyOptimistic bool

	// Probing effort counters. Compiles includes speculative compiles;
	// TestsRun + TestsCached counts the tests the decision loop
	// consumed and is identical for every worker count (the split
	// between run and cached may shift with speculative timing).
	Compiles    int
	TestsRun    int
	TestsCached int
	// TestsDisk is the subset of TestsCached whose outcome was replayed
	// from the persistent campaign state (BenchSpec.Cache).
	TestsDisk int
	// TestsSpeculated counts speculative tests launched by the parallel
	// driver; TestsWasted is the subset whose outcome was never
	// consumed by the decision loop (cancelled losers included).
	TestsSpeculated int
	TestsWasted     int
}

// GuiltyQueries returns the alias queries the probe had to answer
// pessimistically in the final verified compilation — the queries
// whose optimistic answer breaks the program (or rides along with one
// that does; the chunked strategy does not always isolate singletons).
// It is the programmatic form of the paper's Fig. 3 dump and the
// hand-off point to the difftest triage, which delta-debugs such sets
// further.
func (r *Result) GuiltyQueries() []*oraql.QueryRecord {
	if r.Final == nil || r.Final.Compile == nil {
		return nil
	}
	var out []*oraql.QueryRecord
	for _, rec := range r.Final.Compile.Records() {
		if !rec.Optimistic {
			out = append(out, rec)
		}
	}
	return out
}

// Probe runs the full ORAQL workflow on a benchmark.
func Probe(spec *BenchSpec) (*Result, error) {
	return ProbeContext(context.Background(), spec)
}

// ProbeContext is Probe with cancellation: ctx covers the whole
// workflow — the sequential decision loop checks it before every
// consumed test, speculative workers inherit it, and it is threaded
// into every compilation (pipeline.CompileContext), so cancelling it
// stops probing mid-pipeline, not only between tests.
func ProbeContext(ctx context.Context, spec *BenchSpec) (*Result, error) {
	st := &state{ctx: ctx, spec: spec}
	return st.probe()
}

type state struct {
	ctx     context.Context
	spec    *BenchSpec
	res     *Result
	eng     *engine
	padLen  int // generous pessimistic padding length
	maxSeen int // highest unique-query count observed

	// Persistent-campaign state (nil/empty without BenchSpec.Cache).
	campID  string    // test-outcome identity: content hashes + checkID
	checkID string    // check identity: spec config sans module content
	pins    []int8    // per-index persisted verdict: +1 opt, -1 pess, 0 unknown
	priors  []float64 // per-index P(must stay pessimistic), 0.5 unknown
}

func (st *state) logf(format string, args ...any) {
	if st.spec.Log != nil {
		fmt.Fprintf(st.spec.Log, "[oraql-driver] "+format+"\n", args...)
	}
}

// execute compiles with the given ORAQL options (nil = pass disabled)
// and runs the program.
func (st *state) execute(opts *oraql.Options) (*Outcome, error) {
	cfg := st.spec.Compile
	cfg.Name = st.spec.Name
	cfg.ORAQL = opts
	cr, err := pipeline.CompileContext(st.ctx, cfg)
	if err != nil {
		return nil, err
	}
	st.res.Compiles++
	rr, runErr := irinterp.Run(cr.Program, st.spec.Run)
	out := &Outcome{Compile: cr, Run: rr, RunErr: runErr}
	var stdout string
	if rr != nil {
		stdout = rr.Stdout
	}
	out.Verify = st.spec.Verify.Check(stdout, runErr)
	return out, nil
}

// test verifies a candidate sequence through the engine, optionally
// prefetching speculative candidates onto the worker pool first. Only
// consumed tests update the decision state (budget, counters, drift),
// which keeps the probing decisions independent of worker count.
func (st *state) test(seq oraql.Seq, specs ...oraql.Seq) (bool, error) {
	if err := st.ctx.Err(); err != nil {
		return false, fmt.Errorf("driver: probing cancelled: %w", err)
	}
	if st.spec.MaxTests > 0 && st.res.TestsRun+st.res.TestsCached >= st.spec.MaxTests {
		return false, fmt.Errorf("driver: test budget (%d) exhausted", st.spec.MaxTests)
	}
	for _, s := range specs {
		st.eng.prefetch(s)
	}
	out := st.eng.get(seq)
	if out.err != nil {
		return false, out.err
	}
	if out.unique > st.maxSeen {
		st.maxSeen = out.unique
	}
	if out.didRun {
		st.res.TestsRun++
	} else {
		st.res.TestsCached++
	}
	if out.ok {
		// A success flips decided bits: every candidate speculated from
		// the previous decided state is now a loser.
		st.eng.cancelSpeculative()
	}
	return out.ok, nil
}

func (st *state) probe() (*Result, error) {
	spec := st.spec
	st.res = &Result{Spec: spec}
	if err := spec.Verify.Compile(); err != nil {
		return nil, fmt.Errorf("driver: verify spec: %w", err)
	}
	if spec.Cache != nil {
		// The shared store serves the compile cache for the non-ORAQL
		// baseline/final compilations; content hashes identify the
		// campaign and key the per-function verdict history.
		if spec.Compile.DiskCache == nil {
			spec.Compile.DiskCache = spec.Cache
		}
		spec.Compile.WantContentHashes = true
	}

	// Step 1: baseline compile and run without ORAQL.
	base, err := st.execute(nil)
	if err != nil {
		return nil, fmt.Errorf("driver: baseline: %w", err)
	}
	if base.RunErr != nil {
		return nil, fmt.Errorf("driver: baseline run failed: %w", base.RunErr)
	}
	if len(spec.Verify.References) == 0 {
		spec.Verify.References = []string{base.Run.Stdout}
	}
	base.Verify = spec.Verify.Check(base.Run.Stdout, nil)
	if !base.Verify.OK {
		return nil, fmt.Errorf("driver: baseline does not verify: %s", base.Verify.Diff)
	}
	st.res.Baseline = base
	st.logf("%s: baseline verified (%d instrs)", spec.Name, base.Run.Instrs)
	st.campaignKeys()

	// The engine is created only after the verify references are
	// recorded: workers verify concurrently against the frozen spec.
	st.eng = newEngine(st.ctx, spec, st.campID)
	defer st.eng.shutdown()

	// Step 2: fully optimistic attempt (empty sequence).
	ok, err := st.test(nil)
	if err != nil {
		return nil, err
	}
	if ok {
		st.logf("%s: fully optimistic compilation verified", spec.Name)
		st.res.FullyOptimistic = true
		st.res.FinalSeq = nil
		return st.finalize(nil)
	}
	st.logf("%s: fully optimistic failed; bisecting %d unique queries", spec.Name, st.maxSeen)
	st.seedFromDisk()

	// Step 3: bisection. The padding keeps undecided queries
	// pessimistic; it adapts as query counts drift.
	var final oraql.Seq
	for round := 0; round < 4; round++ {
		n := st.maxSeen
		st.padLen = 2*n + 64
		var decided oraql.Seq
		switch {
		case spec.Strategy == FreqSpace:
			decided, err = st.freqSolve(n)
		case round == 0 && st.pins != nil:
			decided, err = st.seededSolve(n)
		default:
			decided, err = st.chunkSolve(n)
		}
		if err != nil {
			return nil, err
		}
		final = trimTrailingOptimistic(decided)
		ok, err := st.test(final)
		if err != nil {
			return nil, err
		}
		if ok {
			return st.finalize(final)
		}
		st.logf("%s: query count drifted (now %d); re-probing", spec.Name, st.maxSeen)
	}
	// Fall back to the all-pessimistic sequence, which reproduces the
	// baseline compilation behaviour for ORAQL-visible queries.
	final = make(oraql.Seq, st.maxSeen+64)
	ok, err = st.test(final)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("driver: %s: even the all-pessimistic sequence fails verification", spec.Name)
	}
	return st.finalize(final)
}

// finalize recompiles with the final sequence and records results.
func (st *state) finalize(seq oraql.Seq) (*Result, error) {
	opts := st.spec.ORAQL
	opts.Seq = seq
	fin, err := st.execute(&opts)
	if err != nil {
		return nil, err
	}
	if !fin.Verify.OK {
		return nil, fmt.Errorf("driver: final sequence does not verify: %s", fin.Verify.Diff)
	}
	st.res.Final = fin
	st.res.FinalSeq = seq
	st.res.Compiles += int(st.eng.compiles.Load())
	st.res.TestsSpeculated = int(st.eng.specLaunched.Load())
	st.res.TestsWasted = st.res.TestsSpeculated - int(st.eng.specConsumed.Load())
	st.res.TestsDisk = int(st.eng.diskTests.Load())
	st.persistVerdicts(fin.Compile)
	s := fin.Compile.ORAQLStats()
	st.logf("%s: done: %d opt (%d cached), %d pess (%d cached); %d compiles, %d tests (+%d cached, %d from disk, %d speculated, %d wasted)",
		st.spec.Name, s.UniqueOptimistic, s.CachedOptimistic, s.UniquePessimistic, s.CachedPessimistic,
		st.res.Compiles, st.res.TestsRun, st.res.TestsCached, st.res.TestsDisk, st.res.TestsSpeculated, st.res.TestsWasted)
	// -time-passes style summary of the final compilation.
	tm := fin.Compile.Timing()
	var runs int64
	for _, pt := range tm.Entries() {
		runs += pt.Runs
	}
	var hits, misses int64
	for _, as := range fin.Compile.AnalysisStats() {
		hits += as.Hits
		misses += as.Misses
	}
	st.logf("%s: final compile: %d pass runs in %.2fms; analysis cache %d hits / %d misses",
		st.spec.Name, runs, float64(tm.Total().Microseconds())/1000, hits, misses)
	return st.res, nil
}

// pad extends a decided prefix with pessimistic padding, preallocating
// the padded sequence in one step.
func (st *state) pad(decided oraql.Seq, upto int) oraql.Seq {
	if upto < len(decided) {
		upto = len(decided)
	}
	out := make(oraql.Seq, upto)
	copy(out, decided)
	return out
}

// chunkSolve runs the chunked recursion over [0, n). The knownBad flag
// implements the paper's Fig. 2 deduction: when a parent range failed
// and its first half verified entirely optimistic, the second half must
// contain a dangerous query, so its whole-range test is skipped.
func (st *state) chunkSolve(n int) (oraql.Seq, error) {
	decided := make(oraql.Seq, n)
	// allOpt reports whether the whole range ended up optimistic.
	var solve func(lo, hi int, knownBad bool) (bool, error)
	solve = func(lo, hi int, knownBad bool) (bool, error) {
		if lo >= hi {
			return true, nil
		}
		if !knownBad {
			cand := decided.Clone()
			for i := lo; i < hi; i++ {
				cand[i] = true
			}
			ok, err := st.test(st.pad(cand[:hi], st.padLen), st.chunkSpecs(decided, lo, hi)...)
			if err != nil {
				return false, err
			}
			if ok {
				copy(decided[lo:hi], cand[lo:hi])
				return true, nil
			}
		}
		if hi-lo == 1 {
			decided[lo] = false // dangerous query pinned
			st.logf("%s: query %d must stay pessimistic", st.spec.Name, lo)
			return false, nil
		}
		mid := (lo + hi) / 2
		leftAll, err := solve(lo, mid, false)
		if err != nil {
			return false, err
		}
		// If the left half is entirely optimistic, the dangerous query
		// must be on the right: skip the right's whole-range test.
		if _, err := solve(mid, hi, leftAll); err != nil {
			return false, err
		}
		return false, nil
	}
	if _, err := solve(0, n, true); err != nil {
		return nil, err
	}
	return decided, nil
}

// chunkSpecs builds the speculative candidates launched alongside the
// whole-range test of [lo, hi): the fail path descends the left spine
// (left half, left quarter, ...), and the right half is speculated
// under the assumption that the whole left half stays pessimistic.
// Decided bits only ever flip to optimistic on a success — and every
// success cancels outstanding speculation — so candidates built from
// the current decided state stay exact until consumed or cancelled.
//
// When persisted verdict priors are available, candidates are ordered
// by estimated consumption probability — the product of each
// ancestor's failure probability along the path that reaches the
// candidate's test — so the engine's bounded speculation depth is
// spent on the tests most likely to be consumed.
func (st *state) chunkSpecs(decided oraql.Seq, lo, hi int) []oraql.Seq {
	if st.eng.workers <= 1 || hi-lo <= 1 {
		return nil
	}
	var specs []oraql.Seq
	var scores []float64
	prob := 1.0 // P(every ancestor range test failed)
	for l, h := lo, hi; h-l > 1 && len(specs) < st.eng.workers-1; {
		m := (l + h) / 2
		cand := decided.Clone()
		for i := l; i < m; i++ {
			cand[i] = true
		}
		prob *= st.pFail(l, h)
		specs = append(specs, st.pad(cand[:m], st.padLen))
		scores = append(scores, prob)
		h = m
	}
	if mid := (lo + hi) / 2; len(specs) < st.eng.workers-1 {
		cand := decided.Clone()
		for i := mid; i < hi; i++ {
			cand[i] = true
		}
		specs = append(specs, st.pad(cand[:hi], st.padLen))
		// Consumed when [lo,hi) failed and its left half failed too
		// (leftAll skips the right's whole-range test otherwise).
		scores = append(scores, st.pFail(lo, hi)*st.pFail(lo, mid))
	}
	if st.priors != nil {
		ord := make([]int, len(specs))
		for i := range ord {
			ord[i] = i
		}
		sort.SliceStable(ord, func(a, b int) bool { return scores[ord[a]] > scores[ord[b]] })
		sorted := make([]oraql.Seq, len(specs))
		for i, j := range ord {
			sorted[i] = specs[j]
		}
		specs = sorted
	}
	return specs
}

// freqSolve runs the frequency-space recursion: residue classes of the
// query index, refined by doubling the modulus.
func (st *state) freqSolve(n int) (oraql.Seq, error) {
	decided := make(oraql.Seq, n)
	done := make([]bool, n)
	var solve func(m, r int) error
	solve = func(m, r int) error {
		if r >= n {
			return nil
		}
		cand := decided.Clone()
		for i := r; i < n; i += m {
			if !done[i] {
				cand[i] = true
			}
		}
		ok, err := st.test(st.pad(cand, st.padLen), st.freqSpecs(decided, done, m, r)...)
		if err != nil {
			return err
		}
		if ok {
			for i := r; i < n; i += m {
				if !done[i] {
					decided[i] = true
					done[i] = true
				}
			}
			return nil
		}
		if m >= n {
			// The class has a single member in range.
			decided[r] = false
			done[r] = true
			st.logf("%s: query %d must stay pessimistic", st.spec.Name, r)
			return nil
		}
		if err := solve(2*m, r); err != nil {
			return err
		}
		return solve(2*m, r+m)
	}
	if err := solve(1, 0); err != nil {
		return nil, err
	}
	return decided, nil
}

// freqSpecs builds the speculative candidates launched alongside the
// test of residue class (m, r): the refined classes of the next modulus
// levels, expanded breadth-first so one whole level tests in parallel.
// All of them belong to the fail path (decided unchanged); a success
// cancels them.
func (st *state) freqSpecs(decided oraql.Seq, done []bool, m, r int) []oraql.Seq {
	n := len(decided)
	if st.eng.workers <= 1 || m >= n {
		return nil
	}
	type class struct{ m, r int }
	frontier := []class{{2 * m, r}, {2 * m, r + m}}
	var specs []oraql.Seq
	for len(frontier) > 0 && len(specs) < st.eng.workers-1 {
		c := frontier[0]
		frontier = frontier[1:]
		if c.r >= n {
			continue
		}
		cand := decided.Clone()
		fresh := false
		for i := c.r; i < n; i += c.m {
			if !done[i] {
				cand[i] = true
				fresh = true
			}
		}
		if fresh {
			specs = append(specs, st.pad(cand, st.padLen))
		}
		if c.m < n {
			frontier = append(frontier, class{2 * c.m, c.r}, class{2 * c.m, c.r + c.m})
		}
	}
	return specs
}

// trimTrailingOptimistic drops trailing 1s (queries beyond the sequence
// end are optimistic by definition).
func trimTrailingOptimistic(s oraql.Seq) oraql.Seq {
	end := len(s)
	for end > 0 && s[end-1] {
		end--
	}
	return s[:end].Clone()
}
