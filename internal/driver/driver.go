// Package driver implements the ORAQL probing driver (paper Section
// IV-B): it compiles a benchmark with increasingly refined response
// sequences until it finds a locally maximal set of queries that can
// be answered "no-alias" without breaking the benchmark's verification.
// Two bisection strategies are provided — the chunked recursion the
// paper settled on, and the frequency-space splitting it compares
// against — plus the executable-hash test cache that skips re-running
// bit-identical binaries.
//
// Deviating from the paper's strictly sequential driver, probing runs
// on a bounded worker pool (BenchSpec.Workers): sibling subranges of
// the chunked recursion and residue classes of the freq-space strategy
// are independent candidates, so the driver speculatively tests the
// likely next candidates concurrently and cancels losers. The decision
// loop itself stays sequential and consumes test outcomes in canonical
// order, so parallel and sequential probing produce bit-identical
// FinalSeq (see engine.go).
package driver

import (
	"context"
	"fmt"
	"io"

	"github.com/oraql/go-oraql/internal/diskcache"
	"github.com/oraql/go-oraql/internal/irinterp"
	"github.com/oraql/go-oraql/internal/oraql"
	"github.com/oraql/go-oraql/internal/pipeline"
	"github.com/oraql/go-oraql/internal/verify"
)

// BenchSpec is the benchmark-specific configuration file equivalent:
// compiler invocation, probing scope, run options, and verification.
type BenchSpec struct {
	Name    string
	Compile pipeline.Config // ORAQL field is managed by the driver
	Run     irinterp.Options
	Verify  verify.Spec // empty references: baseline output is recorded
	ORAQL   oraql.Options
	// Strategy is the bisection strategy (see strategies.go); nil means
	// the registered default, Chunked.
	Strategy Strategy
	// Workers bounds the worker pool for speculative parallel probing
	// (0 defaults to runtime.NumCPU(); 1 probes strictly sequentially).
	// The final sequence is identical for every worker count.
	Workers int
	// DisableExeCache turns off the executable-hash test cache (for the
	// ablation benchmark).
	DisableExeCache bool
	// MaxTests bounds probing effort (0 = no bound). The budget counts
	// consumed tests only; speculative tests are free.
	MaxTests int
	// Cache, when non-nil, persists campaign state across processes:
	// test outcomes keyed by the baseline content identity (a repeated
	// campaign replays from disk) and per-query verdicts keyed by
	// function content hashes (a campaign on an edited program seeds
	// its bisection from the unchanged functions' history — see
	// persist.go). The store is also installed as the pipeline's
	// compile cache for the non-ORAQL baseline/final compilations.
	Cache *diskcache.Store
	// Log receives progress lines when non-nil.
	Log io.Writer
}

// Outcome is one compile+run+verify cycle.
type Outcome struct {
	Compile *pipeline.CompileResult
	Run     *irinterp.Result
	RunErr  error
	Verify  verify.Result
}

// Result is the full probing outcome.
type Result struct {
	Spec *BenchSpec

	// Baseline is the non-ORAQL compilation (the reference).
	Baseline *Outcome
	// Final is the compilation with the discovered sequence.
	Final *Outcome
	// FinalSeq is the locally maximal response sequence.
	FinalSeq oraql.Seq
	// FullyOptimistic reports whether the empty sequence already
	// verified (no pessimistic answers needed).
	FullyOptimistic bool

	// Probing effort counters. Compiles includes speculative compiles;
	// TestsRun + TestsCached counts the tests the decision loop
	// consumed and is identical for every worker count (the split
	// between run and cached may shift with speculative timing).
	Compiles    int
	TestsRun    int
	TestsCached int
	// TestsDisk is the subset of TestsCached whose outcome was replayed
	// from the persistent campaign state (BenchSpec.Cache).
	TestsDisk int
	// RunsReplayed counts baseline/final interpreter runs served from
	// the persistent run-replay layer instead of executing (runcache.go).
	RunsReplayed int
	// TestsSpeculated counts speculative tests launched by the parallel
	// driver; TestsWasted is the subset whose outcome was never
	// consumed by the decision loop (cancelled losers included).
	TestsSpeculated int
	TestsWasted     int
}

// GuiltyQueries returns the alias queries the probe had to answer
// pessimistically in the final verified compilation — the queries
// whose optimistic answer breaks the program (or rides along with one
// that does; the chunked strategy does not always isolate singletons).
// It is the programmatic form of the paper's Fig. 3 dump and the
// hand-off point to the difftest triage, which delta-debugs such sets
// further.
func (r *Result) GuiltyQueries() []*oraql.QueryRecord {
	if r.Final == nil || r.Final.Compile == nil {
		return nil
	}
	var out []*oraql.QueryRecord
	for _, rec := range r.Final.Compile.Records() {
		if !rec.Optimistic {
			out = append(out, rec)
		}
	}
	return out
}

// Probe runs the full ORAQL workflow on a benchmark.
func Probe(spec *BenchSpec) (*Result, error) {
	return ProbeContext(context.Background(), spec)
}

// ProbeContext is Probe with cancellation: ctx covers the whole
// workflow — the sequential decision loop checks it before every
// consumed test, speculative workers inherit it, and it is threaded
// into every compilation (pipeline.CompileContext), so cancelling it
// stops probing mid-pipeline, not only between tests.
func ProbeContext(ctx context.Context, spec *BenchSpec) (*Result, error) {
	st := &state{ctx: ctx, spec: spec}
	return st.probe()
}

type state struct {
	ctx     context.Context
	spec    *BenchSpec
	res     *Result
	eng     *engine
	padLen  int // generous pessimistic padding length
	maxSeen int // highest unique-query count observed

	// Persistent-campaign state (nil/empty without BenchSpec.Cache).
	campID  string    // test-outcome identity: content hashes + checkID
	checkID string    // check identity: spec config sans module content
	pins    []int8    // per-index persisted verdict: +1 opt, -1 pess, 0 unknown
	priors  []float64 // per-index P(must stay pessimistic), 0.5 unknown
}

func (st *state) logf(format string, args ...any) {
	if st.spec.Log != nil {
		fmt.Fprintf(st.spec.Log, "[oraql-driver] "+format+"\n", args...)
	}
}

// execute compiles with the given ORAQL options (nil = pass disabled)
// and runs the program.
func (st *state) execute(opts *oraql.Options) (*Outcome, error) {
	cfg := st.spec.Compile
	cfg.Name = st.spec.Name
	cfg.ORAQL = opts
	cr, err := pipeline.CompileContext(st.ctx, cfg)
	if err != nil {
		return nil, err
	}
	st.res.Compiles++
	rr, runErr := st.run(cr)
	out := &Outcome{Compile: cr, Run: rr, RunErr: runErr}
	var stdout string
	if rr != nil {
		stdout = rr.Stdout
	}
	out.Verify = st.spec.Verify.Check(stdout, runErr)
	return out, nil
}

// test verifies a candidate sequence through the engine, optionally
// prefetching speculative candidates onto the worker pool first. Only
// consumed tests update the decision state (budget, counters, drift),
// which keeps the probing decisions independent of worker count.
func (st *state) test(seq oraql.Seq, specs ...oraql.Seq) (bool, error) {
	if err := st.ctx.Err(); err != nil {
		return false, fmt.Errorf("driver: probing cancelled: %w", err)
	}
	if st.spec.MaxTests > 0 && st.res.TestsRun+st.res.TestsCached >= st.spec.MaxTests {
		return false, fmt.Errorf("driver: test budget (%d) exhausted", st.spec.MaxTests)
	}
	for _, s := range specs {
		st.eng.prefetch(s)
	}
	out := st.eng.get(seq)
	if out.err != nil {
		return false, out.err
	}
	if out.unique > st.maxSeen {
		st.maxSeen = out.unique
	}
	if out.didRun {
		st.res.TestsRun++
	} else {
		st.res.TestsCached++
	}
	if out.ok {
		// A success flips decided bits: every candidate speculated from
		// the previous decided state is now a loser.
		st.eng.cancelSpeculative()
	}
	return out.ok, nil
}

func (st *state) probe() (*Result, error) {
	spec := st.spec
	st.res = &Result{Spec: spec}
	if err := spec.Verify.Compile(); err != nil {
		return nil, fmt.Errorf("driver: verify spec: %w", err)
	}
	if spec.Cache != nil {
		// The shared store serves the compile cache for the non-ORAQL
		// baseline/final compilations; content hashes identify the
		// campaign and key the per-function verdict history.
		if spec.Compile.DiskCache == nil {
			spec.Compile.DiskCache = spec.Cache
		}
		spec.Compile.WantContentHashes = true
	}

	// Step 1: baseline compile and run without ORAQL.
	base, err := st.execute(nil)
	if err != nil {
		return nil, fmt.Errorf("driver: baseline: %w", err)
	}
	if base.RunErr != nil {
		return nil, fmt.Errorf("driver: baseline run failed: %w", base.RunErr)
	}
	if len(spec.Verify.References) == 0 {
		spec.Verify.References = []string{base.Run.Stdout}
	}
	base.Verify = spec.Verify.Check(base.Run.Stdout, nil)
	if !base.Verify.OK {
		return nil, fmt.Errorf("driver: baseline does not verify: %s", base.Verify.Diff)
	}
	st.res.Baseline = base
	st.logf("%s: baseline verified (%d instrs)", spec.Name, base.Run.Instrs)
	st.campaignKeys()

	// The engine is created only after the verify references are
	// recorded: workers verify concurrently against the frozen spec.
	st.eng = newEngine(st.ctx, spec, st.campID)
	defer st.eng.shutdown()

	// Step 2: fully optimistic attempt (empty sequence).
	ok, err := st.test(nil)
	if err != nil {
		return nil, err
	}
	if ok {
		st.logf("%s: fully optimistic compilation verified", spec.Name)
		st.res.FullyOptimistic = true
		st.res.FinalSeq = nil
		return st.finalize(nil)
	}
	st.logf("%s: fully optimistic failed; bisecting %d unique queries", spec.Name, st.maxSeen)
	st.seedPriors()

	// Step 3: bisection. The padding keeps undecided queries
	// pessimistic; it adapts as query counts drift.
	strat := spec.Strategy
	if strat == nil {
		strat = Chunked
	}
	var final oraql.Seq
	for round := 0; round < 4; round++ {
		n := st.maxSeen
		st.padLen = 2*n + 64
		var decided oraql.Seq
		// The disk-seeded round-0 path pins persisted verdicts and
		// bisects only unknowns; it refines the chunked recursion, so it
		// applies only when the chunked strategy is in charge.
		if round == 0 && st.pins != nil && strat == Chunked {
			decided, err = st.seededSolve(n)
		} else {
			decided, err = strat.Solve(st, n)
		}
		if err != nil {
			return nil, err
		}
		final = trimTrailingOptimistic(decided)
		ok, err := st.test(final)
		if err != nil {
			return nil, err
		}
		if ok {
			return st.finalize(final)
		}
		st.logf("%s: query count drifted (now %d); re-probing", spec.Name, st.maxSeen)
	}
	// Fall back to the all-pessimistic sequence, which reproduces the
	// baseline compilation behaviour for ORAQL-visible queries.
	final = make(oraql.Seq, st.maxSeen+64)
	ok, err = st.test(final)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("driver: %s: even the all-pessimistic sequence fails verification", spec.Name)
	}
	return st.finalize(final)
}

// finalize recompiles with the final sequence and records results.
func (st *state) finalize(seq oraql.Seq) (*Result, error) {
	opts := st.spec.ORAQL
	opts.Seq = seq
	fin, err := st.execute(&opts)
	if err != nil {
		return nil, err
	}
	if !fin.Verify.OK {
		return nil, fmt.Errorf("driver: final sequence does not verify: %s", fin.Verify.Diff)
	}
	st.res.Final = fin
	st.res.FinalSeq = seq
	st.res.Compiles += int(st.eng.compiles.Load())
	st.res.TestsSpeculated = int(st.eng.specLaunched.Load())
	st.res.TestsWasted = st.res.TestsSpeculated - int(st.eng.specConsumed.Load())
	st.res.TestsDisk = int(st.eng.diskTests.Load())
	st.persistVerdicts(fin.Compile)
	st.ingestWarehouse()
	s := fin.Compile.ORAQLStats()
	st.logf("%s: done: %d opt (%d cached), %d pess (%d cached); %d compiles, %d tests (+%d cached, %d from disk, %d speculated, %d wasted)",
		st.spec.Name, s.UniqueOptimistic, s.CachedOptimistic, s.UniquePessimistic, s.CachedPessimistic,
		st.res.Compiles, st.res.TestsRun, st.res.TestsCached, st.res.TestsDisk, st.res.TestsSpeculated, st.res.TestsWasted)
	// -time-passes style summary of the final compilation.
	tm := fin.Compile.Timing()
	var runs int64
	for _, pt := range tm.Entries() {
		runs += pt.Runs
	}
	var hits, misses int64
	for _, as := range fin.Compile.AnalysisStats() {
		hits += as.Hits
		misses += as.Misses
	}
	st.logf("%s: final compile: %d pass runs in %.2fms; analysis cache %d hits / %d misses",
		st.spec.Name, runs, float64(tm.Total().Microseconds())/1000, hits, misses)
	return st.res, nil
}

// pad extends a decided prefix with pessimistic padding, preallocating
// the padded sequence in one step.
func (st *state) pad(decided oraql.Seq, upto int) oraql.Seq {
	if upto < len(decided) {
		upto = len(decided)
	}
	out := make(oraql.Seq, upto)
	copy(out, decided)
	return out
}

// state implements Prober — the view strategies get of the probing
// machinery (strategies.go).

// Test verifies one candidate, speculatively prefetching specs.
func (st *state) Test(seq oraql.Seq, specs ...oraql.Seq) (bool, error) {
	return st.test(seq, specs...)
}

// Pad extends a decided prefix to the current generous padding length.
func (st *state) Pad(decided oraql.Seq) oraql.Seq { return st.pad(decided, st.padLen) }

// Workers is the speculation budget.
func (st *state) Workers() int { return st.eng.workers }

// PFail is defined in persist.go (persisted-prior estimate).

// HasPriors reports whether persisted verdict priors were loaded.
func (st *state) HasPriors() bool { return st.priors != nil }

// Logf prefixes progress lines with the benchmark name.
func (st *state) Logf(format string, args ...any) {
	st.logf("%s: "+format, append([]any{st.spec.Name}, args...)...)
}

// trimTrailingOptimistic drops trailing 1s (queries beyond the sequence
// end are optimistic by definition).
func trimTrailingOptimistic(s oraql.Seq) oraql.Seq {
	end := len(s)
	for end > 0 && s[end-1] {
		end--
	}
	return s[:end].Clone()
}
