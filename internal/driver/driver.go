// Package driver implements the ORAQL probing driver (paper Section
// IV-B): it compiles a benchmark with increasingly refined response
// sequences until it finds a locally maximal set of queries that can
// be answered "no-alias" without breaking the benchmark's verification.
// Two bisection strategies are provided — the chunked recursion the
// paper settled on, and the frequency-space splitting it compares
// against — plus the executable-hash test cache that skips re-running
// bit-identical binaries.
package driver

import (
	"fmt"
	"io"

	"github.com/oraql/go-oraql/internal/irinterp"
	"github.com/oraql/go-oraql/internal/oraql"
	"github.com/oraql/go-oraql/internal/pipeline"
	"github.com/oraql/go-oraql/internal/verify"
)

// Strategy selects the bisection order.
type Strategy int

// Strategies.
const (
	// Chunked recursively splits the sequence into consecutive halves
	// (good when dangerous queries cluster).
	Chunked Strategy = iota
	// FreqSpace splits by integer-division remainder (even/odd first);
	// descriptors are independent of the sequence length.
	FreqSpace
)

// BenchSpec is the benchmark-specific configuration file equivalent:
// compiler invocation, probing scope, run options, and verification.
type BenchSpec struct {
	Name     string
	Compile  pipeline.Config // ORAQL field is managed by the driver
	Run      irinterp.Options
	Verify   verify.Spec // empty references: baseline output is recorded
	ORAQL    oraql.Options
	Strategy Strategy
	// DisableExeCache turns off the executable-hash test cache (for the
	// ablation benchmark).
	DisableExeCache bool
	// MaxTests bounds probing effort (0 = no bound).
	MaxTests int
	// Log receives progress lines when non-nil.
	Log io.Writer
}

// Outcome is one compile+run+verify cycle.
type Outcome struct {
	Compile *pipeline.CompileResult
	Run     *irinterp.Result
	RunErr  error
	Verify  verify.Result
}

// Result is the full probing outcome.
type Result struct {
	Spec *BenchSpec

	// Baseline is the non-ORAQL compilation (the reference).
	Baseline *Outcome
	// Final is the compilation with the discovered sequence.
	Final *Outcome
	// FinalSeq is the locally maximal response sequence.
	FinalSeq oraql.Seq
	// FullyOptimistic reports whether the empty sequence already
	// verified (no pessimistic answers needed).
	FullyOptimistic bool

	// Probing effort counters.
	Compiles    int
	TestsRun    int
	TestsCached int
}

// Probe runs the full ORAQL workflow on a benchmark.
func Probe(spec *BenchSpec) (*Result, error) {
	st := &state{spec: spec, exeCache: map[string]verify.Result{}}
	return st.probe()
}

type state struct {
	spec     *BenchSpec
	res      *Result
	exeCache map[string]verify.Result
	padLen   int // generous pessimistic padding length
	maxSeen  int // highest unique-query count observed
}

func (st *state) logf(format string, args ...any) {
	if st.spec.Log != nil {
		fmt.Fprintf(st.spec.Log, "[oraql-driver] "+format+"\n", args...)
	}
}

// execute compiles with the given ORAQL options (nil = pass disabled)
// and runs the program.
func (st *state) execute(opts *oraql.Options) (*Outcome, error) {
	cfg := st.spec.Compile
	cfg.Name = st.spec.Name
	cfg.ORAQL = opts
	cr, err := pipeline.Compile(cfg)
	if err != nil {
		return nil, err
	}
	st.res.Compiles++
	rr, runErr := irinterp.Run(cr.Program, st.spec.Run)
	out := &Outcome{Compile: cr, Run: rr, RunErr: runErr}
	var stdout string
	if rr != nil {
		stdout = rr.Stdout
	}
	out.Verify = st.spec.Verify.Check(stdout, runErr)
	return out, nil
}

// test compiles with a sequence and verifies, consulting the
// executable-hash cache to skip runs of bit-identical binaries.
func (st *state) test(seq oraql.Seq) (bool, error) {
	if st.spec.MaxTests > 0 && st.res.TestsRun+st.res.TestsCached >= st.spec.MaxTests {
		return false, fmt.Errorf("driver: test budget (%d) exhausted", st.spec.MaxTests)
	}
	opts := st.spec.ORAQL
	opts.Seq = seq
	cfg := st.spec.Compile
	cfg.Name = st.spec.Name
	cfg.ORAQL = &opts
	cr, err := pipeline.Compile(cfg)
	if err != nil {
		return false, err
	}
	st.res.Compiles++
	if u := cr.ORAQLStats().Unique(); u > st.maxSeen {
		st.maxSeen = u
	}
	hash := cr.ExeHash()
	if !st.spec.DisableExeCache {
		if v, ok := st.exeCache[hash]; ok {
			st.res.TestsCached++
			return v.OK, nil
		}
	}
	rr, runErr := irinterp.Run(cr.Program, st.spec.Run)
	var stdout string
	if rr != nil {
		stdout = rr.Stdout
	}
	v := st.spec.Verify.Check(stdout, runErr)
	st.res.TestsRun++
	if !st.spec.DisableExeCache {
		st.exeCache[hash] = v
	}
	return v.OK, nil
}

func (st *state) probe() (*Result, error) {
	spec := st.spec
	st.res = &Result{Spec: spec}
	if err := spec.Verify.Compile(); err != nil {
		return nil, fmt.Errorf("driver: verify spec: %w", err)
	}

	// Step 1: baseline compile and run without ORAQL.
	base, err := st.execute(nil)
	if err != nil {
		return nil, fmt.Errorf("driver: baseline: %w", err)
	}
	if base.RunErr != nil {
		return nil, fmt.Errorf("driver: baseline run failed: %w", base.RunErr)
	}
	if len(spec.Verify.References) == 0 {
		spec.Verify.References = []string{base.Run.Stdout}
	}
	base.Verify = spec.Verify.Check(base.Run.Stdout, nil)
	if !base.Verify.OK {
		return nil, fmt.Errorf("driver: baseline does not verify: %s", base.Verify.Diff)
	}
	st.res.Baseline = base
	st.logf("%s: baseline verified (%d instrs)", spec.Name, base.Run.Instrs)

	// Step 2: fully optimistic attempt (empty sequence).
	ok, err := st.test(nil)
	if err != nil {
		return nil, err
	}
	if ok {
		st.logf("%s: fully optimistic compilation verified", spec.Name)
		st.res.FullyOptimistic = true
		st.res.FinalSeq = nil
		return st.finalize(nil)
	}
	st.logf("%s: fully optimistic failed; bisecting %d unique queries", spec.Name, st.maxSeen)

	// Step 3: bisection. The padding keeps undecided queries
	// pessimistic; it adapts as query counts drift.
	var final oraql.Seq
	for round := 0; round < 4; round++ {
		n := st.maxSeen
		st.padLen = 2*n + 64
		var decided oraql.Seq
		switch spec.Strategy {
		case FreqSpace:
			decided, err = st.freqSolve(n)
		default:
			decided, err = st.chunkSolve(n)
		}
		if err != nil {
			return nil, err
		}
		final = trimTrailingOptimistic(decided)
		ok, err := st.test(final)
		if err != nil {
			return nil, err
		}
		if ok {
			return st.finalize(final)
		}
		st.logf("%s: query count drifted (now %d); re-probing", spec.Name, st.maxSeen)
	}
	// Fall back to the all-pessimistic sequence, which reproduces the
	// baseline compilation behaviour for ORAQL-visible queries.
	final = make(oraql.Seq, st.maxSeen+64)
	ok, err = st.test(final)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("driver: %s: even the all-pessimistic sequence fails verification", spec.Name)
	}
	return st.finalize(final)
}

// finalize recompiles with the final sequence and records results.
func (st *state) finalize(seq oraql.Seq) (*Result, error) {
	opts := st.spec.ORAQL
	opts.Seq = seq
	fin, err := st.execute(&opts)
	if err != nil {
		return nil, err
	}
	if !fin.Verify.OK {
		return nil, fmt.Errorf("driver: final sequence does not verify: %s", fin.Verify.Diff)
	}
	st.res.Final = fin
	st.res.FinalSeq = seq
	s := fin.Compile.ORAQLStats()
	st.logf("%s: done: %d opt (%d cached), %d pess (%d cached); %d compiles, %d tests (+%d cached)",
		st.spec.Name, s.UniqueOptimistic, s.CachedOptimistic, s.UniquePessimistic, s.CachedPessimistic,
		st.res.Compiles, st.res.TestsRun, st.res.TestsCached)
	return st.res, nil
}

// pad extends a decided prefix with pessimistic padding.
func (st *state) pad(decided oraql.Seq, upto int) oraql.Seq {
	out := decided.Clone()
	for len(out) < upto {
		out = append(out, false)
	}
	return out
}

// chunkSolve runs the chunked recursion over [0, n). The knownBad flag
// implements the paper's Fig. 2 deduction: when a parent range failed
// and its first half verified entirely optimistic, the second half must
// contain a dangerous query, so its whole-range test is skipped.
func (st *state) chunkSolve(n int) (oraql.Seq, error) {
	decided := make(oraql.Seq, n)
	// allOpt reports whether the whole range ended up optimistic.
	var solve func(lo, hi int, knownBad bool) (bool, error)
	solve = func(lo, hi int, knownBad bool) (bool, error) {
		if lo >= hi {
			return true, nil
		}
		if !knownBad {
			cand := decided.Clone()
			for i := lo; i < hi; i++ {
				cand[i] = true
			}
			ok, err := st.test(st.pad(cand[:hi], st.padLen))
			if err != nil {
				return false, err
			}
			if ok {
				copy(decided[lo:hi], cand[lo:hi])
				return true, nil
			}
		}
		if hi-lo == 1 {
			decided[lo] = false // dangerous query pinned
			st.logf("%s: query %d must stay pessimistic", st.spec.Name, lo)
			return false, nil
		}
		mid := (lo + hi) / 2
		leftAll, err := solve(lo, mid, false)
		if err != nil {
			return false, err
		}
		// If the left half is entirely optimistic, the dangerous query
		// must be on the right: skip the right's whole-range test.
		if _, err := solve(mid, hi, leftAll); err != nil {
			return false, err
		}
		return false, nil
	}
	if _, err := solve(0, n, true); err != nil {
		return nil, err
	}
	return decided, nil
}

// freqSolve runs the frequency-space recursion: residue classes of the
// query index, refined by doubling the modulus.
func (st *state) freqSolve(n int) (oraql.Seq, error) {
	decided := make(oraql.Seq, n)
	done := make([]bool, n)
	var solve func(m, r int) error
	solve = func(m, r int) error {
		if r >= n {
			return nil
		}
		cand := decided.Clone()
		for i := r; i < n; i += m {
			if !done[i] {
				cand[i] = true
			}
		}
		ok, err := st.test(st.pad(cand, st.padLen))
		if err != nil {
			return err
		}
		if ok {
			for i := r; i < n; i += m {
				if !done[i] {
					decided[i] = true
					done[i] = true
				}
			}
			return nil
		}
		if m >= n {
			// The class has a single member in range.
			decided[r] = false
			done[r] = true
			st.logf("%s: query %d must stay pessimistic", st.spec.Name, r)
			return nil
		}
		if err := solve(2*m, r); err != nil {
			return err
		}
		return solve(2*m, r+m)
	}
	if err := solve(1, 0); err != nil {
		return nil, err
	}
	return decided, nil
}

// trimTrailingOptimistic drops trailing 1s (queries beyond the sequence
// end are optimistic by definition).
func trimTrailingOptimistic(s oraql.Seq) oraql.Seq {
	end := len(s)
	for end > 0 && s[end-1] {
		end--
	}
	return s[:end].Clone()
}
